package gmpregel_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITools builds and exercises the three command-line tools
// end-to-end. Skipped under -short (it shells out to the Go toolchain).
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test shells out to go run")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	gmpc := build("gmpc")
	gmbench := build("gmbench")
	graphgen := build("graphgen")

	run := func(name string, args ...string) string {
		cmd := exec.Command(name, args...)
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(name), args, err, b)
		}
		return string(b)
	}

	// gmpc on a builtin with every inspector.
	out := run(gmpc, "-builtin", "bc", "-machine", "-java", "-giraph", "-canonical")
	for _, want := range []string{
		"9 vertex-centric kernels, 4 message types",
		"[x] BFS Traversal",
		"state machine:",
		"class Message",
		"BasicComputation",
		"Pregel-canonical form:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gmpc output missing %q", want)
		}
	}

	// gmpc on a source file.
	srcPath := filepath.Join(bin, "prog.gm")
	src := "Procedure p(G: Graph, x: Node_Prop<Int>) {\n  Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { t.x += 1; } }\n}\n"
	if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(gmpc, srcPath)
	if !strings.Contains(out, "compiled p:") {
		t.Errorf("gmpc file compile output: %s", out)
	}

	// gmpc rejects a bad file with a diagnostic exit.
	badPath := filepath.Join(bin, "bad.gm")
	os.WriteFile(badPath, []byte("Procedure broken("), 0o644)
	if err := exec.Command(gmpc, badPath).Run(); err == nil {
		t.Error("gmpc should exit nonzero on a parse error")
	}

	// -analyze on a warning-free builtin exits 0.
	out = run(gmpc, "-builtin", "avgteen", "-analyze")
	if strings.Contains(out, "warning") || strings.Contains(out, "error") {
		t.Errorf("avgteen should analyze warning-free:\n%s", out)
	}

	// -Werror turns pagerank's hazard warnings into a nonzero exit,
	// both under -analyze and during a normal compile.
	if b, err := exec.Command(gmpc, "-builtin", "pagerank", "-analyze", "-Werror").CombinedOutput(); err == nil {
		t.Errorf("-analyze -Werror should exit nonzero on pagerank:\n%s", b)
	} else if !strings.Contains(string(b), "GM2002") {
		t.Errorf("-analyze -Werror output missing GM2002:\n%s", b)
	}
	if b, err := exec.Command(gmpc, "-builtin", "pagerank", "-Werror").CombinedOutput(); err == nil {
		t.Errorf("compile with -Werror should exit nonzero on pagerank:\n%s", b)
	}

	// -diag-format=json emits machine-readable diagnostics.
	out = run(gmpc, "-builtin", "sssp", "-analyze", "-diag-format=json")
	var report struct {
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			Line     int    `json:"line"`
		} `json:"diagnostics"`
		WarningFree bool `json:"warning_free"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("-diag-format=json output does not parse: %v\n%s", err, out)
	}
	if !report.WarningFree || len(report.Diagnostics) == 0 {
		t.Errorf("sssp JSON report unexpected: %+v", report)
	}

	// graphgen → file → gmbench table.
	elPath := filepath.Join(bin, "g.el")
	run(graphgen, "-kind", "random", "-n", "500", "-m", "2000", "-out", elPath)
	if fi, err := os.Stat(elPath); err != nil || fi.Size() == 0 {
		t.Fatalf("graphgen produced no output: %v", err)
	}

	out = run(gmbench, "-table", "3")
	for _, want := range []string{"Table 3", "State Machine Const.", "BFS Traversal"} {
		if !strings.Contains(out, want) {
			t.Errorf("gmbench table 3 missing %q", want)
		}
	}
	out = run(gmbench, "-table", "2")
	if !strings.Contains(out, "generated GPS") {
		t.Errorf("gmbench table 2 output: %s", out)
	}

	// gmbench observability: -json puts a machine-readable report on
	// stdout, -metrics writes Prometheus exposition, -trace streams
	// JSONL spans (the activity mode guarantees engine runs).
	cmd := exec.Command(gmbench, "-activity", "-table", "1", "-scale", "1", "-trials", "1",
		"-json", "-metrics", "-trace")
	cmd.Dir = bin
	stdout, err := cmd.Output()
	if err != nil {
		t.Fatalf("gmbench -json -metrics -trace: %v", err)
	}
	var benchRep struct {
		Meta     map[string]any   `json:"meta"`
		Table1   []map[string]any `json:"table1"`
		Activity map[string]any   `json:"activity"`
		Skew     map[string]any   `json:"skew"`
	}
	if err := json.Unmarshal(stdout, &benchRep); err != nil {
		t.Fatalf("gmbench -json stdout does not parse: %v\n%s", err, stdout)
	}
	if len(benchRep.Table1) != 3 || benchRep.Activity == nil || benchRep.Skew == nil {
		t.Errorf("gmbench JSON report incomplete: %s", stdout)
	}
	prom, err := os.ReadFile(filepath.Join(bin, "gmbench.metrics.prom"))
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	for _, want := range []string{"# TYPE pregel_supersteps_total counter", "# TYPE gmbench_mode_seconds histogram"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, prom)
		}
	}
	traceData, err := os.ReadFile(filepath.Join(bin, "gmbench.trace.jsonl"))
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(traceData)), "\n")
	if len(lines) < 10 {
		t.Fatalf("trace has only %d spans", len(lines))
	}
	var span struct {
		Phase string `json:"phase"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil || span.Phase == "" {
		t.Errorf("trace line does not parse as a span: %v\n%s", err, lines[0])
	}
}
