// Package gmpregel compiles Green-Marl graph-analysis programs into
// Pregel programs and runs them on a bundled GPS-like bulk-synchronous
// engine — a from-scratch reproduction of "Simplifying Scalable Graph
// Processing with a Domain-Specific Language" (Hong, Salihoglu, Widom,
// Olukotun; CGO 2014).
//
// Quick start:
//
//	prog, err := gmpregel.Compile(src, gmpregel.Options{})
//	if err != nil { ... }
//	g := gmpregel.TwitterLikeGraph(10000, 16, 1)
//	res, err := prog.Run(g, gmpregel.Bindings{
//	    Int:         map[string]int64{"K": 25},
//	    NodePropInt: map[string][]int64{"age": ages},
//	}, gmpregel.Config{NumWorkers: 8})
//
// The compiler applies the paper's transformation pipeline (bulk-assign
// lowering, reduction lowering, BFS lowering, random-access lowering,
// loop dissection, edge flipping) and translation rules (state machine
// construction, global objects, neighborhood/multiple/random-write
// communication, edge properties, incoming-neighbor prologue), plus the
// state-merging and intra-loop-merging optimizations. Inspect the result
// with JavaSource (the GPS-style generated code), StateMachine (the
// executable program listing), and TransformationTable (which rules
// fired).
package gmpregel

import (
	"context"
	"io"
	"net/http"
	"os"

	"gmpregel/internal/codegen"
	"gmpregel/internal/core"
	"gmpregel/internal/gm/analysis"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/machine"
	"gmpregel/internal/obs"
	"gmpregel/internal/pregel"
)

// Options controls optional compiler steps; the zero value enables all
// optimizations.
type Options = core.Options

// Bindings supplies scalar parameters and property columns to a run.
type Bindings = machine.Bindings

// Result exposes final property values, the return value, and run
// statistics.
type Result = machine.Result

// Config controls an engine run (worker count, superstep limit, seed,
// and scheduling: ChunkSize, NoSteal, Partitioner).
type Config = pregel.Config

// PartitionKind selects how vertices map to workers (Config.Partitioner).
type PartitionKind = pregel.PartitionKind

// Partitioners: round-robin by vertex ID (the GPS default), or
// contiguous ranges balanced by edge mass for skewed graphs.
const (
	PartitionMod    = pregel.PartitionMod
	PartitionDegree = pregel.PartitionDegree
)

// Stats summarizes a run: supersteps, messages, network/control bytes,
// and checkpoint/recovery accounting.
type Stats = pregel.Stats

// Direction selects push, pull, or per-superstep direction-optimized
// execution (Config.Direction). Results and Stats are bit-identical
// across directions by construction; only wall time changes.
type Direction = pregel.Direction

// Directions: legacy push, forced pull (on gather-eligible supersteps),
// and the Beamer-style per-superstep density heuristic.
const (
	DirPush = pregel.DirPush
	DirPull = pregel.DirPull
	DirAuto = pregel.DirAuto
)

// DirectionTrace records the per-superstep push/pull choices of a
// direction-optimized run (Config.DirTrace).
type DirectionTrace = pregel.DirectionTrace

// Checkpointable is implemented by jobs whose state the engine snapshots
// at checkpoint barriers and restores on rollback; compiled programs
// implement it automatically.
type Checkpointable = pregel.Checkpointable

// Fault is one deterministic injected failure (see Config.Faults).
type Fault = pregel.Fault

// FaultPlan schedules deterministic fault injections for a run.
type FaultPlan = pregel.FaultPlan

// FaultPhase selects where in a superstep an injected fault fires.
type FaultPhase = pregel.FaultPhase

// Fault phases, covering every engine stage: a worker's vertex-compute
// loop, the routing barrier, chunk execution, a stolen chunk, combiner
// fold replay, the three segmented-routing sub-phases, and the
// checkpoint write (a torn snapshot, detected by the codec's integrity
// frame). FaultWatchdog is reported — never armed — when the superstep
// watchdog converts a stall into supervised recovery.
const (
	FaultVertexCompute = pregel.FaultVertexCompute
	FaultRouting       = pregel.FaultRouting
	FaultChunkExec     = pregel.FaultChunkExec
	FaultSteal         = pregel.FaultSteal
	FaultFold          = pregel.FaultFold
	FaultRouteCount    = pregel.FaultRouteCount
	FaultRoutePrefix   = pregel.FaultRoutePrefix
	FaultRoutePlace    = pregel.FaultRoutePlace
	FaultCheckpoint    = pregel.FaultCheckpoint
	FaultWatchdog      = pregel.FaultWatchdog
)

// Stall is one deterministic injected worker stall (Config.Stalls): the
// target worker's first chunk of the given superstep sleeps for
// Duration, exercising the superstep watchdog.
type Stall = pregel.Stall

// ErrBudgetExceeded is returned (wrapped; test with errors.Is) when a
// run's accounted memory exceeds Config.MemoryBudget even after outbox
// release and inbox spill: the run aborts cleanly with partial Stats
// instead of running out of memory. See docs/ROBUSTNESS.md.
var ErrBudgetExceeded = pregel.ErrBudgetExceeded

// ---- Observability ----
//
// Set Config.Observer to receive a structured trace of every engine
// phase; see docs/OBSERVABILITY.md. With no observer configured the
// engine takes no timestamps.

// Observer receives trace spans from an engine run (Config.Observer).
type Observer = obs.Observer

// Span is one traced engine phase (superstep, worker, phase, wall time,
// message/byte/call attribution).
type Span = obs.Span

// TracePhase identifies which engine phase a span covers.
type TracePhase = obs.Phase

// Trace phases, in superstep order; PhaseSpill marks a governor inbox
// spill, PhaseWatchdog a superstep-watchdog trip (State carries the
// stall diagnosis), and PhaseRun is the final run-scoped span carrying
// the authoritative totals.
const (
	PhaseMaster        = obs.PhaseMaster
	PhaseVertexCompute = obs.PhaseVertexCompute
	PhaseRouting       = obs.PhaseRouting
	PhaseBarrier       = obs.PhaseBarrier
	PhaseCheckpoint    = obs.PhaseCheckpoint
	PhaseRecovery      = obs.PhaseRecovery
	PhaseChunk         = obs.PhaseChunk
	PhaseSpill         = obs.PhaseSpill
	PhaseWatchdog      = obs.PhaseWatchdog
	PhaseRun           = obs.PhaseRun
	PhasePull          = obs.PhasePull
)

// TraceRing is a bounded in-memory span buffer observer.
type TraceRing = obs.Ring

// NewTraceRing creates an observer retaining the newest capacity spans.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewTraceWriter creates an observer streaming spans as JSON lines to w.
func NewTraceWriter(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// ReadTrace parses a JSONL trace stream written by NewTraceWriter.
func ReadTrace(r io.Reader) ([]Span, error) { return obs.ReadJSONL(r) }

// MultiObserver fans spans out to several observers (nils are dropped).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// MetricsRegistry holds counters, gauges, and histograms with
// Prometheus text, plain text, and JSON renderings.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsObserver registers the engine metric families on reg and
// returns an observer feeding them from trace spans.
func NewMetricsObserver(reg *MetricsRegistry) Observer { return obs.NewMetricsObserver(reg) }

// LiveObserver maintains a live snapshot of a run in flight, served by
// ObsHandler's /run endpoint.
type LiveObserver = obs.Live

// NewLiveObserver creates a live-snapshot observer.
func NewLiveObserver() *LiveObserver { return obs.NewLive() }

// ObsHandler serves /metrics (Prometheus exposition), /metrics.json,
// /healthz, /run, and /debug/pprof/*; reg and live may be nil.
func ObsHandler(reg *MetricsRegistry, live *LiveObserver) http.Handler {
	return obs.Handler(reg, live)
}

// SkewReport summarizes per-phase worker imbalance from a span trace.
type SkewReport = obs.SkewReport

// TraceSkew computes the worker-skew report (max/median worker time per
// phase) from a span trace.
func TraceSkew(spans []Span) *SkewReport { return obs.Skew(spans) }

// Diagnostic is one static-analysis finding (code, severity, position,
// message, optional fix hint).
type Diagnostic = analysis.Diagnostic

// Diagnostics is an ordered list of analysis findings.
type Diagnostics = analysis.List

// Graph is a directed graph in CSR form.
type Graph = graph.Directed

// GraphBuilder accumulates edges and builds a Graph.
type GraphBuilder = graph.Builder

// NodeID identifies a vertex; NilNode is Green-Marl's NIL.
type NodeID = graph.NodeID

// NilNode is the NIL node constant.
const NilNode = graph.NilNode

// Compiled is a compiled Green-Marl procedure ready to run.
type Compiled struct {
	c *core.Compiled
}

// Compile parses and compiles a single Green-Marl procedure.
func Compile(src string, opts Options) (*Compiled, error) {
	c, err := core.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	return &Compiled{c: c}, nil
}

// CompileFile compiles the Green-Marl procedure in the named file.
func CompileFile(path string, opts Options) (*Compiled, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Compile(string(src), opts)
}

// Diagnose runs the parser, the semantic checker, and all static
// analyses over src without compiling it, returning every finding. It
// never returns an error: failures become diagnostics.
func Diagnose(src string) Diagnostics { return analysis.Diagnose(src) }

// DecodeDiagnostics parses the JSON produced by Diagnostics.JSON (and
// by gmpc -analyze -diag-format=json).
func DecodeDiagnostics(data []byte) (Diagnostics, error) { return analysis.DecodeJSON(data) }

// Name returns the procedure name.
func (p *Compiled) Name() string { return p.c.Program.Name }

// Diagnostics returns the static-analysis findings recorded while
// compiling. Empty for programs loaded from artifacts (the artifact
// keeps only the summary counts; see StateMachine's analysis block).
func (p *Compiled) Diagnostics() Diagnostics { return p.c.Diagnostics }

// Run executes the compiled program on g.
func (p *Compiled) Run(g *Graph, b Bindings, cfg Config) (*Result, error) {
	return machine.Run(p.c.Program, g, b, cfg)
}

// RunContext is Run under a cancellation context: the run aborts cleanly
// at the next superstep barrier once ctx is done, returning the partial
// Result alongside the error.
func (p *Compiled) RunContext(ctx context.Context, g *Graph, b Bindings, cfg Config) (*Result, error) {
	return machine.RunContext(ctx, p.c.Program, g, b, cfg)
}

// JavaSource renders the generated program as GPS-style Java source, the
// artifact the paper's compiler emits.
func (p *Compiled) JavaSource() string { return codegen.Java(p.c.Program) }

// GiraphSource renders the generated program as Apache-Giraph-style Java
// source (the backend variant the paper's footnote mentions).
func (p *Compiled) GiraphSource() string { return codegen.Giraph(p.c.Program) }

// StateMachine renders the executable state-machine listing.
func (p *Compiled) StateMachine() string { return p.c.Program.String() }

// SaveArtifact writes the compiled program as a JSON artifact that
// LoadArtifact can reload in another process (compilation and execution
// can then be separated, like shipping a jar to a GPS cluster).
func (p *Compiled) SaveArtifact(w io.Writer) error {
	data, err := machine.EncodeProgram(p.c.Program)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadArtifact reloads a program saved with SaveArtifact. The result can
// Run and render its StateMachine and Java sources; source-level
// inspectors (CanonicalSource, TransformationTable) are unavailable and
// return empty strings.
func LoadArtifact(r io.Reader) (*Compiled, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	prog, err := machine.DecodeProgram(data)
	if err != nil {
		return nil, err
	}
	return &Compiled{c: &core.Compiled{Program: prog, Trace: nil}}, nil
}

// CanonicalSource renders the Pregel-canonical Green-Marl form after all
// transformations (§4.1). Empty for programs loaded from artifacts.
func (p *Compiled) CanonicalSource() string {
	if p.c.Canonical == nil {
		return ""
	}
	return astPrint(p.c)
}

// TransformationTable renders the applied-rule checklist (Table 3 row).
// Empty for programs loaded from artifacts.
func (p *Compiled) TransformationTable() string {
	if p.c.Trace == nil {
		return ""
	}
	return p.c.Trace.String()
}

// NumVertexStates reports the number of vertex-centric kernels.
func (p *Compiled) NumVertexStates() int { return p.c.Program.NumVertexStates() }

// NumMessageTypes reports the number of generated message types.
func (p *Compiled) NumMessageTypes() int { return len(p.c.Program.Msgs) }

func astPrint(c *core.Compiled) string {
	return core.PrintCanonical(c)
}

// ---- Graph construction helpers ----

// NewGraphBuilder creates a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// ReadEdgeList parses a plain-text edge list ("src dst" per line).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g as a plain-text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// TwitterLikeGraph generates a preferential-attachment follower graph.
func TwitterLikeGraph(n, outDeg int, seed int64) *Graph {
	return gen.TwitterLike(n, outDeg, seed)
}

// BipartiteGraph generates a uniform random boy→girl bipartite graph;
// boys occupy IDs [0, nBoys).
func BipartiteGraph(nBoys, nGirls, outDeg int, seed int64) *Graph {
	return gen.Bipartite(nBoys, nGirls, outDeg, seed)
}

// WebLikeGraph generates an RMAT web-like graph with 2^scale vertices.
func WebLikeGraph(scale, edgeFactor int, seed int64) *Graph {
	return gen.WebLike(scale, edgeFactor, seed)
}

// RandomGraph generates an Erdős–Rényi-style graph.
func RandomGraph(n, m int, seed int64) *Graph { return gen.Random(n, m, seed) }
