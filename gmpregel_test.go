package gmpregel_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmpregel"
	"gmpregel/internal/algorithms"
)

const facadeSrc = `
Procedure double_rank(G: Graph, score: Node_Prop<Int>) : Int {
    Foreach (n: G.Nodes) {
        Foreach (t: n.Nbrs) {
            t.score += 1;
        }
    }
    Int total = 0;
    total = Sum(n: G.Nodes)(n.score);
    Return total;
}
`

func TestFacadeCompileAndRun(t *testing.T) {
	prog, err := gmpregel.Compile(facadeSrc, gmpregel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "double_rank" {
		t.Errorf("name = %q", prog.Name())
	}
	if prog.NumVertexStates() == 0 || prog.NumMessageTypes() == 0 {
		t.Error("program structure empty")
	}
	g := gmpregel.RandomGraph(100, 500, 3)
	res, err := prog.Run(g, gmpregel.Bindings{}, gmpregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex's score equals its in-degree; the total is the edge
	// count.
	if !res.HasRet || res.Ret.AsInt() != g.NumEdges() {
		t.Errorf("total = %v, want %d", res.Ret, g.NumEdges())
	}
	score, err := res.NodePropInt("score")
	if err != nil {
		t.Fatal(err)
	}
	for v := gmpregel.NodeID(0); int(v) < g.NumNodes(); v++ {
		if score[v] != int64(g.InDegree(v)) {
			t.Fatalf("score[%d] = %d, want in-degree %d", v, score[v], g.InDegree(v))
		}
	}
}

func TestFacadeInspectors(t *testing.T) {
	prog, err := gmpregel.Compile(algorithms.SSSP, gmpregel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.JavaSource(), "class Message") {
		t.Error("JavaSource missing message class")
	}
	if !strings.Contains(prog.StateMachine(), "vertex") {
		t.Error("StateMachine listing empty")
	}
	if !strings.Contains(prog.CanonicalSource(), "Procedure sssp") {
		t.Error("CanonicalSource missing procedure")
	}
	tbl := prog.TransformationTable()
	if !strings.Contains(tbl, "[x] Edge Property") {
		t.Errorf("transformation table wrong:\n%s", tbl)
	}
}

func TestFacadeCompileFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.gm")
	if err := os.WriteFile(path, []byte(facadeSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := gmpregel.CompileFile(path, gmpregel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "double_rank" {
		t.Errorf("name = %q", prog.Name())
	}
	if _, err := gmpregel.CompileFile(filepath.Join(dir, "missing.gm"), gmpregel.Options{}); err == nil {
		t.Error("missing file should error")
	}
}

func TestFacadeCompileErrors(t *testing.T) {
	cases := []string{
		"not a program",
		`Procedure f(G: Graph) { undefined_var = 3; }`,
		`Procedure f(K: Int) { }`, // no graph
	}
	for _, src := range cases {
		if _, err := gmpregel.Compile(src, gmpregel.Options{}); err == nil {
			t.Errorf("source %q should fail to compile", src)
		}
	}
}

func TestFacadeGraphHelpers(t *testing.T) {
	b := gmpregel.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := gmpregel.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := gmpregel.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 2 {
		t.Errorf("round trip = (%d,%d)", g2.NumNodes(), g2.NumEdges())
	}
	if tg := gmpregel.TwitterLikeGraph(100, 4, 1); tg.NumNodes() != 100 {
		t.Error("twitter generator")
	}
	if bg := gmpregel.BipartiteGraph(10, 20, 2, 1); bg.NumNodes() != 30 {
		t.Error("bipartite generator")
	}
	if wg := gmpregel.WebLikeGraph(8, 4, 1); wg.NumNodes() != 256 {
		t.Error("web generator")
	}
}

// TestAllBuiltinAlgorithmsViaFacade compiles and runs each of the
// paper's programs through the public API only.
func TestAllBuiltinAlgorithmsViaFacade(t *testing.T) {
	g := gmpregel.TwitterLikeGraph(200, 5, 2)
	ages := make([]int64, 200)
	for v := range ages {
		ages[v] = int64(10 + v%55)
	}
	prog, err := gmpregel.Compile(algorithms.AvgTeen, gmpregel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(g, gmpregel.Bindings{
		Int:         map[string]int64{"K": 30},
		NodePropInt: map[string][]int64{"age": ages},
	}, gmpregel.Config{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", res.Stats.Supersteps)
	}
}

func TestArtifactSaveAndLoad(t *testing.T) {
	prog, err := gmpregel.Compile(algorithms.SSSP, gmpregel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prog.SaveArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gmpregel.LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.StateMachine() != prog.StateMachine() {
		t.Error("artifact listing differs")
	}
	if loaded.CanonicalSource() != "" || loaded.TransformationTable() != "" {
		t.Error("loaded artifacts have no source-level inspectors")
	}
	// And it runs.
	g := gmpregel.WebLikeGraph(7, 4, 1)
	lengths := make([]int64, g.NumEdges())
	for e := range lengths {
		lengths[e] = 1
	}
	res, err := loaded.Run(g, gmpregel.Bindings{
		Node:        map[string]gmpregel.NodeID{"root": 0},
		EdgePropInt: map[string][]int64{"len": lengths},
	}, gmpregel.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps == 0 {
		t.Error("loaded program did not run")
	}
	if _, err := gmpregel.LoadArtifact(strings.NewReader("junk")); err == nil {
		t.Error("junk artifact should fail to load")
	}
}
