module gmpregel

go 1.22
