package gmpregel_test

import (
	"fmt"

	"gmpregel"
)

// ExampleCompile compiles the paper's running example and runs it on a
// small deterministic graph.
func ExampleCompile() {
	src := `
Procedure teen_followers(G: Graph, age: Node_Prop<Int>, cnt: Node_Prop<Int>) {
    Foreach (n: G.Nodes) {
        n.cnt = Count(t: n.InNbrs)(t.age >= 13 && t.age <= 19);
    }
}`
	prog, err := gmpregel.Compile(src, gmpregel.Options{})
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	// A 4-vertex follower graph: 1→0, 2→0, 3→2.
	b := gmpregel.NewGraphBuilder(4)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(3, 2)
	g := b.Build()

	res, err := prog.Run(g, gmpregel.Bindings{
		NodePropInt: map[string][]int64{"age": {50, 15, 40, 16}},
	}, gmpregel.Config{NumWorkers: 2})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}
	cnt, _ := res.NodePropInt("cnt")
	fmt.Println("teen followers:", cnt)
	fmt.Println("supersteps:", res.Stats.Supersteps)
	// Output:
	// teen followers: [1 0 1 0]
	// supersteps: 2
}

// ExampleCompiled_TransformationTable shows how to inspect which of the
// paper's rules fired during compilation.
func ExampleCompiled_TransformationTable() {
	src := `
Procedure max_in(G: Graph, v: Node_Prop<Int>, best: Node_Prop<Int>) {
    Foreach (n: G.Nodes) {
        n.best = Max(t: n.InNbrs)(t.v);
    }
}`
	prog, err := gmpregel.Compile(src, gmpregel.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The in-neighbor max is a pull; the compiler dissects and flips it.
	fmt.Print(prog.TransformationTable())
	// Output:
	// [x] State Machine Const.
	// [ ] Global Object
	// [x] Neighborhood Comm.
	// [ ] Multiple Comm.
	// [ ] Random Writing
	// [ ] Edge Property
	// [x] Flipping Edge
	// [x] Dissecting Loops
	// [ ] Random Access (Seq.)
	// [ ] BFS Traversal
	// [x] State Merging
	// [ ] Intra-Loop Merge
	// [ ] Incoming Neighbors
	// [x] Message Class Gen.
}

// ExampleCompiled_Run_returnValue demonstrates procedures with return
// values (global reductions).
func ExampleCompiled_Run_returnValue() {
	src := `
Procedure count_sinks(G: Graph) : Int {
    Int sinks = 0;
    sinks = Count(n: G.Nodes)(n.Degree() == 0);
    Return sinks;
}`
	prog, _ := gmpregel.Compile(src, gmpregel.Options{})
	b := gmpregel.NewGraphBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build() // vertices 1..4 have no out-edges
	res, _ := prog.Run(g, gmpregel.Bindings{}, gmpregel.Config{NumWorkers: 1})
	fmt.Println("sinks:", res.Ret.AsInt())
	// Output:
	// sinks: 4
}
