package gmpregel_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gmpregel"
)

// diagGoldenPath maps a .gm fixture to its committed golden rendering.
func diagGoldenPath(gmPath string) string {
	base := strings.TrimSuffix(filepath.Base(gmPath), ".gm")
	return filepath.Join("testdata", "golden", base+".diag")
}

// diagFixtures lists every Green-Marl source under testdata (the nine
// algorithm programs) and testdata/diag (the targeted analysis
// fixtures).
func diagFixtures(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, pat := range []string{
		filepath.Join("testdata", "*.gm"),
		filepath.Join("testdata", "diag", "*.gm"),
	} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m...)
	}
	sort.Strings(out)
	if len(out) == 0 {
		t.Fatal("no .gm fixtures found")
	}
	return out
}

// TestAnalysisGoldens runs the full diagnostics pass over every fixture
// and compares the text rendering against the committed golden file
// (regenerate with TESTDATA_WRITE=1 go test -run TestAnalysisGoldens .).
func TestAnalysisGoldens(t *testing.T) {
	for _, gmPath := range diagFixtures(t) {
		src, err := os.ReadFile(gmPath)
		if err != nil {
			t.Fatal(err)
		}
		got := gmpregel.Diagnose(string(src)).Text()
		golden := diagGoldenPath(gmPath)
		if os.Getenv("TESTDATA_WRITE") == "1" {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with TESTDATA_WRITE=1 go test -run TestAnalysisGoldens .)", golden, err)
		}
		if got != string(want) {
			t.Errorf("%s: diagnostics drifted from %s\n--- got ---\n%s--- want ---\n%s", gmPath, golden, got, want)
		}
	}
}

// TestAnalysisFixtureCodes asserts the load-bearing expectations behind
// each targeted fixture: which codes must (and must not) appear.
func TestAnalysisFixtureCodes(t *testing.T) {
	cases := []struct {
		file    string
		want    []string
		wantNot []string
	}{
		{"conflict.gm", []string{"GM2001"}, []string{"GM2002", "GM1001"}},
		{"conflict_ok.gm", nil, []string{"GM2001"}},
		{"hazard.gm", []string{"GM2002", "GM4002"}, []string{"GM2001"}},
		{"hazard_ok.gm", nil, []string{"GM2002", "GM4002"}},
		{"deadprop.gm", []string{"GM3001", "GM3002"}, nil},
		{"deadprop_ok.gm", nil, []string{"GM3001", "GM3002"}},
		{"payload_wide.gm", []string{"GM4001", "GM4003"}, nil},
		{"payload_ok.gm", []string{"GM4001"}, []string{"GM4003"}},
		{"noncanon.gm", []string{"GM5006"}, nil},
		{"noncanon_ok.gm", []string{"GM4001"}, []string{"GM5006"}},
		{"multierr.gm", []string{"GM1001"}, nil},
	}
	for _, tc := range cases {
		src, err := os.ReadFile(filepath.Join("testdata", "diag", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		diags := gmpregel.Diagnose(string(src))
		codes := map[string]bool{}
		for _, d := range diags {
			codes[d.Code] = true
		}
		for _, w := range tc.want {
			if !codes[w] {
				t.Errorf("%s: expected %s, got %v", tc.file, w, diags.Codes())
			}
		}
		for _, w := range tc.wantNot {
			if codes[w] {
				t.Errorf("%s: must not report %s, got %v", tc.file, w, diags.Codes())
			}
		}
	}
}

// TestMultiErrorSema asserts the semantic checker reports every error
// in one run rather than stopping at the first.
func TestMultiErrorSema(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "diag", "multierr.gm"))
	if err != nil {
		t.Fatal(err)
	}
	diags := gmpregel.Diagnose(string(src))
	n := 0
	seen := map[string]bool{}
	for _, d := range diags {
		if d.Code == "GM1001" {
			n++
			seen[d.Msg] = true
		}
	}
	if n < 3 || len(seen) < 3 {
		t.Fatalf("want >=3 distinct GM1001 errors from one run, got %d: %v", n, diags)
	}
}

// TestDiagnosticsJSONRoundTrip checks the JSON rendering parses back
// into an identical diagnostic list.
func TestDiagnosticsJSONRoundTrip(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "pagerank.gm"))
	if err != nil {
		t.Fatal(err)
	}
	diags := gmpregel.Diagnose(string(src))
	if !diags.HasWarnings() {
		t.Fatal("pagerank should carry hazard warnings")
	}
	data, err := diags.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("JSON rendering is invalid: %s", data)
	}
	back, err := gmpregel.DecodeDiagnostics(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(diags) {
		t.Fatalf("round trip lost diagnostics: %d != %d", len(back), len(diags))
	}
	for i := range back {
		if back[i].String() != diags[i].String() || back[i].Hint != diags[i].Hint {
			t.Errorf("diag %d drifted: %q vs %q", i, back[i], diags[i])
		}
	}
}

// TestCompiledCarriesAnalysis checks core.Compile attaches diagnostics
// and the artifact summary to its output.
func TestCompiledCarriesAnalysis(t *testing.T) {
	prog, err := gmpregel.CompileFile(filepath.Join("testdata", "pagerank.gm"), gmpregel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Diagnostics()
	if !d.HasWarnings() {
		t.Fatalf("pagerank diagnostics should include warnings, got %v", d.Codes())
	}

	var sb strings.Builder
	if err := prog.SaveArtifact(&sb); err != nil {
		t.Fatal(err)
	}
	var art struct {
		Analysis *struct {
			Warnings    int      `json:"warnings"`
			WarningFree bool     `json:"warning_free"`
			Codes       []string `json:"codes"`
		} `json:"analysis"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &art); err != nil {
		t.Fatal(err)
	}
	if art.Analysis == nil {
		t.Fatal("artifact JSON has no analysis summary")
	}
	if art.Analysis.WarningFree || art.Analysis.Warnings == 0 {
		t.Errorf("pagerank summary should record warnings: %+v", art.Analysis)
	}

	reloaded, err := gmpregel.LoadArtifact(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := reloaded.SaveArtifact(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
