// Benchmarks regenerating the paper's evaluation artifacts. One
// benchmark (family) per table/figure:
//
//	BenchmarkTable1Graph*          — input graph generation (Table 1)
//	BenchmarkTable2Compile*        — compilation producing the LoC table (Table 2)
//	BenchmarkTable3Trace           — full pipeline with transformation trace (Table 3)
//	BenchmarkFig6*                 — generated vs manual runtime, every Figure 6 bar
//	BenchmarkBCGenerated           — the §5.1 Betweenness Centrality run
//
// Run with: go test -bench=. -benchmem
package gmpregel_test

import (
	"fmt"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/bench"
	"gmpregel/internal/core"
	"gmpregel/internal/graph"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
)

// benchScale keeps benchmark graphs moderate (~10-16k vertices);
// increase via cmd/gmbench -scale for larger studies.
const benchScale = 2

func BenchmarkTable1GraphTwitter(b *testing.B)   { benchGraph(b, "twitter") }
func BenchmarkTable1GraphBipartite(b *testing.B) { benchGraph(b, "bipartite") }
func BenchmarkTable1GraphSk2005(b *testing.B)    { benchGraph(b, "sk2005") }

func benchGraph(b *testing.B, name string) {
	spec, err := bench.GraphByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var g *graph.Directed
	for i := 0; i < b.N; i++ {
		g = spec.Build(benchScale)
	}
	b.ReportMetric(float64(g.NumEdges()), "edges")
}

func BenchmarkTable2CompileAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range algorithms.Names {
			if _, err := core.Compile(algorithms.ByName[name], core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable3Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := core.Compile(algorithms.BC, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !c.Trace.Applied(core.RuleBFSTraversal) {
			b.Fatal("trace lost")
		}
	}
}

// fig6Fixture caches graphs/inputs across benchmark runs.
type fig6Fixture struct {
	g  *graph.Directed
	in *bench.Inputs
}

var fig6Cache = map[string]*fig6Fixture{}

func fig6Setup(b *testing.B, gname string) *fig6Fixture {
	b.Helper()
	if f, ok := fig6Cache[gname]; ok {
		return f
	}
	spec, err := bench.GraphByName(gname)
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build(benchScale)
	boys := 0
	if spec.BipartiteBoys != nil {
		boys = spec.BipartiteBoys(benchScale)
	}
	f := &fig6Fixture{g: g, in: bench.MakeInputs(g, boys, 8)}
	fig6Cache[gname] = f
	return f
}

func benchFig6(b *testing.B, algo, gname string, generated bool) {
	f := fig6Setup(b, gname)
	p := bench.DefaultParams()
	cfg := pregel.Config{NumWorkers: 8, Seed: 1}
	var msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bench.Outcome
		var err error
		if generated {
			out, err = bench.RunGenerated(algo, f.g, f.in, p, cfg, 1)
		} else {
			out, err = bench.RunManual(algo, f.g, f.in, p, cfg, 1)
		}
		if err != nil {
			b.Fatal(err)
		}
		msgs = out.Stats.MessagesSent
	}
	b.ReportMetric(float64(msgs), "msgs")
}

func BenchmarkFig6AvgTeenTwitterManual(b *testing.B)    { benchFig6(b, "avgteen", "twitter", false) }
func BenchmarkFig6AvgTeenTwitterGenerated(b *testing.B) { benchFig6(b, "avgteen", "twitter", true) }
func BenchmarkFig6AvgTeenWebManual(b *testing.B)        { benchFig6(b, "avgteen", "sk2005", false) }
func BenchmarkFig6AvgTeenWebGenerated(b *testing.B)     { benchFig6(b, "avgteen", "sk2005", true) }

func BenchmarkFig6PageRankTwitterManual(b *testing.B)    { benchFig6(b, "pagerank", "twitter", false) }
func BenchmarkFig6PageRankTwitterGenerated(b *testing.B) { benchFig6(b, "pagerank", "twitter", true) }
func BenchmarkFig6PageRankWebManual(b *testing.B)        { benchFig6(b, "pagerank", "sk2005", false) }
func BenchmarkFig6PageRankWebGenerated(b *testing.B)     { benchFig6(b, "pagerank", "sk2005", true) }

func BenchmarkFig6ConductanceTwitterManual(b *testing.B) {
	benchFig6(b, "conductance", "twitter", false)
}
func BenchmarkFig6ConductanceTwitterGenerated(b *testing.B) {
	benchFig6(b, "conductance", "twitter", true)
}
func BenchmarkFig6ConductanceWebManual(b *testing.B)    { benchFig6(b, "conductance", "sk2005", false) }
func BenchmarkFig6ConductanceWebGenerated(b *testing.B) { benchFig6(b, "conductance", "sk2005", true) }

func BenchmarkFig6SSSPTwitterManual(b *testing.B)    { benchFig6(b, "sssp", "twitter", false) }
func BenchmarkFig6SSSPTwitterGenerated(b *testing.B) { benchFig6(b, "sssp", "twitter", true) }
func BenchmarkFig6SSSPWebManual(b *testing.B)        { benchFig6(b, "sssp", "sk2005", false) }
func BenchmarkFig6SSSPWebGenerated(b *testing.B)     { benchFig6(b, "sssp", "sk2005", true) }

func BenchmarkFig6BipartiteManual(b *testing.B)    { benchFig6(b, "bipartite", "bipartite", false) }
func BenchmarkFig6BipartiteGenerated(b *testing.B) { benchFig6(b, "bipartite", "bipartite", true) }

func BenchmarkBCGenerated(b *testing.B) {
	c, err := bench.CompiledProgram("bc")
	if err != nil {
		b.Fatal(err)
	}
	spec, _ := bench.GraphByName("sk2005")
	g := spec.Build(benchScale)
	bind := machine.Bindings{Int: map[string]int64{"K": 4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.Run(c.Program, g, bind, pregel.Config{NumWorkers: 8, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScaling measures the engine's worker scaling on
// PageRank (an ablation for DESIGN.md's engine design notes).
func BenchmarkEngineScaling(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			f := fig6Setup(b, "twitter")
			p := bench.DefaultParams()
			cfg := pregel.Config{NumWorkers: w, Seed: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunGenerated("pagerank", f.g, f.in, p, cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCombinerAblation measures the engine's optional message
// combiners on SSSP (an ablation beyond the paper: its compiler never
// installs combiners, which is why Figure 6 runs without them).
func BenchmarkCombinerAblation(b *testing.B) {
	c, err := bench.CompiledProgram("sssp")
	if err != nil {
		b.Fatal(err)
	}
	f := fig6Setup(b, "twitter")
	bind := machine.Bindings{
		Node:        map[string]graph.NodeID{"root": f.in.Root},
		EdgePropInt: map[string][]int64{"len": f.in.EdgeLen},
	}
	for _, combine := range []bool{false, true} {
		name := "combiners=off"
		if combine {
			name = "combiners=on"
		}
		b.Run(name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				res, err := machine.RunWithOptions(c.Program, f.g, bind,
					pregel.Config{NumWorkers: 8, Seed: 1}, machine.RunOptions{UseCombiners: combine})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Stats.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}
