// Command gmlint runs the engine's invariant linters (gmdeterminism,
// gmnoalloc, gmatomic, gmdiag — see docs/LINT.md) over Go packages.
//
// Usage:
//
//	gmlint [-json] [-list] [-only name,name] [packages]
//
// With package patterns (default ./...) it behaves like a multichecker:
// loads and type-checks the packages, applies every analyzer, prints
// one line per diagnostic, and exits 1 if anything was reported.
//
// It also speaks the cmd/vet unitchecker protocol, so it can be run by
// the go tool itself:
//
//	go vet -vettool=$(command -v gmlint) ./...
//
// In that mode the go command invokes gmlint once per package with a
// *.cfg JSON file describing the unit; diagnostics go to stderr and a
// nonzero exit marks the package as failing vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gmpregel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("gmlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	vflag := fs.String("V", "", "print version and exit (vettool protocol)")
	flagsOut := fs.Bool("flags", false, "print flags as JSON and exit (vettool protocol)")
	fs.Parse(args)

	if *vflag != "" {
		// The go command probes vet tools with -V=full and scans the
		// output for a buildID= field to fingerprint the tool for
		// caching; a devel build has none, so emit the same placeholder
		// x/tools' unitchecker uses.
		fmt.Printf("gmlint version devel comments-go-here buildID=gibberish\n")
		return 0
	}
	if *flagsOut {
		// The go command asks vet tools for their flags with -flags and
		// expects a JSON array of {Name, Bool, Usage} objects describing
		// which flags it may forward.
		type jsonFlag struct {
			Name  string `json:"name"`
			Bool  bool   `json:"bool"`
			Usage string `json:"usage"`
		}
		var out []jsonFlag
		fs.VisitAll(func(f *flag.Flag) {
			isBool := false
			if bf, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
				isBool = bf.IsBoolFlag()
			}
			out = append(out, jsonFlag{f.Name, isBool, f.Usage})
		})
		json.NewEncoder(os.Stdout).Encode(out)
		return 0
	}
	if *list {
		for _, az := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		var filtered []*lint.Analyzer
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for _, az := range analyzers {
			if want[az.Name] {
				filtered = append(filtered, az)
				delete(want, az.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "gmlint: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = filtered
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmlint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, rest...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintln(os.Stderr, terr)
		}
	}
	if broken {
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return emit(diags, *jsonOut)
}

func emit(diags []lint.Diagnostic, asJSON bool) int {
	if asJSON {
		type jd struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		out := make([]jd, 0, len(diags))
		for _, d := range diags {
			out = append(out, jd{d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of the cmd/vet unitchecker config gmlint
// needs: the unit's sources and where its dependencies' export data
// lives.
type vetConfig struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
}

func runUnit(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gmlint: parsing vet config:", err)
		return 2
	}
	// The go command also dispatches dependency units (VetxOnly) and the
	// standard library so vet tools can accumulate facts. gmlint carries
	// no serialized facts, so for those units just satisfy the protocol.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "gmlint:", err)
				return 2
			}
		}
		return 0
	}
	pkg, err := lint.LoadUnit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.PackageFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmlint:", err)
		return 2
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// The protocol requires the facts file to exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "gmlint:", err)
			return 2
		}
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
