// Command graphgen writes synthetic evaluation graphs as plain-text edge
// lists (the interchange format read by graph.ReadEdgeList).
//
//	graphgen -kind twitter  -n 100000 -deg 16 -seed 1 -out twitter.el
//	graphgen -kind bipartite -n 50000 -deg 10 -out bip.el   (n per side)
//	graphgen -kind web      -scale 17 -deg 18 -out web.el
//	graphgen -kind random   -n 10000 -m 100000 -out rnd.el
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

func main() {
	var (
		kind  = flag.String("kind", "twitter", "twitter | bipartite | web | random | ring")
		n     = flag.Int("n", 10000, "vertex count (per side for bipartite)")
		m     = flag.Int("m", 0, "edge count (random only; default 10n)")
		deg   = flag.Int("deg", 16, "out-degree (twitter/bipartite) or edge factor (web)")
		scale = flag.Int("scale", 0, "log2 vertex count (web only; overrides -n)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Directed
	switch *kind {
	case "twitter":
		g = gen.TwitterLike(*n, *deg, *seed)
	case "bipartite":
		g = gen.Bipartite(*n, *n, *deg, *seed)
	case "web":
		s := *scale
		if s == 0 {
			s = 1
			for (1 << uint(s)) < *n {
				s++
			}
		}
		g = gen.WebLike(s, *deg, *seed)
	case "random":
		edges := *m
		if edges == 0 {
			edges = 10 * *n
		}
		g = gen.Random(*n, edges, *seed)
	case "ring":
		g = gen.Ring(*n)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := graph.WriteEdgeList(bw, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	st := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "graphgen: %s: %d nodes, %d edges, max out-degree %d\n",
		*kind, st.Nodes, st.Edges, st.MaxOutDeg)
}
