// Command gmserve is the long-lived multi-tenant graph-analytics job
// server: it keeps immutable graph snapshots resident and executes
// Green-Marl programs (compiled per request) or named built-in
// algorithms against them over an HTTP/JSON API, with per-tenant
// admission control, result caching, and live introspection.
//
// Server mode:
//
//	gmserve -addr :8090 -graph bench=twitter:1
//
// then interact with:
//
//	POST /graphs        load or hot-swap a snapshot
//	GET  /graphs        resident snapshots + refcounts
//	POST /jobs          submit a job (algorithm or source; wait=true
//	                    for synchronous execution)
//	GET  /jobs/{id}     poll status / result
//	GET  /jobs/{id}/trace  live engine progress for the job
//	POST /tenants       install a tenant quota
//	GET  /tenants       admission-control ledger
//	GET  /serverz       everything above in one snapshot
//	/metrics, /metrics.json, /healthz, /debug/pprof/*  (obs handler)
//
// Load-test mode (-loadtest) starts an in-process server on a loopback
// port, replays a seeded mixed-tenant workload against it (cache
// warm-up, a concurrent storm, a guaranteed cache-hit probe, and a
// guaranteed 429 probe), and writes a machine-readable
// throughput/latency report (-report, default BENCH_PR8.json).
// See docs/SERVING.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gmpregel/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address (server mode)")
		workers  = flag.Int("workers", 4, "engine workers per job")
		seed     = flag.Int64("seed", 1, "engine seed for every run (fixed per server: cache soundness)")
		capacity = flag.Int("capacity", 8, "globally concurrent engine runs")
		cacheMB  = flag.Int64("cache-mb", 64, "result-cache budget in MiB")
		graph    = flag.String("graph", "", "preload a snapshot, name=builder:scale (e.g. bench=twitter:1)")

		loadtest = flag.Bool("loadtest", false, "run the deterministic load test against an in-process server and exit")
		clients  = flag.Int("clients", 32, "loadtest: concurrent clients")
		requests = flag.Int("requests", 4, "loadtest: requests per client")
		scale    = flag.Int("scale", 1, "loadtest: graph scale")
		builder  = flag.String("builder", "twitter", "loadtest: graph builder")
		report   = flag.String("report", "BENCH_PR8.json", "loadtest: machine-readable report path")
	)
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:    *workers,
		Seed:       *seed,
		Capacity:   *capacity,
		CacheBytes: *cacheMB << 20,
	})
	defer srv.Close()

	if *graph != "" {
		spec, err := parseGraphFlag(*graph, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		snap, _, err := srv.LoadGraph(spec)
		if err != nil {
			fatalf("loading %s: %v", *graph, err)
		}
		fmt.Fprintf(os.Stderr, "gmserve: loaded %s (%d nodes, %d edges)\n",
			snap.ID(), snap.Graph.NumNodes(), snap.Graph.NumEdges())
	}

	if *loadtest {
		runLoadtest(srv, *seed, *clients, *requests, *scale, *builder, *report)
		return
	}

	fmt.Fprintf(os.Stderr, "gmserve: serving on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatalf("%v", err)
	}
}

// parseGraphFlag parses name=builder:scale.
func parseGraphFlag(s string, seed int64) (serve.GraphSpec, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return serve.GraphSpec{}, fmt.Errorf("gmserve: -graph wants name=builder:scale, got %q", s)
	}
	builder, scaleStr, ok := strings.Cut(rest, ":")
	scale := 1
	if ok {
		n, err := strconv.Atoi(scaleStr)
		if err != nil || n <= 0 {
			return serve.GraphSpec{}, fmt.Errorf("gmserve: bad scale in -graph %q", s)
		}
		scale = n
	}
	return serve.GraphSpec{Name: name, Builder: builder, Scale: scale, InputsSeed: seed + 7}, nil
}

// runLoadtest serves srv on a loopback port and fires the seeded
// workload at it. Exits nonzero when the deterministic probes (cache
// hit, 429) did not land or any request failed outright.
func runLoadtest(srv *serve.Server, seed int64, clients, requests, scale int, builder, reportPath string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("loadtest listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	start := time.Now()
	rep, err := serve.RunLoad(serve.LoadOptions{
		BaseURL: "http://" + ln.Addr().String(),
		Seed:    seed,
		Builder: builder,
		Scale:   scale,
		Clients: clients, RequestsPerClient: requests,
	})
	if err != nil {
		fatalf("loadtest: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("loadtest: encoding report: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(reportPath, data, 0o644); err != nil {
		fatalf("loadtest: writing %s: %v", reportPath, err)
	}

	fmt.Printf("loadtest: %d storm requests (%d clients × %d), wall %s\n",
		rep.Requests, rep.Clients, rep.RequestsPerClient, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  ok %d  429 %d  failed %d  cache hits %d  compile jobs %d\n",
		rep.OK, rep.Rejected429, rep.Failed, rep.CacheHits, rep.CompileJobs)
	fmt.Printf("  throughput %.1f req/s  p50 %s  p95 %s  p99 %s\n",
		rep.ThroughputRPS,
		time.Duration(rep.LatencyP50NS).Round(time.Microsecond),
		time.Duration(rep.LatencyP95NS).Round(time.Microsecond),
		time.Duration(rep.LatencyP99NS).Round(time.Microsecond))
	fmt.Printf("  probes: cache hit %v, quota 429 %v\n", rep.ProbeCacheHit, rep.ProbeRejected)
	fmt.Printf("  report: %s\n", reportPath)

	if rep.Failed > 0 {
		fatalf("loadtest: %d requests failed", rep.Failed)
	}
	if !rep.ProbeCacheHit {
		fatalf("loadtest: cache-hit probe did not observe a hit")
	}
	if !rep.ProbeRejected {
		fatalf("loadtest: saturation probe did not observe a 429")
	}
	if rep.CacheHits == 0 {
		fatalf("loadtest: storm observed no cache hits")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gmserve: "+format+"\n", args...)
	os.Exit(1)
}
