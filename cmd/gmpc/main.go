// Command gmpc is the Green-Marl → Pregel compiler CLI.
//
// Usage:
//
//	gmpc [flags] file.gm          compile a Green-Marl procedure
//	gmpc -builtin pagerank ...    compile one of the paper's algorithms
//
// Flags select what to print: -java (generated GPS source), -machine
// (state-machine listing), -canonical (Pregel-canonical Green-Marl),
// -trace (applied transformations). With -run, the program is executed
// on a generated graph and its statistics printed.
//
// Static analysis: -analyze runs the diagnostics pass only and prints
// the findings (-diag-format=text|json selects the rendering), exiting
// nonzero if any errors — or, with -Werror, any warnings — were found.
// Without -analyze, -Werror makes a normal compile fail when the
// analyzer reported warnings.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"gmpregel"
	"gmpregel/internal/algorithms"
	"gmpregel/internal/bench"
	"gmpregel/internal/pregel"
)

func main() {
	var (
		builtin    = flag.String("builtin", "", "compile a built-in algorithm (avgteen, pagerank, conductance, sssp, bipartite, bc)")
		java       = flag.Bool("java", false, "print the generated GPS-style Java source")
		giraph     = flag.Bool("giraph", false, "print the generated Giraph-style Java source")
		machineOut = flag.Bool("machine", false, "print the state-machine listing")
		canonical  = flag.Bool("canonical", false, "print the Pregel-canonical Green-Marl form")
		trace      = flag.Bool("trace", true, "print the applied-transformation checklist")
		noOpt      = flag.Bool("no-opt", false, "disable state merging and intra-loop merging")
		emit       = flag.String("emit", "", "write the compiled program as a JSON artifact to this file")
		analyze    = flag.Bool("analyze", false, "run static analysis only and print diagnostics (no compile output)")
		diagFormat = flag.String("diag-format", "text", "diagnostic rendering for -analyze: text or json")
		werror     = flag.Bool("Werror", false, "treat analysis warnings as errors (nonzero exit)")
		run        = flag.Bool("run", false, "run the program on a generated twitter-like graph")
		runNodes   = flag.Int("run-nodes", 10000, "graph size for -run")
		workers    = flag.Int("workers", 4, "engine workers for -run")
		httpAddr   = flag.String("http", "", "with -run: serve /metrics, /healthz, /run, /debug/pprof on this address during the run")
	)
	flag.Parse()

	var src string
	switch {
	case *builtin != "":
		s, ok := algorithms.ByName[*builtin]
		if !ok {
			fatalf("unknown builtin %q; have %v", *builtin, algorithms.Names)
		}
		src = s
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: gmpc [flags] file.gm  |  gmpc -builtin <name> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *analyze {
		analyzeOnly(src, *diagFormat, *werror)
		return
	}

	opts := gmpregel.Options{}
	if *noOpt {
		opts.DisableStateMerging = true
		opts.DisableIntraLoopMerge = true
	}
	prog, err := gmpregel.Compile(src, opts)
	if err != nil {
		fatalf("compile: %v", err)
	}
	if *werror && prog.Diagnostics().HasWarnings() {
		fmt.Fprint(os.Stderr, prog.Diagnostics().Text())
		fatalf("-Werror: analysis reported warnings")
	}
	fmt.Printf("compiled %s: %d vertex-centric kernels, %d message types\n",
		prog.Name(), prog.NumVertexStates(), prog.NumMessageTypes())
	if *trace {
		fmt.Println("\napplied transformations:")
		fmt.Println(prog.TransformationTable())
	}
	if *canonical {
		fmt.Println("\nPregel-canonical form:")
		fmt.Println(prog.CanonicalSource())
	}
	if *machineOut {
		fmt.Println("\nstate machine:")
		fmt.Println(prog.StateMachine())
	}
	if *java {
		fmt.Println("\ngenerated GPS Java:")
		fmt.Println(prog.JavaSource())
	}
	if *giraph {
		fmt.Println("\ngenerated Giraph Java:")
		fmt.Println(prog.GiraphSource())
	}
	if *emit != "" {
		f, err := os.Create(*emit)
		if err != nil {
			fatalf("%v", err)
		}
		if err := prog.SaveArtifact(f); err != nil {
			fatalf("emit: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("emit: %v", err)
		}
		fmt.Printf("wrote compiled artifact to %s\n", *emit)
	}
	if *run {
		runIt(prog, *builtin, *runNodes, *workers, *httpAddr)
	}
}

// analyzeOnly runs the diagnostics pass and exits: 0 when clean, 1 when
// the findings include errors (or warnings under -Werror).
func analyzeOnly(src, format string, werror bool) {
	diags := gmpregel.Diagnose(src)
	switch format {
	case "text":
		fmt.Print(diags.Text())
	case "json":
		data, err := diags.JSON()
		if err != nil {
			fatalf("analyze: %v", err)
		}
		fmt.Println(string(data))
	default:
		fatalf("unknown -diag-format %q (want text or json)", format)
	}
	if diags.HasErrors() || (werror && diags.HasWarnings()) {
		os.Exit(1)
	}
}

func runIt(prog *gmpregel.Compiled, builtin string, n, workers int, httpAddr string) {
	if builtin == "" {
		fatalf("-run requires -builtin (the harness knows the built-in algorithms' inputs)")
	}
	cfg := pregel.Config{NumWorkers: workers, Seed: 7}
	if httpAddr != "" {
		// Live introspection (plus pprof) while the run is in flight.
		reg := gmpregel.NewMetricsRegistry()
		live := gmpregel.NewLiveObserver()
		cfg.Observer = gmpregel.MultiObserver(gmpregel.NewMetricsObserver(reg), live)
		go func() {
			if err := http.ListenAndServe(httpAddr, gmpregel.ObsHandler(reg, live)); err != nil {
				fmt.Fprintf(os.Stderr, "gmpc: http: %v\n", err)
			}
		}()
		fmt.Printf("serving introspection on http://%s\n", httpAddr)
	}
	g := gmpregel.TwitterLikeGraph(n, 16, 1)
	in := bench.MakeInputs(g, n/2, 7)
	p := bench.DefaultParams()
	out, err := bench.RunGenerated(builtin, g, in, p, cfg, 1)
	if err != nil {
		fatalf("run: %v", err)
	}
	fmt.Printf("\nrun on %d nodes / %d edges with %d workers:\n", g.NumNodes(), g.NumEdges(), workers)
	fmt.Printf("  elapsed:       %v\n", out.Elapsed)
	fmt.Printf("  supersteps:    %d\n", out.Stats.Supersteps)
	fmt.Printf("  messages:      %d\n", out.Stats.MessagesSent)
	fmt.Printf("  network bytes: %d\n", out.Stats.NetworkBytes)
	fmt.Printf("  control bytes: %d\n", out.Stats.ControlBytes)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gmpc: "+format+"\n", args...)
	os.Exit(1)
}
