// Command gmbench regenerates the paper's evaluation artifacts:
//
//	gmbench -table 1       input graph statistics (Table 1)
//	gmbench -table 2       lines-of-code comparison (Table 2)
//	gmbench -table 3       transformations applied per algorithm (Table 3)
//	gmbench -figure6       generated-vs-manual runtime/steps/bytes (Figure 6)
//	gmbench -bc            the §5.1 Betweenness Centrality experiment
//	gmbench -ablation      optimization / combiner ablation table
//	gmbench -activity      SSSP per-superstep active-vertex profile (§5.2)
//	gmbench -recovery      checkpoint-overhead / crash-recovery table
//	gmbench -scaling       worker-count scaling sweep (Figure-7-style):
//	                       interleaved eager/barrier routing A/B on the
//	                       Figure-6 graphs with a COST column; sized by
//	                       -scaling-scale and -scaling-workers (not -scale)
//	gmbench -schedab       scheduling A/B: static vs chunked vs stealing
//	gmbench -chaos         seeded chaos campaign: fault/stall/budget
//	                       schedules with a bit-identity survival report
//	gmbench -dirsweep      direction sweep: interleaved push vs pull vs
//	                       auto A/B (BFS and PageRank on the Figure-6
//	                       graphs) with bit-identity enforcement and the
//	                       auto arm's per-superstep direction schedule
//	gmbench -all           every mode above
//
// -scale multiplies graph sizes (scale 1 ≈ 5-8k vertices per graph);
// -workers, -trials and -seed control the engine runs. The recovery
// table is further shaped by -ckpt-every (0 sweeps {1,2,4,8}),
// -crash-step (0 picks a mid-run superstep off the checkpoint grid),
// and -crash-worker. The chaos campaign derives its schedule matrix
// from -seed; -chaos-schedules sets the matrix size (>= 9 covers every
// fault phase).
//
// Scheduling knobs (every engine run except the -schedab configs, which
// set their own): -chunk N forces the scheduler chunk size (0 = auto),
// -sched steal|nosteal toggles deterministic work stealing, and
// -part mod|degree selects the partitioner. -direction push|pull|auto
// selects the superstep execution direction for every engine run except
// the -dirsweep arms, which set their own; the default is push (the
// classic Pregel dataflow), auto enables the Beamer-style
// density-triggered pull heuristic.
//
// Observability:
//
//	-json          emit a machine-readable report on stdout (tables move
//	               to stderr so stdout stays parseable); Figure 6 rows
//	               carry per-run ns_per_superstep and
//	               allocs_per_superstep rates for tracking the engine's
//	               hot-path cost over time
//	-trace         stream engine trace spans as JSONL (-trace-out,
//	               default gmbench.trace.jsonl) and print a worker-skew
//	               report
//	-metrics       write Prometheus text exposition (-metrics-out,
//	               default gmbench.metrics.prom)
//	-http ADDR     serve /metrics, /healthz, /run and /debug/pprof/*
//	               while the benchmark runs
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"gmpregel/internal/bench"
	"gmpregel/internal/obs"
	"gmpregel/internal/pregel"
)

// mode is one gmbench artifact generator. -all runs every entry of the
// table, so a mode added here is automatically part of -all.
type mode struct {
	name    string
	enabled func() bool
	run     func(w io.Writer, rep *bench.Report) error
}

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table 1, 2, or 3")
		figure6  = flag.Bool("figure6", false, "regenerate Figure 6")
		bc       = flag.Bool("bc", false, "run the Betweenness Centrality compilation experiment")
		ablation = flag.Bool("ablation", false, "measure optimization and combiner ablations")
		activity = flag.Bool("activity", false, "measure the SSSP per-superstep active-vertex profile (§5.2)")
		recovery = flag.Bool("recovery", false, "measure checkpoint overhead and crash-recovery latency")
		scaling  = flag.Bool("scaling", false, "run the worker-count scaling sweep (Figure-7-style)")
		schedab  = flag.Bool("schedab", false, "run the scheduling A/B (static vs chunked vs stealing, interleaved trials)")
		chaosRun = flag.Bool("chaos", false, "run the seeded chaos campaign (faults, stalls, memory pressure) with a survival report")
		dirsweep = flag.Bool("dirsweep", false, "run the direction sweep (interleaved push vs pull vs auto A/B with bit-identity enforcement)")
		all      = flag.Bool("all", false, "regenerate everything")
		scale    = flag.Int("scale", 2, "graph scale multiplier")
		workers  = flag.Int("workers", 8, "engine workers")
		trials   = flag.Int("trials", 3, "timing trials (minimum is reported)")
		seed     = flag.Int64("seed", 1, "random seed")

		chunk     = flag.Int("chunk", 0, "scheduler chunk size (0 = automatic)")
		sched     = flag.String("sched", "steal", "work stealing: steal or nosteal")
		part      = flag.String("part", "mod", "partitioner: mod or degree")
		direction = flag.String("direction", "push", "superstep execution direction: push, pull, or auto")

		scalingScale   = flag.Int("scaling-scale", 8, "scaling: generator scale for the sweep (independent of -scale; large enough that parallelism pays)")
		scalingWorkers = flag.Int("scaling-workers", 8, "scaling: maximum worker count swept (1, 2, 4, ... up to this)")

		ckptEvery   = flag.Int("ckpt-every", 0, "recovery: checkpoint interval (0 sweeps 1,2,4,8)")
		crashStep   = flag.Int("crash-step", 0, "recovery: superstep of the injected crash (0 = auto mid-run)")
		crashWorker = flag.Int("crash-worker", 1, "recovery: worker index of the injected crash")
		chaosScheds = flag.Int("chaos-schedules", 18, "chaos: schedules in the campaign (>= 9 covers every fault phase)")

		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report on stdout (tables go to stderr)")
		trace      = flag.Bool("trace", false, "stream engine trace spans as JSONL and print a worker-skew report")
		traceOut   = flag.String("trace-out", "gmbench.trace.jsonl", "trace output path (with -trace)")
		metrics    = flag.Bool("metrics", false, "write Prometheus metrics at exit")
		metricsOut = flag.String("metrics-out", "gmbench.metrics.prom", "metrics output path (with -metrics)")
		httpAddr   = flag.String("http", "", "serve /metrics, /healthz, /run, /debug/pprof on this address while running")
	)
	flag.Parse()

	// Scheduling knobs apply to every engine run the harness performs
	// (the -schedab configs override them per cell).
	var noSteal bool
	switch *sched {
	case "steal":
	case "nosteal":
		noSteal = true
	default:
		fmt.Fprintf(os.Stderr, "gmbench: -sched must be steal or nosteal, got %q\n", *sched)
		os.Exit(2)
	}
	var partKind pregel.PartitionKind
	switch *part {
	case "mod":
		partKind = pregel.PartitionMod
	case "degree":
		partKind = pregel.PartitionDegree
	default:
		fmt.Fprintf(os.Stderr, "gmbench: -part must be mod or degree, got %q\n", *part)
		os.Exit(2)
	}
	bench.SetSchedTuning(*chunk, noSteal, partKind)
	var dir pregel.Direction
	switch *direction {
	case "push":
		dir = pregel.DirPush
	case "pull":
		dir = pregel.DirPull
	case "auto":
		dir = pregel.DirAuto
	default:
		fmt.Fprintf(os.Stderr, "gmbench: -direction must be push, pull, or auto, got %q\n", *direction)
		os.Exit(2)
	}
	bench.SetDirection(dir)

	rep := &bench.Report{Meta: bench.Meta{
		Scale: *scale, Workers: *workers, Trials: *trials, Seed: *seed,
		Direction:  *direction,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}}
	modes := []mode{
		{"table1", func() bool { return *table == 1 }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Table1, err = bench.Table1(w, *scale)
			return
		}},
		{"table2", func() bool { return *table == 2 }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Table2, err = bench.Table2(w)
			return
		}},
		{"table3", func() bool { return *table == 3 }, func(w io.Writer, rep *bench.Report) error {
			traces, err := bench.Table3(w)
			if err != nil {
				return err
			}
			rep.Table3, err = bench.NewTable3Summary(traces)
			return err
		}},
		{"figure6", func() bool { return *figure6 }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Figure6, err = bench.Figure6(w, *scale, *workers, *trials, *seed)
			return
		}},
		{"bc", func() bool { return *bc }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.BC, err = bench.BCExperiment(w, *scale, *workers, *seed)
			return
		}},
		{"ablation", func() bool { return *ablation }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Ablation, err = bench.Ablation(w, *scale, *workers, *trials, *seed)
			return
		}},
		{"activity", func() bool { return *activity }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Activity, err = bench.SSSPActivity(w, *scale, *workers, *seed)
			return
		}},
		{"recovery", func() bool { return *recovery }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Recovery, err = bench.RecoveryTable(w, *scale, *workers, *trials, *seed, *ckptEvery, *crashStep, *crashWorker)
			return
		}},
		{"scaling", func() bool { return *scaling }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Scaling, err = bench.ScalingSweep(w, *scalingScale, *scalingWorkers, *trials, *seed)
			return
		}},
		{"schedab", func() bool { return *schedab }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.SchedAB, err = bench.SchedAB(w, *scale, *workers, *trials, *seed)
			return
		}},
		{"chaos", func() bool { return *chaosRun }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Chaos, err = bench.ChaosSuite(w, *scale, *workers, *chaosScheds, *seed)
			return
		}},
		{"dirsweep", func() bool { return *dirsweep }, func(w io.Writer, rep *bench.Report) (err error) {
			rep.Direction, err = bench.DirectionSweep(w, *scale, *workers, *trials, *seed)
			return
		}},
	}
	anyMode := false
	for _, m := range modes {
		if *all || m.enabled() {
			anyMode = true
		}
	}
	if !anyMode {
		flag.PrintDefaults()
		os.Exit(2)
	}

	// Human-readable tables go to stdout, unless -json claims stdout for
	// the machine-readable report.
	w := io.Writer(os.Stdout)
	if *jsonOut {
		w = os.Stderr
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
			os.Exit(1)
		}
	}

	// Observability: every engine run the harness performs reports to the
	// observers selected here; the ring additionally feeds the skew report
	// and the JSON report's skew section.
	observing := *trace || *metrics || *httpAddr != ""
	var (
		observers []obs.Observer
		ring      *obs.Ring
		jsonl     *obs.JSONL
		traceFile *os.File
		reg       = obs.NewRegistry()
		live      *obs.Live
	)
	if observing {
		ring = obs.NewRing(1 << 18)
		observers = append(observers, ring)
	}
	if *trace {
		f, err := os.Create(*traceOut)
		fail(err)
		traceFile = f
		jsonl = obs.NewJSONL(f)
		observers = append(observers, jsonl)
	}
	if *metrics || *httpAddr != "" {
		observers = append(observers, obs.NewMetricsObserver(reg))
	}
	if *httpAddr != "" {
		live = obs.NewLive()
		observers = append(observers, live)
		srv := &http.Server{Addr: *httpAddr, Handler: obs.Handler(reg, live)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "gmbench: http: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "gmbench: serving introspection on http://%s\n", *httpAddr)
	}
	bench.SetObserver(obs.Multi(observers...))

	for _, m := range modes {
		if !*all && !m.enabled() {
			continue
		}
		start := time.Now()
		fail(m.run(w, rep))
		d := time.Since(start)
		// Harness-level metrics guarantee a non-empty exposition even for
		// modes that never start the engine (tables 1-3).
		reg.Counter("gmbench_mode_runs_total", "benchmark modes executed", obs.L("mode", m.name)).Inc()
		reg.Histogram("gmbench_mode_seconds", "wall time per benchmark mode", obs.DurationBuckets(), obs.L("mode", m.name)).Observe(d.Seconds())
		fmt.Fprintln(w)
	}

	if ring != nil {
		if spans := ring.Spans(); len(spans) > 0 {
			skew := obs.Skew(spans)
			rep.Skew = skew
			fmt.Fprintf(w, "Worker skew by engine phase (%d spans", len(spans))
			if d := ring.Dropped(); d > 0 {
				fmt.Fprintf(w, ", oldest %d dropped", d)
			}
			fmt.Fprintf(w, "):\n%s\n", skew.String())
		}
	}
	if jsonl != nil {
		fail(jsonl.Err())
		fail(traceFile.Close())
		fmt.Fprintf(os.Stderr, "gmbench: trace written to %s\n", *traceOut)
	}
	if *metrics {
		f, err := os.Create(*metricsOut)
		fail(err)
		fail(reg.WritePrometheus(f))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "gmbench: metrics written to %s\n", *metricsOut)
	}
	if *jsonOut {
		fail(rep.WriteJSON(os.Stdout))
	}
}
