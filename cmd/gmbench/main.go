// Command gmbench regenerates the paper's evaluation artifacts:
//
//	gmbench -table 1       input graph statistics (Table 1)
//	gmbench -table 2       lines-of-code comparison (Table 2)
//	gmbench -table 3       transformations applied per algorithm (Table 3)
//	gmbench -figure6       generated-vs-manual runtime/steps/bytes (Figure 6)
//	gmbench -bc            the §5.1 Betweenness Centrality experiment
//	gmbench -recovery      checkpoint-overhead / crash-recovery table
//	gmbench -all           everything
//
// -scale multiplies graph sizes (scale 1 ≈ 5-8k vertices per graph);
// -workers, -trials and -seed control the engine runs. The recovery
// table is further shaped by -ckpt-every (0 sweeps {1,2,4,8}),
// -crash-step (0 picks a mid-run superstep off the checkpoint grid),
// and -crash-worker.
package main

import (
	"flag"
	"fmt"
	"os"

	"gmpregel/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table 1, 2, or 3")
		figure6  = flag.Bool("figure6", false, "regenerate Figure 6")
		bc       = flag.Bool("bc", false, "run the Betweenness Centrality compilation experiment")
		ablation = flag.Bool("ablation", false, "measure optimization and combiner ablations")
		activity = flag.Bool("activity", false, "measure the SSSP per-superstep active-vertex profile (§5.2)")
		recovery = flag.Bool("recovery", false, "measure checkpoint overhead and crash-recovery latency")
		all      = flag.Bool("all", false, "regenerate everything")
		scale    = flag.Int("scale", 2, "graph scale multiplier")
		workers  = flag.Int("workers", 8, "engine workers")
		trials   = flag.Int("trials", 3, "timing trials (minimum is reported)")
		seed     = flag.Int64("seed", 1, "random seed")

		ckptEvery   = flag.Int("ckpt-every", 0, "recovery: checkpoint interval (0 sweeps 1,2,4,8)")
		crashStep   = flag.Int("crash-step", 0, "recovery: superstep of the injected crash (0 = auto mid-run)")
		crashWorker = flag.Int("crash-worker", 1, "recovery: worker index of the injected crash")
	)
	flag.Parse()
	if !*all && *table == 0 && !*figure6 && !*bc && !*ablation && !*activity && !*recovery {
		flag.PrintDefaults()
		os.Exit(2)
	}
	w := os.Stdout
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *all || *table == 1 {
		_, err := bench.Table1(w, *scale)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *table == 2 {
		_, err := bench.Table2(w)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *table == 3 {
		_, err := bench.Table3(w)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *figure6 {
		_, err := bench.Figure6(w, *scale, *workers, *trials, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *bc {
		_, err := bench.BCExperiment(w, *scale, *workers, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *ablation {
		_, err := bench.Ablation(w, *scale, *workers, *trials, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *activity {
		_, err := bench.SSSPActivity(w, *scale, *workers, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if *all || *recovery {
		_, err := bench.RecoveryTable(w, *scale, *workers, *trials, *seed, *ckptEvery, *crashStep, *crashWorker)
		fail(err)
	}
}
