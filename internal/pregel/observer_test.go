package pregel

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"gmpregel/internal/graph/gen"
	"gmpregel/internal/obs"
)

// A traced run emits the full phase structure: checkpoint, master,
// per-worker vertex compute, barrier, routing, and the final run span
// carrying the authoritative totals.
func TestObserverSpanPhases(t *testing.T) {
	const n, workers = 60, 4
	g := gen.Ring(n)
	ring := obs.NewRing(4096)
	j := &minLabelJob{label: make([]int64, n)}
	st, err := Run(g, j, Config{NumWorkers: workers, Seed: 3, CheckpointEvery: 4, Observer: ring})
	if err != nil {
		t.Fatal(err)
	}
	spans := ring.Spans()
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d spans; raise capacity", ring.Dropped())
	}

	byPhase := map[obs.Phase][]obs.Span{}
	for _, s := range spans {
		byPhase[s.Phase] = append(byPhase[s.Phase], s)
	}
	if got := len(byPhase[obs.PhaseMaster]); got < st.Supersteps {
		t.Errorf("master spans = %d, want >= %d", got, st.Supersteps)
	}
	if got, want := len(byPhase[obs.PhaseVertexCompute]), st.Supersteps*workers; got != want {
		t.Errorf("vertex-compute spans = %d, want %d", got, want)
	}
	if got, want := len(byPhase[obs.PhaseBarrier]), st.Supersteps; got != want {
		t.Errorf("barrier spans = %d, want %d", got, want)
	}
	if got, want := len(byPhase[obs.PhaseRouting]), st.Supersteps; got != want {
		t.Errorf("routing spans = %d, want %d", got, want)
	}
	if got, want := len(byPhase[obs.PhaseCheckpoint]), st.Checkpoints; got != want {
		t.Errorf("checkpoint spans = %d, want %d", got, want)
	}
	if len(byPhase[obs.PhaseRecovery]) != 0 {
		t.Errorf("fault-free run emitted %d recovery spans", len(byPhase[obs.PhaseRecovery]))
	}

	// Vertex-compute spans carry per-worker attribution that sums to the
	// run totals; engine-scoped spans use worker -1.
	var msgs, netBytes, calls int64
	seenWorkers := map[int]bool{}
	for _, s := range byPhase[obs.PhaseVertexCompute] {
		if s.Worker < 0 || s.Worker >= workers {
			t.Fatalf("vertex span has worker %d", s.Worker)
		}
		seenWorkers[s.Worker] = true
		msgs += s.Messages
		netBytes += s.Bytes
		calls += s.VertexCalls
	}
	if len(seenWorkers) != workers {
		t.Errorf("saw spans from %d workers, want %d", len(seenWorkers), workers)
	}
	if msgs != st.MessagesSent || netBytes != st.NetworkBytes || calls != st.VertexCalls {
		t.Errorf("span sums (%d msgs, %d bytes, %d calls) != stats (%d, %d, %d)",
			msgs, netBytes, calls, st.MessagesSent, st.NetworkBytes, st.VertexCalls)
	}
	for _, p := range []obs.Phase{obs.PhaseMaster, obs.PhaseBarrier, obs.PhaseRouting, obs.PhaseCheckpoint} {
		for _, s := range byPhase[p] {
			if s.Worker != -1 {
				t.Fatalf("%s span has worker %d, want -1", p, s.Worker)
			}
		}
	}
	var ckptBytes int64
	for _, s := range byPhase[obs.PhaseCheckpoint] {
		ckptBytes += s.Bytes
	}
	if ckptBytes != st.CheckpointBytes {
		t.Errorf("checkpoint span bytes = %d, want %d", ckptBytes, st.CheckpointBytes)
	}

	// Exactly one run span, last, with authoritative totals.
	last := spans[len(spans)-1]
	if len(byPhase[obs.PhaseRun]) != 1 || last.Phase != obs.PhaseRun {
		t.Fatalf("want exactly one trailing run span, got %d", len(byPhase[obs.PhaseRun]))
	}
	if last.Worker != -1 || last.Messages != st.MessagesSent ||
		last.Bytes != st.NetworkBytes || last.VertexCalls != st.VertexCalls || last.DurNS <= 0 {
		t.Errorf("run span %+v does not carry run totals %+v", last, st)
	}
}

// Chunk spans attribute every scheduling chunk of the vertex phase:
// one span per chunk per superstep, owner in Worker, executing pool
// goroutine in Executor, Stolen marking the two differing. Their
// per-worker sums equal the aggregated vertex-compute spans, and the
// skew report derives executor-grouped chunk rows from them.
func TestObserverChunkSpans(t *testing.T) {
	const n, workers, chunkSize = 120, 4, 8
	g := gen.TwitterLike(n, 5, 17)
	ring := obs.NewRing(1 << 16)
	j := &minLabelJob{label: make([]int64, n)}
	st, err := Run(g, j, Config{NumWorkers: workers, Seed: 3, ChunkSize: chunkSize, Observer: ring})
	if err != nil {
		t.Fatal(err)
	}
	spans := ring.Spans()
	chunksPerStep := 0
	for w := 0; w < workers; w++ {
		nw := (n - w + workers - 1) / workers
		chunksPerStep += (nw + chunkSize - 1) / chunkSize
	}
	var chunkSpans []obs.Span
	vertexTotals := map[[2]int][3]int64{} // (step, worker) -> msgs, bytes, calls
	for _, s := range spans {
		switch s.Phase {
		case obs.PhaseChunk:
			chunkSpans = append(chunkSpans, s)
			if s.Worker < 0 || s.Worker >= workers || s.Executor < 0 || s.Executor >= workers {
				t.Fatalf("chunk span with bad attribution: %+v", s)
			}
			if s.Stolen != (s.Worker != s.Executor) {
				t.Fatalf("chunk span stolen flag inconsistent: %+v", s)
			}
		case obs.PhaseVertexCompute:
			vertexTotals[[2]int{s.Superstep, s.Worker}] = [3]int64{s.Messages, s.Bytes, s.VertexCalls}
		}
	}
	if got, want := len(chunkSpans), st.Supersteps*chunksPerStep; got != want {
		t.Fatalf("chunk spans = %d, want %d (%d chunks x %d supersteps)",
			got, want, chunksPerStep, st.Supersteps)
	}
	sums := map[[2]int][3]int64{}
	for _, s := range chunkSpans {
		k := [2]int{s.Superstep, s.Worker}
		v := sums[k]
		v[0] += s.Messages
		v[1] += s.Bytes
		v[2] += s.VertexCalls
		sums[k] = v
	}
	for k, want := range vertexTotals {
		if got := sums[k]; got != want {
			t.Errorf("step %d worker %d: chunk span sums %v != vertex-compute span %v",
				k[0], k[1], got, want)
		}
	}
	// The skew report groups the chunk rows by executor.
	rep := obs.Skew(spans)
	row, ok := rep.Row("chunk")
	if !ok {
		t.Fatal("skew report missing chunk row")
	}
	if row.Spans != len(chunkSpans) || row.Workers < 1 || row.Workers > workers {
		t.Errorf("chunk skew row %+v inconsistent with %d spans", row, len(chunkSpans))
	}
	// With NoSteal every chunk must be run by its owner.
	ring2 := obs.NewRing(1 << 16)
	j2 := &minLabelJob{label: make([]int64, n)}
	if _, err := Run(g, j2, Config{NumWorkers: workers, Seed: 3, ChunkSize: chunkSize,
		NoSteal: true, Observer: ring2}); err != nil {
		t.Fatal(err)
	}
	for _, s := range ring2.Spans() {
		if s.Phase == obs.PhaseChunk && (s.Stolen || s.Executor != s.Worker) {
			t.Fatalf("NoSteal run emitted stolen chunk span: %+v", s)
		}
	}
}

// A crash-and-recover run emits recovery spans and keeps the rolled-back
// supersteps visible in the trace (Stats rewinds; the trace does not).
func TestObserverRecoveryVisibleInTrace(t *testing.T) {
	const n = 60
	g := gen.Ring(n)
	ring := obs.NewRing(8192)
	j := &minLabelJob{label: make([]int64, n)}
	st, err := Run(g, j, Config{
		NumWorkers: 4, Seed: 3, CheckpointEvery: 4,
		Faults:   FaultPlan{{Superstep: 7, Worker: 2}},
		Observer: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	var recoveries, step7Barriers int
	for _, s := range ring.Spans() {
		if s.Phase == obs.PhaseRecovery {
			recoveries++
			if s.Superstep != 7 || s.Worker != 2 {
				t.Errorf("recovery span attributed to superstep %d worker %d, want 7/2", s.Superstep, s.Worker)
			}
		}
		if s.Phase == obs.PhaseBarrier && s.Superstep == 7 {
			step7Barriers++
		}
	}
	if recoveries != 1 {
		t.Errorf("recovery spans = %d, want 1", recoveries)
	}
	// Superstep 7 crashed before its barrier, then replayed to completion:
	// exactly one barrier, but supersteps 4..7 each ran twice, so the
	// trace holds more vertex work than Stats.VertexCalls admits.
	if step7Barriers != 1 {
		t.Errorf("superstep-7 barrier spans = %d, want 1", step7Barriers)
	}
	var tracedCalls int64
	for _, s := range ring.Spans() {
		if s.Phase == obs.PhaseVertexCompute {
			tracedCalls += s.VertexCalls
		}
	}
	if tracedCalls <= st.VertexCalls {
		t.Errorf("traced calls %d should exceed post-rollback stats %d", tracedCalls, st.VertexCalls)
	}
}

// Satellite acceptance: under fault injection, Stats.Steps — including
// the extended NetworkMsgs/LocalBytes/ControlBytes fields — is
// bit-identical to the fault-free run's.
func TestTraceStepsBitIdenticalUnderFaults(t *testing.T) {
	const n = 60
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 3, TraceSteps: true}
	_, st := runMinLabel(t, g, n, base)

	faulty := base
	faulty.CheckpointEvery = 4
	faulty.Faults = FaultPlan{{Superstep: 7, Worker: 2}, {Superstep: 13, Worker: 1}}
	_, fst := runMinLabel(t, g, n, faulty)

	if fst.Recoveries != 2 {
		t.Fatalf("Recoveries = %d, want 2", fst.Recoveries)
	}
	if !reflect.DeepEqual(st.Steps, fst.Steps) {
		t.Errorf("per-step stats differ under fault injection:\nfault-free: %+v\nfaulty:     %+v", st.Steps, fst.Steps)
	}
	if len(st.Steps) != st.Supersteps {
		t.Fatalf("len(Steps) = %d, want %d", len(st.Steps), st.Supersteps)
	}
	// The extended per-step fields must sum to the run totals.
	var sum StepStats
	for _, s := range st.Steps {
		sum.Messages += s.Messages
		sum.NetworkBytes += s.NetworkBytes
		sum.VertexCalls += s.VertexCalls
		sum.NetworkMsgs += s.NetworkMsgs
		sum.LocalBytes += s.LocalBytes
		sum.ControlBytes += s.ControlBytes
	}
	want := StepStats{
		Messages:     st.MessagesSent,
		NetworkBytes: st.NetworkBytes,
		VertexCalls:  st.VertexCalls,
		NetworkMsgs:  st.NetworkMsgs,
		LocalBytes:   st.LocalBytes,
		ControlBytes: st.ControlBytes,
	}
	if sum != want {
		t.Errorf("per-step sums %+v != run totals %+v", sum, want)
	}
}

// Old checkpoint versions are rejected with a clear error instead of
// being misread under the new layout.
func TestCheckpointOldVersionRejected(t *testing.T) {
	const n = 30
	g := gen.Ring(n)
	j := &minLabelJob{label: make([]int64, n)}
	cfg := Config{NumWorkers: 3, Seed: 4, TraceSteps: true, CheckpointEvery: 1}.withDefaults()
	e := newEngine(g, j, cfg)
	defer e.stop()
	e.cfg.MaxSupersteps = 5
	if err := e.loop(context.Background()); err == nil {
		t.Fatal("want max-supersteps error, got nil")
	}
	data := e.encodeState()
	if data[0] != checkpointVersion {
		t.Fatalf("version byte = %d, want %d", data[0], checkpointVersion)
	}
	for _, v := range []byte{1, 0, 99} {
		old := append([]byte(nil), data...)
		old[0] = v
		err := e.decodeState(old)
		if err == nil || !strings.Contains(err.Error(), "unknown checkpoint version") {
			t.Errorf("version %d: err = %v, want unknown-version rejection", v, err)
		}
	}
	// The engine remains usable after a rejected decode.
	if err := e.decodeState(data); err != nil {
		t.Fatalf("valid decode after rejection failed: %v", err)
	}
}
