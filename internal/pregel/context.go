package pregel

import (
	"math"
	"math/rand"

	"gmpregel/internal/graph"
)

// MasterContext is the API surface of master.compute(). The master sees
// aggregator values contributed during the previous superstep, may set
// global objects visible to vertices in the current superstep, and may
// halt the computation (in which case no vertex phase runs this step).
type MasterContext struct {
	e         *engine
	superstep int
}

// Superstep returns the current superstep number, starting from 0.
func (mc *MasterContext) Superstep() int { return mc.superstep }

// NumNodes returns the number of vertices in the graph.
func (mc *MasterContext) NumNodes() int { return mc.e.g.NumNodes() }

// NumEdges returns the number of edges in the graph.
func (mc *MasterContext) NumEdges() int64 { return mc.e.g.NumEdges() }

// Halt terminates the computation; the current superstep's vertex phase
// does not run.
func (mc *MasterContext) Halt() { mc.e.halted = true }

// ReturnInt records the program's integer return value, readable from
// Stats after the run.
func (mc *MasterContext) ReturnInt(v int64) {
	mc.e.retSet, mc.e.retIsInt, mc.e.retInt = true, true, v
}

// ReturnFloat records the program's float return value.
func (mc *MasterContext) ReturnFloat(v float64) {
	mc.e.retSet, mc.e.retIsInt, mc.e.retFloat = true, false, v
}

// AggIsSet reports whether any vertex contributed to aggregator slot s
// during the previous superstep.
func (mc *MasterContext) AggIsSet(s int) bool { return mc.e.aggValues[s].set }

// AggInt returns the merged int value of aggregator slot s (0 if unset).
func (mc *MasterContext) AggInt(s int) int64 { return mc.e.aggValues[s].i }

// AggFloat returns the merged float value of aggregator slot s.
func (mc *MasterContext) AggFloat(s int) float64 { return mc.e.aggValues[s].f }

// AggBool returns the merged bool value of aggregator slot s.
func (mc *MasterContext) AggBool(s int) bool { return mc.e.aggValues[s].i != 0 }

// ClearAgg resets aggregator slot s. Aggregators are otherwise
// cumulative only within a superstep: worker partials are merged at the
// barrier and replaced the next superstep, so an explicit clear is needed
// when the master wants "unset" semantics to persist.
func (mc *MasterContext) ClearAgg(s int) { mc.e.aggValues[s] = aggCell{} }

func (mc *MasterContext) setGlobal(s int, v uint64) {
	mc.e.globals[s] = v
	size := 8
	if s < len(mc.e.schema.Globals) && mc.e.schema.Globals[s].Size > 0 {
		size = mc.e.schema.Globals[s].Size
	}
	mc.e.globalBytes += int64(size * (mc.e.numWorkers - 1))
}

// SetGlobalInt broadcasts an int global; vertices see it this superstep.
func (mc *MasterContext) SetGlobalInt(s int, v int64) { mc.setGlobal(s, uint64(v)) }

// SetGlobalFloat broadcasts a float global.
func (mc *MasterContext) SetGlobalFloat(s int, v float64) { mc.setGlobal(s, math.Float64bits(v)) }

// SetGlobalBool broadcasts a bool global.
func (mc *MasterContext) SetGlobalBool(s int, v bool) {
	if v {
		mc.setGlobal(s, 1)
	} else {
		mc.setGlobal(s, 0)
	}
}

// SetGlobalNode broadcasts a node-ID global.
func (mc *MasterContext) SetGlobalNode(s int, v graph.NodeID) { mc.setGlobal(s, uint64(uint32(v))) }

// GlobalInt reads back a global the master previously set.
func (mc *MasterContext) GlobalInt(s int) int64 { return int64(mc.e.globals[s]) }

// Rand returns the master's seeded RNG (used by G.PickRandom in
// sequential phases).
func (mc *MasterContext) Rand() *rand.Rand { return mc.e.masterRand }

// PickRandomNode returns a uniformly random vertex, or NilNode when the
// graph has no vertices (no RNG draw is consumed in that case).
func (mc *MasterContext) PickRandomNode() graph.NodeID {
	n := mc.e.g.NumNodes()
	if n == 0 {
		return graph.NilNode
	}
	return graph.NodeID(mc.e.masterRand.Intn(n))
}

// VertexContext is the API surface of vertex.compute(). One value lives
// on each executor and is reused across every vertex that executor runs
// within a superstep — under work stealing those may belong to several
// workers' chunks; do not retain it.
type VertexContext struct {
	ex        *executor
	wk        *worker // owner of the vertex currently executing
	ck        *chunk  // chunk the vertex belongs to
	superstep int
	id        graph.NodeID
	local     int
	msgs      []Msg
}

// ID returns the vertex's global ID.
func (vc *VertexContext) ID() graph.NodeID { return vc.id }

// Superstep returns the current superstep number.
func (vc *VertexContext) Superstep() int { return vc.superstep }

// NumNodes returns the number of vertices in the graph.
func (vc *VertexContext) NumNodes() int { return vc.wk.e.g.NumNodes() }

// OutDegree returns this vertex's out-degree.
func (vc *VertexContext) OutDegree() int { return vc.wk.e.g.OutDegree(vc.id) }

// OutNbrs returns this vertex's out-neighbors (do not modify).
func (vc *VertexContext) OutNbrs() []graph.NodeID { return vc.wk.e.g.OutNbrs(vc.id) }

// OutEdgeRange returns the half-open out-edge index range of this vertex,
// for reading per-edge property arrays.
func (vc *VertexContext) OutEdgeRange() (lo, hi int64) { return vc.wk.e.g.OutEdgeRange(vc.id) }

// Messages returns the messages sent to this vertex in the previous
// superstep, grouped deterministically (source-worker order).
func (vc *VertexContext) Messages() []Msg { return vc.msgs }

// deliver records one outgoing message on the current chunk. Plain jobs
// box it by destination worker immediately; combiner jobs log the raw
// emission for the worker-scoped fold pass (or, when the worker is a
// single chunk and therefore exclusively executed, fold it in place).
// Either way the message's eventual position depends only on its
// (worker, chunk, emission-index) coordinates, not on the executor.
func (vc *VertexContext) deliver(m Msg) {
	wk := vc.wk
	if wk.combiners != nil {
		if wk.single {
			wk.foldSend(m)
		} else {
			vc.ck.raw = append(vc.ck.raw, m)
		}
		return
	}
	ck := vc.ck
	dw := wk.ownerOf(m.Dst)
	ck.boxes[dw] = append(ck.boxes[dw], m)
	ck.msgs++
	size := wk.baseSize
	if int(m.Type) < len(wk.msgSize) {
		size = wk.msgSize[m.Type]
	}
	if dw != wk.index {
		ck.netMsgs++
		ck.netBytes += size
	} else {
		ck.localBytes += size
	}
}

// Send sends m to dst, delivered next superstep. In a pull superstep
// the push is suppressed: the gather phase re-derives every message
// from the sender's post-compute state via the job's Gather.
func (vc *VertexContext) Send(dst graph.NodeID, m Msg) {
	if vc.wk.pull {
		return
	}
	m.Dst = dst
	vc.deliver(m)
}

// SendToAllNbrs sends a copy of m to every out-neighbor (suppressed in
// pull supersteps, like Send).
func (vc *VertexContext) SendToAllNbrs(m Msg) {
	if vc.wk.pull {
		return
	}
	nbrs := vc.wk.e.g.OutNbrs(vc.id)
	wk := vc.wk
	if wk.combiners != nil {
		if wk.single {
			for _, d := range nbrs {
				m.Dst = d
				wk.foldSend(m)
			}
		} else {
			for _, d := range nbrs {
				m.Dst = d
				vc.ck.raw = append(vc.ck.raw, m)
			}
		}
		return
	}
	// Plain bulk path: hoist the per-message size and branch on the
	// partitioner once.
	ck := vc.ck
	size := wk.baseSize
	if int(m.Type) < len(wk.msgSize) {
		size = wk.msgSize[m.Type]
	}
	self := wk.index
	if wk.pblocks == nil {
		div := wk.div
		for _, d := range nbrs {
			m.Dst = d
			dw := int(div.mod(uint32(d)))
			ck.boxes[dw] = append(ck.boxes[dw], m)
			if dw != self {
				ck.netMsgs++
				ck.netBytes += size
			} else {
				ck.localBytes += size
			}
		}
	} else {
		pb, sh := wk.pblocks, wk.pshift
		for _, d := range nbrs {
			m.Dst = d
			dw := int(pb[uint32(d)>>sh])
			ck.boxes[dw] = append(ck.boxes[dw], m)
			if dw != self {
				ck.netMsgs++
				ck.netBytes += size
			} else {
				ck.localBytes += size
			}
		}
	}
	ck.msgs += int64(len(nbrs))
}

// VoteToHalt deactivates this vertex; it is reactivated when a message
// arrives.
func (vc *VertexContext) VoteToHalt() {
	if vc.wk.active[vc.local] {
		vc.wk.active[vc.local] = false
		vc.ck.numActive--
		vc.ck.frontEdges -= int64(vc.wk.e.g.OutDegree(vc.id))
	}
}

// PullStep reports whether the current superstep executes in the pull
// direction. Jobs whose compiled send work is expensive may branch on
// it to skip per-edge evaluation the gather will redo anyway; sends
// are suppressed either way.
func (vc *VertexContext) PullStep() bool { return vc.wk.pull }

// GlobalInt reads an int global broadcast by the master this superstep.
func (vc *VertexContext) GlobalInt(s int) int64 { return int64(vc.wk.e.globals[s]) }

// GlobalFloat reads a float global.
func (vc *VertexContext) GlobalFloat(s int) float64 {
	return math.Float64frombits(vc.wk.e.globals[s])
}

// GlobalBool reads a bool global.
func (vc *VertexContext) GlobalBool(s int) bool { return vc.wk.e.globals[s] != 0 }

// GlobalNode reads a node-ID global.
func (vc *VertexContext) GlobalNode(s int) graph.NodeID {
	return graph.NodeID(int32(uint32(vc.wk.e.globals[s])))
}

// AggInt contributes an int value to aggregator slot s; merged with the
// slot's declared reduction and visible to the master next superstep.
// Contributions accumulate on the chunk and are merged at the barrier in
// canonical (worker, chunk) order, so the merged value is independent of
// the execution schedule.
func (vc *VertexContext) AggInt(s int, v int64) {
	vc.ck.agg[s].merge(vc.wk.e.schema.Aggregators[s], aggCell{set: true, i: v})
}

// AggFloat contributes a float value to aggregator slot s.
func (vc *VertexContext) AggFloat(s int, v float64) {
	vc.ck.agg[s].merge(vc.wk.e.schema.Aggregators[s], aggCell{set: true, f: v})
}

// AggBool contributes a bool value to aggregator slot s.
func (vc *VertexContext) AggBool(s int, v bool) {
	c := aggCell{set: true}
	if v {
		c.i = 1
	}
	vc.ck.agg[s].merge(vc.wk.e.schema.Aggregators[s], c)
}

// Rand returns a seeded RNG whose stream is a pure function of the run
// seed, this vertex's ID, and the superstep — independent of chunk size,
// stealing, worker count, and partitioning. The stream restarts each
// superstep, so a rolled-back replay redraws identical values.
func (vc *VertexContext) Rand() *rand.Rand {
	x := vc.ex
	if x.rngID != vc.id || x.rngStep != vc.superstep {
		x.rngID, x.rngStep = vc.id, vc.superstep
		x.rngSrc.Seed(int64(x.seedBase ^ mix64(uint64(uint32(vc.id))<<20|uint64(uint32(vc.superstep)))))
	}
	return x.rng
}

// WorkerIndex returns the index of the worker owning this vertex (stable
// for a run regardless of which executor runs the chunk; useful for
// partition-scoped storage in jobs).
func (vc *VertexContext) WorkerIndex() int { return vc.wk.index }

// ExecutorIndex returns the index of the executor goroutine running this
// vertex. Under work stealing this may differ from WorkerIndex; scratch
// state a job mutates during compute must be indexed by executor, not
// worker, to stay race-free.
func (vc *VertexContext) ExecutorIndex() int { return vc.ex.id }

// NumWorkers returns the number of workers in this run (also the number
// of executors).
func (vc *VertexContext) NumWorkers() int { return vc.wk.e.numWorkers }
