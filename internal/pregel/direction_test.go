package pregel

import (
	"context"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// dirBFSJob is an in-package BFS: the canonical direction-optimization
// workload (single-vertex frontier that swells and collapses).
type dirBFSJob struct {
	root  graph.NodeID
	level []int64
}

func (j *dirBFSJob) Schema() Schema                  { return Schema{MessagePayloadBytes: []int{0}} }
func (j *dirBFSJob) MasterCompute(mc *MasterContext) {}
func (j *dirBFSJob) VertexCompute(vc *VertexContext) {
	v := vc.ID()
	s := vc.Superstep()
	if s == 0 {
		if v == j.root {
			j.level[v] = 0
			vc.SendToAllNbrs(Msg{})
		} else {
			j.level[v] = -1
		}
		vc.VoteToHalt()
		return
	}
	if j.level[v] < 0 && len(vc.Messages()) > 0 {
		j.level[v] = int64(s)
		vc.SendToAllNbrs(Msg{})
	}
	vc.VoteToHalt()
}
func (j *dirBFSJob) GatherEligible(superstep int) bool { return true }

// Checkpointable: crash recovery must restore the level array, not just
// engine state.
func (j *dirBFSJob) SnapshotState() []byte {
	b := make([]byte, 8*len(j.level))
	for i, l := range j.level {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(l))
	}
	return b
}
func (j *dirBFSJob) RestoreState(b []byte) {
	for i := range j.level {
		j.level[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}
func (j *dirBFSJob) Gather(gc *GatherContext, src graph.NodeID, edge int64) (Msg, bool) {
	if j.level[src] == int64(gc.Superstep()) {
		return Msg{}, true
	}
	return Msg{}, false
}

// dirRankJob is a PageRank-shaped dense workload: float payloads, a
// float-sum combiner, and a float AggSum — the three places where
// reordering a fold would show up as bit drift.
type dirRankJob struct {
	rank     []float64
	iters    int
	combined bool
}

func (j *dirRankJob) Schema() Schema {
	s := Schema{
		MessagePayloadBytes: []int{8},
		Aggregators:         []AggSpec{{Name: "diff", Kind: AggKindFloat, Op: AggSum}},
	}
	if j.combined {
		s.Combiners = []Combiner{func(into *Msg, m Msg) {
			into.SetFloat(0, into.Float(0)+m.Float(0))
		}}
	}
	return s
}
func (j *dirRankJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == j.iters {
		mc.ReturnFloat(mc.AggFloat(0))
		mc.Halt()
	}
}
func (j *dirRankJob) VertexCompute(vc *VertexContext) {
	v := vc.ID()
	s := vc.Superstep()
	if s == 0 {
		j.rank[v] = 1 / float64(vc.NumNodes())
		return
	}
	sum := 0.0
	for _, m := range vc.Messages() {
		sum += m.Float(0)
	}
	if s >= 2 {
		val := 0.15/float64(vc.NumNodes()) + 0.85*sum
		d := val - j.rank[v]
		if d < 0 {
			d = -d
		}
		vc.AggFloat(0, d)
		j.rank[v] = val
	}
	if deg := vc.OutDegree(); deg > 0 {
		var m Msg
		m.SetFloat(0, j.rank[v]/float64(deg))
		vc.SendToAllNbrs(m)
	}
}
func (j *dirRankJob) GatherEligible(superstep int) bool { return superstep >= 1 }
func (j *dirRankJob) Gather(gc *GatherContext, src graph.NodeID, edge int64) (Msg, bool) {
	var m Msg
	m.SetFloat(0, j.rank[src]/float64(gc.OutDegree(src)))
	return m, true
}

// runDirBFS runs BFS under cfg and returns levels and stats.
func runDirBFS(t *testing.T, g *graph.Directed, cfg Config) ([]int64, Stats) {
	t.Helper()
	j := &dirBFSJob{root: 0, level: make([]int64, g.NumNodes())}
	st, err := Run(g, j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j.level, st
}

// TestDirectionStatsBitIdentity is the tentpole contract: push, pull,
// and auto runs of the same job produce bit-identical Stats (including
// the per-step trace) and bit-identical vertex state, across worker
// counts, chunk sizes, stealing, partitioners, and routing modes.
func TestDirectionStatsBitIdentity(t *testing.T) {
	g := gen.TwitterLike(300, 6, 1)
	for _, workers := range []int{1, 2, 7} {
		for _, chunk := range []int{1, 64} {
			for _, noSteal := range []bool{false, true} {
				for _, part := range []PartitionKind{PartitionMod, PartitionDegree} {
					base := Config{
						NumWorkers: workers, Seed: 9, TraceSteps: true,
						ChunkSize: chunk, NoSteal: noSteal, Partitioner: part,
					}
					name := fmt.Sprintf("w%d-c%d-steal%v-part%d", workers, chunk, !noSteal, part)
					t.Run(name, func(t *testing.T) {
						pushCfg := base
						pushCfg.Direction = DirPush
						pushLvl, pushSt := runDirBFS(t, g, pushCfg)
						for _, dir := range []Direction{DirPull, DirAuto} {
							cfg := base
							cfg.Direction = dir
							var tr DirectionTrace
							cfg.DirTrace = &tr
							lvl, st := runDirBFS(t, g, cfg)
							if !reflect.DeepEqual(pushLvl, lvl) {
								t.Errorf("%v: levels differ from push", dir)
							}
							if !reflect.DeepEqual(pushSt, st) {
								t.Errorf("%v: stats differ from push:\npush: %+v\n%v:  %+v", dir, pushSt, dir, st)
							}
							if dir == DirPull && tr.PullSteps == 0 {
								t.Errorf("DirPull executed no pull supersteps: %v", tr.Steps)
							}
						}
					})
				}
			}
		}
	}
}

// TestDirectionRankBitIdentity covers the float-fold hazards: plain and
// combined float payloads plus a float AggSum must fold in the same
// order either direction, under both routing modes.
func TestDirectionRankBitIdentity(t *testing.T) {
	g := gen.Random(250, 2500, 4)
	for _, combined := range []bool{false, true} {
		for _, routing := range []RoutingMode{RouteEager, RouteBarrier} {
			for _, workers := range []int{1, 3, 7} {
				name := fmt.Sprintf("combined%v-routing%d-w%d", combined, routing, workers)
				t.Run(name, func(t *testing.T) {
					var ranks [][]float64
					var stats []Stats
					for _, dir := range []Direction{DirPush, DirPull} {
						j := &dirRankJob{rank: make([]float64, g.NumNodes()), iters: 8, combined: combined}
						st, err := Run(g, j, Config{
							NumWorkers: workers, Seed: 2, TraceSteps: true,
							Routing: routing, Direction: dir,
						})
						if err != nil {
							t.Fatal(err)
						}
						ranks = append(ranks, j.rank)
						stats = append(stats, st)
					}
					if !reflect.DeepEqual(ranks[0], ranks[1]) {
						t.Error("ranks differ between push and pull (float fold order drifted)")
					}
					if !reflect.DeepEqual(stats[0], stats[1]) {
						t.Errorf("stats differ:\npush: %+v\npull: %+v", stats[0], stats[1])
					}
				})
			}
		}
	}
}

// TestDirAutoSwitchesOnBFS pins the heuristic's observable behavior:
// on a BFS whose frontier swells past the density threshold, DirAuto
// chooses pull for the dense middle supersteps and push for the sparse
// fringe — at least one switch each way.
func TestDirAutoSwitchesOnBFS(t *testing.T) {
	g := gen.TwitterLike(2000, 8, 3)
	cfg := Config{NumWorkers: 4, Seed: 1, Direction: DirAuto}
	var tr DirectionTrace
	cfg.DirTrace = &tr
	runDirBFS(t, g, cfg)
	if tr.PullSteps == 0 {
		t.Fatalf("DirAuto never pulled on a dense-frontier BFS: %v", tr.Steps)
	}
	if tr.PullSteps == len(tr.Steps) {
		t.Fatalf("DirAuto never pushed (sparse fringe should stay push): %v", tr.Steps)
	}
	if tr.Switches == 0 {
		t.Fatalf("DirAuto never switched direction: %v", tr.Steps)
	}
}

// TestDirAutoCrashRecoveryBitIdentity: a crash-and-replay DirAuto run
// must re-execute the identical push/pull schedule (the codec persists
// dirHistory) and converge to bit-identical levels and Stats.
func TestDirAutoCrashRecoveryBitIdentity(t *testing.T) {
	g := gen.TwitterLike(800, 6, 7)
	base := Config{NumWorkers: 4, Seed: 5, TraceSteps: true, Direction: DirAuto}
	var cleanTr DirectionTrace
	cleanCfg := base
	cleanCfg.DirTrace = &cleanTr
	cleanLvl, cleanSt := runDirBFS(t, g, cleanCfg)
	if cleanTr.PullSteps == 0 {
		t.Fatalf("workload never pulled; recovery test needs a mixed schedule: %v", cleanTr.Steps)
	}

	var faultTr DirectionTrace
	faultCfg := base
	faultCfg.DirTrace = &faultTr
	faultCfg.CheckpointEvery = 2
	faultCfg.Faults = FaultPlan{{Superstep: 3, Worker: 1}}
	faultLvl, faultSt := runDirBFS(t, g, faultCfg)

	if !reflect.DeepEqual(cleanLvl, faultLvl) {
		t.Error("levels differ after DirAuto crash recovery")
	}
	if a, b := statsModuloRecovery(cleanSt), statsModuloRecovery(faultSt); !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ after DirAuto crash recovery:\nclean:  %+v\nfaulty: %+v", a, b)
	}
	if faultSt.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", faultSt.Recoveries)
	}
	if !reflect.DeepEqual(cleanTr.Steps, faultTr.Steps) {
		t.Errorf("replay changed the direction schedule:\nclean:  %v\nfaulty: %v", cleanTr.Steps, faultTr.Steps)
	}
}

// TestDirPullRoutingFaultRecovers: an armed routing-family fault in a
// pull superstep fires at the gather instead and recovers bit-identically.
func TestDirPullRoutingFaultRecovers(t *testing.T) {
	g := gen.TwitterLike(400, 6, 2)
	base := Config{NumWorkers: 3, Seed: 4, TraceSteps: true, Direction: DirPull}
	cleanLvl, cleanSt := runDirBFS(t, g, base)

	for _, phase := range []FaultPhase{FaultRouting, FaultRoutePrefix} {
		faultCfg := base
		faultCfg.CheckpointEvery = 2
		faultCfg.Faults = FaultPlan{{Superstep: 2, Worker: 1, Phase: phase}}
		lvl, st := runDirBFS(t, g, faultCfg)
		if !reflect.DeepEqual(cleanLvl, lvl) {
			t.Errorf("%v: levels differ after pull-step fault recovery", phase)
		}
		if a, b := statsModuloRecovery(cleanSt), statsModuloRecovery(st); !reflect.DeepEqual(a, b) {
			t.Errorf("%v: stats differ after pull-step fault recovery:\n%+v\n%+v", phase, a, b)
		}
		if st.Recoveries != 1 {
			t.Errorf("%v: Recoveries = %d, want 1", phase, st.Recoveries)
		}
	}
}

// TestWarmPullZeroAlloc: a warm pull superstep — suppressed-send vertex
// phase plus the reverse-CSR gather on the persistent pool — must
// allocate nothing, on both the plain and the combined inbox path,
// with and without stealing.
func TestWarmPullZeroAlloc(t *testing.T) {
	const n = 256
	g := gen.TwitterLike(n, 4, 3)
	cases := []struct {
		name     string
		combined bool
		cfg      Config
	}{
		{"plain", false, Config{NumWorkers: 4, Seed: 1, Direction: DirPull}},
		{"plain-nosteal", false, Config{NumWorkers: 4, Seed: 1, Direction: DirPull, NoSteal: true}},
		{"plain-degree", false, Config{NumWorkers: 4, Seed: 1, Direction: DirPull, Partitioner: PartitionDegree}},
		{"combined", true, Config{NumWorkers: 4, Seed: 1, Direction: DirPull}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := &dirRankJob{rank: make([]float64, n), iters: 1 << 20, combined: tc.combined}
			e := newEngine(g, j, tc.cfg.withDefaults())
			defer e.stop()
			if !e.pullOn {
				t.Fatal("engine did not arm pull for a GatherSender job")
			}
			e.pullStep = true
			for _, wk := range e.workers {
				wk.pull = true
			}
			step := 1
			cycle := func() {
				e.runVertexPhase(step)
				e.gatherMessages(step)
				step++
			}
			for i := 0; i < 3; i++ {
				cycle() // reach high-water inbox capacity
			}
			if a := testing.AllocsPerRun(10, cycle); a != 0 {
				t.Fatalf("warm pull superstep allocates %v per run, want 0", a)
			}
			for _, x := range e.executors {
				if x.err != nil {
					t.Fatalf("executor %d failed: %v", x.id, x.err)
				}
			}
			for _, wk := range e.workers {
				for ci := range wk.chunks {
					if err := wk.chunks[ci].err; err != nil {
						t.Fatalf("worker %d chunk %d failed: %v", wk.index, ci, err)
					}
				}
			}
		})
	}
}

// TestFrontierCounterInvariant: after a run, every chunk's frontEdges
// equals the out-degree sum of its active vertices (the counter is
// maintained incrementally and never recomputed on the hot path).
func TestFrontierCounterInvariant(t *testing.T) {
	g := gen.TwitterLike(500, 5, 6)
	j := &dirRankJob{rank: make([]float64, g.NumNodes()), iters: 5}
	e := newEngine(g, j, Config{NumWorkers: 4, Seed: 1, Direction: DirAuto}.withDefaults())
	defer e.stop()
	if err := e.loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, wk := range e.workers {
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			want := int64(0)
			for li := ck.lo; li < ck.hi; li++ {
				if wk.active[li] {
					want += int64(g.OutDegree(wk.ids[li]))
				}
			}
			if ck.frontEdges != want {
				t.Fatalf("worker %d chunk %d frontEdges = %d, want %d", wk.index, ci, ck.frontEdges, want)
			}
		}
	}
}
