package pregel

import (
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// controlJob exercises global broadcast and aggregator control-byte
// accounting with declared sizes.
type controlJob struct{ steps int }

func (j *controlJob) Schema() Schema {
	return Schema{
		Aggregators: []AggSpec{{Name: "a", Kind: AggKindInt, Op: AggSum}},
		Globals:     []GlobalSpec{{Name: "g4", Size: 4}, {Name: "g8", Size: 8}},
	}
}
func (j *controlJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.steps {
		mc.Halt()
		return
	}
	mc.SetGlobalInt(0, int64(mc.Superstep()))
	mc.SetGlobalFloat(1, 0.5)
}
func (j *controlJob) VertexCompute(vc *VertexContext) {
	vc.AggInt(0, 1)
}

func TestControlByteAccounting(t *testing.T) {
	const W = 3
	g := gen.Ring(9)
	st, err := Run(g, &controlJob{steps: 4}, Config{NumWorkers: W})
	if err != nil {
		t.Fatal(err)
	}
	// Per superstep: broadcasts 4+8 bytes to W-1 workers; the aggregator
	// contributes 8 bytes from W-1 workers.
	perStep := int64((4 + 8 + 8) * (W - 1))
	if st.ControlBytes != 4*perStep {
		t.Errorf("control bytes = %d, want %d", st.ControlBytes, 4*perStep)
	}
	if st.NetworkBytes != 0 {
		t.Errorf("no messages were sent, network bytes = %d", st.NetworkBytes)
	}
}

// aggKindsJob covers min/max/and/any aggregator semantics.
type aggKindsJob struct{ t *testing.T }

func (j *aggKindsJob) Schema() Schema {
	return Schema{Aggregators: []AggSpec{
		{Name: "min", Kind: AggKindInt, Op: AggMin},
		{Name: "max", Kind: AggKindFloat, Op: AggMax},
		{Name: "and", Kind: AggKindBool, Op: AggAnd},
		{Name: "any", Kind: AggKindInt, Op: AggAny},
	}}
}
func (j *aggKindsJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 1 {
		if got := mc.AggInt(0); got != 2 {
			j.t.Errorf("min agg = %d, want 2", got)
		}
		if got := mc.AggFloat(1); got != 11.5 {
			j.t.Errorf("max agg = %v, want 11.5", got)
		}
		if mc.AggBool(2) {
			j.t.Error("and agg should be false (vertex 3 contributed false)")
		}
		if !mc.AggIsSet(3) {
			j.t.Error("any agg unset")
		}
		mc.Halt()
	}
}
func (j *aggKindsJob) VertexCompute(vc *VertexContext) {
	v := int64(vc.ID())
	vc.AggInt(0, v+2)
	vc.AggFloat(1, float64(v)+1.5)
	vc.AggBool(2, v != 3)
	vc.AggInt(3, v)
}

func TestAggregatorKinds(t *testing.T) {
	g := gen.Ring(11)
	if _, err := Run(g, &aggKindsJob{t: t}, Config{NumWorkers: 4}); err != nil {
		t.Fatal(err)
	}
}

// orderJob records per-vertex message payload order; it must be
// identical across runs (deterministic inbox grouping).
type orderJob struct {
	order [][]int64
}

func (j *orderJob) Schema() Schema { return Schema{MessagePayloadBytes: []int{8}} }
func (j *orderJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 2 {
		mc.Halt()
	}
}
func (j *orderJob) VertexCompute(vc *VertexContext) {
	if vc.Superstep() == 0 {
		var m Msg
		m.SetInt(0, int64(vc.ID()))
		vc.Send(0, m)
		return
	}
	for _, m := range vc.Messages() {
		j.order[vc.ID()] = append(j.order[vc.ID()], m.Int(0))
	}
}

func TestInboxOrderDeterminism(t *testing.T) {
	g := gen.Ring(17)
	run := func() []int64 {
		j := &orderJob{order: make([][]int64, 17)}
		if _, err := Run(g, j, Config{NumWorkers: 4}); err != nil {
			t.Fatal(err)
		}
		return j.order[0]
	}
	a := run()
	b := run()
	if len(a) != 17 {
		t.Fatalf("vertex 0 received %d messages, want 17", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message order differs at %d: %v vs %v", i, a, b)
		}
	}
	// Grouped in source-worker order: worker index ascending, then id.
	for i := 1; i < len(a); i++ {
		wPrev, wCur := a[i-1]%4, a[i]%4
		if wCur < wPrev {
			t.Fatalf("messages not grouped by source worker: %v", a)
		}
	}
}

// combinerEngineJob tests the engine-level combiner directly.
type combinerEngineJob struct{ sum []int64 }

func (j *combinerEngineJob) Schema() Schema {
	return Schema{
		MessagePayloadBytes: []int{8},
		Combiners: []Combiner{func(into *Msg, m Msg) {
			into.SetInt(0, into.Int(0)+m.Int(0))
		}},
	}
}
func (j *combinerEngineJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 2 {
		mc.Halt()
	}
}
func (j *combinerEngineJob) VertexCompute(vc *VertexContext) {
	switch vc.Superstep() {
	case 0:
		var m Msg
		m.SetInt(0, int64(vc.ID()))
		vc.Send(0, m)
	case 1:
		for _, m := range vc.Messages() {
			j.sum[vc.ID()] += m.Int(0)
		}
	}
}

func TestEngineCombiner(t *testing.T) {
	const n, W = 12, 3
	g := gen.Ring(n)
	j := &combinerEngineJob{sum: make([]int64, n)}
	st, err := Run(g, j, Config{NumWorkers: W})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n - 1) / 2); j.sum[0] != want {
		t.Errorf("combined sum = %d, want %d", j.sum[0], want)
	}
	// One combined message per source worker.
	if st.MessagesSent != W {
		t.Errorf("messages = %d, want %d (one per worker)", st.MessagesSent, W)
	}
}

func TestZeroAndTinyGraphs(t *testing.T) {
	// Single vertex, no edges.
	g := graph.FromEdges(1, nil)
	j := &minLabelJob{label: make([]int64, 1)}
	st, err := Run(g, j, Config{NumWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if j.label[0] != 0 || st.Supersteps != 1 {
		t.Errorf("single vertex: label=%v steps=%d", j.label, st.Supersteps)
	}
}

func TestMasterHaltBeforeAnyVertexPhase(t *testing.T) {
	g := gen.Ring(5)
	st, err := Run(g, returnJob{}, Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps != 0 || st.VertexCalls != 0 {
		t.Errorf("immediate halt ran vertices: %+v", st)
	}
}
