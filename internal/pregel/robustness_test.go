package pregel

// Robustness-layer tests: the resource governor's staged degradation
// (outbox release, inbox spill, clean budget abort), the superstep
// watchdog's stall detection and supervised recovery, the extended
// fault-phase matrix, the codec v3 integrity frame, and the
// barrier-consistency of partial Stats under aborts that race recovery.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// ---- Resource governor ----

// A run under a budget of a fraction of the unconstrained accounted peak
// must complete bit-identically by spilling inboxes to the temp-file
// segment store instead of aborting (acceptance criterion: graceful
// degradation before ErrBudgetExceeded).
func TestGovernorSpillCompletesBitIdentical(t *testing.T) {
	const n = 256
	g := gen.TwitterLike(n, 4, 3)
	run := func(budget int64) (*perfRankJob, Stats, error) {
		j := newPerfRankJob(n, 6)
		st, err := Run(g, j, Config{NumWorkers: 4, Seed: 2, MemoryBudget: budget})
		return j, st, err
	}
	clean, cleanSt, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	// A huge budget never degrades but measures the accounted peak.
	_, peakSt, err := run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	peak := peakSt.MemoryPeakBytes
	if peak == 0 {
		t.Fatal("MemoryPeakBytes = 0 under an enabled governor")
	}
	if peakSt.Spills != 0 {
		t.Fatalf("Spills = %d under a huge budget, want 0", peakSt.Spills)
	}
	for _, frac := range []struct {
		name   string
		budget int64
	}{{"half-peak", peak / 2}, {"quarter-peak", peak / 4}} {
		t.Run(frac.name, func(t *testing.T) {
			j, st, err := run(frac.budget)
			if err != nil {
				t.Fatalf("budget %d of peak %d: %v", frac.budget, peak, err)
			}
			if !reflect.DeepEqual(clean.rank, j.rank) {
				t.Errorf("budget-constrained ranks differ from unconstrained run")
			}
			if a, b := statsModuloRecovery(cleanSt), statsModuloRecovery(st); !reflect.DeepEqual(a, b) {
				t.Errorf("budget-constrained stats differ:\nclean:    %+v\nbudgeted: %+v", a, b)
			}
			if frac.budget == peak/4 && st.Spills == 0 {
				t.Errorf("quarter-peak budget completed without spilling (peak %d, budget %d)", peak, frac.budget)
			}
			if st.Spills > 0 && st.SpillBytes == 0 {
				t.Errorf("Spills = %d but SpillBytes = 0", st.Spills)
			}
		})
	}
}

// A budget below the post-degradation floor aborts cleanly with a
// wrapped ErrBudgetExceeded and barrier-consistent partial Stats —
// never an OOM or panic.
func TestGovernorBudgetExhaustedAbortsCleanly(t *testing.T) {
	const n = 128
	g := gen.TwitterLike(n, 4, 3)
	j := newPerfRankJob(n, 6)
	st, err := Run(g, j, Config{NumWorkers: 4, Seed: 2, MemoryBudget: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error message %q does not mention the budget", err)
	}
	// The floor (inbox offset tables) exceeds 1 byte at the very first
	// govern point, so the run aborts before any superstep commits.
	if st.Supersteps != 0 {
		t.Errorf("Supersteps = %d, want 0 (barrier-consistent abort)", st.Supersteps)
	}
	if st.MemoryPeakBytes == 0 {
		t.Errorf("MemoryPeakBytes = 0, want the pre-abort accounted usage")
	}
}

// The spill segment store round-trips messages bit-identically, both
// whole segments and chunk-aligned sub-windows, across multiple
// appended segments.
func TestSpillStoreRoundTrip(t *testing.T) {
	var s spillStore
	defer s.close()
	mk := func(k, salt int) []Msg {
		msgs := make([]Msg, k)
		for i := range msgs {
			msgs[i].Dst = graph.NodeID(i*3 + salt)
			msgs[i].Type = uint8((i + salt) % 3)
			for sl := 0; sl < MaxPayloadSlots; sl++ {
				msgs[i].V[sl] = uint64(i+salt)<<32 | uint64(sl) | 0x8000000000000000
			}
		}
		return msgs
	}
	a := mk(17, 0)
	offA, scratch, err := s.writeSegment(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := mk(5, 1000)
	offB, _, err := s.writeSegment(b, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if offB != int64(len(a))*spillRecBytes {
		t.Errorf("second segment offset = %d, want %d", offB, int64(len(a))*spillRecBytes)
	}
	got, _, err := s.readWindow(nil, nil, offA, 0, len(a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Errorf("segment A round-trip differs")
	}
	win, _, err := s.readWindow(nil, nil, offA, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a[4:13], win) {
		t.Errorf("sub-window [4:13) round-trip differs")
	}
	got, _, err = s.readWindow(got, nil, offB, 0, len(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("segment B round-trip differs")
	}
	empty, _, err := s.readWindow(nil, nil, offA, 3, 0)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty window: msgs=%v err=%v", empty, err)
	}
}

// ---- Superstep watchdog ----

// An injected worker stall overrunning StepDeadline trips the watchdog,
// which converts it into supervised rollback-and-replay; the replay runs
// unstalled and finishes bit-identical to a clean run.
func TestWatchdogStallRecoveryBitIdentical(t *testing.T) {
	const n = 60
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 3}
	labels, st := runMinLabel(t, g, n, base)

	stalled := base
	stalled.StepDeadline = 50 * time.Millisecond
	stalled.Stalls = []Stall{{Superstep: 3, Worker: 1, Duration: 500 * time.Millisecond}}
	sLabels, sst := runMinLabel(t, g, n, stalled)

	if !reflect.DeepEqual(labels, sLabels) {
		t.Errorf("stalled-run labels differ from clean run")
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(sst); !reflect.DeepEqual(a, b) {
		t.Errorf("stalled-run stats differ:\nclean:   %+v\nstalled: %+v", a, b)
	}
	if sst.WatchdogStalls < 1 {
		t.Errorf("WatchdogStalls = %d, want >= 1", sst.WatchdogStalls)
	}
	if sst.Recoveries < 1 {
		t.Errorf("Recoveries = %d, want >= 1", sst.Recoveries)
	}
}

// A healthy run with the watchdog enabled never trips and never
// perturbs results: the EWMA-derived deadline is many multiples of the
// trailing superstep time with a generous floor.
func TestWatchdogHealthyRunNoTrips(t *testing.T) {
	const n = 60
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 3}
	labels, st := runMinLabel(t, g, n, base)

	guarded := base
	guarded.Watchdog = true
	gLabels, gst := runMinLabel(t, g, n, guarded)

	if !reflect.DeepEqual(labels, gLabels) {
		t.Errorf("watchdog-guarded labels differ from clean run")
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(gst); !reflect.DeepEqual(a, b) {
		t.Errorf("watchdog-guarded stats differ:\nclean:   %+v\nguarded: %+v", a, b)
	}
	if gst.WatchdogStalls != 0 || gst.Recoveries != 0 {
		t.Errorf("healthy run tripped: WatchdogStalls=%d Recoveries=%d", gst.WatchdogStalls, gst.Recoveries)
	}
}

// backoffFor is a pure function of (seed, attempt, base, cap): capped
// exponential with deterministic jitter in [d/2, d].
func TestWatchdogBackoffDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for attempt := 0; attempt < 12; attempt++ {
			d1 := backoffFor(seed, attempt, 0, 0)
			d2 := backoffFor(seed, attempt, 0, 0)
			if d1 != d2 {
				t.Fatalf("seed %d attempt %d: %v != %v", seed, attempt, d1, d2)
			}
			// Expected undegraded duration for the default base/cap.
			want := defaultBackoffBase
			for i := 0; i < attempt && want < defaultBackoffCap; i++ {
				want *= 2
			}
			if want > defaultBackoffCap {
				want = defaultBackoffCap
			}
			if d1 < want/2 || d1 > want {
				t.Fatalf("seed %d attempt %d: backoff %v outside [%v, %v]", seed, attempt, d1, want/2, want)
			}
		}
		// Deep attempts saturate at the cap.
		if d := backoffFor(seed, 60, time.Millisecond, 16*time.Millisecond); d < 8*time.Millisecond || d > 16*time.Millisecond {
			t.Fatalf("capped backoff %v outside [8ms, 16ms]", d)
		}
	}
}

// ---- Extended fault-phase matrix ----

// Every armable fault phase is injectable and recovers bit-identically:
// chunk execution, steal hand-off, combiner fold replay, and each
// segmented-routing sub-phase, alongside the two original phases.
func TestFaultEveryPhaseRecoveryBitIdentical(t *testing.T) {
	const n = 48
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 3, ChunkSize: 4}
	labels, st := runMinLabel(t, g, n, base)

	phases := []FaultPhase{
		FaultVertexCompute, FaultRouting, FaultChunkExec, FaultSteal,
		FaultFold, FaultRouteCount, FaultRoutePrefix, FaultRoutePlace,
	}
	for _, p := range phases {
		t.Run(p.String(), func(t *testing.T) {
			faulty := base
			faulty.CheckpointEvery = 2
			faulty.Faults = FaultPlan{{Superstep: 3, Worker: 1, Phase: p}}
			fLabels, fst := runMinLabel(t, g, n, faulty)
			if !reflect.DeepEqual(labels, fLabels) {
				t.Errorf("phase %v: labels differ from fault-free run", p)
			}
			if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
				t.Errorf("phase %v: stats differ:\nfault-free: %+v\nfaulty:     %+v", p, a, b)
			}
			if fst.Recoveries != 1 {
				t.Errorf("phase %v: Recoveries = %d, want 1", p, fst.Recoveries)
			}
			// Checkpoint at 2, crash at 3: supersteps 2..3 re-executed.
			if fst.RecoveredSupersteps != 2 {
				t.Errorf("phase %v: RecoveredSupersteps = %d, want 2", p, fst.RecoveredSupersteps)
			}
		})
	}
}

// The fold fault fires on the real mid-replay path (not just the
// phase-end fallback) when the job combines through the raw-log fold,
// and the replay reproduces the post-combine Stats contract exactly.
func TestFaultFoldMidReplayRecovers(t *testing.T) {
	const n, steps, workers = 40, 6, 4
	g := gen.Ring(n)
	// ChunkSize 4 forces the raw-log + fold combiner path.
	base := Config{NumWorkers: workers, Seed: 3, ChunkSize: 4}
	j := &perfCombJob{steps: steps}
	st, err := Run(g, j, base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.CheckpointEvery = 2
	faulty.Faults = FaultPlan{{Superstep: 3, Worker: 2, Phase: FaultFold}}
	fst, err := Run(g, &perfCombJob{steps: steps}, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("fold-faulted stats differ:\nclean:  %+v\nfaulty: %+v", a, b)
	}
	if fst.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", fst.Recoveries)
	}
	if want := int64(steps * workers); fst.MessagesSent != want {
		t.Errorf("MessagesSent = %d, want %d (post-combine, no replay double-count)", fst.MessagesSent, want)
	}
}

// ---- Codec v3 integrity frame ----

// A bit flip anywhere in a checkpoint is caught by the payload checksum
// before any field is decoded into engine state.
func TestCheckpointChecksumDetectsCorruption(t *testing.T) {
	const n = 30
	g := gen.Ring(n)
	j := &minLabelJob{label: make([]int64, n)}
	cfg := Config{NumWorkers: 3, Seed: 4, TraceSteps: true, CheckpointEvery: 1}.withDefaults()
	e := newEngine(g, j, cfg)
	defer e.stop()
	e.cfg.MaxSupersteps = 5
	if err := e.loop(context.Background()); err == nil {
		t.Fatal("want max-supersteps error to stop mid-run, got nil")
	}
	data := e.encodeState()
	for _, pos := range []int{frameHeaderBytes, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x01
		err := e.decodeState(bad)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("flip at %d: err = %v, want checksum mismatch", pos, err)
		}
	}
	// A tampered length field is rejected as truncation or checksum
	// damage, never decoded.
	bad := append([]byte(nil), data...)
	bad[1] ^= 0x01
	if err := e.decodeState(bad); err == nil {
		t.Errorf("tampered length field decoded successfully")
	}
	// The engine remains usable: the pristine snapshot still decodes.
	if err := e.decodeState(data); err != nil {
		t.Fatalf("pristine snapshot rejected after corrupt decodes: %v", err)
	}
}

// A crash during a checkpoint write (torn snapshot) is detected by the
// integrity frame at the next rollback, which falls back to the
// previous checkpoint and replays bit-identically.
func TestCheckpointWriteCrashFallsBackToPrevious(t *testing.T) {
	const n = 60
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 3}
	labels, st := runMinLabel(t, g, n, base)

	faulty := base
	faulty.CheckpointEvery = 2
	faulty.Faults = FaultPlan{
		{Superstep: 2, Worker: 0, Phase: FaultCheckpoint},
		{Superstep: 3, Worker: 1, Phase: FaultVertexCompute},
	}
	fLabels, fst := runMinLabel(t, g, n, faulty)

	if !reflect.DeepEqual(labels, fLabels) {
		t.Errorf("torn-checkpoint labels differ from fault-free run")
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("torn-checkpoint stats differ:\nfault-free: %+v\nfaulty:     %+v", a, b)
	}
	if fst.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", fst.Recoveries)
	}
	// The snapshot at superstep 2 is torn, so the crash at 3 must fall
	// back to the checkpoint at 0: supersteps 0..3 re-executed.
	if fst.RecoveredSupersteps != 4 {
		t.Errorf("RecoveredSupersteps = %d, want 4 (fallback to checkpoint 0)", fst.RecoveredSupersteps)
	}
}

// A torn snapshot with no earlier valid checkpoint is a clean,
// diagnosable error — not a decode of corrupt state.
func TestCheckpointTornWithoutFallbackFailsCleanly(t *testing.T) {
	const n = 48
	g := gen.Ring(n)
	cfg := Config{NumWorkers: 4, Seed: 3, Faults: FaultPlan{
		// Tear the very first checkpoint (superstep 0), then crash.
		{Superstep: 0, Worker: 0, Phase: FaultCheckpoint},
		{Superstep: 2, Worker: 1, Phase: FaultVertexCompute},
	}}
	j := &minLabelJob{label: make([]int64, n)}
	_, err := Run(g, j, cfg)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want corrupt-checkpoint failure", err)
	}
}

// ---- Abort accounting and races ----

// returningMinLabelJob records the current superstep as the run's return
// value on every master call, making partially merged barrier state
// visible through Stats.ReturnedInt.
type returningMinLabelJob struct {
	minLabelJob
}

func (j *returningMinLabelJob) MasterCompute(mc *MasterContext) {
	mc.ReturnInt(int64(mc.Superstep()))
}

// Regression: an abort raised mid-superstep (recovery budget exhausted
// during a routing crash) must report the semantic counters of the last
// completed barrier, not the partially merged superstep. Before the
// commit-mark fix, Supersteps read 4 and ReturnedInt 3 here.
func TestFaultAbortMidRoutingReportsCommittedStats(t *testing.T) {
	const n = 24
	g := gen.Ring(n)
	j := &returningMinLabelJob{minLabelJob{label: make([]int64, n)}}
	cfg := Config{NumWorkers: 3, Seed: 4, CheckpointEvery: 2, MaxRecoveries: 1, Faults: FaultPlan{
		{Superstep: 3, Worker: 0, Phase: FaultRouting},
		{Superstep: 3, Worker: 0, Phase: FaultRouting},
	}}
	st, err := Run(g, j, cfg)
	if err == nil {
		t.Fatal("want recovery-budget error, got nil")
	}
	// Supersteps 0..2 completed their barriers; the twice-crashed
	// superstep 3 never did.
	if st.Supersteps != 3 {
		t.Errorf("Supersteps = %d, want 3 (last completed barrier)", st.Supersteps)
	}
	if !st.ReturnedIsSet || !st.ReturnedIsInt || st.ReturnedInt != 2 {
		t.Errorf("Returned = (set=%v int=%v %d), want int 2 (master call of the last committed superstep)",
			st.ReturnedIsSet, st.ReturnedIsInt, st.ReturnedInt)
	}
}

// Recovery racing cooperative cancellation: repeated crashes with a
// concurrently canceled context must always end in either a clean
// finish or a cancellation error, with barrier-consistent Stats
// (Supersteps always equals the number of committed Steps entries).
// Runs with 7 workers under -race as the scheduler-stress gate.
func TestRecoveryRacingContextCancelKeepsStatsConsistent(t *testing.T) {
	const n = 64
	g := gen.Ring(n)
	for i := 0; i < 8; i++ {
		j := &minLabelJob{label: make([]int64, n)}
		cfg := Config{NumWorkers: 7, Seed: int64(i + 1), TraceSteps: true,
			CheckpointEvery: 1, MaxRecoveries: 64}
		for s := 1; s < 20; s++ {
			cfg.Faults = append(cfg.Faults, Fault{Superstep: s, Worker: s, Phase: FaultPhase(s % 2)})
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i) * 500 * time.Microsecond)
		st, err := RunContext(ctx, g, j, cfg)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want nil or context.Canceled", i, err)
		}
		if st.Supersteps != len(st.Steps) {
			t.Errorf("run %d: Supersteps = %d but %d committed Steps entries", i, st.Supersteps, len(st.Steps))
		}
	}
}

// ---- Zero-allocation contract ----

// A warm governed superstep — vertex phase, routing, watchdog
// arm/disarm, and both govern points — must allocate nothing when the
// budget fits: enabling the robustness layer does not perturb the
// engine's steady-state allocation contract.
func TestGovernedWatchdogSuperstepZeroAlloc(t *testing.T) {
	const n = 256
	g := gen.TwitterLike(n, 4, 3)
	j := newPerfRankJob(n, 1<<20)
	cfg := Config{NumWorkers: 4, Seed: 1, MemoryBudget: 1 << 40, Watchdog: true}
	e := newEngine(g, j, cfg.withDefaults())
	defer e.stop()
	step := 0
	var governErr error
	cycle := func() {
		e.wd.beginStep(step)
		e.runVertexPhase(step)
		e.routeMessages()
		if e.wd.endStep() {
			governErr = errors.New("watchdog tripped on a healthy superstep")
		}
		if err := e.govern(step); err != nil {
			governErr = err
		}
		step++
	}
	for i := 0; i < 3; i++ {
		cycle() // reach high-water inbox/outbox capacity
	}
	if a := testing.AllocsPerRun(10, cycle); a != 0 {
		t.Fatalf("governed warm superstep allocates %v per run, want 0", a)
	}
	if governErr != nil {
		t.Fatal(governErr)
	}
	if e.stats.MemoryPeakBytes == 0 {
		t.Errorf("governor never measured a peak")
	}
}
