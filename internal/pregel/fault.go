package pregel

import "fmt"

// FaultPhase selects the point inside a superstep at which an injected
// fault fires.
type FaultPhase uint8

// Fault phases, covering every stage of the chunked-stealing scheduler
// and the segmented routing pipeline:
//
//   - FaultVertexCompute crashes the worker midway through its vertex
//     loop (after half of its vertices ran, so job state and outboxes
//     are partially mutated).
//   - FaultRouting crashes it during the message routing barrier, after
//     the superstep's counters were merged.
//   - FaultChunkExec crashes the worker at the start of its middle
//     scheduling chunk, leaving earlier chunks fully executed.
//   - FaultSteal crashes the worker the moment one of its chunks is
//     executed by a stealing executor (falling back to a phase-end crash
//     when nothing was stolen, e.g. under NoSteal or NumWorkers 1).
//   - FaultFold crashes the worker midway through its combiner fold
//     replay, with outboxes partially folded (phase-end crash for jobs
//     that never fold).
//   - FaultRouteCount / FaultRoutePrefix / FaultRoutePlace fail the
//     worker inside the corresponding segmented-routing sub-phase; the
//     sub-phase completes its work (fail-stop semantics: a dead worker's
//     partial writes are discarded wholesale by rollback, never acted
//     on), and the failure is collected at the routing barrier.
//   - FaultCheckpoint tears the snapshot written at that superstep's
//     checkpoint barrier (a crash mid-write); the corruption is caught
//     by the codec v3 integrity frame on the next rollback, which falls
//     back to the previous checkpoint.
//   - FaultWatchdog is not armable from a plan: it is the phase the
//     superstep watchdog reports when it converts a detected stall into
//     supervised recovery.
const (
	FaultVertexCompute FaultPhase = iota
	FaultRouting
	FaultChunkExec
	FaultSteal
	FaultFold
	FaultRouteCount
	FaultRoutePrefix
	FaultRoutePlace
	FaultCheckpoint
	FaultWatchdog
)

var faultPhaseNames = [...]string{
	FaultVertexCompute: "vertex-compute",
	FaultRouting:       "routing",
	FaultChunkExec:     "chunk-exec",
	FaultSteal:         "steal",
	FaultFold:          "fold",
	FaultRouteCount:    "route-count",
	FaultRoutePrefix:   "route-prefix",
	FaultRoutePlace:    "route-place",
	FaultCheckpoint:    "checkpoint",
	FaultWatchdog:      "watchdog",
}

func (p FaultPhase) String() string {
	if int(p) < len(faultPhaseNames) {
		return faultPhaseNames[p]
	}
	return fmt.Sprintf("fault-phase(%d)", uint8(p))
}

// Fault is one deterministically injected worker failure. Worker is
// taken modulo the resolved worker count, so plans stay valid when the
// engine shrinks NumWorkers for tiny graphs.
type Fault struct {
	Superstep int
	Worker    int
	Phase     FaultPhase
}

// FaultPlan is a deterministic schedule of injected worker failures.
// At most one fault fires per superstep attempt; listing the same
// (superstep, worker) several times makes the worker crash again on each
// replay until the plan (or the recovery budget) is exhausted.
type FaultPlan []Fault

// faultState tracks whether a planned fault has fired.
type faultState struct {
	Fault
	fired bool
}

// InjectedFault is the failure reported by a planned crash. The engine
// converts it into rollback-and-replay when a checkpoint is available;
// it surfaces as an error only when recovery is impossible or the
// budget is exhausted.
type InjectedFault struct {
	Superstep int
	Worker    int
	Phase     FaultPhase
}

func (f *InjectedFault) Error() string {
	return fmt.Sprintf("pregel: injected fault: worker %d crashed in superstep %d (%s phase)",
		f.Worker, f.Superstep, f.Phase)
}

// armVertexFault consumes the first unfired vertex-phase-family fault
// (vertex compute, chunk exec, steal, fold) planned for step and arms
// the target worker.
func (e *engine) armVertexFault(step int) {
	for i := range e.faults {
		f := &e.faults[i]
		if f.fired || f.Superstep != step {
			continue
		}
		wk := e.workers[f.Worker%e.numWorkers]
		switch f.Phase {
		case FaultVertexCompute:
			f.fired = true
			wk.faultAt = len(wk.ids) / 2
			return
		case FaultChunkExec:
			f.fired = true
			wk.chunkFaultAt = len(wk.chunks) / 2
			return
		case FaultSteal:
			f.fired = true
			wk.stealFault.Store(true)
			return
		case FaultFold:
			f.fired = true
			wk.foldFault = true
			wk.faultStep = step
			return
		}
	}
}

// armRoutingFault consumes the first unfired routing-family fault
// planned for step. A FaultRouting fires immediately (returned for the
// caller to raise); the segmented sub-phase faults arm the target worker
// and are collected at the routing barrier.
func (e *engine) armRoutingFault(step int) *InjectedFault {
	for i := range e.faults {
		f := &e.faults[i]
		if f.fired || f.Superstep != step {
			continue
		}
		w := f.Worker % e.numWorkers
		switch f.Phase {
		case FaultRouting:
			f.fired = true
			return &InjectedFault{Superstep: step, Worker: w, Phase: FaultRouting}
		case FaultRouteCount, FaultRoutePrefix, FaultRoutePlace:
			f.fired = true
			wk := e.workers[w]
			wk.routeFaultOn = true
			wk.routeFault = f.Phase
			wk.faultStep = step
			return nil
		}
	}
	return nil
}

// armCheckpointFault consumes an unfired checkpoint-write fault planned
// for step, reporting whether the snapshot just written should be torn.
func (e *engine) armCheckpointFault(step int) bool {
	for i := range e.faults {
		f := &e.faults[i]
		if f.fired || f.Superstep != step || f.Phase != FaultCheckpoint {
			continue
		}
		f.fired = true
		return true
	}
	return false
}
