package pregel

import "fmt"

// FaultPhase selects the point inside a superstep at which an injected
// fault fires.
type FaultPhase uint8

// Fault phases. FaultVertexCompute crashes the worker midway through its
// vertex loop (after half of its vertices ran, so job state and outboxes
// are partially mutated); FaultRouting crashes it during the message
// routing barrier, after the superstep's counters were merged.
const (
	FaultVertexCompute FaultPhase = iota
	FaultRouting
)

func (p FaultPhase) String() string {
	if p == FaultRouting {
		return "routing"
	}
	return "vertex-compute"
}

// Fault is one deterministically injected worker failure. Worker is
// taken modulo the resolved worker count, so plans stay valid when the
// engine shrinks NumWorkers for tiny graphs.
type Fault struct {
	Superstep int
	Worker    int
	Phase     FaultPhase
}

// FaultPlan is a deterministic schedule of injected worker failures.
// At most one fault fires per superstep attempt; listing the same
// (superstep, worker) several times makes the worker crash again on each
// replay until the plan (or the recovery budget) is exhausted.
type FaultPlan []Fault

// faultState tracks whether a planned fault has fired.
type faultState struct {
	Fault
	fired bool
}

// InjectedFault is the failure reported by a planned crash. The engine
// converts it into rollback-and-replay when a checkpoint is available;
// it surfaces as an error only when recovery is impossible or the
// budget is exhausted.
type InjectedFault struct {
	Superstep int
	Worker    int
	Phase     FaultPhase
}

func (f *InjectedFault) Error() string {
	return fmt.Sprintf("pregel: injected fault: worker %d crashed in superstep %d (%s phase)",
		f.Worker, f.Superstep, f.Phase)
}

// armVertexFault consumes the first unfired vertex-phase fault planned
// for step and arms the target worker to crash midway through its
// vertex loop.
func (e *engine) armVertexFault(step int) {
	for i := range e.faults {
		f := &e.faults[i]
		if f.fired || f.Superstep != step || f.Phase != FaultVertexCompute {
			continue
		}
		f.fired = true
		wk := e.workers[f.Worker%e.numWorkers]
		wk.faultAt = len(wk.ids) / 2
		return
	}
}

// armRoutingFault consumes the first unfired routing-phase fault planned
// for step, returning the failure to raise (nil if none).
func (e *engine) armRoutingFault(step int) *InjectedFault {
	for i := range e.faults {
		f := &e.faults[i]
		if f.fired || f.Superstep != step || f.Phase != FaultRouting {
			continue
		}
		f.fired = true
		return &InjectedFault{Superstep: step, Worker: f.Worker % e.numWorkers, Phase: FaultRouting}
	}
	return nil
}
