package pregel

// Steady-state performance regression tests for the superstep hot path:
// the persistent worker pool must not spawn goroutines per superstep,
// send and warm routing must not allocate, the arithmetic partition
// indexing must agree with hardware division, and the incremental
// active counters must track the active bitmaps exactly — including
// through crash-recovery.

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// perfRankJob is a PageRank-shaped job defined locally (in-package tests
// cannot import internal/manual): every vertex sums its float messages
// and re-broadcasts to all out-neighbors for a fixed number of
// supersteps. Its compute functions allocate nothing, so any allocation
// observed in a warm superstep belongs to the engine.
type perfRankJob struct {
	rank  []float64
	steps int
}

func newPerfRankJob(n, steps int) *perfRankJob {
	return &perfRankJob{rank: make([]float64, n), steps: steps}
}

func (j *perfRankJob) Schema() Schema {
	return Schema{MessagePayloadBytes: []int{8}}
}

func (j *perfRankJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.steps {
		mc.Halt()
	}
}

func (j *perfRankJob) VertexCompute(vc *VertexContext) {
	sum := 0.0
	for _, m := range vc.Messages() {
		sum += m.Float(0)
	}
	id := int(vc.ID())
	j.rank[id] = 0.15/float64(len(j.rank)) + 0.85*sum
	if d := vc.OutDegree(); d > 0 {
		var m Msg
		m.SetFloat(0, j.rank[id]/float64(d))
		vc.SendToAllNbrs(m)
	}
}

// perfCombJob sends one combinable message per vertex to a single sink,
// so post-combine MessagesSent is exactly numWorkers per superstep.
type perfCombJob struct {
	steps int
}

func (j *perfCombJob) Schema() Schema {
	return Schema{
		MessagePayloadBytes: []int{8},
		Combiners: []Combiner{func(into *Msg, m Msg) {
			into.SetFloat(0, into.Float(0)+m.Float(0))
		}},
	}
}

func (j *perfCombJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.steps {
		mc.Halt()
	}
}

func (j *perfCombJob) VertexCompute(vc *VertexContext) {
	var m Msg
	m.SetFloat(0, 1)
	vc.Send(0, m)
}

func TestFastDiv(t *testing.T) {
	values := []uint32{0, 1, 2, 3, 6, 7, 8, 100, 1023, 1 << 16, 1<<31 - 1, 1 << 31, ^uint32(0)}
	for d := uint32(1); d <= 64; d++ {
		f := newFastDiv(d)
		for _, x := range values {
			if got, want := f.div(x), x/d; got != want {
				t.Fatalf("fastDiv(%d).div(%d) = %d, want %d", d, x, got, want)
			}
			if got, want := f.mod(x), x%d; got != want {
				t.Fatalf("fastDiv(%d).mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

// resetOutbound mimics the start of a vertex phase: truncate the
// worker's chunk boxes, raw logs, and combiner outboxes, clearing
// (retaining) the combiner index.
func resetOutbound(wk *worker) {
	for ci := range wk.chunks {
		ck := &wk.chunks[ci]
		for d := range ck.boxes {
			ck.boxes[d] = ck.boxes[d][:0]
		}
		ck.raw = ck.raw[:0]
	}
	for d := range wk.outboxes {
		wk.outboxes[d] = wk.outboxes[d][:0]
	}
	if wk.combineIdx != nil {
		clear(wk.combineIdx)
	}
}

// sendContext wires executor 0's reused VertexContext to worker wk's
// chunk ci, the way runChunk does before invoking vertex compute.
func sendContext(e *engine, wk *worker, ci int) *VertexContext {
	vc := &e.executors[0].vc
	vc.wk = wk
	vc.ck = &wk.chunks[ci]
	vc.id = wk.ids[0]
	vc.local = 0
	return vc
}

// Satellite: send must be allocation-free in steady state, on the plain
// chunk-box path, the single-chunk direct combiner path, and the
// multi-chunk raw-log + fold path.
func TestSendSteadyStateZeroAlloc(t *testing.T) {
	const n = 64
	g := gen.Ring(n)
	run := func(t *testing.T, job Job, cfg Config, fold bool) {
		e := newEngine(g, job, cfg.withDefaults())
		defer e.stop()
		wk := e.workers[0]
		var m Msg
		m.SetFloat(0, 1)
		vc := sendContext(e, wk, 0)
		cycle := func() {
			resetOutbound(wk)
			for i := 0; i < n; i++ {
				vc.Send(graph.NodeID(i), m)
			}
			if fold {
				wk.fold()
			}
		}
		cycle() // reach high-water outbox and index capacity
		if a := testing.AllocsPerRun(20, cycle); a != 0 {
			t.Fatalf("steady-state send allocates %v per superstep, want 0", a)
		}
	}
	t.Run("plain", func(t *testing.T) {
		run(t, newPerfRankJob(n, 4), Config{NumWorkers: 4, Seed: 1}, false)
	})
	t.Run("combined-single-chunk", func(t *testing.T) {
		// 16 vertices per worker, default chunking => one chunk: sends fold
		// directly into the worker outboxes.
		run(t, &perfCombJob{steps: 4}, Config{NumWorkers: 4, Seed: 1}, false)
	})
	t.Run("combined-raw-fold", func(t *testing.T) {
		// ChunkSize 4 => multi-chunk worker: sends log raw emissions and
		// the fold replay combines them.
		run(t, &perfCombJob{steps: 4}, Config{NumWorkers: 4, Seed: 1, ChunkSize: 4}, true)
	})
}

// Satellite: a warm superstep — chunked vertex phase plus segmented
// message routing on the persistent pool — must allocate nothing, under
// every scheduling configuration: default chunking, explicit small
// chunks with and without stealing, and degree-aware partitioning. This
// also proves no per-superstep goroutine creation: a spawned goroutine
// costs at least one allocation, and this test demands zero.
func TestWarmRoutingZeroAlloc(t *testing.T) {
	const n = 256
	g := gen.TwitterLike(n, 4, 3)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{NumWorkers: 4, Seed: 1}},
		{"chunk16-steal", Config{NumWorkers: 4, Seed: 1, ChunkSize: 16}},
		{"chunk16-nosteal", Config{NumWorkers: 4, Seed: 1, ChunkSize: 16, NoSteal: true}},
		{"degree", Config{NumWorkers: 4, Seed: 1, Partitioner: PartitionDegree}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := newPerfRankJob(n, 1<<20)
			e := newEngine(g, j, tc.cfg.withDefaults())
			defer e.stop()
			step := 0
			cycle := func() {
				e.runVertexPhase(step)
				e.routeMessages()
				step++
			}
			for i := 0; i < 3; i++ {
				cycle() // reach high-water inbox/outbox capacity
			}
			if a := testing.AllocsPerRun(10, cycle); a != 0 {
				t.Fatalf("warm superstep allocates %v per run, want 0", a)
			}
			for _, x := range e.executors {
				if x.err != nil {
					t.Fatalf("executor %d failed: %v", x.id, x.err)
				}
			}
			for _, wk := range e.workers {
				for ci := range wk.chunks {
					if err := wk.chunks[ci].err; err != nil {
						t.Fatalf("worker %d chunk %d failed: %v", wk.index, ci, err)
					}
				}
			}
		})
	}
}

// Satellite: the combiner index map is cleared and retained across
// supersteps (not re-allocated), and a multi-superstep combined run
// keeps the post-combine Stats contract: one message per worker per
// sending superstep, reproducibly — and bit-identically whether sends
// fold directly (single chunk) or through the raw-log replay (chunked),
// because the fold replays the exact emission order.
func TestCombinerIndexRetained(t *testing.T) {
	const n, steps, workers = 40, 6, 4
	g := gen.Ring(n)
	runOnce := func(chunkSize int) (Stats, *engine) {
		j := &perfCombJob{steps: steps}
		cfg := Config{NumWorkers: workers, Seed: 3, ChunkSize: chunkSize}
		e := newEngine(g, j, cfg.withDefaults())
		defer e.stop()
		if err := e.loop(context.Background()); err != nil {
			t.Fatal(err)
		}
		return e.stats, e
	}
	st1, e := runOnce(0)
	st2, _ := runOnce(0)
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("combined-run Stats not reproducible:\n%+v\n%+v", st1, st2)
	}
	// Chunked run (ChunkSize 3 => raw-log + fold path): identical Stats.
	st3, _ := runOnce(3)
	if !reflect.DeepEqual(st1, st3) {
		t.Fatalf("chunked combined-run Stats differ from single-chunk:\n%+v\n%+v", st1, st3)
	}
	// steps sending supersteps, each combining n sends into one message
	// per worker.
	if want := int64(steps * workers); st1.MessagesSent != want {
		t.Fatalf("MessagesSent = %d, want %d (post-combine)", st1.MessagesSent, want)
	}
	for _, wk := range e.workers {
		if wk.combineIdx == nil {
			t.Fatalf("worker %d combiner index was nilled instead of retained", wk.index)
		}
	}
}

// Tentpole: worker goroutines are spawned once per run and shut down on
// every exit path — repeated runs (including failed ones) must not leak.
func TestWorkerPoolLifecycle(t *testing.T) {
	g := gen.Ring(64)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := Run(g, newPerfRankJob(64, 3), Config{NumWorkers: 8, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// An error exit (recovery budget exhausted) must also stop the pool.
	cfg := Config{NumWorkers: 8, Seed: 1, MaxRecoveries: 1, Faults: FaultPlan{
		{Superstep: 1, Worker: 0, Phase: FaultVertexCompute},
		{Superstep: 1, Worker: 0, Phase: FaultVertexCompute},
	}}
	if _, err := Run(g, newPerfRankJob(64, 3), cfg); err == nil {
		t.Fatal("want recovery-budget error, got nil")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	// stop is idempotent: RunContext defers it after loop already exited.
	e := newEngine(g, newPerfRankJob(64, 1), Config{NumWorkers: 2, Seed: 1}.withDefaults())
	e.stop()
	e.stop()
}

// Tentpole: the per-worker numActive counters that replaced the O(V)
// termination scan must track the active bitmaps exactly, including
// after voteToHalt/reactivation churn and through crash-recovery's
// checkpoint decode path.
func TestActiveCounterInvariant(t *testing.T) {
	const n = 60
	g := gen.TwitterLike(n, 4, 6)
	check := func(t *testing.T, e *engine) {
		t.Helper()
		for _, wk := range e.workers {
			count := 0
			for _, a := range wk.active {
				if a {
					count++
				}
			}
			if count != wk.numActive {
				t.Errorf("worker %d: numActive = %d, bitmap has %d", wk.index, wk.numActive, count)
			}
		}
	}
	for _, w := range workerCounts() {
		j := &minLabelJob{label: make([]int64, n)}
		e := newEngine(g, j, Config{NumWorkers: w, Seed: 5}.withDefaults())
		if err := e.loop(context.Background()); err != nil {
			t.Fatal(err)
		}
		check(t, e)
		e.stop()
	}
	// Through recovery: a mid-run crash rolls back via decodeState, which
	// must recompute the counters from the restored bitmap.
	j := &minLabelJob{label: make([]int64, n)}
	cfg := Config{NumWorkers: 3, Seed: 5, CheckpointEvery: 2, Faults: FaultPlan{
		{Superstep: 3, Worker: 1, Phase: FaultVertexCompute},
	}}.withDefaults()
	e := newEngine(g, j, cfg)
	defer e.stop()
	if err := e.loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.stats.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", e.stats.Recoveries)
	}
	check(t, e)
}

// ---- Microbenchmarks (CI runs these with -benchtime 1x as a gate) ----

// BenchmarkSuperstepPageRank measures one warm superstep — vertex phase
// plus routing — of a PageRank-shaped job on the persistent pool.
func BenchmarkSuperstepPageRank(b *testing.B) {
	const n = 4096
	g := gen.TwitterLike(n, 8, 3)
	j := newPerfRankJob(n, 1<<30)
	e := newEngine(g, j, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	step := 0
	for i := 0; i < 3; i++ {
		e.runVertexPhase(step)
		e.routeMessages()
		step++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runVertexPhase(step)
		e.routeMessages()
		step++
	}
}

// BenchmarkRouting measures the routing phase alone: outboxes are
// refilled outside the timer each iteration.
func BenchmarkRouting(b *testing.B) {
	const n = 4096
	g := gen.TwitterLike(n, 8, 3)
	j := newPerfRankJob(n, 1<<30)
	e := newEngine(g, j, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	fill := func() {
		var m Msg
		m.SetFloat(0, 1)
		for _, wk := range e.workers {
			resetOutbound(wk)
			vc := sendContext(e, wk, 0)
			for _, v := range wk.ids {
				vc.id = v
				vc.SendToAllNbrs(m)
			}
		}
	}
	fill()
	e.routeMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fill()
		b.StartTimer()
		e.routeMessages()
	}
}

// BenchmarkSendCombined measures the combiner send path: one combinable
// message per vertex funneled to a single sink.
func BenchmarkSendCombined(b *testing.B) {
	const n = 4096
	g := gen.Ring(n)
	e := newEngine(g, &perfCombJob{steps: 1 << 30}, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	wk := e.workers[0]
	var m Msg
	m.SetFloat(0, 1)
	vc := sendContext(e, wk, 0)
	cycle := func() {
		resetOutbound(wk)
		for i := 0; i < n; i++ {
			vc.Send(graph.NodeID(i), m)
		}
	}
	cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
