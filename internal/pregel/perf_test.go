package pregel

// Steady-state performance regression tests for the superstep hot path:
// the persistent worker pool must not spawn goroutines per superstep,
// send and warm routing must not allocate, the arithmetic partition
// indexing must agree with hardware division, and the incremental
// active counters must track the active bitmaps exactly — including
// through crash-recovery.

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// perfRankJob is a PageRank-shaped job defined locally (in-package tests
// cannot import internal/manual): every vertex sums its float messages
// and re-broadcasts to all out-neighbors for a fixed number of
// supersteps. Its compute functions allocate nothing, so any allocation
// observed in a warm superstep belongs to the engine.
type perfRankJob struct {
	rank  []float64
	steps int
}

func newPerfRankJob(n, steps int) *perfRankJob {
	return &perfRankJob{rank: make([]float64, n), steps: steps}
}

func (j *perfRankJob) Schema() Schema {
	return Schema{MessagePayloadBytes: []int{8}}
}

func (j *perfRankJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.steps {
		mc.Halt()
	}
}

func (j *perfRankJob) VertexCompute(vc *VertexContext) {
	sum := 0.0
	for _, m := range vc.Messages() {
		sum += m.Float(0)
	}
	id := int(vc.ID())
	j.rank[id] = 0.15/float64(len(j.rank)) + 0.85*sum
	if d := vc.OutDegree(); d > 0 {
		var m Msg
		m.SetFloat(0, j.rank[id]/float64(d))
		vc.SendToAllNbrs(m)
	}
}

// perfCombJob sends one combinable message per vertex to a single sink,
// so post-combine MessagesSent is exactly numWorkers per superstep.
type perfCombJob struct {
	steps int
}

func (j *perfCombJob) Schema() Schema {
	return Schema{
		MessagePayloadBytes: []int{8},
		Combiners: []Combiner{func(into *Msg, m Msg) {
			into.SetFloat(0, into.Float(0)+m.Float(0))
		}},
	}
}

func (j *perfCombJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.steps {
		mc.Halt()
	}
}

func (j *perfCombJob) VertexCompute(vc *VertexContext) {
	var m Msg
	m.SetFloat(0, 1)
	vc.Send(0, m)
}

func TestFastDiv(t *testing.T) {
	values := []uint32{0, 1, 2, 3, 6, 7, 8, 100, 1023, 1 << 16, 1<<31 - 1, 1 << 31, ^uint32(0)}
	for d := uint32(1); d <= 64; d++ {
		f := newFastDiv(d)
		for _, x := range values {
			if got, want := f.div(x), x/d; got != want {
				t.Fatalf("fastDiv(%d).div(%d) = %d, want %d", d, x, got, want)
			}
			if got, want := f.mod(x), x%d; got != want {
				t.Fatalf("fastDiv(%d).mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

// resetOutbound mimics the start of runStep: truncate the worker's
// outboxes and clear (retain) its combiner index.
func resetOutbound(wk *worker) {
	for d := range wk.outboxes {
		wk.outboxes[d] = wk.outboxes[d][:0]
	}
	if wk.combineIdx != nil {
		clear(wk.combineIdx)
	}
}

// Satellite: worker.send must be allocation-free in steady state, on
// both the plain and the combiner path.
func TestSendSteadyStateZeroAlloc(t *testing.T) {
	const n = 64
	g := gen.Ring(n)
	run := func(t *testing.T, job Job) {
		e := newEngine(g, job, Config{NumWorkers: 4, Seed: 1}.withDefaults())
		defer e.stop()
		wk := e.workers[0]
		var m Msg
		m.SetFloat(0, 1)
		cycle := func() {
			resetOutbound(wk)
			for i := 0; i < n; i++ {
				m.Dst = graph.NodeID(i)
				wk.send(wk.ids[0], m)
			}
		}
		cycle() // reach high-water outbox and index capacity
		if a := testing.AllocsPerRun(20, cycle); a != 0 {
			t.Fatalf("steady-state send allocates %v per superstep, want 0", a)
		}
	}
	t.Run("plain", func(t *testing.T) { run(t, newPerfRankJob(n, 4)) })
	t.Run("combined", func(t *testing.T) { run(t, &perfCombJob{steps: 4}) })
}

// Satellite: a warm superstep — vertex phase plus message routing on the
// persistent pool — must allocate nothing. This also proves no
// per-superstep goroutine creation: a spawned goroutine costs at least
// one allocation, and this test demands zero.
func TestWarmRoutingZeroAlloc(t *testing.T) {
	const n = 256
	g := gen.TwitterLike(n, 4, 3)
	j := newPerfRankJob(n, 1<<20)
	e := newEngine(g, j, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	step := 0
	cycle := func() {
		e.runPhase(phaseVertex, step)
		e.routeMessages()
		step++
	}
	for i := 0; i < 3; i++ {
		cycle() // reach high-water inbox/outbox capacity
	}
	if a := testing.AllocsPerRun(10, cycle); a != 0 {
		t.Fatalf("warm superstep allocates %v per run, want 0", a)
	}
	for _, wk := range e.workers {
		if wk.err != nil {
			t.Fatalf("worker %d failed: %v", wk.index, wk.err)
		}
	}
}

// Satellite: the combiner index map is cleared and retained across
// supersteps (not re-allocated), and a multi-superstep combined run
// keeps the post-combine Stats contract: one message per worker per
// sending superstep, reproducibly.
func TestCombinerIndexRetained(t *testing.T) {
	const n, steps, workers = 40, 6, 4
	g := gen.Ring(n)
	runOnce := func() (Stats, *engine) {
		j := &perfCombJob{steps: steps}
		e := newEngine(g, j, Config{NumWorkers: workers, Seed: 3}.withDefaults())
		defer e.stop()
		if err := e.loop(context.Background()); err != nil {
			t.Fatal(err)
		}
		return e.stats, e
	}
	st1, e := runOnce()
	st2, _ := runOnce()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("combined-run Stats not reproducible:\n%+v\n%+v", st1, st2)
	}
	// steps sending supersteps, each combining n sends into one message
	// per worker.
	if want := int64(steps * workers); st1.MessagesSent != want {
		t.Fatalf("MessagesSent = %d, want %d (post-combine)", st1.MessagesSent, want)
	}
	for _, wk := range e.workers {
		if wk.combineIdx == nil {
			t.Fatalf("worker %d combiner index was nilled instead of retained", wk.index)
		}
	}
}

// Tentpole: worker goroutines are spawned once per run and shut down on
// every exit path — repeated runs (including failed ones) must not leak.
func TestWorkerPoolLifecycle(t *testing.T) {
	g := gen.Ring(64)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := Run(g, newPerfRankJob(64, 3), Config{NumWorkers: 8, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// An error exit (recovery budget exhausted) must also stop the pool.
	cfg := Config{NumWorkers: 8, Seed: 1, MaxRecoveries: 1, Faults: FaultPlan{
		{Superstep: 1, Worker: 0, Phase: FaultVertexCompute},
		{Superstep: 1, Worker: 0, Phase: FaultVertexCompute},
	}}
	if _, err := Run(g, newPerfRankJob(64, 3), cfg); err == nil {
		t.Fatal("want recovery-budget error, got nil")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	// stop is idempotent: RunContext defers it after loop already exited.
	e := newEngine(g, newPerfRankJob(64, 1), Config{NumWorkers: 2, Seed: 1}.withDefaults())
	e.stop()
	e.stop()
}

// Tentpole: the per-worker numActive counters that replaced the O(V)
// termination scan must track the active bitmaps exactly, including
// after voteToHalt/reactivation churn and through crash-recovery's
// checkpoint decode path.
func TestActiveCounterInvariant(t *testing.T) {
	const n = 60
	g := gen.TwitterLike(n, 4, 6)
	check := func(t *testing.T, e *engine) {
		t.Helper()
		for _, wk := range e.workers {
			count := 0
			for _, a := range wk.active {
				if a {
					count++
				}
			}
			if count != wk.numActive {
				t.Errorf("worker %d: numActive = %d, bitmap has %d", wk.index, wk.numActive, count)
			}
		}
	}
	for _, w := range workerCounts() {
		j := &minLabelJob{label: make([]int64, n)}
		e := newEngine(g, j, Config{NumWorkers: w, Seed: 5}.withDefaults())
		if err := e.loop(context.Background()); err != nil {
			t.Fatal(err)
		}
		check(t, e)
		e.stop()
	}
	// Through recovery: a mid-run crash rolls back via decodeState, which
	// must recompute the counters from the restored bitmap.
	j := &minLabelJob{label: make([]int64, n)}
	cfg := Config{NumWorkers: 3, Seed: 5, CheckpointEvery: 2, Faults: FaultPlan{
		{Superstep: 3, Worker: 1, Phase: FaultVertexCompute},
	}}.withDefaults()
	e := newEngine(g, j, cfg)
	defer e.stop()
	if err := e.loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.stats.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", e.stats.Recoveries)
	}
	check(t, e)
}

// ---- Microbenchmarks (CI runs these with -benchtime 1x as a gate) ----

// BenchmarkSuperstepPageRank measures one warm superstep — vertex phase
// plus routing — of a PageRank-shaped job on the persistent pool.
func BenchmarkSuperstepPageRank(b *testing.B) {
	const n = 4096
	g := gen.TwitterLike(n, 8, 3)
	j := newPerfRankJob(n, 1<<30)
	e := newEngine(g, j, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	step := 0
	for i := 0; i < 3; i++ {
		e.runPhase(phaseVertex, step)
		e.routeMessages()
		step++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runPhase(phaseVertex, step)
		e.routeMessages()
		step++
	}
}

// BenchmarkRouting measures the routing phase alone: outboxes are
// refilled outside the timer each iteration.
func BenchmarkRouting(b *testing.B) {
	const n = 4096
	g := gen.TwitterLike(n, 8, 3)
	j := newPerfRankJob(n, 1<<30)
	e := newEngine(g, j, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	fill := func() {
		var m Msg
		m.SetFloat(0, 1)
		for _, wk := range e.workers {
			resetOutbound(wk)
			for _, v := range wk.ids {
				wk.sendToAll(v, g.OutNbrs(v), m)
			}
		}
	}
	fill()
	e.routeMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fill()
		b.StartTimer()
		e.routeMessages()
	}
}

// BenchmarkSendCombined measures the combiner send path: one combinable
// message per vertex funneled to a single sink.
func BenchmarkSendCombined(b *testing.B) {
	const n = 4096
	g := gen.Ring(n)
	e := newEngine(g, &perfCombJob{steps: 1 << 30}, Config{NumWorkers: 4, Seed: 1}.withDefaults())
	defer e.stop()
	wk := e.workers[0]
	var m Msg
	m.SetFloat(0, 1)
	cycle := func() {
		resetOutbound(wk)
		for i := 0; i < n; i++ {
			m.Dst = graph.NodeID(i)
			wk.send(wk.ids[0], m)
		}
	}
	cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
