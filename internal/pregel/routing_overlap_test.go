package pregel

import (
	"reflect"
	"testing"

	"gmpregel/internal/graph/gen"
)

// The pipelined-routing determinism criterion: eager routing (outboxes
// counted into the sharded staging as chunks retire, overlapped with
// the vertex phase) and barrier routing (the legacy count phase after
// the barrier) are the SAME computation on different schedules. For
// every point of the scheduling grid — worker count × chunk size ×
// stealing — the two modes must produce bit-identical Stats (including
// the per-step trace), bit-identical vertex outputs, and bit-identical
// merged aggregator sequences (float reductions included: both modes
// fold chunks into per-worker partials in chunk order and merge
// partials in worker order, so even non-associative float sums group
// identically).
func TestRoutingOverlapDeterminism(t *testing.T) {
	const n, steps = 53, 6
	g := gen.TwitterLike(n, 5, 13)
	for _, w := range workerCounts() {
		for _, chunk := range []int{1, 64} {
			for _, noSteal := range []bool{false, true} {
				base := Config{NumWorkers: w, Seed: 21, TraceSteps: true,
					ChunkSize: chunk, NoSteal: noSteal}
				eager, barrier := base, base
				eager.Routing = RouteEager
				barrier.Routing = RouteBarrier

				ej := &aggDetJob{steps: steps}
				est, err := Run(g, ej, eager)
				if err != nil {
					t.Fatal(err)
				}
				bj := &aggDetJob{steps: steps}
				bst, err := Run(g, bj, barrier)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(est, bst) {
					t.Errorf("W=%d chunk=%d nosteal=%v: eager and barrier Stats differ:\neager:   %+v\nbarrier: %+v",
						w, chunk, noSteal, est, bst)
				}
				if !reflect.DeepEqual(ej.Observed, bj.Observed) {
					t.Errorf("W=%d chunk=%d nosteal=%v: aggregator sequences differ between routing modes",
						w, chunk, noSteal)
				}

				eLabels, elst := runMinLabel(t, g, n, eager)
				bLabels, blst := runMinLabel(t, g, n, barrier)
				if !reflect.DeepEqual(eLabels, bLabels) {
					t.Errorf("W=%d chunk=%d nosteal=%v: min-label outputs differ between routing modes",
						w, chunk, noSteal)
				}
				if !reflect.DeepEqual(elst, blst) {
					t.Errorf("W=%d chunk=%d nosteal=%v: min-label Stats differ between routing modes",
						w, chunk, noSteal)
				}
			}
		}
	}
}

// Crash-during-eager-routing recovery: with the count phase overlapped
// into the vertex phase, every routing-family fault must still roll
// back and replay to a bit-identical result. The matrix reuses the
// segmented-routing fault phases (under eager routing FaultRouteCount
// is remapped to fire at the head of the prefix phase — the count work
// it targeted now runs inside the vertex phase, and fail-stop semantics
// make the two injection points observationally equivalent).
func TestEagerRoutingCrashRecovery(t *testing.T) {
	const n = 50
	g := gen.TwitterLike(n, 4, 9)
	base := Config{NumWorkers: 4, Seed: 7, TraceSteps: true, Routing: RouteEager}
	labels, st := runMinLabel(t, g, n, base)

	for _, phase := range []FaultPhase{FaultRouteCount, FaultRoutePrefix, FaultRoutePlace, FaultRouting} {
		t.Run(phase.String(), func(t *testing.T) {
			faulty := base
			faulty.CheckpointEvery = 3
			faulty.Faults = FaultPlan{{Superstep: 4, Worker: 2, Phase: phase}}
			fLabels, fst := runMinLabel(t, g, n, faulty)
			if !reflect.DeepEqual(labels, fLabels) {
				t.Errorf("labels differ after eager-routing %s crash", phase)
			}
			if fst.Recoveries != 1 {
				t.Errorf("Recoveries = %d, want 1", fst.Recoveries)
			}
			if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
				t.Errorf("stats (incl. per-step trace) differ after eager %s crash:\nclean:  %+v\nfaulty: %+v",
					phase, a, b)
			}
		})
	}

	// The same crash while a checkpoint is also being torn: recovery must
	// fall back past the corrupt snapshot and still converge identically.
	faulty := base
	faulty.CheckpointEvery = 2
	faulty.Faults = FaultPlan{
		{Superstep: 4, Worker: 1, Phase: FaultCheckpoint},
		{Superstep: 5, Worker: 2, Phase: FaultRoutePrefix},
	}
	fLabels, fst := runMinLabel(t, g, n, faulty)
	if !reflect.DeepEqual(labels, fLabels) {
		t.Error("labels differ after torn-checkpoint + eager routing crash")
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ after torn-checkpoint + eager routing crash:\n%+v\n%+v", a, b)
	}
	if fst.Recoveries == 0 {
		t.Error("no recovery recorded")
	}
}
