package pregel

import (
	"encoding/binary"
	"fmt"
	"os"

	"gmpregel/internal/graph"
)

// spillRecBytes is the fixed on-disk size of one spilled message:
// 4-byte destination id, 1-byte type tag, four 8-byte payload slots.
// The encoding is position-independent, so a window of records can be
// read back from any offset with a single ReadAt.
const spillRecBytes = 4 + 1 + 8*MaxPayloadSlots

// spillStore is the governor's temp-file segment store for inboxes that
// no longer fit the memory budget. The file is created lazily, unlinked
// immediately (the OS reclaims it when the run exits, even on a crash),
// and written append-only: each spill event claims a contiguous segment
// of records. Reads use ReadAt, which is safe for concurrent use by
// stealing executors.
type spillStore struct {
	f    *os.File
	size int64 // bytes written so far (next segment offset)
}

// open lazily creates the backing temp file.
func (s *spillStore) open() error {
	if s.f != nil {
		return nil
	}
	f, err := os.CreateTemp("", "gmpregel-spill-*")
	if err != nil {
		return fmt.Errorf("pregel: cannot create spill file: %w", err)
	}
	// Unlink immediately: the fd keeps the segments alive and the file
	// can never outlive the process.
	_ = os.Remove(f.Name())
	s.f = f
	return nil
}

func (s *spillStore) close() {
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
	s.size = 0
}

// writeSegment appends msgs as one contiguous segment and returns its
// byte offset. The encoding round-trips bit-identically: every payload
// slot is stored raw.
func (s *spillStore) writeSegment(msgs []Msg, scratch []byte) (off int64, buf []byte, err error) {
	if err := s.open(); err != nil {
		return 0, scratch, err
	}
	need := len(msgs) * spillRecBytes
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	buf = scratch[:need]
	for i := range msgs {
		encodeSpillRec(buf[i*spillRecBytes:(i+1)*spillRecBytes], &msgs[i])
	}
	off = s.size
	if _, err := s.f.WriteAt(buf, off); err != nil {
		return 0, buf, fmt.Errorf("pregel: spill write failed: %w", err)
	}
	s.size += int64(need)
	return off, buf, nil
}

// readWindow reads count records starting at record index first of the
// segment at off into dst (grown as needed) and decodes them.
func (s *spillStore) readWindow(dst []Msg, raw []byte, off int64, first, count int) ([]Msg, []byte, error) {
	need := count * spillRecBytes
	if cap(raw) < need {
		raw = make([]byte, need)
	}
	raw = raw[:need]
	if cap(dst) < count {
		dst = make([]Msg, count)
	}
	dst = dst[:count]
	if count == 0 {
		return dst, raw, nil
	}
	if _, err := s.f.ReadAt(raw, off+int64(first)*spillRecBytes); err != nil {
		return dst, raw, fmt.Errorf("pregel: spill read failed: %w", err)
	}
	for i := range dst {
		decodeSpillRec(raw[i*spillRecBytes:(i+1)*spillRecBytes], &dst[i])
	}
	return dst, raw, nil
}

func encodeSpillRec(b []byte, m *Msg) {
	binary.LittleEndian.PutUint32(b[0:4], uint32(m.Dst))
	b[4] = m.Type
	for s := 0; s < MaxPayloadSlots; s++ {
		binary.LittleEndian.PutUint64(b[5+8*s:], m.V[s])
	}
}

func decodeSpillRec(b []byte, m *Msg) {
	m.Dst = graph.NodeID(int32(binary.LittleEndian.Uint32(b[0:4])))
	m.Type = b[4]
	for s := 0; s < MaxPayloadSlots; s++ {
		m.V[s] = binary.LittleEndian.Uint64(b[5+8*s:])
	}
}
