package pregel

import (
	"math"

	"gmpregel/internal/graph"
)

// Direction selects the engine's message execution direction.
//
// Push (the legacy default) is classic Pregel: senders append to
// outboxes during vertex compute and a routing pass moves them into
// destination inboxes. Pull inverts the data movement: after the vertex
// phase, each destination worker *gathers* from its in-neighbors over
// the prebuilt reverse CSR, re-evaluating the sender's message closure
// in gather orientation. Pull skips outboxes and routing entirely, which
// wins on dense frontiers (Beamer-style direction optimization: when
// most vertices send, sequential reads over in-edges beat scattered
// outbox writes plus a counting-sort).
//
// The two directions are semantics-free by construction: a pull step
// rebuilds the exact inbox a push step would have routed — same
// messages, same canonical per-destination order (source worker
// ascending, then source vertex ascending, then out-edge order), same
// combiner fold grouping, and the same Stats counters — so combined
// Stats (including float AggSum grouping) are bit-identical across
// directions. The direction-sweep bench and its CI gate enforce this.
type Direction uint8

const (
	// DirPush always pushes (the legacy engine; zero new code on the hot
	// path).
	DirPush Direction = iota
	// DirPull pulls on every superstep whose job state is
	// gather-eligible (falling back to push on ineligible steps).
	DirPull
	// DirAuto picks per superstep: pull when the active frontier is
	// dense (its out-edge mass reaches PullDensity of all edges) and the
	// step is gather-eligible, push otherwise.
	DirAuto
)

func (d Direction) String() string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	case DirAuto:
		return "auto"
	}
	return "direction(?)"
}

// defaultPullDensity is the DirAuto threshold: pull when the active
// frontier's out-edge mass is at least this fraction of all edges.
// Beamer's heuristic uses edge counts with a ~1/α fraction around
// 1/14–1/20; 1/16 lands in that band and is a power of two.
const defaultPullDensity = 1.0 / 16

// Direction bytes recorded in dirHistory (and the checkpoint codec).
const (
	dirPushByte uint8 = 0
	dirPullByte uint8 = 1
)

// GatherSender is implemented by jobs that can re-derive, for any edge
// (src → dst), the message src's VertexCompute would have pushed along
// that edge this superstep — enabling the pull direction. The contract:
//
//   - GatherEligible(s) reports whether superstep s's compute is
//     gather-derivable: every message it sends goes to all out-neighbors
//     (optionally edge-filtered), the payload is a pure function of the
//     sender's post-compute state (and globals/graph shape), and
//     receiving a message has no side effect beyond delivery. When it
//     returns false the engine pushes that superstep.
//   - Gather(gc, src, edge) returns the message src sends along out-edge
//     index `edge` this superstep, or ok=false when src sends nothing on
//     that edge. It is called only for senders whose VertexCompute ran
//     this superstep, after the vertex phase completed, and must not
//     mutate job state (it may run concurrently from all executors).
//     It must be allocation-free in steady state.
type GatherSender interface {
	Job
	GatherEligible(superstep int) bool
	Gather(gc *GatherContext, src graph.NodeID, edge int64) (Msg, bool)
}

// GatherContext is the read-only API surface available to Gather: the
// superstep, graph shape, and the master's globals. One value lives on
// each executor and is reused across every gather it performs; do not
// retain it.
type GatherContext struct {
	e         *engine
	ex        *executor
	superstep int
}

// Superstep returns the superstep being gathered.
func (gc *GatherContext) Superstep() int { return gc.superstep }

// NumNodes returns the number of vertices in the graph.
func (gc *GatherContext) NumNodes() int { return gc.e.g.NumNodes() }

// NumEdges returns the number of edges in the graph.
func (gc *GatherContext) NumEdges() int64 { return gc.e.g.NumEdges() }

// OutDegree returns the out-degree of v (gathers typically need the
// sender's degree, e.g. PageRank's rank/degree payload).
func (gc *GatherContext) OutDegree(v graph.NodeID) int { return gc.e.g.OutDegree(v) }

// GlobalInt reads an int global broadcast by the master this superstep.
func (gc *GatherContext) GlobalInt(s int) int64 { return int64(gc.e.globals[s]) }

// GlobalFloat reads a float global.
func (gc *GatherContext) GlobalFloat(s int) float64 {
	return math.Float64frombits(gc.e.globals[s])
}

// GlobalBool reads a bool global.
func (gc *GatherContext) GlobalBool(s int) bool { return gc.e.globals[s] != 0 }

// GlobalNode reads a node-ID global.
func (gc *GatherContext) GlobalNode(s int) graph.NodeID {
	return graph.NodeID(int32(uint32(gc.e.globals[s])))
}

// ExecutorIndex returns the index of the executor goroutine running
// this gather, for jobs with executor-indexed scratch state.
func (gc *GatherContext) ExecutorIndex() int { return gc.ex.id }

// DirectionTrace records the direction the engine chose for each
// executed superstep (Config.DirTrace). It lives outside Stats on
// purpose: Stats must stay bit-identical between a forced-push and a
// forced-pull run of the same job, while the trace differs by design.
type DirectionTrace struct {
	// Steps[s] is the direction superstep s executed ("push" or "pull").
	Steps []string
	// Switches counts adjacent supersteps that changed direction.
	Switches int
	// PullSteps counts supersteps executed in the pull direction.
	PullSteps int
}

// gatherPlan is one worker's precomputed pull-phase schedule: for each
// owned destination vertex (by local index), its in-edges sorted by
// (owning worker of the source, source id, out-edge index) — exactly
// the canonical order routing delivers pushed messages in. Sorting by
// source id alone is not enough: under mod partitioning the owner is
// not monotone in the id, so the plan is rebuilt per run from the
// shared reverse CSR (which is (source id, edge) ordered per
// destination) with a stable per-vertex counting sort by owner.
type gatherPlan struct {
	off   []int64 // per local index: range [off[li], off[li+1]) below
	src   []graph.NodeID
	edge  []int64 // out-edge index (for EdgeCond / edge-property reads)
	srcW  []int32 // owning worker of src
	srcLi []int32 // local index of src on its owning worker
}

// buildGatherPlans prebuilds the per-worker pull schedules. Called once
// at engine construction when a pull-capable direction is configured,
// so the pull hot path never allocates and never sorts.
func (e *engine) buildGatherPlans() {
	e.g.BuildIn()
	e.gplans = make([]gatherPlan, e.numWorkers)
	counts := make([]int32, e.numWorkers)
	for w, wk := range e.workers {
		gp := &e.gplans[w]
		n := len(wk.ids)
		gp.off = make([]int64, n+1)
		total := 0
		for _, v := range wk.ids {
			total += e.g.InDegree(v)
		}
		gp.src = make([]graph.NodeID, total)
		gp.edge = make([]int64, total)
		gp.srcW = make([]int32, total)
		gp.srcLi = make([]int32, total)
		pos := 0
		for li, v := range wk.ids {
			gp.off[li] = int64(pos)
			srcs := e.g.InNbrs(v)
			idxs := e.g.InEdgeIndices(v)
			// Stable counting sort of this vertex's in-edges by source
			// owner; ties keep the reverse CSR's (source, edge) order.
			for i := range counts {
				counts[i] = 0
			}
			for _, u := range srcs {
				counts[e.workerOf(u)]++
			}
			run := int32(0)
			for i := range counts {
				c := counts[i]
				counts[i] = run
				run += c
			}
			for i, u := range srcs {
				ow := e.workerOf(u)
				p := pos + int(counts[ow])
				counts[ow]++
				gp.src[p] = u
				gp.edge[p] = idxs[i]
				gp.srcW[p] = int32(ow)
				// localOf must be evaluated on the owning worker: under
				// degree partitioning it offsets by the owner's startID.
				gp.srcLi[p] = int32(e.workers[ow].localOf(u))
			}
			pos += len(srcs)
		}
		gp.off[n] = int64(pos)
		wk.ran = make([]bool, n)
	}
}

// chooseDirection picks this superstep's direction. Called after the
// master phase (the machine executor's master selects the superstep's
// state there, which GatherEligible consults) and before the vertex
// phase. Re-executed supersteps (rollback-and-replay) reuse the
// recorded direction, so a recovered run replays the identical
// push/pull schedule — the checkpoint codec persists dirHistory for the
// same reason.
func (e *engine) chooseDirection(step int) bool {
	if !e.pullOn {
		return false
	}
	if step < len(e.dirHistory) {
		return e.dirHistory[step] == dirPullByte
	}
	pull := false
	switch e.cfg.Direction {
	case DirPull:
		pull = e.gatherJob.GatherEligible(step)
	case DirAuto:
		if e.gatherJob.GatherEligible(step) {
			// Frontier density: out-edge mass of the active set, from the
			// O(1)-maintained per-chunk counters (an O(chunks) read, like
			// the termination check — never an O(V) scan).
			var front int64
			for _, wk := range e.workers {
				for ci := range wk.chunks {
					front += wk.chunks[ci].frontEdges
				}
			}
			den := e.cfg.PullDensity
			if den <= 0 {
				den = defaultPullDensity
			}
			pull = float64(front) >= den*float64(e.g.NumEdges())
		}
	}
	b := dirPushByte
	if pull {
		b = dirPullByte
	}
	e.dirHistory = append(e.dirHistory, b)
	return pull
}

// directionTrace materializes the user-facing trace from dirHistory.
func (e *engine) directionTrace() *DirectionTrace {
	tr := &DirectionTrace{Steps: make([]string, len(e.dirHistory))}
	for i, b := range e.dirHistory {
		if b == dirPullByte {
			tr.Steps[i] = "pull"
			tr.PullSteps++
		} else {
			tr.Steps[i] = "push"
		}
		if i > 0 && e.dirHistory[i] != e.dirHistory[i-1] {
			tr.Switches++
		}
	}
	return tr
}

// gatherMessages runs the pull phase: every worker's inbox for the next
// superstep is rebuilt by gathering from in-neighbors on the executor
// pool. Replaces routeMessages for pull supersteps.
func (e *engine) gatherMessages(step int) {
	// The gather rebuilds the inbox in RAM; any spill segment from the
	// previous superstep is dead from here on (mirrors routeMessages).
	for _, wk := range e.workers {
		wk.spilled = false
	}
	e.runPhase(phasePull, step)
}

// gatherPhase drains per-destination-worker gather tasks. With stealing
// disabled each executor gathers only its own worker's inbox.
//
//gm:noalloc
func (x *executor) gatherPhase(step int) {
	e := x.e
	if e.noSteal {
		e.workers[x.id].gatherInbox(x, step)
		return
	}
	for {
		t := int(e.taskCursor.Add(1)) - 1
		if t >= len(e.workers) {
			return
		}
		e.workers[t].gatherInbox(x, step)
	}
}

// gatherInbox rebuilds wk's inbox by walking its gather plan: for each
// owned vertex, its in-edges in canonical (source worker, source,
// edge) order, calling the job's Gather for every sender that ran this
// superstep. The result is bit-identical to what push routing would
// have delivered:
//
//   - Order: the plan's order equals routing's (source shard asc →
//     source worker asc → source local index asc → emission order).
//   - Combining: push combining is source-worker-scoped, one slot per
//     (source worker, destination, type), folded in first-touch
//     emission order. The plan's owner-sorted runs make each (source
//     worker, destination) group contiguous, so a per-type slot within
//     the current run reproduces both the fold order and the
//     post-combine count.
//   - Counters: messages/bytes are accounted per appended slot with the
//     same owner predicate push uses (source worker vs destination
//     worker), so per-superstep totals match exactly; only the
//     per-worker attribution moves (gather bills the destination's
//     partial, push the sender's — Stats only ever sums partials).
//
// In pull supersteps an armed routing-family fault fires here instead:
// the routing pass it targets does not run, and fail-stop semantics
// make the substitution observationally equivalent (the failure
// surfaces at the same barrier; rollback discards partial writes
// wholesale).
//
//gm:noalloc
func (wk *worker) gatherInbox(x *executor, step int) {
	if wk.routeFaultOn {
		wk.routeFaultOn = false
		wk.phaseErr = &InjectedFault{Superstep: wk.faultStep, Worker: wk.index, Phase: wk.routeFault} //gm:alloc-ok fault-injection testing path; never armed in production runs
	}
	e := wk.e
	gp := &e.gplans[wk.index]
	gs := e.gatherJob
	gc := &x.gc
	gc.superstep = step
	inFlat := wk.inFlat[:0]
	var msgs, netMsgs, netBytes, localBytes int64
	combining := wk.combiners != nil
	n := len(wk.ids)
	for li := 0; li < n; li++ {
		wk.inOff[li] = int32(len(inFlat))
		lo, hi := gp.off[li], gp.off[li+1]
		groupW := int32(-1)
		for p := lo; p < hi; p++ {
			sw := gp.srcW[p]
			if !e.workers[sw].ran[gp.srcLi[p]] {
				continue
			}
			m, ok := gs.Gather(gc, gp.src[p], gp.edge[p]) //gm:alloc-ok job contract: Gather must be allocation-free; the warm-pull perf test gates the full cycle at AllocsPerRun==0
			if !ok {
				continue
			}
			m.Dst = wk.ids[li]
			if combining {
				if sw != groupW {
					groupW = sw
					for t := range x.gslot {
						x.gslot[t] = -1
					}
				}
				if cs := wk.combiners; int(m.Type) < len(cs) && cs[m.Type] != nil {
					if s := x.gslot[m.Type]; s >= 0 {
						cs[m.Type](&inFlat[s], m) //gm:alloc-ok job-registered combiner funcs fold in place into the existing slot, as on the push path
						continue
					}
					x.gslot[m.Type] = int32(len(inFlat))
				}
			}
			inFlat = append(inFlat, m) //gm:alloc-ok inbox grows to its high-water mark, then capacity is reused; steady state allocation-free
			msgs++
			size := wk.baseSize
			if int(m.Type) < len(wk.msgSize) {
				size = wk.msgSize[m.Type]
			}
			if int(sw) != wk.index {
				netMsgs++
				netBytes += size
			} else {
				localBytes += size
			}
		}
	}
	wk.inFlat = inFlat
	wk.inOff[n] = int32(len(inFlat))
	wk.inTotal = len(inFlat)
	wk.inDepth.Store(int64(wk.inTotal))
	// Reactivate message recipients, maintaining the chunk active and
	// frontier counters exactly as routePrefix does on the push path.
	for ci := range wk.chunks {
		ck := &wk.chunks[ci]
		for li := ck.lo; li < ck.hi; li++ {
			if wk.inOff[li+1] > wk.inOff[li] && !wk.active[li] {
				wk.active[li] = true
				ck.numActive++
				ck.frontEdges += int64(e.g.OutDegree(wk.ids[li]))
			}
		}
	}
	// Gather counters merge into this worker's partials: the vertex-phase
	// epilogue already folded the chunk counters (pull steps emit no
	// pushes, so those carry only calls), and the barrier merges one
	// partial per worker either way.
	wk.msgs += msgs
	wk.netMsgs += netMsgs
	wk.netBytes += netBytes
	wk.localBytes += localBytes
}
