package pregel

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// statsModuloRecovery clears the recovery-cost and resource-governance
// fields so faulty, stalled, and budget-constrained runs can be compared
// against clean runs for everything else.
func statsModuloRecovery(st Stats) Stats {
	st.Checkpoints, st.CheckpointBytes, st.Recoveries, st.RecoveredSupersteps = 0, 0, 0, 0
	st.Spills, st.SpillBytes, st.MemoryPeakBytes, st.WatchdogStalls = 0, 0, 0, 0
	return st
}

func runMinLabel(t *testing.T, g *graph.Directed, n int, cfg Config) ([]int64, Stats) {
	t.Helper()
	j := &minLabelJob{label: make([]int64, n)}
	st, err := Run(g, j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j.label, st
}

// The acceptance-criteria core: a worker crash at a non-checkpoint
// superstep rolls back, replays, and finishes with bit-identical vertex
// outputs and stats.
func TestFaultRecoveryBitIdentical(t *testing.T) {
	const n = 60
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 3}
	labels, st := runMinLabel(t, g, n, base)

	faulty := base
	faulty.CheckpointEvery = 4
	faulty.Faults = FaultPlan{{Superstep: 7, Worker: 2}}
	fLabels, fst := runMinLabel(t, g, n, faulty)

	if !reflect.DeepEqual(labels, fLabels) {
		t.Errorf("fault-injected labels differ from fault-free run")
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("fault-injected stats differ:\nfault-free: %+v\nfaulty:     %+v", a, b)
	}
	if fst.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", fst.Recoveries)
	}
	// Checkpoint at 4, crash at 7: supersteps 4..7 are re-executed.
	if fst.RecoveredSupersteps != 4 {
		t.Errorf("RecoveredSupersteps = %d, want 4", fst.RecoveredSupersteps)
	}
	if fst.CheckpointBytes == 0 || fst.Checkpoints == 0 {
		t.Errorf("checkpoint accounting empty: %+v", fst)
	}
}

func TestRepeatedCrashesRecover(t *testing.T) {
	const n = 40
	g := gen.TwitterLike(n, 4, 9)
	base := Config{NumWorkers: 3, Seed: 5}
	labels, st := runMinLabel(t, g, n, base)

	faulty := base
	faulty.CheckpointEvery = 2
	faulty.Faults = FaultPlan{
		{Superstep: 3, Worker: 1},
		{Superstep: 3, Worker: 1},
		{Superstep: 5, Worker: 0},
	}
	fLabels, fst := runMinLabel(t, g, n, faulty)
	if !reflect.DeepEqual(labels, fLabels) {
		t.Error("labels differ after repeated crashes")
	}
	if fst.Recoveries != 3 {
		t.Errorf("Recoveries = %d, want 3", fst.Recoveries)
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ after repeated crashes:\n%+v\n%+v", a, b)
	}
}

func TestRoutingCrashRecovers(t *testing.T) {
	const n = 50
	g := gen.Ring(n)
	base := Config{NumWorkers: 4, Seed: 1, TraceSteps: true}
	labels, st := runMinLabel(t, g, n, base)

	faulty := base
	faulty.CheckpointEvery = 3
	faulty.Faults = FaultPlan{{Superstep: 7, Worker: 2, Phase: FaultRouting}}
	fLabels, fst := runMinLabel(t, g, n, faulty)
	if !reflect.DeepEqual(labels, fLabels) {
		t.Error("labels differ after routing crash")
	}
	if fst.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", fst.Recoveries)
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("stats (incl. per-step trace) differ after routing crash:\n%+v\n%+v", a, b)
	}
}

func TestRecoveryBudgetExhaustedFailsCleanly(t *testing.T) {
	const n = 20
	g := gen.Ring(n)
	cfg := Config{
		NumWorkers:      2,
		Seed:            1,
		CheckpointEvery: 2,
		MaxRecoveries:   2,
		Faults: FaultPlan{
			{Superstep: 3, Worker: 0}, {Superstep: 3, Worker: 0},
			{Superstep: 3, Worker: 0}, {Superstep: 3, Worker: 0},
		},
	}
	j := &minLabelJob{label: make([]int64, n)}
	st, err := Run(g, j, cfg)
	if err == nil {
		t.Fatal("want budget-exhausted error, got nil")
	}
	if st.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want 2 (the budget)", st.Recoveries)
	}
	if st.Supersteps == 0 {
		t.Errorf("partial stats lost: %+v", st)
	}
}

func TestFaultWithoutCheckpointIntervalUsesInitialCheckpoint(t *testing.T) {
	// CheckpointEvery unset: the fault plan alone forces a superstep-0
	// checkpoint and recovery replays from the start.
	const n = 30
	g := gen.Ring(n)
	base := Config{NumWorkers: 3, Seed: 2}
	labels, st := runMinLabel(t, g, n, base)

	faulty := base
	faulty.Faults = FaultPlan{{Superstep: 6, Worker: 1}}
	fLabels, fst := runMinLabel(t, g, n, faulty)
	if !reflect.DeepEqual(labels, fLabels) {
		t.Error("labels differ")
	}
	if fst.Recoveries != 1 || fst.RecoveredSupersteps != 7 {
		t.Errorf("recovery cost = %d/%d, want 1/7", fst.Recoveries, fst.RecoveredSupersteps)
	}
	if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ:\n%+v\n%+v", a, b)
	}
}

// rngJob draws from both the per-worker and the master RNG every
// superstep and records the streams in job state, so a recovery that
// fails to restore RNG positions is caught bit-for-bit.
type rngJob struct {
	steps  int
	Draws  [][]int64      // per vertex, one draw per superstep
	Picked []graph.NodeID // master PickRandomNode per superstep
}

func (j *rngJob) Schema() Schema { return Schema{} }

func (j *rngJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.steps {
		mc.Halt()
		return
	}
	j.Picked = append(j.Picked, mc.PickRandomNode())
}

func (j *rngJob) VertexCompute(vc *VertexContext) {
	v := vc.ID()
	j.Draws[v] = append(j.Draws[v], int64(vc.Rand().Intn(1_000_000)))
}

func (j *rngJob) SnapshotState() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(struct {
		Draws  [][]int64
		Picked []graph.NodeID
	}{j.Draws, j.Picked}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func (j *rngJob) RestoreState(b []byte) {
	var s struct {
		Draws  [][]int64
		Picked []graph.NodeID
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		panic(err)
	}
	if s.Draws == nil {
		s.Draws = make([][]int64, len(j.Draws))
	}
	j.Draws, j.Picked = s.Draws, s.Picked
}

func TestRNGPositionsRestoredAcrossRecovery(t *testing.T) {
	const n, steps = 24, 10
	g := gen.Ring(n)
	run := func(cfg Config) *rngJob {
		j := &rngJob{steps: steps, Draws: make([][]int64, n)}
		if _, err := Run(g, j, cfg); err != nil {
			t.Fatal(err)
		}
		return j
	}
	base := Config{NumWorkers: 4, Seed: 77}
	clean := run(base)

	faulty := base
	faulty.CheckpointEvery = 3
	faulty.Faults = FaultPlan{{Superstep: 5, Worker: 1}, {Superstep: 8, Worker: 3}}
	recovered := run(faulty)

	if !reflect.DeepEqual(clean.Picked, recovered.Picked) {
		t.Errorf("master RNG stream differs:\nclean:     %v\nrecovered: %v", clean.Picked, recovered.Picked)
	}
	if !reflect.DeepEqual(clean.Draws, recovered.Draws) {
		t.Error("worker RNG streams differ after recovery")
	}
}

// Checkpoint encode/decode round-trips the full engine state.
func TestCheckpointStateRoundTrip(t *testing.T) {
	const n = 30
	g := gen.TwitterLike(n, 4, 6)
	j := &minLabelJob{label: make([]int64, n)}
	cfg := Config{NumWorkers: 3, Seed: 4, TraceSteps: true, CheckpointEvery: 1}.withDefaults()
	e := newEngine(g, j, cfg)
	defer e.stop()
	// Advance a few supersteps so there is nontrivial state to snapshot;
	// the max-supersteps abort is the expected way out.
	e.cfg.MaxSupersteps = 5
	if err := e.loop(context.Background()); err == nil {
		t.Fatal("want max-supersteps error, got nil")
	}
	data := e.encodeState()
	if err := e.decodeState(data); err != nil {
		t.Fatalf("decode of freshly encoded state failed: %v", err)
	}
	if again := e.encodeState(); !bytes.Equal(data, again) {
		t.Error("encode→decode→encode is not a fixed point")
	}
	// Corruption is detected, not silently accepted.
	if err := e.decodeState(data[:len(data)/2]); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
}
