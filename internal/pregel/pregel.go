// Package pregel implements a GPS-like bulk-synchronous vertex-centric
// graph processing engine: the substrate the paper's compiler targets.
//
// The engine reproduces the programming model of Pregel as extended by
// GPS (Salihoglu & Widom): a master.compute() function that runs at the
// beginning of every superstep, a vertex.compute() function invoked for
// each active vertex, push-only messaging with delivery in the next
// superstep, a global-objects map for master→vertex broadcast, reduction
// aggregators for vertex→master communication, and voteToHalt().
//
// Vertices are hash-partitioned (id mod W) across W persistent worker
// goroutines, spawned once per run and parked on a reusable barrier
// between phases (see docs/ENGINE.md, "Hot path and scheduling").
// Messages between vertices on different workers are accounted as
// network I/O at their serialized wire size; master broadcast and
// aggregator traffic is accounted separately as control I/O. Runs are
// deterministic for a fixed configuration and seed: inboxes are grouped
// in source-worker order and each worker's RNG is seeded from Config.Seed.
package pregel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/obs"
)

// MaxPayloadSlots is the number of 64-bit payload slots in a Msg.
// Four slots cover every message schema the compiler generates (the most
// complex, Betweenness Centrality's reverse sweep, needs two).
const MaxPayloadSlots = 4

// Msg is a message between vertices. Payload slots hold int64, float64
// (bit-cast), bool, or node IDs; the schema of each Type determines how
// many slots are live and what their wire size is.
type Msg struct {
	Dst  graph.NodeID
	Type uint8
	V    [MaxPayloadSlots]uint64
}

// SetInt stores an int64 in payload slot i.
func (m *Msg) SetInt(i int, v int64) { m.V[i] = uint64(v) }

// Int reads payload slot i as an int64.
func (m *Msg) Int(i int) int64 { return int64(m.V[i]) }

// SetFloat stores a float64 in payload slot i.
func (m *Msg) SetFloat(i int, v float64) { m.V[i] = math.Float64bits(v) }

// Float reads payload slot i as a float64.
func (m *Msg) Float(i int) float64 { return math.Float64frombits(m.V[i]) }

// SetBool stores a bool in payload slot i.
func (m *Msg) SetBool(i int, v bool) {
	if v {
		m.V[i] = 1
	} else {
		m.V[i] = 0
	}
}

// Bool reads payload slot i as a bool.
func (m *Msg) Bool(i int) bool { return m.V[i] != 0 }

// SetNode stores a node ID in payload slot i.
func (m *Msg) SetNode(i int, v graph.NodeID) { m.V[i] = uint64(uint32(v)) }

// Node reads payload slot i as a node ID.
func (m *Msg) Node(i int) graph.NodeID { return graph.NodeID(int32(uint32(m.V[i]))) }

// AggOp is an aggregator reduction operator.
type AggOp uint8

// Aggregator reduction operators. AggAny keeps an arbitrary (but
// deterministic: highest-indexed contributing worker's last write)
// contributed value, mirroring the effect of parallel plain writes to a
// global.
const (
	AggSum AggOp = iota
	AggMin
	AggMax
	AggOr
	AggAnd
	AggAny
)

// AggKind is the value domain of an aggregator.
type AggKind uint8

// Aggregator value kinds; node IDs aggregate as AggKindInt.
const (
	AggKindInt AggKind = iota
	AggKindFloat
	AggKindBool
)

// AggSpec declares one aggregator slot.
type AggSpec struct {
	Name string
	Kind AggKind
	Op   AggOp
}

// GlobalSpec declares one master-broadcast global slot. Size is the wire
// size in bytes used for control-I/O accounting.
type GlobalSpec struct {
	Name string
	Size int
}

// Combiner merges a newly sent message into a pending one with the same
// destination and type before transmission (Pregel's message combiner).
// It must be commutative and associative over the payload.
type Combiner func(into *Msg, m Msg)

// Schema declares a job's communication shape.
type Schema struct {
	// MessagePayloadBytes gives the wire payload size of each message
	// type, indexed by Msg.Type. A nil/empty slice means the job sends no
	// messages.
	MessagePayloadBytes []int
	Aggregators         []AggSpec
	Globals             []GlobalSpec
	// Combiners optionally provides a combiner per message type (nil
	// entries disable combining for that type). Combined messages are
	// merged sender-side, reducing both message count and network bytes;
	// MessagesSent reports post-combine counts.
	Combiners []Combiner
}

// Job is a Pregel program: the pair of compute functions plus the
// communication schema. MasterCompute runs once at the beginning of every
// superstep (GPS's master.compute); VertexCompute runs for every vertex
// that is active or has incoming messages.
type Job interface {
	MasterCompute(mc *MasterContext)
	VertexCompute(vc *VertexContext)
	Schema() Schema
}

// Config controls an engine run.
type Config struct {
	// NumWorkers is the number of simulated workers; 0 means GOMAXPROCS.
	NumWorkers int
	// MaxSupersteps aborts runaway jobs; 0 means 1 << 20.
	MaxSupersteps int
	// Seed seeds all randomness (master and per-worker RNGs).
	Seed int64
	// TraceSteps records per-superstep statistics in Stats.Steps.
	TraceSteps bool
	// CheckpointEvery takes a recovery checkpoint at the barrier entering
	// supersteps 0, k, 2k, …. 0 disables periodic checkpointing; when a
	// fault plan is configured, a single superstep-0 checkpoint is still
	// taken so rollback is always possible.
	CheckpointEvery int
	// Faults deterministically injects worker failures; each failure is
	// converted into rollback to the last checkpoint and replay.
	Faults FaultPlan
	// MaxRecoveries bounds rollback-replay attempts, after which the run
	// fails cleanly with partial Stats; 0 means 8.
	MaxRecoveries int
	// Deadline is a wall-clock budget for the whole run, checked at every
	// superstep barrier (a superstep in progress is not interrupted);
	// 0 means no deadline.
	Deadline time.Duration
	// Observer, when non-nil, receives a structured trace of the run: one
	// span per engine phase (master, per-worker vertex compute, barrier,
	// routing, checkpoint, recovery) plus a final run-scoped span carrying
	// the authoritative totals. Spans are emitted from the barrier
	// goroutine, never concurrently. When nil the engine takes no
	// timestamps and the hot path is identical to an unobserved run.
	Observer obs.Observer
}

func (c Config) withDefaults() Config {
	if c.NumWorkers <= 0 {
		c.NumWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 1 << 20
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 8
	}
	return c
}

// StepStats records one superstep's traffic. Every field is a
// deterministic counter — no wall times — so a crash-and-recover run
// reproduces the fault-free Steps slice bit for bit (timing lives in the
// Observer trace, which keeps rolled-back work visible instead).
type StepStats struct {
	Messages     int64
	NetworkBytes int64
	VertexCalls  int64
	NetworkMsgs  int64
	LocalBytes   int64
	ControlBytes int64
}

// PhaseLabeler is optionally implemented by jobs that know which logical
// state a superstep executes (the machine executor reports the compiled
// state-machine state picked by master.compute). The engine queries it
// after the master phase and attaches the label to that superstep's
// master and vertex-compute spans.
type PhaseLabeler interface {
	PhaseLabel() string
}

// Stats summarizes a run. NetworkBytes counts serialized bytes of
// messages whose endpoints live on different workers (4-byte destination
// id, a 1-byte type tag when the job declares more than one message type,
// then the schema payload). ControlBytes counts global broadcast and
// aggregator traffic.
type Stats struct {
	Supersteps    int
	MessagesSent  int64
	NetworkMsgs   int64
	NetworkBytes  int64
	LocalBytes    int64
	ControlBytes  int64
	VertexCalls   int64
	ReturnedInt   int64
	ReturnedFloat float64
	ReturnedIsSet bool
	ReturnedIsInt bool
	Steps         []StepStats

	// Fault-tolerance accounting. Checkpoints and CheckpointBytes count
	// every checkpoint taken (engine state + job snapshot, serialized);
	// Recoveries counts rollbacks and RecoveredSupersteps the supersteps
	// re-executed because of them. These four are monotone: a rollback
	// rewinds every other counter to its checkpointed value but never
	// these. A fault-injected run therefore finishes with the same
	// Supersteps/Messages/Bytes/Returned* as an unfailed run, plus a
	// nonzero recovery bill.
	Checkpoints         int
	CheckpointBytes     int64
	Recoveries          int
	RecoveredSupersteps int
}

type aggCell struct {
	set bool
	i   int64
	f   float64
}

func (c *aggCell) merge(spec AggSpec, o aggCell) {
	if !o.set {
		return
	}
	if !c.set {
		*c = o
		return
	}
	switch spec.Op {
	case AggSum:
		c.i += o.i
		c.f += o.f
	case AggMin:
		if o.i < c.i {
			c.i = o.i
		}
		if o.f < c.f {
			c.f = o.f
		}
	case AggMax:
		if o.i > c.i {
			c.i = o.i
		}
		if o.f > c.f {
			c.f = o.f
		}
	case AggOr:
		if o.i != 0 {
			c.i = 1
		}
	case AggAnd:
		if o.i == 0 {
			c.i = 0
		}
	case AggAny:
		*c = o
	}
}

// fastDiv divides nonnegative 32-bit integers by a fixed divisor with a
// Lemire-style multiply-high, replacing the hardware DIV/MOD that would
// otherwise run once or twice per message in the hot paths (send picks
// the owning worker with id mod W; routing recovers the local index with
// id / W).
type fastDiv struct {
	m uint64 // ceil(2^64 / d); 0 means d == 1 (identity divide)
	d uint32
}

func newFastDiv(d uint32) fastDiv {
	if d <= 1 {
		return fastDiv{d: 1}
	}
	return fastDiv{m: ^uint64(0)/uint64(d) + 1, d: d}
}

// div returns x / d.
func (f fastDiv) div(x uint32) uint32 {
	if f.m == 0 {
		return x
	}
	hi, _ := bits.Mul64(f.m, uint64(x))
	return uint32(hi)
}

// mod returns x % d.
func (f fastDiv) mod(x uint32) uint32 { return x - f.div(x)*f.d }

// phaseKind selects the work a parked pool worker runs on wake-up.
type phaseKind uint8

const (
	phaseVertex phaseKind = iota // runStep(step)
	phaseRoute                   // routeInbox()
)

// poolCmd is one barrier release: the phase to run and its superstep.
type poolCmd struct {
	kind phaseKind
	step int
}

// engine holds one run's state.
type engine struct {
	g      *graph.Directed
	job    Job
	cfg    Config
	schema Schema

	numWorkers int
	msgTag     int // 1 if >1 message type, else 0
	div        fastDiv
	baseSize   int64   // wire bytes independent of payload: 4-byte dst + optional tag
	msgSize    []int64 // full wire size per declared message type

	workers []*worker
	// phaseWG is the reusable barrier the master waits on after releasing
	// the persistent workers into a phase.
	phaseWG sync.WaitGroup
	stopped bool

	globals     []uint64
	globalBytes int64 // accumulated control bytes from SetGlobal*

	aggValues []aggCell // merged values visible to master

	masterSrc  *countingSource
	masterRand *rand.Rand
	mc         MasterContext // reused across supersteps (no per-step alloc)
	halted     bool
	retSet     bool
	retIsInt   bool
	retInt     int64
	retFloat   float64

	// Fault tolerance.
	ckptOn bool
	ckpt   *checkpoint
	faults []faultState

	// Observability. obsOn caches cfg.Observer != nil so the hot path
	// tests a bool, not an interface; runStart anchors span timestamps.
	obsOn    bool
	runStart time.Time

	stats Stats
}

// nowNS returns nanoseconds since the run started (span timebase).
func (e *engine) nowNS() int64 { return time.Since(e.runStart).Nanoseconds() }

// emit forwards a span to the configured observer. Only called when
// obsOn; all call sites run on the barrier goroutine, so observers never
// see concurrent calls.
func (e *engine) emit(s obs.Span) { e.cfg.Observer.ObserveSpan(s) }

// worker owns the vertices v with v % numWorkers == index. Under this
// hash partitioning the owned IDs ascend with stride numWorkers, so the
// local index of an owned vertex is pure arithmetic: local = id / W.
// Every slice and map below is retained across supersteps — the
// steady-state superstep allocates nothing.
type worker struct {
	e     *engine
	index int
	ids   []graph.NodeID // global IDs owned, ascending

	active []bool
	// numActive counts true entries of active, maintained incrementally
	// by runStep/VoteToHalt/routeInbox so the termination check is O(W)
	// instead of O(V).
	numActive int
	inFlat    []Msg
	inOff     []int32 // CSR offsets into inFlat, len = len(ids)+1
	inTotal   int     // messages routed into inFlat by the last routing phase
	outboxes  [][]Msg // per destination worker
	// combineIdx maps (dst, type) to the pending outbox slot when the
	// job registers combiners; cleared (not reallocated) each superstep.
	combineIdx map[uint64]combineSlot

	// Hot-path caches copied from the engine at construction so send
	// touches one cache line instead of chasing e.schema.
	div       fastDiv
	combiners []Combiner // nil when the job registers none
	msgSize   []int64
	baseSize  int64

	// counts/next are the routing counting-sort scratch, retained across
	// supersteps.
	counts []int32 // len(ids)+1
	next   []int32 // len(ids)

	aggLocal []aggCell
	rngSrc   *countingSource
	rng      *rand.Rand
	vc       VertexContext // reused across a worker's vertices and supersteps

	// cmds parks the worker's persistent goroutine between phases; the
	// master closes it on engine stop.
	cmds chan poolCmd

	// per-step counters (merged under the barrier)
	msgs, netMsgs, netBytes, localBytes, calls int64

	// span timing for the last vertex phase, relative to engine.runStart;
	// written only when the engine has an observer.
	stepStartNS, stepDurNS int64

	err error
	// faultAt is the local vertex index at which an armed injected fault
	// fires this superstep; -1 when no fault is armed.
	faultAt int
}

func (e *engine) workerOf(v graph.NodeID) int { return int(e.div.mod(uint32(v))) }

// Run executes the job on g to completion and returns run statistics.
// It returns an error if the job exceeds MaxSupersteps, a compute
// function panics, the deadline expires, or the recovery budget is
// exhausted. Even on error, Stats.Returned* reflect whatever the master
// recorded before the abort, so callers see partial results
// consistently.
func Run(g *graph.Directed, job Job, cfg Config) (Stats, error) {
	return RunContext(context.Background(), g, job, cfg)
}

// RunContext is Run with cooperative cancellation: ctx (and
// Config.Deadline, when set) is checked at every superstep barrier; a
// superstep in progress is never interrupted mid-phase.
func RunContext(ctx context.Context, g *graph.Directed, job Job, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	e := newEngine(g, job, cfg)
	defer e.stop()
	err := e.loop(ctx)
	// Partial results: report the master's recorded return value even
	// when the run aborted.
	e.stats.ReturnedIsSet = e.retSet
	e.stats.ReturnedIsInt = e.retIsInt
	e.stats.ReturnedInt = e.retInt
	e.stats.ReturnedFloat = e.retFloat
	if e.obsOn {
		// Run-scoped span with the authoritative totals; emitted even on
		// abort so observers can close out partial runs.
		e.emit(obs.Span{
			Superstep:   e.stats.Supersteps,
			Worker:      -1,
			Phase:       obs.PhaseRun,
			DurNS:       e.nowNS(),
			Messages:    e.stats.MessagesSent,
			Bytes:       e.stats.NetworkBytes,
			VertexCalls: e.stats.VertexCalls,
		})
	}
	return e.stats, err
}

func newEngine(g *graph.Directed, job Job, cfg Config) *engine {
	e := &engine{g: g, job: job, cfg: cfg, schema: job.Schema()}
	e.numWorkers = cfg.NumWorkers
	if n := g.NumNodes(); e.numWorkers > n && n > 0 {
		e.numWorkers = n
	}
	if len(e.schema.MessagePayloadBytes) > 1 {
		e.msgTag = 1
	}
	e.div = newFastDiv(uint32(e.numWorkers))
	e.baseSize = int64(4 + e.msgTag)
	e.msgSize = make([]int64, len(e.schema.MessagePayloadBytes))
	for t, p := range e.schema.MessagePayloadBytes {
		e.msgSize[t] = e.baseSize + int64(p)
	}
	e.mc = MasterContext{e: e}
	var combiners []Combiner
	for _, c := range e.schema.Combiners {
		if c != nil {
			combiners = e.schema.Combiners
			break
		}
	}
	e.globals = make([]uint64, len(e.schema.Globals))
	e.aggValues = make([]aggCell, len(e.schema.Aggregators))
	e.masterSrc = newCountingSource(cfg.Seed)
	e.masterRand = rand.New(e.masterSrc)
	e.ckptOn = cfg.CheckpointEvery > 0 || len(cfg.Faults) > 0
	e.obsOn = cfg.Observer != nil
	if e.obsOn {
		e.runStart = time.Now()
	}
	e.faults = make([]faultState, len(cfg.Faults))
	for i, f := range cfg.Faults {
		e.faults[i] = faultState{Fault: f}
	}

	e.workers = make([]*worker, e.numWorkers)
	for w := 0; w < e.numWorkers; w++ {
		wk := &worker{e: e, index: w, faultAt: -1}
		n := g.NumNodes()
		if n > w {
			wk.ids = make([]graph.NodeID, 0, (n-w+e.numWorkers-1)/e.numWorkers)
		}
		for v := graph.NodeID(w); int(v) < n; v += graph.NodeID(e.numWorkers) {
			wk.ids = append(wk.ids, v)
		}
		wk.active = make([]bool, len(wk.ids))
		for i := range wk.active {
			wk.active[i] = true
		}
		wk.numActive = len(wk.ids)
		wk.inOff = make([]int32, len(wk.ids)+1)
		wk.counts = make([]int32, len(wk.ids)+1)
		wk.next = make([]int32, len(wk.ids))
		wk.outboxes = make([][]Msg, e.numWorkers)
		if combiners != nil {
			wk.combineIdx = make(map[uint64]combineSlot)
		}
		wk.div = e.div
		wk.combiners = combiners
		wk.msgSize = e.msgSize
		wk.baseSize = e.baseSize
		wk.aggLocal = make([]aggCell, len(e.schema.Aggregators))
		wk.rngSrc = newCountingSource(cfg.Seed*7919 + int64(w) + 1)
		wk.rng = rand.New(wk.rngSrc)
		wk.vc = VertexContext{wk: wk}
		wk.cmds = make(chan poolCmd, 1)
		e.workers[w] = wk
	}
	// The persistent pool: one goroutine per worker for the whole run,
	// parked on its command channel between phases. engine.stop (deferred
	// by RunContext) shuts them down on every exit path.
	for _, wk := range e.workers {
		go wk.poolRun()
	}
	return e
}

// stop shuts the persistent worker pool down. Idempotent; called on
// every run-exit path (normal, error, panic-converted, recovery-budget
// exhaustion) and only ever between phases, so no worker is mid-command.
func (e *engine) stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, wk := range e.workers {
		close(wk.cmds)
	}
}

// runPhase releases every parked worker into one phase and waits for
// all of them at the reusable barrier.
func (e *engine) runPhase(kind phaseKind, step int) {
	e.phaseWG.Add(len(e.workers))
	for _, wk := range e.workers {
		wk.cmds <- poolCmd{kind: kind, step: step}
	}
	e.phaseWG.Wait()
}

// poolRun is a worker's persistent goroutine: park, run the commanded
// phase, signal the barrier, repeat until the channel closes.
func (wk *worker) poolRun() {
	for cmd := range wk.cmds {
		wk.runCmd(cmd)
		wk.e.phaseWG.Done()
	}
}

// runCmd executes one phase command, converting any panic into a worker
// error so the barrier is always reached (a lost Done would deadlock the
// master).
func (wk *worker) runCmd(cmd poolCmd) {
	defer func() {
		if r := recover(); r != nil && wk.err == nil {
			wk.err = fmt.Errorf("pregel: worker %d panicked in routing phase: %v", wk.index, r)
		}
	}()
	switch cmd.kind {
	case phaseVertex:
		wk.runStep(cmd.step)
	case phaseRoute:
		wk.routeInbox()
	}
}

func (e *engine) loop(ctx context.Context) error {
	for step := 0; ; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pregel: run canceled at superstep %d: %w", step, err)
		}
		if step >= e.cfg.MaxSupersteps {
			return fmt.Errorf("pregel: exceeded %d supersteps", e.cfg.MaxSupersteps)
		}
		if e.checkpointDue(step) {
			if e.obsOn {
				t0 := e.nowNS()
				before := e.stats.CheckpointBytes
				e.takeCheckpoint(step)
				e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseCheckpoint,
					StartNS: t0, DurNS: e.nowNS() - t0, Bytes: e.stats.CheckpointBytes - before})
			} else {
				e.takeCheckpoint(step)
			}
		}
		// Master phase: sees aggregator values contributed last superstep.
		var masterT0 int64
		if e.obsOn {
			masterT0 = e.nowNS()
		}
		halted, err := e.masterPhase(step)
		if err != nil {
			return err
		}
		// The state label is queried after the master phase because the
		// machine executor's master picks the superstep's state there.
		var stateLabel string
		if e.obsOn {
			if pl, ok := e.job.(PhaseLabeler); ok {
				stateLabel = pl.PhaseLabel()
			}
			e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseMaster,
				State: stateLabel, StartNS: masterT0, DurNS: e.nowNS() - masterT0})
		}
		if halted {
			return nil
		}
		// Vertex phase: release the parked pool, no goroutine creation.
		e.armVertexFault(step)
		e.runPhase(phaseVertex, step)
		if e.obsOn {
			// One span per worker, emitted even for a superstep that is
			// about to roll back: the trace keeps failed work visible
			// while Stats rewinds.
			for _, wk := range e.workers {
				e.emit(obs.Span{Superstep: step, Worker: wk.index, Phase: obs.PhaseVertexCompute,
					State: stateLabel, StartNS: wk.stepStartNS, DurNS: wk.stepDurNS,
					Messages: wk.msgs, Bytes: wk.netBytes, VertexCalls: wk.calls})
			}
		}
		var crashed *InjectedFault
		for _, wk := range e.workers {
			wk.faultAt = -1
			if wk.err == nil {
				continue
			}
			var inj *InjectedFault
			if errors.As(wk.err, &inj) {
				crashed = inj
				wk.err = nil
				continue
			}
			return wk.err
		}
		if crashed != nil {
			resume, err := e.recoverFrom(crashed, step)
			if err != nil {
				return err
			}
			step = resume
			continue
		}
		var barrierT0 int64
		if e.obsOn {
			barrierT0 = e.nowNS()
		}
		e.stats.Supersteps++
		// Merge counters and aggregators; route messages. Aggregators
		// are per-superstep (Pregel semantics): the master sees only the
		// contributions of the superstep that just ran.
		for s := range e.aggValues {
			e.aggValues[s] = aggCell{}
		}
		var stepMsgs, stepNet, stepCalls, stepNetMsgs, stepLocal int64
		for _, wk := range e.workers {
			stepMsgs += wk.msgs
			stepNet += wk.netBytes
			stepCalls += wk.calls
			stepNetMsgs += wk.netMsgs
			stepLocal += wk.localBytes
			e.stats.MessagesSent += wk.msgs
			e.stats.NetworkMsgs += wk.netMsgs
			e.stats.NetworkBytes += wk.netBytes
			e.stats.LocalBytes += wk.localBytes
			e.stats.VertexCalls += wk.calls
			wk.msgs, wk.netMsgs, wk.netBytes, wk.localBytes, wk.calls = 0, 0, 0, 0, 0
			for s := range wk.aggLocal {
				e.aggValues[s].merge(e.schema.Aggregators[s], wk.aggLocal[s])
				wk.aggLocal[s] = aggCell{}
			}
		}
		// Aggregator control traffic: one value per set aggregator per
		// non-master worker.
		var stepCtl int64
		for s := range e.aggValues {
			if e.aggValues[s].set {
				stepCtl += int64(8 * (e.numWorkers - 1))
			}
		}
		stepCtl += e.globalBytes
		e.stats.ControlBytes += stepCtl
		e.globalBytes = 0
		if e.cfg.TraceSteps {
			e.stats.Steps = append(e.stats.Steps, StepStats{
				Messages:     stepMsgs,
				NetworkBytes: stepNet,
				VertexCalls:  stepCalls,
				NetworkMsgs:  stepNetMsgs,
				LocalBytes:   stepLocal,
				ControlBytes: stepCtl,
			})
		}
		if e.obsOn {
			e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseBarrier,
				StartNS: barrierT0, DurNS: e.nowNS() - barrierT0})
		}

		if f := e.armRoutingFault(step); f != nil {
			resume, err := e.recoverFrom(f, step)
			if err != nil {
				return err
			}
			step = resume
			continue
		}
		var routeT0 int64
		if e.obsOn {
			routeT0 = e.nowNS()
		}
		anyMsgs := e.routeMessages()
		if e.obsOn {
			e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseRouting,
				StartNS: routeT0, DurNS: e.nowNS() - routeT0})
		}
		for _, wk := range e.workers {
			if wk.err != nil {
				return wk.err
			}
		}
		// Termination check: O(W) thanks to the per-worker active counters
		// maintained by runStep/VoteToHalt/routeInbox.
		anyActive := false
		for _, wk := range e.workers {
			if wk.numActive > 0 {
				anyActive = true
				break
			}
		}
		if !anyMsgs && !anyActive {
			return nil
		}
		step++
	}
}

// recoverFrom wraps rollback with trace emission: a recovery span
// covering the restore, attributed to the superstep that failed.
func (e *engine) recoverFrom(f *InjectedFault, step int) (int, error) {
	if !e.obsOn {
		return e.rollback(f)
	}
	t0 := e.nowNS()
	resume, err := e.rollback(f)
	e.emit(obs.Span{Superstep: step, Worker: f.Worker, Phase: obs.PhaseRecovery,
		StartNS: t0, DurNS: e.nowNS() - t0})
	return resume, err
}

// masterPhase runs master.compute for step, converting a panic into an
// error so a faulty master cannot crash the process (the vertex phase
// has the same protection in runStep).
func (e *engine) masterPhase(step int) (halted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pregel: master compute panicked at superstep %d: %v", step, r)
		}
	}()
	e.mc.superstep = step
	e.job.MasterCompute(&e.mc)
	return e.halted, nil
}

// routeMessages moves every worker's outboxes into destination workers'
// inboxes, grouped per destination vertex in CSR form, preserving source
// worker order for determinism. It reports whether any message is in
// flight. The work runs on the persistent pool; outboxes are read-only
// during the phase and truncated by their owning worker at the start of
// its next vertex phase, so routing itself allocates nothing once the
// inbox has grown to its high-water capacity.
func (e *engine) routeMessages() bool {
	e.runPhase(phaseRoute, 0)
	any := false
	for _, wk := range e.workers {
		if wk.inTotal > 0 {
			any = true
			break
		}
	}
	return any
}

// routeInbox counting-sorts every source worker's outbox for this worker
// into the CSR inbox, reusing the retained counts/next scratch and inFlat
// capacity. Recipients of messages are reactivated (with the active
// counter maintained). Runs on the worker's pool goroutine; it reads
// other workers' outboxes, which no one mutates during the phase.
func (wk *worker) routeInbox() {
	e := wk.e
	total := 0
	for _, src := range e.workers {
		total += len(src.outboxes[wk.index])
	}
	wk.inTotal = total
	if total == 0 {
		// Inbox was consumed and offsets zeroed at the end of runStep;
		// nothing to route.
		wk.inFlat = wk.inFlat[:0]
		return
	}
	counts := wk.counts
	for i := range counts {
		counts[i] = 0
	}
	div := wk.div
	for _, src := range e.workers {
		box := src.outboxes[wk.index]
		for i := range box {
			li := int(div.div(uint32(box[i].Dst)))
			counts[li+1]++
		}
	}
	for i := 0; i < len(wk.ids); i++ {
		counts[i+1] += counts[i]
	}
	if cap(wk.inFlat) < total {
		wk.inFlat = make([]Msg, total)
	} else {
		wk.inFlat = wk.inFlat[:total]
	}
	next := wk.next
	copy(next, counts[:len(wk.ids)])
	for _, src := range e.workers {
		box := src.outboxes[wk.index]
		for i := range box {
			li := int(div.div(uint32(box[i].Dst)))
			wk.inFlat[next[li]] = box[i]
			next[li]++
		}
	}
	copy(wk.inOff, counts)
	for li := 0; li < len(wk.ids); li++ {
		if counts[li+1] > counts[li] && !wk.active[li] {
			wk.active[li] = true
			wk.numActive++
		}
	}
}

func (wk *worker) runStep(step int) {
	defer func() {
		if r := recover(); r != nil {
			wk.err = fmt.Errorf("pregel: vertex compute panicked on worker %d: %v", wk.index, r)
		}
	}()
	if wk.e.obsOn {
		wk.stepStartNS = wk.e.nowNS()
		defer func() { wk.stepDurNS = wk.e.nowNS() - wk.stepStartNS }()
	}
	// Truncate our own outboxes from the previous superstep (routing has
	// long completed; owner-only truncation keeps the work parallel and
	// retains the capacity) and clear — don't reallocate — the combiner
	// index.
	for d := range wk.outboxes {
		wk.outboxes[d] = wk.outboxes[d][:0]
	}
	if wk.combineIdx != nil {
		clear(wk.combineIdx)
	}
	vc := &wk.vc
	vc.superstep = step
	for li, v := range wk.ids {
		if wk.faultAt >= 0 && li == wk.faultAt {
			// Injected crash mid-phase: job state and outboxes stay
			// partially mutated; rollback undoes the damage.
			wk.err = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultVertexCompute}
			return
		}
		hasMsgs := wk.inOff[li+1] > wk.inOff[li]
		if !wk.active[li] && !hasMsgs {
			continue
		}
		if !wk.active[li] {
			wk.active[li] = true
			wk.numActive++
		}
		vc.id = v
		vc.local = li
		vc.msgs = wk.inFlat[wk.inOff[li]:wk.inOff[li+1]]
		wk.calls++
		wk.e.job.VertexCompute(vc)
	}
	if wk.faultAt >= len(wk.ids) {
		// Armed on a worker owning too few vertices: crash at phase end.
		wk.err = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultVertexCompute}
		return
	}
	// Consume this step's inbox.
	wk.inFlat = wk.inFlat[:0]
	for i := range wk.inOff {
		wk.inOff[i] = 0
	}
}

type combineSlot struct {
	dw  int
	idx int
}

// send appends m to the outbox of m.Dst's owning worker. It touches only
// the worker's own retained state (cached divider, combiner table, wire
// sizes) and allocates nothing once outbox/index capacity has reached its
// high-water mark.
func (wk *worker) send(src graph.NodeID, m Msg) {
	dw := int(wk.div.mod(uint32(m.Dst)))
	if cs := wk.combiners; cs != nil && int(m.Type) < len(cs) && cs[m.Type] != nil {
		key := uint64(uint32(m.Dst))<<8 | uint64(m.Type)
		if slot, ok := wk.combineIdx[key]; ok {
			cs[m.Type](&wk.outboxes[slot.dw][slot.idx], m)
			return
		}
		wk.combineIdx[key] = combineSlot{dw: dw, idx: len(wk.outboxes[dw])}
	}
	wk.outboxes[dw] = append(wk.outboxes[dw], m)
	wk.msgs++
	size := wk.baseSize
	if int(m.Type) < len(wk.msgSize) {
		size = wk.msgSize[m.Type]
	}
	if dw != wk.index {
		wk.netMsgs++
		wk.netBytes += size
	} else {
		wk.localBytes += size
	}
	_ = src
}

// sendToAll sends a copy of m to every node in dsts (the SendToAllNbrs
// bulk path). For jobs without combiners it hoists the per-message size
// lookup and counter updates out of the loop; with combiners it falls
// back to send, which must consult the index per destination.
func (wk *worker) sendToAll(src graph.NodeID, dsts []graph.NodeID, m Msg) {
	if wk.combiners != nil {
		for _, d := range dsts {
			m.Dst = d
			wk.send(src, m)
		}
		return
	}
	size := wk.baseSize
	if int(m.Type) < len(wk.msgSize) {
		size = wk.msgSize[m.Type]
	}
	div := wk.div
	self := uint32(wk.index)
	var local int64
	for _, d := range dsts {
		dw := div.mod(uint32(d))
		m.Dst = d
		wk.outboxes[dw] = append(wk.outboxes[dw], m)
		if dw == self {
			local++
		}
	}
	n := int64(len(dsts))
	wk.msgs += n
	wk.netMsgs += n - local
	wk.netBytes += (n - local) * size
	wk.localBytes += local * size
	_ = src
}
