// Package pregel implements a GPS-like bulk-synchronous vertex-centric
// graph processing engine: the substrate the paper's compiler targets.
//
// The engine reproduces the programming model of Pregel as extended by
// GPS (Salihoglu & Widom): a master.compute() function that runs at the
// beginning of every superstep, a vertex.compute() function invoked for
// each active vertex, push-only messaging with delivery in the next
// superstep, a global-objects map for master→vertex broadcast, reduction
// aggregators for vertex→master communication, and voteToHalt().
//
// Vertices are partitioned across W workers — hash partitioning
// (id mod W) by default, or degree-aware contiguous ranges with
// Config.Partitioner — and executed by W persistent executor goroutines,
// spawned once per run and parked on a reusable barrier between phases.
// Within a superstep each worker's vertex-compute and routing work is
// split into fixed-size chunks pulled from shared queues; an executor
// that drains its own worker's chunks deterministically steals remaining
// chunks from the most-loaded worker (see docs/ENGINE.md, "Hot path and
// scheduling"). Results and Stats are independent of which executor runs
// a chunk: per-chunk output is merged at the barrier in canonical
// (worker, chunk) order, combiner folding is worker-scoped, and
// vertex-level RNG streams are seeded per (vertex, superstep).
//
// Messages between vertices on different workers are accounted as
// network I/O at their serialized wire size; master broadcast and
// aggregator traffic is accounted separately as control I/O. Runs are
// deterministic for a fixed configuration and seed: inboxes are grouped
// in source-worker order regardless of chunk size or stealing.
package pregel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/obs"
)

// MaxPayloadSlots is the number of 64-bit payload slots in a Msg.
// Four slots cover every message schema the compiler generates (the most
// complex, Betweenness Centrality's reverse sweep, needs two).
const MaxPayloadSlots = 4

// Msg is a message between vertices. Payload slots hold int64, float64
// (bit-cast), bool, or node IDs; the schema of each Type determines how
// many slots are live and what their wire size is.
type Msg struct {
	Dst  graph.NodeID
	Type uint8
	V    [MaxPayloadSlots]uint64
}

// SetInt stores an int64 in payload slot i.
//
//gm:noalloc
func (m *Msg) SetInt(i int, v int64) { m.V[i] = uint64(v) }

// Int reads payload slot i as an int64.
//
//gm:noalloc
func (m *Msg) Int(i int) int64 { return int64(m.V[i]) }

// SetFloat stores a float64 in payload slot i.
//
//gm:noalloc
func (m *Msg) SetFloat(i int, v float64) { m.V[i] = math.Float64bits(v) }

// Float reads payload slot i as a float64.
//
//gm:noalloc
func (m *Msg) Float(i int) float64 { return math.Float64frombits(m.V[i]) }

// SetBool stores a bool in payload slot i.
//
//gm:noalloc
func (m *Msg) SetBool(i int, v bool) {
	if v {
		m.V[i] = 1
	} else {
		m.V[i] = 0
	}
}

// Bool reads payload slot i as a bool.
//
//gm:noalloc
func (m *Msg) Bool(i int) bool { return m.V[i] != 0 }

// SetNode stores a node ID in payload slot i.
//
//gm:noalloc
func (m *Msg) SetNode(i int, v graph.NodeID) { m.V[i] = uint64(uint32(v)) }

// Node reads payload slot i as a node ID.
//
//gm:noalloc
func (m *Msg) Node(i int) graph.NodeID { return graph.NodeID(int32(uint32(m.V[i]))) }

// AggOp is an aggregator reduction operator.
type AggOp uint8

// Aggregator reduction operators. AggAny keeps an arbitrary (but
// deterministic: highest-indexed contributing chunk's last write)
// contributed value, mirroring the effect of parallel plain writes to a
// global.
const (
	AggSum AggOp = iota
	AggMin
	AggMax
	AggOr
	AggAnd
	AggAny
)

// AggKind is the value domain of an aggregator.
type AggKind uint8

// Aggregator value kinds; node IDs aggregate as AggKindInt.
const (
	AggKindInt AggKind = iota
	AggKindFloat
	AggKindBool
)

// AggSpec declares one aggregator slot.
type AggSpec struct {
	Name string
	Kind AggKind
	Op   AggOp
}

// GlobalSpec declares one master-broadcast global slot. Size is the wire
// size in bytes used for control-I/O accounting.
type GlobalSpec struct {
	Name string
	Size int
}

// Combiner merges a newly sent message into a pending one with the same
// destination and type before transmission (Pregel's message combiner).
// It must be commutative and associative over the payload.
type Combiner func(into *Msg, m Msg)

// Schema declares a job's communication shape.
type Schema struct {
	// MessagePayloadBytes gives the wire payload size of each message
	// type, indexed by Msg.Type. A nil/empty slice means the job sends no
	// messages.
	MessagePayloadBytes []int
	Aggregators         []AggSpec
	Globals             []GlobalSpec
	// Combiners optionally provides a combiner per message type (nil
	// entries disable combining for that type). Combined messages are
	// merged sender-side, reducing both message count and network bytes;
	// MessagesSent reports post-combine counts. Combining is worker-scoped
	// regardless of chunking: chunks log raw emissions and a fold pass
	// replays them in emission order, so combined results are bit-identical
	// across chunk sizes and stealing.
	Combiners []Combiner
}

// Job is a Pregel program: the pair of compute functions plus the
// communication schema. MasterCompute runs once at the beginning of every
// superstep (GPS's master.compute); VertexCompute runs for every vertex
// that is active or has incoming messages.
type Job interface {
	MasterCompute(mc *MasterContext)
	VertexCompute(vc *VertexContext)
	Schema() Schema
}

// RoutingMode selects when outbox messages are counted into the
// destination-sharded staging that routing's placement consumes.
type RoutingMode uint8

const (
	// RouteEager (the default) counts each source shard's outboxes as
	// soon as the shard's last chunk retires, overlapping routing work
	// with the remainder of the vertex phase. The placement that follows
	// the barrier then needs only the prefix and place passes.
	RouteEager RoutingMode = iota
	// RouteBarrier defers all counting to a dedicated pool phase after
	// the barrier, reproducing the pre-pipelined schedule. Both modes
	// build bit-identical inboxes and Stats: the staging layout and the
	// canonical (source worker, chunk, emission) order are shared.
	RouteBarrier
)

// Config controls an engine run.
type Config struct {
	// NumWorkers is the number of simulated workers; 0 means GOMAXPROCS.
	NumWorkers int
	// MaxSupersteps aborts runaway jobs; 0 means 1 << 20.
	MaxSupersteps int
	// Seed seeds all randomness (the master RNG and the per-vertex
	// streams behind VertexContext.Rand).
	Seed int64
	// TraceSteps records per-superstep statistics in Stats.Steps.
	TraceSteps bool
	// ChunkSize is the number of vertices per scheduling chunk. 0 picks a
	// default that gives each worker about 16 chunks (at least 64 vertices
	// per chunk). Results and Stats are chunk-size independent except for
	// the reduction order of floating-point AggSum aggregators, which is
	// deterministic per configuration but not bit-portable across chunk
	// geometries.
	ChunkSize int
	// NoSteal pins every chunk to its owning worker's executor,
	// reproducing the one-static-slab-per-worker schedule of earlier
	// releases. Results are identical either way; only wall time changes.
	NoSteal bool
	// Routing selects eager (overlapped with compute) or barrier-time
	// outbox counting. Results and Stats are bit-identical across modes;
	// only wall time changes.
	Routing RoutingMode
	// Partitioner selects vertex placement (default PartitionMod).
	Partitioner PartitionKind
	// CheckpointEvery takes a recovery checkpoint at the barrier entering
	// supersteps 0, k, 2k, …. 0 disables periodic checkpointing; when a
	// fault plan is configured, a single superstep-0 checkpoint is still
	// taken so rollback is always possible.
	CheckpointEvery int
	// Faults deterministically injects worker failures; each failure is
	// converted into rollback to the last checkpoint and replay.
	Faults FaultPlan
	// MaxRecoveries bounds rollback-replay attempts, after which the run
	// fails cleanly with partial Stats; 0 means 8.
	MaxRecoveries int
	// Deadline is a wall-clock budget for the whole run, checked at every
	// superstep barrier (a superstep in progress is not interrupted);
	// 0 means no deadline.
	Deadline time.Duration
	// Observer, when non-nil, receives a structured trace of the run: one
	// span per engine phase (master, per-worker vertex compute, per-chunk
	// execution with executor/steal attribution, barrier, routing,
	// checkpoint, recovery) plus a final run-scoped span carrying the
	// authoritative totals. Spans are emitted from the barrier goroutine,
	// never concurrently. When nil the engine takes no timestamps and the
	// hot path is identical to an unobserved run.
	Observer obs.Observer
	// MemoryBudget caps the engine's accounted message/inbox/checkpoint
	// memory (see docs/ROBUSTNESS.md). When the budget is exceeded the
	// governor degrades in stages — release routed outbox retention,
	// spill inboxes to a temp-file segment store — and aborts with
	// ErrBudgetExceeded (carrying partial Stats) only when even a fully
	// spilled engine does not fit. 0 disables the governor. Accounting is
	// a pure function of configuration and seed, so governed runs remain
	// deterministic.
	MemoryBudget int64
	// Watchdog enables the superstep watchdog: a per-superstep deadline
	// derived from a trailing EWMA of superstep wall time; a superstep
	// exceeding it is diagnosed (per-worker phase, chunk cursor, inbox
	// depth) and converted into supervised rollback-and-replay with
	// capped exponential backoff, bounded by MaxRecoveries.
	Watchdog bool
	// StepDeadline overrides the watchdog's EWMA-derived deadline with a
	// fixed per-superstep budget; setting it implies Watchdog.
	StepDeadline time.Duration
	// BackoffBase and BackoffCap shape the watchdog's supervised-recovery
	// backoff: attempt n waits ~min(BackoffBase<<n, BackoffCap) with
	// deterministic seed-derived jitter. Zero values default to
	// 1ms / 250ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Stalls deterministically injects worker stalls (chaos testing):
	// the target worker's first chunk of the given superstep sleeps for
	// the configured duration. Each stall fires at most once.
	Stalls []Stall
	// Direction selects push, pull, or per-superstep direction-optimized
	// execution (see the Direction type). Non-push directions require the
	// job to implement GatherSender; otherwise the engine silently runs
	// pure push. Results and Stats are bit-identical across directions by
	// construction.
	Direction Direction
	// PullDensity tunes DirAuto: pull when the active frontier's out-edge
	// mass is at least this fraction of all edges. 0 means the default
	// (1/16).
	PullDensity float64
	// DirTrace, when non-nil, receives the per-superstep direction trace
	// after the run. It lives outside Stats deliberately: Stats stay
	// bit-identical between forced-push and forced-pull runs, while the
	// trace differs by design.
	DirTrace *DirectionTrace
}

func (c Config) withDefaults() Config {
	if c.NumWorkers <= 0 {
		c.NumWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 1 << 20
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 8
	}
	return c
}

// StepStats records one superstep's traffic. Every field is a
// deterministic counter — no wall times — so a crash-and-recover run
// reproduces the fault-free Steps slice bit for bit (timing lives in the
// Observer trace, which keeps rolled-back work visible instead).
type StepStats struct {
	Messages     int64
	NetworkBytes int64
	VertexCalls  int64
	NetworkMsgs  int64
	LocalBytes   int64
	ControlBytes int64
}

// PhaseLabeler is optionally implemented by jobs that know which logical
// state a superstep executes (the machine executor reports the compiled
// state-machine state picked by master.compute). The engine queries it
// after the master phase and attaches the label to that superstep's
// master, vertex-compute, and chunk spans.
type PhaseLabeler interface {
	PhaseLabel() string
}

// Stats summarizes a run. NetworkBytes counts serialized bytes of
// messages whose endpoints live on different workers (4-byte destination
// id, a 1-byte type tag when the job declares more than one message type,
// then the schema payload). ControlBytes counts global broadcast and
// aggregator traffic.
type Stats struct {
	Supersteps    int
	MessagesSent  int64
	NetworkMsgs   int64
	NetworkBytes  int64
	LocalBytes    int64
	ControlBytes  int64
	VertexCalls   int64
	ReturnedInt   int64
	ReturnedFloat float64
	ReturnedIsSet bool
	ReturnedIsInt bool
	Steps         []StepStats

	// Fault-tolerance accounting. Checkpoints and CheckpointBytes count
	// every checkpoint taken (engine state + job snapshot, serialized);
	// Recoveries counts rollbacks and RecoveredSupersteps the supersteps
	// re-executed because of them. These four are monotone: a rollback
	// rewinds every other counter to its checkpointed value but never
	// these. A fault-injected run therefore finishes with the same
	// Supersteps/Messages/Bytes/Returned* as an unfailed run, plus a
	// nonzero recovery bill.
	Checkpoints         int
	CheckpointBytes     int64
	Recoveries          int
	RecoveredSupersteps int

	// Governor and watchdog accounting, monotone like the four counters
	// above (never rewound by rollback). All four stay zero unless
	// MemoryBudget or the watchdog is enabled, so they never perturb
	// bit-identical Stats comparisons of ungoverned runs.
	// MemoryPeakBytes is the high-water accounted usage observed at
	// govern points, before any degradation.
	Spills          int
	SpillBytes      int64
	MemoryPeakBytes int64
	WatchdogStalls  int
}

type aggCell struct {
	set bool
	i   int64
	f   float64
}

//gm:noalloc
func (c *aggCell) merge(spec AggSpec, o aggCell) {
	if !o.set {
		return
	}
	if !c.set {
		*c = o
		return
	}
	switch spec.Op {
	case AggSum:
		c.i += o.i
		c.f += o.f
	case AggMin:
		if o.i < c.i {
			c.i = o.i
		}
		if o.f < c.f {
			c.f = o.f
		}
	case AggMax:
		if o.i > c.i {
			c.i = o.i
		}
		if o.f > c.f {
			c.f = o.f
		}
	case AggOr:
		if o.i != 0 {
			c.i = 1
		}
	case AggAnd:
		if o.i == 0 {
			c.i = 0
		}
	case AggAny:
		*c = o
	}
}

// fastDiv divides nonnegative 32-bit integers by a fixed divisor with a
// Lemire-style multiply-high, replacing the hardware DIV/MOD that would
// otherwise run once or twice per message in the hot paths (under mod
// partitioning, send picks the owning worker with id mod W and routing
// recovers the local index with id / W).
type fastDiv struct {
	m uint64 // ceil(2^64 / d); 0 means d == 1 (identity divide)
	d uint32
}

func newFastDiv(d uint32) fastDiv {
	if d <= 1 {
		return fastDiv{d: 1}
	}
	return fastDiv{m: ^uint64(0)/uint64(d) + 1, d: d}
}

// div returns x / d.
//
//gm:noalloc
func (f fastDiv) div(x uint32) uint32 {
	if f.m == 0 {
		return x
	}
	hi, _ := bits.Mul64(f.m, uint64(x))
	return uint32(hi)
}

// mod returns x % d.
//
//gm:noalloc
func (f fastDiv) mod(x uint32) uint32 { return x - f.div(x)*f.d }

// phaseKind selects the work the parked executor pool runs on wake-up.
type phaseKind uint8

const (
	phaseVertex      phaseKind = iota // chunked vertex compute (incl. fold + eager routing hooks)
	phaseRouteCount                   // routing: per-(dest, source-shard) counts (barrier mode)
	phaseRoutePrefix                  // routing: offsets, inbox resize, reactivation
	phaseRoutePlace                   // routing: stable placement into the CSR inbox
	phasePull                         // pull direction: per-worker inbox gather over the reverse CSR
)

// poolCmd is one barrier release: the phase to run and its superstep.
type poolCmd struct {
	kind phaseKind
	step int
}

// defaultChunksPerWorker and minChunkSize shape the automatic chunk
// size: about 16 chunks per worker, but never chunks smaller than 64
// vertices (below that, claim overhead dominates).
const (
	defaultChunksPerWorker = 16
	minChunkSize           = 64
)

func chunkSizeFor(cfgChunk, nw int) int {
	if cfgChunk > 0 {
		return cfgChunk
	}
	c := (nw + defaultChunksPerWorker - 1) / defaultChunksPerWorker
	if c < minChunkSize {
		c = minChunkSize
	}
	return c
}

// maxRouteShards bounds the source-shard fan-out of the routing staging
// (and the retained per-shard counting-sort scratch): source workers are
// grouped into at most this many contiguous shards, each with its own
// count row per destination, so shard counters never write the same
// cache lines.
const maxRouteShards = 8

// eagerSpan records one source shard's eager count timing for the
// PhaseRouteEager trace span emitted at the barrier.
type eagerSpan struct {
	startNS, durNS int64
	executor       int32
}

// engine holds one run's state.
type engine struct {
	g      *graph.Directed
	job    Job
	cfg    Config
	schema Schema

	numWorkers int
	msgTag     int // 1 if >1 message type, else 0
	div        fastDiv
	baseSize   int64   // wire bytes independent of payload: 4-byte dst + optional tag
	msgSize    []int64 // full wire size per declared message type

	// Partitioning. pblocks/pshift are set under PartitionDegree; a nil
	// pblocks means mod partitioning.
	pblocks []int32
	pshift  uint32

	noSteal    bool
	combActive bool // the job registers at least one combiner
	eager      bool // RouteEager: count outboxes as source shards retire

	// Direction optimization. pullOn is set when the config asks for a
	// pull-capable direction AND the job implements GatherSender; gplans
	// are the per-worker pull schedules prebuilt at construction;
	// dirHistory records the direction byte of every superstep decided so
	// far (monotone — rollback never truncates it, so replayed supersteps
	// reuse their recorded direction); pullStep is the current superstep's
	// choice.
	pullOn     bool
	pullStep   bool
	gatherJob  GatherSender
	gplans     []gatherPlan
	dirHistory []uint8

	// Source-shard geometry for routing: workers are grouped into shards
	// contiguous shard ranges (shardStart[s]..shardStart[s+1]).
	// shardPending counts each shard's workers still computing (eager
	// mode); eagerCounted marks that the vertex phase already produced
	// this superstep's counts. shardObs records eager count timings for
	// PhaseRouteEager spans.
	shards       int
	shardStart   []int32
	workerShard  []int32
	shardPending []atomic.Int32
	eagerCounted bool
	shardObs     []eagerSpan

	workers   []*worker
	executors []*executor
	// phaseWG is the reusable barrier the master waits on after releasing
	// the persistent executors into a phase.
	phaseWG sync.WaitGroup
	// taskCursor is the shared queue cursor for phases whose tasks are not
	// chunk claims (fold, routing sub-phases); reset before each dispatch.
	taskCursor atomic.Int64
	stopped    bool

	globals     []uint64
	globalBytes int64 // accumulated control bytes from SetGlobal*

	aggValues []aggCell // merged values visible to master

	masterSrc  *countingSource
	masterRand *rand.Rand
	mc         MasterContext // reused across supersteps (no per-step alloc)
	halted     bool
	retSet     bool
	retIsInt   bool
	retInt     int64
	retFloat   float64

	// Fault tolerance. ckptPrev retains the previous snapshot as the
	// fallback target when the current one fails its integrity check.
	ckptOn   bool
	ckpt     *checkpoint
	ckptPrev *checkpoint
	faults   []faultState
	stalls   []stallState

	// Resource governance and supervision. mark is the last
	// completed-barrier snapshot of the semantic counters; an aborting
	// run reports it instead of a partially merged barrier state.
	gov     *governor
	wd      *watchdog
	wdEpoch time.Time
	mark    commitMark

	// Observability. obsOn caches cfg.Observer != nil so the hot path
	// tests a bool, not an interface; runStart anchors span timestamps.
	obsOn    bool
	runStart time.Time

	stats Stats
}

// nowNS returns nanoseconds since the run started (span timebase).
//
//gm:nondeterministic-ok observability timebase only: spans and skew reports, never Stats or vertex state
//gm:noalloc
func (e *engine) nowNS() int64 { return time.Since(e.runStart).Nanoseconds() }

// emit forwards a span to the configured observer. Only called when
// obsOn; all call sites run on the barrier goroutine, so observers never
// see concurrent calls.
func (e *engine) emit(s obs.Span) { e.cfg.Observer.ObserveSpan(s) }

// chunk is one fixed-size slice of a worker's vertices: the unit of
// vertex-phase scheduling. All mutable state a chunk's execution touches
// lives either here or in per-vertex job state, so any executor can run
// the chunk; the barrier merges chunk state in canonical (worker, chunk)
// order, which makes results independent of the execution schedule.
// Every slice is retained across supersteps.
type chunk struct {
	lo, hi int32 // local-index range [lo, hi)

	// boxes are the per-destination-worker outboxes (plain jobs); raw is
	// the emission log (combiner jobs, multi-chunk workers) replayed by
	// the fold phase.
	boxes [][]Msg
	raw   []Msg
	agg   []aggCell
	// numActive counts active vertices in [lo, hi), maintained
	// incrementally by chunk execution, VoteToHalt, and routing
	// reactivation.
	numActive int32
	// frontEdges is the out-edge mass of the active vertices in [lo, hi):
	// the frontier-density numerator DirAuto reads. Maintained O(1) per
	// activation event at the same three sites as numActive.
	frontEdges int64

	// per-step counters, merged into the owning worker (and cleared) by
	// the worker epilogue when the worker's last chunk retires
	msgs, netMsgs, netBytes, localBytes, calls int64

	// span attribution for the last vertex phase. spanMsgs/spanBytes/
	// spanCalls snapshot the counters at merge time so chunk spans stay
	// attributable after the epilogue cleared them.
	startNS, durNS                 int64
	executor                       int32
	spanMsgs, spanBytes, spanCalls int64

	err error
}

// worker owns a partition of the vertices: ids with id mod W == index
// under PartitionMod (local index = id / W), or the contiguous range
// [startID, startID+len(ids)) under PartitionDegree (local = id -
// startID). Vertex-phase execution is chunked; the worker's cursor is
// the shared claim queue its own executor drains first and idle
// executors steal from. Every slice and map below is retained across
// supersteps — the steady-state superstep allocates nothing.
type worker struct {
	e       *engine
	index   int
	ids     []graph.NodeID // global IDs owned, ascending
	startID graph.NodeID   // first owned id (range partitioning)
	single  bool           // exactly one chunk: combiner sends skip the raw log

	active []bool
	// numActive mirrors the sum of chunk numActive counters; refreshed at
	// the termination check and by checkpoint decode.
	numActive int
	inFlat    []Msg
	inOff     []int32 // CSR offsets into inFlat, len = len(ids)+1
	inTotal   int     // messages routed into inFlat by the last routing phase

	// Direction-optimization state (pull-capable runs only). pull mirrors
	// engine.pullStep for the hot send path (Send/SendToAllNbrs suppress
	// pushes during pull supersteps — the gather re-derives them); ran[li]
	// records whether vertex li's VertexCompute ran this superstep, read
	// cross-worker by the gather after the vertex-phase barrier.
	pull bool
	ran  []bool

	chunks []chunk
	// cursor is the next unclaimed chunk index (vertex phase).
	cursor atomic.Int32
	// pendingChunks counts this worker's chunks not yet retired this
	// vertex phase; the executor that retires the last one runs the
	// worker epilogue (fold, counter/aggregator merge, and in eager mode
	// the shard-retirement bookkeeping).
	pendingChunks atomic.Int32
	// crashed marks an injected fault: the worker's remaining chunks are
	// skipped, emulating the machine death rollback will repair.
	crashed atomic.Bool

	// Combiner-path state: chunks log raw emissions and the fold phase
	// replays them here in emission order (single-chunk workers write
	// directly). combineIdx maps (dst, type) to the pending outbox slot;
	// cleared (not reallocated) each superstep.
	outboxes   [][]Msg // per destination worker; combiner jobs only
	combineIdx map[uint64]combineSlot

	// Hot-path caches copied from the engine at construction so send
	// touches one cache line instead of chasing e.schema.
	div       fastDiv
	pblocks   []int32 // non-nil under PartitionDegree
	pshift    uint32
	combiners []Combiner // nil when the job registers none
	msgSize   []int64
	baseSize  int64

	// Per-superstep counter accumulators. The combiner fold/direct path
	// feeds them during compute; the worker epilogue folds the chunk
	// counters in on top (in chunk order); the barrier then merges one
	// partial per worker — O(W) instead of O(total chunks).
	msgs, netMsgs, netBytes, localBytes, calls int64
	foldStartNS, foldDurNS                     int64
	// aggPartial is this worker's aggregator partial: chunk cells folded
	// in chunk order by the epilogue, merged (and cleared) in worker
	// order at the barrier.
	aggPartial []aggCell

	// Routing staging, retained across supersteps. srcCounts[s] is the
	// counting-sort row for source shard s: per destination vertex, the
	// messages shard s sends here. srcMsgs[s] is that shard's total — a
	// zero total means the row was skipped (left stale) by the count
	// pass and must be skipped by prefix/place too. Each row is written
	// by exactly one shard's counter, so counters never contend.
	srcCounts [][]int32
	srcMsgs   []int32

	// faultAt is the local vertex index at which an armed injected fault
	// fires this superstep; -1 when no fault is armed.
	faultAt int

	// Extended fault-injection arming (see fault.go). chunkFaultAt is the
	// chunk index at which an armed chunk-exec fault fires (-1 when
	// unarmed); stealFault crashes the worker when one of its chunks runs
	// on a foreign executor; foldFault crashes it mid-fold; routeFaultOn/
	// routeFault fail it inside the armed routing sub-phase. faultStep
	// records the arming superstep for phases that raise the failure from
	// executor goroutines; phaseErr carries it to the barrier.
	chunkFaultAt int
	stealFault   atomic.Bool
	foldFault    bool
	routeFaultOn bool
	routeFault   FaultPhase
	faultStep    int
	phaseErr     error

	// stallNS is an armed injected stall: whoever executes chunk 0 of
	// this worker sleeps that long first. Written by the barrier
	// goroutine before dispatch, cleared when the phase is collected.
	stallNS int64

	// Governor spill state: when spilled, inFlat is empty and the routed
	// inbox lives in the spill store segment at spillOff (inOff is
	// retained, so chunk windows remain addressable).
	spilled  bool
	spillOff int64

	// inDepth publishes the inbox depth routed into this worker, for the
	// watchdog's cross-goroutine stall diagnosis.
	inDepth atomic.Int64
}

// ownerOf returns the worker index owning vertex v.
//
//gm:noalloc
func (wk *worker) ownerOf(v graph.NodeID) int {
	if wk.pblocks == nil {
		return int(wk.div.mod(uint32(v)))
	}
	return int(wk.pblocks[uint32(v)>>wk.pshift])
}

// localOf returns the local index of v on its owning worker.
//
//gm:noalloc
func (wk *worker) localOf(v graph.NodeID) int {
	if wk.pblocks == nil {
		return int(wk.div.div(uint32(v)))
	}
	return int(v - wk.startID)
}

// executor is one persistent pool goroutine. Executors are 1:1 with
// workers (executor i drains worker i's chunks first) but under work
// stealing may execute any worker's chunks; state that must be
// per-goroutine rather than per-partition — the reused VertexContext,
// the vertex RNG — lives here.
type executor struct {
	e    *engine
	id   int
	cmds chan poolCmd
	vc   VertexContext
	// gc is the reused gather context for pull supersteps; gslot is the
	// per-message-type combiner slot scratch the gather resets per
	// (destination, source-worker) group (nil unless the run is
	// pull-capable and the job registers combiners).
	gc    GatherContext
	gslot []int32

	// Per-vertex RNG: a splitmix64 source lazily reseeded on the first
	// Rand() call of each (vertex, superstep), making the stream
	// independent of chunk geometry, stealing, and worker count.
	rngSrc   vertexSource
	rng      *rand.Rand
	rngID    graph.NodeID
	rngStep  int
	seedBase uint64

	// curPhase publishes the phaseKind this executor is running (-1 when
	// parked), for the watchdog's stall diagnosis.
	curPhase atomic.Int32

	// Retained scratch for reading spilled inbox windows.
	spillMsgs []Msg
	spillRaw  []byte

	err error
}

// vertexSource is a splitmix64 math/rand Source. It deliberately does
// not implement Source64: rand.Rand then derives every method from
// Int63, so reseeding fully determines the stream.
type vertexSource struct{ state uint64 }

//gm:noalloc
func (s *vertexSource) Int63() int64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}

//gm:noalloc
func (s *vertexSource) Seed(seed int64) { s.state = uint64(seed) }

//gm:noalloc
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

//gm:noalloc
func (e *engine) workerOf(v graph.NodeID) int {
	if e.pblocks == nil {
		return int(e.div.mod(uint32(v)))
	}
	return int(e.pblocks[uint32(v)>>e.pshift])
}

// Run executes the job on g to completion and returns run statistics.
// It returns an error if the job exceeds MaxSupersteps, a compute
// function panics, the deadline expires, or the recovery budget is
// exhausted. Even on error, Stats.Returned* reflect whatever the master
// recorded before the abort, so callers see partial results
// consistently.
func Run(g *graph.Directed, job Job, cfg Config) (Stats, error) {
	return RunContext(context.Background(), g, job, cfg)
}

// RunContext is Run with cooperative cancellation: ctx (and
// Config.Deadline, when set) is checked at every superstep barrier; a
// superstep in progress is never interrupted mid-phase.
func RunContext(ctx context.Context, g *graph.Directed, job Job, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	e := newEngine(g, job, cfg)
	defer e.stop()
	err := e.loop(ctx)
	if cfg.DirTrace != nil {
		*cfg.DirTrace = *e.directionTrace()
	}
	// Partial results: report the master's recorded return value even
	// when the run aborted.
	e.stats.ReturnedIsSet = e.retSet
	e.stats.ReturnedIsInt = e.retIsInt
	e.stats.ReturnedInt = e.retInt
	e.stats.ReturnedFloat = e.retFloat
	if e.obsOn {
		// Run-scoped span with the authoritative totals; emitted even on
		// abort so observers can close out partial runs.
		e.emit(obs.Span{
			Superstep:   e.stats.Supersteps,
			Worker:      -1,
			Phase:       obs.PhaseRun,
			DurNS:       e.nowNS(),
			Messages:    e.stats.MessagesSent,
			Bytes:       e.stats.NetworkBytes,
			VertexCalls: e.stats.VertexCalls,
		})
	}
	return e.stats, err
}

func newEngine(g *graph.Directed, job Job, cfg Config) *engine {
	e := &engine{g: g, job: job, cfg: cfg, schema: job.Schema()}
	e.numWorkers = cfg.NumWorkers
	if n := g.NumNodes(); e.numWorkers > n && n > 0 {
		e.numWorkers = n
	}
	if len(e.schema.MessagePayloadBytes) > 1 {
		e.msgTag = 1
	}
	e.div = newFastDiv(uint32(e.numWorkers))
	e.baseSize = int64(4 + e.msgTag)
	e.msgSize = make([]int64, len(e.schema.MessagePayloadBytes))
	for t, p := range e.schema.MessagePayloadBytes {
		e.msgSize[t] = e.baseSize + int64(p)
	}
	e.mc = MasterContext{e: e}
	var combiners []Combiner
	for _, c := range e.schema.Combiners {
		if c != nil {
			combiners = e.schema.Combiners
			break
		}
	}
	e.combActive = combiners != nil
	e.noSteal = cfg.NoSteal
	e.eager = cfg.Routing == RouteEager
	e.shards = e.numWorkers
	if e.shards > maxRouteShards {
		e.shards = maxRouteShards
	}
	if e.shards < 1 {
		e.shards = 1
	}
	e.shardStart = shardBounds(e.numWorkers, e.shards)
	e.workerShard = make([]int32, e.numWorkers)
	for s := 0; s < e.shards; s++ {
		for w := e.shardStart[s]; w < e.shardStart[s+1]; w++ {
			e.workerShard[w] = int32(s)
		}
	}
	e.shardPending = make([]atomic.Int32, e.shards)
	e.shardObs = make([]eagerSpan, e.shards)
	e.globals = make([]uint64, len(e.schema.Globals))
	e.aggValues = make([]aggCell, len(e.schema.Aggregators))
	e.masterSrc = newCountingSource(cfg.Seed)
	e.masterRand = rand.New(e.masterSrc) //gm:nondeterministic-ok wraps the seeded, draw-counted master source; replayable from checkpoints
	// Watchdog trips and injected stalls are repaired by rollback, so
	// either forces at least the superstep-0 checkpoint.
	e.ckptOn = cfg.CheckpointEvery > 0 || len(cfg.Faults) > 0 ||
		cfg.Watchdog || cfg.StepDeadline > 0 || len(cfg.Stalls) > 0
	e.obsOn = cfg.Observer != nil
	if e.obsOn {
		e.runStart = time.Now() //gm:nondeterministic-ok span timebase for observability output only; never feeds Stats
	}
	e.faults = make([]faultState, len(cfg.Faults))
	for i, f := range cfg.Faults {
		e.faults[i] = faultState{Fault: f}
	}
	e.stalls = make([]stallState, len(cfg.Stalls))
	for i, s := range cfg.Stalls {
		e.stalls[i] = stallState{Stall: s}
	}
	if cfg.MemoryBudget > 0 {
		e.gov = &governor{budget: cfg.MemoryBudget}
	}
	if cfg.Watchdog || cfg.StepDeadline > 0 {
		e.wdEpoch = time.Now() //gm:nondeterministic-ok watchdog timebase: feeds deadlines and diagnosis text only, never Stats semantics
		e.wd = newWatchdog(e, cfg.StepDeadline)
	}

	// Partitioning: compute each worker's owned IDs.
	n := g.NumNodes()
	var rangeStarts []int32
	if cfg.Partitioner == PartitionDegree {
		rangeStarts, e.pblocks, e.pshift = degreeRanges(g, e.numWorkers)
	}
	e.workers = make([]*worker, e.numWorkers)
	for w := 0; w < e.numWorkers; w++ {
		wk := &worker{e: e, index: w, faultAt: -1, chunkFaultAt: -1}
		if rangeStarts != nil {
			lo, hi := rangeStarts[w], rangeStarts[w+1]
			wk.startID = graph.NodeID(lo)
			if hi > lo {
				wk.ids = make([]graph.NodeID, 0, hi-lo)
				for v := lo; v < hi; v++ {
					wk.ids = append(wk.ids, graph.NodeID(v))
				}
			}
		} else {
			if n > w {
				wk.ids = make([]graph.NodeID, 0, (n-w+e.numWorkers-1)/e.numWorkers)
			}
			for v := graph.NodeID(w); int(v) < n; v += graph.NodeID(e.numWorkers) {
				wk.ids = append(wk.ids, v)
			}
		}
		wk.active = make([]bool, len(wk.ids))
		for i := range wk.active {
			wk.active[i] = true
		}
		wk.numActive = len(wk.ids)
		wk.inOff = make([]int32, len(wk.ids)+1)
		if combiners != nil {
			wk.outboxes = make([][]Msg, e.numWorkers)
			wk.combineIdx = make(map[uint64]combineSlot)
		}
		wk.div = e.div
		wk.pblocks = e.pblocks
		wk.pshift = e.pshift
		wk.combiners = combiners
		wk.msgSize = e.msgSize
		wk.baseSize = e.baseSize

		// Chunk geometry: fixed for the run, derived only from the
		// partition size and ChunkSize, never from execution.
		nw := len(wk.ids)
		cs := chunkSizeFor(cfg.ChunkSize, nw)
		numChunks := 0
		if nw > 0 {
			numChunks = (nw + cs - 1) / cs
		}
		wk.chunks = make([]chunk, numChunks)
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			ck.lo = int32(ci * cs)
			ck.hi = int32((ci + 1) * cs)
			if ck.hi > int32(nw) {
				ck.hi = int32(nw)
			}
			ck.numActive = ck.hi - ck.lo
			for li := ck.lo; li < ck.hi; li++ {
				ck.frontEdges += int64(g.OutDegree(wk.ids[li]))
			}
			ck.agg = make([]aggCell, len(e.schema.Aggregators))
			if combiners == nil {
				ck.boxes = make([][]Msg, e.numWorkers)
			}
		}
		wk.single = numChunks == 1
		wk.aggPartial = make([]aggCell, len(e.schema.Aggregators))

		wk.srcCounts = make([][]int32, e.shards)
		for s := range wk.srcCounts {
			wk.srcCounts[s] = make([]int32, nw)
		}
		wk.srcMsgs = make([]int32, e.shards)
		e.workers[w] = wk
	}

	// Direction optimization arms only when the job can gather; the
	// reverse CSR and per-worker gather plans are prebuilt here so pull
	// supersteps never allocate or sort.
	if cfg.Direction != DirPush {
		if gs, ok := job.(GatherSender); ok {
			e.pullOn = true
			e.gatherJob = gs
			e.buildGatherPlans()
		}
	}

	// The persistent pool: one executor goroutine per worker for the
	// whole run, parked on its command channel between phases.
	// engine.stop (deferred by RunContext) shuts them down on every exit
	// path.
	e.executors = make([]*executor, e.numWorkers)
	for i := 0; i < e.numWorkers; i++ {
		x := &executor{e: e, id: i, rngStep: -1, seedBase: mix64(uint64(cfg.Seed) ^ 0x5bf03635aca1fd6b)}
		x.rng = rand.New(&x.rngSrc) //gm:nondeterministic-ok wraps the per-vertex reseeded source (seedBase ^ step ^ id); schedule-independent by construction
		x.vc = VertexContext{ex: x}
		x.gc = GatherContext{e: e, ex: x}
		if e.pullOn && e.combActive {
			x.gslot = make([]int32, len(e.msgSize))
		}
		x.cmds = make(chan poolCmd, 1)
		x.curPhase.Store(-1)
		e.executors[i] = x
	}
	for _, x := range e.executors {
		go x.poolRun()
	}
	if e.wd != nil {
		go e.wd.run()
	}
	return e
}

// stop shuts the persistent executor pool down. Idempotent; called on
// every run-exit path (normal, error, panic-converted, recovery-budget
// exhaustion) and only ever between phases, so no executor is
// mid-command.
func (e *engine) stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	if e.wd != nil {
		close(e.wd.stopc)
		<-e.wd.exited
	}
	if e.gov != nil {
		e.gov.spill.close()
	}
	for _, x := range e.executors {
		close(x.cmds)
	}
}

// runPhase releases every parked executor into one phase and waits for
// all of them at the reusable barrier.
func (e *engine) runPhase(kind phaseKind, step int) {
	e.taskCursor.Store(0)
	e.phaseWG.Add(len(e.executors))
	for _, x := range e.executors {
		x.cmds <- poolCmd{kind: kind, step: step}
	}
	e.phaseWG.Wait()
}

// runVertexPhase runs one chunked vertex-compute phase: the superstep's
// compute work, plus — riding the same dispatch — the combiner fold,
// the per-worker counter/aggregator merge, and (in eager mode) the
// source-shard outbox counting, each triggered as the relevant chunks
// retire instead of waiting behind extra pool barriers.
func (e *engine) runVertexPhase(step int) {
	for s := range e.shardPending {
		e.shardPending[s].Store(e.shardStart[s+1] - e.shardStart[s])
	}
	for _, wk := range e.workers {
		wk.cursor.Store(0)
		wk.pendingChunks.Store(int32(len(wk.chunks)))
	}
	// A chunkless worker (possible under degree partitioning when one
	// oversized block absorbs several shares) never retires a chunk, so
	// its epilogue runs here, before dispatch, on the barrier goroutine.
	for _, wk := range e.workers {
		if len(wk.chunks) == 0 {
			e.workerEpilogue(wk, -1)
		}
	}
	e.runPhase(phaseVertex, step)
	if e.eager {
		e.eagerCounted = true
	}
}

// poolRun is an executor's persistent goroutine: park, run the commanded
// phase, signal the barrier, repeat until the channel closes.
func (x *executor) poolRun() {
	for cmd := range x.cmds {
		x.runCmd(cmd)
		x.e.phaseWG.Done()
	}
}

// runCmd executes one phase command, converting any panic into an
// executor error so the barrier is always reached (a lost Done would
// deadlock the master). Vertex-chunk panics are caught closer to the
// work, in runChunk, so one chunk's panic does not abandon the phase.
func (x *executor) runCmd(cmd poolCmd) {
	x.curPhase.Store(int32(cmd.kind))
	defer func() {
		x.curPhase.Store(-1)
		if r := recover(); r != nil && x.err == nil {
			x.err = fmt.Errorf("pregel: executor %d panicked in %v phase: %v", x.id, cmd.kind, r)
		}
	}()
	switch cmd.kind {
	case phaseVertex:
		x.vertexPhase(cmd.step)
	case phaseRouteCount:
		x.routePhase(phaseRouteCount)
	case phaseRoutePrefix:
		x.prefixPhase()
	case phaseRoutePlace:
		x.routePhase(phaseRoutePlace)
	case phasePull:
		x.gatherPhase(cmd.step)
	}
}

func (k phaseKind) String() string {
	switch k {
	case phaseVertex:
		return "vertex"
	case phaseRouteCount:
		return "route-count"
	case phaseRoutePrefix:
		return "route-prefix"
	case phaseRoutePlace:
		return "route-place"
	case phasePull:
		return "pull"
	}
	return "unknown"
}

// vertexPhase drains the executor's own worker's chunk queue, then (with
// stealing enabled) repeatedly claims a chunk from the worker with the
// most unclaimed chunks (ties broken by lowest worker index). Which
// executor runs a chunk never affects results — only the chunk's span
// attribution.
//
//gm:noalloc
func (x *executor) vertexPhase(step int) {
	e := x.e
	own := e.workers[x.id]
	for {
		ci := int(own.cursor.Add(1)) - 1
		if ci >= len(own.chunks) {
			break
		}
		x.runChunk(own, ci, step)
		x.retireChunk(own)
	}
	if e.noSteal {
		return
	}
	for {
		victim := -1
		var most int32
		for i, wk := range e.workers {
			if i == x.id {
				continue
			}
			if rem := int32(len(wk.chunks)) - wk.cursor.Load(); rem > most {
				most, victim = rem, i
			}
		}
		if victim < 0 {
			return
		}
		wk := e.workers[victim]
		ci := int(wk.cursor.Add(1)) - 1
		if ci >= len(wk.chunks) {
			continue // lost the claim race; rescan
		}
		x.runChunk(wk, ci, step)
		x.retireChunk(wk)
	}
}

// retireChunk marks one of wk's chunks done. The atomic decrement chain
// makes every earlier chunk's writes visible to whichever executor
// performs the final decrement; that executor runs the worker epilogue.
//
//gm:noalloc
func (x *executor) retireChunk(wk *worker) {
	if wk.pendingChunks.Add(-1) == 0 {
		x.e.workerEpilogue(wk, x.id)
	}
}

// runChunk executes one vertex-compute chunk. A panic in job code is
// recorded on the chunk (and surfaced in canonical order at the
// barrier); an injected fault marks the whole worker crashed so its
// remaining chunks are skipped, as they would be on a dead machine.
//
//gm:noalloc
func (x *executor) runChunk(wk *worker, ci, step int) {
	e := x.e
	ck := &wk.chunks[ci]
	ck.executor = int32(x.id)
	var t0 int64
	if e.obsOn {
		t0 = e.nowNS()
	}
	defer func() {
		if r := recover(); r != nil && ck.err == nil {
			ck.err = fmt.Errorf("pregel: vertex compute panicked on worker %d chunk %d: %v", wk.index, ci, r) //gm:alloc-ok panic recovery path; a steady-state run never reaches it
		}
		if e.obsOn {
			ck.startNS = t0
			ck.durNS = e.nowNS() - t0
		}
	}()
	// Truncate the chunk's outbound state from the previous superstep
	// (routing has long completed; capacity is retained). Single-chunk
	// combiner workers write worker-level state directly, so reset it
	// here; multi-chunk workers reset it in the fold phase.
	for d := range ck.boxes {
		ck.boxes[d] = ck.boxes[d][:0]
	}
	ck.raw = ck.raw[:0]
	if wk.single && wk.combineIdx != nil {
		for d := range wk.outboxes {
			wk.outboxes[d] = wk.outboxes[d][:0]
		}
		clear(wk.combineIdx)
	}
	if wk.crashed.Load() {
		return
	}
	// Injected stall (chaos testing): whoever executes the stalled
	// worker's first chunk sleeps, overrunning the watchdog deadline.
	if wk.stallNS > 0 && ci == 0 {
		time.Sleep(time.Duration(wk.stallNS))
	}
	// Injected steal fault: the worker dies the moment one of its chunks
	// runs on a foreign executor.
	if x.id != wk.index && wk.stealFault.Load() && wk.stealFault.CompareAndSwap(true, false) {
		ck.err = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultSteal} //gm:alloc-ok fault-injection testing path; never armed in production runs
		wk.crashed.Store(true)
		return
	}
	// Injected chunk-exec fault: the worker dies entering its middle
	// chunk, with earlier chunks fully executed.
	if wk.chunkFaultAt >= 0 && ci == wk.chunkFaultAt {
		ck.err = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultChunkExec} //gm:alloc-ok fault-injection testing path; never armed in production runs
		wk.crashed.Store(true)
		return
	}
	// Spilled inbox: stream this chunk's contiguous window back from the
	// segment store into executor-local scratch (inOff stays global, so
	// message slicing below rebases against the window start).
	flat := wk.inFlat
	var base int32
	if wk.spilled {
		var err error
		flat, err = x.readSpillWindow(wk, ck) //gm:alloc-ok post-degradation path: spill read-back grows retained scratch to its high-water mark
		if err != nil {
			ck.err = err
			return
		}
		base = wk.inOff[ck.lo]
	}
	vc := &x.vc
	vc.wk = wk
	vc.ck = ck
	vc.superstep = step
	fault := wk.faultAt
	for li := int(ck.lo); li < int(ck.hi); li++ {
		if fault >= 0 && li == fault {
			// Injected crash mid-phase: job state and outboxes stay
			// partially mutated; rollback undoes the damage.
			ck.err = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultVertexCompute} //gm:alloc-ok fault-injection testing path; never armed in production runs
			wk.crashed.Store(true)
			return
		}
		hasMsgs := wk.inOff[li+1] > wk.inOff[li]
		if !wk.active[li] && !hasMsgs {
			if wk.pull {
				wk.ran[li] = false
			}
			continue
		}
		if !wk.active[li] {
			wk.active[li] = true
			ck.numActive++
			ck.frontEdges += int64(e.g.OutDegree(wk.ids[li]))
		}
		if wk.pull {
			wk.ran[li] = true
		}
		vc.id = wk.ids[li]
		vc.local = li
		vc.msgs = flat[wk.inOff[li]-base : wk.inOff[li+1]-base]
		ck.calls++
		e.job.VertexCompute(vc) //gm:alloc-ok job contract: VertexCompute must be allocation-free; perf_test gates the full cycle at AllocsPerRun==0
	}
}

// workerEpilogue runs when wk's last chunk of the vertex phase retires:
// it folds the worker's raw combiner logs (multi-chunk combiner workers),
// merges the chunk counters and aggregator cells into the worker-level
// partials in canonical chunk order, and — in eager mode — retires the
// worker from its source shard, counting the whole shard's outboxes once
// its last worker retires. Everything here reads state owned by wk (made
// visible by the retirement decrement chain) or writes routing staging
// no vertex-phase code touches, so it is safe to run while other
// workers' chunks are still computing. executor is -1 when called from
// the barrier goroutine (chunkless workers).
//
//gm:noalloc
func (e *engine) workerEpilogue(wk *worker, executor int) {
	if wk.combiners != nil && !wk.single {
		wk.fold()
	}
	for ci := range wk.chunks {
		ck := &wk.chunks[ci]
		wk.msgs += ck.msgs
		wk.netMsgs += ck.netMsgs
		wk.netBytes += ck.netBytes
		wk.localBytes += ck.localBytes
		wk.calls += ck.calls
		ck.spanMsgs, ck.spanBytes, ck.spanCalls = ck.msgs, ck.netBytes, ck.calls
		ck.msgs, ck.netMsgs, ck.netBytes, ck.localBytes, ck.calls = 0, 0, 0, 0, 0
		for s := range ck.agg {
			wk.aggPartial[s].merge(e.schema.Aggregators[s], ck.agg[s])
			ck.agg[s] = aggCell{}
		}
	}
	// Pull supersteps emit no pushes: outboxes are empty, so the eager
	// shard count would only write zeros. Skip it — the gather rebuilds
	// the inbox directly and the next push superstep recounts from
	// scratch.
	if !e.eager || e.pullStep {
		return
	}
	sh := e.workerShard[wk.index]
	if e.shardPending[sh].Add(-1) != 0 {
		return
	}
	// Last worker of the shard: count the shard's outboxes into every
	// destination's staging row, overlapping with compute still running
	// on other shards.
	var t0 int64
	if e.obsOn {
		t0 = e.nowNS()
	}
	for _, dst := range e.workers {
		e.countShard(dst, int(sh))
	}
	if e.obsOn {
		e.shardObs[sh] = eagerSpan{startNS: t0, durNS: e.nowNS() - t0, executor: int32(executor)}
	}
}

// fold replays this worker's chunk raw logs, in chunk order, through the
// worker-scoped combining send. The replay sequence equals the worker's
// vertex emission order, so combined payloads, post-combine message
// counts, and byte accounting are bit-identical to an unchunked run.
//
//gm:noalloc
func (wk *worker) fold() {
	if wk.e.obsOn {
		wk.foldStartNS = wk.e.nowNS()
	}
	for d := range wk.outboxes {
		wk.outboxes[d] = wk.outboxes[d][:0]
	}
	clear(wk.combineIdx)
	// Injected fold fault: die midway through the replay, with outboxes
	// partially folded. Aborting here is safe — fold faults are collected
	// before the barrier, so the partial outboxes are never routed.
	limit := -1
	if wk.foldFault {
		total := 0
		for ci := range wk.chunks {
			total += len(wk.chunks[ci].raw)
		}
		limit = total / 2
	}
	replayed := 0
	for ci := range wk.chunks {
		ck := &wk.chunks[ci]
		for i := range ck.raw {
			if replayed == limit {
				wk.foldFault = false
				wk.phaseErr = &InjectedFault{Superstep: wk.faultStep, Worker: wk.index, Phase: FaultFold} //gm:alloc-ok fault-injection testing path; never armed in production runs
				return
			}
			wk.foldSend(ck.raw[i])
			replayed++
		}
		ck.raw = ck.raw[:0]
	}
	if wk.e.obsOn {
		wk.foldDurNS = wk.e.nowNS() - wk.foldStartNS
	}
}

type combineSlot struct {
	dw  int
	idx int
}

// foldSend appends m to the outbox of m.Dst's owning worker, combining
// with a pending message of the same (dst, type) when the job registers
// a combiner for it. It is the worker-scoped half of the combiner path:
// called directly by single-chunk workers during vertex compute, and by
// fold when replaying chunk logs. Allocation-free once outbox/index
// capacity has reached its high-water mark.
//
//gm:noalloc
func (wk *worker) foldSend(m Msg) {
	dw := wk.ownerOf(m.Dst)
	if cs := wk.combiners; cs != nil && int(m.Type) < len(cs) && cs[m.Type] != nil {
		key := uint64(uint32(m.Dst))<<8 | uint64(m.Type)
		if slot, ok := wk.combineIdx[key]; ok {
			cs[m.Type](&wk.outboxes[slot.dw][slot.idx], m) //gm:alloc-ok job-registered combiner funcs fold in place into the existing slot; covered by the runtime alloc gate
			return
		}
		wk.combineIdx[key] = combineSlot{dw: dw, idx: len(wk.outboxes[dw])} //gm:alloc-ok insert after clear() reuses retained buckets; grows only until the high-water mark
	}
	wk.outboxes[dw] = append(wk.outboxes[dw], m) //gm:alloc-ok outbox capacity is retained across supersteps; grows only until the high-water mark
	wk.msgs++
	size := wk.baseSize
	if int(m.Type) < len(wk.msgSize) {
		size = wk.msgSize[m.Type]
	}
	if dw != wk.index {
		wk.netMsgs++
		wk.netBytes += size
	} else {
		wk.localBytes += size
	}
}

// commitMark is a snapshot of the semantic counters at a completed
// barrier (or a restored checkpoint, which is one). An aborting run is
// rewound to the mark, so Stats.Returned*/Supersteps/traffic counters
// never expose a partially merged barrier state; the monotone
// fault-tolerance counters are exempt by design.
type commitMark struct {
	supersteps                                                        int
	messagesSent, networkMsgs, networkBytes, localBytes, controlBytes int64
	vertexCalls                                                       int64
	steps                                                             int
	retSet, retIsInt                                                  bool
	retInt                                                            int64
	retFloat                                                          float64
}

//gm:noalloc
func (e *engine) markCommitted() {
	e.mark.supersteps = e.stats.Supersteps
	e.mark.messagesSent = e.stats.MessagesSent
	e.mark.networkMsgs = e.stats.NetworkMsgs
	e.mark.networkBytes = e.stats.NetworkBytes
	e.mark.localBytes = e.stats.LocalBytes
	e.mark.controlBytes = e.stats.ControlBytes
	e.mark.vertexCalls = e.stats.VertexCalls
	e.mark.steps = len(e.stats.Steps)
	e.mark.retSet = e.retSet
	e.mark.retIsInt = e.retIsInt
	e.mark.retInt = e.retInt
	e.mark.retFloat = e.retFloat
}

func (e *engine) restoreCommitted() {
	e.stats.Supersteps = e.mark.supersteps
	e.stats.MessagesSent = e.mark.messagesSent
	e.stats.NetworkMsgs = e.mark.networkMsgs
	e.stats.NetworkBytes = e.mark.networkBytes
	e.stats.LocalBytes = e.mark.localBytes
	e.stats.ControlBytes = e.mark.controlBytes
	e.stats.VertexCalls = e.mark.vertexCalls
	if len(e.stats.Steps) > e.mark.steps {
		e.stats.Steps = e.stats.Steps[:e.mark.steps]
	}
	e.retSet = e.mark.retSet
	e.retIsInt = e.mark.retIsInt
	e.retInt = e.mark.retInt
	e.retFloat = e.mark.retFloat
}

// loop drives the run to completion. On an aborting error the semantic
// counters are rewound to the last completed barrier, so partial Stats
// are always barrier-consistent.
func (e *engine) loop(ctx context.Context) error {
	e.markCommitted()
	err := e.run(ctx)
	if err != nil {
		e.restoreCommitted()
	}
	return err
}

func (e *engine) run(ctx context.Context) error {
	for step := 0; ; {
		// Everything the engine observes here is a completed-barrier
		// state: the start of the run, the end of a fully merged-and-routed
		// superstep, or a freshly restored checkpoint.
		e.markCommitted()
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pregel: run canceled at superstep %d: %w", step, err)
		}
		if step >= e.cfg.MaxSupersteps {
			return fmt.Errorf("pregel: exceeded %d supersteps", e.cfg.MaxSupersteps)
		}
		if e.checkpointDue(step) {
			var t0, before int64
			if e.obsOn {
				t0 = e.nowNS()
				before = e.stats.CheckpointBytes
			}
			if err := e.takeCheckpoint(step); err != nil {
				return err
			}
			if e.obsOn {
				e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseCheckpoint,
					StartNS: t0, DurNS: e.nowNS() - t0, Bytes: e.stats.CheckpointBytes - before})
			}
		}
		// Govern point 1: the retained checkpoints and last superstep's
		// routed buffers coexist here.
		if e.gov != nil {
			if err := e.govern(step); err != nil {
				return err
			}
		}
		if e.wd != nil {
			e.wd.beginStep(step)
		}
		// Master phase: sees aggregator values contributed last superstep.
		var masterT0 int64
		if e.obsOn {
			masterT0 = e.nowNS()
		}
		halted, err := e.masterPhase(step)
		if err != nil {
			return err
		}
		// Direction choice: after the master phase (the machine executor's
		// master picks the superstep's state there, which GatherEligible
		// consults), before compute. Replayed supersteps reuse the
		// recorded direction (dirHistory is monotone, like the recovery
		// counters).
		pull := false
		if !halted {
			pull = e.chooseDirection(step)
		}
		// The state label is queried after the master phase because the
		// machine executor's master picks the superstep's state there.
		var stateLabel string
		if e.obsOn {
			if pl, ok := e.job.(PhaseLabeler); ok {
				stateLabel = pl.PhaseLabel()
			}
			var dirLabel string
			if e.pullOn && !halted {
				if pull {
					dirLabel = "pull"
				} else {
					dirLabel = "push"
				}
			}
			e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseMaster,
				State: stateLabel, Dir: dirLabel, StartNS: masterT0, DurNS: e.nowNS() - masterT0})
		}
		if halted {
			return nil
		}
		e.pullStep = pull
		if e.pullOn {
			for _, wk := range e.workers {
				wk.pull = pull
			}
		}
		// Vertex phase: release the parked pool into the chunk queues.
		e.armVertexFault(step)
		e.armStall(step)
		e.runVertexPhase(step)
		if e.obsOn {
			e.emitVertexSpans(step, stateLabel)
		}
		crashed, err := e.collectPhaseErrors(step)
		if err != nil {
			return err
		}
		if crashed != nil {
			// Disarm before rolling back so the restore never trips the
			// watchdog; an overlapping trip is subsumed by this recovery.
			if e.wd != nil {
				e.wd.endStep()
			}
			resume, err := e.recoverFrom(crashed, step)
			if err != nil {
				return err
			}
			step = resume
			continue
		}
		// Pull gather: rebuild every worker's inbox from in-neighbors
		// before the barrier merge, so the gather's message counters land
		// in this superstep's partials exactly where push's send-time
		// counters do. An armed routing-family fault fires inside the
		// gather instead (the routing pass it targets does not run).
		if pull {
			if f := e.armRoutingFault(step); f != nil {
				if e.wd != nil {
					e.wd.endStep()
				}
				resume, err := e.recoverFrom(f, step)
				if err != nil {
					return err
				}
				step = resume
				continue
			}
			var pullT0 int64
			if e.obsOn {
				pullT0 = e.nowNS()
			}
			e.gatherMessages(step)
			if e.obsOn {
				e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhasePull,
					Dir: "pull", StartNS: pullT0, DurNS: e.nowNS() - pullT0})
			}
			for _, x := range e.executors {
				if x.err != nil {
					return x.err
				}
			}
			pullCrashed, err := e.collectRoutingFaults()
			if err != nil {
				return err
			}
			if pullCrashed != nil {
				if e.wd != nil {
					e.wd.endStep()
				}
				resume, err := e.recoverFrom(pullCrashed, step)
				if err != nil {
					return err
				}
				step = resume
				continue
			}
		}
		var barrierT0 int64
		if e.obsOn {
			barrierT0 = e.nowNS()
		}
		e.stats.Supersteps++
		// Batched barrier merge: the worker epilogues already folded each
		// worker's chunk counters and aggregator cells into per-worker
		// partials in canonical chunk order (overlapped with compute);
		// the barrier folds the W partials in worker order — a two-level
		// tree whose merge order is fixed by (worker, chunk) coordinates,
		// so stealing cannot perturb results. Aggregators are
		// per-superstep (Pregel semantics): the master sees only the
		// contributions of the superstep that just ran.
		for s := range e.aggValues {
			e.aggValues[s] = aggCell{}
		}
		var stepMsgs, stepNet, stepCalls, stepNetMsgs, stepLocal int64
		for _, wk := range e.workers {
			stepMsgs += wk.msgs
			stepNet += wk.netBytes
			stepNetMsgs += wk.netMsgs
			stepLocal += wk.localBytes
			stepCalls += wk.calls
			wk.msgs, wk.netMsgs, wk.netBytes, wk.localBytes, wk.calls = 0, 0, 0, 0, 0
			for s := range wk.aggPartial {
				e.aggValues[s].merge(e.schema.Aggregators[s], wk.aggPartial[s])
				wk.aggPartial[s] = aggCell{}
			}
		}
		e.stats.MessagesSent += stepMsgs
		e.stats.NetworkMsgs += stepNetMsgs
		e.stats.NetworkBytes += stepNet
		e.stats.LocalBytes += stepLocal
		e.stats.VertexCalls += stepCalls
		// Aggregator control traffic: one value per set aggregator per
		// non-master worker.
		var stepCtl int64
		for s := range e.aggValues {
			if e.aggValues[s].set {
				stepCtl += int64(8 * (e.numWorkers - 1))
			}
		}
		stepCtl += e.globalBytes
		e.stats.ControlBytes += stepCtl
		e.globalBytes = 0
		if e.cfg.TraceSteps {
			e.stats.Steps = append(e.stats.Steps, StepStats{
				Messages:     stepMsgs,
				NetworkBytes: stepNet,
				VertexCalls:  stepCalls,
				NetworkMsgs:  stepNetMsgs,
				LocalBytes:   stepLocal,
				ControlBytes: stepCtl,
			})
		}
		if e.obsOn {
			e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseBarrier,
				StartNS: barrierT0, DurNS: e.nowNS() - barrierT0})
		}

		var anyMsgs bool
		if pull {
			// The gather already routed (by construction); the inbox totals
			// it published are the push-path anyMsgs.
			for _, wk := range e.workers {
				if wk.inTotal > 0 {
					anyMsgs = true
					break
				}
			}
		} else {
			if f := e.armRoutingFault(step); f != nil {
				if e.wd != nil {
					e.wd.endStep()
				}
				resume, err := e.recoverFrom(f, step)
				if err != nil {
					return err
				}
				step = resume
				continue
			}
			var routeT0 int64
			if e.obsOn {
				routeT0 = e.nowNS()
			}
			anyMsgs = e.routeMessages()
			if e.obsOn {
				e.emit(obs.Span{Superstep: step, Worker: -1, Phase: obs.PhaseRouting,
					StartNS: routeT0, DurNS: e.nowNS() - routeT0})
			}
			for _, x := range e.executors {
				if x.err != nil {
					return x.err
				}
			}
			// Faults raised inside the routing sub-phases (fail-stop: the
			// sub-phase finished its work, the failure surfaces at the
			// barrier).
			routeCrashed, err := e.collectRoutingFaults()
			if err != nil {
				return err
			}
			if routeCrashed != nil {
				if e.wd != nil {
					e.wd.endStep()
				}
				resume, err := e.recoverFrom(routeCrashed, step)
				if err != nil {
					return err
				}
				step = resume
				continue
			}
		}
		// The superstep's work is done: disarm the watchdog, then govern
		// point 2 (outboxes and the freshly routed inboxes coexist), then
		// convert a detected stall into supervised recovery with
		// deterministic capped-exponential backoff.
		tripped := false
		if e.wd != nil {
			tripped = e.wd.endStep()
		}
		if e.gov != nil {
			if err := e.govern(step); err != nil {
				return err
			}
		}
		if tripped {
			e.stats.WatchdogStalls++
			diag, suspect := e.wd.diagnosis()
			if e.obsOn {
				dur := e.wdNowNS() - e.wd.startNS.Load()
				e.emit(obs.Span{Superstep: step, Worker: suspect, Phase: obs.PhaseWatchdog,
					StartNS: e.nowNS() - dur, DurNS: dur, State: diag})
			}
			f := &InjectedFault{Superstep: step, Worker: suspect, Phase: FaultWatchdog}
			resume, err := e.recoverFrom(f, step)
			if err != nil {
				return err
			}
			time.Sleep(backoffFor(e.cfg.Seed, e.stats.Recoveries-1, e.cfg.BackoffBase, e.cfg.BackoffCap))
			step = resume
			continue
		}
		// Termination check: refresh the per-worker active counters from
		// the chunk counters maintained by runChunk/VoteToHalt/routing —
		// O(total chunks), no vertex scan.
		anyActive := false
		for _, wk := range e.workers {
			na := 0
			for ci := range wk.chunks {
				na += int(wk.chunks[ci].numActive)
			}
			wk.numActive = na
			if na > 0 {
				anyActive = true
			}
		}
		if !anyMsgs && !anyActive {
			return nil
		}
		step++
	}
}

// emitVertexSpans emits the superstep's chunk spans (executor- and
// steal-attributed, from the snapshots the worker epilogue took before
// clearing the live counters) followed by one aggregated vertex-compute
// span per worker and the eager-count spans (one per source shard), even
// for a superstep that is about to roll back: the trace keeps failed
// work visible while Stats rewinds.
func (e *engine) emitVertexSpans(step int, stateLabel string) {
	for _, wk := range e.workers {
		var dur int64
		startNS := int64(-1)
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			e.emit(obs.Span{Superstep: step, Worker: wk.index, Phase: obs.PhaseChunk,
				State: stateLabel, StartNS: ck.startNS, DurNS: ck.durNS,
				Messages: ck.spanMsgs, Bytes: ck.spanBytes, VertexCalls: ck.spanCalls,
				Executor: int(ck.executor), Stolen: int(ck.executor) != wk.index})
			dur += ck.durNS
			if startNS < 0 || ck.startNS < startNS {
				startNS = ck.startNS
			}
		}
		// The epilogue already folded chunk counters (and the combiner
		// fold path's worker-level counts) into the worker partials.
		if !wk.single && wk.combiners != nil {
			dur += wk.foldDurNS
		}
		if startNS < 0 {
			startNS = 0
		}
		e.emit(obs.Span{Superstep: step, Worker: wk.index, Phase: obs.PhaseVertexCompute,
			State: stateLabel, StartNS: startNS, DurNS: dur,
			Messages: wk.msgs, Bytes: wk.netBytes, VertexCalls: wk.calls})
	}
	// Eager-count spans: Worker carries the source-shard index, Executor
	// the pool goroutine that counted it (-1 when the shard retired on
	// the barrier goroutine).
	for sh := range e.shardObs {
		es := &e.shardObs[sh]
		if es.durNS == 0 && es.startNS == 0 {
			continue
		}
		e.emit(obs.Span{Superstep: step, Worker: sh, Phase: obs.PhaseRouteEager,
			StartNS: es.startNS, DurNS: es.durNS, Executor: int(es.executor)})
		*es = eagerSpan{}
	}
}

// collectPhaseErrors scans executors and chunks (in canonical order)
// after a vertex phase. An injected fault is returned for recovery;
// any other error aborts the run. Fault state is reset so a replay
// starts clean.
func (e *engine) collectPhaseErrors(step int) (*InjectedFault, error) {
	var crashed *InjectedFault
	for _, x := range e.executors {
		if x.err != nil {
			return nil, x.err
		}
	}
	for _, wk := range e.workers {
		wk.stallNS = 0
		// A fault armed on a worker owning too few vertices (faultAt
		// beyond its range) crashes at phase end, like the pre-chunk
		// engine. The same fallback covers a chunk-exec fault on a
		// chunkless worker, a steal fault when nothing was stolen (NoSteal,
		// single worker), and a fold fault on a worker that never folds.
		if wk.faultAt >= len(wk.ids) && wk.faultAt >= 0 {
			crashed = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultVertexCompute}
		}
		if wk.chunkFaultAt >= len(wk.chunks) && wk.chunkFaultAt >= 0 {
			crashed = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultChunkExec}
		}
		if wk.stealFault.CompareAndSwap(true, false) {
			crashed = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultSteal}
		}
		if wk.foldFault {
			wk.foldFault = false
			crashed = &InjectedFault{Superstep: step, Worker: wk.index, Phase: FaultFold}
		}
		if wk.phaseErr != nil {
			perr := wk.phaseErr
			wk.phaseErr = nil
			var inj *InjectedFault
			if errors.As(perr, &inj) {
				crashed = inj
			} else {
				return nil, perr
			}
		}
		wk.faultAt = -1
		wk.chunkFaultAt = -1
		wk.crashed.Store(false)
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			if ck.err == nil {
				continue
			}
			var inj *InjectedFault
			if errors.As(ck.err, &inj) {
				crashed = inj
				ck.err = nil
				continue
			}
			err := ck.err
			ck.err = nil
			return nil, err
		}
	}
	return crashed, nil
}

// collectRoutingFaults scans workers after the routing barrier for
// failures raised inside the count/prefix/place sub-phases. Injected
// faults are returned for recovery; anything else aborts the run.
func (e *engine) collectRoutingFaults() (*InjectedFault, error) {
	var crashed *InjectedFault
	for _, wk := range e.workers {
		wk.routeFaultOn = false
		if wk.phaseErr == nil {
			continue
		}
		perr := wk.phaseErr
		wk.phaseErr = nil
		var inj *InjectedFault
		if errors.As(perr, &inj) {
			crashed = inj
			continue
		}
		return nil, perr
	}
	return crashed, nil
}

// recoverFrom wraps rollback with trace emission: a recovery span
// covering the restore, attributed to the superstep that failed.
func (e *engine) recoverFrom(f *InjectedFault, step int) (int, error) {
	if !e.obsOn {
		return e.rollback(f)
	}
	t0 := e.nowNS()
	resume, err := e.rollback(f)
	e.emit(obs.Span{Superstep: step, Worker: f.Worker, Phase: obs.PhaseRecovery,
		StartNS: t0, DurNS: e.nowNS() - t0})
	return resume, err
}

// masterPhase runs master.compute for step, converting a panic into an
// error so a faulty master cannot crash the process (the vertex phase
// has the same protection in runChunk).
func (e *engine) masterPhase(step int) (halted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pregel: master compute panicked at superstep %d: %v", step, r)
		}
	}()
	e.mc.superstep = step
	e.job.MasterCompute(&e.mc)
	return e.halted, nil
}

// ---- Routing ----
//
// Routing moves every outbox into destination workers' inboxes, grouped
// per destination vertex in CSR form, preserving the canonical (source
// worker, source chunk, emission) order for determinism. The staging is
// sharded by source: workers are grouped into up to maxRouteShards
// contiguous shards, and each (destination, shard) pair owns one
// counting-sort row (srcCounts) that only that shard's counter writes —
// no cross-shard cache contention. The placement is a sharded stable
// counting sort: row offsets depend only on the box geometry, never on
// which executor runs a task, so the inbox is bit-identical to a
// single-threaded sort, and identical between eager and barrier modes
// (both count the same boxes into the same rows).
//
// In eager mode the count pass already ran, overlapped with the vertex
// phase (workerEpilogue → countShard, as each shard's last chunk
// retired), leaving only the prefix and place dispatches here. In
// barrier mode a dedicated count dispatch reproduces the trailing
// schedule for A/B comparison.

// routeMessages runs the routing sub-phases still outstanding for this
// superstep and reports whether any message is in flight. Boxes are
// read-only during the phase and truncated by chunk execution (or fold)
// at the start of the next vertex phase; once inbox/scratch capacity
// has reached its high-water mark, routing allocates nothing.
func (e *engine) routeMessages() bool {
	// Routing rebuilds the inbox in RAM; any spill segment from the
	// previous superstep is dead from here on.
	for _, wk := range e.workers {
		wk.spilled = false
	}
	if !e.eagerCounted {
		e.runPhase(phaseRouteCount, 0)
	}
	e.eagerCounted = false
	e.runPhase(phaseRoutePrefix, 0)
	e.runPhase(phaseRoutePlace, 0)
	any := false
	for _, wk := range e.workers {
		if wk.inTotal > 0 {
			any = true
			break
		}
	}
	return any
}

// countShard counts source shard sh's messages destined for dst into
// dst's srcCounts row for the shard, walking the shard's workers (and
// their chunks) in canonical order. A shard that sent nothing to dst
// skips the walk and leaves the row stale — srcMsgs records the total
// so prefix and place skip it too. Called from the worker epilogue in
// eager mode (overlapped with compute) and from the count dispatch in
// barrier mode; either way exactly one goroutine writes each row.
//
//gm:noalloc
func (e *engine) countShard(dst *worker, sh int) {
	lo, hi := e.shardStart[sh], e.shardStart[sh+1]
	d := dst.index
	var total int32
	if e.combActive {
		for s := lo; s < hi; s++ {
			total += int32(len(e.workers[s].outboxes[d]))
		}
	} else {
		for s := lo; s < hi; s++ {
			src := e.workers[s]
			for ci := range src.chunks {
				total += int32(len(src.chunks[ci].boxes[d]))
			}
		}
	}
	dst.srcMsgs[sh] = total
	if total == 0 {
		return
	}
	cnt := dst.srcCounts[sh]
	for i := range cnt {
		cnt[i] = 0
	}
	if e.combActive {
		for s := lo; s < hi; s++ {
			for _, m := range e.workers[s].outboxes[d] {
				cnt[dst.localOf(m.Dst)]++
			}
		}
		return
	}
	for s := lo; s < hi; s++ {
		src := e.workers[s]
		for ci := range src.chunks {
			for _, m := range src.chunks[ci].boxes[d] {
				cnt[dst.localOf(m.Dst)]++
			}
		}
	}
}

// routePhase drains (destination, source-shard) tasks for the count or
// place sub-phase. With stealing disabled each executor handles only
// its own worker's rows, reproducing per-worker routing.
//
//gm:noalloc
func (x *executor) routePhase(kind phaseKind) {
	e := x.e
	if e.noSteal {
		wk := e.workers[x.id]
		for s := 0; s < e.shards; s++ {
			wk.runShard(kind, s)
		}
		return
	}
	grid := int64(e.shards)
	limit := int64(len(e.workers)) * grid
	for {
		t := e.taskCursor.Add(1) - 1
		if t >= limit {
			return
		}
		e.workers[t/grid].runShard(kind, int(t%grid))
	}
}

// runShard dispatches one (destination, source-shard) routing task to
// the count or place sub-phase.
//
//gm:noalloc
func (wk *worker) runShard(kind phaseKind, s int) {
	if kind == phaseRouteCount {
		if s == 0 && wk.routeFaultOn && wk.routeFault == FaultRouteCount {
			wk.routeFaultOn = false
			wk.phaseErr = &InjectedFault{Superstep: wk.faultStep, Worker: wk.index, Phase: FaultRouteCount} //gm:alloc-ok fault-injection testing path; never armed in production runs
		}
		wk.e.countShard(wk, s)
	} else {
		wk.placeShard(s)
	}
}

// prefixPhase drains per-destination prefix tasks.
//
//gm:noalloc
func (x *executor) prefixPhase() {
	e := x.e
	if e.noSteal {
		e.workers[x.id].routePrefix()
		return
	}
	for {
		t := int(e.taskCursor.Add(1)) - 1
		if t >= len(e.workers) {
			return
		}
		e.workers[t].routePrefix()
	}
}

// routePrefix turns the per-shard counts into placement offsets and the
// CSR inbox offsets, sizes the inbox, and reactivates message
// recipients (maintaining the chunk active counters). Offsets derive
// only from counts, so placement is execution-order independent. In
// eager mode an armed route-count fault fires here instead — the count
// pass it targets was absorbed into the vertex phase, and fail-stop
// semantics make the two observationally equivalent (the failure
// surfaces at the routing barrier either way).
//
//gm:noalloc
func (wk *worker) routePrefix() {
	if wk.routeFaultOn && (wk.routeFault == FaultRoutePrefix || wk.routeFault == FaultRouteCount) {
		wk.routeFaultOn = false
		wk.phaseErr = &InjectedFault{Superstep: wk.faultStep, Worker: wk.index, Phase: wk.routeFault} //gm:alloc-ok fault-injection testing path; never armed in production runs
	}
	shards := len(wk.srcMsgs)
	total := 0
	for s := 0; s < shards; s++ {
		total += int(wk.srcMsgs[s])
	}
	wk.inTotal = total
	wk.inDepth.Store(int64(total))
	if cap(wk.inFlat) < total {
		wk.inFlat = make([]Msg, total) //gm:alloc-ok inbox grows to its high-water mark, then capacity is reused; steady state allocation-free
	} else {
		wk.inFlat = wk.inFlat[:total]
	}
	n := len(wk.ids)
	if total == 0 {
		for i := range wk.inOff {
			wk.inOff[i] = 0
		}
		return
	}
	var run int32
	for li := 0; li < n; li++ {
		wk.inOff[li] = run
		for s := 0; s < shards; s++ {
			if wk.srcMsgs[s] == 0 {
				continue
			}
			c := wk.srcCounts[s][li]
			wk.srcCounts[s][li] = run
			run += c
		}
	}
	wk.inOff[n] = run
	for ci := range wk.chunks {
		ck := &wk.chunks[ci]
		for li := ck.lo; li < ck.hi; li++ {
			if wk.inOff[li+1] > wk.inOff[li] && !wk.active[li] {
				wk.active[li] = true
				ck.numActive++
				ck.frontEdges += int64(wk.e.g.OutDegree(wk.ids[li]))
			}
		}
	}
}

// placeShard stably places source shard s's messages at the offsets
// computed by routePrefix, walking the shard's boxes in the same
// canonical order countShard counted them.
//
//gm:noalloc
func (wk *worker) placeShard(s int) {
	if s == 0 && wk.routeFaultOn && wk.routeFault == FaultRoutePlace {
		wk.routeFaultOn = false
		wk.phaseErr = &InjectedFault{Superstep: wk.faultStep, Worker: wk.index, Phase: FaultRoutePlace} //gm:alloc-ok fault-injection testing path; never armed in production runs
	}
	if wk.srcMsgs[s] == 0 {
		return
	}
	e := wk.e
	lo, hi := e.shardStart[s], e.shardStart[s+1]
	d := wk.index
	pos := wk.srcCounts[s]
	if e.combActive {
		for src := lo; src < hi; src++ {
			for _, m := range e.workers[src].outboxes[d] {
				li := wk.localOf(m.Dst)
				p := pos[li]
				pos[li] = p + 1
				wk.inFlat[p] = m
			}
		}
		return
	}
	for src := lo; src < hi; src++ {
		sw := e.workers[src]
		for ci := range sw.chunks {
			for _, m := range sw.chunks[ci].boxes[d] {
				li := wk.localOf(m.Dst)
				p := pos[li]
				pos[li] = p + 1
				wk.inFlat[p] = m
			}
		}
	}
}
