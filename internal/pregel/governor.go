package pregel

import (
	"errors"
	"fmt"

	"gmpregel/internal/obs"
)

// ErrBudgetExceeded is returned (wrapped) when a run's accounted memory
// exceeds Config.MemoryBudget even after every degradation stage: the
// run aborts cleanly with partial Stats instead of running out of
// memory. Test with errors.Is.
var ErrBudgetExceeded = errors.New("pregel: memory budget exceeded")

// msgMemBytes is the accounted in-memory footprint of one buffered Msg:
// 4-byte destination, 1-byte type plus padding, and four 8-byte payload
// slots. Accounting multiplies buffer lengths (not capacities) by this
// constant, so accounted usage is a pure function of the configuration
// and seed — identical across chunk sizes, stealing, and executor
// schedules — which keeps governor decisions deterministic.
const msgMemBytes = 40

// governor enforces Config.MemoryBudget with staged graceful
// degradation, checked on the barrier goroutine at the two accounted
// peaks of a superstep (after a checkpoint is taken and after routing,
// when outboxes and the freshly routed inboxes coexist):
//
//	stage 1: release routed outbox retention — the boxes' contents were
//	         already copied into inboxes, and dropping their high-water
//	         capacity halves the duplicated message footprint;
//	stage 2: spill the largest resident inboxes to an unlinked temp-file
//	         segment store, restored bit-identically (and lazily, one
//	         chunk window at a time) during the next vertex phase;
//	stage 3: abort with ErrBudgetExceeded carrying partial Stats.
type governor struct {
	budget int64
	spill  spillStore
	enc    []byte // retained spill-encode scratch
}

// ckptHeldBytes is the resident footprint of retained checkpoints (the
// current rollback target and the torn-write fallback).
//
//gm:noalloc
func (e *engine) ckptHeldBytes() int64 {
	var u int64
	if e.ckpt != nil {
		u += int64(len(e.ckpt.data) + len(e.ckpt.job))
	}
	if e.ckptPrev != nil {
		u += int64(len(e.ckptPrev.data) + len(e.ckptPrev.job))
	}
	return u
}

// accountedUsage sums the engine's governed memory: buffered messages
// (inboxes, outboxes, raw combiner logs), inbox offset tables, and
// retained checkpoints. Spilled inboxes have zero resident length and
// drop out of the sum automatically. Runs on the barrier goroutine; the
// fast path is pure arithmetic over retained lengths.
//
//gm:noalloc
func (e *engine) accountedUsage() int64 {
	var u int64
	for _, wk := range e.workers {
		u += int64(len(wk.inFlat)) * msgMemBytes
		u += int64(len(wk.inOff)) * 4
		for d := range wk.outboxes {
			u += int64(len(wk.outboxes[d])) * msgMemBytes
		}
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			u += int64(len(ck.raw)) * msgMemBytes
			for d := range ck.boxes {
				u += int64(len(ck.boxes[d])) * msgMemBytes
			}
		}
	}
	return u + e.ckptHeldBytes()
}

// releaseOutboxes drops every outbox, chunk box, and raw log — contents
// and retained capacity — and returns the accounted bytes freed. Safe at
// a govern point: routing has already copied the contents into inboxes,
// and send paths re-grow the buffers on demand (the zero-allocation
// steady state resumes once capacity recovers its high-water mark).
func (e *engine) releaseOutboxes() int64 {
	var freed int64
	for _, wk := range e.workers {
		for d := range wk.outboxes {
			freed += int64(len(wk.outboxes[d])) * msgMemBytes
			wk.outboxes[d] = nil
		}
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			freed += int64(len(ck.raw)) * msgMemBytes
			ck.raw = nil
			for d := range ck.boxes {
				freed += int64(len(ck.boxes[d])) * msgMemBytes
				ck.boxes[d] = nil
			}
		}
	}
	return freed
}

// spillInbox writes wk's routed inbox to the segment store and drops the
// resident copy; the next vertex phase streams it back one chunk window
// at a time. Returns the accounted bytes freed.
func (e *engine) spillInbox(wk *worker, step int) (int64, error) {
	g := e.gov
	n := len(wk.inFlat)
	var t0 int64
	if e.obsOn {
		t0 = e.nowNS()
	}
	off, enc, err := g.spill.writeSegment(wk.inFlat, g.enc)
	g.enc = enc
	if err != nil {
		return 0, err
	}
	wk.spillOff = off
	wk.spilled = true
	wk.inFlat = nil
	disk := int64(n) * spillRecBytes
	e.stats.Spills++
	e.stats.SpillBytes += disk
	if e.obsOn {
		e.emit(obs.Span{Superstep: step, Worker: wk.index, Phase: obs.PhaseSpill,
			StartNS: t0, DurNS: e.nowNS() - t0, Messages: int64(n), Bytes: disk})
	}
	return int64(n) * msgMemBytes, nil
}

// govern runs the staged degradation at one accounted peak. It returns
// nil when usage fits the budget (possibly after degradation) and a
// wrapped ErrBudgetExceeded when even a fully spilled engine does not.
func (e *engine) govern(step int) error {
	g := e.gov
	usage := e.accountedUsage()
	if usage > e.stats.MemoryPeakBytes {
		e.stats.MemoryPeakBytes = usage
	}
	if usage <= g.budget {
		return nil
	}
	usage -= e.releaseOutboxes()
	for usage > g.budget {
		var victim *worker
		for _, wk := range e.workers {
			if len(wk.inFlat) > 0 && (victim == nil || len(wk.inFlat) > len(victim.inFlat)) {
				victim = wk
			}
		}
		if victim == nil {
			break
		}
		freed, err := e.spillInbox(victim, step)
		if err != nil {
			return err
		}
		usage -= freed
	}
	if usage <= g.budget {
		return nil
	}
	return fmt.Errorf("%w: superstep %d needs %d accounted bytes after outbox release and inbox spill, budget is %d",
		ErrBudgetExceeded, step, usage, g.budget)
}

// readSpillWindow streams the chunk's slice of wk's spilled inbox into
// this executor's retained scratch. The window is contiguous on disk
// because chunk local-index ranges are contiguous in the CSR inbox.
func (x *executor) readSpillWindow(wk *worker, ck *chunk) ([]Msg, error) {
	first := int(wk.inOff[ck.lo])
	count := int(wk.inOff[ck.hi]) - first
	msgs, raw, err := x.e.gov.spill.readWindow(x.spillMsgs, x.spillRaw, wk.spillOff, first, count)
	x.spillMsgs, x.spillRaw = msgs, raw
	return msgs, err
}

// readSpilledInbox reads back a worker's whole spilled inbox (the
// checkpoint encoder needs the full contents; chunk execution uses the
// windowed path instead).
func (e *engine) readSpilledInbox(wk *worker) ([]Msg, error) {
	msgs, _, err := e.gov.spill.readWindow(nil, nil, wk.spillOff, 0, wk.inTotal)
	return msgs, err
}

// unspillAll restores every spilled inbox to RAM, bit-identical to its
// pre-spill contents. Called before a checkpoint is encoded; the
// post-checkpoint govern pass re-spills if the budget still demands it.
func (e *engine) unspillAll() error {
	for _, wk := range e.workers {
		if !wk.spilled {
			continue
		}
		msgs, err := e.readSpilledInbox(wk)
		if err != nil {
			return err
		}
		wk.inFlat = msgs
		wk.spilled = false
	}
	return nil
}
