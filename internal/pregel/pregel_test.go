package pregel

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// minLabelJob computes connected components (over out-edges, i.e. label
// propagation on the directed reachability closure) by min-label
// flooding with voteToHalt — a classic single-kernel Pregel program.
type minLabelJob struct {
	label []int64
	mu    sync.Mutex // labels are per-vertex partitioned; no lock needed, kept for -race confidence on test-only reads
}

func (j *minLabelJob) Schema() Schema {
	return Schema{MessagePayloadBytes: []int{8}}
}

func (j *minLabelJob) MasterCompute(mc *MasterContext) {}

func (j *minLabelJob) VertexCompute(vc *VertexContext) {
	v := vc.ID()
	if vc.Superstep() == 0 {
		j.label[v] = int64(v)
		var m Msg
		m.SetInt(0, j.label[v])
		vc.SendToAllNbrs(m)
		vc.VoteToHalt()
		return
	}
	changed := false
	for _, m := range vc.Messages() {
		if m.Int(0) < j.label[v] {
			j.label[v] = m.Int(0)
			changed = true
		}
	}
	if changed {
		var m Msg
		m.SetInt(0, j.label[v])
		vc.SendToAllNbrs(m)
	}
	vc.VoteToHalt()
}

// SnapshotState/RestoreState make minLabelJob recoverable, so the fault
// injection tests can reuse it.
func (j *minLabelJob) SnapshotState() []byte {
	b := make([]byte, 8*len(j.label))
	for i, v := range j.label {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

func (j *minLabelJob) RestoreState(b []byte) {
	for i := range j.label {
		j.label[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

func TestMinLabelPropagation(t *testing.T) {
	// Two directed cycles: {0,1,2} and {3,4}.
	g := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	})
	j := &minLabelJob{label: make([]int64, 5)}
	st, err := Run(g, j, Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 0, 3, 3}
	for v, w := range want {
		if j.label[v] != w {
			t.Errorf("label[%d] = %d, want %d", v, j.label[v], w)
		}
	}
	if st.Supersteps == 0 || st.MessagesSent == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
}

func TestMinLabelTerminatesByHaltVotes(t *testing.T) {
	g := gen.Ring(50)
	j := &minLabelJob{label: make([]int64, 50)}
	st, err := Run(g, j, Config{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range j.label {
		if j.label[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, j.label[v])
		}
	}
	// Ring of 50 needs ~50 steps for label 0 to go all the way around.
	if st.Supersteps < 50 {
		t.Errorf("supersteps = %d, want >= 50", st.Supersteps)
	}
}

// delayJob checks the BSP delivery contract: a message sent at step t is
// seen exactly at step t+1, never earlier or later.
type delayJob struct {
	t        *testing.T
	sawAt    []int
	haltStep int
}

func (j *delayJob) Schema() Schema { return Schema{MessagePayloadBytes: []int{8}} }
func (j *delayJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() >= j.haltStep {
		mc.Halt()
	}
}
func (j *delayJob) VertexCompute(vc *VertexContext) {
	for _, m := range vc.Messages() {
		if got := int(m.Int(0)); got != vc.Superstep()-1 {
			j.t.Errorf("vertex %d at step %d got message sent at step %d", vc.ID(), vc.Superstep(), got)
		}
		j.sawAt[vc.ID()] = vc.Superstep()
	}
	var m Msg
	m.SetInt(0, int64(vc.Superstep()))
	vc.SendToAllNbrs(m)
}

func TestMessageDeliveryTiming(t *testing.T) {
	g := gen.Ring(6)
	j := &delayJob{t: t, sawAt: make([]int, 6), haltStep: 5}
	if _, err := Run(g, j, Config{NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	for v, s := range j.sawAt {
		if s != 4 {
			t.Errorf("vertex %d last received at step %d, want 4", v, s)
		}
	}
}

// aggJob checks aggregator timing (visible to master the NEXT superstep)
// and global broadcast timing (visible to vertices the SAME superstep).
type aggJob struct {
	t       *testing.T
	n       int
	checked bool
}

func (j *aggJob) Schema() Schema {
	return Schema{
		Aggregators: []AggSpec{
			{Name: "sum", Kind: AggKindInt, Op: AggSum},
			{Name: "min", Kind: AggKindFloat, Op: AggMin},
			{Name: "or", Kind: AggKindBool, Op: AggOr},
		},
		Globals: []GlobalSpec{{Name: "k", Size: 8}},
	}
}

func (j *aggJob) MasterCompute(mc *MasterContext) {
	switch mc.Superstep() {
	case 0:
		if mc.AggIsSet(0) {
			j.t.Error("aggregator set before any vertex ran")
		}
		mc.SetGlobalInt(0, 42)
	case 1:
		if got := mc.AggInt(0); got != int64(j.n)*(int64(j.n)-1)/2 {
			j.t.Errorf("sum agg = %d, want %d", got, j.n*(j.n-1)/2)
		}
		if got := mc.AggFloat(1); got != 0.5 {
			j.t.Errorf("min agg = %v, want 0.5", got)
		}
		if !mc.AggBool(2) {
			j.t.Error("or agg should be true")
		}
		j.checked = true
		mc.Halt()
	}
}

func (j *aggJob) VertexCompute(vc *VertexContext) {
	if vc.Superstep() == 0 {
		if vc.GlobalInt(0) != 42 {
			j.t.Errorf("vertex %d did not see global set this superstep", vc.ID())
		}
		vc.AggInt(0, int64(vc.ID()))
		vc.AggFloat(1, 0.5+float64(vc.ID()))
		vc.AggBool(2, vc.ID() == 3)
	}
}

func TestAggregatorsAndGlobals(t *testing.T) {
	g := gen.Ring(8)
	j := &aggJob{t: t, n: 8}
	if _, err := Run(g, j, Config{NumWorkers: 3}); err != nil {
		t.Fatal(err)
	}
	if !j.checked {
		t.Fatal("master never reached the checking superstep")
	}
}

// byteJob sends one fixed-size message per vertex to a fixed target so
// network byte accounting is exactly computable.
type byteJob struct{ n int }

func (j *byteJob) Schema() Schema { return Schema{MessagePayloadBytes: []int{12}} }
func (j *byteJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 2 {
		mc.Halt()
	}
}
func (j *byteJob) VertexCompute(vc *VertexContext) {
	if vc.Superstep() == 0 {
		var m Msg
		vc.Send(0, m) // everyone messages vertex 0
	}
}

func TestNetworkByteAccounting(t *testing.T) {
	const n, W = 10, 2
	g := gen.Ring(n)
	j := &byteJob{n: n}
	st, err := Run(g, j, Config{NumWorkers: W})
	if err != nil {
		t.Fatal(err)
	}
	if st.MessagesSent != n {
		t.Fatalf("messages = %d, want %d", st.MessagesSent, n)
	}
	// Vertex 0 lives on worker 0. Sources on worker 1 (odd ids: 5 of
	// them) cross the network. One message type → no tag byte.
	// Wire size = 4 (dst) + 12 payload = 16.
	if st.NetworkMsgs != 5 {
		t.Errorf("network msgs = %d, want 5", st.NetworkMsgs)
	}
	if st.NetworkBytes != 5*16 {
		t.Errorf("network bytes = %d, want 80", st.NetworkBytes)
	}
	if st.LocalBytes != 5*16 {
		t.Errorf("local bytes = %d, want 80", st.LocalBytes)
	}
}

// Property: total bytes are additive across worker counts — the same job
// sends the same messages regardless of partitioning, so MessagesSent and
// per-message sizes are invariant, while NetworkBytes+LocalBytes is
// constant.
func TestByteAccountingPartitionInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.Random(40, 200, seed%1000)
		var totals []int64
		var msgs []int64
		for _, w := range []int{1, 2, 5} {
			j := &minLabelJob{label: make([]int64, 40)}
			st, err := Run(g, j, Config{NumWorkers: w})
			if err != nil {
				return false
			}
			totals = append(totals, st.NetworkBytes+st.LocalBytes)
			msgs = append(msgs, st.MessagesSent)
		}
		return totals[0] == totals[1] && totals[1] == totals[2] &&
			msgs[0] == msgs[1] && msgs[1] == msgs[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Determinism: identical config+seed ⇒ identical stats.
func TestRunDeterminism(t *testing.T) {
	g := gen.TwitterLike(500, 5, 3)
	run := func() Stats {
		j := &minLabelJob{label: make([]int64, 500)}
		st, err := Run(g, j, Config{NumWorkers: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Supersteps != b.Supersteps || a.MessagesSent != b.MessagesSent || a.NetworkBytes != b.NetworkBytes {
		t.Errorf("nondeterministic stats: %+v vs %+v", a, b)
	}
}

type panicJob struct{}

func (panicJob) Schema() Schema                  { return Schema{} }
func (panicJob) MasterCompute(mc *MasterContext) {}
func (panicJob) VertexCompute(vc *VertexContext) { panic("boom") }

func TestVertexPanicBecomesError(t *testing.T) {
	if _, err := Run(gen.Ring(4), panicJob{}, Config{NumWorkers: 2}); err == nil {
		t.Fatal("want error from panicking vertex, got nil")
	}
}

type masterPanicJob struct{}

func (masterPanicJob) Schema() Schema                  { return Schema{} }
func (masterPanicJob) MasterCompute(mc *MasterContext) { panic("master boom") }
func (masterPanicJob) VertexCompute(vc *VertexContext) {}

func TestMasterPanicBecomesError(t *testing.T) {
	if _, err := Run(gen.Ring(4), masterPanicJob{}, Config{NumWorkers: 2}); err == nil {
		t.Fatal("want error from panicking master, got nil")
	}
}

// pickJob records PickRandomNode's answer on an arbitrary graph.
type pickJob struct{ picked graph.NodeID }

func (j *pickJob) Schema() Schema { return Schema{} }
func (j *pickJob) MasterCompute(mc *MasterContext) {
	j.picked = mc.PickRandomNode()
	mc.Halt()
}
func (j *pickJob) VertexCompute(vc *VertexContext) {}

func TestPickRandomNodeEmptyGraph(t *testing.T) {
	j := &pickJob{}
	if _, err := Run(graph.FromEdges(0, nil), j, Config{NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	if j.picked != graph.NilNode {
		t.Errorf("PickRandomNode on empty graph = %d, want NilNode", j.picked)
	}
}

// partialReturnJob records a return value early but never halts, so the
// run aborts on MaxSupersteps.
type partialReturnJob struct{}

func (partialReturnJob) Schema() Schema { return Schema{} }
func (partialReturnJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 0 {
		mc.ReturnInt(42)
	}
}
func (partialReturnJob) VertexCompute(vc *VertexContext) {} // stays active forever

func TestAbortPopulatesPartialReturn(t *testing.T) {
	st, err := Run(gen.Ring(4), partialReturnJob{}, Config{NumWorkers: 2, MaxSupersteps: 5})
	if err == nil {
		t.Fatal("want max-supersteps error, got nil")
	}
	if !st.ReturnedIsSet || !st.ReturnedIsInt || st.ReturnedInt != 42 {
		t.Errorf("aborted run lost the partial return value: %+v", st)
	}
	if st.Supersteps == 0 {
		t.Errorf("aborted run reported no supersteps: %+v", st)
	}
}

type sleepyJob struct{}

func (sleepyJob) Schema() Schema                  { return Schema{} }
func (sleepyJob) MasterCompute(mc *MasterContext) {}
func (sleepyJob) VertexCompute(vc *VertexContext) { time.Sleep(time.Millisecond) }

func TestDeadlineAbortsRun(t *testing.T) {
	st, err := Run(gen.Ring(4), sleepyJob{}, Config{NumWorkers: 2, Deadline: 30 * time.Millisecond})
	if err == nil {
		t.Fatal("want deadline error, got nil")
	}
	if st.Supersteps == 0 {
		t.Error("deadline fired before any superstep completed")
	}
}

func TestContextCancelAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, gen.Ring(4), sleepyJob{}, Config{NumWorkers: 2}); err == nil {
		t.Fatal("want cancellation error, got nil")
	}
}

type runawayJob struct{}

func (runawayJob) Schema() Schema                  { return Schema{} }
func (runawayJob) MasterCompute(mc *MasterContext) {}
func (runawayJob) VertexCompute(vc *VertexContext) {} // stays active forever

func TestMaxSuperstepsEnforced(t *testing.T) {
	if _, err := Run(gen.Ring(4), runawayJob{}, Config{NumWorkers: 1, MaxSupersteps: 10}); err == nil {
		t.Fatal("want max-supersteps error, got nil")
	}
}

type returnJob struct{}

func (returnJob) Schema() Schema { return Schema{} }
func (returnJob) MasterCompute(mc *MasterContext) {
	mc.ReturnFloat(3.5)
	mc.Halt()
}
func (returnJob) VertexCompute(vc *VertexContext) {}

func TestReturnValue(t *testing.T) {
	st, err := Run(gen.Ring(4), returnJob{}, Config{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.ReturnedIsSet || st.ReturnedIsInt || st.ReturnedFloat != 3.5 {
		t.Errorf("return value wrong: %+v", st)
	}
}

func TestMsgPayloadCodecs(t *testing.T) {
	var m Msg
	m.SetInt(0, -9)
	m.SetFloat(1, 2.25)
	m.SetBool(2, true)
	m.SetNode(3, graph.NodeID(77))
	if m.Int(0) != -9 || m.Float(1) != 2.25 || !m.Bool(2) || m.Node(3) != 77 {
		t.Errorf("codec mismatch: %v %v %v %v", m.Int(0), m.Float(1), m.Bool(2), m.Node(3))
	}
	m.SetNode(0, graph.NilNode)
	if m.Node(0) != graph.NilNode {
		t.Errorf("NIL node did not round-trip: %d", m.Node(0))
	}
}

func TestTraceSteps(t *testing.T) {
	g := gen.Ring(6)
	j := &delayJob{t: t, sawAt: make([]int, 6), haltStep: 3}
	st, err := Run(g, j, Config{NumWorkers: 2, TraceSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Steps) != st.Supersteps {
		t.Fatalf("len(Steps) = %d, want %d", len(st.Steps), st.Supersteps)
	}
	var sum int64
	for _, s := range st.Steps {
		sum += s.Messages
	}
	if sum != st.MessagesSent {
		t.Errorf("per-step messages sum %d != total %d", sum, st.MessagesSent)
	}
}
