package pregel

import (
	"reflect"
	"runtime"
	"sort"
	"testing"

	"gmpregel/internal/graph/gen"
)

// workerCounts is the NumWorkers grid the determinism satellite sweeps.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// aggDetJob contributes to an AggAny, AggMin, and AggMax slot each
// superstep and records the merged values the master observes.
type aggDetJob struct {
	steps    int
	Observed [][3]int64 // per superstep: any, min, max(bits of float)
}

func (j *aggDetJob) Schema() Schema {
	return Schema{Aggregators: []AggSpec{
		{Name: "any", Kind: AggKindInt, Op: AggAny},
		{Name: "min", Kind: AggKindInt, Op: AggMin},
		{Name: "max", Kind: AggKindFloat, Op: AggMax},
	}}
}

func (j *aggDetJob) MasterCompute(mc *MasterContext) {
	if s := mc.Superstep(); s > 0 {
		j.Observed = append(j.Observed, [3]int64{
			mc.AggInt(0), mc.AggInt(1), int64(floatBits(mc.AggFloat(2))),
		})
		if s >= j.steps {
			mc.Halt()
		}
	}
}

func (j *aggDetJob) VertexCompute(vc *VertexContext) {
	v := int64(vc.ID())
	vc.AggInt(0, v*31+int64(vc.Superstep()))
	vc.AggInt(1, v-7)
	vc.AggFloat(2, float64(v)*1.5)
}

// For each worker count: two identical runs produce identical Stats and
// identical merged aggregator sequences. Across worker counts, the
// partition-invariant reductions (AggMin/AggMax) agree; AggAny is only
// required to be deterministic per configuration (its winner depends on
// the partitioning by design).
func TestAggregatorReductionDeterminism(t *testing.T) {
	const n, steps = 53, 6
	g := gen.TwitterLike(n, 5, 13)
	run := func(w int) (*aggDetJob, Stats) {
		j := &aggDetJob{steps: steps}
		st, err := Run(g, j, Config{NumWorkers: w, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return j, st
	}
	type outcome struct {
		job *aggDetJob
		st  Stats
	}
	byW := map[int]outcome{}
	for _, w := range workerCounts() {
		a, ast := run(w)
		b, bst := run(w)
		if !reflect.DeepEqual(ast, bst) {
			t.Errorf("W=%d: stats differ across identical runs:\n%+v\n%+v", w, ast, bst)
		}
		if !reflect.DeepEqual(a.Observed, b.Observed) {
			t.Errorf("W=%d: aggregator sequences differ across identical runs", w)
		}
		byW[w] = outcome{a, ast}
	}
	ref := byW[1]
	for _, w := range workerCounts() {
		o := byW[w]
		if len(o.job.Observed) != len(ref.job.Observed) {
			t.Fatalf("W=%d: %d observations, want %d", w, len(o.job.Observed), len(ref.job.Observed))
		}
		for s := range o.job.Observed {
			if o.job.Observed[s][1] != ref.job.Observed[s][1] || o.job.Observed[s][2] != ref.job.Observed[s][2] {
				t.Errorf("W=%d step %d: min/max not partition-invariant: %v vs %v",
					w, s, o.job.Observed[s], ref.job.Observed[s])
			}
		}
		if o.st.Supersteps != ref.st.Supersteps || o.st.MessagesSent != ref.st.MessagesSent ||
			o.st.VertexCalls != ref.st.VertexCalls {
			t.Errorf("W=%d: semantic counters differ from W=1: %+v vs %+v", w, o.st, ref.st)
		}
	}
}

// routeMessages inbox ordering: per worker count the received payload
// sequence is identical across runs, and across worker counts the
// multiset of delivered messages is invariant.
func TestInboxOrderDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = 47
	g := gen.TwitterLike(n, 6, 19)
	run := func(w int) [][]int64 {
		j := &orderAllJob{order: make([][]int64, n)}
		if _, err := Run(g, j, Config{NumWorkers: w, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		return j.order
	}
	var ref [][]int64
	for _, w := range workerCounts() {
		a, b := run(w), run(w)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("W=%d: inbox order differs across identical runs", w)
		}
		sorted := make([][]int64, n)
		for v := range a {
			s := append([]int64(nil), a[v]...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			sorted[v] = s
		}
		if ref == nil {
			ref = sorted
		} else if !reflect.DeepEqual(ref, sorted) {
			t.Errorf("W=%d: delivered message multiset not partition-invariant", w)
		}
	}
}

// Vertex outputs of a partition-independent job (min-label) are
// bit-identical across the full worker grid.
func TestVertexOutputsInvariantAcrossWorkerCounts(t *testing.T) {
	const n = 80
	g := gen.TwitterLike(n, 5, 23)
	var ref []int64
	for _, w := range workerCounts() {
		labels, _ := runMinLabel(t, g, n, Config{NumWorkers: w, Seed: 8})
		if ref == nil {
			ref = labels
		} else if !reflect.DeepEqual(ref, labels) {
			t.Errorf("W=%d: min-label outputs differ from W=1", w)
		}
	}
}

// The tentpole determinism criterion: for a fixed worker count, Stats
// and outputs are bit-identical across chunk sizes {1, 16, 64} and
// stealing on/off — chunked execution and work stealing are pure
// scheduling changes. (The jobs here use int and float-min/max
// aggregators; float AggSum is the one reduction whose bits may vary
// with chunk geometry, documented in docs/ENGINE.md.)
func TestSchedulingDeterminism(t *testing.T) {
	const n, steps = 53, 6
	g := gen.TwitterLike(n, 5, 13)
	type sched struct {
		chunk   int
		noSteal bool
	}
	grid := []sched{
		{0, false}, {0, true},
		{1, false}, {1, true},
		{16, false}, {16, true},
		{64, false}, {64, true},
	}
	var labelRef []int64 // across worker counts too
	for _, w := range workerCounts() {
		var refStats *Stats
		var refObs [][3]int64
		var refLabels []int64
		for _, s := range grid {
			cfg := Config{NumWorkers: w, Seed: 21, TraceSteps: true,
				ChunkSize: s.chunk, NoSteal: s.noSteal}
			j := &aggDetJob{steps: steps}
			st, err := Run(g, j, cfg)
			if err != nil {
				t.Fatal(err)
			}
			labels, lst := runMinLabel(t, g, n, cfg)
			if refStats == nil {
				refStats, refObs, refLabels = &st, j.Observed, labels
				_ = lst
				continue
			}
			if !reflect.DeepEqual(st, *refStats) {
				t.Errorf("W=%d chunk=%d nosteal=%v: Stats differ from default schedule:\n%+v\n%+v",
					w, s.chunk, s.noSteal, st, *refStats)
			}
			if !reflect.DeepEqual(j.Observed, refObs) {
				t.Errorf("W=%d chunk=%d nosteal=%v: aggregator sequences differ from default schedule",
					w, s.chunk, s.noSteal)
			}
			if !reflect.DeepEqual(labels, refLabels) {
				t.Errorf("W=%d chunk=%d nosteal=%v: min-label outputs differ from default schedule",
					w, s.chunk, s.noSteal)
			}
		}
		if labelRef == nil {
			labelRef = refLabels
		} else if !reflect.DeepEqual(labelRef, refLabels) {
			t.Errorf("W=%d: min-label outputs differ across worker counts", w)
		}
	}
}

// The degree-aware partitioner changes vertex placement, not semantics:
// outputs and the partition-invariant counters match mod partitioning
// for every worker count, and a degree-partitioned run is itself
// bit-reproducible.
func TestDegreePartitionerDeterminism(t *testing.T) {
	const n = 80
	g := gen.TwitterLike(n, 5, 23)
	for _, w := range workerCounts() {
		mod := Config{NumWorkers: w, Seed: 8}
		deg := Config{NumWorkers: w, Seed: 8, Partitioner: PartitionDegree}
		mLabels, mSt := runMinLabel(t, g, n, mod)
		dLabels, dSt := runMinLabel(t, g, n, deg)
		dLabels2, dSt2 := runMinLabel(t, g, n, deg)
		if !reflect.DeepEqual(dLabels, dLabels2) || !reflect.DeepEqual(dSt, dSt2) {
			t.Errorf("W=%d: degree-partitioned run not reproducible", w)
		}
		if !reflect.DeepEqual(mLabels, dLabels) {
			t.Errorf("W=%d: degree-partitioned outputs differ from mod", w)
		}
		// Placement-dependent counters (network vs local bytes) may differ;
		// the semantic ones must not.
		if mSt.Supersteps != dSt.Supersteps || mSt.MessagesSent != dSt.MessagesSent ||
			mSt.VertexCalls != dSt.VertexCalls || mSt.ControlBytes != dSt.ControlBytes {
			t.Errorf("W=%d: semantic counters differ under degree partitioning:\nmod:    %+v\ndegree: %+v",
				w, mSt, dSt)
		}
		if mSt.NetworkBytes+mSt.LocalBytes != dSt.NetworkBytes+dSt.LocalBytes {
			t.Errorf("W=%d: total message bytes differ under degree partitioning", w)
		}
	}
}

// Crash-recovery replay stays bit-identical under the chunked, stealing
// scheduler (including with degree partitioning): the mid-phase crash
// leaves partially-executed chunks behind, and rollback must fully
// rebuild chunk state from the checkpoint.
func TestFaultRecoveryBitIdenticalChunked(t *testing.T) {
	const n = 60
	g := gen.TwitterLike(n, 4, 11)
	for _, part := range []PartitionKind{PartitionMod, PartitionDegree} {
		base := Config{NumWorkers: 4, Seed: 3, TraceSteps: true, ChunkSize: 16, Partitioner: part}
		labels, st := runMinLabel(t, g, n, base)

		faulty := base
		faulty.CheckpointEvery = 3
		faulty.Faults = FaultPlan{
			{Superstep: 2, Worker: 1},
			{Superstep: 4, Worker: 3},
		}
		fLabels, fst := runMinLabel(t, g, n, faulty)
		if !reflect.DeepEqual(labels, fLabels) {
			t.Errorf("part=%d: fault-injected labels differ from fault-free chunked run", part)
		}
		if a, b := statsModuloRecovery(st), statsModuloRecovery(fst); !reflect.DeepEqual(a, b) {
			t.Errorf("part=%d: fault-injected stats differ:\nfault-free: %+v\nfaulty:     %+v", part, a, b)
		}
		if fst.Recoveries != 2 {
			t.Errorf("part=%d: Recoveries = %d, want 2", part, fst.Recoveries)
		}
	}
}

// orderAllJob records every vertex's received payloads in arrival order
// for two message waves.
type orderAllJob struct {
	order [][]int64
}

func (j *orderAllJob) Schema() Schema { return Schema{MessagePayloadBytes: []int{8}} }
func (j *orderAllJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 3 {
		mc.Halt()
	}
}
func (j *orderAllJob) VertexCompute(vc *VertexContext) {
	for _, m := range vc.Messages() {
		j.order[vc.ID()] = append(j.order[vc.ID()], m.Int(0))
	}
	if vc.Superstep() < 2 {
		var m Msg
		m.SetInt(0, int64(vc.ID())*100+int64(vc.Superstep()))
		vc.SendToAllNbrs(m)
	}
}
