package pregel

import (
	"reflect"
	"runtime"
	"sort"
	"testing"

	"gmpregel/internal/graph/gen"
)

// workerCounts is the NumWorkers grid the determinism satellite sweeps.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// aggDetJob contributes to an AggAny, AggMin, and AggMax slot each
// superstep and records the merged values the master observes.
type aggDetJob struct {
	steps    int
	Observed [][3]int64 // per superstep: any, min, max(bits of float)
}

func (j *aggDetJob) Schema() Schema {
	return Schema{Aggregators: []AggSpec{
		{Name: "any", Kind: AggKindInt, Op: AggAny},
		{Name: "min", Kind: AggKindInt, Op: AggMin},
		{Name: "max", Kind: AggKindFloat, Op: AggMax},
	}}
}

func (j *aggDetJob) MasterCompute(mc *MasterContext) {
	if s := mc.Superstep(); s > 0 {
		j.Observed = append(j.Observed, [3]int64{
			mc.AggInt(0), mc.AggInt(1), int64(floatBits(mc.AggFloat(2))),
		})
		if s >= j.steps {
			mc.Halt()
		}
	}
}

func (j *aggDetJob) VertexCompute(vc *VertexContext) {
	v := int64(vc.ID())
	vc.AggInt(0, v*31+int64(vc.Superstep()))
	vc.AggInt(1, v-7)
	vc.AggFloat(2, float64(v)*1.5)
}

// For each worker count: two identical runs produce identical Stats and
// identical merged aggregator sequences. Across worker counts, the
// partition-invariant reductions (AggMin/AggMax) agree; AggAny is only
// required to be deterministic per configuration (its winner depends on
// the partitioning by design).
func TestAggregatorReductionDeterminism(t *testing.T) {
	const n, steps = 53, 6
	g := gen.TwitterLike(n, 5, 13)
	run := func(w int) (*aggDetJob, Stats) {
		j := &aggDetJob{steps: steps}
		st, err := Run(g, j, Config{NumWorkers: w, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return j, st
	}
	type outcome struct {
		job *aggDetJob
		st  Stats
	}
	byW := map[int]outcome{}
	for _, w := range workerCounts() {
		a, ast := run(w)
		b, bst := run(w)
		if !reflect.DeepEqual(ast, bst) {
			t.Errorf("W=%d: stats differ across identical runs:\n%+v\n%+v", w, ast, bst)
		}
		if !reflect.DeepEqual(a.Observed, b.Observed) {
			t.Errorf("W=%d: aggregator sequences differ across identical runs", w)
		}
		byW[w] = outcome{a, ast}
	}
	ref := byW[1]
	for _, w := range workerCounts() {
		o := byW[w]
		if len(o.job.Observed) != len(ref.job.Observed) {
			t.Fatalf("W=%d: %d observations, want %d", w, len(o.job.Observed), len(ref.job.Observed))
		}
		for s := range o.job.Observed {
			if o.job.Observed[s][1] != ref.job.Observed[s][1] || o.job.Observed[s][2] != ref.job.Observed[s][2] {
				t.Errorf("W=%d step %d: min/max not partition-invariant: %v vs %v",
					w, s, o.job.Observed[s], ref.job.Observed[s])
			}
		}
		if o.st.Supersteps != ref.st.Supersteps || o.st.MessagesSent != ref.st.MessagesSent ||
			o.st.VertexCalls != ref.st.VertexCalls {
			t.Errorf("W=%d: semantic counters differ from W=1: %+v vs %+v", w, o.st, ref.st)
		}
	}
}

// routeMessages inbox ordering: per worker count the received payload
// sequence is identical across runs, and across worker counts the
// multiset of delivered messages is invariant.
func TestInboxOrderDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = 47
	g := gen.TwitterLike(n, 6, 19)
	run := func(w int) [][]int64 {
		j := &orderAllJob{order: make([][]int64, n)}
		if _, err := Run(g, j, Config{NumWorkers: w, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		return j.order
	}
	var ref [][]int64
	for _, w := range workerCounts() {
		a, b := run(w), run(w)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("W=%d: inbox order differs across identical runs", w)
		}
		sorted := make([][]int64, n)
		for v := range a {
			s := append([]int64(nil), a[v]...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			sorted[v] = s
		}
		if ref == nil {
			ref = sorted
		} else if !reflect.DeepEqual(ref, sorted) {
			t.Errorf("W=%d: delivered message multiset not partition-invariant", w)
		}
	}
}

// Vertex outputs of a partition-independent job (min-label) are
// bit-identical across the full worker grid.
func TestVertexOutputsInvariantAcrossWorkerCounts(t *testing.T) {
	const n = 80
	g := gen.TwitterLike(n, 5, 23)
	var ref []int64
	for _, w := range workerCounts() {
		labels, _ := runMinLabel(t, g, n, Config{NumWorkers: w, Seed: 8})
		if ref == nil {
			ref = labels
		} else if !reflect.DeepEqual(ref, labels) {
			t.Errorf("W=%d: min-label outputs differ from W=1", w)
		}
	}
}

// orderAllJob records every vertex's received payloads in arrival order
// for two message waves.
type orderAllJob struct {
	order [][]int64
}

func (j *orderAllJob) Schema() Schema { return Schema{MessagePayloadBytes: []int{8}} }
func (j *orderAllJob) MasterCompute(mc *MasterContext) {
	if mc.Superstep() == 3 {
		mc.Halt()
	}
}
func (j *orderAllJob) VertexCompute(vc *VertexContext) {
	for _, m := range vc.Messages() {
		j.order[vc.ID()] = append(j.order[vc.ID()], m.Int(0))
	}
	if vc.Superstep() < 2 {
		var m Msg
		m.SetInt(0, int64(vc.ID())*100+int64(vc.Superstep()))
		vc.SendToAllNbrs(m)
	}
}
