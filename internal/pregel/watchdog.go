package pregel

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stall deterministically injects a worker stall for chaos testing: the
// target worker's first vertex chunk of the given superstep sleeps for
// Duration before executing, stalling the phase barrier and (when the
// watchdog is enabled and the stall overruns the superstep deadline)
// triggering supervised recovery. Like a Fault, a Stall fires at most
// once: the replay after recovery runs unstalled.
type Stall struct {
	Superstep int
	Worker    int
	Duration  time.Duration
}

// stallState tracks whether a planned stall has fired; fired persists
// across rollback so replays do not re-stall.
type stallState struct {
	Stall
	fired bool
}

// Watchdog tuning. The EWMA-derived deadline is deliberately generous
// (many multiples of the trailing superstep time, with a high floor) so
// a healthy run never trips; Config.StepDeadline overrides it for tests
// and latency-sensitive callers.
const (
	wdEwmaAlpha   = 0.3
	wdEwmaFactor  = 16
	wdMinDeadline = 250 * time.Millisecond
	wdMinPoll     = time.Millisecond
	wdMaxPoll     = 25 * time.Millisecond
)

// Backoff defaults for watchdog-supervised recovery.
const (
	defaultBackoffBase = time.Millisecond
	defaultBackoffCap  = 250 * time.Millisecond
)

// backoffFor returns the pause before the attempt-th supervised replay:
// capped exponential growth from base with deterministic, seed-derived
// jitter in [d/2, d], so a fixed (seed, attempt) pair always waits the
// same time and concurrent engines with different seeds desynchronize.
func backoffFor(seed int64, attempt int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		base = defaultBackoffBase
	}
	if cap <= 0 {
		cap = defaultBackoffCap
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	jitter := time.Duration(mix64(uint64(seed)^(uint64(attempt)+1)*0x9e3779b97f4a7c15) % uint64(half+1))
	return half + jitter
}

// watchdog supervises superstep wall time. The barrier goroutine arms it
// at the start of every superstep with a deadline derived from a
// trailing EWMA of superstep duration (or Config.StepDeadline), and
// disarms it at the end; a dedicated poller goroutine detects overruns
// and captures a diagnosis from race-safe sources only (atomic chunk
// cursors, published inbox depths, per-executor phase markers). The
// barrier goroutine later consumes the trip: it emits the diagnosis as a
// watchdog span and converts the stall into supervised
// rollback-and-replay with seeded capped-exponential backoff.
type watchdog struct {
	e *engine

	override time.Duration // Config.StepDeadline; 0 derives from the EWMA
	ewmaNS   float64       // trailing superstep wall time; barrier goroutine only

	armed      atomic.Bool
	startNS    atomic.Int64
	deadlineNS atomic.Int64
	stepNo     atomic.Int64
	tripped    atomic.Bool
	suspect    atomic.Int32

	mu   sync.Mutex
	diag string

	stopc  chan struct{}
	exited chan struct{}
}

func newWatchdog(e *engine, override time.Duration) *watchdog {
	w := &watchdog{e: e, override: override, stopc: make(chan struct{}), exited: make(chan struct{})}
	w.suspect.Store(-1)
	return w
}

// wdNowNS is the watchdog timebase: nanoseconds since engine creation.
//
//gm:nondeterministic-ok watchdog timebase only: feeds deadlines and diagnosis text, never Stats semantics or vertex state
//gm:noalloc
func (e *engine) wdNowNS() int64 { return time.Since(e.wdEpoch).Nanoseconds() }

// beginStep arms the watchdog for one superstep (master phase through
// routing). Barrier goroutine only; allocation-free.
//
//gm:noalloc
func (w *watchdog) beginStep(step int) {
	dl := w.override
	if dl <= 0 {
		if w.ewmaNS > 0 {
			dl = time.Duration(w.ewmaNS * wdEwmaFactor)
		}
		if dl < wdMinDeadline {
			dl = wdMinDeadline
		}
	}
	w.stepNo.Store(int64(step))
	w.deadlineNS.Store(int64(dl))
	w.startNS.Store(w.e.wdNowNS())
	w.tripped.Store(false)
	w.armed.Store(true)
}

// endStep disarms the watchdog, folds the measured superstep duration
// into the EWMA (a tripped superstep inflates it, so genuinely slow
// workloads converge to a deadline they fit), and reports whether the
// poller tripped during the superstep. Barrier goroutine only.
//
//gm:noalloc
func (w *watchdog) endStep() bool {
	w.armed.Store(false)
	dur := float64(w.e.wdNowNS() - w.startNS.Load())
	if w.ewmaNS == 0 {
		w.ewmaNS = dur
	} else {
		w.ewmaNS = wdEwmaAlpha*dur + (1-wdEwmaAlpha)*w.ewmaNS
	}
	return w.tripped.Load()
}

// diagnosis returns the trip diagnosis captured by the poller and the
// suspected worker.
func (w *watchdog) diagnosis() (string, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.diag, int(w.suspect.Load())
}

// run is the poller goroutine: sleep an adaptive fraction of the current
// deadline, check for overrun, capture at most one diagnosis per armed
// superstep. Steady state allocates nothing (one reused timer), so an
// enabled watchdog does not perturb the engine's zero-allocation
// contract; allocation happens only while capturing a trip.
func (w *watchdog) run() {
	defer close(w.exited)
	t := time.NewTimer(wdMaxPoll)
	defer t.Stop()
	for {
		poll := time.Duration(w.deadlineNS.Load()) / 8
		if poll < wdMinPoll {
			poll = wdMinPoll
		}
		if poll > wdMaxPoll {
			poll = wdMaxPoll
		}
		t.Reset(poll)
		select {
		case <-w.stopc:
			return
		case <-t.C:
		}
		if !w.armed.Load() {
			continue
		}
		now := w.e.wdNowNS()
		if now-w.startNS.Load() <= w.deadlineNS.Load() {
			continue
		}
		if !w.tripped.CompareAndSwap(false, true) {
			continue
		}
		w.capture(now)
	}
}

// capture builds the stall diagnosis from race-safe sources: per-worker
// chunk-queue cursors, published inbox depths, and per-executor phase
// markers. Runs on the poller goroutine; the barrier goroutine reads the
// result under mu after the phase completes.
func (w *watchdog) capture(now int64) {
	e := w.e
	var b strings.Builder
	fmt.Fprintf(&b, "superstep %d exceeded its %v deadline (%.1fms elapsed)",
		w.stepNo.Load(), time.Duration(w.deadlineNS.Load()), float64(now-w.startNS.Load())/1e6)
	suspect := -1
	for _, x := range e.executors {
		if ph := x.curPhase.Load(); ph >= 0 {
			fmt.Fprintf(&b, "; executor %d in %v phase", x.id, phaseKind(ph))
			if suspect < 0 {
				suspect = x.id
			}
		}
	}
	for _, wk := range e.workers {
		claimed := int(wk.cursor.Load())
		if claimed > len(wk.chunks) {
			claimed = len(wk.chunks)
		}
		fmt.Fprintf(&b, "; worker %d chunks %d/%d inbox %d",
			wk.index, claimed, len(wk.chunks), wk.inDepth.Load())
		if suspect < 0 && claimed < len(wk.chunks) {
			suspect = wk.index
		}
	}
	if suspect < 0 {
		suspect = 0
	}
	w.suspect.Store(int32(suspect))
	w.mu.Lock()
	w.diag = b.String()
	w.mu.Unlock()
}

// armStall consumes the first unfired stall planned for step and arms
// the target worker to sleep at the start of its first chunk.
func (e *engine) armStall(step int) {
	for i := range e.stalls {
		s := &e.stalls[i]
		if s.fired || s.Superstep != step {
			continue
		}
		s.fired = true
		wk := e.workers[s.Worker%e.numWorkers]
		wk.stallNS = int64(s.Duration)
		return
	}
}
