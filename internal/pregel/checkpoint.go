package pregel

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"gmpregel/internal/graph"
)

func floatBits(f float64) uint64        { return math.Float64bits(f) }
func floatFromBits(b uint64) float64    { return math.Float64frombits(b) }
func nodeFromU32(v uint32) graph.NodeID { return graph.NodeID(int32(v)) }

// Checkpointable is implemented by jobs whose state the engine snapshots
// at checkpoint barriers and restores on rollback. SnapshotState must
// capture every piece of state the job mutates during compute (property
// columns, scratch slices, master-side accumulators); RestoreState must
// bring the job back to exactly that state. Jobs that keep no state
// between supersteps may omit the interface: the engine then checkpoints
// only its own state (inboxes, active flags, globals, aggregators, RNG
// positions) and recovery remains sound.
type Checkpointable interface {
	SnapshotState() []byte
	RestoreState([]byte)
}

// countingSource is a math/rand Source that counts draws so a checkpoint
// can record the stream position and a rollback can restore it by
// replaying from the seed. It deliberately does not implement Source64:
// rand.Rand then derives every method from Int63, so the draw count
// fully determines the stream position. (rand.Rand.Read is the one
// method whose buffered byte state is not captured; compute functions
// must not use it.)
type countingSource struct {
	seed  int64
	src   rand.Source
	draws int64
}

func newCountingSource(seed int64) *countingSource {
	//gm:nondeterministic-ok seeded from Config.Seed and draw-counted, so checkpoints replay the exact stream position
	return &countingSource{seed: seed, src: rand.NewSource(seed)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// jump rewinds to the seed and fast-forwards the stream to the given
// draw count.
func (s *countingSource) jump(draws int64) {
	s.src.Seed(s.seed)
	s.draws = 0
	for s.draws < draws {
		s.draws++
		s.src.Int63()
	}
}

// checkpoint is one recovery point: the engine state serialized at the
// barrier entering superstep step, plus the job's own snapshot.
type checkpoint struct {
	step int
	data []byte // engine state (stats, master, globals, aggregators, workers)
	job  []byte // Checkpointable snapshot; nil when the job is stateless
}

// checkpointDue reports whether a checkpoint should be taken at the
// barrier entering step. With CheckpointEvery = k, checkpoints land
// before supersteps 0, k, 2k, …; with only a fault plan configured, a
// single superstep-0 checkpoint makes full replay possible. A fresh
// rollback target for the same step is never retaken (the state would be
// byte-identical).
func (e *engine) checkpointDue(step int) bool {
	if !e.ckptOn {
		return false
	}
	if e.ckpt != nil && e.ckpt.step == step {
		return false
	}
	if e.cfg.CheckpointEvery > 0 {
		return step%e.cfg.CheckpointEvery == 0
	}
	return step == 0
}

// takeCheckpoint snapshots engine and job state at the barrier entering
// step and accounts the serialized size. The previous snapshot is
// retained as the fallback target for torn-write recovery. Spilled
// inboxes are restored to RAM first (the encoder serializes resident
// state); the post-checkpoint govern pass re-spills if the budget still
// demands it.
func (e *engine) takeCheckpoint(step int) error {
	if e.gov != nil {
		if err := e.unspillAll(); err != nil {
			return err
		}
	}
	ck := &checkpoint{step: step, data: e.encodeState()}
	if c, ok := e.job.(Checkpointable); ok {
		ck.job = c.SnapshotState()
	}
	e.ckptPrev = e.ckpt
	e.ckpt = ck
	e.stats.Checkpoints++
	e.stats.CheckpointBytes += int64(len(ck.data) + len(ck.job))
	if e.armCheckpointFault(step) {
		// Injected crash mid-write: flip a byte in the middle of the
		// snapshot, as a torn write would. The corruption is detected by
		// verifyFrame on the next rollback, which falls back to ckptPrev.
		ck.data[len(ck.data)/2] ^= 0xFF
	}
	return nil
}

// rollback restores the last checkpoint after an injected fault and
// returns the superstep to resume from. A snapshot that fails its
// integrity frame (torn write, bit rot) is discarded in favor of the
// retained previous checkpoint. Rollback fails when no valid checkpoint
// exists or the recovery budget is exhausted; the caller then surfaces
// the error with whatever partial Stats accumulated.
func (e *engine) rollback(f *InjectedFault) (int, error) {
	if e.ckpt == nil {
		return 0, fmt.Errorf("%w (no checkpoint to recover from)", f)
	}
	if e.stats.Recoveries >= e.cfg.MaxRecoveries {
		return 0, fmt.Errorf("%w (recovery budget of %d exhausted)", f, e.cfg.MaxRecoveries)
	}
	if !verifyFrame(e.ckpt.data) {
		if e.ckptPrev == nil || !verifyFrame(e.ckptPrev.data) {
			return 0, fmt.Errorf("%w (checkpoint at superstep %d is corrupt and no valid fallback exists)",
				f, e.ckpt.step)
		}
		// Promote the fallback; checkpointDue will retake the discarded
		// step with a fresh snapshot when replay reaches it.
		e.ckpt = e.ckptPrev
		e.ckptPrev = nil
	}
	// Supersteps whose work is re-executed: everything since the
	// checkpoint plus the failed superstep itself.
	recovered := f.Superstep - e.ckpt.step + 1
	if err := e.restoreCheckpoint(); err != nil {
		return 0, err
	}
	e.stats.Recoveries++
	e.stats.RecoveredSupersteps += recovered
	return e.ckpt.step, nil
}

func (e *engine) restoreCheckpoint() (err error) {
	if derr := e.decodeState(e.ckpt.data); derr != nil {
		return fmt.Errorf("pregel: corrupt checkpoint: %w", derr)
	}
	if c, ok := e.job.(Checkpointable); ok && e.ckpt.job != nil {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("pregel: job RestoreState panicked: %v", r)
			}
		}()
		c.RestoreState(e.ckpt.job)
	}
	return nil
}

// ---- Engine state serialization ----
//
// The engine state at a barrier is serialized to a flat byte buffer:
// master return/halt flags, the master RNG draw count, globals,
// aggregator cells, the Stats counters a rollback must rewind, and per
// worker the active flags, routed inbox (CSR), and RNG draw count.
// Outboxes, combiner indexes, and per-step counters are never stored:
// at a checkpoint barrier their contents are either already routed into
// the serialized inboxes or per-step transients, so restore just
// truncates/clears them (capacity is retained for the replay).

// checkpointVersion is bumped whenever the serialized layout changes;
// decodeState rejects any other version rather than misreading bytes.
// History: v1 encoded three per-step counters; v2 extends StepStats to
// six (adds NetworkMsgs, LocalBytes, ControlBytes); v3 wraps the payload
// in an integrity frame —
//
//	[version:u8][payloadLen:u64 LE][payload][fnv64a(payload):u64 LE]
//
// — so a torn or bit-flipped snapshot is detected instead of decoded;
// v4 appends the direction-optimizer history (one byte per decided
// superstep) so rollback-and-replay re-executes the identical push/pull
// schedule.
const checkpointVersion = 4

// frameHeaderBytes is the version byte plus the payload-length word;
// frameTrailerBytes the checksum word.
const (
	frameHeaderBytes  = 1 + 8
	frameTrailerBytes = 8
)

// fnv64a is the FNV-1a hash of b (the checkpoint integrity checksum).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// verifyFrame reports whether data is a structurally intact v3
// checkpoint: version, exact length, and payload checksum all match.
func verifyFrame(data []byte) bool {
	if len(data) < frameHeaderBytes+frameTrailerBytes || data[0] != checkpointVersion {
		return false
	}
	plen := binary.LittleEndian.Uint64(data[1:frameHeaderBytes])
	if uint64(len(data)) != frameHeaderBytes+plen+frameTrailerBytes {
		return false
	}
	payload := data[frameHeaderBytes : frameHeaderBytes+plen]
	return fnv64a(payload) == binary.LittleEndian.Uint64(data[frameHeaderBytes+plen:])
}

type stateEnc struct{ b []byte }

func (w *stateEnc) u8(v byte)    { w.b = append(w.b, v) }
func (w *stateEnc) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *stateEnc) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *stateEnc) i64(v int64)  { w.u64(uint64(v)) }
func (w *stateEnc) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type stateDec struct {
	b   []byte
	off int
	bad bool
}

func (r *stateDec) take(n int) []byte {
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return make([]byte, n)
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}
func (r *stateDec) u8() byte    { return r.take(1)[0] }
func (r *stateDec) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *stateDec) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *stateDec) i64() int64  { return int64(r.u64()) }
func (r *stateDec) bool() bool  { return r.u8() != 0 }

func (e *engine) encodeState() []byte {
	w := &stateEnc{}
	w.u8(checkpointVersion)
	w.u64(0) // payload length, patched once the payload is complete
	w.bool(e.halted)
	w.bool(e.retSet)
	w.bool(e.retIsInt)
	w.i64(e.retInt)
	w.u64(floatBits(e.retFloat))
	w.i64(e.masterSrc.draws)
	w.u32(uint32(len(e.globals)))
	for _, g := range e.globals {
		w.u64(g)
	}
	w.i64(e.globalBytes)
	w.u32(uint32(len(e.aggValues)))
	for _, c := range e.aggValues {
		w.bool(c.set)
		w.i64(c.i)
		w.u64(floatBits(c.f))
	}
	w.i64(int64(e.stats.Supersteps))
	w.i64(e.stats.MessagesSent)
	w.i64(e.stats.NetworkMsgs)
	w.i64(e.stats.NetworkBytes)
	w.i64(e.stats.LocalBytes)
	w.i64(e.stats.ControlBytes)
	w.i64(e.stats.VertexCalls)
	w.u32(uint32(len(e.stats.Steps)))
	for _, s := range e.stats.Steps {
		w.i64(s.Messages)
		w.i64(s.NetworkBytes)
		w.i64(s.VertexCalls)
		w.i64(s.NetworkMsgs)
		w.i64(s.LocalBytes)
		w.i64(s.ControlBytes)
	}
	w.u32(uint32(len(e.dirHistory)))
	w.b = append(w.b, e.dirHistory...)
	w.u32(uint32(len(e.workers)))
	for _, wk := range e.workers {
		// Layout compatibility: v2 reserved a per-worker RNG draw count
		// here. Vertex RNG streams are now seeded per (vertex, superstep)
		// and carry no position, so the slot is written as zero and
		// ignored on decode.
		w.i64(0)
		w.u32(uint32(len(wk.active)))
		for _, a := range wk.active {
			w.bool(a)
		}
		w.u32(uint32(len(wk.inFlat)))
		for i := range wk.inFlat {
			m := &wk.inFlat[i]
			w.u32(uint32(m.Dst))
			w.u8(m.Type)
			for _, v := range m.V {
				w.u64(v)
			}
		}
		w.u32(uint32(len(wk.inOff)))
		for _, o := range wk.inOff {
			w.u32(uint32(o))
		}
	}
	plen := len(w.b) - frameHeaderBytes
	binary.LittleEndian.PutUint64(w.b[1:frameHeaderBytes], uint64(plen))
	w.u64(fnv64a(w.b[frameHeaderBytes : frameHeaderBytes+plen]))
	return w.b
}

// decodeState restores the engine to the serialized barrier state,
// clearing every transient a crashed superstep may have dirtied
// (outboxes, combiner indexes, per-step counters, local aggregator
// cells, worker errors). The monotone recovery-cost counters
// (Recoveries, RecoveredSupersteps, Checkpoints, CheckpointBytes) are
// preserved, not rewound.
func (e *engine) decodeState(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("truncated checkpoint (%d bytes)", len(data))
	}
	if v := data[0]; v != checkpointVersion {
		return fmt.Errorf("unknown checkpoint version %d", v)
	}
	if len(data) < frameHeaderBytes {
		return fmt.Errorf("truncated checkpoint (%d bytes)", len(data))
	}
	plen := binary.LittleEndian.Uint64(data[1:frameHeaderBytes])
	if uint64(len(data)) < frameHeaderBytes+plen+frameTrailerBytes {
		return fmt.Errorf("truncated checkpoint (%d bytes)", len(data))
	}
	payload := data[frameHeaderBytes : frameHeaderBytes+plen]
	if fnv64a(payload) != binary.LittleEndian.Uint64(data[frameHeaderBytes+plen:]) {
		return fmt.Errorf("checkpoint checksum mismatch")
	}
	r := &stateDec{b: payload}
	e.halted = r.bool()
	e.retSet = r.bool()
	e.retIsInt = r.bool()
	e.retInt = r.i64()
	e.retFloat = floatFromBits(r.u64())
	e.masterSrc.jump(r.i64())
	if n := int(r.u32()); n != len(e.globals) {
		return fmt.Errorf("global count mismatch: %d vs %d", n, len(e.globals))
	}
	for i := range e.globals {
		e.globals[i] = r.u64()
	}
	e.globalBytes = r.i64()
	if n := int(r.u32()); n != len(e.aggValues) {
		return fmt.Errorf("aggregator count mismatch: %d vs %d", n, len(e.aggValues))
	}
	for i := range e.aggValues {
		e.aggValues[i] = aggCell{set: r.bool(), i: r.i64(), f: floatFromBits(r.u64())}
	}
	rec, recSteps, cks, ckb := e.stats.Recoveries, e.stats.RecoveredSupersteps, e.stats.Checkpoints, e.stats.CheckpointBytes
	sp, spb, mpk, wds := e.stats.Spills, e.stats.SpillBytes, e.stats.MemoryPeakBytes, e.stats.WatchdogStalls
	e.stats = Stats{
		Supersteps:   int(r.i64()),
		MessagesSent: r.i64(),
		NetworkMsgs:  r.i64(),
		NetworkBytes: r.i64(),
		LocalBytes:   r.i64(),
		ControlBytes: r.i64(),
		VertexCalls:  r.i64(),
	}
	e.stats.Recoveries, e.stats.RecoveredSupersteps, e.stats.Checkpoints, e.stats.CheckpointBytes = rec, recSteps, cks, ckb
	e.stats.Spills, e.stats.SpillBytes, e.stats.MemoryPeakBytes, e.stats.WatchdogStalls = sp, spb, mpk, wds
	if n := int(r.u32()); n > 0 {
		e.stats.Steps = make([]StepStats, n)
		for i := range e.stats.Steps {
			e.stats.Steps[i] = StepStats{
				Messages:     r.i64(),
				NetworkBytes: r.i64(),
				VertexCalls:  r.i64(),
				NetworkMsgs:  r.i64(),
				LocalBytes:   r.i64(),
				ControlBytes: r.i64(),
			}
		}
	}
	// Direction history is monotone (like the recovery counters): the
	// live history is always at least as long as the snapshot's, and its
	// prefix is identical — chooseDirection replays recorded entries, so
	// a longer live history only extends the snapshot. Keep whichever is
	// longer so a restored run re-executes the identical schedule.
	if n := int(r.u32()); n > len(e.dirHistory) {
		e.dirHistory = append(e.dirHistory[:0], r.take(n)...)
	} else {
		r.take(n)
	}
	if n := int(r.u32()); n != len(e.workers) {
		return fmt.Errorf("worker count mismatch: %d vs %d", n, len(e.workers))
	}
	for _, wk := range e.workers {
		r.i64() // reserved per-worker RNG draw count (always zero; see encode)
		if n := int(r.u32()); n != len(wk.active) {
			return fmt.Errorf("worker %d active-flag count mismatch", wk.index)
		}
		wk.numActive = 0
		for i := range wk.active {
			wk.active[i] = r.bool()
			if wk.active[i] {
				wk.numActive++
			}
		}
		wk.inFlat = wk.inFlat[:0]
		for i, n := 0, int(r.u32()); i < n; i++ {
			var m Msg
			m.Dst = nodeFromU32(r.u32())
			m.Type = r.u8()
			for s := range m.V {
				m.V[s] = r.u64()
			}
			wk.inFlat = append(wk.inFlat, m)
		}
		if n := int(r.u32()); n != len(wk.inOff) {
			return fmt.Errorf("worker %d inbox-offset count mismatch", wk.index)
		}
		for i := range wk.inOff {
			wk.inOff[i] = int32(r.u32())
		}
		wk.inTotal = len(wk.inFlat)
		// Transients a crashed superstep may have dirtied. Outbox, raw-log
		// and box slices keep their capacity: replay reuses them. Chunk
		// active counters are recomputed from the restored flags so the
		// chunk/worker invariant holds before the next vertex phase.
		for d := range wk.outboxes {
			wk.outboxes[d] = wk.outboxes[d][:0]
		}
		if wk.combineIdx != nil {
			clear(wk.combineIdx)
		}
		for ci := range wk.chunks {
			ck := &wk.chunks[ci]
			na := int32(0)
			fe := int64(0)
			for li := ck.lo; li < ck.hi; li++ {
				if wk.active[li] {
					na++
					fe += int64(e.g.OutDegree(wk.ids[li]))
				}
			}
			ck.numActive = na
			ck.frontEdges = fe
			for d := range ck.boxes {
				ck.boxes[d] = ck.boxes[d][:0]
			}
			ck.raw = ck.raw[:0]
			for s := range ck.agg {
				ck.agg[s] = aggCell{}
			}
			ck.msgs, ck.netMsgs, ck.netBytes, ck.localBytes, ck.calls = 0, 0, 0, 0, 0
			ck.err = nil
		}
		wk.msgs, wk.netMsgs, wk.netBytes, wk.localBytes, wk.calls = 0, 0, 0, 0, 0
		for s := range wk.aggPartial {
			wk.aggPartial[s] = aggCell{}
		}
		wk.cursor.Store(0)
		wk.pendingChunks.Store(0)
		wk.crashed.Store(false)
		wk.faultAt = -1
		wk.chunkFaultAt = -1
		wk.stealFault.Store(false)
		wk.foldFault = false
		wk.routeFaultOn = false
		wk.phaseErr = nil
		wk.stallNS = 0
		wk.spilled = false
		wk.pull = false
		wk.inDepth.Store(int64(wk.inTotal))
	}
	e.pullStep = false
	for _, x := range e.executors {
		x.err = nil
		x.rngStep = -1
	}
	if r.bad {
		return fmt.Errorf("truncated checkpoint (%d bytes)", len(data))
	}
	return nil
}
