package pregel

import "gmpregel/internal/graph"

// PartitionKind selects how vertices are assigned to workers.
type PartitionKind uint8

// Partitioners. PartitionMod is the classic hash partitioning
// (owner = id mod W, the GPS default): cheap, degree-oblivious, and the
// layout every release before the skew-aware scheduler used.
// PartitionDegree assigns contiguous vertex ranges balanced by outgoing
// edge mass (weight 1 + outDegree per vertex), so a worker owning a
// power-law hub owns correspondingly fewer other vertices. Owner lookup
// stays O(1): range boundaries are aligned to a power-of-two block grid
// and resolved through a flat block→owner table (at most 2^14 entries),
// one shift and one load per message instead of a multiply-high.
const (
	PartitionMod PartitionKind = iota
	PartitionDegree
)

// maxPartBlocks bounds the block→owner table. The block size is the
// smallest power of two keeping ceil(n / blockSize) within this bound,
// so the table stays ≤ 64 KiB and balance granularity degrades
// gracefully (n ≤ 16384 gets per-vertex cuts).
const maxPartBlocks = 1 << 14

// shardBounds groups w workers into n contiguous source shards for the
// routing staging: bounds[s]..bounds[s+1] is shard s's worker range.
// Shards are balanced (sizes differ by at most one) and the mapping is
// a pure function of (w, n), so shard geometry — like chunk geometry —
// never depends on execution order.
func shardBounds(w, n int) []int32 {
	bounds := make([]int32, n+1)
	for s := 0; s <= n; s++ {
		bounds[s] = int32(s * w / n)
	}
	return bounds
}

// degreeRanges computes the degree-aware contiguous partition of g into
// w ranges: starts[k] is the first vertex owned by worker k
// (starts[w] = n), and blocks[b] is the owner of vertex block b under
// the returned shift. Boundaries are block-aligned so the table is
// exact; within that granularity each worker receives as close to
// total_weight/w as the greedy sweep allows.
func degreeRanges(g *graph.Directed, w int) (starts []int32, blocks []int32, shift uint32) {
	n := g.NumNodes()
	for (n >> shift) > maxPartBlocks {
		shift++
	}
	numBlocks := 0
	if n > 0 {
		numBlocks = ((n - 1) >> shift) + 1
	}
	weight := make([]int64, numBlocks)
	var total int64
	for v := 0; v < n; v++ {
		d := int64(1 + g.OutDegree(graph.NodeID(v)))
		weight[v>>shift] += d
		total += d
	}
	starts = make([]int32, w+1)
	starts[w] = int32(n)
	blocks = make([]int32, numBlocks)
	owner := 0
	var cum int64
	for b := 0; b < numBlocks; b++ {
		blocks[b] = int32(owner)
		cum += weight[b]
		// Advance to the next worker once this one's share of the total
		// weight is met; a single oversized block may satisfy several
		// targets at once, leaving later workers with empty (valid) ranges.
		for owner+1 < w && cum*int64(w) >= total*int64(owner+1) {
			owner++
			next := int32((b + 1) << shift)
			if next > int32(n) {
				next = int32(n)
			}
			starts[owner] = next
		}
	}
	// Workers never reached by the sweep (more workers than blocks) own
	// empty tail ranges.
	for k := owner + 1; k < w; k++ {
		starts[k] = int32(n)
	}
	return starts, blocks, shift
}
