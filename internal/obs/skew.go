package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseSkew is one row of a SkewReport: the wall-time distribution of
// one phase across the workers (or engine-scoped spans) that ran it.
type PhaseSkew struct {
	Phase   string `json:"phase"`
	Spans   int    `json:"spans"`
	TotalNS int64  `json:"total_ns"`
	// Workers is the number of distinct span scopes (worker indexes,
	// counting the engine scope -1 as one) contributing to the phase.
	Workers   int     `json:"workers"`
	MaxNS     int64   `json:"max_ns"`
	MedianNS  int64   `json:"median_ns"`
	MaxWorker int     `json:"max_worker"`
	Skew      float64 `json:"skew"` // MaxNS / MedianNS; 1.0 means perfectly balanced
}

// SkewReport summarizes per-phase load imbalance derived from a trace:
// for each phase, the total time, and the max and median of per-worker
// time totals. A vertex-compute skew well above 1 is the signature of a
// hot partition (e.g. a preferential-attachment hub).
type SkewReport struct {
	Phases []PhaseSkew `json:"phases"`
}

// Skew derives a SkewReport from spans (any order). Per-worker time is
// totalled across supersteps before the max/median are taken, so the
// report reflects whole-run imbalance rather than per-step noise.
func Skew(spans []Span) *SkewReport {
	type key struct {
		phase  Phase
		worker int
	}
	totals := map[key]int64{}
	counts := map[Phase]int{}
	for _, s := range spans {
		if s.Phase == PhaseRun {
			continue
		}
		totals[key{s.Phase, s.Worker}] += s.DurNS
		counts[s.Phase]++
	}
	rep := &SkewReport{}
	for p := PhaseMaster; p < PhaseRun; p++ {
		if counts[p] == 0 {
			continue
		}
		var durs []int64
		var workers []int
		for k, d := range totals {
			if k.phase == p {
				durs = append(durs, d)
				workers = append(workers, k.worker)
			}
		}
		sort.Sort(&byDur{durs, workers})
		row := PhaseSkew{
			Phase:     p.String(),
			Spans:     counts[p],
			Workers:   len(durs),
			MaxNS:     durs[len(durs)-1],
			MaxWorker: workers[len(durs)-1],
			MedianNS:  durs[len(durs)/2],
		}
		for _, d := range durs {
			row.TotalNS += d
		}
		if row.MedianNS > 0 {
			row.Skew = float64(row.MaxNS) / float64(row.MedianNS)
		}
		rep.Phases = append(rep.Phases, row)
	}
	return rep
}

type byDur struct {
	durs    []int64
	workers []int
}

func (b *byDur) Len() int { return len(b.durs) }
func (b *byDur) Less(i, j int) bool {
	if b.durs[i] != b.durs[j] {
		return b.durs[i] < b.durs[j]
	}
	return b.workers[i] < b.workers[j]
}
func (b *byDur) Swap(i, j int) {
	b.durs[i], b.durs[j] = b.durs[j], b.durs[i]
	b.workers[i], b.workers[j] = b.workers[j], b.workers[i]
}

// Row returns the row for the named phase, if present.
func (r *SkewReport) Row(phase string) (PhaseSkew, bool) {
	for _, p := range r.Phases {
		if p.Phase == phase {
			return p, true
		}
	}
	return PhaseSkew{}, false
}

// String renders the report as an aligned table.
func (r *SkewReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %7s %8s %12s %12s %12s %6s\n",
		"phase", "spans", "workers", "total", "max", "median", "skew")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-15s %7d %8d %12s %12s %12s %6.2f\n",
			p.Phase, p.Spans, p.Workers,
			time.Duration(p.TotalNS).Round(time.Microsecond),
			time.Duration(p.MaxNS).Round(time.Microsecond),
			time.Duration(p.MedianNS).Round(time.Microsecond),
			p.Skew)
	}
	return b.String()
}
