package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseSkew is one row of a SkewReport: the wall-time distribution of
// one phase across the scopes (workers, executors, or the engine scope)
// that ran it.
type PhaseSkew struct {
	Phase   string `json:"phase"`
	Spans   int    `json:"spans"`
	TotalNS int64  `json:"total_ns"`
	// Workers is the number of distinct span scopes contributing to the
	// phase: worker indexes for most phases (counting the engine scope -1
	// as one), executor indexes for the chunk phase — chunk skew measures
	// how evenly the pool shared the work after stealing, whereas
	// vertex-compute skew measures how uneven the partitions themselves
	// are.
	Workers   int     `json:"workers"`
	MaxNS     int64   `json:"max_ns"`
	MedianNS  int64   `json:"median_ns"`
	MaxWorker int     `json:"max_worker"`
	Skew      float64 `json:"skew"` // MaxNS / MedianNS; 1.0 means perfectly balanced
	// StolenSpans/StolenNS count the phase's spans whose executing scope
	// differed from the owning worker (chunk spans moved by work
	// stealing). Zero — and omitted from JSON — for every other phase.
	StolenSpans int   `json:"stolen_spans,omitempty"`
	StolenNS    int64 `json:"stolen_ns,omitempty"`
	// OwnerSkew/OwnerMaxWorker re-derive the chunk row with spans
	// attributed to the OWNING worker instead of the executor that ran
	// them. With stealing on, executor attribution measures pool
	// utilization but wildly inflates the headline Skew (a thief
	// executor is billed for every chunk it rescued); the owner-
	// normalized column answers the orthogonal question "how uneven was
	// the work the partitions generated", independent of who ran it.
	// Unlike Skew it is max/mean (the classic load-imbalance factor λ),
	// not max/median, so it stays informative at two workers where the
	// upper-median convention pins max/median to 1.
	// Zero — and omitted from JSON — for every phase but chunk.
	OwnerSkew      float64 `json:"owner_skew,omitempty"`
	OwnerMaxWorker int     `json:"owner_max_worker,omitempty"`
}

// SkewReport summarizes per-phase load imbalance derived from a trace:
// for each phase, the total time, and the max and median of per-scope
// time totals. A vertex-compute skew well above 1 is the signature of a
// hot partition (e.g. a preferential-attachment hub); a chunk skew near
// 1 alongside it means work stealing redistributed that partition across
// the executor pool.
type SkewReport struct {
	Phases []PhaseSkew `json:"phases"`
}

// Skew derives a SkewReport from spans (any order). Per-scope time is
// totalled across supersteps before the max/median are taken, so the
// report reflects whole-run imbalance rather than per-step noise.
//
// Edge cases, pinned by tests: a phase with no spans produces no row
// (never a division by zero); a phase whose spans all have zero
// duration reports Skew 0 (the 0/0 case is defined as "no signal", not
// 1.0); a single-scope phase reports max == median, Skew 1.0 when the
// duration is nonzero; with an even number of scopes the median is the
// upper of the two middle values (median-of-2 = max, giving Skew 1.0 —
// a deliberate, conservative choice for the W=2 case).
func Skew(spans []Span) *SkewReport {
	type key struct {
		phase Phase
		scope int
	}
	totals := map[key]int64{}
	counts := map[Phase]int{}
	stolenSpans := map[Phase]int{}
	stolenNS := map[Phase]int64{}
	ownerTotals := map[int]int64{} // chunk time by owning worker
	for _, s := range spans {
		if s.Phase == PhaseRun {
			continue
		}
		scope := s.Worker
		if s.Phase == PhaseChunk {
			// Chunk spans are attributed to the executor that ran them,
			// not the worker that owns them: the row then answers "did the
			// pool stay busy", the question stealing exists to fix. The
			// owner-normalized totals feed the OwnerSkew column alongside.
			scope = s.Executor
			if s.Stolen {
				stolenSpans[s.Phase]++
				stolenNS[s.Phase] += s.DurNS
			}
			ownerTotals[s.Worker] += s.DurNS
		}
		totals[key{s.Phase, scope}] += s.DurNS
		counts[s.Phase]++
	}
	rep := &SkewReport{}
	for p := PhaseMaster; p < PhaseRun; p++ {
		if counts[p] == 0 {
			continue
		}
		var durs []int64
		var scopes []int
		for k, d := range totals {
			if k.phase == p {
				durs = append(durs, d)
				scopes = append(scopes, k.scope)
			}
		}
		sort.Sort(&byDur{durs, scopes})
		row := PhaseSkew{
			Phase:       p.String(),
			Spans:       counts[p],
			Workers:     len(durs),
			MaxNS:       durs[len(durs)-1],
			MaxWorker:   scopes[len(durs)-1],
			MedianNS:    durs[len(durs)/2],
			StolenSpans: stolenSpans[p],
			StolenNS:    stolenNS[p],
		}
		for _, d := range durs {
			row.TotalNS += d
		}
		if row.MedianNS > 0 {
			row.Skew = float64(row.MaxNS) / float64(row.MedianNS)
		}
		if p == PhaseChunk && len(ownerTotals) > 0 {
			var odurs []int64
			var oscopes []int
			var osum int64
			for w, d := range ownerTotals {
				odurs = append(odurs, d)
				oscopes = append(oscopes, w)
				osum += d
			}
			sort.Sort(&byDur{odurs, oscopes})
			row.OwnerMaxWorker = oscopes[len(odurs)-1]
			if osum > 0 {
				mean := float64(osum) / float64(len(odurs))
				row.OwnerSkew = float64(odurs[len(odurs)-1]) / mean
			}
		}
		rep.Phases = append(rep.Phases, row)
	}
	return rep
}

type byDur struct {
	durs   []int64
	scopes []int
}

func (b *byDur) Len() int { return len(b.durs) }
func (b *byDur) Less(i, j int) bool {
	if b.durs[i] != b.durs[j] {
		return b.durs[i] < b.durs[j]
	}
	return b.scopes[i] < b.scopes[j]
}
func (b *byDur) Swap(i, j int) {
	b.durs[i], b.durs[j] = b.durs[j], b.durs[i]
	b.scopes[i], b.scopes[j] = b.scopes[j], b.scopes[i]
}

// Row returns the row for the named phase, if present.
func (r *SkewReport) Row(phase string) (PhaseSkew, bool) {
	for _, p := range r.Phases {
		if p.Phase == phase {
			return p, true
		}
	}
	return PhaseSkew{}, false
}

// String renders the report as an aligned table.
func (r *SkewReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %7s %8s %12s %12s %12s %6s %10s %8s\n",
		"phase", "spans", "workers", "total", "max", "median", "skew", "owner-skew", "stolen")
	for _, p := range r.Phases {
		owner := "-"
		if p.OwnerSkew > 0 {
			owner = fmt.Sprintf("%.2f", p.OwnerSkew)
		}
		fmt.Fprintf(&b, "%-15s %7d %8d %12s %12s %12s %6.2f %10s %8d\n",
			p.Phase, p.Spans, p.Workers,
			time.Duration(p.TotalNS).Round(time.Microsecond),
			time.Duration(p.MaxNS).Round(time.Microsecond),
			time.Duration(p.MedianNS).Round(time.Microsecond),
			p.Skew, owner, p.StolenSpans)
	}
	return b.String()
}
