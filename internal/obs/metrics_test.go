package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "jobs", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Re-registration returns the same series.
	if reg.Counter("jobs_total", "jobs", L("kind", "a")).Value() != 5 {
		t.Error("re-registration did not return the same series")
	}
	// A different label set is a different series.
	if reg.Counter("jobs_total", "jobs", L("kind", "b")).Value() != 0 {
		t.Error("label sets are not independent")
	}

	g := reg.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}

	defer func() {
		if recover() == nil {
			t.Error("counter decrease should panic")
		}
	}()
	c.Add(-1)
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should be rejected", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "op latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.5 || got > 5.6 {
		t.Errorf("sum = %v, want 5.555", got)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "things", L("q", `tricky"label\with`+"\n")).Add(3)
	reg.Gauge("b", "level").Set(0.25)
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total things",
		"# TYPE a_total counter",
		`a_total{q="tricky\"label\\with\n"} 3`,
		"# TYPE b gauge",
		"b 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestWriteJSONValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c").Inc()
	reg.Histogram("h", "h", []float64{1, 2}).Observe(1.5)
	var b bytes.Buffer
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []json.RawMessage
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Errorf("got %d families, want 2", len(doc.Metrics))
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", DurationBuckets())
	if n := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(2) }); n != 0 {
		t.Errorf("counter hot path allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1); g.Add(0.5) }); n != 0 {
		t.Errorf("gauge hot path allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.001) }); n != 0 {
		t.Errorf("histogram hot path allocates %v/op", n)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("p_seconds", "", nil)
	c := reg.Counter("p_total", "")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				h.Observe(0.01)
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 || h.Count() != 4000 {
		t.Errorf("lost updates: counter=%d histogram=%d", c.Value(), h.Count())
	}
}
