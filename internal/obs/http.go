package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the introspection endpoint:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   JSON rendering of reg
//	/healthz        liveness: {"status":"ok","uptime_ns":...}
//	/run            live run snapshot from live (404 when live is nil)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// reg may be nil (then /metrics serves an empty registry). The handler
// is safe to serve while runs are in flight: instruments are atomic and
// Live is locked.
func Handler(reg *Registry, live *Live) http.Handler {
	if reg == nil {
		reg = NewRegistry()
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":    "ok",
			"uptime_ns": time.Since(start).Nanoseconds(),
		})
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		if live == nil {
			http.Error(w, "no live observer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(live.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
