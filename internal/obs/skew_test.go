package obs

import (
	"strings"
	"testing"
)

// Satellite audit: the skew report's edge cases — empty traces, phases
// with zero-duration spans, a single worker, even scope counts, and the
// engine scope — each have a pinned, documented answer instead of a
// division by zero or an accidental NaN.
func TestSkewReportEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span
		phase string
		// wantRow false asserts the phase is absent entirely.
		wantRow    bool
		workers    int
		maxNS      int64
		medianNS   int64
		skew       float64
		totalPhase int // expected number of phase rows in the report
	}{
		{
			name:       "empty trace",
			spans:      nil,
			phase:      "vertex-compute",
			wantRow:    false,
			totalPhase: 0,
		},
		{
			name:       "run span only",
			spans:      []Span{{Worker: -1, Phase: PhaseRun, DurNS: 100}},
			phase:      "run",
			wantRow:    false,
			totalPhase: 0,
		},
		{
			name: "zero-duration spans give skew 0, not NaN",
			spans: []Span{
				{Worker: 0, Phase: PhaseVertexCompute, DurNS: 0},
				{Worker: 1, Phase: PhaseVertexCompute, DurNS: 0},
			},
			phase:   "vertex-compute",
			wantRow: true, workers: 2, maxNS: 0, medianNS: 0, skew: 0,
			totalPhase: 1,
		},
		{
			name: "single worker is perfectly balanced",
			spans: []Span{
				{Superstep: 0, Worker: 0, Phase: PhaseVertexCompute, DurNS: 70},
				{Superstep: 1, Worker: 0, Phase: PhaseVertexCompute, DurNS: 30},
			},
			phase:   "vertex-compute",
			wantRow: true, workers: 1, maxNS: 100, medianNS: 100, skew: 1,
			totalPhase: 1,
		},
		{
			name: "two workers: median is the upper middle (skew 1 by design)",
			spans: []Span{
				{Worker: 0, Phase: PhaseVertexCompute, DurNS: 10},
				{Worker: 1, Phase: PhaseVertexCompute, DurNS: 40},
			},
			phase:   "vertex-compute",
			wantRow: true, workers: 2, maxNS: 40, medianNS: 40, skew: 1,
			totalPhase: 1,
		},
		{
			name: "engine scope counts as one worker",
			spans: []Span{
				{Worker: -1, Phase: PhaseMaster, DurNS: 5},
				{Worker: -1, Phase: PhaseMaster, DurNS: 7},
			},
			phase:   "master",
			wantRow: true, workers: 1, maxNS: 12, medianNS: 12, skew: 1,
			totalPhase: 1,
		},
		{
			name: "straggler dominates odd worker count",
			spans: []Span{
				{Worker: 0, Phase: PhaseVertexCompute, DurNS: 10},
				{Worker: 1, Phase: PhaseVertexCompute, DurNS: 20},
				{Worker: 2, Phase: PhaseVertexCompute, DurNS: 100},
			},
			phase:   "vertex-compute",
			wantRow: true, workers: 3, maxNS: 100, medianNS: 20, skew: 5,
			totalPhase: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Skew(tc.spans)
			if len(rep.Phases) != tc.totalPhase {
				t.Fatalf("report has %d phase rows, want %d", len(rep.Phases), tc.totalPhase)
			}
			row, ok := rep.Row(tc.phase)
			if ok != tc.wantRow {
				t.Fatalf("Row(%q) present=%v, want %v", tc.phase, ok, tc.wantRow)
			}
			if !tc.wantRow {
				return
			}
			if row.Workers != tc.workers || row.MaxNS != tc.maxNS ||
				row.MedianNS != tc.medianNS || row.Skew != tc.skew {
				t.Errorf("row = %+v, want workers=%d max=%d median=%d skew=%v",
					row, tc.workers, tc.maxNS, tc.medianNS, tc.skew)
			}
		})
	}
}

// Chunk spans group by executor (not owning worker) and feed the stolen
// counters: a trace where executor 1 ran everything must report one
// busy scope and attribute the moved chunks' time to stealing.
func TestSkewReportChunkExecutorGrouping(t *testing.T) {
	spans := []Span{
		// Worker 0's two chunks, one stolen by executor 1.
		{Worker: 0, Phase: PhaseChunk, Executor: 0, DurNS: 50},
		{Worker: 0, Phase: PhaseChunk, Executor: 1, Stolen: true, DurNS: 30},
		// Worker 1's chunk, run in place.
		{Worker: 1, Phase: PhaseChunk, Executor: 1, DurNS: 20},
	}
	rep := Skew(spans)
	row, ok := rep.Row("chunk")
	if !ok {
		t.Fatal("no chunk row")
	}
	if row.Workers != 2 {
		t.Errorf("chunk scopes = %d, want 2 (executors 0 and 1)", row.Workers)
	}
	// Executor totals: ex0 = 50, ex1 = 30+20 = 50.
	if row.MaxNS != 50 || row.MedianNS != 50 || row.Skew != 1 {
		t.Errorf("chunk row = %+v, want balanced executors at 50ns", row)
	}
	if row.StolenSpans != 1 || row.StolenNS != 30 {
		t.Errorf("stolen = %d spans / %dns, want 1 / 30", row.StolenSpans, row.StolenNS)
	}
	// Owner attribution bills the stolen chunk back to worker 0: owner
	// totals w0 = 50+30 = 80, w1 = 20, mean 50 → λ = 80/50 = 1.6.
	if row.OwnerSkew != 1.6 || row.OwnerMaxWorker != 0 {
		t.Errorf("owner skew = %v (max worker %d), want 1.6 (worker 0)",
			row.OwnerSkew, row.OwnerMaxWorker)
	}
	if !strings.Contains(rep.String(), "stolen") {
		t.Error("String() missing stolen column")
	}
	if !strings.Contains(rep.String(), "owner-skew") {
		t.Error("String() missing owner-skew column")
	}

	// A vertex-compute span keeps worker grouping and contributes nothing
	// to the stolen counters even with Executor/Stolen set (they are
	// chunk-span fields).
	rep = Skew([]Span{
		{Worker: 0, Phase: PhaseVertexCompute, Executor: 3, Stolen: true, DurNS: 10},
	})
	row, _ = rep.Row("vertex-compute")
	if row.MaxWorker != 0 || row.StolenSpans != 0 || row.OwnerSkew != 0 {
		t.Errorf("non-chunk span leaked executor grouping: %+v", row)
	}
}
