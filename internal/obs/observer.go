package obs

import "sync"

// RunSnapshot is the live view of a run in flight, maintained by a Live
// observer and served by the HTTP endpoint's /run route.
type RunSnapshot struct {
	Superstep   int    `json:"superstep"`
	Phase       string `json:"phase"`
	State       string `json:"state,omitempty"`
	Messages    int64  `json:"messages"`
	Bytes       int64  `json:"bytes"`
	VertexCalls int64  `json:"vertex_calls"`
	Recoveries  int64  `json:"recoveries"`
	Checkpoints int64  `json:"checkpoints"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	Done        bool   `json:"done"`
	Spans       int64  `json:"spans"`
}

// Live maintains a RunSnapshot from the span stream, for cheap
// introspection of a run in progress.
type Live struct {
	mu   sync.Mutex
	snap RunSnapshot
}

// NewLive creates a Live observer.
func NewLive() *Live { return &Live{} }

// ObserveSpan folds s into the snapshot.
func (l *Live) ObserveSpan(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sn := &l.snap
	sn.Spans++
	sn.Superstep = s.Superstep
	sn.Phase = s.Phase.String()
	if s.State != "" {
		sn.State = s.State
	}
	if end := s.StartNS + s.DurNS; end > sn.ElapsedNS {
		sn.ElapsedNS = end
	}
	switch s.Phase {
	case PhaseVertexCompute:
		sn.Messages += s.Messages
		sn.Bytes += s.Bytes
		sn.VertexCalls += s.VertexCalls
	case PhaseRecovery:
		sn.Recoveries++
	case PhaseCheckpoint:
		sn.Checkpoints++
	case PhaseRun:
		// The run span carries authoritative totals (recovery rewinds
		// the engine's counters but not the incremental sums above).
		sn.Messages, sn.Bytes, sn.VertexCalls = s.Messages, s.Bytes, s.VertexCalls
		sn.Done = true
	}
}

// Snapshot returns a copy of the current view.
func (l *Live) Snapshot() RunSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// MetricsObserver converts spans into registry metrics:
//
//	pregel_phase_seconds{phase=...}   histogram of phase wall time
//	pregel_supersteps_total           completed supersteps (barrier spans)
//	pregel_messages_total             messages sent
//	pregel_network_bytes_total        network bytes sent
//	pregel_vertex_calls_total         vertex.compute invocations
//	pregel_checkpoints_total          checkpoints taken
//	pregel_checkpoint_bytes_total     serialized checkpoint bytes
//	pregel_recoveries_total           rollback-and-replay recoveries
//	pregel_spills_total               governor inbox spills
//	pregel_spill_bytes_total          bytes written to the spill store
//	pregel_watchdog_trips_total       superstep watchdog trips
//	pregel_runs_total                 completed runs
type MetricsObserver struct {
	phase       [PhaseRun + 1]*Histogram
	supersteps  *Counter
	messages    *Counter
	netBytes    *Counter
	vertexCalls *Counter
	checkpoints *Counter
	ckptBytes   *Counter
	recoveries  *Counter
	spills      *Counter
	spillBytes  *Counter
	wdTrips     *Counter
	runs        *Counter
}

// NewMetricsObserver registers the engine metric families on reg and
// returns an observer feeding them. Multiple observers may share one
// registry; the instruments are the same series.
func NewMetricsObserver(reg *Registry) *MetricsObserver {
	m := &MetricsObserver{
		supersteps:  reg.Counter("pregel_supersteps_total", "completed supersteps"),
		messages:    reg.Counter("pregel_messages_total", "messages sent (post-combine)"),
		netBytes:    reg.Counter("pregel_network_bytes_total", "serialized bytes of cross-worker messages"),
		vertexCalls: reg.Counter("pregel_vertex_calls_total", "vertex.compute invocations"),
		checkpoints: reg.Counter("pregel_checkpoints_total", "recovery checkpoints taken"),
		ckptBytes:   reg.Counter("pregel_checkpoint_bytes_total", "serialized checkpoint bytes"),
		recoveries:  reg.Counter("pregel_recoveries_total", "rollback-and-replay recoveries"),
		spills:      reg.Counter("pregel_spills_total", "governor inbox spills to the segment store"),
		spillBytes:  reg.Counter("pregel_spill_bytes_total", "bytes written to the governor spill store"),
		wdTrips:     reg.Counter("pregel_watchdog_trips_total", "superstep watchdog trips"),
		runs:        reg.Counter("pregel_runs_total", "completed engine runs"),
	}
	for p := PhaseMaster; p <= PhaseRun; p++ {
		m.phase[p] = reg.Histogram("pregel_phase_seconds", "engine phase wall time",
			DurationBuckets(), L("phase", p.String()))
	}
	return m
}

// ObserveSpan records s into the registry.
func (m *MetricsObserver) ObserveSpan(s Span) {
	if int(s.Phase) < len(m.phase) && m.phase[s.Phase] != nil {
		m.phase[s.Phase].Observe(float64(s.DurNS) / 1e9)
	}
	switch s.Phase {
	case PhaseVertexCompute:
		m.messages.Add(s.Messages)
		m.netBytes.Add(s.Bytes)
		m.vertexCalls.Add(s.VertexCalls)
	case PhaseBarrier:
		m.supersteps.Inc()
	case PhaseCheckpoint:
		m.checkpoints.Inc()
		m.ckptBytes.Add(s.Bytes)
	case PhaseRecovery:
		m.recoveries.Inc()
	case PhaseSpill:
		m.spills.Inc()
		m.spillBytes.Add(s.Bytes)
	case PhaseWatchdog:
		m.wdTrips.Inc()
	case PhaseRun:
		m.runs.Inc()
	}
}
