// Package obs is the engine's observability layer: a metrics registry
// (counters, gauges, histograms with fixed bucket layouts), a structured
// trace of engine events (per-superstep, per-worker, per-phase spans
// with wall-time, message, and byte attribution), a skew report derived
// from traces, and an HTTP introspection endpoint serving Prometheus
// exposition text, health, and a live run snapshot.
//
// The package is self-contained (standard library only) and imported by
// the pregel engine; nothing here imports engine packages, so every
// layer of the system can attach instruments without cycles. The hot
// paths — Counter.Add, Gauge.Set, Histogram.Observe — are lock-free
// atomics and allocate nothing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair).
type Label struct {
	Key   string
	Value string
}

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (family, label-set) time series. Counters store an
// integer count in val; gauges store float64 bits in val; histograms
// use counts/sum/count.
type series struct {
	labels []Label
	sig    string

	val atomic.Uint64

	buckets []float64 // upper bounds, strictly increasing; histograms only
	counts  []atomic.Uint64
	sum     atomic.Uint64 // float64 bits
	count   atomic.Uint64
}

func addFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64

	mu     sync.Mutex
	series []*series
	bySig  map[string]*series
}

// Registry holds metric families. Registration methods are idempotent:
// asking for an existing (name, labels) pair returns the same
// instrument, so call sites need no shared setup. Rendering walks
// families in registration order and series in label order, so output
// is deterministic.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

func (r *Registry) family(name, help string, typ metricType, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, bySig: make(map[string]*series)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) seriesFor(labels []Label) *series {
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.bySig[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...), sig: sig}
		if f.typ == typeHistogram {
			s.buckets = f.buckets
			s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.bySig[sig] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].sig < f.series[j].sig })
	}
	return s
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds a non-negative delta; negative deltas panic (counters are
// monotone by definition).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obs: counter decreased")
	}
	c.s.val.Add(uint64(delta))
}

// Value returns the current count.
func (c *Counter) Value() int64 { return int64(c.s.val.Load()) }

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{s: r.family(name, help, typeCounter, nil).seriesFor(labels)}
}

// Gauge is a metric that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.s.val.Store(math.Float64bits(v)) }

// Add shifts the gauge value by delta.
func (g *Gauge) Add(delta float64) { addFloatBits(&g.s.val, delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.val.Load()) }

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{s: r.family(name, help, typeGauge, nil).seriesFor(labels)}
}

// Histogram accumulates observations into a fixed bucket layout chosen
// at registration; the layout never changes afterwards, so exposition
// stays comparable across scrapes and runs.
type Histogram struct{ s *series }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.s.buckets, v)
	h.s.counts[i].Add(1)
	h.s.count.Add(1)
	addFloatBits(&h.s.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return int64(h.s.count.Load()) }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sum.Load()) }

// Histogram registers (or finds) a histogram series. The first
// registration of a name fixes its bucket layout; nil buckets default
// to DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	bs := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bs) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	return &Histogram{s: r.family(name, help, typeHistogram, bs).seriesFor(labels)}
}

// DefBuckets is the default histogram layout (the Prometheus client
// default: 5ms to 10s, wall-time oriented).
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — the fixed layout used for engine phase timings.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start
		start *= factor
	}
	return bs
}

// DurationBuckets is the fixed layout for engine phase durations in
// seconds: 1µs·4^k for 12 buckets, topping out near 4200s.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 4, 14) }

// ---- Rendering ----

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*series(nil), f.series...)
}

func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.fams...)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			switch f.typ {
			case typeCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.val.Load()); err != nil {
					return err
				}
			case typeGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), formatFloat(math.Float64frombits(s.val.Load()))); err != nil {
					return err
				}
			case typeHistogram:
				cum := uint64(0)
				for i, ub := range s.buckets {
					cum += s.counts[i].Load()
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, L("le", formatFloat(ub))), cum); err != nil {
						return err
					}
				}
				cum += s.counts[len(s.buckets)].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, L("le", "+Inf")), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(s.labels), formatFloat(math.Float64frombits(s.sum.Load()))); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), s.count.Load()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteText renders a compact human-readable listing.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.snapshotSeries() {
			var val string
			switch f.typ {
			case typeCounter:
				val = strconv.FormatUint(s.val.Load(), 10)
			case typeGauge:
				val = formatFloat(math.Float64frombits(s.val.Load()))
			case typeHistogram:
				val = fmt.Sprintf("count=%d sum=%s", s.count.Load(), formatFloat(math.Float64frombits(s.sum.Load())))
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), val); err != nil {
				return err
			}
		}
	}
	return nil
}

type jsonBucket struct {
	// Le is the bucket upper bound, rendered as a string so the +Inf
	// bucket survives JSON encoding.
	Le    string `json:"le"`
	Count uint64 `json:"count"` // cumulative
}

type jsonSeries struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
}

type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonFamily
	for _, f := range r.snapshotFamilies() {
		jf := jsonFamily{Name: f.name, Type: f.typ.String(), Help: f.help}
		for _, s := range f.snapshotSeries() {
			js := jsonSeries{}
			if len(s.labels) > 0 {
				js.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					js.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				v := float64(s.val.Load())
				js.Value = &v
			case typeGauge:
				v := math.Float64frombits(s.val.Load())
				js.Value = &v
			case typeHistogram:
				sum := math.Float64frombits(s.sum.Load())
				count := s.count.Load()
				js.Sum, js.Count = &sum, &count
				cum := uint64(0)
				for i, ub := range s.buckets {
					cum += s.counts[i].Load()
					js.Buckets = append(js.Buckets, jsonBucket{Le: formatFloat(ub), Count: cum})
				}
				cum += s.counts[len(s.buckets)].Load()
				js.Buckets = append(js.Buckets, jsonBucket{Le: "+Inf", Count: cum})
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonFamily `json:"metrics"`
	}{out})
}
