package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Phase identifies the engine phase a Span covers.
type Phase uint8

// Engine phases. PhaseSpill covers one governor inbox spill to the
// temp-file segment store (Messages = spilled messages, Bytes = on-disk
// segment size); PhaseWatchdog is emitted when the superstep watchdog
// trips, with State carrying the stall diagnosis and Worker the suspect.
// PhaseRun is the whole-run summary span emitted once when a run
// finishes (successfully or not).
const (
	PhaseMaster Phase = iota
	PhaseVertexCompute
	PhaseRouting
	PhaseBarrier
	PhaseCheckpoint
	PhaseRecovery
	PhaseChunk
	PhaseSpill
	PhaseWatchdog
	// PhaseRouteEager covers one source shard's eager outbox count,
	// overlapped with the vertex phase (emitted at the barrier like all
	// spans): Worker carries the source-shard index, Executor the pool
	// goroutine that ran the count.
	PhaseRouteEager
	PhaseRun
	// PhasePull covers the pull-direction gather replacing routing for a
	// direction-optimized superstep: every worker rebuilds its inbox from
	// in-neighbors over the reverse CSR. Dir on the enclosing master span
	// records the per-superstep push/pull choice.
	PhasePull
)

var phaseNames = [...]string{
	PhaseMaster:        "master",
	PhaseVertexCompute: "vertex-compute",
	PhaseRouting:       "routing",
	PhaseBarrier:       "barrier",
	PhaseCheckpoint:    "checkpoint",
	PhaseRecovery:      "recovery",
	PhaseChunk:         "chunk",
	PhaseSpill:         "spill",
	PhaseWatchdog:      "watchdog",
	PhaseRouteEager:    "route-eager",
	PhaseRun:           "run",
	PhasePull:          "pull",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// MarshalJSON renders the phase by name.
func (p Phase) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON parses a phase name.
func (p *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range phaseNames {
		if n == s {
			*p = Phase(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown phase %q", s)
}

// Span is one structured trace event: a timed slice of engine work with
// message, byte, and vertex-call attribution. Worker is -1 for spans
// scoped to the whole engine (master, routing, barrier, checkpoint,
// run); State carries the job-level label (the machine executor reports
// the Green-Marl vertex-state name) when the job provides one.
//
// Counter fields are deterministic for a fixed configuration and seed;
// StartNS/DurNS are wall-clock (nanoseconds since run start) and vary
// run to run. Spans from supersteps later undone by crash recovery stay
// in the trace: the trace records what the engine did, while Stats
// records the converged outcome.
//
// PhaseChunk spans attribute one scheduling chunk of a worker's vertex
// phase: Worker is the partition that owns the chunk, Executor the pool
// goroutine that ran it, and Stolen marks the two differing (work
// stealing moved the chunk). For every other phase Executor and Stolen
// are zero-valued and omitted from JSON.
type Span struct {
	Superstep   int    `json:"superstep"`
	Worker      int    `json:"worker"`
	Phase       Phase  `json:"phase"`
	State       string `json:"state,omitempty"`
	StartNS     int64  `json:"start_ns"`
	DurNS       int64  `json:"dur_ns"`
	Messages    int64  `json:"messages,omitempty"`
	Bytes       int64  `json:"bytes,omitempty"`
	VertexCalls int64  `json:"vertex_calls,omitempty"`
	Executor    int    `json:"executor,omitempty"`
	Stolen      bool   `json:"stolen,omitempty"`
	// Dir records the direction-optimizer's per-superstep choice ("push"
	// or "pull") on master and pull-phase spans of pull-capable runs;
	// empty everywhere else.
	Dir string `json:"dir,omitempty"`
}

// Observer receives trace spans. The engine calls ObserveSpan from a
// single goroutine (spans are emitted at barriers, never concurrently),
// so implementations only need internal locking if they are also read
// from other goroutines while a run is in flight.
type Observer interface {
	ObserveSpan(Span)
}

// Multi fans spans out to every non-nil observer; it returns nil when
// none remain, so callers can assign the result to Config.Observer
// directly and keep the no-observer fast path.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) ObserveSpan(s Span) {
	for _, o := range m {
		o.ObserveSpan(s)
	}
}

// Ring retains the most recent spans in a fixed-capacity ring buffer.
type Ring struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped int64
}

// NewRing creates a ring that retains the last capacity spans
// (capacity <= 0 defaults to 4096).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ring{buf: make([]Span, capacity)}
}

// ObserveSpan appends s, evicting the oldest span when full.
func (r *Ring) ObserveSpan(s Span) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *Ring) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Dropped reports how many spans were evicted.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONL streams spans as JSON Lines (one span object per line), the
// on-disk trace format gmbench -trace persists.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL streamer writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

// ObserveSpan encodes s as one line; the first write error is latched
// and subsequent spans are dropped.
func (j *JSONL) ObserveSpan(s Span) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(s)
	}
	j.mu.Unlock()
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL parses a JSONL trace back into spans.
func ReadJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var spans []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return spans, err
		}
		spans = append(spans, s)
	}
}
