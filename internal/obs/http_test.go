package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	NewMetricsObserver(reg).ObserveSpan(Span{Phase: PhaseVertexCompute, Worker: 0, DurNS: 1000, Messages: 5, Bytes: 60, VertexCalls: 2})
	live := NewLive()
	live.ObserveSpan(Span{Superstep: 3, Phase: PhaseBarrier, Worker: -1, DurNS: 10})
	srv := httptest.NewServer(Handler(reg, live))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics: code=%d content-type=%q", code, ctype)
	}
	for _, want := range []string{"# TYPE pregel_phase_seconds histogram", "pregel_messages_total 5"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get("/healthz")
	var health map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &health) != nil || health["status"] != "ok" {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}

	code, body, _ = get("/run")
	var snap RunSnapshot
	if code != 200 || json.Unmarshal([]byte(body), &snap) != nil {
		t.Fatalf("/run: code=%d body=%q", code, body)
	}
	if snap.Superstep != 3 || snap.Phase != "barrier" || snap.Spans != 1 {
		t.Errorf("/run snapshot = %+v", snap)
	}

	code, body, _ = get("/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}

	// Without a live observer, /run 404s but everything else works.
	bare := httptest.NewServer(Handler(nil, nil))
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/run without live observer: code=%d, want 404", resp.StatusCode)
	}
}
