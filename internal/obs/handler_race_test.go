package obs_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gmpregel/internal/graph/gen"
	"gmpregel/internal/manual"
	"gmpregel/internal/obs"
	"gmpregel/internal/pregel"
)

// TestHandlerConcurrentWithEngineRun hammers every read endpoint while
// an instrumented engine run is emitting spans into the same Registry
// and Live observer. Under the CI -race pass this pins down the
// contract documented on obs.Handler: scraping is safe mid-run.
func TestHandlerConcurrentWithEngineRun(t *testing.T) {
	reg := obs.NewRegistry()
	live := obs.NewLive()
	srv := httptest.NewServer(obs.Handler(reg, live))
	defer srv.Close()

	g := gen.Random(512, 2048, 7)
	runOnce := func() {
		job := &manual.PageRank{Eps: 0, D: 0.85, MaxIter: 10, PR: make([]float64, g.NumNodes())}
		_, err := pregel.Run(g, job, pregel.Config{
			NumWorkers: 4,
			Seed:       1,
			Observer:   obs.Multi(live, obs.NewMetricsObserver(reg)),
		})
		if err != nil {
			t.Errorf("engine run: %v", err)
		}
	}

	const scrapers = 8
	const scrapesEach = 12
	paths := []string{"/metrics", "/metrics.json", "/run", "/healthz"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Engine side: back-to-back instrumented runs until the scrapers
	// are done, so every scrape races against live span traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				runOnce()
			}
		}
	}()

	var scrape sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		scrape.Add(1)
		go func(i int) {
			defer scrape.Done()
			for n := 0; n < scrapesEach; n++ {
				path := paths[(i+n)%len(paths)]
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("GET %s: reading body: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, body)
					return
				}
			}
		}(i)
	}
	scrape.Wait()
	close(stop)
	wg.Wait()

	// After the dust settles the scrape surface reflects the runs.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"pregel_messages_total", "pregel_phase_seconds"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %s after instrumented runs", want)
		}
	}
}
