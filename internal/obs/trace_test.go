package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestPhaseJSONRoundTrip(t *testing.T) {
	for p := PhaseMaster; p <= PhaseRun; p++ {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Phase
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != p {
			t.Errorf("phase %v round-tripped to %v", p, back)
		}
	}
	var p Phase
	if err := json.Unmarshal([]byte(`"bogus"`), &p); err == nil {
		t.Error("unknown phase name should fail to parse")
	}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.ObserveSpan(Span{Superstep: i})
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("len = %d, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Superstep != i+2 {
			t.Errorf("span %d has superstep %d, want %d", i, s.Superstep, i+2)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Span{
		{Superstep: 0, Worker: -1, Phase: PhaseMaster, StartNS: 1, DurNS: 2},
		{Superstep: 0, Worker: 1, Phase: PhaseVertexCompute, State: "bfs_fw", Messages: 7, Bytes: 84, VertexCalls: 3},
		{Superstep: 1, Worker: -1, Phase: PhaseRun, DurNS: 100},
	}
	for _, s := range want {
		j.ObserveSpan(s)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Errorf("got %d lines, want %d", lines, len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestMultiFansOutAndDropsNil(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	m := Multi(nil, a, nil, b)
	m.ObserveSpan(Span{Superstep: 4})
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Error("span not fanned out to all observers")
	}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live observers should be nil")
	}
	if Multi(a) != Observer(a) {
		t.Error("Multi of one observer should return it unwrapped")
	}
}

func TestSkewReport(t *testing.T) {
	var spans []Span
	// Three workers, two supersteps; worker 2 is the straggler.
	for step := 0; step < 2; step++ {
		spans = append(spans,
			Span{Superstep: step, Worker: -1, Phase: PhaseMaster, DurNS: 10},
			Span{Superstep: step, Worker: 0, Phase: PhaseVertexCompute, DurNS: 100},
			Span{Superstep: step, Worker: 1, Phase: PhaseVertexCompute, DurNS: 120},
			Span{Superstep: step, Worker: 2, Phase: PhaseVertexCompute, DurNS: 600},
			Span{Superstep: step, Worker: -1, Phase: PhaseBarrier, DurNS: 5},
		)
	}
	spans = append(spans, Span{Worker: -1, Phase: PhaseRun, DurNS: 2000})

	rep := Skew(spans)
	row, ok := rep.Row("vertex-compute")
	if !ok {
		t.Fatal("no vertex-compute row")
	}
	if row.Workers != 3 || row.Spans != 6 {
		t.Errorf("workers=%d spans=%d, want 3/6", row.Workers, row.Spans)
	}
	if row.MaxNS != 1200 || row.MaxWorker != 2 {
		t.Errorf("max=%d worker=%d, want 1200 on worker 2", row.MaxNS, row.MaxWorker)
	}
	if row.MedianNS != 240 {
		t.Errorf("median=%d, want 240", row.MedianNS)
	}
	if row.Skew != 5 {
		t.Errorf("skew=%v, want 5", row.Skew)
	}
	if _, ok := rep.Row("run"); ok {
		t.Error("run span should be excluded from the skew report")
	}
	if !strings.Contains(rep.String(), "vertex-compute") {
		t.Error("String() missing vertex-compute row")
	}
}
