package machine

import (
	"math"
	"testing"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// avgProgram hand-builds the paper's §3.1 running example:
//
//	Int S = 0; Int C = 0;
//	Foreach (n: G.Nodes) { If (n.age > K) { S += n.cnt; C += 1; } }
//	Float val = (C == 0) ? 0 : S / (float) C;
func avgProgram() *Program {
	p := &Program{
		Name: "avg",
		Scalars: []ScalarDecl{
			{Name: "K", Kind: ir.KInt, IsParam: true},
			{Name: "S", Kind: ir.KInt},
			{Name: "C", Kind: ir.KInt},
			{Name: "val", Kind: ir.KFloat},
		},
		Props: []PropDecl{
			{Name: "age", Kind: ir.KInt, IsParam: true},
			{Name: "cnt", Kind: ir.KInt, IsParam: true},
		},
		Aggs: []AggDecl{
			{Name: "S", Kind: ir.KInt, Op: ast.OpAdd},
			{Name: "C", Kind: ir.KInt, Op: ast.OpAdd},
		},
		HasReturn:  true,
		ReturnKind: ir.KFloat,
	}
	p.Nodes = []CFGNode{
		{Master: &MasterBlock{
			Stmts: []ir.Stmt{
				ir.SetScalar{Slot: 1, Name: "S", Op: ast.OpSet, RHS: ir.Const{V: ir.Int(0)}},
				ir.SetScalar{Slot: 2, Name: "C", Op: ast.OpSet, RHS: ir.Const{V: ir.Int(0)}},
			},
			Term: Term{Kind: TGoto, Then: 1},
		}},
		{Vertex: &VertexState{
			Name:        "state1",
			ReadScalars: []int{0},
			Body: []ir.Stmt{
				ir.If{
					Cond: ir.Binary{Op: ast.BinGt, L: ir.PropRef{Slot: 0, Name: "age"}, R: ir.ScalarRef{Slot: 0, Name: "K"}},
					Then: []ir.Stmt{
						ir.ContribAgg{Agg: 0, Name: "S", RHS: ir.PropRef{Slot: 1, Name: "cnt"}},
						ir.ContribAgg{Agg: 1, Name: "C", RHS: ir.Const{V: ir.Int(1)}},
					},
				},
			},
			Next: 2,
		}},
		{Master: &MasterBlock{
			Stmts: []ir.Stmt{
				ir.FoldAgg{Scalar: 1, ScalarName: "S", Agg: 0, AggName: "S", Op: ast.OpAdd},
				ir.FoldAgg{Scalar: 2, ScalarName: "C", Agg: 1, AggName: "C", Op: ast.OpAdd},
				ir.SetScalar{Slot: 3, Name: "val", Op: ast.OpSet, RHS: ir.Ternary{
					Cond: ir.Binary{Op: ast.BinEq, L: ir.ScalarRef{Slot: 2, Name: "C"}, R: ir.Const{V: ir.Int(0)}},
					Then: ir.Const{V: ir.Float(0)},
					Else: ir.Binary{Op: ast.BinDiv,
						L: ir.Binary{Op: ast.BinMul, L: ir.Const{V: ir.Float(1)}, R: ir.ScalarRef{Slot: 1, Name: "S"}},
						R: ir.ScalarRef{Slot: 2, Name: "C"}},
				}},
				ir.Return{Value: ir.ScalarRef{Slot: 3, Name: "val"}},
			},
			Term: Term{Kind: THalt},
		}},
	}
	return p
}

func TestHandBuiltAvgProgram(t *testing.T) {
	g := graph.FromEdges(5, nil)
	res, err := Run(avgProgram(), g, Bindings{
		Int: map[string]int64{"K": 20},
		NodePropInt: map[string][]int64{
			"age": {25, 10, 30, 40, 15},
			"cnt": {4, 100, 6, 2, 100},
		},
	}, pregel.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasRet || res.Ret.K != ir.KFloat {
		t.Fatalf("return = %+v", res.Ret)
	}
	if res.Ret.F != 4.0 { // (4+6+2)/3
		t.Errorf("avg = %v, want 4.0", res.Ret.F)
	}
	if res.Stats.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1 (single vertex state)", res.Stats.Supersteps)
	}
}

// nbrSumProgram: every vertex sends bar to all out-neighbors; receivers
// sum into foo (the paper's Neighborhood Communication pattern).
func nbrSumProgram() *Program {
	return &Program{
		Name: "nbrsum",
		Props: []PropDecl{
			{Name: "bar", Kind: ir.KInt, IsParam: true},
			{Name: "foo", Kind: ir.KInt},
		},
		Msgs: []MsgSchema{{Name: "bar", Fields: []ir.Kind{ir.KInt}}},
		Nodes: []CFGNode{
			{Vertex: &VertexState{
				Name: "send",
				Body: []ir.Stmt{
					ir.SendToNbrs{MsgType: 0, Payload: []ir.Expr{ir.PropRef{Slot: 0, Name: "bar"}}},
				},
				Next: 1,
			}},
			{Vertex: &VertexState{
				Name: "recv",
				Body: []ir.Stmt{
					ir.ForMsgs{MsgType: 0, Body: []ir.Stmt{
						ir.SetProp{Slot: 1, Name: "foo", Op: ast.OpAdd, RHS: ir.MsgField{Idx: 0, K: ir.KInt}},
					}},
				},
				Next: 2,
			}},
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		},
	}
}

func TestNeighborhoodCommunication(t *testing.T) {
	// 0→1, 0→2, 1→2, 3→0
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0},
	})
	res, err := Run(nbrSumProgram(), g, Bindings{
		NodePropInt: map[string][]int64{"bar": {10, 20, 30, 40}},
	}, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	foo, err := res.NodePropInt("foo")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{40, 10, 30, 0}
	for v, w := range want {
		if foo[v] != w {
			t.Errorf("foo[%d] = %d, want %d", v, foo[v], w)
		}
	}
	if res.Stats.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", res.Stats.Supersteps)
	}
	if res.Stats.MessagesSent != 4 {
		t.Errorf("messages = %d, want 4", res.Stats.MessagesSent)
	}
}

// floatNodePayloadProgram checks float and node payload round-trips and
// SendTo random writes: every vertex sends (id, 0.5*id) to vertex 0;
// vertex 0 min-reduces the float and counts senders.
func floatNodePayloadProgram() *Program {
	return &Program{
		Name: "payload",
		Props: []PropDecl{
			{Name: "minval", Kind: ir.KFloat},
			{Name: "senders", Kind: ir.KInt},
			{Name: "lastsender", Kind: ir.KNode},
		},
		Msgs: []MsgSchema{{Name: "probe", Fields: []ir.Kind{ir.KNode, ir.KFloat}}},
		Nodes: []CFGNode{
			{Master: &MasterBlock{Term: Term{Kind: TGoto, Then: 1}}},
			{Vertex: &VertexState{
				Name: "send",
				Body: []ir.Stmt{
					ir.SetProp{Slot: 0, Name: "minval", Op: ast.OpSet, RHS: ir.Const{V: ir.Float(math.Inf(1))}},
					ir.SendTo{Target: ir.Const{V: ir.Node(0)}, MsgType: 0, Payload: []ir.Expr{
						ir.CurNode{},
						ir.Binary{Op: ast.BinMul, L: ir.Const{V: ir.Float(0.5)}, R: ir.Binary{Op: ast.BinAdd, L: ir.Const{V: ir.Int(1)}, R: ir.Const{V: ir.Int(0)}}},
					}},
				},
				Next: 2,
			}},
			{Vertex: &VertexState{
				Name: "recv",
				Body: []ir.Stmt{
					ir.ForMsgs{MsgType: 0, Body: []ir.Stmt{
						ir.SetProp{Slot: 0, Name: "minval", Op: ast.OpMin, RHS: ir.MsgField{Idx: 1, K: ir.KFloat}},
						ir.SetProp{Slot: 1, Name: "senders", Op: ast.OpAdd, RHS: ir.Const{V: ir.Int(1)}},
						ir.SetProp{Slot: 2, Name: "lastsender", Op: ast.OpSet, RHS: ir.MsgField{Idx: 0, K: ir.KNode}},
					}},
				},
				Next: 3,
			}},
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		},
	}
}

func TestFloatAndNodePayloads(t *testing.T) {
	g := graph.FromEdges(6, nil)
	res, err := Run(floatNodePayloadProgram(), g, Bindings{}, pregel.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	minval, _ := res.NodePropFloat("minval")
	senders, _ := res.NodePropInt("senders")
	last, _ := res.NodePropInt("lastsender")
	if minval[0] != 0.5 {
		t.Errorf("minval[0] = %v, want 0.5", minval[0])
	}
	if senders[0] != 6 {
		t.Errorf("senders[0] = %d, want 6", senders[0])
	}
	if last[0] < 0 || last[0] > 5 {
		t.Errorf("lastsender[0] = %d, want a valid node", last[0])
	}
	if senders[1] != 0 || !math.IsInf(minval[1], 1) {
		t.Errorf("vertex 1 should have received nothing: %v %v", senders[1], minval[1])
	}
}

// loopProgram: master-driven While loop — counts 3 iterations of an
// empty vertex state, then halts. Exercises TCond and scalar updates.
func loopProgram() *Program {
	return &Program{
		Name:    "loop",
		Scalars: []ScalarDecl{{Name: "i", Kind: ir.KInt}},
		Nodes: []CFGNode{
			// 0: i = 0; goto 1
			{Master: &MasterBlock{
				Stmts: []ir.Stmt{ir.SetScalar{Slot: 0, Name: "i", Op: ast.OpSet, RHS: ir.Const{V: ir.Int(0)}}},
				Term:  Term{Kind: TGoto, Then: 1},
			}},
			// 1: if i < 3 goto 2 (vertex) else 3 (halt)
			{Master: &MasterBlock{
				Term: Term{Kind: TCond,
					Cond: ir.Binary{Op: ast.BinLt, L: ir.ScalarRef{Slot: 0, Name: "i"}, R: ir.Const{V: ir.Int(3)}},
					Then: 2, Else: 4},
			}},
			// 2: empty vertex state, next = 3
			{Vertex: &VertexState{Name: "body", Next: 3}},
			// 3: i = i + 1; goto 1
			{Master: &MasterBlock{
				Stmts: []ir.Stmt{ir.SetScalar{Slot: 0, Name: "i", Op: ast.OpAdd, RHS: ir.Const{V: ir.Int(1)}}},
				Term:  Term{Kind: TGoto, Then: 1},
			}},
			// 4: halt
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		},
	}
}

func TestMasterLoopControl(t *testing.T) {
	g := graph.FromEdges(3, nil)
	res, err := Run(loopProgram(), g, Bindings{}, pregel.Config{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3", res.Stats.Supersteps)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	bad := []*Program{
		{Name: "empty-node", Nodes: []CFGNode{{}}},
		{Name: "bad-entry", Entry: 5, Nodes: []CFGNode{{Master: &MasterBlock{Term: Term{Kind: THalt}}}}},
		{Name: "bad-goto", Nodes: []CFGNode{{Master: &MasterBlock{Term: Term{Kind: TGoto, Then: 9}}}}},
		{Name: "bad-next", Nodes: []CFGNode{{Vertex: &VertexState{Next: 7}}}},
		{Name: "bad-msg", Nodes: []CFGNode{
			{Vertex: &VertexState{Next: 1, Body: []ir.Stmt{ir.SendToNbrs{MsgType: 2}}}},
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		}},
		{Name: "cond-without-cond", Nodes: []CFGNode{{Master: &MasterBlock{Term: Term{Kind: TCond, Then: 0, Else: 0}}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %q: Validate should fail", p.Name)
		}
	}
	if err := avgProgram().Validate(); err != nil {
		t.Errorf("avg program should validate: %v", err)
	}
}

func TestEdgePropertyPayload(t *testing.T) {
	// SSSP-style relax step: every vertex sends dist+len over each edge;
	// receivers min-reduce into dist_nxt.
	p := &Program{
		Name: "relax",
		Props: []PropDecl{
			{Name: "dist", Kind: ir.KInt, IsParam: true},
			{Name: "dist_nxt", Kind: ir.KInt},
			{Name: "len", Kind: ir.KInt, IsEdge: true, IsParam: true},
		},
		Msgs: []MsgSchema{{Name: "relax", Fields: []ir.Kind{ir.KInt}}},
		Nodes: []CFGNode{
			{Vertex: &VertexState{
				Name: "init",
				Body: []ir.Stmt{
					ir.SetProp{Slot: 1, Name: "dist_nxt", Op: ast.OpSet, RHS: ir.Const{V: ir.Int(math.MaxInt64)}},
				},
				Next: 1,
			}},
			{Vertex: &VertexState{
				Name: "send",
				Body: []ir.Stmt{
					ir.SendToNbrs{MsgType: 0, Payload: []ir.Expr{
						ir.Binary{Op: ast.BinAdd, L: ir.PropRef{Slot: 0, Name: "dist"}, R: ir.EdgePropRef{Slot: 2, Name: "len"}},
					}},
				},
				Next: 2,
			}},
			{Vertex: &VertexState{
				Name: "recv",
				Body: []ir.Stmt{
					ir.ForMsgs{MsgType: 0, Body: []ir.Stmt{
						ir.SetProp{Slot: 1, Name: "dist_nxt", Op: ast.OpMin, RHS: ir.MsgField{Idx: 0, K: ir.KInt}},
					}},
				},
				Next: 3,
			}},
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		},
	}
	// Edges with weights, CSR order after sorting by dst:
	// 0→1 (w 5), 0→2 (w 1), 2→1 (w 2)
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 1}})
	res, err := Run(p, g, Bindings{
		NodePropInt: map[string][]int64{"dist": {0, 100, 1}},
		EdgePropInt: map[string][]int64{"len": {5, 1, 2}},
	}, pregel.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	nxt, _ := res.NodePropInt("dist_nxt")
	// dist_nxt[1] = min(0+5, 1+2) = 3; dist_nxt[2] = 0+1 = 1.
	if nxt[1] != 3 || nxt[2] != 1 {
		t.Errorf("dist_nxt = %v, want [_, 3, 1]", nxt)
	}
}

func TestProgramStringListsEverything(t *testing.T) {
	s := avgProgram().String()
	for _, sub := range []string{"program avg", "scalars", "state1", "agg.S", "halt"} {
		if !contains(s, sub) {
			t.Errorf("listing missing %q:\n%s", sub, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
