package machine

import (
	"testing"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// TestCombinersPreserveResultsAndReduceTraffic uses the SSSP-style relax
// program from TestEdgePropertyPayload: the min= handler is combinable.
func TestCombinersPreserveResultsAndReduceTraffic(t *testing.T) {
	p := relaxProgram()
	// Fan-in: many vertices all relax into vertex 0.
	b := graph.NewBuilder(20)
	for v := graph.NodeID(1); v < 20; v++ {
		b.AddEdge(v, 0)
	}
	g := b.Build()
	dist := make([]int64, 20)
	for v := range dist {
		dist[v] = int64(v * 10)
	}
	lengths := make([]int64, g.NumEdges())
	for e := range lengths {
		lengths[e] = 1
	}
	bind := Bindings{
		NodePropInt: map[string][]int64{"dist": dist},
		EdgePropInt: map[string][]int64{"len": lengths},
	}
	plain, err := Run(p, g, bind, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := RunWithOptions(p, g, bind, pregel.Config{NumWorkers: 3}, RunOptions{UseCombiners: true})
	if err != nil {
		t.Fatal(err)
	}
	pd, _ := plain.NodePropInt("dist_nxt")
	cd, _ := combined.NodePropInt("dist_nxt")
	for v := range pd {
		if pd[v] != cd[v] {
			t.Fatalf("dist_nxt[%d] differs: %d vs %d", v, pd[v], cd[v])
		}
	}
	// 19 senders on 3 workers → at most 3 combined messages reach vertex 0.
	if combined.Stats.MessagesSent >= plain.Stats.MessagesSent {
		t.Errorf("combining did not reduce messages: %d vs %d",
			combined.Stats.MessagesSent, plain.Stats.MessagesSent)
	}
	if combined.Stats.MessagesSent > 3 {
		t.Errorf("expected ≤3 combined messages, got %d", combined.Stats.MessagesSent)
	}
}

// relaxProgram duplicates the SSSP-style relax machine used in
// machine_test.go, with the min= receive handler.
func relaxProgram() *Program {
	return &Program{
		Name: "relax2",
		Props: []PropDecl{
			{Name: "dist", Kind: ir.KInt, IsParam: true},
			{Name: "dist_nxt", Kind: ir.KInt},
			{Name: "len", Kind: ir.KInt, IsEdge: true, IsParam: true},
		},
		Msgs: []MsgSchema{{Name: "relax", Fields: []ir.Kind{ir.KInt}}},
		Nodes: []CFGNode{
			{Vertex: &VertexState{
				Name: "init",
				Body: []ir.Stmt{
					ir.SetProp{Slot: 1, Name: "dist_nxt", Op: 0 /* set */, RHS: ir.Const{V: ir.Int(1 << 62)}},
				},
				Next: 1,
			}},
			{Vertex: &VertexState{
				Name: "send",
				Body: []ir.Stmt{
					ir.SendToNbrs{MsgType: 0, Payload: []ir.Expr{
						ir.Binary{Op: binAdd(), L: ir.PropRef{Slot: 0, Name: "dist"}, R: ir.EdgePropRef{Slot: 2, Name: "len"}},
					}},
				},
				Next: 2,
			}},
			{Vertex: &VertexState{
				Name: "recv",
				Body: []ir.Stmt{
					ir.ForMsgs{MsgType: 0, Body: []ir.Stmt{
						ir.SetProp{Slot: 1, Name: "dist_nxt", Op: opMin(), RHS: ir.MsgField{Idx: 0, K: ir.KInt}},
					}},
				},
				Next: 3,
			}},
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		},
	}
}

func TestCombinableOpsDetection(t *testing.T) {
	p := relaxProgram()
	ops := combinableOps(p)
	if len(ops) != 1 || ops[0] != opMin() {
		t.Errorf("ops = %v, want [min=]", ops)
	}
	// A two-field message is never combinable.
	p2 := relaxProgram()
	p2.Msgs[0].Fields = []ir.Kind{ir.KInt, ir.KInt}
	if ops := combinableOps(p2); ops[0] >= 0 {
		t.Errorf("two-field message marked combinable")
	}
	// A handler with extra statements is not combinable.
	p3 := relaxProgram()
	recv := p3.Nodes[2].Vertex
	fm := recv.Body[0].(ir.ForMsgs)
	fm.Body = append(fm.Body, ir.SetProp{Slot: 0, Name: "dist", Op: 0, RHS: ir.Const{V: ir.Int(0)}})
	recv.Body[0] = fm
	if ops := combinableOps(p3); ops[0] >= 0 {
		t.Errorf("multi-statement handler marked combinable")
	}
}

func binAdd() ast.BinOp   { return ast.BinAdd }
func opMin() ast.AssignOp { return ast.OpMin }
