package machine

import (
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/pregel"
)

// TestDifferentialExecutors runs hand-built programs through both the
// closure-compiled executor and the reference tree-walking interpreter
// and requires identical results and statistics. (The compiler-level
// differential test over all algorithms lives in internal/core.)
func TestDifferentialExecutors(t *testing.T) {
	progs := []*Program{avgProgram(), nbrSumProgram(), floatNodePayloadProgram(), loopProgram(), relaxProgram()}
	graphs := []*graph.Directed{
		gen.Ring(12),
		gen.Random(40, 200, 3),
		gen.TwitterLike(60, 4, 4),
	}
	for _, p := range progs {
		for gi, g := range graphs {
			bind := Bindings{
				Int:         map[string]int64{"K": 10},
				NodePropInt: map[string][]int64{"age": seqInts(g.NumNodes(), 60), "cnt": seqInts(g.NumNodes(), 9), "bar": seqInts(g.NumNodes(), 100), "dist": seqInts(g.NumNodes(), 50)},
				EdgePropInt: map[string][]int64{"len": seqInts(int(g.NumEdges()), 12)},
			}
			cfg := pregel.Config{NumWorkers: 3, Seed: 5}
			fast, err := RunWithOptions(p, g, bind, cfg, RunOptions{})
			if err != nil {
				t.Fatalf("%s/g%d compiled: %v", p.Name, gi, err)
			}
			slow, err := RunWithOptions(p, g, bind, cfg, RunOptions{Interpret: true})
			if err != nil {
				t.Fatalf("%s/g%d interpreted: %v", p.Name, gi, err)
			}
			if fast.Stats.Supersteps != slow.Stats.Supersteps ||
				fast.Stats.MessagesSent != slow.Stats.MessagesSent ||
				fast.Stats.NetworkBytes != slow.Stats.NetworkBytes {
				t.Errorf("%s/g%d: stats diverge: %+v vs %+v", p.Name, gi, fast.Stats, slow.Stats)
			}
			for pi, pd := range p.Props {
				if pd.IsEdge {
					continue
				}
				fc, sc := fast.cols[pi], slow.cols[pi]
				for v := 0; v < g.NumNodes(); v++ {
					if fc.i != nil && fc.i[v] != sc.i[v] {
						t.Fatalf("%s/g%d: prop %s[%d] = %d vs %d", p.Name, gi, pd.Name, v, fc.i[v], sc.i[v])
					}
					if fc.f != nil && fc.f[v] != sc.f[v] {
						t.Fatalf("%s/g%d: prop %s[%d] = %v vs %v", p.Name, gi, pd.Name, v, fc.f[v], sc.f[v])
					}
				}
			}
			if fast.HasRet != slow.HasRet || fast.Ret != slow.Ret {
				t.Errorf("%s/g%d: return diverges: %v vs %v", p.Name, gi, fast.Ret, slow.Ret)
			}
		}
	}
}

func seqInts(n int, mod int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)%mod + 1
	}
	return out
}
