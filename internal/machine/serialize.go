package machine

import (
	"encoding/json"
	"fmt"
	"math"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/ir"
)

// Program serialization: a compiled Pregel program can be saved as a
// JSON artifact and reloaded later (gmpc -emit / LoadArtifact), so
// compilation and execution can happen in different processes.
// Statements and expressions serialize as tagged envelopes.

type jsonProgram struct {
	Name       string           `json:"name"`
	Scalars    []ScalarDecl     `json:"scalars,omitempty"`
	Props      []PropDecl       `json:"props,omitempty"`
	Aggs       []jsonAgg        `json:"aggs,omitempty"`
	Msgs       []MsgSchema      `json:"msgs,omitempty"`
	Nodes      []jsonNode       `json:"nodes"`
	Entry      int              `json:"entry"`
	Loops      []LoopInfo       `json:"loops,omitempty"`
	HasReturn  bool             `json:"has_return,omitempty"`
	ReturnKind ir.Kind          `json:"return_kind,omitempty"`
	Analysis   *AnalysisSummary `json:"analysis,omitempty"`
}

type jsonAgg struct {
	Name string       `json:"name"`
	Kind ir.Kind      `json:"kind"`
	Op   ast.AssignOp `json:"op"`
}

type jsonNode struct {
	Master *jsonMaster `json:"master,omitempty"`
	Vertex *jsonVertex `json:"vertex,omitempty"`
}

type jsonMaster struct {
	Stmts []jsonStmt `json:"stmts,omitempty"`
	Kind  TermKind   `json:"term"`
	Cond  *jsonExpr  `json:"cond,omitempty"`
	Then  int        `json:"then,omitempty"`
	Else  int        `json:"else,omitempty"`
}

type jsonVertex struct {
	Name        string     `json:"name"`
	Body        []jsonStmt `json:"body,omitempty"`
	Next        int        `json:"next"`
	ReadScalars []int      `json:"read_scalars,omitempty"`
	Locals      []ir.Kind  `json:"locals,omitempty"`
	LocalNames  []string   `json:"local_names,omitempty"`
}

type jsonStmt struct {
	Kind    string     `json:"k"`
	Slot    int        `json:"slot,omitempty"`
	Name    string     `json:"name,omitempty"`
	Op      int        `json:"op,omitempty"`
	Agg     int        `json:"agg,omitempty"`
	Scalar  int        `json:"scalar,omitempty"`
	MsgType int        `json:"mt,omitempty"`
	RHS     *jsonExpr  `json:"rhs,omitempty"`
	Target  *jsonExpr  `json:"target,omitempty"`
	Cond    *jsonExpr  `json:"cond,omitempty"`
	Payload []jsonExpr `json:"payload,omitempty"`
	Body    []jsonStmt `json:"body,omitempty"`
	Then    []jsonStmt `json:"then,omitempty"`
	Else    []jsonStmt `json:"else,omitempty"`
	Extra   string     `json:"extra,omitempty"` // second name slot
}

type jsonExpr struct {
	Kind string    `json:"k"`
	I    int64     `json:"i,omitempty"`
	F    float64   `json:"f,omitempty"`
	VK   ir.Kind   `json:"vk,omitempty"`
	Slot int       `json:"slot,omitempty"`
	Name string    `json:"name,omitempty"`
	Op   int       `json:"op,omitempty"`
	L    *jsonExpr `json:"l,omitempty"`
	R    *jsonExpr `json:"r,omitempty"`
	C    *jsonExpr `json:"c,omitempty"`
}

// EncodeProgram serializes p as a JSON artifact.
func EncodeProgram(p *Program) ([]byte, error) {
	jp := jsonProgram{
		Name: p.Name, Scalars: p.Scalars, Props: p.Props, Msgs: p.Msgs,
		Entry: p.Entry, Loops: p.Loops, HasReturn: p.HasReturn, ReturnKind: p.ReturnKind,
		Analysis: p.Analysis,
	}
	for _, a := range p.Aggs {
		jp.Aggs = append(jp.Aggs, jsonAgg{Name: a.Name, Kind: a.Kind, Op: a.Op})
	}
	for _, n := range p.Nodes {
		var jn jsonNode
		if n.Master != nil {
			jm := &jsonMaster{Kind: n.Master.Term.Kind, Then: n.Master.Term.Then, Else: n.Master.Term.Else}
			if n.Master.Term.Cond != nil {
				jm.Cond = encodeExpr(n.Master.Term.Cond)
			}
			jm.Stmts = encodeStmts(n.Master.Stmts)
			jn.Master = jm
		}
		if n.Vertex != nil {
			jn.Vertex = &jsonVertex{
				Name: n.Vertex.Name, Body: encodeStmts(n.Vertex.Body), Next: n.Vertex.Next,
				ReadScalars: n.Vertex.ReadScalars, Locals: n.Vertex.Locals, LocalNames: n.Vertex.LocalNames,
			}
		}
		jp.Nodes = append(jp.Nodes, jn)
	}
	return json.MarshalIndent(jp, "", " ")
}

// DecodeProgram reloads a serialized artifact and validates it.
func DecodeProgram(data []byte) (*Program, error) {
	var jp jsonProgram
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("machine: decoding artifact: %w", err)
	}
	p := &Program{
		Name: jp.Name, Scalars: jp.Scalars, Props: jp.Props, Msgs: jp.Msgs,
		Entry: jp.Entry, Loops: jp.Loops, HasReturn: jp.HasReturn, ReturnKind: jp.ReturnKind,
		Analysis: jp.Analysis,
	}
	for _, a := range jp.Aggs {
		p.Aggs = append(p.Aggs, AggDecl{Name: a.Name, Kind: a.Kind, Op: a.Op})
	}
	for i, jn := range jp.Nodes {
		var n CFGNode
		if jn.Master != nil {
			mb := &MasterBlock{Term: Term{Kind: jn.Master.Kind, Then: jn.Master.Then, Else: jn.Master.Else}}
			if jn.Master.Cond != nil {
				e, err := decodeExpr(jn.Master.Cond)
				if err != nil {
					return nil, fmt.Errorf("machine: node %d: %w", i, err)
				}
				mb.Term.Cond = e
			}
			ss, err := decodeStmts(jn.Master.Stmts)
			if err != nil {
				return nil, fmt.Errorf("machine: node %d: %w", i, err)
			}
			mb.Stmts = ss
			n.Master = mb
		}
		if jn.Vertex != nil {
			body, err := decodeStmts(jn.Vertex.Body)
			if err != nil {
				return nil, fmt.Errorf("machine: node %d: %w", i, err)
			}
			n.Vertex = &VertexState{
				Name: jn.Vertex.Name, Body: body, Next: jn.Vertex.Next,
				ReadScalars: jn.Vertex.ReadScalars, Locals: jn.Vertex.Locals, LocalNames: jn.Vertex.LocalNames,
			}
		}
		p.Nodes = append(p.Nodes, n)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("machine: artifact invalid: %w", err)
	}
	return p, nil
}

func encodeStmts(ss []ir.Stmt) []jsonStmt {
	out := make([]jsonStmt, 0, len(ss))
	for _, s := range ss {
		out = append(out, encodeStmt(s))
	}
	return out
}

func encodeStmt(s ir.Stmt) jsonStmt {
	switch s := s.(type) {
	case ir.SetScalar:
		return jsonStmt{Kind: "setScalar", Slot: s.Slot, Name: s.Name, Op: int(s.Op), RHS: encodeExpr(s.RHS)}
	case ir.FoldAgg:
		return jsonStmt{Kind: "foldAgg", Scalar: s.Scalar, Name: s.ScalarName, Agg: s.Agg, Extra: s.AggName, Op: int(s.Op)}
	case ir.SetLocal:
		return jsonStmt{Kind: "setLocal", Slot: s.Slot, Name: s.Name, RHS: encodeExpr(s.RHS)}
	case ir.SetProp:
		return jsonStmt{Kind: "setProp", Slot: s.Slot, Name: s.Name, Op: int(s.Op), RHS: encodeExpr(s.RHS)}
	case ir.ContribAgg:
		return jsonStmt{Kind: "contribAgg", Agg: s.Agg, Name: s.Name, RHS: encodeExpr(s.RHS)}
	case ir.SendToNbrs:
		js := jsonStmt{Kind: "sendToNbrs", MsgType: s.MsgType, Payload: encodeExprs(s.Payload)}
		if s.EdgeCond != nil {
			js.Cond = encodeExpr(s.EdgeCond)
		}
		return js
	case ir.SendTo:
		return jsonStmt{Kind: "sendTo", MsgType: s.MsgType, Target: encodeExpr(s.Target), Payload: encodeExprs(s.Payload)}
	case ir.SendToInNbrs:
		return jsonStmt{Kind: "sendToInNbrs", MsgType: s.MsgType, Payload: encodeExprs(s.Payload)}
	case ir.CollectInNbrs:
		return jsonStmt{Kind: "collectInNbrs", MsgType: s.MsgType}
	case ir.ForMsgs:
		return jsonStmt{Kind: "forMsgs", MsgType: s.MsgType, Body: encodeStmts(s.Body)}
	case ir.If:
		return jsonStmt{Kind: "if", Cond: encodeExpr(s.Cond), Then: encodeStmts(s.Then), Else: encodeStmts(s.Else)}
	case ir.Return:
		js := jsonStmt{Kind: "return"}
		if s.Value != nil {
			js.RHS = encodeExpr(s.Value)
		}
		return js
	default:
		panic(fmt.Sprintf("machine: cannot encode statement %T", s))
	}
}

func decodeStmts(js []jsonStmt) ([]ir.Stmt, error) {
	out := make([]ir.Stmt, 0, len(js))
	for _, j := range js {
		s, err := decodeStmt(j)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func decodeStmt(j jsonStmt) (ir.Stmt, error) {
	mustExpr := func(e *jsonExpr) (ir.Expr, error) {
		if e == nil {
			return nil, fmt.Errorf("statement %q missing expression", j.Kind)
		}
		return decodeExpr(e)
	}
	switch j.Kind {
	case "setScalar":
		rhs, err := mustExpr(j.RHS)
		if err != nil {
			return nil, err
		}
		return ir.SetScalar{Slot: j.Slot, Name: j.Name, Op: ast.AssignOp(j.Op), RHS: rhs}, nil
	case "foldAgg":
		return ir.FoldAgg{Scalar: j.Scalar, ScalarName: j.Name, Agg: j.Agg, AggName: j.Extra, Op: ast.AssignOp(j.Op)}, nil
	case "setLocal":
		rhs, err := mustExpr(j.RHS)
		if err != nil {
			return nil, err
		}
		return ir.SetLocal{Slot: j.Slot, Name: j.Name, RHS: rhs}, nil
	case "setProp":
		rhs, err := mustExpr(j.RHS)
		if err != nil {
			return nil, err
		}
		return ir.SetProp{Slot: j.Slot, Name: j.Name, Op: ast.AssignOp(j.Op), RHS: rhs}, nil
	case "contribAgg":
		rhs, err := mustExpr(j.RHS)
		if err != nil {
			return nil, err
		}
		return ir.ContribAgg{Agg: j.Agg, Name: j.Name, RHS: rhs}, nil
	case "sendToNbrs":
		payload, err := decodeExprs(j.Payload)
		if err != nil {
			return nil, err
		}
		s := ir.SendToNbrs{MsgType: j.MsgType, Payload: payload}
		if j.Cond != nil {
			c, err := decodeExpr(j.Cond)
			if err != nil {
				return nil, err
			}
			s.EdgeCond = c
		}
		return s, nil
	case "sendTo":
		payload, err := decodeExprs(j.Payload)
		if err != nil {
			return nil, err
		}
		tgt, err := mustExpr(j.Target)
		if err != nil {
			return nil, err
		}
		return ir.SendTo{MsgType: j.MsgType, Target: tgt, Payload: payload}, nil
	case "sendToInNbrs":
		payload, err := decodeExprs(j.Payload)
		if err != nil {
			return nil, err
		}
		return ir.SendToInNbrs{MsgType: j.MsgType, Payload: payload}, nil
	case "collectInNbrs":
		return ir.CollectInNbrs{MsgType: j.MsgType}, nil
	case "forMsgs":
		body, err := decodeStmts(j.Body)
		if err != nil {
			return nil, err
		}
		return ir.ForMsgs{MsgType: j.MsgType, Body: body}, nil
	case "if":
		cond, err := mustExpr(j.Cond)
		if err != nil {
			return nil, err
		}
		then, err := decodeStmts(j.Then)
		if err != nil {
			return nil, err
		}
		els, err := decodeStmts(j.Else)
		if err != nil {
			return nil, err
		}
		return ir.If{Cond: cond, Then: then, Else: els}, nil
	case "return":
		var v ir.Expr
		if j.RHS != nil {
			e, err := decodeExpr(j.RHS)
			if err != nil {
				return nil, err
			}
			v = e
		}
		return ir.Return{Value: v}, nil
	}
	return nil, fmt.Errorf("unknown statement kind %q", j.Kind)
}

func encodeExprs(es []ir.Expr) []jsonExpr {
	out := make([]jsonExpr, 0, len(es))
	for _, e := range es {
		out = append(out, *encodeExpr(e))
	}
	return out
}

func encodeExpr(e ir.Expr) *jsonExpr {
	switch e := e.(type) {
	case ir.Const:
		je := &jsonExpr{Kind: "const", VK: e.V.K, I: e.V.I}
		if e.V.K == ir.KFloat {
			// Preserve exact bits (NaN/Inf safe) through JSON.
			je.I = int64(math.Float64bits(e.V.F))
		}
		return je
	case ir.ScalarRef:
		return &jsonExpr{Kind: "scalar", Slot: e.Slot, Name: e.Name}
	case ir.LocalRef:
		return &jsonExpr{Kind: "local", Slot: e.Slot, Name: e.Name}
	case ir.PropRef:
		return &jsonExpr{Kind: "prop", Slot: e.Slot, Name: e.Name}
	case ir.EdgePropRef:
		return &jsonExpr{Kind: "edgeProp", Slot: e.Slot, Name: e.Name}
	case ir.CurNode:
		return &jsonExpr{Kind: "curNode"}
	case ir.MsgField:
		return &jsonExpr{Kind: "msgField", Slot: e.Idx, VK: e.K}
	case ir.AggRef:
		return &jsonExpr{Kind: "agg", Slot: e.Slot, Name: e.Name}
	case ir.Builtin:
		return &jsonExpr{Kind: "builtin", Op: int(e.Op)}
	case ir.Binary:
		return &jsonExpr{Kind: "binary", Op: int(e.Op), L: encodeExpr(e.L), R: encodeExpr(e.R)}
	case ir.Unary:
		return &jsonExpr{Kind: "unary", Op: int(e.Op), L: encodeExpr(e.X)}
	case ir.Ternary:
		return &jsonExpr{Kind: "ternary", C: encodeExpr(e.Cond), L: encodeExpr(e.Then), R: encodeExpr(e.Else)}
	default:
		panic(fmt.Sprintf("machine: cannot encode expression %T", e))
	}
}

func decodeExprs(js []jsonExpr) ([]ir.Expr, error) {
	out := make([]ir.Expr, 0, len(js))
	for i := range js {
		e, err := decodeExpr(&js[i])
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func decodeExpr(j *jsonExpr) (ir.Expr, error) {
	switch j.Kind {
	case "const":
		v := ir.Value{K: j.VK, I: j.I}
		if j.VK == ir.KFloat {
			v = ir.Float(math.Float64frombits(uint64(j.I)))
		}
		return ir.Const{V: v}, nil
	case "scalar":
		return ir.ScalarRef{Slot: j.Slot, Name: j.Name}, nil
	case "local":
		return ir.LocalRef{Slot: j.Slot, Name: j.Name}, nil
	case "prop":
		return ir.PropRef{Slot: j.Slot, Name: j.Name}, nil
	case "edgeProp":
		return ir.EdgePropRef{Slot: j.Slot, Name: j.Name}, nil
	case "curNode":
		return ir.CurNode{}, nil
	case "msgField":
		return ir.MsgField{Idx: j.Slot, K: j.VK}, nil
	case "agg":
		return ir.AggRef{Slot: j.Slot, Name: j.Name}, nil
	case "builtin":
		return ir.Builtin{Op: ir.BuiltinOp(j.Op)}, nil
	case "binary":
		l, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(j.R)
		if err != nil {
			return nil, err
		}
		return ir.Binary{Op: ast.BinOp(j.Op), L: l, R: r}, nil
	case "unary":
		x, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		return ir.Unary{Op: ast.UnOp(j.Op), X: x}, nil
	case "ternary":
		c, err := decodeExpr(j.C)
		if err != nil {
			return nil, err
		}
		l, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(j.R)
		if err != nil {
			return nil, err
		}
		return ir.Ternary{Cond: c, Then: l, Else: r}, nil
	}
	return nil, fmt.Errorf("unknown expression kind %q", j.Kind)
}
