package machine

import (
	"reflect"
	"testing"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// testExecFor builds the minimal exec needed to run the gather
// eligibility pass outside a full Run.
func testExecFor(p *Program, g *graph.Directed) *exec {
	ex := &exec{p: p, g: g}
	ex.cols = make([]column, len(p.Props))
	for i, pd := range p.Props {
		n := g.NumNodes()
		if pd.IsEdge {
			n = int(g.NumEdges())
		}
		if pd.Kind == ir.KFloat {
			ex.cols[i].f = make([]float64, n)
		} else {
			ex.cols[i].i = make([]int64, n)
		}
	}
	return ex
}

// TestGatherAnalysisRules exercises the eligibility pass rule by rule:
// the unique-send and out-neighbor-only structure checks, the
// position-based written-after-read-site check for guards and payloads,
// and the expression subset (no locals, message fields, or random
// draws).
func TestGatherAnalysisRules(t *testing.T) {
	prop := func(slot int) ir.Expr { return ir.PropRef{Slot: slot, Name: "p"} }
	send := func(payload ...ir.Expr) ir.Stmt { return ir.SendToNbrs{MsgType: 0, Payload: payload} }
	setA := ir.SetProp{Slot: 0, Name: "a", Op: ast.OpSet, RHS: ir.Const{V: ir.Int(1)}}
	cases := []struct {
		name     string
		body     []ir.Stmt
		ok, none bool
	}{
		{"plain send", []ir.Stmt{send(prop(0))}, true, false},
		{"no send", []ir.Stmt{setA}, true, true},
		{"write before send", []ir.Stmt{setA, send(prop(0))}, true, false},
		{"write after send", []ir.Stmt{send(prop(0)), setA}, false, false},
		{"unrelated write after send", []ir.Stmt{send(prop(1)), setA}, true, false},
		{"guard prop stable", []ir.Stmt{ir.If{Cond: prop(0), Then: []ir.Stmt{send()}}}, true, false},
		{"guard prop written in branch", []ir.Stmt{ir.If{Cond: prop(0), Then: []ir.Stmt{setA, send()}}}, false, false},
		{"guard prop written in else", []ir.Stmt{ir.If{Cond: prop(0), Then: []ir.Stmt{send()}, Else: []ir.Stmt{setA}}}, false, false},
		{"guard prop written before guard", []ir.Stmt{setA, ir.If{Cond: prop(0), Then: []ir.Stmt{send()}}}, true, false},
		{"two sends", []ir.Stmt{send(prop(0)), send(prop(0))}, false, false},
		{"send under formsgs", []ir.Stmt{ir.ForMsgs{MsgType: 0, Body: []ir.Stmt{send()}}}, false, false},
		{"sendto", []ir.Stmt{ir.SendTo{MsgType: 0, Target: ir.CurNode{}}}, false, false},
		{"sendtoinnbrs", []ir.Stmt{ir.SendToInNbrs{MsgType: 0}}, false, false},
		{"collectinnbrs", []ir.Stmt{ir.CollectInNbrs{MsgType: 0}}, false, false},
		{"local payload", []ir.Stmt{send(ir.LocalRef{Slot: 0, Name: "l"})}, false, false},
		{"msgfield payload", []ir.Stmt{send(ir.MsgField{Idx: 0, K: ir.KInt})}, false, false},
		{"random payload", []ir.Stmt{send(ir.Builtin{Op: ir.BPickRandom})}, false, false},
		{"edgeprop in guard", []ir.Stmt{ir.If{Cond: ir.EdgePropRef{Slot: 2, Name: "w"}, Then: []ir.Stmt{send()}}}, false, false},
		{"degree payload", []ir.Stmt{send(ir.Binary{Op: ast.BinDiv, L: prop(0), R: ir.Builtin{Op: ir.BDegree}})}, true, false},
	}
	p := &Program{
		Name: "t",
		Props: []PropDecl{
			{Name: "a", Kind: ir.KInt},
			{Name: "b", Kind: ir.KInt},
			{Name: "w", Kind: ir.KInt, IsEdge: true},
		},
		Msgs: []MsgSchema{{Name: "m", Fields: []ir.Kind{ir.KInt}}},
	}
	g := gen.Ring(4)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := testExecFor(p, g)
			gi := ex.analyzeGatherState(&VertexState{Name: "s", Body: tc.body, Locals: []ir.Kind{ir.KInt}})
			if gi.ok != tc.ok || gi.none != tc.none {
				t.Fatalf("ok=%v none=%v, want ok=%v none=%v", gi.ok, gi.none, tc.ok, tc.none)
			}
		})
	}
}

// TestGatherDirectionalEquivalence runs every hand-built program under
// push, pull, and auto direction and requires bit-identical results,
// return values, and engine statistics. Programs with ineligible states
// silently stay in push (the engine asks per superstep), so the whole
// suite must pass regardless of eligibility — and at least one
// program/graph pair must actually take the pull path.
func TestGatherDirectionalEquivalence(t *testing.T) {
	progs := []*Program{avgProgram(), nbrSumProgram(), floatNodePayloadProgram(), loopProgram(), relaxProgram()}
	graphs := []*graph.Directed{
		gen.Ring(12),
		gen.Random(40, 200, 3),
		gen.TwitterLike(60, 4, 4),
	}
	pulled := 0
	for _, p := range progs {
		for gi, g := range graphs {
			bind := Bindings{
				Int:         map[string]int64{"K": 10},
				NodePropInt: map[string][]int64{"age": seqInts(g.NumNodes(), 60), "cnt": seqInts(g.NumNodes(), 9), "bar": seqInts(g.NumNodes(), 100), "dist": seqInts(g.NumNodes(), 50)},
				EdgePropInt: map[string][]int64{"len": seqInts(int(g.NumEdges()), 12)},
			}
			base, err := Run(p, g, bind, pregel.Config{NumWorkers: 3, Seed: 5})
			if err != nil {
				t.Fatalf("%s/g%d push: %v", p.Name, gi, err)
			}
			for _, dir := range []pregel.Direction{pregel.DirPull, pregel.DirAuto} {
				var trace pregel.DirectionTrace
				got, err := Run(p, g, bind, pregel.Config{NumWorkers: 3, Seed: 5, Direction: dir, DirTrace: &trace})
				if err != nil {
					t.Fatalf("%s/g%d %v: %v", p.Name, gi, dir, err)
				}
				if !reflect.DeepEqual(base.Stats, got.Stats) {
					t.Fatalf("%s/g%d %v: stats diverge:\npush: %+v\n%v: %+v", p.Name, gi, dir, base.Stats, dir, got.Stats)
				}
				for pi, pd := range p.Props {
					if pd.IsEdge {
						continue
					}
					bc, gc := base.cols[pi], got.cols[pi]
					for v := 0; v < g.NumNodes(); v++ {
						if bc.i != nil && bc.i[v] != gc.i[v] {
							t.Fatalf("%s/g%d %v: prop %s[%d] = %d vs %d", p.Name, gi, dir, pd.Name, v, gc.i[v], bc.i[v])
						}
						if bc.f != nil && bc.f[v] != gc.f[v] {
							t.Fatalf("%s/g%d %v: prop %s[%d] = %v vs %v", p.Name, gi, dir, pd.Name, v, gc.f[v], bc.f[v])
						}
					}
				}
				if base.HasRet != got.HasRet || base.Ret != got.Ret {
					t.Fatalf("%s/g%d %v: return diverges: %v vs %v", p.Name, gi, dir, got.Ret, base.Ret)
				}
				if dir == pregel.DirPull {
					pulled += trace.PullSteps
				}
			}
		}
	}
	if pulled == 0 {
		t.Fatal("no program/graph pair ever took the pull path — eligibility pass too strict")
	}
}
