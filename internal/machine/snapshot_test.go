package machine

import (
	"context"
	"reflect"
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// Snapshot/Restore round-trips the executor's mutable state, including
// a rewind of scalar and column values.
func TestExecSnapshotRoundTrip(t *testing.T) {
	ex := &exec{
		p:       nbrSumProgram(),
		cur:     2,
		state:   1,
		scalars: []ir.Value{ir.Int(7), ir.Float(2.5)},
		cols: []column{
			{i: []int64{1, 2, 3}},
			{f: []float64{0.5, 1.5}},
		},
		inNbrs: [][]graph.NodeID{{1, 2}, nil, {0}},
		ret:    ir.Float(9.25),
		retSet: true,
	}
	snap := ex.SnapshotState()

	// Dirty everything, then restore.
	ex.cur, ex.state, ex.retSet = 0, 0, false
	ex.scalars[0] = ir.Int(-1)
	ex.cols[0].i[2] = 99
	ex.cols[1].f[0] = -4
	ex.inNbrs[0] = ex.inNbrs[0][:1]
	ex.inNbrs[1] = append(ex.inNbrs[1], 2)
	ex.RestoreState(snap)

	if ex.cur != 2 || ex.state != 1 || !ex.retSet || ex.ret.F != 9.25 {
		t.Errorf("control state not restored: cur=%d state=%d ret=%+v", ex.cur, ex.state, ex.ret)
	}
	if ex.scalars[0].I != 7 || ex.scalars[1].F != 2.5 {
		t.Errorf("scalars not restored: %+v", ex.scalars)
	}
	if !reflect.DeepEqual(ex.cols[0].i, []int64{1, 2, 3}) || !reflect.DeepEqual(ex.cols[1].f, []float64{0.5, 1.5}) {
		t.Errorf("columns not restored: %+v", ex.cols)
	}
	if !reflect.DeepEqual(ex.inNbrs, [][]graph.NodeID{{1, 2}, {}, {0}}) {
		t.Errorf("inNbrs not restored: %v", ex.inNbrs)
	}

	// Corruption panics rather than restoring garbage.
	defer func() {
		if recover() == nil {
			t.Error("truncated snapshot restored without panic")
		}
	}()
	ex.RestoreState(snap[:len(snap)/2])
}

// A fault injected into a hand-built program recovers to identical
// outputs through the executor's Checkpointable implementation.
func TestMachineFaultRecovery(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0},
	})
	b := Bindings{NodePropInt: map[string][]int64{"bar": {10, 20, 30, 40}}}
	res, err := Run(nbrSumProgram(), g, b, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	foo, _ := res.NodePropInt("foo")

	fRes, err := Run(nbrSumProgram(), g, b, pregel.Config{
		NumWorkers: 3,
		Faults:     pregel.FaultPlan{{Superstep: 1, Worker: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fFoo, _ := fRes.NodePropInt("foo")
	if !reflect.DeepEqual(foo, fFoo) {
		t.Errorf("outputs differ after recovery: %v vs %v", foo, fFoo)
	}
	if fRes.Stats.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", fRes.Stats.Recoveries)
	}
}

// RunContext aborts at a barrier and still hands back the partial result.
func TestRunContextCancelReturnsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, nbrSumProgram(), graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}), Bindings{
		NodePropInt: map[string][]int64{"bar": {1, 2, 3}},
	}, pregel.Config{NumWorkers: 2})
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if res == nil {
		t.Fatal("partial result lost on abort")
	}
}
