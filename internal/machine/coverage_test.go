package machine

import (
	"strings"
	"testing"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// opsProgram exercises every property-update operator and kind through
// both executors.
func opsProgram() *Program {
	set := func(slot int, name string, op ast.AssignOp, rhs ir.Expr) ir.Stmt {
		return ir.SetProp{Slot: slot, Name: name, Op: op, RHS: rhs}
	}
	two := ir.Const{V: ir.Int(2)}
	half := ir.Const{V: ir.Float(0.5)}
	return &Program{
		Name: "ops",
		Props: []PropDecl{
			{Name: "i", Kind: ir.KInt, IsParam: true},
			{Name: "f", Kind: ir.KFloat, IsParam: true},
			{Name: "b", Kind: ir.KBool},
			{Name: "n", Kind: ir.KNode},
		},
		Nodes: []CFGNode{
			{Vertex: &VertexState{
				Name: "ops",
				Body: []ir.Stmt{
					set(0, "i", ast.OpMul, two),
					set(0, "i", ast.OpSub, ir.Const{V: ir.Int(1)}),
					set(0, "i", ast.OpMax, ir.Const{V: ir.Int(5)}),
					set(1, "f", ast.OpMul, half),
					set(1, "f", ast.OpSub, half),
					set(1, "f", ast.OpMax, ir.Const{V: ir.Float(0.25)}),
					set(1, "f", ast.OpMin, ir.Const{V: ir.Float(100)}),
					set(2, "b", ast.OpSet, ir.Binary{Op: ast.BinGt, L: ir.PropRef{Slot: 0, Name: "i"}, R: two}),
					set(2, "b", ast.OpOr, ir.Const{V: ir.Bool(false)}),
					set(2, "b", ast.OpAnd, ir.Const{V: ir.Bool(true)}),
					set(3, "n", ast.OpSet, ir.CurNode{}),
					ir.SetProp{Slot: 0, Name: "i", Op: ast.OpAdd, RHS: ir.Builtin{Op: ir.BNodeId}},
				},
				Next: 1,
			}},
			{Master: &MasterBlock{
				Stmts: []ir.Stmt{
					ir.If{
						Cond: ir.Binary{Op: ast.BinGt, L: ir.Builtin{Op: ir.BNumNodes}, R: ir.Const{V: ir.Int(3)}},
						Then: []ir.Stmt{ir.Return{Value: ir.Builtin{Op: ir.BNumEdges}}},
						Else: []ir.Stmt{ir.Return{Value: ir.Const{V: ir.Int(-1)}}},
					},
				},
				Term: Term{Kind: machineTHalt()},
			}},
		},
		HasReturn:  true,
		ReturnKind: ir.KInt,
	}
}

func machineTHalt() TermKind { return THalt }

func TestEveryPropOpBothExecutors(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{Src: 0, Dst: 1}})
	b := Bindings{
		NodePropInt:   map[string][]int64{"i": {1, 2, 3, 4, 5}},
		NodePropFloat: map[string][]float64{"f": {1, 2, 3, 4, 5}},
	}
	for _, interp := range []bool{false, true} {
		res, err := RunWithOptions(opsProgram(), g, b, pregel.Config{NumWorkers: 2}, RunOptions{Interpret: interp})
		if err != nil {
			t.Fatal(err)
		}
		iv, _ := res.NodePropInt("i")
		fv, _ := res.NodePropFloat("f")
		bv, _ := res.NodePropInt("b")
		nv, _ := res.NodePropInt("n")
		for v := 0; v < 5; v++ {
			// i: max(v+1)*2-1, 5) + v
			base := int64(v+1)*2 - 1
			if base < 5 {
				base = 5
			}
			if iv[v] != base+int64(v) {
				t.Errorf("interp=%v: i[%d] = %d, want %d", interp, v, iv[v], base+int64(v))
			}
			// f: max(f*0.5-0.5, 0.25) then min with 100.
			wantF := float64(v+1)*0.5 - 0.5
			if wantF < 0.25 {
				wantF = 0.25
			}
			if fv[v] != wantF {
				t.Errorf("interp=%v: f[%d] = %v, want %v", interp, v, fv[v], wantF)
			}
			wantB := int64(0)
			if iv[v]-int64(v) > 2 { // b computed before the final +=
				wantB = 1
			}
			if bv[v] != wantB {
				t.Errorf("interp=%v: b[%d] = %d, want %d", interp, v, bv[v], wantB)
			}
			if nv[v] != int64(v) {
				t.Errorf("interp=%v: n[%d] = %d", interp, v, nv[v])
			}
		}
		if !res.HasRet || res.Ret.AsInt() != g.NumEdges() {
			t.Errorf("interp=%v: return = %v, want %d", interp, res.Ret, g.NumEdges())
		}
	}
}

func TestResultAccessorErrors(t *testing.T) {
	g := graph.FromEdges(2, nil)
	res, err := Run(opsProgram(), g, Bindings{}, pregel.Config{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.NodePropInt("nope"); err == nil {
		t.Error("unknown property should error")
	}
	if _, err := res.NodePropFloat("i"); err == nil {
		t.Error("kind mismatch should error")
	}
	if _, err := res.NodePropInt("f"); err == nil {
		t.Error("kind mismatch should error")
	}
}

func TestProgramListingCoversInNbrStmts(t *testing.T) {
	p := &Program{
		Name: "innbr",
		Msgs: []MsgSchema{{Name: "_id", Fields: []ir.Kind{ir.KNode}}, {Name: "d", Fields: []ir.Kind{ir.KFloat}}},
		Nodes: []CFGNode{
			{Vertex: &VertexState{Name: "s0", Body: []ir.Stmt{
				ir.SendToNbrs{MsgType: 0, Payload: []ir.Expr{ir.CurNode{}}},
			}, Next: 1}},
			{Vertex: &VertexState{Name: "s1", Body: []ir.Stmt{
				ir.CollectInNbrs{MsgType: 0},
				ir.SendToInNbrs{MsgType: 1, Payload: []ir.Expr{ir.Const{V: ir.Float(1)}}},
			}, Next: 2}},
			{Master: &MasterBlock{Term: Term{Kind: THalt}}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"collectInNbrs", "sendToInNbrs"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	// And it runs: every vertex ends up messaging its in-neighbors.
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 3}})
	res, err := Run(p, g, Bindings{}, pregel.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// s0 sends 3 ID messages; s1 sends one per in-edge = 3.
	if res.Stats.MessagesSent != 6 {
		t.Errorf("messages = %d, want 6", res.Stats.MessagesSent)
	}
}

func TestMaxSuperstepGuardOnMachine(t *testing.T) {
	// A while(true) over a vertex state must hit the engine's superstep
	// cap, not hang.
	p := &Program{
		Name: "forever",
		Nodes: []CFGNode{
			{Vertex: &VertexState{Name: "spin", Next: 1}},
			{Master: &MasterBlock{Term: Term{Kind: TGoto, Then: 0}}},
		},
	}
	_, err := Run(p, graph.FromEdges(3, nil), Bindings{}, pregel.Config{NumWorkers: 1, MaxSupersteps: 25})
	if err == nil || !strings.Contains(err.Error(), "superstep") {
		t.Errorf("want superstep-cap error, got %v", err)
	}
}
