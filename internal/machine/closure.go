// Closure compilation: vertex-state bodies are compiled once per run
// into trees of Go closures, removing per-vertex interpretive dispatch
// (type switches and interface assertions) from the hot path. The
// GPS-generated Java programs the paper measures are javac-compiled;
// this is our equivalent, keeping the generated-vs-manual comparison of
// Figure 6 about the programming model rather than interpreter overhead.
package machine

import (
	"fmt"
	"math"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

type exprFn func(env *vertexEnv) ir.Value
type stmtFn func(env *vertexEnv)

// compileState compiles one vertex state's body.
func (ex *exec) compileState(vs *VertexState) []stmtFn {
	out := make([]stmtFn, 0, len(vs.Body))
	for _, s := range vs.Body {
		out = append(out, ex.compileStmt(s, vs))
	}
	return out
}

func (ex *exec) compileStmts(ss []ir.Stmt, vs *VertexState) []stmtFn {
	out := make([]stmtFn, 0, len(ss))
	for _, s := range ss {
		out = append(out, ex.compileStmt(s, vs))
	}
	return out
}

func runAll(fns []stmtFn, env *vertexEnv) {
	for _, f := range fns {
		f(env)
	}
}

func (ex *exec) compileStmt(s ir.Stmt, vs *VertexState) stmtFn {
	switch s := s.(type) {
	case ir.SetLocal:
		slot := s.Slot
		kind := vs.Locals[slot]
		rhs := ex.compileExpr(s.RHS)
		return func(env *vertexEnv) {
			env.locals[slot] = rhs(env).Convert(kind)
		}
	case ir.SetProp:
		return ex.compileSetProp(s)
	case ir.ContribAgg:
		agg := s.Agg
		rhs := ex.compileExpr(s.RHS)
		switch ex.p.Aggs[s.Agg].Kind {
		case ir.KFloat:
			return func(env *vertexEnv) { env.vc.AggFloat(agg, rhs(env).AsFloat()) }
		case ir.KBool:
			return func(env *vertexEnv) { env.vc.AggBool(agg, rhs(env).AsBool()) }
		default:
			return func(env *vertexEnv) { env.vc.AggInt(agg, rhs(env).AsInt()) }
		}
	case ir.SendToNbrs:
		return ex.compileSendToNbrs(s)
	case ir.SendTo:
		target := ex.compileExpr(s.Target)
		build := ex.compileMsgBuilder(s.MsgType, s.Payload)
		return func(env *vertexEnv) {
			tgt := target(env).AsNode()
			if tgt == graph.NilNode {
				return
			}
			env.vc.Send(tgt, build(env))
		}
	case ir.SendToInNbrs:
		build := ex.compileMsgBuilder(s.MsgType, s.Payload)
		return func(env *vertexEnv) {
			for _, src := range ex.inNbrs[env.vc.ID()] {
				env.vc.Send(src, build(env))
			}
		}
	case ir.CollectInNbrs:
		mt := uint8(s.MsgType)
		return func(env *vertexEnv) {
			v := env.vc.ID()
			msgs := env.vc.Messages()
			for i := range msgs {
				if msgs[i].Type == mt {
					ex.inNbrs[v] = append(ex.inNbrs[v], msgs[i].Node(0))
				}
			}
		}
	case ir.ForMsgs:
		mt := uint8(s.MsgType)
		body := ex.compileStmts(s.Body, vs)
		return func(env *vertexEnv) {
			msgs := env.vc.Messages()
			for i := range msgs {
				if msgs[i].Type != mt {
					continue
				}
				env.curMsg = &msgs[i]
				runAll(body, env)
			}
			env.curMsg = nil
		}
	case ir.If:
		cond := ex.compileExpr(s.Cond)
		thenFns := ex.compileStmts(s.Then, vs)
		elseFns := ex.compileStmts(s.Else, vs)
		return func(env *vertexEnv) {
			if cond(env).AsBool() {
				runAll(thenFns, env)
			} else {
				runAll(elseFns, env)
			}
		}
	default:
		panic(fmt.Sprintf("machine: statement %T is not valid in vertex context", s))
	}
}

// compileSetProp specializes property updates by storage type and
// reduction operator — the hottest statement kind.
func (ex *exec) compileSetProp(s ir.SetProp) stmtFn {
	rhs := ex.compileExpr(s.RHS)
	col := &ex.cols[s.Slot]
	kind := ex.p.Props[s.Slot].Kind
	if col.f != nil {
		f := col.f
		switch s.Op {
		case ast.OpSet:
			return func(env *vertexEnv) { f[env.vc.ID()] = rhs(env).AsFloat() }
		case ast.OpAdd:
			return func(env *vertexEnv) { f[env.vc.ID()] += rhs(env).AsFloat() }
		case ast.OpSub:
			return func(env *vertexEnv) { f[env.vc.ID()] -= rhs(env).AsFloat() }
		case ast.OpMul:
			return func(env *vertexEnv) { f[env.vc.ID()] *= rhs(env).AsFloat() }
		case ast.OpMin:
			return func(env *vertexEnv) {
				if v := rhs(env).AsFloat(); v < f[env.vc.ID()] {
					f[env.vc.ID()] = v
				}
			}
		case ast.OpMax:
			return func(env *vertexEnv) {
				if v := rhs(env).AsFloat(); v > f[env.vc.ID()] {
					f[env.vc.ID()] = v
				}
			}
		}
		op := s.Op
		return func(env *vertexEnv) {
			old := ir.Float(f[env.vc.ID()])
			f[env.vc.ID()] = ir.Reduce(op, old, rhs(env)).F
		}
	}
	iCol := col.i
	switch s.Op {
	case ast.OpSet:
		if kind == ir.KNode || kind == ir.KInt {
			return func(env *vertexEnv) { iCol[env.vc.ID()] = rhs(env).AsInt() }
		}
		// Bool: normalize to 0/1.
		return func(env *vertexEnv) {
			if rhs(env).AsBool() {
				iCol[env.vc.ID()] = 1
			} else {
				iCol[env.vc.ID()] = 0
			}
		}
	case ast.OpAdd:
		return func(env *vertexEnv) { iCol[env.vc.ID()] += rhs(env).AsInt() }
	case ast.OpSub:
		return func(env *vertexEnv) { iCol[env.vc.ID()] -= rhs(env).AsInt() }
	case ast.OpMin:
		return func(env *vertexEnv) {
			if v := rhs(env).AsInt(); v < iCol[env.vc.ID()] {
				iCol[env.vc.ID()] = v
			}
		}
	case ast.OpMax:
		return func(env *vertexEnv) {
			if v := rhs(env).AsInt(); v > iCol[env.vc.ID()] {
				iCol[env.vc.ID()] = v
			}
		}
	}
	op := s.Op
	k := kind
	return func(env *vertexEnv) {
		old := ir.Value{K: k, I: iCol[env.vc.ID()]}
		iCol[env.vc.ID()] = ir.Reduce(op, old, rhs(env)).I
	}
}

func (ex *exec) compileSendToNbrs(s ir.SendToNbrs) stmtFn {
	var cond exprFn
	if s.EdgeCond != nil {
		cond = ex.compileExpr(s.EdgeCond)
	}
	fields := ex.p.Msgs[s.MsgType].Fields
	payload := make([]exprFn, len(s.Payload))
	for i, p := range s.Payload {
		payload[i] = ex.compileExpr(p)
	}
	mt := uint8(s.MsgType)

	// When neither the payload nor the condition reads edge properties,
	// the message is identical on every edge: build it once per vertex,
	// exactly as hand-written code does.
	perEdge := exprsUseEdgeProps(append(append([]ir.Expr(nil), s.Payload...), s.EdgeCond))
	if !perEdge {
		return func(env *vertexEnv) {
			// On a pull superstep the engine drops sends; skip building
			// the message (the gather phase re-derives it per in-edge).
			if env.vc.PullStep() {
				return
			}
			if cond != nil && !cond(env).AsBool() {
				return
			}
			var m pregel.Msg
			m.Type = mt
			for i, pf := range payload {
				setField(&m, i, fields[i], pf(env))
			}
			env.vc.SendToAllNbrs(m)
		}
	}
	return func(env *vertexEnv) {
		if env.vc.PullStep() {
			return
		}
		lo, hi := env.vc.OutEdgeRange()
		nbrs := env.vc.OutNbrs()
		for e := lo; e < hi; e++ {
			env.curEdge = e
			if cond != nil && !cond(env).AsBool() {
				continue
			}
			var m pregel.Msg
			m.Type = mt
			for i, pf := range payload {
				setField(&m, i, fields[i], pf(env))
			}
			env.vc.Send(nbrs[e-lo], m)
		}
		env.curEdge = -1
	}
}

// exprsUseEdgeProps reports whether any expression reads an edge
// property.
func exprsUseEdgeProps(es []ir.Expr) bool {
	found := false
	for _, e := range es {
		ir.WalkExprs(e, func(x ir.Expr) {
			if _, ok := x.(ir.EdgePropRef); ok {
				found = true
			}
		})
	}
	return found
}

func (ex *exec) compileMsgBuilder(msgType int, payload []ir.Expr) func(env *vertexEnv) pregel.Msg {
	fields := ex.p.Msgs[msgType].Fields
	fns := make([]exprFn, len(payload))
	for i, p := range payload {
		fns[i] = ex.compileExpr(p)
	}
	mt := uint8(msgType)
	return func(env *vertexEnv) pregel.Msg {
		var m pregel.Msg
		m.Type = mt
		for i, pf := range fns {
			setField(&m, i, fields[i], pf(env))
		}
		return m
	}
}

func setField(m *pregel.Msg, i int, k ir.Kind, v ir.Value) {
	switch k {
	case ir.KFloat:
		m.SetFloat(i, v.AsFloat())
	case ir.KBool:
		m.SetBool(i, v.AsBool())
	case ir.KNode:
		m.SetNode(i, v.AsNode())
	default:
		m.SetInt(i, v.AsInt())
	}
}

func (ex *exec) compileExpr(e ir.Expr) exprFn {
	switch e := e.(type) {
	case ir.Const:
		v := e.V
		return func(*vertexEnv) ir.Value { return v }
	case ir.ScalarRef:
		slot := e.Slot
		switch ex.p.Scalars[slot].Kind {
		case ir.KFloat:
			return func(env *vertexEnv) ir.Value { return ir.Float(env.vc.GlobalFloat(1 + slot)) }
		case ir.KBool:
			return func(env *vertexEnv) ir.Value { return ir.Bool(env.vc.GlobalBool(1 + slot)) }
		case ir.KNode:
			return func(env *vertexEnv) ir.Value { return ir.Node(env.vc.GlobalNode(1 + slot)) }
		default:
			return func(env *vertexEnv) ir.Value { return ir.Int(env.vc.GlobalInt(1 + slot)) }
		}
	case ir.LocalRef:
		slot := e.Slot
		return func(env *vertexEnv) ir.Value { return env.locals[slot] }
	case ir.PropRef:
		col := &ex.cols[e.Slot]
		if col.f != nil {
			f := col.f
			return func(env *vertexEnv) ir.Value { return ir.Float(f[env.vc.ID()]) }
		}
		iCol := col.i
		k := ex.p.Props[e.Slot].Kind
		return func(env *vertexEnv) ir.Value { return ir.Value{K: k, I: iCol[env.vc.ID()]} }
	case ir.EdgePropRef:
		col := &ex.cols[e.Slot]
		if col.f != nil {
			f := col.f
			return func(env *vertexEnv) ir.Value { return ir.Float(f[env.curEdge]) }
		}
		iCol := col.i
		k := ex.p.Props[e.Slot].Kind
		return func(env *vertexEnv) ir.Value { return ir.Value{K: k, I: iCol[env.curEdge]} }
	case ir.CurNode:
		return func(env *vertexEnv) ir.Value { return ir.Node(env.vc.ID()) }
	case ir.MsgField:
		idx := e.Idx
		switch e.K {
		case ir.KFloat:
			return func(env *vertexEnv) ir.Value { return ir.Float(env.curMsg.Float(idx)) }
		case ir.KBool:
			return func(env *vertexEnv) ir.Value { return ir.Bool(env.curMsg.Bool(idx)) }
		case ir.KNode:
			return func(env *vertexEnv) ir.Value { return ir.Node(env.curMsg.Node(idx)) }
		default:
			return func(env *vertexEnv) ir.Value { return ir.Int(env.curMsg.Int(idx)) }
		}
	case ir.Builtin:
		switch e.Op {
		case ir.BNumNodes:
			return func(env *vertexEnv) ir.Value { return ir.Int(int64(env.vc.NumNodes())) }
		case ir.BNumEdges:
			m := ex.g.NumEdges()
			return func(*vertexEnv) ir.Value { return ir.Int(m) }
		case ir.BDegree:
			return func(env *vertexEnv) ir.Value { return ir.Int(int64(env.vc.OutDegree())) }
		case ir.BPickRandom:
			return func(env *vertexEnv) ir.Value {
				return ir.Node(graph.NodeID(env.vc.Rand().Intn(env.vc.NumNodes())))
			}
		case ir.BNodeId:
			return func(env *vertexEnv) ir.Value { return ir.Int(int64(env.vc.ID())) }
		}
	case ir.Binary:
		return compileBinary(e.Op, ex.compileExpr(e.L), ex.compileExpr(e.R))
	case ir.Unary:
		x := ex.compileExpr(e.X)
		if e.Op == ast.UnNot {
			return func(env *vertexEnv) ir.Value { return ir.Bool(!x(env).AsBool()) }
		}
		return func(env *vertexEnv) ir.Value {
			v := x(env)
			if v.K == ir.KFloat {
				return ir.Float(-v.F)
			}
			return ir.Value{K: v.K, I: -v.I}
		}
	case ir.Ternary:
		cond := ex.compileExpr(e.Cond)
		th := ex.compileExpr(e.Then)
		el := ex.compileExpr(e.Else)
		return func(env *vertexEnv) ir.Value {
			if cond(env).AsBool() {
				return th(env)
			}
			return el(env)
		}
	}
	panic(fmt.Sprintf("machine: cannot compile expression %T", e))
}

func compileBinary(op ast.BinOp, l, r exprFn) exprFn {
	switch op {
	case ast.BinAnd:
		return func(env *vertexEnv) ir.Value {
			if !l(env).AsBool() {
				return ir.Bool(false)
			}
			return ir.Bool(r(env).AsBool())
		}
	case ast.BinOr:
		return func(env *vertexEnv) ir.Value {
			if l(env).AsBool() {
				return ir.Bool(true)
			}
			return ir.Bool(r(env).AsBool())
		}
	case ast.BinEq:
		return func(env *vertexEnv) ir.Value { return ir.Bool(ir.Equal(l(env), r(env))) }
	case ast.BinNeq:
		return func(env *vertexEnv) ir.Value { return ir.Bool(!ir.Equal(l(env), r(env))) }
	case ast.BinLt:
		return func(env *vertexEnv) ir.Value { return ir.Bool(ir.Less(l(env), r(env))) }
	case ast.BinGt:
		return func(env *vertexEnv) ir.Value { return ir.Bool(ir.Less(r(env), l(env))) }
	case ast.BinLe:
		return func(env *vertexEnv) ir.Value { return ir.Bool(!ir.Less(r(env), l(env))) }
	case ast.BinGe:
		return func(env *vertexEnv) ir.Value { return ir.Bool(!ir.Less(l(env), r(env))) }
	}
	return func(env *vertexEnv) ir.Value {
		a := l(env)
		b := r(env)
		if a.K == ir.KFloat || b.K == ir.KFloat {
			x, y := a.AsFloat(), b.AsFloat()
			switch op {
			case ast.BinAdd:
				return ir.Float(x + y)
			case ast.BinSub:
				return ir.Float(x - y)
			case ast.BinMul:
				return ir.Float(x * y)
			case ast.BinDiv:
				return ir.Float(x / y)
			}
			return ir.Float(math.NaN())
		}
		x, y := a.AsInt(), b.AsInt()
		switch op {
		case ast.BinAdd:
			return ir.Int(x + y)
		case ast.BinSub:
			return ir.Int(x - y)
		case ast.BinMul:
			return ir.Int(x * y)
		case ast.BinDiv:
			if y == 0 {
				return ir.Int(0)
			}
			return ir.Int(x / y)
		case ast.BinMod:
			if y == 0 {
				return ir.Int(0)
			}
			return ir.Int(x % y)
		}
		return ir.Int(0)
	}
}
