// Package machine defines the compiled Pregel program representation the
// Green-Marl compiler targets, and interprets it on the pregel engine.
//
// A Program is a control-flow graph whose nodes are either master blocks
// (sequential code executed inside master.compute) or vertex states
// (vertex-parallel code executed inside vertex.compute). Each superstep,
// the master runs blocks — following Goto/CondGoto terminators — until it
// reaches a vertex state, broadcasts that state's number and the scalars
// the state reads (the paper's global-objects map), and lets the vertex
// phase run; the next superstep resumes at the state's successor. This is
// exactly the state-machine structure of the paper's generated GPS code
// (§3.1, "State Machine Construction").
package machine

import (
	"fmt"
	"strings"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/ir"
)

// ScalarDecl declares a master scalar (a "global variable" of the
// original program, or a compiler temporary).
type ScalarDecl struct {
	Name    string
	Kind    ir.Kind
	IsParam bool
}

// PropDecl declares a vertex or edge property column.
type PropDecl struct {
	Name    string
	Kind    ir.Kind
	IsEdge  bool
	IsParam bool
}

// AggDecl declares an aggregator used to reduce vertex writes into a
// master scalar.
type AggDecl struct {
	Name string
	Kind ir.Kind
	Op   ast.AssignOp // OpAdd/OpMin/OpMax/OpAnd/OpOr, or OpSet for any-wins
}

// MsgSchema declares one message type's payload layout.
type MsgSchema struct {
	Name   string
	Fields []ir.Kind
}

// PayloadBytes is the wire size of the message payload.
func (m MsgSchema) PayloadBytes() int {
	n := 0
	for _, f := range m.Fields {
		n += f.WireSize()
	}
	return n
}

// TermKind is a master-block terminator kind.
type TermKind int

// Terminator kinds.
const (
	TGoto TermKind = iota
	TCond
	THalt
)

// Term transfers control between CFG nodes.
type Term struct {
	Kind TermKind
	Cond ir.Expr // TCond
	Then int     // TGoto/TCond target
	Else int     // TCond target
}

// MasterBlock is sequential master code plus a terminator.
type MasterBlock struct {
	Stmts []ir.Stmt
	Term  Term
}

// VertexState is one vertex-parallel state: its body runs once per
// vertex in the superstep where the state is active.
type VertexState struct {
	Name string
	Body []ir.Stmt
	// Next is the CFG node where the master resumes next superstep.
	Next int
	// ReadScalars lists master scalar slots the body reads; they are
	// broadcast through the global-objects map before the state runs.
	ReadScalars []int
	// Locals declares per-invocation temporary slots.
	Locals []ir.Kind
	// LocalNames aligns with Locals, for printing.
	LocalNames []string
}

// CFGNode is either a master block or a vertex state.
type CFGNode struct {
	Master *MasterBlock
	Vertex *VertexState
}

// LoopInfo records the CFG shape of one source While/Do-While loop, for
// the intra-loop state merging optimization.
type LoopInfo struct {
	// Cond is the node holding the loop's condition terminator.
	Cond int
	// BodyStart is the first node of the loop body.
	BodyStart int
	// BackEdge is the node whose terminator returns to the condition
	// (equal to Cond for do-while loops).
	BackEdge int
	DoWhile  bool
}

// Program is a complete compiled Pregel program.
type Program struct {
	Name    string
	Scalars []ScalarDecl
	Props   []PropDecl
	Aggs    []AggDecl
	Msgs    []MsgSchema
	Nodes   []CFGNode
	Entry   int
	Loops   []LoopInfo
	// HasReturn reports whether the program produces a return value.
	HasReturn  bool
	ReturnKind ir.Kind
	// Analysis is the front end's static-analysis verdict (nil for
	// hand-built programs); it rides along in the JSON artifact so
	// downstream tooling can report which programs compiled clean.
	Analysis *AnalysisSummary
}

// AnalysisSummary condenses the diagnostics the static analyzer emitted
// for the source procedure: severity totals and the distinct codes seen.
type AnalysisSummary struct {
	Errors      int      `json:"errors"`
	Warnings    int      `json:"warnings"`
	Infos       int      `json:"infos"`
	Codes       []string `json:"codes,omitempty"`
	WarningFree bool     `json:"warning_free"`
}

// NumVertexStates counts the vertex-parallel kernels of the program (the
// paper's "vertex-centric kernels").
func (p *Program) NumVertexStates() int {
	n := 0
	for _, c := range p.Nodes {
		if c.Vertex != nil {
			n++
		}
	}
	return n
}

// Validate checks CFG and slot invariants, returning the first violation.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Nodes) {
		return fmt.Errorf("machine: entry %d out of range", p.Entry)
	}
	inRange := func(t int) bool { return t >= 0 && t < len(p.Nodes) }
	for i, n := range p.Nodes {
		switch {
		case n.Master == nil && n.Vertex == nil:
			return fmt.Errorf("machine: node %d is empty", i)
		case n.Master != nil && n.Vertex != nil:
			return fmt.Errorf("machine: node %d is both master and vertex", i)
		case n.Master != nil:
			t := n.Master.Term
			switch t.Kind {
			case TGoto:
				if !inRange(t.Then) {
					return fmt.Errorf("machine: node %d goto target %d out of range", i, t.Then)
				}
			case TCond:
				if !inRange(t.Then) || !inRange(t.Else) {
					return fmt.Errorf("machine: node %d cond targets (%d,%d) out of range", i, t.Then, t.Else)
				}
				if t.Cond == nil {
					return fmt.Errorf("machine: node %d cond terminator without condition", i)
				}
			case THalt:
			default:
				return fmt.Errorf("machine: node %d has unknown terminator %d", i, t.Kind)
			}
		case n.Vertex != nil:
			if !inRange(n.Vertex.Next) {
				return fmt.Errorf("machine: vertex state %d next %d out of range", i, n.Vertex.Next)
			}
			for _, s := range n.Vertex.ReadScalars {
				if s < 0 || s >= len(p.Scalars) {
					return fmt.Errorf("machine: vertex state %d reads bad scalar %d", i, s)
				}
			}
			if err := p.validateStmts(n.Vertex.Body, n.Vertex); err != nil {
				return fmt.Errorf("machine: vertex state %d: %v", i, err)
			}
		}
	}
	return nil
}

func (p *Program) validateStmts(ss []ir.Stmt, vs *VertexState) error {
	for _, s := range ss {
		switch s := s.(type) {
		case ir.SetProp:
			if s.Slot < 0 || s.Slot >= len(p.Props) {
				return fmt.Errorf("bad prop slot %d", s.Slot)
			}
		case ir.SetLocal:
			if s.Slot < 0 || s.Slot >= len(vs.Locals) {
				return fmt.Errorf("bad local slot %d", s.Slot)
			}
		case ir.ContribAgg:
			if s.Agg < 0 || s.Agg >= len(p.Aggs) {
				return fmt.Errorf("bad agg slot %d", s.Agg)
			}
		case ir.SendToNbrs:
			if s.MsgType < 0 || s.MsgType >= len(p.Msgs) {
				return fmt.Errorf("bad message type %d", s.MsgType)
			}
		case ir.SendTo:
			if s.MsgType < 0 || s.MsgType >= len(p.Msgs) {
				return fmt.Errorf("bad message type %d", s.MsgType)
			}
		case ir.SendToInNbrs:
			if s.MsgType < 0 || s.MsgType >= len(p.Msgs) {
				return fmt.Errorf("bad message type %d", s.MsgType)
			}
		case ir.CollectInNbrs:
			if s.MsgType < 0 || s.MsgType >= len(p.Msgs) {
				return fmt.Errorf("bad message type %d", s.MsgType)
			}
		case ir.ForMsgs:
			if s.MsgType < 0 || s.MsgType >= len(p.Msgs) {
				return fmt.Errorf("bad message type %d", s.MsgType)
			}
			if err := p.validateStmts(s.Body, vs); err != nil {
				return err
			}
		case ir.If:
			if err := p.validateStmts(s.Then, vs); err != nil {
				return err
			}
			if err := p.validateStmts(s.Else, vs); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders a readable listing of the program (used by the CLI's
// -dump-machine and by debugging tests).
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	fmt.Fprintf(&b, "  scalars:")
	for i, s := range p.Scalars {
		fmt.Fprintf(&b, " [%d]%s:%s", i, s.Name, s.Kind)
	}
	fmt.Fprintf(&b, "\n  props:")
	for i, pr := range p.Props {
		tag := "node"
		if pr.IsEdge {
			tag = "edge"
		}
		fmt.Fprintf(&b, " [%d]%s:%s(%s)", i, pr.Name, pr.Kind, tag)
	}
	fmt.Fprintf(&b, "\n  aggs:")
	for i, a := range p.Aggs {
		fmt.Fprintf(&b, " [%d]%s:%s %s", i, a.Name, a.Kind, a.Op)
	}
	fmt.Fprintf(&b, "\n  msgs:")
	for i, m := range p.Msgs {
		fmt.Fprintf(&b, " [%d]%s%v", i, m.Name, m.Fields)
	}
	fmt.Fprintf(&b, "\n  entry: node %d\n", p.Entry)
	for i, n := range p.Nodes {
		if n.Master != nil {
			fmt.Fprintf(&b, "  node %d (master):\n", i)
			for _, s := range n.Master.Stmts {
				fmt.Fprintf(&b, "    %s\n", s)
			}
			switch n.Master.Term.Kind {
			case TGoto:
				fmt.Fprintf(&b, "    goto %d\n", n.Master.Term.Then)
			case TCond:
				fmt.Fprintf(&b, "    if %s goto %d else %d\n", n.Master.Term.Cond, n.Master.Term.Then, n.Master.Term.Else)
			case THalt:
				fmt.Fprintf(&b, "    halt\n")
			}
		} else {
			v := n.Vertex
			fmt.Fprintf(&b, "  node %d (vertex %q, next=%d, reads=%v):\n", i, v.Name, v.Next, v.ReadScalars)
			for _, s := range v.Body {
				fmt.Fprintf(&b, "    %s\n", s)
			}
		}
	}
	return b.String()
}
