// Gather compilation: the pull-phase counterpart of closure.go. A
// vertex state whose sends can be re-derived from post-compute state is
// "gather eligible": the engine may then run the superstep in pull
// direction, with each destination re-evaluating the sender's guard
// chain, edge condition, and payload over the reverse CSR instead of
// receiving pushed messages (Beamer-style direction optimization). The
// compiled gather closures evaluate the SAME ir expressions as the push
// send site, only oriented at a remote source vertex, so the gathered
// inbox is bit-identical to the pushed one by construction.
package machine

import (
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// gatherInfo is the pull-orientation compilation of one vertex state.
type gatherInfo struct {
	ok   bool
	none bool // eligible because the state has no send site at all

	// guards are the compiled If conditions dominating the send site,
	// outermost first, with else-branch polarity folded in; cond is the
	// compiled per-edge condition (nil when unconditional); payload
	// builds the message fields.
	guards  []exprFn
	cond    exprFn
	msgType uint8
	fields  []ir.Kind
	payload []exprFn
}

// guardAt is one If condition on the path to the send site: cond with
// neg polarity (true for the else branch), introduced at clock `at`.
type guardAt struct {
	cond ir.Expr
	neg  bool
	at   int
}

// gatherScan is the structural pass over a vertex-state body. It
// assigns every statement a clock in source order (an If's branches
// tick after the If itself), records the latest write clock per
// property slot, and captures the unique SendToNbrs site with its
// dominating guard chain.
type gatherScan struct {
	clock    int
	maxWrite map[int]int
	send     *ir.SendToNbrs
	sendTime int
	guards   []guardAt
	path     []guardAt
	forDepth int
	bad      bool
}

func (g *gatherScan) scan(ss []ir.Stmt) {
	for _, s := range ss {
		if g.bad {
			return
		}
		g.clock++
		c := g.clock
		switch s := s.(type) {
		case ir.SetProp:
			if c > g.maxWrite[s.Slot] {
				g.maxWrite[s.Slot] = c
			}
		case ir.SendToNbrs:
			// Message-dependent or multi-site sends cannot be re-derived
			// from one edge scan.
			if g.forDepth > 0 || g.send != nil {
				g.bad = true
				return
			}
			cp := s
			g.send = &cp
			g.sendTime = c
			g.guards = append([]guardAt(nil), g.path...)
		case ir.SendTo, ir.SendToInNbrs, ir.CollectInNbrs:
			// Targets other than out-neighbors have no reverse-CSR dual.
			g.bad = true
			return
		case ir.ForMsgs:
			g.forDepth++
			g.scan(s.Body)
			g.forDepth--
		case ir.If:
			g.path = append(g.path, guardAt{cond: s.Cond, at: c})
			g.scan(s.Then)
			g.path[len(g.path)-1].neg = true
			g.scan(s.Else)
			g.path = g.path[:len(g.path)-1]
		}
	}
}

// gatherExprOK reports whether e can be re-evaluated at gather time and
// accumulates the node-property slots it reads. Locals and message
// fields are per-execution scratch that no longer exists post-compute;
// PickRandom would draw a fresh sample. allowEdge admits edge-property
// reads (legal at the send site, never in a vertex-level guard).
func gatherExprOK(e ir.Expr, allowEdge bool, reads map[int]bool) bool {
	ok := true
	ir.WalkExprs(e, func(x ir.Expr) {
		switch x := x.(type) {
		case ir.LocalRef, ir.MsgField:
			ok = false
		case ir.EdgePropRef:
			if !allowEdge {
				ok = false
			}
		case ir.Builtin:
			if x.Op == ir.BPickRandom {
				ok = false
			}
		case ir.PropRef:
			reads[x.Slot] = true
		}
	})
	return ok
}

// analyzeGatherState decides eligibility for one vertex state and, when
// eligible, compiles its gather closures. The soundness rule is
// position-based: every property slot read by a gather expression must
// not be written at any clock after that expression's evaluation site
// (the If for a guard, the send for cond/payload). Writes before the
// site are fine — the value the push run read is then also the
// post-compute value gather sees. Writes after the site — including
// the divergent branch of a guard's own If — could make the gather
// re-evaluation disagree with what push actually did, so they make the
// state ineligible. The rule is conservative (clock order ignores
// branch exclusivity after the send) but admits every generated
// program that writes state before sending, pagerank and sssp
// included.
func (ex *exec) analyzeGatherState(vs *VertexState) gatherInfo {
	g := gatherScan{maxWrite: make(map[int]int)}
	g.scan(vs.Body)
	if g.bad {
		return gatherInfo{}
	}
	if g.send == nil {
		// A silent state pushes nothing; gathering nothing matches it.
		return gatherInfo{ok: true, none: true}
	}
	for _, gu := range g.guards {
		reads := make(map[int]bool)
		if !gatherExprOK(gu.cond, false, reads) {
			return gatherInfo{}
		}
		for slot := range reads { //gm:nondeterministic-ok order-independent all-slots-pass check
			if g.maxWrite[slot] > gu.at {
				return gatherInfo{}
			}
		}
	}
	reads := make(map[int]bool)
	if g.send.EdgeCond != nil && !gatherExprOK(g.send.EdgeCond, true, reads) {
		return gatherInfo{}
	}
	for _, pe := range g.send.Payload {
		if !gatherExprOK(pe, true, reads) {
			return gatherInfo{}
		}
	}
	for slot := range reads { //gm:nondeterministic-ok order-independent all-slots-pass check
		if g.maxWrite[slot] > g.sendTime {
			return gatherInfo{}
		}
	}

	gi := gatherInfo{
		ok:      true,
		msgType: uint8(g.send.MsgType),
		fields:  ex.p.Msgs[g.send.MsgType].Fields,
	}
	for _, gu := range g.guards {
		f := ex.compileGatherExpr(gu.cond)
		if gu.neg {
			inner := f
			f = func(env *vertexEnv) ir.Value { return ir.Bool(!inner(env).AsBool()) }
		}
		gi.guards = append(gi.guards, f)
	}
	if g.send.EdgeCond != nil {
		gi.cond = ex.compileGatherExpr(g.send.EdgeCond)
	}
	gi.payload = make([]exprFn, len(g.send.Payload))
	for i, pe := range g.send.Payload {
		gi.payload[i] = ex.compileGatherExpr(pe)
	}
	return gi
}

// GatherEligible implements pregel.GatherSender. The master has already
// picked this superstep's vertex state when the engine asks, so the
// answer is per-state: a DirAuto run flips to pull only on supersteps
// whose state was proven gather-convertible.
func (ex *exec) GatherEligible(superstep int) bool {
	return ex.state >= 0 && ex.state < len(ex.gather) && ex.gather[ex.state].ok
}

// Gather implements pregel.GatherSender: re-derive the message src
// pushed along one out-edge, from src's post-compute state. It runs on
// the pull hot path and must stay allocation-free; the compiled
// closures it dispatches through are the same ones the push vertex
// phase runs (TestWarmPullZeroAlloc covers the engine-side loop).
func (ex *exec) Gather(gc *pregel.GatherContext, src graph.NodeID, edge int64) (pregel.Msg, bool) {
	gi := &ex.gather[ex.state]
	if gi.none {
		return pregel.Msg{}, false
	}
	env := ex.envs[gc.ExecutorIndex()]
	env.gc, env.gnode = gc, src
	env.curEdge = edge
	for _, guard := range gi.guards {
		if !guard(env).AsBool() {
			env.gc, env.curEdge = nil, -1
			return pregel.Msg{}, false
		}
	}
	if gi.cond != nil && !gi.cond(env).AsBool() {
		env.gc, env.curEdge = nil, -1
		return pregel.Msg{}, false
	}
	var m pregel.Msg
	m.Type = gi.msgType
	for i, pf := range gi.payload {
		setField(&m, i, gi.fields[i], pf(env))
	}
	env.gc, env.curEdge = nil, -1
	return m, true
}

// compileGatherExpr mirrors compileExpr with reads oriented at the
// gather source: properties and builtins index env.gnode and globals
// come from the GatherContext (same engine-level values the vertex
// phase read, just fetched without a VertexContext). The eligibility
// pass guarantees only this subset appears.
func (ex *exec) compileGatherExpr(e ir.Expr) exprFn {
	switch e := e.(type) {
	case ir.Const:
		v := e.V
		return func(*vertexEnv) ir.Value { return v }
	case ir.ScalarRef:
		slot := e.Slot
		switch ex.p.Scalars[slot].Kind {
		case ir.KFloat:
			return func(env *vertexEnv) ir.Value { return ir.Float(env.gc.GlobalFloat(1 + slot)) }
		case ir.KBool:
			return func(env *vertexEnv) ir.Value { return ir.Bool(env.gc.GlobalBool(1 + slot)) }
		case ir.KNode:
			return func(env *vertexEnv) ir.Value { return ir.Node(env.gc.GlobalNode(1 + slot)) }
		default:
			return func(env *vertexEnv) ir.Value { return ir.Int(env.gc.GlobalInt(1 + slot)) }
		}
	case ir.PropRef:
		col := &ex.cols[e.Slot]
		if col.f != nil {
			f := col.f
			return func(env *vertexEnv) ir.Value { return ir.Float(f[env.gnode]) }
		}
		iCol := col.i
		k := ex.p.Props[e.Slot].Kind
		return func(env *vertexEnv) ir.Value { return ir.Value{K: k, I: iCol[env.gnode]} }
	case ir.EdgePropRef:
		// env.curEdge holds the original out-edge position (the reverse
		// CSR stores it), so edge-property reads need no reorientation.
		col := &ex.cols[e.Slot]
		if col.f != nil {
			f := col.f
			return func(env *vertexEnv) ir.Value { return ir.Float(f[env.curEdge]) }
		}
		iCol := col.i
		k := ex.p.Props[e.Slot].Kind
		return func(env *vertexEnv) ir.Value { return ir.Value{K: k, I: iCol[env.curEdge]} }
	case ir.CurNode:
		return func(env *vertexEnv) ir.Value { return ir.Node(env.gnode) }
	case ir.Builtin:
		switch e.Op {
		case ir.BNumNodes:
			return func(env *vertexEnv) ir.Value { return ir.Int(int64(env.gc.NumNodes())) }
		case ir.BNumEdges:
			m := ex.g.NumEdges()
			return func(*vertexEnv) ir.Value { return ir.Int(m) }
		case ir.BDegree:
			return func(env *vertexEnv) ir.Value { return ir.Int(int64(env.gc.OutDegree(env.gnode))) }
		case ir.BNodeId:
			return func(env *vertexEnv) ir.Value { return ir.Int(int64(env.gnode)) }
		}
	case ir.Binary:
		return compileBinary(e.Op, ex.compileGatherExpr(e.L), ex.compileGatherExpr(e.R))
	case ir.Unary:
		x := ex.compileGatherExpr(e.X)
		if e.Op == ast.UnNot {
			return func(env *vertexEnv) ir.Value { return ir.Bool(!x(env).AsBool()) }
		}
		return func(env *vertexEnv) ir.Value {
			v := x(env)
			if v.K == ir.KFloat {
				return ir.Float(-v.F)
			}
			return ir.Value{K: v.K, I: -v.I}
		}
	case ir.Ternary:
		cond := ex.compileGatherExpr(e.Cond)
		th := ex.compileGatherExpr(e.Then)
		el := ex.compileGatherExpr(e.Else)
		return func(env *vertexEnv) ir.Value {
			if cond(env).AsBool() {
				return th(env)
			}
			return el(env)
		}
	}
	panic("machine: expression escaped the gather eligibility pass")
}
