package machine

import (
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/pregel"
)

func TestSerializeRoundTripHandBuilt(t *testing.T) {
	for _, p := range []*Program{avgProgram(), nbrSumProgram(), floatNodePayloadProgram(), loopProgram(), relaxProgram(), opsProgram()} {
		data, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		p2, err := DecodeProgram(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if p.String() != p2.String() {
			t.Errorf("%s: listing changed across round trip:\n--- original ---\n%s\n--- decoded ---\n%s",
				p.Name, p, p2)
		}
	}
}

func TestSerializedProgramRunsIdentically(t *testing.T) {
	p := relaxProgram()
	data, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 0, Dst: 5},
	})
	b := Bindings{
		NodePropInt: map[string][]int64{"dist": {0, 10, 20, 30, 40, 50}},
		EdgePropInt: map[string][]int64{"len": {1, 2, 3, 4, 5}},
	}
	cfg := pregel.Config{NumWorkers: 2}
	r1, err := Run(p, g, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p2, g, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := r1.NodePropInt("dist_nxt")
	d2, _ := r2.NodePropInt("dist_nxt")
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("dist_nxt[%d] = %d vs %d after reload", v, d1[v], d2[v])
		}
	}
	if r1.Stats.NetworkBytes != r2.Stats.NetworkBytes {
		t.Error("stats differ after reload")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		[]byte("not json"),
		[]byte(`{"name":"x","nodes":[{}]}`), // empty node
		[]byte(`{"name":"x","nodes":[{"master":{"term":0,"then":9}}]}`), // bad target
		[]byte(`{"name":"x","nodes":[{"vertex":{"next":0,"body":[{"k":"bogus"}]}}]}`),
	}
	for i, data := range cases {
		if _, err := DecodeProgram(data); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestSerializeCarriesAnalysisSummary(t *testing.T) {
	p := avgProgram()
	p.Analysis = &AnalysisSummary{
		Errors: 0, Warnings: 2, Infos: 3,
		Codes: []string{"GM2002", "GM4001"}, WarningFree: false,
	}
	data, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Analysis == nil {
		t.Fatal("analysis summary lost in round trip")
	}
	if p2.Analysis.Warnings != 2 || p2.Analysis.Infos != 3 || p2.Analysis.WarningFree ||
		len(p2.Analysis.Codes) != 2 || p2.Analysis.Codes[0] != "GM2002" {
		t.Errorf("analysis summary drifted: %+v", p2.Analysis)
	}
}
