package machine

import (
	"context"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// RunOptions control optional executor behavior.
type RunOptions struct {
	// UseCombiners installs Pregel message combiners for message types
	// whose receive handlers are pure single-field reductions (min=, +=,
	// …). Combining reduces message counts and network bytes — it is an
	// engine-level optimization the paper's compiler does NOT apply, so
	// it defaults to off; the ablation benchmarks measure its effect.
	UseCombiners bool
	// Interpret executes vertex states through the reference tree-walking
	// interpreter instead of the closure-compiled bodies. Slower; used by
	// the differential tests that check both executors agree.
	Interpret bool
}

// RunWithOptions is Run plus executor options.
func RunWithOptions(p *Program, g *graph.Directed, b Bindings, cfg pregel.Config, ro RunOptions) (*Result, error) {
	return run(context.Background(), p, g, b, cfg, ro)
}

// combinableOp returns, for each message type, the reduction operator
// that makes it combinable (opInvalid when not combinable). A type is
// combinable when every handler that consumes it is exactly
// `for msgs { this.prop op= msg.f0 }` with a commutative-associative op
// and a single payload field.
func combinableOps(p *Program) []ast.AssignOp {
	const opInvalid = ast.AssignOp(-1)
	ops := make([]ast.AssignOp, len(p.Msgs))
	for i := range ops {
		if len(p.Msgs[i].Fields) == 1 {
			ops[i] = opUnset
		} else {
			ops[i] = opInvalid
		}
	}
	var scan func(ss []ir.Stmt, topLevel bool)
	scan = func(ss []ir.Stmt, topLevel bool) {
		for _, s := range ss {
			switch s := s.(type) {
			case ir.ForMsgs:
				op := handlerReduction(s)
				if ops[s.MsgType] == opUnset {
					ops[s.MsgType] = op
				} else if ops[s.MsgType] != op {
					ops[s.MsgType] = opInvalid
				}
			case ir.CollectInNbrs:
				ops[s.MsgType] = opInvalid
			case ir.If:
				scan(s.Then, false)
				scan(s.Else, false)
			}
		}
	}
	for _, n := range p.Nodes {
		if n.Vertex != nil {
			scan(n.Vertex.Body, true)
		}
	}
	for i := range ops {
		if ops[i] == opUnset {
			ops[i] = opInvalid // never received: nothing to combine
		}
	}
	return ops
}

const opUnset = ast.AssignOp(-2)

// handlerReduction classifies one handler: the combinable op, or
// invalid.
func handlerReduction(f ir.ForMsgs) ast.AssignOp {
	const opInvalid = ast.AssignOp(-1)
	if len(f.Body) != 1 {
		return opInvalid
	}
	sp, ok := f.Body[0].(ir.SetProp)
	if !ok {
		return opInvalid
	}
	mf, ok := sp.RHS.(ir.MsgField)
	if !ok || mf.Idx != 0 {
		return opInvalid
	}
	switch sp.Op {
	case ast.OpAdd, ast.OpMin, ast.OpMax, ast.OpAnd, ast.OpOr:
		return sp.Op
	}
	return opInvalid
}

// combinerFor builds the engine combiner for a field kind and op.
func combinerFor(kind ir.Kind, op ast.AssignOp) pregel.Combiner {
	return func(into *pregel.Msg, m pregel.Msg) {
		var a, b ir.Value
		switch kind {
		case ir.KFloat:
			a, b = ir.Float(into.Float(0)), ir.Float(m.Float(0))
		case ir.KBool:
			a, b = ir.Bool(into.Bool(0)), ir.Bool(m.Bool(0))
		default:
			a, b = ir.Int(into.Int(0)), ir.Int(m.Int(0))
		}
		r := ir.Reduce(op, a, b)
		switch kind {
		case ir.KFloat:
			into.SetFloat(0, r.AsFloat())
		case ir.KBool:
			into.SetBool(0, r.AsBool())
		default:
			into.SetInt(0, r.AsInt())
		}
	}
}
