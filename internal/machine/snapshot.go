package machine

import (
	"encoding/binary"
	"fmt"
	"math"

	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
)

func floatSnapBits(f float64) uint64     { return math.Float64bits(f) }
func floatSnapFromBits(b uint64) float64 { return math.Float64frombits(b) }

// The executor implements pregel.Checkpointable so compiled programs
// recover from injected faults: the snapshot captures every piece of
// interpreter state a superstep mutates — the CFG position, scalar
// slots, property columns, collected incoming-neighbor lists, and the
// program return value. Compiled closures and per-worker environments
// are immutable/transient and are not stored.

const snapshotVersion = 1

// SnapshotState serializes the executor's mutable state.
func (ex *exec) SnapshotState() []byte {
	b := []byte{snapshotVersion}
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	boolb := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	value := func(v ir.Value) {
		b = append(b, byte(v.K))
		u64(uint64(v.I))
		u64(floatSnapBits(v.F))
	}

	u32(uint32(ex.cur))
	u32(uint32(ex.state))
	boolb(ex.retSet)
	value(ex.ret)
	u32(uint32(len(ex.scalars)))
	for _, v := range ex.scalars {
		value(v)
	}
	u32(uint32(len(ex.cols)))
	for _, c := range ex.cols {
		if c.f != nil {
			b = append(b, 1)
			u32(uint32(len(c.f)))
			for _, v := range c.f {
				u64(floatSnapBits(v))
			}
		} else {
			b = append(b, 0)
			u32(uint32(len(c.i)))
			for _, v := range c.i {
				u64(uint64(v))
			}
		}
	}
	boolb(ex.inNbrs != nil)
	if ex.inNbrs != nil {
		u32(uint32(len(ex.inNbrs)))
		for _, ns := range ex.inNbrs {
			u32(uint32(len(ns)))
			for _, n := range ns {
				u32(uint32(n))
			}
		}
	}
	return b
}

// RestoreState rewinds the executor to a prior snapshot. It panics on a
// malformed or mismatched snapshot; the engine converts the panic into a
// recovery error.
func (ex *exec) RestoreState(data []byte) {
	r := &snapReader{b: data}
	if v := r.u8(); v != snapshotVersion {
		panic(fmt.Sprintf("machine: unknown snapshot version %d", v))
	}
	ex.cur = int(r.u32())
	ex.state = int(r.u32())
	ex.retSet = r.bool()
	ex.ret = r.value()
	if n := int(r.u32()); n != len(ex.scalars) {
		panic(fmt.Sprintf("machine: snapshot scalar count %d, executor has %d", n, len(ex.scalars)))
	}
	for i := range ex.scalars {
		ex.scalars[i] = r.value()
	}
	if n := int(r.u32()); n != len(ex.cols) {
		panic(fmt.Sprintf("machine: snapshot column count %d, executor has %d", n, len(ex.cols)))
	}
	for i := range ex.cols {
		c := &ex.cols[i]
		isFloat := r.u8() == 1
		n := int(r.u32())
		switch {
		case isFloat && len(c.f) == n:
			for j := range c.f {
				c.f[j] = floatSnapFromBits(r.u64())
			}
		case !isFloat && len(c.i) == n:
			for j := range c.i {
				c.i[j] = int64(r.u64())
			}
		default:
			panic(fmt.Sprintf("machine: snapshot column %d shape mismatch", i))
		}
	}
	if r.bool() {
		if ex.inNbrs == nil || len(ex.inNbrs) != int(r.u32()) {
			panic("machine: snapshot in-neighbor shape mismatch")
		}
		for v := range ex.inNbrs {
			n := int(r.u32())
			ns := ex.inNbrs[v][:0]
			for j := 0; j < n; j++ {
				ns = append(ns, graph.NodeID(int32(r.u32())))
			}
			ex.inNbrs[v] = ns
		}
	} else if ex.inNbrs != nil {
		panic("machine: snapshot missing in-neighbor lists")
	}
	if r.bad {
		panic(fmt.Sprintf("machine: truncated snapshot (%d bytes)", len(data)))
	}
}

type snapReader struct {
	b   []byte
	off int
	bad bool
}

func (r *snapReader) take(n int) []byte {
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return make([]byte, n)
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}
func (r *snapReader) u8() byte    { return r.take(1)[0] }
func (r *snapReader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *snapReader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *snapReader) bool() bool  { return r.u8() != 0 }
func (r *snapReader) value() ir.Value {
	return ir.Value{K: ir.Kind(r.u8()), I: int64(r.u64()), F: floatSnapFromBits(r.u64())}
}
