package machine

import (
	"context"
	"fmt"
	"runtime"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// Bindings supplies values for the program's parameters: scalars by name
// and property columns by name. Property slices must have length
// NumNodes (node props) or NumEdges (edge props, indexed by out-edge
// position). Missing entries default to zero / NIL.
type Bindings struct {
	Int   map[string]int64
	Float map[string]float64
	Bool  map[string]bool
	Node  map[string]graph.NodeID

	NodePropInt   map[string][]int64
	NodePropFloat map[string][]float64
	NodePropBool  map[string][]bool
	NodePropNode  map[string][]graph.NodeID

	EdgePropInt   map[string][]int64
	EdgePropFloat map[string][]float64
}

// Result gives access to the final state of a program run.
type Result struct {
	Stats  pregel.Stats
	Ret    ir.Value
	HasRet bool

	prog *Program
	cols []column
}

type column struct {
	i []int64
	f []float64
}

func (r *Result) propSlot(name string) (int, error) {
	for i, p := range r.prog.Props {
		if p.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("machine: no property %q", name)
}

// NodePropInt returns the final values of an Int/Node-kind node property.
func (r *Result) NodePropInt(name string) ([]int64, error) {
	s, err := r.propSlot(name)
	if err != nil {
		return nil, err
	}
	if r.cols[s].i == nil {
		return nil, fmt.Errorf("machine: property %q is not integer-kinded", name)
	}
	return r.cols[s].i, nil
}

// NodePropFloat returns the final values of a Float-kind node property.
func (r *Result) NodePropFloat(name string) ([]float64, error) {
	s, err := r.propSlot(name)
	if err != nil {
		return nil, err
	}
	if r.cols[s].f == nil {
		return nil, fmt.Errorf("machine: property %q is not float-kinded", name)
	}
	return r.cols[s].f, nil
}

// Run executes the program on g with the given bindings.
func Run(p *Program, g *graph.Directed, b Bindings, cfg pregel.Config) (*Result, error) {
	return run(context.Background(), p, g, b, cfg, RunOptions{})
}

// RunContext is Run under a cancellation context: the run aborts at the
// next superstep barrier once ctx is done (see pregel.RunContext).
func RunContext(ctx context.Context, p *Program, g *graph.Directed, b Bindings, cfg pregel.Config) (*Result, error) {
	return run(ctx, p, g, b, cfg, RunOptions{})
}

func run(ctx context.Context, p *Program, g *graph.Directed, b Bindings, cfg pregel.Config, ro RunOptions) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ex := &exec{p: p, g: g, opts: ro}
	ex.scalars = make([]ir.Value, len(p.Scalars))
	for i, s := range p.Scalars {
		ex.scalars[i] = ir.Zero(s.Kind)
		if !s.IsParam {
			continue
		}
		switch s.Kind {
		case ir.KInt:
			if v, ok := b.Int[s.Name]; ok {
				ex.scalars[i] = ir.Int(v)
			}
		case ir.KFloat:
			if v, ok := b.Float[s.Name]; ok {
				ex.scalars[i] = ir.Float(v)
			}
		case ir.KBool:
			if v, ok := b.Bool[s.Name]; ok {
				ex.scalars[i] = ir.Bool(v)
			}
		case ir.KNode:
			if v, ok := b.Node[s.Name]; ok {
				ex.scalars[i] = ir.Node(v)
			}
		}
	}
	ex.cols = make([]column, len(p.Props))
	for i, pd := range p.Props {
		n := g.NumNodes()
		if pd.IsEdge {
			n = int(g.NumEdges())
		}
		switch pd.Kind {
		case ir.KFloat:
			col := make([]float64, n)
			if !pd.IsEdge {
				copy(col, b.NodePropFloat[pd.Name])
			} else {
				copy(col, b.EdgePropFloat[pd.Name])
			}
			ex.cols[i].f = col
		default:
			col := make([]int64, n)
			switch {
			case pd.Kind == ir.KNode && !pd.IsEdge:
				if src, ok := b.NodePropNode[pd.Name]; ok {
					for j := range src {
						if j < n {
							col[j] = int64(src[j])
						}
					}
				} else {
					for j := range col {
						col[j] = int64(graph.NilNode)
					}
				}
			case pd.Kind == ir.KBool && !pd.IsEdge:
				for j, v := range b.NodePropBool[pd.Name] {
					if j < n && v {
						col[j] = 1
					}
				}
			case !pd.IsEdge:
				copy(col, b.NodePropInt[pd.Name])
			default:
				copy(col, b.EdgePropInt[pd.Name])
			}
			ex.cols[i].i = col
		}
	}
	ex.cur = p.Entry
	if programUsesInNbrs(p) {
		ex.inNbrs = make([][]graph.NodeID, g.NumNodes())
	}
	// Closure-compile every vertex state once; allocate one reusable
	// environment per worker.
	ex.compiled = make([][]stmtFn, len(p.Nodes))
	ex.gather = make([]gatherInfo, len(p.Nodes))
	maxLocals := 0
	for i, n := range p.Nodes {
		if n.Vertex != nil {
			ex.compiled[i] = ex.compileState(n.Vertex)
			ex.gather[i] = ex.analyzeGatherState(n.Vertex)
			if len(n.Vertex.Locals) > maxLocals {
				maxLocals = len(n.Vertex.Locals)
			}
		}
	}
	ex.envs = make([]*vertexEnv, resolvedWorkers(cfg, g.NumNodes()))
	for w := range ex.envs {
		ex.envs[w] = &vertexEnv{ex: ex, curEdge: -1, locals: make([]ir.Value, maxLocals)}
	}
	st, err := pregel.RunContext(ctx, g, ex, cfg)
	res := &Result{Stats: st, prog: p, cols: ex.cols, Ret: ex.ret, HasRet: ex.retSet}
	if err != nil {
		// Partial result: Stats (and whatever the program computed so
		// far) stay readable alongside the abort error.
		return res, err
	}
	return res, nil
}

// exec is the interpreter; it implements pregel.Job.
type exec struct {
	p       *Program
	g       *graph.Directed
	scalars []ir.Value
	cols    []column
	cur     int              // current CFG node
	state   int              // vertex state running this superstep
	inNbrs  [][]graph.NodeID // per-vertex incoming-neighbor lists (§4.3)
	ret     ir.Value
	retSet  bool
	opts    RunOptions

	// compiled holds the closure-compiled body of each vertex state
	// (indexed by CFG node); envs holds one reusable vertex environment
	// per worker and menv the reusable master environment — neither is
	// reallocated per superstep. gather holds each state's
	// pull-orientation compilation (see gather.go).
	compiled [][]stmtFn
	envs     []*vertexEnv
	menv     masterEnv
	gather   []gatherInfo
}

// Schema declares the communication shape derived from the program.
func (ex *exec) Schema() pregel.Schema {
	var s pregel.Schema
	for _, m := range ex.p.Msgs {
		s.MessagePayloadBytes = append(s.MessagePayloadBytes, m.PayloadBytes())
	}
	for _, a := range ex.p.Aggs {
		spec := pregel.AggSpec{Name: a.Name}
		switch a.Kind {
		case ir.KFloat:
			spec.Kind = pregel.AggKindFloat
		case ir.KBool:
			spec.Kind = pregel.AggKindBool
		default:
			spec.Kind = pregel.AggKindInt
		}
		switch a.Op {
		case ast.OpAdd, ast.OpSub:
			spec.Op = pregel.AggSum
		case ast.OpMin:
			spec.Op = pregel.AggMin
		case ast.OpMax:
			spec.Op = pregel.AggMax
		case ast.OpAnd:
			spec.Op = pregel.AggAnd
		case ast.OpOr:
			spec.Op = pregel.AggOr
		default:
			spec.Op = pregel.AggAny
		}
		s.Aggregators = append(s.Aggregators, spec)
	}
	if ex.opts.UseCombiners {
		ops := combinableOps(ex.p)
		s.Combiners = make([]pregel.Combiner, len(ex.p.Msgs))
		for i, op := range ops {
			if op >= 0 {
				s.Combiners[i] = combinerFor(ex.p.Msgs[i].Fields[0], op)
			}
		}
	}
	// Global slot 0 broadcasts the state number; slots 1+i broadcast
	// scalar i when a state reads it.
	s.Globals = append(s.Globals, pregel.GlobalSpec{Name: "_state", Size: 4})
	for _, sc := range ex.p.Scalars {
		s.Globals = append(s.Globals, pregel.GlobalSpec{Name: sc.Name, Size: sc.Kind.WireSize()})
	}
	return s
}

// PhaseLabel implements pregel.PhaseLabeler: the engine attaches the
// name of the vertex state picked by the master for the current
// superstep to that superstep's trace spans, so traces read in terms of
// the compiled state machine ("bfs_fw", "pagerank_iter") rather than
// anonymous superstep numbers.
func (ex *exec) PhaseLabel() string {
	if ex.state < 0 || ex.state >= len(ex.p.Nodes) {
		return ""
	}
	if vs := ex.p.Nodes[ex.state].Vertex; vs != nil {
		return vs.Name
	}
	return ""
}

// maxMasterChain bounds sequential master work per superstep, guarding
// against non-terminating sequential loops.
const maxMasterChain = 50_000_000

// MasterCompute walks master blocks until a vertex state or halt.
func (ex *exec) MasterCompute(mc *pregel.MasterContext) {
	ex.menv.ex, ex.menv.mc = ex, mc
	env := &ex.menv
	for iter := 0; ; iter++ {
		if iter >= maxMasterChain {
			panic("machine: master did not reach a vertex state (sequential loop does not terminate?)")
		}
		node := ex.p.Nodes[ex.cur]
		if node.Vertex != nil {
			ex.state = ex.cur
			mc.SetGlobalInt(0, int64(ex.cur))
			for _, s := range node.Vertex.ReadScalars {
				ex.broadcastScalar(mc, s)
			}
			ex.cur = node.Vertex.Next
			return
		}
		mb := node.Master
		if halted := ex.execMaster(mb.Stmts, env); halted {
			mc.Halt()
			return
		}
		switch mb.Term.Kind {
		case TGoto:
			ex.cur = mb.Term.Then
		case TCond:
			if ir.Eval(mb.Term.Cond, env).AsBool() {
				ex.cur = mb.Term.Then
			} else {
				ex.cur = mb.Term.Else
			}
		case THalt:
			ex.reportReturn(mc)
			mc.Halt()
			return
		}
	}
}

func (ex *exec) reportReturn(mc *pregel.MasterContext) {
	if !ex.retSet {
		return
	}
	if ex.ret.K == ir.KFloat {
		mc.ReturnFloat(ex.ret.F)
	} else {
		mc.ReturnInt(ex.ret.I)
	}
}

func (ex *exec) broadcastScalar(mc *pregel.MasterContext, slot int) {
	v := ex.scalars[slot]
	switch v.K {
	case ir.KFloat:
		mc.SetGlobalFloat(1+slot, v.F)
	case ir.KBool:
		mc.SetGlobalBool(1+slot, v.AsBool())
	case ir.KNode:
		mc.SetGlobalNode(1+slot, v.AsNode())
	default:
		mc.SetGlobalInt(1+slot, v.I)
	}
}

// execMaster runs master statements; it reports true when a Return
// executed (the caller halts).
func (ex *exec) execMaster(ss []ir.Stmt, env *masterEnv) bool {
	for _, s := range ss {
		switch s := s.(type) {
		case ir.SetScalar:
			v := ir.Eval(s.RHS, env)
			old := ex.scalars[s.Slot]
			if s.Op == ast.OpSet {
				ex.scalars[s.Slot] = v.Convert(old.K)
			} else {
				ex.scalars[s.Slot] = ir.Reduce(s.Op, old, v)
			}
		case ir.FoldAgg:
			v, set := env.Agg(s.Agg)
			if !set {
				continue
			}
			old := ex.scalars[s.Scalar]
			ex.scalars[s.Scalar] = ir.Reduce(s.Op, old, v)
		case ir.If:
			var halted bool
			if ir.Eval(s.Cond, env).AsBool() {
				halted = ex.execMaster(s.Then, env)
			} else {
				halted = ex.execMaster(s.Else, env)
			}
			if halted {
				return true
			}
		case ir.Return:
			if s.Value != nil {
				ex.ret = ir.Eval(s.Value, env)
				ex.retSet = true
				if ex.p.HasReturn {
					ex.ret = ex.ret.Convert(ex.p.ReturnKind)
				}
			}
			ex.reportReturn(env.mc)
			return true
		default:
			panic(fmt.Sprintf("machine: statement %T is not valid in master context", s))
		}
	}
	return false
}

// VertexCompute runs the closure-compiled body of the current vertex
// state (or the reference interpreter under RunOptions.Interpret),
// reusing this executor's environment. Environments are indexed by
// executor, not worker: under work stealing one goroutine may run
// vertices owned by several workers, and two goroutines must never
// share scratch.
func (ex *exec) VertexCompute(vc *pregel.VertexContext) {
	state := ex.state
	vs := ex.p.Nodes[state].Vertex
	env := ex.envs[vc.ExecutorIndex()]
	env.vc = vc
	env.vs = vs
	env.curEdge = -1
	env.curMsg = nil
	env.gc = nil
	for i, k := range vs.Locals {
		env.locals[i] = ir.Zero(k)
	}
	if ex.opts.Interpret {
		ex.execVertex(vs.Body, env)
		return
	}
	runAll(ex.compiled[state], env)
}

// resolvedWorkers mirrors the engine's worker-count resolution.
func resolvedWorkers(cfg pregel.Config, numNodes int) int {
	w := cfg.NumWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > numNodes && numNodes > 0 {
		w = numNodes
	}
	return w
}

func (ex *exec) execVertex(ss []ir.Stmt, env *vertexEnv) {
	for _, s := range ss {
		switch s := s.(type) {
		case ir.SetLocal:
			env.locals[s.Slot] = ir.Eval(s.RHS, env).Convert(env.vs.Locals[s.Slot])
		case ir.SetProp:
			v := ir.Eval(s.RHS, env)
			li := int64(env.vc.ID())
			col := &ex.cols[s.Slot]
			ex.applyProp(col, s.Slot, li, s.Op, v)
		case ir.ContribAgg:
			v := ir.Eval(s.RHS, env)
			switch ex.p.Aggs[s.Agg].Kind {
			case ir.KFloat:
				env.vc.AggFloat(s.Agg, v.AsFloat())
			case ir.KBool:
				env.vc.AggBool(s.Agg, v.AsBool())
			default:
				env.vc.AggInt(s.Agg, v.AsInt())
			}
		case ir.SendToNbrs:
			ex.sendToNbrs(s, env)
		case ir.SendTo:
			tgt := ir.Eval(s.Target, env).AsNode()
			if tgt == graph.NilNode {
				continue
			}
			m := ex.buildMsg(s.MsgType, s.Payload, env)
			env.vc.Send(tgt, m)
		case ir.SendToInNbrs:
			if ex.inNbrs == nil {
				panic("machine: SendToInNbrs without an incoming-neighbor prologue")
			}
			for _, src := range ex.inNbrs[env.vc.ID()] {
				m := ex.buildMsg(s.MsgType, s.Payload, env)
				env.vc.Send(src, m)
			}
		case ir.CollectInNbrs:
			if ex.inNbrs == nil {
				panic("machine: CollectInNbrs without allocated storage")
			}
			v := env.vc.ID()
			for i := range env.vc.Messages() {
				m := &env.vc.Messages()[i]
				if int(m.Type) != s.MsgType {
					continue
				}
				ex.inNbrs[v] = append(ex.inNbrs[v], m.Node(0))
			}
		case ir.ForMsgs:
			for i := range env.vc.Messages() {
				m := &env.vc.Messages()[i]
				if int(m.Type) != s.MsgType {
					continue
				}
				env.curMsg = m
				ex.execVertex(s.Body, env)
			}
			env.curMsg = nil
		case ir.If:
			if ir.Eval(s.Cond, env).AsBool() {
				ex.execVertex(s.Then, env)
			} else {
				ex.execVertex(s.Else, env)
			}
		default:
			panic(fmt.Sprintf("machine: statement %T is not valid in vertex context", s))
		}
	}
}

//gm:noalloc
func (ex *exec) applyProp(col *column, slot int, idx int64, op ast.AssignOp, v ir.Value) {
	kind := ex.p.Props[slot].Kind
	if col.f != nil {
		old := ir.Float(col.f[idx])
		col.f[idx] = ir.Reduce(op, old, v).F
		return
	}
	old := ir.Value{K: kind, I: col.i[idx]}
	col.i[idx] = ir.Reduce(op, old, v).I
}

func (ex *exec) sendToNbrs(s ir.SendToNbrs, env *vertexEnv) {
	lo, hi := env.vc.OutEdgeRange()
	nbrs := env.vc.OutNbrs()
	for i := lo; i < hi; i++ {
		env.curEdge = i
		if s.EdgeCond != nil && !ir.Eval(s.EdgeCond, env).AsBool() {
			continue
		}
		m := ex.buildMsg(s.MsgType, s.Payload, env)
		env.vc.Send(nbrs[i-lo], m)
	}
	env.curEdge = -1
}

func (ex *exec) buildMsg(msgType int, payload []ir.Expr, env *vertexEnv) pregel.Msg {
	var m pregel.Msg
	m.Type = uint8(msgType)
	fields := ex.p.Msgs[msgType].Fields
	for i, pe := range payload {
		v := ir.Eval(pe, env)
		switch fields[i] {
		case ir.KFloat:
			m.SetFloat(i, v.AsFloat())
		case ir.KBool:
			m.SetBool(i, v.AsBool())
		case ir.KNode:
			m.SetNode(i, v.AsNode())
		default:
			m.SetInt(i, v.AsInt())
		}
	}
	return m
}

// ---- Environments ----

type masterEnv struct {
	ex *exec
	mc *pregel.MasterContext
}

func (e *masterEnv) Scalar(slot int) ir.Value { return e.ex.scalars[slot] }
func (e *masterEnv) Local(int) ir.Value       { panic("machine: local read in master context") }
func (e *masterEnv) Prop(int) ir.Value        { panic("machine: property read in master context") }
func (e *masterEnv) EdgeProp(int) ir.Value    { panic("machine: edge property read in master context") }
func (e *masterEnv) CurNode() ir.Value        { panic("machine: current node in master context") }
func (e *masterEnv) MsgField(int) ir.Value    { panic("machine: message field in master context") }

func (e *masterEnv) Agg(slot int) (ir.Value, bool) {
	if !e.mc.AggIsSet(slot) {
		return ir.Zero(e.ex.p.Aggs[slot].Kind), false
	}
	switch e.ex.p.Aggs[slot].Kind {
	case ir.KFloat:
		return ir.Float(e.mc.AggFloat(slot)), true
	case ir.KBool:
		return ir.Bool(e.mc.AggBool(slot)), true
	case ir.KNode:
		return ir.Node(graph.NodeID(e.mc.AggInt(slot))), true
	default:
		return ir.Int(e.mc.AggInt(slot)), true
	}
}

func (e *masterEnv) BuiltinVal(op ir.BuiltinOp) ir.Value {
	switch op {
	case ir.BNumNodes:
		return ir.Int(int64(e.mc.NumNodes()))
	case ir.BNumEdges:
		return ir.Int(e.mc.NumEdges())
	case ir.BPickRandom:
		return ir.Node(e.mc.PickRandomNode())
	}
	panic(fmt.Sprintf("machine: builtin %v in master context", op))
}

type vertexEnv struct {
	ex      *exec
	vc      *pregel.VertexContext
	vs      *VertexState
	locals  []ir.Value
	curMsg  *pregel.Msg
	curEdge int64

	// Gather orientation: while gc is non-nil the env is evaluating
	// gather-compiled closures for source vertex gnode during a pull
	// phase (no VertexContext exists — vc is stale and must not be
	// touched by those closures).
	gnode graph.NodeID
	gc    *pregel.GatherContext
}

func (e *vertexEnv) Scalar(slot int) ir.Value {
	k := e.ex.p.Scalars[slot].Kind
	switch k {
	case ir.KFloat:
		return ir.Float(e.vc.GlobalFloat(1 + slot))
	case ir.KBool:
		return ir.Bool(e.vc.GlobalBool(1 + slot))
	case ir.KNode:
		return ir.Node(e.vc.GlobalNode(1 + slot))
	default:
		return ir.Int(e.vc.GlobalInt(1 + slot))
	}
}

func (e *vertexEnv) Local(slot int) ir.Value { return e.locals[slot] }

func (e *vertexEnv) Prop(slot int) ir.Value {
	col := &e.ex.cols[slot]
	idx := int64(e.vc.ID())
	if col.f != nil {
		return ir.Float(col.f[idx])
	}
	return ir.Value{K: e.ex.p.Props[slot].Kind, I: col.i[idx]}
}

func (e *vertexEnv) EdgeProp(slot int) ir.Value {
	if e.curEdge < 0 {
		panic("machine: edge property read outside a neighbor send loop")
	}
	col := &e.ex.cols[slot]
	if col.f != nil {
		return ir.Float(col.f[e.curEdge])
	}
	return ir.Value{K: e.ex.p.Props[slot].Kind, I: col.i[e.curEdge]}
}

func (e *vertexEnv) CurNode() ir.Value { return ir.Node(e.vc.ID()) }

func (e *vertexEnv) MsgField(idx int) ir.Value {
	if e.curMsg == nil {
		panic("machine: message field read outside a receive loop")
	}
	return ir.Int(e.curMsg.Int(idx)) // caller converts via MsgField.K
}

func (e *vertexEnv) Agg(int) (ir.Value, bool) { panic("machine: aggregator read in vertex context") }

func (e *vertexEnv) BuiltinVal(op ir.BuiltinOp) ir.Value {
	switch op {
	case ir.BNumNodes:
		return ir.Int(int64(e.vc.NumNodes()))
	case ir.BNumEdges:
		return ir.Int(e.ex.g.NumEdges())
	case ir.BDegree:
		return ir.Int(int64(e.vc.OutDegree()))
	case ir.BPickRandom:
		return ir.Node(graph.NodeID(e.vc.Rand().Intn(e.vc.NumNodes())))
	case ir.BNodeId:
		return ir.Int(int64(e.vc.ID()))
	}
	panic(fmt.Sprintf("machine: builtin %v in vertex context", op))
}

// programUsesInNbrs reports whether any vertex state stores or sends
// along incoming-neighbor lists.
func programUsesInNbrs(p *Program) bool {
	used := false
	var scan func(ss []ir.Stmt)
	scan = func(ss []ir.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case ir.SendToInNbrs, ir.CollectInNbrs:
				used = true
			case ir.ForMsgs:
				scan(s.Body)
			case ir.If:
				scan(s.Then)
				scan(s.Else)
			}
		}
	}
	for _, n := range p.Nodes {
		if n.Vertex != nil {
			scan(n.Vertex.Body)
		}
	}
	return used
}
