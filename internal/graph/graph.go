// Package graph provides the directed-graph substrate used by the engine,
// the compiler runtime, and the sequential reference implementations.
//
// Graphs are stored in compressed sparse row (CSR) form: all out-edges of
// vertex v occupy the half-open range [OutStart[v], OutStart[v+1]) of the
// OutDst slice. A reverse CSR (in-edges) is built lazily on demand; the
// Pregel engine itself never needs it — per the paper, incoming-neighbor
// lists are materialized by the *program* via an ID-exchange prologue —
// but sequential oracles and generators do.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a vertex. IDs are dense in [0, NumNodes).
type NodeID int32

// NilNode is the Green-Marl NIL node constant.
const NilNode NodeID = -1

// Directed is an immutable directed graph in CSR form.
type Directed struct {
	// OutStart has length NumNodes+1; out-edges of v are
	// OutDst[OutStart[v]:OutStart[v+1]].
	OutStart []int64
	// OutDst holds destination vertices of all edges, grouped by source.
	OutDst []NodeID

	// in-CSR, built lazily (and at most once) by ensureIn. inOnce makes
	// the build safe to trigger from concurrent readers: before the
	// guard, two goroutines calling InNbrs on a fresh graph raced on the
	// inStart/inSrc/inEdge writes.
	inOnce  sync.Once
	inStart []int64
	inSrc   []NodeID
	// inEdge maps each in-edge position to its out-edge index, so edge
	// properties (indexed by out-edge position) stay accessible.
	inEdge []int64
}

// NumNodes returns the number of vertices.
func (g *Directed) NumNodes() int { return len(g.OutStart) - 1 }

// NumEdges returns the number of directed edges.
func (g *Directed) NumEdges() int64 { return int64(len(g.OutDst)) }

// OutDegree returns the out-degree of v.
//
//gm:noalloc
func (g *Directed) OutDegree(v NodeID) int {
	return int(g.OutStart[v+1] - g.OutStart[v])
}

// OutNbrs returns the out-neighbors of v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Directed) OutNbrs(v NodeID) []NodeID {
	return g.OutDst[g.OutStart[v]:g.OutStart[v+1]]
}

// OutEdgeRange returns the half-open range of edge indices of v's
// out-edges; edge index i has destination OutDst[i]. Edge properties are
// stored per out-edge index.
func (g *Directed) OutEdgeRange(v NodeID) (lo, hi int64) {
	return g.OutStart[v], g.OutStart[v+1]
}

// buildIn materializes the reverse CSR.
func (g *Directed) buildIn() {
	n := g.NumNodes()
	g.inStart = make([]int64, n+1)
	for _, d := range g.OutDst {
		g.inStart[d+1]++
	}
	for i := 0; i < n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	g.inSrc = make([]NodeID, len(g.OutDst))
	g.inEdge = make([]int64, len(g.OutDst))
	next := make([]int64, n)
	copy(next, g.inStart[:n])
	for u := NodeID(0); int(u) < n; u++ {
		lo, hi := g.OutEdgeRange(u)
		for e := lo; e < hi; e++ {
			d := g.OutDst[e]
			p := next[d]
			g.inSrc[p] = u
			g.inEdge[p] = e
			next[d] = p + 1
		}
	}
}

// ensureIn builds the reverse CSR exactly once, safely under concurrent
// callers. After the Once completes, the in-arrays are immutable and may
// be read from any goroutine without synchronization.
func (g *Directed) ensureIn() { g.inOnce.Do(g.buildIn) }

// BuildIn eagerly materializes the reverse CSR (and the in-edge→out-edge
// index), so later InNbrs/InDegree/InEdgeIndices calls on hot paths are
// pure reads that never allocate. The engine calls this at construction
// when a pull-capable direction mode is configured.
func (g *Directed) BuildIn() { g.ensureIn() }

// InDegree returns the in-degree of v, building the reverse CSR if needed.
func (g *Directed) InDegree(v NodeID) int {
	g.ensureIn()
	return int(g.inStart[v+1] - g.inStart[v])
}

// InNbrs returns the in-neighbors of v, building the reverse CSR if
// needed. The returned slice aliases the graph's storage. Within the
// slice, sources appear in ascending (source, out-edge-index) order —
// the canonical order the engine's pull phase relies on.
func (g *Directed) InNbrs(v NodeID) []NodeID {
	g.ensureIn()
	return g.inSrc[g.inStart[v]:g.inStart[v+1]]
}

// InEdgeIndices returns, for each in-neighbor of v (aligned with
// InNbrs(v)), the out-edge index of the corresponding edge, so edge
// properties can be read when traversing in-edges.
func (g *Directed) InEdgeIndices(v NodeID) []int64 {
	g.ensureIn()
	return g.inEdge[g.inStart[v]:g.inStart[v+1]]
}

// HasEdge reports whether the edge (u, v) exists. O(log deg(u)) when the
// adjacency is sorted (builders sort), O(deg(u)) otherwise.
func (g *Directed) HasEdge(u, v NodeID) bool {
	nbrs := g.OutNbrs(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return true
	}
	// Fall back to a linear scan in case the adjacency is unsorted.
	for _, w := range nbrs {
		if w == v {
			return true
		}
	}
	return false
}

// Validate checks structural invariants and returns a descriptive error
// on the first violation. Useful in tests and after deserialization.
func (g *Directed) Validate() error {
	n := g.NumNodes()
	if n < 0 {
		return fmt.Errorf("graph: OutStart must have length >= 1")
	}
	if g.OutStart[0] != 0 {
		return fmt.Errorf("graph: OutStart[0] = %d, want 0", g.OutStart[0])
	}
	for i := 0; i < n; i++ {
		if g.OutStart[i+1] < g.OutStart[i] {
			return fmt.Errorf("graph: OutStart not monotone at %d", i)
		}
	}
	if g.OutStart[n] != int64(len(g.OutDst)) {
		return fmt.Errorf("graph: OutStart[n]=%d != len(OutDst)=%d", g.OutStart[n], len(g.OutDst))
	}
	for i, d := range g.OutDst {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("graph: edge %d has out-of-range dst %d", i, d)
		}
	}
	return nil
}

// Edge is a source/destination pair used by builders.
type Edge struct {
	Src, Dst NodeID
}

// Builder accumulates edges and produces a CSR Directed graph.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge appends the directed edge (src, dst). It panics if either
// endpoint is out of range; builders are programming-time constructs and
// an out-of-range endpoint is a caller bug.
func (b *Builder) AddEdge(src, dst NodeID) {
	if src < 0 || int(src) >= b.n || dst < 0 || int(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the CSR graph. Out-adjacencies are sorted by destination
// for deterministic iteration and binary-searchable HasEdge.
func (b *Builder) Build() *Directed {
	g := &Directed{
		OutStart: make([]int64, b.n+1),
		OutDst:   make([]NodeID, len(b.edges)),
	}
	for _, e := range b.edges {
		g.OutStart[e.Src+1]++
	}
	for i := 0; i < b.n; i++ {
		g.OutStart[i+1] += g.OutStart[i]
	}
	next := make([]int64, b.n)
	copy(next, g.OutStart[:b.n])
	for _, e := range b.edges {
		g.OutDst[next[e.Src]] = e.Dst
		next[e.Src]++
	}
	for v := 0; v < b.n; v++ {
		lo, hi := g.OutStart[v], g.OutStart[v+1]
		s := g.OutDst[lo:hi]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return g
}

// FromEdges is a convenience constructor building a CSR graph directly
// from an edge slice.
func FromEdges(n int, edges []Edge) *Directed {
	b := NewBuilder(n)
	b.edges = append(b.edges, edges...)
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, n))
		}
	}
	return b.Build()
}

// Stats summarizes degree structure; used by the Table 1 harness.
type Stats struct {
	Nodes     int
	Edges     int64
	MinOutDeg int
	MaxOutDeg int
	AvgOutDeg float64
	Isolated  int // vertices with no out- and no in-edges
}

// ComputeStats scans the graph once and returns degree statistics.
func ComputeStats(g *Directed) Stats {
	n := g.NumNodes()
	st := Stats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return st
	}
	hasIn := make([]bool, n)
	for _, d := range g.OutDst {
		hasIn[d] = true
	}
	st.MinOutDeg = g.OutDegree(0)
	for v := 0; v < n; v++ {
		d := g.OutDegree(NodeID(v))
		if d < st.MinOutDeg {
			st.MinOutDeg = d
		}
		if d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
		if d == 0 && !hasIn[v] {
			st.Isolated++
		}
	}
	st.AvgOutDeg = float64(st.Edges) / float64(n)
	return st
}
