package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list:
// a header line "# nodes N edges M" followed by one "src dst" pair per
// line. The format is the interchange format of cmd/graphgen.
func WriteEdgeList(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, d := range g.OutNbrs(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines
// beginning with '#' other than the header are ignored, as are blank
// lines. If no header is present, the vertex count is inferred as
// 1 + max endpoint.
func ReadEdgeList(r io.Reader) (*Directed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	n := -1
	maxID := NodeID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn, hm int
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &hn, &hm); err == nil {
				n = hn
				edges = make([]Edge, 0, hm)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		s, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q: %v", lineNo, fields[0], err)
		}
		d, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q: %v", lineNo, fields[1], err)
		}
		e := Edge{NodeID(s), NodeID(d)}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxID) + 1
	}
	if int(maxID) >= n {
		return nil, fmt.Errorf("graph: endpoint %d exceeds declared node count %d", maxID, n)
	}
	return FromEdges(n, edges), nil
}
