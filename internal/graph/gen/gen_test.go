package gen

import (
	"testing"

	"gmpregel/internal/graph"
)

func TestTwitterLikeShape(t *testing.T) {
	g := TwitterLike(2000, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Roughly outDeg edges per vertex (a few are dropped on self-loop).
	if g.NumEdges() < 2000*7 || g.NumEdges() > 2000*8 {
		t.Errorf("edges = %d, want ~16000", g.NumEdges())
	}
	// Preferential attachment must produce a heavy tail: max in-degree
	// far above the average.
	maxIn := 0
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := g.InDegree(v); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 40 {
		t.Errorf("max in-degree = %d; expected a heavy-tailed hub", maxIn)
	}
	// No self-loops.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, d := range g.OutNbrs(v) {
			if d == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
	}
}

func TestTwitterLikeDeterministic(t *testing.T) {
	a := TwitterLike(300, 4, 42)
	b := TwitterLike(300, 4, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.OutDst {
		if a.OutDst[i] != b.OutDst[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := TwitterLike(300, 4, 43)
	same := a.NumEdges() == c.NumEdges()
	if same {
		for i := range a.OutDst {
			if a.OutDst[i] != c.OutDst[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestBipartiteInvariant(t *testing.T) {
	g := Bipartite(500, 700, 5, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1200 || g.NumEdges() != 2500 {
		t.Fatalf("size = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if !IsBipartiteBoyGirl(g, 500) {
		t.Error("edge violates boy→girl structure")
	}
	if IsBipartiteBoyGirl(g, 499) {
		t.Error("wrong boundary should fail the check")
	}
}

func TestWebLikeSkew(t *testing.T) {
	g := WebLike(12, 8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4096 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	st := graph.ComputeStats(g)
	if float64(st.MaxOutDeg) < 6*st.AvgOutDeg {
		t.Errorf("max out-degree %d not skewed vs avg %.1f", st.MaxOutDeg, st.AvgOutDeg)
	}
}

func TestRingAndGridAndTree(t *testing.T) {
	r := Ring(10)
	if r.NumEdges() != 10 || r.OutNbrs(9)[0] != 0 {
		t.Error("ring wrong")
	}
	g := Grid(3, 4)
	if g.NumNodes() != 12 || g.NumEdges() != int64(3*3+2*4) {
		t.Errorf("grid edges = %d", g.NumEdges())
	}
	tr := CompleteBinaryTree(7)
	if tr.NumEdges() != 6 || tr.OutDegree(0) != 2 || tr.OutDegree(3) != 0 {
		t.Error("tree wrong")
	}
}

func TestRandomBounds(t *testing.T) {
	g := Random(50, 400, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, d := range g.OutNbrs(v) {
			if d == v {
				t.Fatal("self-loop")
			}
		}
	}
}
