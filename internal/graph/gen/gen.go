// Package gen generates the synthetic input graphs of the evaluation.
//
// The paper evaluates on three graphs (its Table 1): the Twitter follower
// network (42M nodes / 1.5B edges), a synthetic uniform-random bipartite
// graph (75M / 1.5B), and the Sk-2005 web graph (51M / 1.9B). Those data
// sets and a cluster to hold them are not available here, so this package
// builds structurally similar stand-ins at a configurable scale:
//
//   - TwitterLike: preferential attachment → heavy-tailed in-degree, low
//     diameter, like a social follower graph.
//   - Bipartite: uniform random boy→girl edges, matching the paper's
//     "Synthetic (Uniform Random)" bipartite input.
//   - WebLike: RMAT with skewed quadrant probabilities → power-law with
//     locality, like a web host graph.
//
// All generators are deterministic for a given seed.
package gen

import (
	"math/rand"

	"gmpregel/internal/graph"
)

// TwitterLike generates a directed preferential-attachment graph with n
// vertices and approximately outDeg out-edges per vertex. Edge (u, v)
// means "u follows v"; targets are chosen proportionally to in-degree,
// producing the heavy-tailed follower distribution of the real graph.
func TwitterLike(n, outDeg int, seed int64) *graph.Directed {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets holds one entry per received edge plus one base entry per
	// vertex, so sampling uniformly from it is preferential attachment
	// with +1 smoothing.
	targets := make([]graph.NodeID, 0, n*(outDeg+1))
	for v := 0; v < n; v++ {
		targets = append(targets, graph.NodeID(v))
	}
	for u := 0; u < n; u++ {
		for k := 0; k < outDeg; k++ {
			t := targets[rng.Intn(len(targets))]
			if t == graph.NodeID(u) {
				t = graph.NodeID(rng.Intn(n))
				if t == graph.NodeID(u) {
					continue
				}
			}
			b.AddEdge(graph.NodeID(u), t)
			targets = append(targets, t)
		}
	}
	return b.Build()
}

// Bipartite generates a uniform-random bipartite graph with nBoys "boy"
// vertices (IDs [0, nBoys)) followed by nGirls "girl" vertices. Each boy
// gets outDeg edges to uniformly random girls. Only boy→girl edges exist,
// matching the input contract of the paper's random bipartite matching
// algorithm.
func Bipartite(nBoys, nGirls, outDeg int, seed int64) *graph.Directed {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nBoys + nGirls)
	for u := 0; u < nBoys; u++ {
		for k := 0; k < outDeg; k++ {
			g := nBoys + rng.Intn(nGirls)
			b.AddEdge(graph.NodeID(u), graph.NodeID(g))
		}
	}
	return b.Build()
}

// IsBipartiteBoyGirl reports whether every edge of g goes from a vertex
// below the boundary to one at or above it — the invariant Bipartite
// promises and the matching algorithms assume.
func IsBipartiteBoyGirl(g *graph.Directed, boundary graph.NodeID) bool {
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, d := range g.OutNbrs(v) {
			if v >= boundary || d < boundary {
				return false
			}
		}
	}
	return true
}

// WebLike generates an RMAT graph with 2^scale vertices and
// edgeFactor·2^scale edges using the classic (0.57, 0.19, 0.19, 0.05)
// quadrant split, which yields the skewed, locality-heavy structure of a
// web crawl such as Sk-2005.
func WebLike(scale, edgeFactor int, seed int64) *graph.Directed {
	return RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// RMAT generates a recursive-matrix random graph with 2^scale vertices
// and edgeFactor·2^scale edges; a, b, c are the upper quadrant
// probabilities (d = 1-a-b-c).
func RMAT(scale, edgeFactor int, a, b, c float64, seed int64) *graph.Directed {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << uint(scale)
	m := edgeFactor * n
	bl := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				dst |= bit
			case r < a+b+c:
				src |= bit
			default:
				src |= bit
				dst |= bit
			}
		}
		if src == dst {
			continue
		}
		bl.AddEdge(graph.NodeID(src), graph.NodeID(dst))
	}
	return bl.Build()
}

// Random generates an Erdős–Rényi-style directed graph with n vertices
// and m uniformly random edges (self-loops excluded).
func Random(n int, m int, seed int64) *graph.Directed {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build()
}

// Ring generates a directed cycle 0→1→…→n-1→0; its diameter of n-1 makes
// it the worst case for level-synchronous traversals in tests.
func Ring(n int) *graph.Directed {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	return b.Build()
}

// Grid generates a rows×cols grid with edges right and down, useful for
// deterministic BFS-level tests.
func Grid(rows, cols int) *graph.Directed {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// CompleteBinaryTree generates a rooted tree with n vertices where vertex
// v has children 2v+1 and 2v+2 (when in range), edges pointing away from
// the root.
func CompleteBinaryTree(n int) *graph.Directed {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if 2*v+1 < n {
			b.AddEdge(graph.NodeID(v), graph.NodeID(2*v+1))
		}
		if 2*v+2 < n {
			b.AddEdge(graph.NodeID(v), graph.NodeID(2*v+2))
		}
	}
	return b.Build()
}
