package gen

import (
	"testing"

	"gmpregel/internal/graph"
)

func degreeStats(g *graph.Directed) (maxOut, maxIn int, meanOut, meanIn float64) {
	n := g.NumNodes()
	in := make([]int, n)
	var edges int64
	for v := graph.NodeID(0); int(v) < n; v++ {
		d := g.OutDegree(v)
		edges += int64(d)
		if d > maxOut {
			maxOut = d
		}
		for _, t := range g.OutNbrs(v) {
			in[t]++
		}
	}
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	meanOut = float64(edges) / float64(n)
	meanIn = meanOut
	return
}

// Satellite sanity check: the skewed generators actually produce the
// degree skew the scheduler is built for, and the uniform one does not.
// Measured max/mean ratios at these sizes and seeds (deterministic):
//
//	TwitterLike(20000, 16, 101): max-in/mean-in   ≈ 12.8 (hubs via
//	    preferential attachment; out-degree stays uniform, ratio 1.0)
//	WebLike(13, 18, 303):        max-out/mean-out ≈ 229,
//	                             max-in/mean-in   ≈ 229  (RMAT skews both)
//	Bipartite(6000, 6000, 10, 202): max-in/mean-in ≈ 2.6 (Poisson tail)
//
// The assertions use roughly half the measured ratios so small generator
// tweaks do not break the test, while a regression to uniform sampling
// would.
func TestGeneratorDegreeSkew(t *testing.T) {
	t.Run("twitter-like heavy-tailed in-degree", func(t *testing.T) {
		g := TwitterLike(20000, 16, 101)
		maxOut, maxIn, meanOut, meanIn := degreeStats(g)
		inRatio := float64(maxIn) / meanIn
		outRatio := float64(maxOut) / meanOut
		t.Logf("twitter-like: max-in/mean-in = %.1f, max-out/mean-out = %.1f", inRatio, outRatio)
		if inRatio < 6 {
			t.Errorf("in-degree ratio %.1f too uniform; preferential attachment broken?", inRatio)
		}
		if outRatio > 2 {
			t.Errorf("out-degree ratio %.1f unexpectedly skewed (senders emit ~outDeg each)", outRatio)
		}
	})
	t.Run("rmat skewed both ways", func(t *testing.T) {
		g := WebLike(13, 18, 303)
		maxOut, maxIn, meanOut, meanIn := degreeStats(g)
		inRatio := float64(maxIn) / meanIn
		outRatio := float64(maxOut) / meanOut
		t.Logf("rmat: max-out/mean-out = %.1f, max-in/mean-in = %.1f", outRatio, inRatio)
		if outRatio < 15 {
			t.Errorf("out-degree ratio %.1f too uniform; RMAT quadrant skew broken?", outRatio)
		}
		if inRatio < 15 {
			t.Errorf("in-degree ratio %.1f too uniform; RMAT quadrant skew broken?", inRatio)
		}
	})
	t.Run("bipartite stays uniform", func(t *testing.T) {
		g := Bipartite(6000, 6000, 10, 202)
		_, maxIn, _, _ := degreeStats(g)
		// Girls receive the edges: mean in-degree over girls is outDeg.
		meanGirlIn := 10.0
		inRatio := float64(maxIn) / meanGirlIn
		t.Logf("bipartite: max-in/mean-girl-in = %.1f", inRatio)
		if inRatio > 8 {
			t.Errorf("in-degree ratio %.1f too skewed for a uniform generator", inRatio)
		}
	})
}
