package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func mustValid(t *testing.T, g *Directed) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	mustValid(t, g)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("size = (%d,%d), want (4,4)", g.NumNodes(), g.NumEdges())
	}
	if got := g.OutNbrs(0); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Errorf("OutNbrs(0) = %v, want [1 2]", got)
	}
	if g.OutDegree(1) != 0 {
		t.Errorf("OutDegree(1) = %d, want 0", g.OutDegree(1))
	}
	if !g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Errorf("HasEdge wrong: (2,3)=%v (3,2)=%v", g.HasEdge(2, 3), g.HasEdge(3, 2))
	}
}

func TestBuilderSortsAdjacency(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	g := b.Build()
	if got := g.OutNbrs(0); !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("adjacency not sorted: %v", got)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestInNeighbors(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {1, 2}, {3, 2}, {2, 0}})
	in := append([]NodeID(nil), g.InNbrs(2)...)
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	if !reflect.DeepEqual(in, []NodeID{0, 1, 3}) {
		t.Errorf("InNbrs(2) = %v, want [0 1 3]", in)
	}
	if g.InDegree(0) != 1 || g.InDegree(3) != 0 {
		t.Errorf("InDegree wrong: in(0)=%d in(3)=%d", g.InDegree(0), g.InDegree(3))
	}
}

func TestInEdgeIndicesMapToOutEdges(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {1, 2}, {1, 3}, {3, 2}})
	srcs := g.InNbrs(2)
	idxs := g.InEdgeIndices(2)
	if len(srcs) != len(idxs) {
		t.Fatalf("len mismatch: %d vs %d", len(srcs), len(idxs))
	}
	for i, e := range idxs {
		// The out-edge at index e must be (srcs[i], 2).
		if g.OutDst[e] != 2 {
			t.Errorf("in-edge %d: OutDst[%d] = %d, want 2", i, e, g.OutDst[e])
		}
		lo, hi := g.OutEdgeRange(srcs[i])
		if e < lo || e >= hi {
			t.Errorf("in-edge %d: index %d not in source %d's range [%d,%d)", i, e, srcs[i], lo, hi)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(3, nil)
	mustValid(t, g)
	if g.NumEdges() != 0 || len(g.OutNbrs(1)) != 0 || g.InDegree(2) != 0 {
		t.Error("empty graph should have no edges anywhere")
	}
}

// Property: for a random edge multiset, in-degree sum per vertex equals
// the number of edges pointing at it, and total degrees equal edge count.
func TestCSRInvariantsQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 20
		edges := make([]Edge, 0, len(raw)/2*2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{NodeID(int(raw[i]) % n), NodeID(int(raw[i+1]) % n)})
		}
		g := FromEdges(n, edges)
		if g.Validate() != nil {
			return false
		}
		var outSum, inSum int64
		for v := 0; v < n; v++ {
			outSum += int64(g.OutDegree(NodeID(v)))
			inSum += int64(g.InDegree(NodeID(v)))
		}
		if outSum != g.NumEdges() || inSum != g.NumEdges() {
			return false
		}
		// Every input edge must be findable.
		for _, e := range edges {
			if !g.HasEdge(e.Src, e.Dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: reverse CSR is the exact transpose (same edge multiset).
func TestTransposeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		m := rng.Intn(120)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		}
		g := FromEdges(n, edges)
		type pair struct{ a, b NodeID }
		fwd := map[pair]int{}
		for v := NodeID(0); int(v) < n; v++ {
			for _, d := range g.OutNbrs(v) {
				fwd[pair{v, d}]++
			}
		}
		rev := map[pair]int{}
		for v := NodeID(0); int(v) < n; v++ {
			for _, s := range g.InNbrs(v) {
				rev[pair{s, v}]++
			}
		}
		if !reflect.DeepEqual(fwd, rev) {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
	}
}

// skewedGraph builds a preferential-attachment-flavored random graph
// that deliberately includes self-loops and parallel edges, the cases a
// reverse-CSR implementation is most likely to mishandle.
func skewedGraph(rng *rand.Rand, n, m int) (*Directed, []Edge) {
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src := NodeID(rng.Intn(n))
		var dst NodeID
		switch rng.Intn(10) {
		case 0: // self-loop
			dst = src
		case 1, 2, 3: // hub destination: concentrates in-degree
			dst = NodeID(rng.Intn(1 + n/8))
		default:
			dst = NodeID(rng.Intn(n))
		}
		edges = append(edges, Edge{src, dst})
		if rng.Intn(6) == 0 { // parallel edge
			edges = append(edges, Edge{src, dst})
		}
	}
	return FromEdges(n, edges), edges
}

// Satellite: the reverse CSR and the in-edge→out-edge index must
// round-trip against the forward CSR on skewed graphs with self-loops
// and parallel edges: every in-edge position of v maps to a distinct
// out-edge whose destination is v, every out-edge appears exactly once
// across all in-lists, and in-lists are in canonical ascending
// (source, out-edge-index) order.
func TestReverseCSRRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		m := rng.Intn(400)
		g, _ := skewedGraph(rng, n, m)
		seen := make([]bool, g.NumEdges())
		for v := NodeID(0); int(v) < n; v++ {
			srcs := g.InNbrs(v)
			idxs := g.InEdgeIndices(v)
			if len(srcs) != len(idxs) || len(srcs) != g.InDegree(v) {
				t.Fatalf("trial %d v=%d: len(srcs)=%d len(idxs)=%d InDegree=%d",
					trial, v, len(srcs), len(idxs), g.InDegree(v))
			}
			prev := int64(-1)
			for i, e := range idxs {
				if e <= prev {
					t.Fatalf("trial %d v=%d: in-edge indices not strictly ascending: %v", trial, v, idxs)
				}
				prev = e
				if seen[e] {
					t.Fatalf("trial %d v=%d: out-edge %d appears in two in-lists", trial, v, e)
				}
				seen[e] = true
				if g.OutDst[e] != v {
					t.Fatalf("trial %d v=%d: OutDst[%d]=%d, want %d", trial, v, e, g.OutDst[e], v)
				}
				lo, hi := g.OutEdgeRange(srcs[i])
				if e < lo || e >= hi {
					t.Fatalf("trial %d v=%d: edge %d outside source %d's range [%d,%d)",
						trial, v, e, srcs[i], lo, hi)
				}
			}
			// Ascending edge index implies ascending source (edges are
			// grouped by source), so srcs must be sorted too.
			if !sort.SliceIsSorted(srcs, func(i, j int) bool { return srcs[i] < srcs[j] }) {
				t.Fatalf("trial %d v=%d: in-neighbors not sorted: %v", trial, v, srcs)
			}
		}
		for e, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: out-edge %d missing from every in-list", trial, e)
			}
		}
	}
}

// Satellite: concurrent first readers of the lazily built reverse CSR
// must not race (run under -race). Before the sync.Once guard, the
// mutate-on-demand buildIn raced when worker goroutines touched
// InNbrs/InDegree/InEdgeIndices simultaneously.
func TestLazyReverseCSRConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		n := 64 + rng.Intn(64)
		g, _ := skewedGraph(rng, n, 300)
		procs := runtime.GOMAXPROCS(0)
		if procs < 4 {
			procs = 4
		}
		var start, done sync.WaitGroup
		start.Add(1)
		sums := make([]int64, procs)
		for p := 0; p < procs; p++ {
			done.Add(1)
			go func(p int) {
				defer done.Done()
				start.Wait() // maximize the chance all goroutines hit the build together
				var sum int64
				for v := NodeID(0); int(v) < n; v++ {
					sum += int64(g.InDegree(v))
					for i, s := range g.InNbrs(v) {
						sum += int64(s) + g.InEdgeIndices(v)[i]
					}
				}
				sums[p] = sum
			}(p)
		}
		start.Done()
		done.Wait()
		for p := 1; p < procs; p++ {
			if sums[p] != sums[0] {
				t.Fatalf("trial %d: goroutine %d read a different reverse CSR (%d vs %d)",
					trial, p, sums[p], sums[0])
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.OutStart, g2.OutStart) || !reflect.DeepEqual(g.OutDst, g2.OutDst) {
		t.Error("round trip changed the graph")
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("0 1\n1 2\n\n# comment\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Errorf("got (%d,%d), want (3,3)", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 x\n", "# nodes 2 edges 1\n0 5\n"} {
		if _, err := ReadEdgeList(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("input %q: want error, got nil", bad)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}})
	st := ComputeStats(g)
	if st.Nodes != 4 || st.Edges != 3 || st.MaxOutDeg != 2 || st.MinOutDeg != 0 || st.Isolated != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgOutDeg != 0.75 {
		t.Errorf("avg = %v, want 0.75", st.AvgOutDeg)
	}
}
