package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"gmpregel/internal/algorithms"
)

// LoadOptions shapes one deterministic load-test run against a live
// gmserve endpoint (RunLoad is what `gmserve -loadtest` drives).
type LoadOptions struct {
	BaseURL string
	Seed    int64
	// Graph setup: the loadgen loads its own snapshot so a run is
	// self-contained against a fresh server.
	GraphName string // default "bench"
	Builder   string // default "twitter"
	Scale     int    // default 1
	// Clients is the number of concurrent client goroutines in the
	// storm phase (default 32); RequestsPerClient their sequential
	// request count (default 4).
	Clients           int
	RequestsPerClient int
}

// TenantLoad is one tenant's slice of the report.
type TenantLoad struct {
	Tenant    string `json:"tenant"`
	Requests  int    `json:"requests"`
	OK        int    `json:"ok"`
	Rejected  int    `json:"rejected_429"`
	CacheHits int    `json:"cache_hits"`
}

// LoadReport is the machine-readable outcome (BENCH_PR8.json).
type LoadReport struct {
	Seed              int64  `json:"seed"`
	Graph             string `json:"graph"`
	Builder           string `json:"builder"`
	Scale             int    `json:"scale"`
	Clients           int    `json:"clients"`
	RequestsPerClient int    `json:"requests_per_client"`

	WarmRequests int `json:"warm_requests"`
	Requests     int `json:"requests"` // storm phase
	OK           int `json:"ok"`
	Failed       int `json:"failed"`
	Rejected429  int `json:"rejected_429"`
	CacheHits    int `json:"cache_hits"`
	CompileJobs  int `json:"compile_jobs"` // submissions carrying raw Green-Marl source

	WallNS        int64   `json:"wall_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50NS  int64   `json:"latency_p50_ns"`
	LatencyP95NS  int64   `json:"latency_p95_ns"`
	LatencyP99NS  int64   `json:"latency_p99_ns"`

	PerTenant []TenantLoad `json:"per_tenant"`

	// Probe outcomes: the phases that make the CI gate deterministic
	// rather than load-dependent.
	ProbeCacheHit bool `json:"probe_cache_hit"`
	ProbeRejected bool `json:"probe_rejected_429"`
}

// loadQuery is one entry of the workload mix.
type loadQuery struct {
	algorithm string
	source    string
	params    map[string]any
	nocache   bool
	weight    int
}

// loadMix is the seeded heterogeneous workload: cheap cached built-ins
// dominate (the serving sweet spot), with a compile-from-source job
// and uncached engine-heavy variants mixed in — the workload-mix shape
// of the distributed-graph-systems measurement literature.
func loadMix() []loadQuery {
	return []loadQuery{
		{algorithm: "pagerank", params: map[string]any{"e": 1e-4, "d": 0.85, "max_iter": 5}, weight: 4},
		{algorithm: "sssp", params: map[string]any{}, weight: 3},
		{algorithm: "avgteen", params: map[string]any{"K": 40}, weight: 3},
		{algorithm: "conductance", params: map[string]any{"num": 1}, weight: 2},
		{source: algorithms.DegreeStats, params: map[string]any{}, weight: 2},
		{algorithm: "pagerank", params: map[string]any{"e": 1e-4, "d": 0.85, "max_iter": 3}, nocache: true, weight: 2},
	}
}

// pickQuery draws from the mix by weight.
func pickQuery(mix []loadQuery, rng *rand.Rand) loadQuery {
	total := 0
	for _, q := range mix {
		total += q.weight
	}
	n := rng.Intn(total)
	for _, q := range mix {
		n -= q.weight
		if n < 0 {
			return q
		}
	}
	return mix[len(mix)-1]
}

// loadClient wraps the HTTP plumbing.
type loadClient struct {
	base string
	hc   *http.Client
}

func (c *loadClient) postJSON(path string, body any) (int, http.Header, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, payload, nil
}

// RunLoad drives the full load test: setup, cache warm-up, a
// mixed-tenant concurrent storm, and two deterministic probes (a
// guaranteed cache hit and a guaranteed 429). The returned report is
// what gmserve -loadtest writes as BENCH_PR8.json.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.GraphName == "" {
		opts.GraphName = "bench"
	}
	if opts.Builder == "" {
		opts.Builder = "twitter"
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Clients <= 0 {
		opts.Clients = 32
	}
	if opts.RequestsPerClient <= 0 {
		opts.RequestsPerClient = 4
	}
	c := &loadClient{
		base: opts.BaseURL,
		hc: &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        opts.Clients + 8,
				MaxIdleConnsPerHost: opts.Clients + 8,
			},
		},
	}
	rep := &LoadReport{
		Seed: opts.Seed, Graph: opts.GraphName, Builder: opts.Builder, Scale: opts.Scale,
		Clients: opts.Clients, RequestsPerClient: opts.RequestsPerClient,
	}

	// Phase 0: graph + tenant quotas. alpha gets 4× beta's weight;
	// "limited" exists to be saturated by the 429 probe.
	if code, _, body, err := c.postJSON("/graphs", GraphSpec{
		Name: opts.GraphName, Builder: opts.Builder, Scale: opts.Scale, InputsSeed: opts.Seed + 7,
	}); err != nil {
		return nil, fmt.Errorf("loadgen: load graph: %w", err)
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("loadgen: load graph: HTTP %d: %s", code, body)
	}
	quotas := []struct {
		name string
		q    Quota
	}{
		{"alpha", Quota{MaxConcurrent: 4, MaxQueued: 1024, Weight: 4}},
		{"beta", Quota{MaxConcurrent: 2, MaxQueued: 1024, Weight: 1}},
		{"limited", Quota{MaxConcurrent: 1, MaxQueued: -1, Weight: 1}},
	}
	for _, tq := range quotas {
		if code, _, body, err := c.postJSON("/tenants", map[string]any{"name": tq.name, "quota": tq.q}); err != nil {
			return nil, fmt.Errorf("loadgen: set quota: %w", err)
		} else if code != http.StatusOK {
			return nil, fmt.Errorf("loadgen: set quota: HTTP %d: %s", code, body)
		}
	}

	mix := loadMix()

	// Phase 1: warm the cache — every cacheable query once,
	// synchronously, so the storm observes hits.
	for _, q := range mix {
		if q.nocache {
			continue
		}
		req := JobRequest{Tenant: "alpha", Graph: opts.GraphName, Algorithm: q.algorithm,
			Source: q.source, Params: q.params, Wait: true}
		code, _, body, err := c.postJSON("/jobs", req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: warm-up: %w", err)
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("loadgen: warm-up %s: HTTP %d: %s", q.algorithm, code, body)
		}
		rep.WarmRequests++
	}

	// Phase 2: the storm. Clients run concurrently; each issues its
	// seeded sequence of synchronous requests as one of the two
	// storm tenants.
	type sample struct {
		tenant  string
		latency time.Duration
		status  int
		hit     bool
		compile bool
	}
	samples := make([][]sample, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + 1000 + int64(i)))
			tenant := "alpha"
			if i%2 == 1 {
				tenant = "beta"
			}
			for r := 0; r < opts.RequestsPerClient; r++ {
				q := pickQuery(mix, rng)
				req := JobRequest{Tenant: tenant, Graph: opts.GraphName, Algorithm: q.algorithm,
					Source: q.source, Params: q.params, NoCache: q.nocache, Wait: true}
				t0 := time.Now()
				code, hdr, _, err := c.postJSON("/jobs", req)
				if err != nil {
					samples[i] = append(samples[i], sample{tenant: tenant, status: 599})
					continue
				}
				samples[i] = append(samples[i], sample{
					tenant: tenant, latency: time.Since(t0), status: code,
					hit: hdr.Get("X-Cache") == "hit", compile: q.source != "",
				})
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	byTenant := map[string]*TenantLoad{}
	tl := func(name string) *TenantLoad {
		t, ok := byTenant[name]
		if !ok {
			t = &TenantLoad{Tenant: name}
			byTenant[name] = t
		}
		return t
	}
	var latencies []int64
	for _, cs := range samples {
		for _, sm := range cs {
			rep.Requests++
			t := tl(sm.tenant)
			t.Requests++
			if sm.compile {
				rep.CompileJobs++
			}
			switch {
			case sm.status == http.StatusOK:
				rep.OK++
				t.OK++
				latencies = append(latencies, sm.latency.Nanoseconds())
				if sm.hit {
					rep.CacheHits++
					t.CacheHits++
				}
			case sm.status == http.StatusTooManyRequests:
				rep.Rejected429++
				t.Rejected++
			default:
				rep.Failed++
			}
		}
	}
	rep.WallNS = wall.Nanoseconds()
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.LatencyP50NS = percentile(latencies, 0.50)
	rep.LatencyP95NS = percentile(latencies, 0.95)
	rep.LatencyP99NS = percentile(latencies, 0.99)

	// Phase 3a: guaranteed cache hit — the same query twice, back to
	// back, from one thread.
	probe := JobRequest{Tenant: "alpha", Graph: opts.GraphName, Algorithm: "pagerank",
		Params: map[string]any{"e": 1e-4, "d": 0.85, "max_iter": 4}, Wait: true}
	if code, _, _, err := c.postJSON("/jobs", probe); err == nil && code == http.StatusOK {
		if code2, hdr2, _, err2 := c.postJSON("/jobs", probe); err2 == nil &&
			code2 == http.StatusOK && hdr2.Get("X-Cache") == "hit" {
			rep.ProbeCacheHit = true
		}
	}

	// Phase 3b: guaranteed 429 — tenant "limited" runs at most one job
	// and queues none, so an async long job followed by a second
	// submission must reject while the first still runs. The probe gets
	// its own asymmetric graph (PageRank with e=0 never converges early
	// there — on symmetric shapes like the ring it finishes in one
	// superstep), and its iteration budget doubles per attempt so it
	// eventually outlives the follow-up request's round-trip.
	if code, _, body, err := c.postJSON("/graphs", GraphSpec{
		Name: "probe429", Builder: "random", Scale: 1, InputsSeed: opts.Seed + 7,
	}); err != nil {
		return rep, fmt.Errorf("loadgen: probe graph: %w", err)
	} else if code != http.StatusOK {
		return rep, fmt.Errorf("loadgen: probe graph: HTTP %d: %s", code, body)
	}
	for attempt := 0; attempt < 20 && !rep.ProbeRejected; attempt++ {
		maxIter := 40 << attempt
		if maxIter > 1<<20 {
			maxIter = 1 << 20
		}
		long := JobRequest{Tenant: "limited", Graph: "probe429", Algorithm: "pagerank",
			Params: map[string]any{"e": 0.0, "d": 0.85, "max_iter": maxIter}, NoCache: true}
		code, _, body, err := c.postJSON("/jobs", long)
		if err != nil {
			return rep, fmt.Errorf("loadgen: 429 probe: %w", err)
		}
		if code == http.StatusTooManyRequests {
			rep.ProbeRejected = true // a prior attempt's job still holds the slot
			break
		}
		if code != http.StatusAccepted {
			return rep, fmt.Errorf("loadgen: 429 probe submit: HTTP %d: %s", code, body)
		}
		code2, hdr2, _, err := c.postJSON("/jobs", long)
		if err != nil {
			return rep, fmt.Errorf("loadgen: 429 probe: %w", err)
		}
		if code2 == http.StatusTooManyRequests {
			if ra := hdr2.Get("Retry-After"); ra == "" {
				return rep, fmt.Errorf("loadgen: 429 without Retry-After")
			}
			rep.ProbeRejected = true
		}
	}

	for _, name := range []string{"alpha", "beta", "limited"} {
		if t, ok := byTenant[name]; ok {
			rep.PerTenant = append(rep.PerTenant, *t)
		}
	}
	return rep, nil
}

// percentile reads the q-quantile from ascending s (nearest-rank).
func percentile(s []int64, q float64) int64 {
	if len(s) == 0 {
		return 0
	}
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
