package serve

import (
	"fmt"
	"testing"
)

// TestCanonicalParamsKeyOrder: the cache key must not depend on Go map
// iteration order or on the order keys appeared in the request JSON.
func TestCanonicalParamsKeyOrder(t *testing.T) {
	a := map[string]any{"e": 0.001, "max_iter": 10.0, "d": 0.85}
	b := map[string]any{"d": 0.85, "e": 0.001, "max_iter": 10.0}
	if canonicalParams(a) != canonicalParams(b) {
		t.Fatalf("key order changed the canonical form: %q vs %q",
			canonicalParams(a), canonicalParams(b))
	}
	if got, want := canonicalParams(nil), "{}"; got != want {
		t.Errorf("nil params: got %q, want %q", got, want)
	}
	if canonicalParams(a) == canonicalParams(map[string]any{"e": 0.002, "max_iter": 10.0, "d": 0.85}) {
		t.Error("different values collided")
	}
}

func TestCacheKeyComponents(t *testing.T) {
	base := cacheKey("g@v1", "gmp1:aa", map[string]any{"x": 1.0})
	for name, other := range map[string]string{
		"snapshot": cacheKey("g@v2", "gmp1:aa", map[string]any{"x": 1.0}),
		"program":  cacheKey("g@v1", "gmp1:bb", map[string]any{"x": 1.0}),
		"params":   cacheKey("g@v1", "gmp1:aa", map[string]any{"x": 2.0}),
	} {
		if other == base {
			t.Errorf("changing the %s component did not change the key", name)
		}
	}
}

// TestCacheLRUEviction: the byte budget evicts in least-recently-used
// order, and get() refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	// Each entry costs len(key)+len(payload) = 2+30 = 32 bytes; budget
	// holds exactly 4.
	c := newResultCache(128)
	pay := func(i int) []byte { return []byte(fmt.Sprintf("%030d", i)) }
	for i := 0; i < 4; i++ {
		if ev := c.put(fmt.Sprintf("k%d", i), pay(i)); ev != 0 {
			t.Fatalf("put %d evicted %d entries under budget", i, ev)
		}
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 should be resident")
	}
	if ev := c.put("k4", pay(4)); ev != 1 {
		t.Fatalf("put over budget should evict exactly 1, got %d", ev)
	}
	if _, ok := c.get("k1"); ok {
		t.Error("k1 should have been the LRU victim")
	}
	if _, ok := c.get("k0"); !ok {
		t.Error("recently-touched k0 was evicted")
	}
	info := c.info()
	if info.Entries != 4 || info.UsedBytes != 128 || info.Evictions != 1 {
		t.Errorf("unexpected cache info: %+v", info)
	}
}

// TestCacheOversizedAndReplace: payloads larger than the whole budget
// are skipped; re-putting a key updates bytes in place.
func TestCacheOversizedAndReplace(t *testing.T) {
	c := newResultCache(64)
	if ev := c.put("big", make([]byte, 65)); ev != 0 {
		t.Fatalf("oversized put evicted %d", ev)
	}
	if c.info().Entries != 0 {
		t.Fatal("oversized payload was cached")
	}
	c.put("k", make([]byte, 10))
	c.put("k", make([]byte, 20))
	info := c.info()
	if info.Entries != 1 || info.UsedBytes != int64(len("k")+20) {
		t.Errorf("replace did not update bytes in place: %+v", info)
	}
}
