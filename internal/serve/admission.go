package serve

import (
	"sort"
	"sync"
	"time"
)

// Quota is one tenant's admission envelope. The zero value of any
// field inherits the server default, so `POST /tenants` bodies can be
// sparse.
type Quota struct {
	// MaxConcurrent bounds the tenant's simultaneously running jobs.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxQueued bounds the tenant's waiting jobs; a submission past it
	// is rejected with 429 + Retry-After instead of degrading every
	// other tenant. Use -1 for "no queue at all".
	MaxQueued int `json:"max_queued,omitempty"`
	// MemoryBytes is the per-job engine MemoryBudget (the PR 7
	// governor); 0 leaves the governor off.
	MemoryBytes int64 `json:"memory_bytes,omitempty"`
	// DeadlineMS is the per-job wall-clock budget enforced by the
	// engine's supervision layer; 0 inherits the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Weight is the tenant's weighted-fair share of dequeue bandwidth
	// (default 1): a weight-4 tenant drains its backlog 4× as fast as a
	// weight-1 tenant when both are saturated.
	Weight float64 `json:"weight,omitempty"`
}

func (q Quota) withDefaults(d Quota) Quota {
	if q.MaxConcurrent == 0 {
		q.MaxConcurrent = d.MaxConcurrent
	}
	if q.MaxQueued == 0 {
		q.MaxQueued = d.MaxQueued
	}
	if q.MaxQueued < 0 {
		q.MaxQueued = 0
	}
	if q.Weight == 0 {
		q.Weight = d.Weight
	}
	if q.DeadlineMS == 0 {
		q.DeadlineMS = d.DeadlineMS
	}
	return q
}

// decision is the admission verdict for one submission.
type decision int

const (
	decideRun decision = iota
	decideQueue
	decideReject
)

func (d decision) String() string {
	switch d {
	case decideRun:
		return "admit"
	case decideQueue:
		return "queue"
	default:
		return "reject"
	}
}

// tenantState is one tenant's live admission ledger.
type tenantState struct {
	name    string
	quota   Quota
	running int
	queue   []*job
	// vtime is the tenant's weighted-fair virtual time: work
	// dispatched divided by weight. The dispatcher always serves the
	// backlogged tenant with the smallest vtime, which is classic WFQ —
	// bandwidth converges to the weight ratio under saturation.
	vtime float64
}

// admission is the server's weighted-fair admission controller. One
// mutex guards the whole ledger; every operation is O(tenants + moved
// jobs), and decisions are deterministic given the arrival order.
type admission struct {
	mu           sync.Mutex
	capacity     int // global concurrent-jobs bound
	running      int
	tenants      map[string]*tenantState
	defaultQuota Quota
}

func newAdmission(capacity int, defaultQuota Quota) *admission {
	if capacity <= 0 {
		capacity = 8
	}
	return &admission{
		capacity:     capacity,
		tenants:      map[string]*tenantState{},
		defaultQuota: defaultQuota,
	}
}

// setQuota installs (or replaces) a tenant's quota.
func (a *admission) setQuota(tenant string, q Quota) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenant(tenant)
	ts.quota = q.withDefaults(a.defaultQuota)
}

// tenant returns the tenant's state, creating it at the default quota.
// New tenants start at the minimum live vtime so they compete fairly
// without starving incumbents. Callers hold a.mu.
func (a *admission) tenant(name string) *tenantState {
	ts, ok := a.tenants[name]
	if !ok {
		min := 0.0
		first := true
		for _, t := range a.tenants {
			if t.running > 0 || len(t.queue) > 0 {
				if first || t.vtime < min {
					min, first = t.vtime, false
				}
			}
		}
		ts = &tenantState{name: name, quota: a.defaultQuota, vtime: min}
		a.tenants[name] = ts
	}
	return ts
}

// submit decides a job's fate at arrival: run now, wait in the
// tenant's queue, or reject with a Retry-After hint.
func (a *admission) submit(j *job) (decision, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenant(j.tenant)
	if a.running < a.capacity && ts.running < ts.quota.MaxConcurrent {
		a.dispatch(ts)
		return decideRun, 0
	}
	if len(ts.queue) < ts.quota.MaxQueued {
		ts.queue = append(ts.queue, j)
		return decideQueue, 0
	}
	// Saturated: the hint scales with the tenant's own backlog so
	// well-behaved clients back off proportionally.
	wait := time.Second * time.Duration(1+len(ts.queue)+ts.running)
	return decideReject, wait
}

// dispatch charges one job start to ts. Callers hold a.mu.
func (a *admission) dispatch(ts *tenantState) {
	ts.running++
	a.running++
	ts.vtime += 1 / ts.quota.Weight
}

// release returns a finished job's slot and drains the queues: while
// global capacity remains, the backlogged, under-quota tenant with the
// smallest virtual time runs next (ties break by name, so the schedule
// is deterministic for a fixed arrival order). Returns the jobs to
// start; the caller spawns them outside the lock.
func (a *admission) release(j *job) []*job {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenant(j.tenant)
	ts.running--
	a.running--
	var started []*job
	for a.running < a.capacity {
		next := a.pickNext()
		if next == nil {
			break
		}
		nj := next.queue[0]
		copy(next.queue, next.queue[1:])
		next.queue = next.queue[:len(next.queue)-1]
		a.dispatch(next)
		started = append(started, nj)
	}
	return started
}

// pickNext selects the WFQ winner among eligible tenants. Callers hold
// a.mu.
func (a *admission) pickNext() *tenantState {
	names := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	var best *tenantState
	for _, name := range names {
		ts := a.tenants[name]
		if len(ts.queue) == 0 || ts.running >= ts.quota.MaxConcurrent {
			continue
		}
		if best == nil || ts.vtime < best.vtime {
			best = ts
		}
	}
	return best
}

// TenantInfo is the introspection view of one tenant's ledger.
type TenantInfo struct {
	Name    string  `json:"name"`
	Quota   Quota   `json:"quota"`
	Running int     `json:"running"`
	Queued  int     `json:"queued"`
	VTime   float64 `json:"vtime"`
}

// snapshot reports every tenant's state, sorted by name.
func (a *admission) snapshot() (infos []TenantInfo, running, capacity int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ts := range a.tenants {
		infos = append(infos, TenantInfo{
			Name: ts.name, Quota: ts.quota, Running: ts.running,
			Queued: len(ts.queue), VTime: ts.vtime,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, a.running, a.capacity
}
