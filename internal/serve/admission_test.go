package serve

import (
	"testing"
	"time"
)

func testJob(tenant string) *job {
	return &job{tenant: tenant, state: "queued", done: make(chan struct{})}
}

// TestAdmissionImmediateAndQueue covers the three verdicts.
func TestAdmissionImmediateAndQueue(t *testing.T) {
	a := newAdmission(2, Quota{MaxConcurrent: 1, MaxQueued: 1, Weight: 1})

	j1 := testJob("a")
	if d, _ := a.submit(j1); d != decideRun {
		t.Fatalf("first job: want run, got %v", d)
	}
	// Tenant a is at MaxConcurrent=1: the next goes to its queue.
	j2 := testJob("a")
	if d, _ := a.submit(j2); d != decideQueue {
		t.Fatalf("second job: want queue, got %v", d)
	}
	// Queue is full: reject with a positive backoff hint.
	j3 := testJob("a")
	d, retry := a.submit(j3)
	if d != decideReject {
		t.Fatalf("third job: want reject, got %v", d)
	}
	if retry < time.Second {
		t.Errorf("retry hint too small: %v", retry)
	}
	// Another tenant still has headroom (global capacity 2).
	if d, _ := a.submit(testJob("b")); d != decideRun {
		t.Fatalf("tenant b: want run, got %v", d)
	}
	// Releasing j1 dispatches a's queued job.
	started := a.release(j1)
	if len(started) != 1 || started[0] != j2 {
		t.Fatalf("release should start the queued job, got %v", started)
	}
}

// TestWeightedFairDequeue locks in the WFQ property: under saturation,
// dequeue bandwidth follows the weight ratio.
func TestWeightedFairDequeue(t *testing.T) {
	a := newAdmission(1, Quota{MaxConcurrent: 8, MaxQueued: 64, Weight: 1})
	a.setQuota("heavy", Quota{MaxConcurrent: 8, MaxQueued: 64, Weight: 3})
	a.setQuota("light", Quota{MaxConcurrent: 8, MaxQueued: 64, Weight: 1})

	// Fill the single slot, then backlog both tenants.
	running := testJob("heavy")
	if d, _ := a.submit(running); d != decideRun {
		t.Fatal("setup: first job should run")
	}
	var queued []*job
	for i := 0; i < 8; i++ {
		jh, jl := testJob("heavy"), testJob("light")
		if d, _ := a.submit(jh); d != decideQueue {
			t.Fatal("setup: heavy should queue")
		}
		if d, _ := a.submit(jl); d != decideQueue {
			t.Fatal("setup: light should queue")
		}
		queued = append(queued, jh, jl)
	}
	_ = queued

	// Drain one at a time and tally the first 8 dispatches.
	counts := map[string]int{}
	cur := running
	for i := 0; i < 8; i++ {
		started := a.release(cur)
		if len(started) != 1 {
			t.Fatalf("drain %d: want exactly one dispatch, got %d", i, len(started))
		}
		cur = started[0]
		counts[cur.tenant]++
	}
	// Weight 3:1 over 8 dispatches → 6:2.
	if counts["heavy"] != 6 || counts["light"] != 2 {
		t.Errorf("WFQ split off: want heavy=6 light=2, got %v", counts)
	}
}

// TestAdmissionDeterministicTieBreak: equal vtime breaks by tenant
// name, so the dispatch schedule is reproducible.
func TestAdmissionDeterministicTieBreak(t *testing.T) {
	a := newAdmission(1, Quota{MaxConcurrent: 4, MaxQueued: 16, Weight: 1})
	running := testJob("zz")
	a.submit(running)
	jb := testJob("bravo")
	ja := testJob("alpha")
	a.submit(jb)
	a.submit(ja)
	started := a.release(running)
	if len(started) != 1 || started[0].tenant != "alpha" {
		t.Fatalf("tie should break alphabetically, got %+v", started)
	}
}

// TestQuotaDefaults: sparse quota bodies inherit defaults; MaxQueued=-1
// means no queue.
func TestQuotaDefaults(t *testing.T) {
	d := Quota{MaxConcurrent: 2, MaxQueued: 64, Weight: 1, DeadlineMS: 1000}
	q := Quota{Weight: 4, MaxQueued: -1}.withDefaults(d)
	if q.MaxConcurrent != 2 || q.MaxQueued != 0 || q.Weight != 4 || q.DeadlineMS != 1000 {
		t.Errorf("unexpected defaults: %+v", q)
	}
}
