package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/core"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/machine"
	"gmpregel/internal/obs"
	"gmpregel/internal/pregel"
)

// Options configures a Server.
type Options struct {
	// Workers is the engine worker count for every served run (0 = 4).
	// Fixed per server — with Seed, it makes served Stats bit-identical
	// to a gmbench run at the same -workers/-seed.
	Workers int
	// Seed seeds every engine run. Serving the same query twice must
	// produce the same result (that is what makes the cache sound), so
	// the seed is server-wide, not per-request.
	Seed int64
	// Capacity bounds globally concurrent engine runs (0 = 8).
	Capacity int
	// DefaultQuota applies to tenants that never posted a quota; its
	// zero fields inherit the library defaults (2 concurrent, 64
	// queued, weight 1, DefaultDeadline, governor off).
	DefaultQuota Quota
	// CacheBytes is the result-cache byte budget (0 = 64 MiB).
	CacheBytes int64
	// DefaultDeadline is the per-job wall budget when neither the
	// tenant quota nor the request tightens it (0 = 30s).
	DefaultDeadline time.Duration
	// Registry receives every server decision as metrics (nil = a new
	// registry, exposed on /metrics).
	Registry *obs.Registry
}

// Server is the long-lived multi-tenant job server. Create with New,
// mount Handler on an http.Server, Close on shutdown.
type Server struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	reg    *obs.Registry
	snaps  *snapshotRegistry
	adm    *admission
	cache  *resultCache

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for bounded history
	nextID   int64

	compileMu sync.Mutex
	compiled  map[string]*compiledProgram // builtins by name + sources by text

	// Decision metrics (ISSUE: admit/queue/reject/hit/miss/evict all
	// observable on the existing obs handler).
	jobsRunning *obs.Gauge
	queueDepth  *obs.Gauge
	cacheBytes  *obs.Gauge
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheEvicts *obs.Counter
	graphLoads  *obs.Counter
	graphSwaps  *obs.Counter
	graphFreed  *obs.Counter
}

type compiledProgram struct {
	prog *machine.Program
	hash string
}

const maxJobHistory = 4096

// New builds a Server. It serves nothing until a graph is loaded via
// `POST /graphs` (or LoadGraph).
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 8
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	if opts.DefaultDeadline <= 0 {
		opts.DefaultDeadline = 30 * time.Second
	}
	dq := opts.DefaultQuota.withDefaults(Quota{
		MaxConcurrent: 2, MaxQueued: 64, Weight: 1,
		DeadlineMS: opts.DefaultDeadline.Milliseconds(),
	})
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		reg:      reg,
		adm:      newAdmission(opts.Capacity, dq),
		cache:    newResultCache(opts.CacheBytes),
		jobs:     map[string]*job{},
		compiled: map[string]*compiledProgram{},
	}
	s.snaps = newSnapshotRegistry(func(*Snapshot) { s.graphFreed.Inc() })
	s.jobsRunning = reg.Gauge("serve_jobs_running", "engine runs in flight")
	s.queueDepth = reg.Gauge("serve_queue_depth", "jobs waiting in tenant queues")
	s.cacheBytes = reg.Gauge("serve_cache_bytes", "result-cache bytes in use")
	s.cacheHits = reg.Counter("serve_cache_hits_total", "result-cache hits")
	s.cacheMisses = reg.Counter("serve_cache_misses_total", "result-cache misses")
	s.cacheEvicts = reg.Counter("serve_cache_evictions_total", "result-cache evictions")
	s.graphLoads = reg.Counter("serve_graph_loads_total", "graph snapshots loaded")
	s.graphSwaps = reg.Counter("serve_graph_swaps_total", "graph versions hot-swapped")
	s.graphFreed = reg.Counter("serve_graphs_freed_total", "retired snapshots drained and freed")
	return s
}

// Close cancels every in-flight run (at its next superstep barrier)
// and stops accepting work meaningfully; intended for tests and
// process shutdown.
func (s *Server) Close() { s.cancel() }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// LoadGraph loads or hot-swaps a snapshot programmatically (the
// `POST /graphs` handler calls this too).
func (s *Server) LoadGraph(spec GraphSpec) (*Snapshot, *Snapshot, error) {
	if spec.Name == "" {
		return nil, nil, fmt.Errorf("serve: graph name required")
	}
	fresh, old, err := s.snaps.Load(spec)
	if err != nil {
		return nil, nil, err
	}
	s.graphLoads.Inc()
	if old != nil {
		s.graphSwaps.Inc()
	}
	return fresh, old, nil
}

// SetQuota installs a tenant quota programmatically.
func (s *Server) SetQuota(tenant string, q Quota) {
	s.adm.setQuota(tenant, q)
}

func (s *Server) admitCounter(tenant string, d decision) *obs.Counter {
	return s.reg.Counter("serve_admission_total", "admission decisions",
		obs.L("tenant", tenant), obs.L("decision", d.String()))
}

func (s *Server) jobsDone(tenant, state string) *obs.Counter {
	return s.reg.Counter("serve_jobs_completed_total", "finished jobs",
		obs.L("tenant", tenant), obs.L("state", state))
}

func (s *Server) jobSeconds(tenant string) *obs.Histogram {
	return s.reg.Histogram("serve_job_seconds", "job wall time", obs.DurationBuckets(),
		obs.L("tenant", tenant))
}

// resolveProgram turns a request into an executable program + content
// hash: built-ins compile once and are memoized; ad-hoc sources are
// memoized by source text (the program hash is what the cache keys on,
// so formatting-only variants still share result-cache entries).
func (s *Server) resolveProgram(req *JobRequest) (*compiledProgram, *apiError) {
	name := req.Algorithm
	src := ""
	switch {
	case name != "" && req.Source != "":
		return nil, badRequest("specify algorithm or source, not both")
	case name != "":
		var ok bool
		src, ok = algorithms.ByName[name]
		if !ok {
			src, ok = algorithms.ExtraByName[name]
		}
		if !ok {
			return nil, badRequest(fmt.Sprintf("unknown algorithm %q", name))
		}
	case req.Source != "":
		src = req.Source
	default:
		return nil, badRequest("specify an algorithm name or Green-Marl source")
	}

	memoKey := "algo:" + name
	if name == "" {
		memoKey = "src:" + src
	}
	s.compileMu.Lock()
	cp, ok := s.compiled[memoKey]
	if ok {
		s.compileMu.Unlock()
		return cp, nil
	}
	if len(s.compiled) > 256 {
		// Bound the memo table; recompiles are correct, just slower.
		s.compiled = map[string]*compiledProgram{}
	}
	s.compileMu.Unlock()

	c, err := core.Compile(src, core.Options{})
	if err != nil {
		return nil, compileError(err)
	}
	if a := c.Program.Analysis; a != nil && a.Errors > 0 {
		// The static analyzer found error-severity defects (write
		// conflicts, cross-superstep hazards): reject with the full
		// structured report rather than running a misbehaving program.
		return nil, &apiError{
			status: http.StatusBadRequest,
			body: map[string]any{
				"error":       "program rejected by static analysis",
				"diagnostics": c.Diagnostics.Report(),
			},
		}
	}
	h, err := core.ProgramHash(c.Program)
	if err != nil {
		return nil, &apiError{status: http.StatusInternalServerError, body: map[string]any{"error": err.Error()}}
	}
	cp = &compiledProgram{prog: c.Program, hash: h}
	s.compileMu.Lock()
	s.compiled[memoKey] = cp
	s.compileMu.Unlock()
	return cp, nil
}

// apiError is a structured HTTP error payload.
type apiError struct {
	status int
	body   map[string]any
	header map[string]string
}

func badRequest(msg string) *apiError {
	return &apiError{status: http.StatusBadRequest, body: map[string]any{"error": msg}}
}

// compileError shapes parse/sema failures as structured JSON: each
// semantic error carries its position, so clients can annotate source.
func compileError(err error) *apiError {
	body := map[string]any{"error": "compile failed", "detail": err.Error()}
	var list sema.ErrorList
	if ok := asErrorList(err, &list); ok {
		items := make([]map[string]any, 0, len(list))
		for _, e := range list {
			items = append(items, map[string]any{
				"line": e.Pos.Line, "col": e.Pos.Col, "message": e.Msg,
			})
		}
		body["sema_errors"] = items
	}
	return &apiError{status: http.StatusBadRequest, body: body}
}

func asErrorList(err error, out *sema.ErrorList) bool {
	if l, ok := err.(sema.ErrorList); ok {
		*out = l
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (e *apiError) write(w http.ResponseWriter) {
	for k, v := range e.header {
		w.Header().Set(k, v)
	}
	writeJSON(w, e.status, e.body)
}

func encodeResult(r *JobResult) ([]byte, error) { return json.Marshal(r) }

// Handler returns the server's HTTP API. Serve routes take precedence;
// everything else (metrics, healthz, pprof) falls through to the
// standard obs introspection handler on the same registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.snaps.List())
	})
	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("POST /tenants", s.handleSetQuota)
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		infos, running, capacity := s.adm.snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"tenants": infos, "running": running, "capacity": capacity,
		})
	})
	mux.HandleFunc("GET /serverz", func(w http.ResponseWriter, r *http.Request) {
		infos, running, capacity := s.adm.snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"graphs":   s.snaps.List(),
			"tenants":  infos,
			"running":  running,
			"capacity": capacity,
			"cache":    s.cache.info(),
		})
	})
	mux.Handle("/", obs.Handler(s.reg, nil))
	return mux
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if err := decodeBody(r, &spec); err != nil {
		err.write(w)
		return
	}
	fresh, old, err := s.LoadGraph(spec)
	if err != nil {
		badRequest(err.Error()).write(w)
		return
	}
	resp := map[string]any{
		"graph":   fresh.ID(),
		"builder": fresh.Builder,
		"nodes":   fresh.Graph.NumNodes(),
		"edges":   fresh.Graph.NumEdges(),
	}
	if old != nil {
		resp["retired"] = old.ID()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSetQuota(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name  string `json:"name"`
		Quota Quota  `json:"quota"`
	}
	if err := decodeBody(r, &body); err != nil {
		err.write(w)
		return
	}
	if body.Name == "" {
		badRequest("tenant name required").write(w)
		return
	}
	s.SetQuota(body.Name, body.Quota)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func decodeBody(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: " + err.Error())
	}
	return nil
}

// submitRequest runs the whole admission pipeline for one request and returns
// the job (nil on cache hit or rejection). It is the programmatic core
// of `POST /jobs`; the HTTP handler only adds wait/poll plumbing.
func (s *Server) submitRequest(req *JobRequest) (*job, *JobStatus, *apiError) {
	if req.Tenant == "" {
		return nil, nil, badRequest("tenant required")
	}
	if req.Graph == "" {
		return nil, nil, badRequest("graph required")
	}
	cp, aerr := s.resolveProgram(req)
	if aerr != nil {
		return nil, nil, aerr
	}
	snap, err := s.snaps.Acquire(req.Graph)
	if err != nil {
		return nil, nil, &apiError{status: http.StatusNotFound, body: map[string]any{"error": err.Error()}}
	}
	bindings, err := buildBindings(cp.prog, snap, req.Params)
	if err != nil {
		snap.release()
		return nil, nil, badRequest(err.Error())
	}

	key := ""
	if !req.NoCache {
		key = cacheKey(snap.ID(), cp.hash, req.Params)
		if payload, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			snap.release()
			var jr JobResult
			if err := json.Unmarshal(payload, &jr); err == nil {
				return nil, &JobStatus{
					Tenant: req.Tenant, Graph: jr.Graph, Algorithm: req.Algorithm,
					State: "done", Cached: true, Result: &jr,
				}, nil
			}
			// Unreadable entry: fall through to a fresh run.
		}
		s.cacheMisses.Inc()
	}

	quota := s.adm.quotaFor(req.Tenant)
	deadline := time.Duration(quota.DeadlineMS) * time.Millisecond
	if req.TimeoutMS > 0 && time.Duration(req.TimeoutMS)*time.Millisecond < deadline {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	j := &job{
		id:          s.newJobID(),
		tenant:      req.Tenant,
		algorithm:   req.Algorithm,
		snap:        snap,
		prog:        cp.prog,
		programHash: cp.hash,
		bindings:    bindings,
		cacheKey:    key,
		live:        obs.NewLive(),
		state:       "queued",
		done:        make(chan struct{}),
	}
	j.cfg = pregel.Config{
		NumWorkers:   s.opts.Workers,
		Seed:         s.opts.Seed,
		Deadline:     deadline,
		MemoryBudget: quota.MemoryBytes,
		Observer:     j.live,
	}
	s.registerJob(j)

	d, retry := s.adm.submit(j)
	s.admitCounter(req.Tenant, d).Inc()
	switch d {
	case decideRun:
		go s.runJob(j)
	case decideQueue:
		s.queueDepth.Add(1)
	case decideReject:
		s.dropJob(j)
		snap.release()
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		return nil, nil, &apiError{
			status: http.StatusTooManyRequests,
			body: map[string]any{
				"error":          "tenant quota exceeded",
				"tenant":         req.Tenant,
				"retry_after_ms": retry.Milliseconds(),
			},
			header: map[string]string{"Retry-After": strconv.Itoa(secs)},
		}
	}
	st := j.status()
	return j, &st, nil
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		aerr.write(w)
		return
	}
	j, st, aerr := s.submitRequest(&req)
	if aerr != nil {
		aerr.write(w)
		return
	}
	if j == nil {
		// Cache hit: O(lookup), no engine, no queue.
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("X-Cache", "miss")
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	select {
	case <-j.done:
		final := j.status()
		code := http.StatusOK
		if final.State == "failed" {
			code = http.StatusInternalServerError
		}
		writeJSON(w, code, final)
	case <-r.Context().Done():
		// Client gave up; the job keeps running (it holds a slot and a
		// snapshot pin) and stays pollable by id.
		cur := j.status()
		writeJSON(w, http.StatusAccepted, cur)
	}
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":    j.id,
		"state": j.status().State,
		"run":   j.live.Snapshot(),
	})
}

func (s *Server) newJobID() string {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

func (s *Server) registerJob(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	// Bounded history: drop the oldest finished jobs. Running/queued
	// jobs are never dropped (they are bounded by capacity + queues).
	for len(s.jobOrder) > maxJobHistory {
		oldest := s.jobOrder[0]
		oj := s.jobs[oldest]
		if oj != nil {
			st := oj.status().State
			if st != "done" && st != "failed" {
				break
			}
			delete(s.jobs, oldest)
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) dropJob(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	delete(s.jobs, j.id)
}

func (s *Server) lookupJob(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

// quotaFor reports the tenant's effective quota.
func (a *admission) quotaFor(tenant string) Quota {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tenant(tenant).quota
}
