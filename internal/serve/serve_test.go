package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"gmpregel/internal/bench"
	"gmpregel/internal/pregel"
)

const (
	testWorkers = 4
	testSeed    = int64(1)
)

// newTestServer builds a server + HTTP endpoint with the twitter graph
// loaded under the gmbench input convention (inputs seed = seed+7).
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = testWorkers
	}
	if opts.Seed == 0 {
		opts.Seed = testSeed
	}
	s := New(opts)
	t.Cleanup(s.Close)
	if _, _, err := s.LoadGraph(GraphSpec{Name: "bench", Builder: "twitter", Scale: 1, InputsSeed: testSeed + 7}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, payload
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(payload, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, payload)
		}
	}
	return resp.StatusCode
}

// TestServedStatsBitIdenticalToBench is the acceptance gate: a job
// through gmserve produces Stats bit-identical to the same
// algorithm/params run through the gmbench harness on the same graph —
// on the cache miss (fresh engine run) and again on the hit.
func TestServedStatsBitIdenticalToBench(t *testing.T) {
	_, hs := newTestServer(t, Options{})

	// The reference: gmbench's own path on the identical graph/inputs.
	spec, err := bench.GraphByName("twitter")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(1)
	in := bench.MakeInputs(g, 0, testSeed+7)
	p := bench.DefaultParams()
	cfg := pregel.Config{NumWorkers: testWorkers, Seed: testSeed}

	cases := []struct {
		algo   string
		params map[string]any
	}{
		{"pagerank", map[string]any{"e": p.PRBeps, "d": p.PRDamping, "max_iter": float64(p.PRMaxIter)}},
		{"avgteen", map[string]any{"K": float64(p.AvgTeenK)}},
		{"conductance", map[string]any{"num": float64(p.ConductNum)}},
		{"sssp", map[string]any{}},
	}
	for _, tc := range cases {
		want, err := bench.RunGenerated(tc.algo, g, in, p, cfg, 1)
		if err != nil {
			t.Fatalf("%s: bench reference: %v", tc.algo, err)
		}
		req := JobRequest{Tenant: "t1", Graph: "bench", Algorithm: tc.algo, Params: tc.params, Wait: true}

		// Miss: a fresh in-process engine run through the server.
		code, hdr, payload := postJSON(t, hs.URL+"/jobs", req)
		if code != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", tc.algo, code, payload)
		}
		if hdr.Get("X-Cache") != "miss" {
			t.Fatalf("%s: first run should miss, got %q", tc.algo, hdr.Get("X-Cache"))
		}
		var st JobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "done" || st.Result == nil {
			t.Fatalf("%s: job not done: %+v", tc.algo, st)
		}
		if !reflect.DeepEqual(st.Result.Stats, want.Stats) {
			t.Errorf("%s: served Stats differ from gmbench (miss path)\n got %+v\nwant %+v", tc.algo, st.Result.Stats, want.Stats)
		}

		// Hit: the cached payload replays the identical Stats.
		code, hdr, payload = postJSON(t, hs.URL+"/jobs", req)
		if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
			t.Fatalf("%s: expected cache hit, got HTTP %d %q", tc.algo, code, hdr.Get("X-Cache"))
		}
		var st2 JobStatus
		if err := json.Unmarshal(payload, &st2); err != nil {
			t.Fatal(err)
		}
		if !st2.Cached || st2.Result == nil {
			t.Fatalf("%s: hit not marked cached: %+v", tc.algo, st2)
		}
		if !reflect.DeepEqual(st2.Result.Stats, want.Stats) {
			t.Errorf("%s: cached Stats differ from gmbench\n got %+v\nwant %+v", tc.algo, st2.Result.Stats, want.Stats)
		}
	}
}

// TestCompileFromSource covers the ad-hoc Green-Marl path: a valid
// source executes; a broken one comes back 400 with structured
// diagnostics rather than a bare string.
func TestCompileFromSource(t *testing.T) {
	_, hs := newTestServer(t, Options{})

	src := `Procedure deg_sum(G: Graph, deg: Node_Prop<Int>) : Int
{
    Int total = 0;
    Foreach (n: G.Nodes) {
        n.deg = n.Degree();
    }
    total = Sum(n: G.Nodes)(n.deg);
    Return total;
}
`
	req := JobRequest{Tenant: "dev", Graph: "bench", Source: src, Wait: true}
	code, _, payload := postJSON(t, hs.URL+"/jobs", req)
	if code != http.StatusOK {
		t.Fatalf("valid source: HTTP %d: %s", code, payload)
	}
	var st JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || st.Result.Ret == nil || st.Result.Ret.Kind != "int" {
		t.Fatalf("expected an int return, got %+v", st)
	}
	if st.Result.Ret.Int <= 0 {
		t.Errorf("degree sum should be positive, got %d", st.Result.Ret.Int)
	}
	if !strings.HasPrefix(st.Result.ProgramHash, "gmp1:") {
		t.Errorf("result should carry the program hash, got %q", st.Result.ProgramHash)
	}

	// A type error returns structured sema diagnostics with positions.
	bad := `Procedure broken(G: Graph) : Int
{
    Int x = 0;
    x = True;
    Return x;
}
`
	code, _, payload = postJSON(t, hs.URL+"/jobs", JobRequest{Tenant: "dev", Graph: "bench", Source: bad, Wait: true})
	if code != http.StatusBadRequest {
		t.Fatalf("broken source: want 400, got %d: %s", code, payload)
	}
	var errBody struct {
		Error      string `json:"error"`
		Detail     string `json:"detail"`
		SemaErrors []struct {
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"sema_errors"`
	}
	if err := json.Unmarshal(payload, &errBody); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, payload)
	}
	if errBody.Error != "compile failed" {
		t.Errorf("unexpected error shape: %s", payload)
	}
	if len(errBody.SemaErrors) == 0 || errBody.SemaErrors[0].Line == 0 {
		t.Errorf("expected positioned sema errors, got %s", payload)
	}
}

// TestQuotaRejectionWith429 locks in saturation behavior: a tenant at
// MaxConcurrent=1 with no queue gets 429 + Retry-After on its second
// concurrent submission, and the rejection is visible in the metrics.
func TestQuotaRejectionWith429(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	s.SetQuota("small", Quota{MaxConcurrent: 1, MaxQueued: -1, Weight: 1})

	long := JobRequest{Tenant: "small", Graph: "bench", Algorithm: "pagerank",
		Params: map[string]any{"e": 0.0, "d": 0.85, "max_iter": 40}, NoCache: true}
	code, _, payload := postJSON(t, hs.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("first job: want 202, got %d: %s", code, payload)
	}
	var first JobStatus
	if err := json.Unmarshal(payload, &first); err != nil {
		t.Fatal(err)
	}

	code, hdr, payload := postJSON(t, hs.URL+"/jobs", long)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second job: want 429, got %d: %s", code, payload)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	var rej struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(payload, &rej); err != nil {
		t.Fatal(err)
	}
	if rej.RetryAfterMS <= 0 {
		t.Errorf("want a positive retry_after_ms, got %s", payload)
	}

	// The decision is on the metrics surface.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), `serve_admission_total{decision="reject",tenant="small"} 1`) {
		t.Errorf("reject not in metrics:\n%s", prom)
	}

	// Let the long job finish so the test server shuts down cleanly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		getJSON(t, hs.URL+"/jobs/"+first.ID, &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job never finished: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHotSwapDrainsOldVersion is the no-leak acceptance gate: swapping
// a graph under a live job neither fails the job (it stays pinned to
// the old version) nor leaks the old snapshot once the job drains.
func TestHotSwapDrainsOldVersion(t *testing.T) {
	s, hs := newTestServer(t, Options{})

	// Hold a reference to v1 so we can inspect it after the swap.
	v1, err := s.snaps.Acquire("bench")
	if err != nil {
		t.Fatal(err)
	}

	long := JobRequest{Tenant: "swap", Graph: "bench", Algorithm: "pagerank",
		Params: map[string]any{"e": 0.0, "d": 0.85, "max_iter": 60}, NoCache: true}
	code, _, payload := postJSON(t, hs.URL+"/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("long job: want 202, got %d: %s", code, payload)
	}
	var job1 JobStatus
	if err := json.Unmarshal(payload, &job1); err != nil {
		t.Fatal(err)
	}

	// Swap in v2 while the job runs.
	code, _, payload = postJSON(t, hs.URL+"/graphs", GraphSpec{Name: "bench", Builder: "ring", Scale: 1, InputsSeed: 9})
	if code != http.StatusOK {
		t.Fatalf("swap: HTTP %d: %s", code, payload)
	}
	var swap struct {
		Graph   string `json:"graph"`
		Retired string `json:"retired"`
	}
	if err := json.Unmarshal(payload, &swap); err != nil {
		t.Fatal(err)
	}
	if swap.Graph != "bench@v2" || swap.Retired != "bench@v1" {
		t.Fatalf("unexpected swap response: %s", payload)
	}

	// The in-flight job completes against v1.
	var final JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, hs.URL+"/jobs/"+job1.ID, &final)
		if final.State == "done" || final.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("swapped-over job never finished: %+v", final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != "done" {
		t.Fatalf("job pinned to the old version must succeed, got %+v", final)
	}
	if final.Result.Graph != "bench@v1" {
		t.Errorf("job should report the version it ran on, got %q", final.Result.Graph)
	}

	// New submissions run on v2.
	code, _, payload = postJSON(t, hs.URL+"/jobs", JobRequest{Tenant: "swap", Graph: "bench",
		Algorithm: "pagerank", Params: map[string]any{"e": 1e-4, "d": 0.85, "max_iter": 3}, Wait: true})
	if code != http.StatusOK {
		t.Fatalf("post-swap job: HTTP %d: %s", code, payload)
	}
	var st2 JobStatus
	if err := json.Unmarshal(payload, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Result.Graph != "bench@v2" {
		t.Errorf("post-swap job should run on v2, got %q", st2.Result.Graph)
	}

	// Drop our own pin: the retired snapshot must reach refcount zero
	// and be marked freed. The job's pin is released just after its
	// state turns observable, so poll briefly.
	v1.release()
	for time.Now().Before(deadline) && !v1.FreedForTest() {
		time.Sleep(5 * time.Millisecond)
	}
	if got := v1.Refs(); got != 0 {
		t.Errorf("retired snapshot still has %d refs", got)
	}
	if !v1.FreedForTest() {
		t.Error("retired snapshot was never freed")
	}

	// The drain is observable in metrics.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_graph_swaps_total 1", "serve_graphs_freed_total 1"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobTraceStreamsProgress checks /jobs/{id}/trace serves the Live
// observer's snapshot for a finished job.
func TestJobTraceStreamsProgress(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	req := JobRequest{Tenant: "tracer", Graph: "bench", Algorithm: "pagerank",
		Params: map[string]any{"e": 1e-4, "d": 0.85, "max_iter": 4}, NoCache: true, Wait: true}
	code, _, payload := postJSON(t, hs.URL+"/jobs", req)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, payload)
	}
	var st JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Run   struct {
			Superstep   int   `json:"superstep"`
			Done        bool  `json:"done"`
			Spans       int64 `json:"spans"`
			VertexCalls int64 `json:"vertex_calls"`
		} `json:"run"`
	}
	if code := getJSON(t, hs.URL+"/jobs/"+st.ID+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	if !trace.Run.Done || trace.Run.Spans == 0 || trace.Run.VertexCalls == 0 {
		t.Errorf("trace snapshot not populated: %+v", trace)
	}
	if trace.State != "done" {
		t.Errorf("trace state = %q", trace.State)
	}

	if code := getJSON(t, hs.URL+"/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Errorf("unknown job trace: want 404, got %d", code)
	}
}

// TestBadRequests covers the API's structured rejections.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	cases := []struct {
		name string
		req  JobRequest
		want int
	}{
		{"no tenant", JobRequest{Graph: "bench", Algorithm: "pagerank"}, http.StatusBadRequest},
		{"no graph", JobRequest{Tenant: "x", Algorithm: "pagerank"}, http.StatusBadRequest},
		{"unknown graph", JobRequest{Tenant: "x", Graph: "nope", Algorithm: "pagerank"}, http.StatusNotFound},
		{"unknown algorithm", JobRequest{Tenant: "x", Graph: "bench", Algorithm: "nope"}, http.StatusBadRequest},
		{"both algorithm and source", JobRequest{Tenant: "x", Graph: "bench", Algorithm: "pagerank", Source: "x"}, http.StatusBadRequest},
		{"missing params", JobRequest{Tenant: "x", Graph: "bench", Algorithm: "pagerank"}, http.StatusBadRequest},
		{"unknown param", JobRequest{Tenant: "x", Graph: "bench", Algorithm: "sssp",
			Params: map[string]any{"bogus": 1.0}}, http.StatusBadRequest},
		{"non-integer int param", JobRequest{Tenant: "x", Graph: "bench", Algorithm: "avgteen",
			Params: map[string]any{"K": 1.5}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, payload := postJSON(t, hs.URL+"/jobs", tc.req)
		if code != tc.want {
			t.Errorf("%s: want %d, got %d: %s", tc.name, tc.want, code, payload)
		}
		var body map[string]any
		if err := json.Unmarshal(payload, &body); err != nil || body["error"] == nil {
			t.Errorf("%s: rejection body not structured JSON: %s", tc.name, payload)
		}
	}
}

// TestAsyncPolling covers the 202 + poll lifecycle.
func TestAsyncPolling(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	req := JobRequest{Tenant: "poller", Graph: "bench", Algorithm: "avgteen",
		Params: map[string]any{"K": 40}, NoCache: true}
	code, _, payload := postJSON(t, hs.URL+"/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("want 202, got %d: %s", code, payload)
	}
	var st JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("no job id in %s", payload)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur JobStatus
		if code := getJSON(t, fmt.Sprintf("%s/jobs/%s", hs.URL, st.ID), &cur); code != http.StatusOK {
			t.Fatalf("poll: HTTP %d", code)
		}
		if cur.State == "done" {
			if cur.Result == nil || cur.Result.Ret == nil {
				t.Fatalf("done without result: %+v", cur)
			}
			break
		}
		if cur.State == "failed" {
			t.Fatalf("job failed: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
