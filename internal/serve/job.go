package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/ir"
	"gmpregel/internal/machine"
	"gmpregel/internal/obs"
	"gmpregel/internal/pregel"
)

// JobRequest is the `POST /jobs` body. Exactly one of Algorithm (a
// built-in name: the paper's six plus the extension set) or Source
// (Green-Marl text, compiled per submission) selects the program.
type JobRequest struct {
	Tenant    string         `json:"tenant"`
	Graph     string         `json:"graph"`
	Algorithm string         `json:"algorithm,omitempty"`
	Source    string         `json:"source,omitempty"`
	Params    map[string]any `json:"params,omitempty"`
	// TimeoutMS tightens (never loosens) the tenant's deadline quota.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache entirely: no lookup, no store.
	NoCache bool `json:"nocache,omitempty"`
	// Wait makes the submission synchronous: the response is the final
	// job status instead of 202 + a job id to poll.
	Wait bool `json:"wait,omitempty"`
}

// RetValue is a program's return value in JSON form.
type RetValue struct {
	Kind  string  `json:"kind"` // "int" or "float"
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
}

// JobResult is the completed-run payload; it is also exactly what the
// result cache stores, so a hit replays the original run's Stats (and
// its ElapsedNS — the price the engine paid, not the lookup).
type JobResult struct {
	Graph       string       `json:"graph"` // snapshot id, name@vN
	ProgramHash string       `json:"program_hash"`
	Stats       pregel.Stats `json:"stats"`
	Ret         *RetValue    `json:"ret,omitempty"`
	ElapsedNS   int64        `json:"elapsed_ns"`
}

// JobStatus is the `GET /jobs/{id}` (and synchronous `POST /jobs`)
// response body.
type JobStatus struct {
	ID        string     `json:"id"`
	Tenant    string     `json:"tenant"`
	Graph     string     `json:"graph"`
	Algorithm string     `json:"algorithm,omitempty"`
	State     string     `json:"state"` // queued | running | done | failed
	Cached    bool       `json:"cached,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// job is one admitted (or queued) unit of work. The snapshot pin is
// taken at submission — before queueing — so hot-swaps never pull a
// graph out from under a waiting job.
type job struct {
	id          string
	tenant      string
	algorithm   string
	snap        *Snapshot
	prog        *machine.Program
	programHash string
	bindings    machine.Bindings
	cacheKey    string // "" when the request opted out
	cfg         pregel.Config
	live        *obs.Live

	mu     sync.Mutex
	state  string
	result *JobResult
	errMsg string
	done   chan struct{}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Tenant: j.tenant, Graph: j.snap.ID(), Algorithm: j.algorithm,
		State: j.state, Result: j.result, Error: j.errMsg,
	}
}

// buildBindings maps a program's declared parameters onto the request
// params and the snapshot's deterministic input columns, mirroring
// gmbench's conventions (age/member/is_boy/len columns, root node) so
// a served run is bit-identical to the CLI run.
func buildBindings(p *machine.Program, snap *Snapshot, params map[string]any) (machine.Bindings, error) {
	b := machine.Bindings{}
	declared := map[string]bool{}
	for _, sc := range p.Scalars {
		if !sc.IsParam {
			continue
		}
		declared[sc.Name] = true
		v, ok := params[sc.Name]
		if !ok {
			if sc.Kind == ir.KNode && sc.Name == "root" {
				if b.Node == nil {
					b.Node = map[string]graph.NodeID{}
				}
				b.Node[sc.Name] = snap.Inputs.Root
				continue
			}
			return b, fmt.Errorf("missing scalar param %q (%v)", sc.Name, sc.Kind)
		}
		switch sc.Kind {
		case ir.KInt:
			n, err := asInt(sc.Name, v)
			if err != nil {
				return b, err
			}
			if b.Int == nil {
				b.Int = map[string]int64{}
			}
			b.Int[sc.Name] = n
		case ir.KFloat:
			f, ok := v.(float64)
			if !ok {
				return b, fmt.Errorf("param %q: want number, got %T", sc.Name, v)
			}
			if b.Float == nil {
				b.Float = map[string]float64{}
			}
			b.Float[sc.Name] = f
		case ir.KBool:
			bv, ok := v.(bool)
			if !ok {
				return b, fmt.Errorf("param %q: want bool, got %T", sc.Name, v)
			}
			if b.Bool == nil {
				b.Bool = map[string]bool{}
			}
			b.Bool[sc.Name] = bv
		case ir.KNode:
			n, err := asInt(sc.Name, v)
			if err != nil {
				return b, err
			}
			if n < 0 || n >= int64(snap.Graph.NumNodes()) {
				return b, fmt.Errorf("param %q: node %d out of range [0,%d)", sc.Name, n, snap.Graph.NumNodes())
			}
			if b.Node == nil {
				b.Node = map[string]graph.NodeID{}
			}
			b.Node[sc.Name] = graph.NodeID(n)
		default:
			return b, fmt.Errorf("param %q: unsupported kind %v", sc.Name, sc.Kind)
		}
	}
	for name := range params {
		if !declared[name] {
			return b, fmt.Errorf("unknown param %q (program %s declares no such parameter)", name, p.Name)
		}
	}
	// Input property columns bind by their conventional names; a
	// property parameter outside the convention starts zero-filled
	// (the machine's default), which is the documented semantics for
	// output-only parameters.
	in := snap.Inputs
	for _, pd := range p.Props {
		if !pd.IsParam {
			continue
		}
		switch {
		case pd.Name == "age" && !pd.IsEdge:
			if b.NodePropInt == nil {
				b.NodePropInt = map[string][]int64{}
			}
			b.NodePropInt["age"] = in.Age
		case pd.Name == "member" && !pd.IsEdge:
			if b.NodePropInt == nil {
				b.NodePropInt = map[string][]int64{}
			}
			b.NodePropInt["member"] = in.Member
		case pd.Name == "is_boy" && !pd.IsEdge:
			b.NodePropBool = map[string][]bool{"is_boy": in.IsBoy}
		case pd.Name == "len" && pd.IsEdge:
			b.EdgePropInt = map[string][]int64{"len": in.EdgeLen}
		}
	}
	return b, nil
}

func asInt(name string, v any) (int64, error) {
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("param %q: want integer, got %T", name, v)
	}
	if f != math.Trunc(f) {
		return 0, fmt.Errorf("param %q: want integer, got %v", name, f)
	}
	return int64(f), nil
}

// runJob executes an admitted job on the engine, publishes its result
// (to the job record, any waiters, the cache, and the metrics
// registry), releases the snapshot pin, and hands the freed slot to
// the admission controller's dispatcher.
func (s *Server) runJob(j *job) {
	j.setState("running")
	s.jobsRunning.Add(1)
	start := time.Now()
	res, err := machine.RunContext(s.ctx, j.prog, j.snap.Graph, j.bindings, j.cfg)
	elapsed := time.Since(start)

	j.mu.Lock()
	if err != nil {
		j.state = "failed"
		j.errMsg = err.Error()
		if res != nil {
			// Partial stats stay readable alongside the abort error
			// (deadline, budget, cancellation).
			j.result = &JobResult{
				Graph: j.snap.ID(), ProgramHash: j.programHash,
				Stats: res.Stats, ElapsedNS: elapsed.Nanoseconds(),
			}
		}
	} else {
		jr := &JobResult{
			Graph: j.snap.ID(), ProgramHash: j.programHash,
			Stats: res.Stats, ElapsedNS: elapsed.Nanoseconds(),
		}
		if res.Stats.ReturnedIsSet {
			if res.Stats.ReturnedIsInt {
				jr.Ret = &RetValue{Kind: "int", Int: res.Stats.ReturnedInt}
			} else {
				jr.Ret = &RetValue{Kind: "float", Float: res.Stats.ReturnedFloat}
			}
		}
		j.state = "done"
		j.result = jr
	}
	state, result := j.state, j.result
	j.mu.Unlock()

	if state == "done" && j.cacheKey != "" {
		if payload, err := encodeResult(result); err == nil {
			s.cacheEvicts.Add(s.cache.put(j.cacheKey, payload))
			s.cacheBytes.Set(float64(s.cache.info().UsedBytes))
		}
	}
	s.jobsRunning.Add(-1)
	s.jobSeconds(j.tenant).Observe(elapsed.Seconds())
	s.jobsDone(j.tenant, state).Inc()
	j.snap.release()
	close(j.done)
	for _, next := range s.adm.release(j) {
		s.queueDepth.Add(-1)
		go s.runJob(next)
	}
}
