package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// cacheKey builds the result-cache identity: graph snapshot version,
// compiled-program content hash, and canonicalized params. Any of the
// three changing (a hot-swap, a source edit that survives compilation,
// a different parameter) misses; formatting-only source edits and JSON
// key order do not.
func cacheKey(snapshotID, programHash string, params map[string]any) string {
	return snapshotID + "|" + programHash + "|" + canonicalParams(params)
}

// canonicalParams renders params deterministically: keys sorted,
// values in their JSON form.
func canonicalParams(params map[string]any) string {
	if len(params) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v, err := json.Marshal(params[k])
		if err != nil {
			v = []byte(fmt.Sprintf("%q", fmt.Sprint(params[k])))
		}
		fmt.Fprintf(&b, "%q:%s", k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// resultCache is an LRU byte-budgeted cache of completed job results
// (their serialized JobResult payloads). A repeated query is served in
// O(lookup) without touching the engine or the admission queue.
type resultCache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	order     *list.List // front = most recently used
	byKey     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key     string
	payload []byte
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached payload and bumps its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).payload, true
}

// put stores payload under key, evicting least-recently-used entries
// until the byte budget holds, and reports how many entries were
// evicted. Payloads larger than the whole budget are not cached.
func (c *resultCache) put(key string, payload []byte) (evicted int64) {
	size := int64(len(key) + len(payload))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return 0
	}
	if el, ok := c.byKey[key]; ok {
		old := el.Value.(*cacheEntry)
		c.used += int64(len(payload)) - int64(len(old.payload))
		old.payload = payload
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
		c.used += size
	}
	for c.used > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byKey, e.key)
		c.used -= int64(len(e.key) + len(e.payload))
		c.evictions++
		evicted++
	}
	return evicted
}

// CacheInfo is the introspection view of the result cache.
type CacheInfo struct {
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
	Budget    int64 `json:"budget_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *resultCache) info() CacheInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheInfo{
		Entries: len(c.byKey), UsedBytes: c.used, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
