package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLoadStorm256Concurrent is the acceptance gate for the serving
// layer: 256 concurrent mixed-tenant clients against one resident
// graph, with zero failed requests, both deterministic probes landing,
// and per-tenant quota enforcement observable on /metrics. The whole
// test runs under the CI -race pass.
func TestLoadStorm256Concurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short mode")
	}
	s := New(Options{Workers: 2, Seed: testSeed, Capacity: 8})
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	// The ring graph keeps per-request engine work trivial so the test
	// exercises the serving layer, not the kernels.
	rep, err := RunLoad(LoadOptions{
		BaseURL: hs.URL,
		Seed:    testSeed,
		Builder: "ring",
		Scale:   1,
		Clients: 256, RequestsPerClient: 1,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}

	if rep.Requests < 256 {
		t.Errorf("storm issued %d requests, want >= 256", rep.Requests)
	}
	if rep.Failed > 0 {
		t.Errorf("%d storm requests failed outright", rep.Failed)
	}
	if rep.OK+rep.Rejected429 != rep.Requests {
		t.Errorf("request accounting off: ok %d + 429 %d != %d", rep.OK, rep.Rejected429, rep.Requests)
	}
	if rep.CacheHits == 0 {
		t.Error("warm cache observed no hits during the storm")
	}
	if rep.CompileJobs == 0 {
		t.Error("mix should include compile-from-source jobs")
	}
	if !rep.ProbeCacheHit {
		t.Error("deterministic cache-hit probe failed")
	}
	if !rep.ProbeRejected {
		t.Error("deterministic 429 probe failed")
	}
	if rep.LatencyP50NS <= 0 || rep.LatencyP95NS < rep.LatencyP50NS || rep.LatencyP99NS < rep.LatencyP95NS {
		t.Errorf("latency percentiles malformed: p50=%d p95=%d p99=%d",
			rep.LatencyP50NS, rep.LatencyP95NS, rep.LatencyP99NS)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput %.2f req/s, want > 0", rep.ThroughputRPS)
	}
	var seen []string
	for _, tl := range rep.PerTenant {
		seen = append(seen, tl.Tenant)
	}
	if got := strings.Join(seen, ","); !strings.Contains(got, "alpha") || !strings.Contains(got, "beta") {
		t.Errorf("storm tenants missing from per-tenant report: %v", seen)
	}

	// Quota enforcement must be observable in the metrics registry, per
	// tenant: admits for the storm tenants, the reject for the probe
	// tenant, and cache traffic.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`serve_admission_total{decision="admit",tenant="alpha"}`,
		`serve_admission_total{decision="admit",tenant="beta"}`,
		`serve_admission_total{decision="reject",tenant="limited"}`,
		"serve_cache_hits_total",
		"serve_cache_misses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
