// Package serve is the long-lived graph-analytics job server: one
// resident set of immutable graph snapshots, many concurrent
// heterogeneous queries. It composes the engine's existing enforcement
// mechanisms — RunContext/Deadline (supervision), MemoryBudget (the
// resource governor), and the obs metrics/trace surfaces — into a
// multi-tenant serving layer with admission control, result caching,
// and hot-swappable graph versions. See docs/SERVING.md.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gmpregel/internal/bench"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
)

// Snapshot is one immutable, refcounted graph version. Jobs pin the
// snapshot they were submitted against for their whole lifetime
// (queue wait included), so a hot-swap never invalidates an in-flight
// job: the old version drains and is freed when its last pin drops.
type Snapshot struct {
	Name    string
	Version int
	Builder string
	Scale   int
	// InputsSeed seeds the deterministic per-algorithm input columns
	// (ages, edge lengths, …) derived from the graph, mirroring
	// gmbench's bench.MakeInputs convention so served runs are
	// bit-identical to CLI runs.
	InputsSeed int64
	Graph      *graph.Directed
	Inputs     *bench.Inputs

	refs    atomic.Int64 // pins: registry's own ref + one per live job
	retired atomic.Bool  // no longer the current version of its name
	freed   atomic.Bool  // refcount reached zero after retirement
	onFree  func(*Snapshot)
}

// ID is the cache-key form of the snapshot identity.
func (s *Snapshot) ID() string { return fmt.Sprintf("%s@v%d", s.Name, s.Version) }

// Refs reports the current pin count (test and introspection surface).
func (s *Snapshot) Refs() int64 { return s.refs.Load() }

// FreedForTest reports whether the snapshot has been released by every
// pin after retirement (test surface for the no-leak guarantee).
func (s *Snapshot) FreedForTest() bool { return s.freed.Load() }

func (s *Snapshot) acquire() { s.refs.Add(1) }

// release drops one pin; the last release of a retired snapshot frees
// it. The graph pointer itself is reclaimed by the garbage collector
// once the job registry's bounded history lets go of the job records.
func (s *Snapshot) release() {
	if s.refs.Add(-1) == 0 && s.retired.Load() {
		s.freed.Store(true)
		if s.onFree != nil {
			s.onFree(s)
		}
	}
}

// GraphSpec describes how to materialize a snapshot. Builders are the
// gmbench evaluation graphs plus two small synthetic shapes for tests
// and load experiments.
type GraphSpec struct {
	Name    string `json:"name"`
	Builder string `json:"builder"` // twitter | bipartite | sk2005 | ring | random
	Scale   int    `json:"scale,omitempty"`
	// InputsSeed seeds the derived input columns; gmbench uses its
	// -seed value plus 7.
	InputsSeed int64 `json:"inputs_seed,omitempty"`
}

// buildGraph materializes the spec's graph and input columns.
func buildGraph(spec GraphSpec) (*graph.Directed, *bench.Inputs, error) {
	scale := spec.Scale
	if scale <= 0 {
		scale = 1
	}
	var g *graph.Directed
	boys := 0
	switch spec.Builder {
	case "twitter", "bipartite", "sk2005":
		bs, err := bench.GraphByName(spec.Builder)
		if err != nil {
			return nil, nil, err
		}
		g = bs.Build(scale)
		if bs.BipartiteBoys != nil {
			boys = bs.BipartiteBoys(scale)
		}
	case "ring":
		g = gen.Ring(512 * scale)
	case "random":
		g = gen.Random(1024*scale, 4096*scale, 99)
	default:
		return nil, nil, fmt.Errorf("serve: unknown graph builder %q (want twitter, bipartite, sk2005, ring, or random)", spec.Builder)
	}
	return g, bench.MakeInputs(g, boys, spec.InputsSeed), nil
}

// snapshotRegistry maps snapshot names to their current version and
// hands out pins under one lock, so a swap and an acquire can never
// race into a freed snapshot.
type snapshotRegistry struct {
	mu      sync.Mutex
	current map[string]*Snapshot
	nextVer map[string]int
	onFree  func(*Snapshot)
}

func newSnapshotRegistry(onFree func(*Snapshot)) *snapshotRegistry {
	return &snapshotRegistry{
		current: map[string]*Snapshot{},
		nextVer: map[string]int{},
		onFree:  onFree,
	}
}

// Load materializes spec and installs it as the current version of
// spec.Name. When a previous version exists it is retired: it stops
// accepting new pins immediately, keeps serving its in-flight jobs,
// and is freed when the last of them releases. Returns the new
// snapshot and the retired one (nil on first load).
func (r *snapshotRegistry) Load(spec GraphSpec) (*Snapshot, *Snapshot, error) {
	g, in, err := buildGraph(spec)
	if err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	r.nextVer[spec.Name]++
	s := &Snapshot{
		Name:       spec.Name,
		Version:    r.nextVer[spec.Name],
		Builder:    spec.Builder,
		Scale:      spec.Scale,
		InputsSeed: spec.InputsSeed,
		Graph:      g,
		Inputs:     in,
		onFree:     r.onFree,
	}
	s.acquire() // the registry's own pin on the current version
	old := r.current[spec.Name]
	r.current[spec.Name] = s
	r.mu.Unlock()

	if old != nil {
		old.retired.Store(true)
		old.release() // drop the registry pin; frees once jobs drain
	}
	return s, old, nil
}

// Acquire pins the current version of name for one job.
func (r *snapshotRegistry) Acquire(name string) (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.current[name]
	if !ok {
		return nil, fmt.Errorf("serve: no graph %q loaded", name)
	}
	s.acquire()
	return s, nil
}

// SnapshotInfo is the introspection view of one resident snapshot.
type SnapshotInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Builder string `json:"builder"`
	Scale   int    `json:"scale"`
	Nodes   int    `json:"nodes"`
	Edges   int64  `json:"edges"`
	Refs    int64  `json:"refs"`
}

// List reports every current snapshot, sorted by name.
func (r *snapshotRegistry) List() []SnapshotInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SnapshotInfo, 0, len(r.current))
	for _, s := range r.current {
		out = append(out, SnapshotInfo{
			Name: s.Name, Version: s.Version, Builder: s.Builder, Scale: s.Scale,
			Nodes: s.Graph.NumNodes(), Edges: s.Graph.NumEdges(), Refs: s.Refs(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
