package core

import (
	"math"
	"math/rand"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
	"gmpregel/internal/seq"
)

func compileOK(t *testing.T, src string, opts Options) *Compiled {
	t.Helper()
	c, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestCompileAllPaperAlgorithms(t *testing.T) {
	for _, name := range algorithms.Names {
		t.Run(name, func(t *testing.T) {
			c := compileOK(t, algorithms.ByName[name], Options{})
			if c.Program.NumVertexStates() == 0 {
				t.Error("no vertex states generated")
			}
			if err := c.Program.Validate(); err != nil {
				t.Errorf("invalid program: %v", err)
			}
		})
	}
}

func runCompiled(t *testing.T, c *Compiled, g *graph.Directed, b machine.Bindings) *machine.Result {
	t.Helper()
	res, err := machine.Run(c.Program, g, b, pregel.Config{NumWorkers: 3, Seed: 42})
	if err != nil {
		t.Fatalf("run: %v\nprogram:\n%s", err, c.Program)
	}
	return res
}

func TestAvgTeenEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.AvgTeen, Options{})
	g := gen.Random(60, 300, 7)
	age := make([]int64, 60)
	for v := range age {
		age[v] = int64((v*13 + 5) % 60)
	}
	res := runCompiled(t, c, g, machine.Bindings{
		Int:         map[string]int64{"K": 25},
		NodePropInt: map[string][]int64{"age": age},
	})
	wantCnt, wantAvg := seq.AvgTeen(g, age, 25)
	gotCnt, err := res.NodePropInt("teen_cnt")
	if err != nil {
		t.Fatal(err)
	}
	for v := range wantCnt {
		if gotCnt[v] != wantCnt[v] {
			t.Fatalf("teen_cnt[%d] = %d, want %d\n%s", v, gotCnt[v], wantCnt[v], c.Program)
		}
	}
	if !res.HasRet {
		t.Fatal("no return value")
	}
	if math.Abs(res.Ret.AsFloat()-wantAvg) > 1e-9 {
		t.Errorf("avg = %v, want %v", res.Ret.AsFloat(), wantAvg)
	}
	// Table 3 expectations for AvgTeen.
	for _, r := range []Rule{RuleStateMachine, RuleGlobalObject, RuleNeighborhoodComm, RuleFlipEdges, RuleDissectLoops, RuleMessageClassGen} {
		if !c.Trace.Applied(r) {
			t.Errorf("expected rule %s to fire", r)
		}
	}
	if c.Trace.Applied(RuleIncomingNbrs) {
		t.Error("AvgTeen should flip InNbrs to OutNbrs pushes, not build in-neighbor lists")
	}
}

func TestPageRankEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.PageRank, Options{})
	g := gen.TwitterLike(120, 4, 11)
	res := runCompiled(t, c, g, machine.Bindings{
		Float: map[string]float64{"e": 1e-9, "d": 0.85},
		Int:   map[string]int64{"max_iter": 30},
	})
	want := seq.PageRank(g, 1e-9, 0.85, 30)
	got, err := res.NodePropFloat("pg_rank")
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("pg_rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestConductanceEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.Conductance, Options{})
	g := gen.Random(80, 500, 3)
	member := make([]int64, 80)
	for v := range member {
		member[v] = int64(v % 3)
	}
	res := runCompiled(t, c, g, machine.Bindings{
		Int:         map[string]int64{"num": 1},
		NodePropInt: map[string][]int64{"member": member},
	})
	want := seq.Conductance(g, member, 1)
	if !res.HasRet {
		t.Fatal("no return value")
	}
	if math.Abs(res.Ret.AsFloat()-want) > 1e-12 {
		t.Errorf("conductance = %v, want %v", res.Ret.AsFloat(), want)
	}
	if !c.Trace.Applied(RuleIncomingNbrs) {
		t.Error("conductance's crossing-edge count must push along in-edges")
	}
}

func TestSSSPEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.SSSP, Options{})
	g := gen.WebLike(8, 6, 5) // 256 nodes
	m := g.NumEdges()
	length := make([]int64, m)
	for e := range length {
		length[e] = int64(1 + (e*7)%10)
	}
	res := runCompiled(t, c, g, machine.Bindings{
		Node:        map[string]graph.NodeID{"root": 0},
		EdgePropInt: map[string][]int64{"len": length},
	})
	want := seq.SSSP(g, 0, length)
	got, err := res.NodePropInt("dist")
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if !c.Trace.Applied(RuleEdgeProperty) {
		t.Error("SSSP must use the Edge Property rule")
	}
}

func TestBipartiteEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.Bipartite, Options{})
	const boys, girls = 60, 70
	g := gen.Bipartite(boys, girls, 4, 9)
	isBoy := make([]bool, boys+girls)
	for v := 0; v < boys; v++ {
		isBoy[v] = true
	}
	res := runCompiled(t, c, g, machine.Bindings{
		NodePropBool: map[string][]bool{"is_boy": isBoy},
	})
	matchRaw, err := res.NodePropInt("match")
	if err != nil {
		t.Fatal(err)
	}
	match := make([]graph.NodeID, len(matchRaw))
	for v, m := range matchRaw {
		match[v] = graph.NodeID(m)
	}
	if msg := seq.ValidateMatching(g, isBoy, match); msg != "" {
		t.Fatalf("invalid matching: %s", msg)
	}
	var pairs int64
	for v := 0; v < boys; v++ {
		if match[v] != graph.NilNode {
			pairs++
		}
	}
	if !res.HasRet || res.Ret.AsInt() != pairs {
		t.Errorf("returned count = %v, want %d", res.Ret, pairs)
	}
	greedy := seq.GreedyMatching(g, isBoy)
	if pairs*2 < greedy.Count {
		t.Errorf("matching size %d below half of greedy %d", pairs, greedy.Count)
	}
	if !c.Trace.Applied(RuleRandomWrite) {
		t.Error("bipartite matching must use the Random Writing rule")
	}
}

func TestBCEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.BC, Options{})
	g := gen.WebLike(7, 5, 13) // 128 nodes
	res := runCompiled(t, c, g, machine.Bindings{
		Int: map[string]int64{"K": 3},
	})
	got, err := res.NodePropFloat("BC")
	if err != nil {
		t.Fatal(err)
	}
	// The compiled program picks sources with the master RNG (Seed 42);
	// recover them by re-running the same RNG sequence.
	sources := pickSources(g.NumNodes(), 3, 42)
	want := seq.BCApprox(g, sources)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("BC[%d] = %v, want %v (sources %v)", v, got[v], want[v], sources)
		}
	}
	for _, r := range []Rule{RuleBFSTraversal, RuleRandomAccessSeq, RuleIncomingNbrs} {
		if !c.Trace.Applied(r) {
			t.Errorf("expected rule %s to fire", r)
		}
	}
}

// pickSources mirrors the master RNG sequence of pregel.Config{Seed}.
func pickSources(n, k int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = graph.NodeID(rng.Intn(n))
	}
	return out
}

// TestArtifactRoundTripAllAlgorithms serializes and reloads every
// compiled program; the reloaded artifact must validate and list
// identically.
func TestArtifactRoundTripAllAlgorithms(t *testing.T) {
	all := map[string]string{}
	for k, v := range algorithms.ByName {
		all[k] = v
	}
	for k, v := range algorithms.ExtraByName {
		all[k] = v
	}
	for name, src := range all {
		c := compileOK(t, src, Options{})
		data, err := machine.EncodeProgram(c.Program)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		p2, err := machine.DecodeProgram(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if c.Program.String() != p2.String() {
			t.Errorf("%s: listing changed across artifact round trip", name)
		}
	}
}
