package core

import (
	"strings"
	"testing"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/parser"
)

// canonicalOf runs the normalization pipeline only (no translation) and
// returns the canonical source plus the trace.
func canonicalOf(t *testing.T, src string) (string, *Trace, error) {
	t.Helper()
	proc, err := parser.ParseProcedure(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	work := proc.Clone()
	trace := &Trace{}
	nz := &normalizer{proc: work, nm: newNamer(work), trace: trace}
	nz.lowerBFS()
	nz.lowerBulkAssigns()
	nz.lowerSeqReduces()
	nz.lowerParReduces()
	nz.lowerRandomAccess()
	nz.canonicalize()
	if nz.err != nil {
		return "", trace, nz.err
	}
	return ast.Print(work), trace, nil
}

func mustCanonical(t *testing.T, src string) (string, *Trace) {
	t.Helper()
	out, tr, err := canonicalOf(t, src)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	return out, tr
}

func TestBulkAssignLowering(t *testing.T) {
	out, _ := mustCanonical(t, `Procedure f(G: Graph, root: Node, dist: Node_Prop<Int>) {
		G.dist = (G == root) ? 0 : INF;
	}`)
	if !strings.Contains(out, "Foreach (_b0: G.Nodes)") {
		t.Errorf("bulk assign not lowered to a loop:\n%s", out)
	}
	if !strings.Contains(out, "_b0 == root") {
		t.Errorf("graph identifier not rewritten to the iterator:\n%s", out)
	}
}

func TestBulkAssignKeepsGraphBuiltins(t *testing.T) {
	out, _ := mustCanonical(t, `Procedure f(G: Graph, pr: Node_Prop<Double>) {
		G.pr = 1.0 / G.NumNodes();
	}`)
	if !strings.Contains(out, "G.NumNodes()") {
		t.Errorf("G.NumNodes() must stay a graph call:\n%s", out)
	}
}

func TestSeqReduceLoweringForms(t *testing.T) {
	out, _ := mustCanonical(t, `Procedure f(G: Graph, x: Node_Prop<Int>) : Double {
		Int s = Sum(a: G.Nodes)[a.x > 0](a.x);
		Int c = Count(b: G.Nodes)(b.x == 1);
		Bool e = Exist(d: G.Nodes)[d.x < 0];
		Int mx = Max(m: G.Nodes)(m.x);
		Int mn = Min(q: G.Nodes)(q.x);
		Int p = Product(r: G.Nodes)(r.x);
		Double av = Avg(w: G.Nodes)(w.x);
		Return av;
	}`)
	for _, want := range []string{
		"_r0 += a.x",  // Sum
		"_r1 += 1",    // Count
		"_r2 |= True", // Exist
		"max= m.x",    // Max
		"min= q.x",    // Min
		"*= r.x",      // Product
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing lowered form %q in:\n%s", want, out)
		}
	}
	// Avg produces sum and count accumulators plus a guard expression.
	if !strings.Contains(out, "+= 1") || !strings.Contains(out, "== 0 ? 0.0 :") {
		t.Errorf("Avg lowering incomplete:\n%s", out)
	}
	// Max init must be -INF, Min init INF.
	if !strings.Contains(out, "= -INF") || !strings.Contains(out, "= INF") {
		t.Errorf("Max/Min initializers wrong:\n%s", out)
	}
}

func TestDissectionIntroducesTempProperty(t *testing.T) {
	out, tr := mustCanonical(t, `Procedure f(G: Graph, age: Node_Prop<Int>, cnt: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Int c = 0;
			Foreach (t: n.InNbrs)(t.age >= 13) {
				c += 1;
			}
			n.cnt = c;
		}
	}`)
	if !tr.Applied(RuleDissectLoops) {
		t.Error("dissection did not fire")
	}
	if !strings.Contains(out, "Node_Prop<Int> _t") {
		t.Errorf("no temporary property introduced:\n%s", out)
	}
	// The loop must be split into three.
	if got := strings.Count(out, "Foreach (n: G.Nodes)"); got != 2 {
		// init segment + tail segment; the middle is flipped so its
		// outer iterator becomes t.
		t.Errorf("expected 2 surviving n-loops after split+flip, got %d:\n%s", got, out)
	}
}

func TestFlipInNbrsToPush(t *testing.T) {
	out, tr := mustCanonical(t, `Procedure f(G: Graph, foo: Node_Prop<Int>, bar: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.InNbrs) {
				n.foo += t.bar;
			}
		}
	}`)
	if !tr.Applied(RuleFlipEdges) {
		t.Fatal("flip did not fire")
	}
	// The paper's example: the loops swap and InNbrs becomes Nbrs.
	if !strings.Contains(out, "Foreach (t: G.Nodes)") {
		t.Errorf("outer loop should now iterate t over all nodes:\n%s", out)
	}
	if !strings.Contains(out, "Foreach (n: t.Nbrs)") {
		t.Errorf("inner loop should push along out-edges:\n%s", out)
	}
	if tr.Applied(RuleIncomingNbrs) {
		t.Error("flipping InNbrs yields plain pushes; no in-neighbor lists needed")
	}
}

func TestFlipOutNbrsNeedsInNbrLists(t *testing.T) {
	out, tr := mustCanonical(t, `Procedure f(G: Graph, foo: Node_Prop<Int>, bar: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				n.foo += t.bar;
			}
		}
	}`)
	if !tr.Applied(RuleFlipEdges) || !tr.Applied(RuleIncomingNbrs) {
		t.Fatalf("flip of an out-neighbor pull must mark Incoming Neighbors:\n%s", out)
	}
	if !strings.Contains(out, "Foreach (n: t.InNbrs)") {
		t.Errorf("flipped loop should push along in-edges:\n%s", out)
	}
}

func TestFlipSplitsFilterConjuncts(t *testing.T) {
	out, _ := mustCanonical(t, `Procedure f(G: Graph, a: Node_Prop<Int>, b: Node_Prop<Int>) {
		Foreach (n: G.Nodes)(n.a > 0) {
			Foreach (t: n.InNbrs)(t.b == 1 && n.a < t.b) {
				n.a += t.b;
			}
		}
	}`)
	// t-only conjunct moves to the new outer (sender) loop; the old
	// outer filter and the mixed conjunct move to the new inner loop.
	outerIdx := strings.Index(out, "Foreach (t: G.Nodes) (t.b == 1)")
	if outerIdx < 0 {
		t.Errorf("sender-side filter wrong:\n%s", out)
	}
	if !strings.Contains(out, "(n.a > 0) && (n.a < t.b)") && !strings.Contains(out, "n.a > 0 && n.a < t.b") {
		t.Errorf("receiver-side filter wrong:\n%s", out)
	}
}

func TestRandomAccessLowering(t *testing.T) {
	out, tr := mustCanonical(t, `Procedure f(G: Graph, s: Node, sig: Node_Prop<Double>) {
		s.sig = 1.0;
		Double x = 0.0;
		x = s.sig;
	}`)
	if tr.Count(RuleRandomAccessSeq) != 2 {
		t.Errorf("random access should fire twice, got %d:\n%s", tr.Count(RuleRandomAccessSeq), out)
	}
	if !strings.Contains(out, "== s)") {
		t.Errorf("identity filter missing:\n%s", out)
	}
}

func TestBFSLoweringStructure(t *testing.T) {
	out, tr := mustCanonical(t, `Procedure f(G: Graph, s: Node, sig: Node_Prop<Double>) {
		InBFS (v: G.Nodes From s) {
			v.sig += Sum(w: v.UpNbrs)(w.sig);
		}
		InReverse {
			v.sig = 0.5 * v.sig;
		}
	}`)
	if !tr.Applied(RuleBFSTraversal) {
		t.Fatal("BFS lowering did not fire")
	}
	for _, want := range []string{
		"Node_Prop<Int> _lev", // level property
		"While (!_fin",        // forward frontier loop
		"min= _curr",          // expansion assigns the next level
		"While (_curr",        // reverse sweep
	} {
		if !strings.Contains(out, want) {
			t.Errorf("BFS lowering missing %q:\n%s", want, out)
		}
	}
	// UpNbrs is rewritten into a level-filtered InNbrs iteration, which
	// then flips into a push from the previous level.
	if strings.Contains(out, "UpNbrs") || strings.Contains(out, "DownNbrs") {
		t.Errorf("Up/DownNbrs survived lowering:\n%s", out)
	}
}

func TestCanonicalFormsAreStable(t *testing.T) {
	// Canonicalizing an already-canonical program must be a no-op
	// (idempotence of the pipeline).
	src := `Procedure f(G: Graph, foo: Node_Prop<Int>, bar: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				t.foo += n.bar;
			}
		}
	}`
	once, _ := mustCanonical(t, src)
	twice, _ := mustCanonical(t, once)
	if once != twice {
		t.Errorf("pipeline not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestGlobalWritesInsideInnerLoopAllowed(t *testing.T) {
	// Reduction writes to globals are aggregator contributions, legal at
	// any depth (the BFS expansion relies on this).
	_, _, err := canonicalOf(t, `Procedure f(G: Graph, x: Node_Prop<Int>) {
		Int total = 0;
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				t.x += 1;
				total += 1;
			}
		}
	}`)
	if err != nil {
		t.Fatalf("global reduction in inner loop should canonicalize: %v", err)
	}
}
