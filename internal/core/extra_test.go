package core

import (
	"math"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
	"gmpregel/internal/seq"
)

// The extension algorithms exercise pattern combinations beyond the
// paper's six programs.

func TestWCCEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.WCC, Options{})
	// Several disconnected blobs.
	b := graph.NewBuilder(50)
	addPath := func(vs ...graph.NodeID) {
		for i := 0; i+1 < len(vs); i++ {
			b.AddEdge(vs[i], vs[i+1])
		}
	}
	addPath(5, 3, 9, 1)
	addPath(10, 12, 14, 10)
	addPath(20, 21)
	addPath(30, 31, 32, 33, 34, 35)
	// Direction-reversed edge linking two chains: weak connectivity.
	b.AddEdge(35, 21)
	g := b.Build()
	res, err := machine.Run(c.Program, g, machine.Bindings{}, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.NodePropInt("comp")
	if err != nil {
		t.Fatal(err)
	}
	want := seq.WCC(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("comp[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	// WCC pushes along both edge directions in one loop: multiple
	// message types plus the incoming-neighbor prologue.
	if !c.Trace.Applied(RuleMultipleComm) || !c.Trace.Applied(RuleIncomingNbrs) {
		t.Error("WCC should use Multiple Comm. and Incoming Neighbors")
	}
}

func TestWCCOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.Random(120, 150, seed) // sparse → many components
		c := compileOK(t, algorithms.WCC, Options{})
		res, err := machine.Run(c.Program, g, machine.Bindings{}, pregel.Config{NumWorkers: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := res.NodePropInt("comp")
		want := seq.WCC(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d: comp[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestHITSEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.HITS, Options{})
	g := gen.TwitterLike(200, 6, 5)
	res, err := machine.Run(c.Program, g, machine.Bindings{
		Int: map[string]int64{"max_iter": 15},
	}, pregel.Config{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantAuth, wantHub := seq.HITS(g, 15)
	gotAuth, _ := res.NodePropFloat("auth")
	gotHub, _ := res.NodePropFloat("hub")
	for v := range wantAuth {
		if math.Abs(gotAuth[v]-wantAuth[v]) > 1e-9 {
			t.Fatalf("auth[%d] = %v, want %v", v, gotAuth[v], wantAuth[v])
		}
		if math.Abs(gotHub[v]-wantHub[v]) > 1e-9 {
			t.Fatalf("hub[%d] = %v, want %v", v, gotHub[v], wantHub[v])
		}
	}
}

func TestDegreeStatsEndToEnd(t *testing.T) {
	c := compileOK(t, algorithms.DegreeStats, Options{})
	g := gen.TwitterLike(300, 5, 9)
	res, err := machine.Run(c.Program, g, machine.Bindings{}, pregel.Config{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantDeg, wantMax := seq.InDegrees(g)
	got, _ := res.NodePropInt("indeg")
	for v := range wantDeg {
		if got[v] != wantDeg[v] {
			t.Fatalf("indeg[%d] = %d, want %d", v, got[v], wantDeg[v])
		}
	}
	if !res.HasRet || res.Ret.AsInt() != wantMax {
		t.Errorf("max = %v, want %d", res.Ret, wantMax)
	}
}

func TestExtraAlgorithmsCompile(t *testing.T) {
	for name, src := range algorithms.ExtraByName {
		t.Run(name, func(t *testing.T) {
			c := compileOK(t, src, Options{})
			if err := c.Program.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}
