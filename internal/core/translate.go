package core

import (
	"fmt"
	"math"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/ir"
	"gmpregel/internal/machine"
)

// translator lowers a Pregel-canonical AST to a machine.Program,
// applying the §3.1 translation rules: state machine construction,
// vertex/global object construction, neighborhood communication (with
// payload dataflow analysis), multiple communication (tagged messages),
// random writing, and edge properties.
type translator struct {
	proc  *ast.Procedure
	info  *sema.Info
	trace *Trace
	prog  *machine.Program
	err   error

	scalarSlot map[*sema.Symbol]int
	propSlot   map[*sema.Symbol]int
	aggSlot    map[aggKey]int

	nodes []machine.CFGNode
	cur   []ir.Stmt // pending master statements
}

type aggKey struct {
	scalar int
	op     ast.AssignOp
}

func (t *translator) fail(p fmt.Stringer, format string, args ...interface{}) {
	if t.err == nil {
		t.err = errf("%s: %s", p, fmt.Sprintf(format, args...))
	}
}

// translate builds the program. The AST must have passed sema and be in
// Pregel-canonical form.
func translate(proc *ast.Procedure, info *sema.Info, trace *Trace) (*machine.Program, error) {
	t := &translator{
		proc: proc, info: info, trace: trace,
		prog:       &machine.Program{Name: proc.Name},
		scalarSlot: map[*sema.Symbol]int{},
		propSlot:   map[*sema.Symbol]int{},
		aggSlot:    map[aggKey]int{},
	}
	for _, s := range info.Scalars {
		t.scalarSlot[s] = len(t.prog.Scalars)
		t.prog.Scalars = append(t.prog.Scalars, machine.ScalarDecl{
			Name: s.Name, Kind: ir.KindOfType(s.Type.Kind), IsParam: s.IsParam,
		})
	}
	for _, p := range info.Props {
		t.propSlot[p] = len(t.prog.Props)
		t.prog.Props = append(t.prog.Props, machine.PropDecl{
			Name: p.Name, Kind: ir.KindOfType(p.ElemKind()),
			IsEdge: p.Kind == sema.SymEdgeProp, IsParam: p.IsParam,
		})
	}
	if proc.Ret != nil {
		t.prog.HasReturn = true
		t.prog.ReturnKind = ir.KindOfType(proc.Ret.Kind)
	}

	if usesInNbrPush(proc.Body) {
		t.emitInNbrPrologue()
	}
	t.stmts(proc.Body.Stmts)
	if t.err != nil {
		return nil, t.err
	}
	// Final halt.
	t.cur = append(t.cur, nil)
	t.cur = t.cur[:len(t.cur)-1]
	t.emitMaster(t.cur, machine.Term{Kind: machine.THalt})
	t.cur = nil
	t.resolveFallthroughs()

	t.prog.Nodes = t.nodes
	t.prog.Entry = 0
	if t.prog.NumVertexStates() > 0 {
		t.trace.Record(RuleStateMachine)
	}
	if len(t.prog.Msgs) > 0 {
		t.trace.Record(RuleMessageClassGen)
	}
	// Multiple Communication: more than one message type means messages
	// carry a tag identifying the computation they belong to (§3.1).
	if len(t.prog.Msgs) > 1 {
		t.trace.Record(RuleMultipleComm)
	}
	if err := t.prog.Validate(); err != nil {
		return nil, errf("internal: generated program invalid: %v", err)
	}
	return t.prog, nil
}

// usesInNbrPush reports whether any inner neighbor loop pushes along
// in-edges (requiring the incoming-neighbor prologue).
func usesInNbrPush(body *ast.Block) bool {
	found := false
	ast.WalkStmts(body, func(s ast.Stmt) bool {
		if f, ok := s.(*ast.Foreach); ok && f.Kind == ast.IterInNbrs {
			found = true
		}
		return !found
	})
	return found
}

// ---- CFG emission ----

// emitMaster appends a master block; -1 targets mean "next node".
func (t *translator) emitMaster(stmts []ir.Stmt, term machine.Term) int {
	idx := len(t.nodes)
	t.nodes = append(t.nodes, machine.CFGNode{Master: &machine.MasterBlock{Stmts: stmts, Term: term}})
	return idx
}

// flush emits pending master statements as a fall-through block.
func (t *translator) flush() {
	if len(t.cur) > 0 {
		t.emitMaster(t.cur, machine.Term{Kind: machine.TGoto, Then: -1})
		t.cur = nil
	}
}

func (t *translator) emitVertex(vs *machine.VertexState) int {
	t.flush()
	idx := len(t.nodes)
	t.nodes = append(t.nodes, machine.CFGNode{Vertex: vs})
	return idx
}

// resolveFallthroughs patches -1 targets to the next node index.
func (t *translator) resolveFallthroughs() {
	last := len(t.nodes) - 1
	fix := func(x *int, i int) {
		if *x == -1 {
			if i >= last {
				*x = last
			} else {
				*x = i + 1
			}
		}
	}
	for i := range t.nodes {
		if m := t.nodes[i].Master; m != nil {
			fix(&m.Term.Then, i)
			fix(&m.Term.Else, i)
		}
		if v := t.nodes[i].Vertex; v != nil {
			fix(&v.Next, i)
		}
	}
}

// ---- Incoming-neighbor prologue (§4.3) ----

func (t *translator) emitInNbrPrologue() {
	t.trace.Record(RuleIncomingNbrs)
	msgType := len(t.prog.Msgs)
	t.prog.Msgs = append(t.prog.Msgs, machine.MsgSchema{Name: "_id", Fields: []ir.Kind{ir.KNode}})
	t.emitVertex(&machine.VertexState{
		Name: "in_nbr_send",
		Body: []ir.Stmt{ir.SendToNbrs{MsgType: msgType, Payload: []ir.Expr{ir.CurNode{}}}},
		Next: -1,
	})
	t.emitVertex(&machine.VertexState{
		Name: "in_nbr_collect",
		Body: []ir.Stmt{ir.CollectInNbrs{MsgType: msgType}},
		Next: -1,
	})
}

// ---- Sequential (master) compilation ----

func (t *translator) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		if t.err != nil {
			return
		}
		switch s := s.(type) {
		case *ast.Block:
			t.stmts(s.Stmts)
		case *ast.VarDecl:
			t.seqDecl(s)
		case *ast.Assign:
			t.seqAssign(s)
		case *ast.Return:
			var v ir.Expr
			if s.Value != nil {
				v = t.masterExpr(s.Value)
			}
			t.cur = append(t.cur, ir.Return{Value: v})
		case *ast.If:
			t.seqIf(s)
		case *ast.While:
			t.seqWhile(s)
		case *ast.Foreach:
			if s.Kind != ast.IterNodes {
				t.fail(s.P, "neighbor iteration outside a vertex-parallel loop")
				return
			}
			t.compileVertexLoop(s)
		default:
			t.fail(s.Pos(), "unsupported statement %T after canonicalization", s)
		}
	}
}

func (t *translator) seqDecl(d *ast.VarDecl) {
	syms := t.info.DeclOf[d]
	for _, sym := range syms {
		if sym.Kind == sema.SymNodeProp || sym.Kind == sema.SymEdgeProp {
			continue // slot pre-allocated
		}
		if sym.Kind != sema.SymScalar {
			t.fail(d.P, "unexpected %s declaration in sequential context", sym.Kind)
			return
		}
	}
	if d.Init != nil && len(syms) == 1 && syms[0].Kind == sema.SymScalar {
		slot := t.scalarSlot[syms[0]]
		t.cur = append(t.cur, ir.SetScalar{Slot: slot, Name: syms[0].Name, Op: ast.OpSet, RHS: t.masterExpr(d.Init)})
	}
}

func (t *translator) seqAssign(a *ast.Assign) {
	id, ok := a.LHS.(*ast.Ident)
	if !ok {
		t.fail(a.P, "property assignment in sequential context (should have been lowered)")
		return
	}
	sym := t.info.Uses[id]
	if sym == nil || sym.Kind != sema.SymScalar {
		t.fail(a.P, "cannot assign to %q in sequential context", id.Name)
		return
	}
	t.cur = append(t.cur, ir.SetScalar{Slot: t.scalarSlot[sym], Name: sym.Name, Op: a.Op, RHS: t.masterExpr(a.RHS)})
}

// containsParallel reports whether the subtree contains vertex loops or
// loops (requiring CFG-level branching rather than an inline master If).
func containsParallel(s ast.Stmt) bool {
	found := false
	ast.WalkStmts(s, func(st ast.Stmt) bool {
		switch st.(type) {
		case *ast.Foreach, *ast.While, *ast.InBFS:
			found = true
		}
		return !found
	})
	return found
}

func (t *translator) seqIf(s *ast.If) {
	if !containsParallel(s) {
		// Pure sequential If: inline master statement.
		thenStmts := t.masterStmtList(asBlock(s.Then).Stmts)
		var elseStmts []ir.Stmt
		if s.Else != nil {
			elseStmts = t.masterStmtList(asBlock(s.Else).Stmts)
		}
		t.cur = append(t.cur, ir.If{Cond: t.masterExpr(s.Cond), Then: thenStmts, Else: elseStmts})
		return
	}
	// CFG branch.
	cond := t.masterExpr(s.Cond)
	t.flush()
	condIdx := t.emitMaster(nil, machine.Term{Kind: machine.TCond, Cond: cond, Then: -1, Else: -2})
	t.stmts(asBlock(s.Then).Stmts)
	t.flush()
	var thenEnd = -1
	if s.Else != nil {
		thenEnd = t.emitMaster(nil, machine.Term{Kind: machine.TGoto, Then: -2})
	}
	t.nodes[condIdx].Master.Term.Else = len(t.nodes)
	if s.Else != nil {
		t.stmts(asBlock(s.Else).Stmts)
		t.flush()
		t.nodes[thenEnd].Master.Term.Then = len(t.nodes)
	}
	// Execution continues at len(t.nodes): the next emitted node.
}

// masterStmtList compiles a pure-sequential statement list to master IR.
func (t *translator) masterStmtList(ss []ast.Stmt) []ir.Stmt {
	saved := t.cur
	t.cur = nil
	for _, s := range ss {
		switch s := s.(type) {
		case *ast.Block:
			t.cur = append(t.cur, t.masterStmtList(s.Stmts)...)
		case *ast.VarDecl:
			t.seqDecl(s)
		case *ast.Assign:
			t.seqAssign(s)
		case *ast.Return:
			var v ir.Expr
			if s.Value != nil {
				v = t.masterExpr(s.Value)
			}
			t.cur = append(t.cur, ir.Return{Value: v})
		case *ast.If:
			thenStmts := t.masterStmtList(asBlock(s.Then).Stmts)
			var elseStmts []ir.Stmt
			if s.Else != nil {
				elseStmts = t.masterStmtList(asBlock(s.Else).Stmts)
			}
			t.cur = append(t.cur, ir.If{Cond: t.masterExpr(s.Cond), Then: thenStmts, Else: elseStmts})
		default:
			t.fail(s.Pos(), "unsupported statement %T in sequential branch", s)
		}
	}
	out := t.cur
	t.cur = saved
	return out
}

func (t *translator) seqWhile(w *ast.While) {
	if w.DoWhile {
		t.flush()
		bodyStart := len(t.nodes)
		t.stmts(asBlock(w.Body).Stmts)
		cond := t.masterExpr(w.Cond)
		t.flush()
		condIdx := t.emitMaster(nil, machine.Term{Kind: machine.TCond, Cond: cond, Then: bodyStart, Else: -1})
		t.prog.Loops = append(t.prog.Loops, machine.LoopInfo{
			Cond: condIdx, BodyStart: bodyStart, BackEdge: condIdx, DoWhile: true,
		})
		return
	}
	cond := t.masterExpr(w.Cond)
	t.flush()
	condIdx := t.emitMaster(nil, machine.Term{Kind: machine.TCond, Cond: cond, Then: -1, Else: -2})
	bodyStart := len(t.nodes)
	t.stmts(asBlock(w.Body).Stmts)
	t.flush()
	backEdge := t.emitMaster(nil, machine.Term{Kind: machine.TGoto, Then: condIdx})
	t.nodes[condIdx].Master.Term.Else = len(t.nodes)
	t.prog.Loops = append(t.prog.Loops, machine.LoopInfo{
		Cond: condIdx, BodyStart: bodyStart, BackEdge: backEdge,
	})
}

// masterExpr compiles an expression in master context.
func (t *translator) masterExpr(e ast.Expr) ir.Expr {
	switch e := e.(type) {
	case *ast.Ident:
		sym := t.info.Uses[e]
		if sym == nil {
			t.fail(e.P, "unresolved identifier %q", e.Name)
			return ir.Const{V: ir.Int(0)}
		}
		if sym.Kind == sema.SymScalar && !sym.InParallel {
			return ir.ScalarRef{Slot: t.scalarSlot[sym], Name: sym.Name}
		}
		t.fail(e.P, "%s %q is not usable in sequential context", sym.Kind, e.Name)
		return ir.Const{V: ir.Int(0)}
	case *ast.Call:
		return t.callExpr(e, nil)
	case *ast.PropAccess:
		t.fail(e.P, "property access in sequential context (should have been lowered)")
		return ir.Const{V: ir.Int(0)}
	case *ast.Binary:
		return ir.Binary{Op: e.Op, L: t.masterExpr(e.L), R: t.masterExpr(e.R)}
	case *ast.Unary:
		return ir.Unary{Op: e.Op, X: t.masterExpr(e.X)}
	case *ast.Ternary:
		return ir.Ternary{Cond: t.masterExpr(e.Cond), Then: t.masterExpr(e.Then), Else: t.masterExpr(e.Else)}
	default:
		return t.literal(e)
	}
}

// literal compiles literal expressions (shared by master and vertex
// contexts).
func (t *translator) literal(e ast.Expr) ir.Expr {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.Const{V: ir.Int(e.Value)}
	case *ast.FloatLit:
		return ir.Const{V: ir.Float(e.Value)}
	case *ast.BoolLit:
		return ir.Const{V: ir.Bool(e.Value)}
	case *ast.NilLit:
		return ir.Const{V: ir.Zero(ir.KNode)}
	case *ast.InfLit:
		kind := ir.KInt
		if tt := t.info.TypeOf(e); tt != nil && tt.Kind.IsFloating() {
			kind = ir.KFloat
		}
		v := ir.Inf(kind)
		if e.Neg {
			if kind == ir.KFloat {
				v = ir.Float(math.Inf(-1))
			} else {
				v = ir.Int(math.MinInt64)
			}
		}
		return ir.Const{V: v}
	default:
		t.fail(e.Pos(), "unsupported expression %T", e)
		return ir.Const{V: ir.Int(0)}
	}
}

// callExpr compiles builtin calls; vctx is nil in master context.
func (t *translator) callExpr(e *ast.Call, vc *vctx) ir.Expr {
	targetSym := t.info.SymOf(e.Target)
	switch e.Name {
	case "NumNodes":
		return ir.Builtin{Op: ir.BNumNodes}
	case "NumEdges":
		return ir.Builtin{Op: ir.BNumEdges}
	case "PickRandom":
		return ir.Builtin{Op: ir.BPickRandom}
	case "Degree", "OutDegree", "NumNbrs":
		if vc == nil {
			t.fail(e.P, "%s() requires vertex context", e.Name)
			return ir.Const{V: ir.Int(0)}
		}
		if targetSym != vc.iterSym {
			t.fail(e.P, "%s() may only be called on the current iterator %q", e.Name, vc.iter)
			return ir.Const{V: ir.Int(0)}
		}
		return ir.Builtin{Op: ir.BDegree}
	case "Id":
		if vc == nil {
			t.fail(e.P, "Id() requires vertex context")
			return ir.Const{V: ir.Int(0)}
		}
		if targetSym != vc.iterSym {
			t.fail(e.P, "Id() may only be called on the current iterator %q", vc.iter)
			return ir.Const{V: ir.Int(0)}
		}
		return ir.Builtin{Op: ir.BNodeId}
	case "InDegree":
		t.fail(e.P, "InDegree() is not supported by the Pregel backend (build incoming-neighbor lists instead)")
		return ir.Const{V: ir.Int(0)}
	}
	t.fail(e.P, "unknown builtin %q", e.Name)
	return ir.Const{V: ir.Int(0)}
}
