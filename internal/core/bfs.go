package core

import (
	"gmpregel/internal/gm/ast"
)

// lowerBFS rewrites every InBFS / InReverse traversal into the
// level-synchronous frontier-expansion form of §4.1:
//
//	Node_Prop<Int> _lev;  Node _root = <root>;
//	G._lev = INF;  _root._lev = 0;
//	Bool _fin = False;  Int _curr = 0;
//	While (!_fin) {
//	    _fin = True;
//	    Foreach (v: G.Nodes)(v._lev == _curr) { FWD' }     // user code
//	    Foreach (v: G.Nodes)(v._lev == _curr) {            // expansion
//	        Foreach (t: v.Nbrs)(t._lev == INF) {
//	            t._lev min= _curr + 1;
//	            _fin &= False;
//	        }
//	    }
//	    _curr = _curr + 1;
//	}
//	// reverse sweep, when present:
//	_curr = _curr - 1;
//	While (_curr >= 0) {
//	    Foreach (v: G.Nodes)(v._lev == _curr) { REV' }
//	    _curr = _curr - 1;
//	}
//
// Inside FWD'/REV', UpNbrs becomes InNbrs filtered to the previous level
// and DownNbrs becomes Nbrs filtered to the next level (the paper's
// "extra loop" for user code iterating BFS parents/children).
func (nz *normalizer) lowerBFS() {
	if !nz.recheck() {
		return
	}
	nz.proc.Body = nz.bfsBlock(nz.proc.Body)
}

func (nz *normalizer) bfsBlock(b *ast.Block) *ast.Block {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.InBFS:
			out = append(out, nz.lowerOneBFS(s)...)
		case *ast.If:
			s.Then = nz.bfsBlock(asBlock(s.Then))
			if s.Else != nil {
				s.Else = nz.bfsBlock(asBlock(s.Else))
			}
			out = append(out, s)
		case *ast.While:
			s.Body = nz.bfsBlock(asBlock(s.Body))
			out = append(out, s)
		case *ast.Block:
			out = append(out, nz.bfsBlock(s))
		default:
			out = append(out, s)
		}
		if nz.err != nil {
			return b
		}
	}
	b.Stmts = out
	return b
}

func (nz *normalizer) lowerOneBFS(bfs *ast.InBFS) []ast.Stmt {
	nz.trace.Record(RuleBFSTraversal)
	g := bfs.Source
	lev := nz.nm.fresh("_lev")
	fin := nz.nm.fresh("_fin")
	curr := nz.nm.fresh("_curr")
	root := nz.nm.fresh("_root")

	var out []ast.Stmt
	out = append(out,
		&ast.VarDecl{Type: nodePropType(ast.TInt), Names: []string{lev}, P: bfs.P},
		&ast.VarDecl{Type: typeOfKind(ast.TNode), Names: []string{root}, Init: bfs.Root, P: bfs.P},
		// G._lev = INF;  (re-lowered by the bulk pass)
		&ast.Assign{LHS: propOf(ident(g), lev), Op: ast.OpSet, RHS: &ast.InfLit{P: bfs.P}, P: bfs.P},
		// _root._lev = 0;  (re-lowered by the random-access pass)
		&ast.Assign{LHS: propOf(ident(root), lev), Op: ast.OpSet, RHS: intLit(0), P: bfs.P},
		&ast.VarDecl{Type: typeOfKind(ast.TBool), Names: []string{fin}, Init: &ast.BoolLit{Value: false}, P: bfs.P},
		&ast.VarDecl{Type: typeOfKind(ast.TInt), Names: []string{curr}, Init: intLit(0), P: bfs.P},
	)

	levAt := func(target ast.Expr, delta int64) ast.Expr {
		rhs := ast.Expr(ident(curr))
		if delta > 0 {
			rhs = binop(ast.BinAdd, ident(curr), intLit(delta))
		} else if delta < 0 {
			rhs = binop(ast.BinSub, ident(curr), intLit(-delta))
		}
		return binop(ast.BinEq, propOf(target, lev), rhs)
	}

	// Forward loop body.
	var fwdBody []ast.Stmt
	fwdBody = append(fwdBody, &ast.Assign{LHS: ident(fin), Op: ast.OpSet, RHS: &ast.BoolLit{Value: true}, P: bfs.P})
	if userFwd := nz.rewriteBFSUserCode(bfs.Body, bfs.Iter, lev, curr); len(userFwd.Stmts) > 0 {
		filter := conj(levAt(ident(bfs.Iter), 0), cloneOrNil(bfs.Filter))
		fwdBody = append(fwdBody, &ast.Foreach{
			Iter: bfs.Iter, Source: g, Kind: ast.IterNodes,
			Filter: filter, Body: userFwd, P: bfs.P,
		})
	}
	expIter := nz.nm.fresh("_e")
	expansion := &ast.Foreach{
		Iter: bfs.Iter, Source: g, Kind: ast.IterNodes,
		Filter: levAt(ident(bfs.Iter), 0),
		Body: blockOf(&ast.Foreach{
			Iter: expIter, Source: bfs.Iter, Kind: ast.IterOutNbrs,
			Filter: binop(ast.BinEq, propOf(ident(expIter), lev), &ast.InfLit{P: bfs.P}),
			Body: blockOf(
				&ast.Assign{LHS: propOf(ident(expIter), lev), Op: ast.OpMin, RHS: binop(ast.BinAdd, ident(curr), intLit(1)), P: bfs.P},
				&ast.Assign{LHS: ident(fin), Op: ast.OpAnd, RHS: &ast.BoolLit{Value: false}, P: bfs.P},
			),
			P: bfs.P,
		}),
		P: bfs.P,
	}
	fwdBody = append(fwdBody, expansion,
		&ast.Assign{LHS: ident(curr), Op: ast.OpSet, RHS: binop(ast.BinAdd, ident(curr), intLit(1)), P: bfs.P})

	out = append(out, &ast.While{
		Cond: &ast.Unary{Op: ast.UnNot, X: ident(fin), P: bfs.P},
		Body: &ast.Block{Stmts: fwdBody},
		P:    bfs.P,
	})

	// Reverse sweep.
	if bfs.ReverseBody != nil {
		out = append(out, &ast.Assign{LHS: ident(curr), Op: ast.OpSet, RHS: binop(ast.BinSub, ident(curr), intLit(1)), P: bfs.P})
		revUser := nz.rewriteBFSUserCode(bfs.ReverseBody, bfs.Iter, lev, curr)
		revBody := []ast.Stmt{
			&ast.Foreach{
				Iter: bfs.Iter, Source: g, Kind: ast.IterNodes,
				Filter: conj(levAt(ident(bfs.Iter), 0), cloneOrNil(bfs.Filter)),
				Body:   revUser, P: bfs.P,
			},
			&ast.Assign{LHS: ident(curr), Op: ast.OpSet, RHS: binop(ast.BinSub, ident(curr), intLit(1)), P: bfs.P},
		}
		out = append(out, &ast.While{
			Cond: binop(ast.BinGe, ident(curr), intLit(0)),
			Body: &ast.Block{Stmts: revBody},
			P:    bfs.P,
		})
	}
	return out
}

// rewriteBFSUserCode clones the traversal body and rewrites UpNbrs /
// DownNbrs domains (in loops and reductions) into level-filtered
// InNbrs / Nbrs iterations.
func (nz *normalizer) rewriteBFSUserCode(body *ast.Block, iter, lev, curr string) *ast.Block {
	cl := body.CloneStmt().(*ast.Block)
	levFilter := func(who string, delta int64) ast.Expr {
		rhs := ast.Expr(ident(curr))
		if delta > 0 {
			rhs = binop(ast.BinAdd, ident(curr), intLit(delta))
		} else {
			rhs = binop(ast.BinSub, ident(curr), intLit(-delta))
		}
		return binop(ast.BinEq, propOf(ident(who), lev), rhs)
	}
	ast.WalkStmts(cl, func(s ast.Stmt) bool {
		if f, ok := s.(*ast.Foreach); ok {
			switch f.Kind {
			case ast.IterUpNbrs:
				f.Kind = ast.IterInNbrs
				f.Filter = conj(levFilter(f.Iter, -1), f.Filter)
			case ast.IterDownNbrs:
				f.Kind = ast.IterOutNbrs
				f.Filter = conj(levFilter(f.Iter, 1), f.Filter)
			}
		}
		return true
	})
	rewriteReduce := func(e ast.Expr) ast.Expr {
		r, ok := e.(*ast.Reduce)
		if !ok {
			return e
		}
		switch r.Domain {
		case ast.IterUpNbrs:
			r.Domain = ast.IterInNbrs
			r.Filter = conj(levFilter(r.Iter, -1), r.Filter)
		case ast.IterDownNbrs:
			r.Domain = ast.IterOutNbrs
			r.Filter = conj(levFilter(r.Iter, 1), r.Filter)
		}
		return r
	}
	ast.RewriteExprs(cl, rewriteReduce)
	return cl
}
