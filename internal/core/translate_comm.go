package core

import (
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/ir"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
)

// compileInnerLoop translates one inner neighbor loop — the paper's
// Neighborhood Communication pattern — into a send statement for the
// enclosing state and a receive handler for the following state.
//
// The payload is derived by dataflow analysis: every maximal
// sender-evaluable subexpression read on the receiver side (outer-loop
// scoped variables, outer-iterator properties, and edge properties)
// becomes one deduplicated message field.
func (t *translator) compileInnerLoop(il *ast.Foreach, sctx *vctx, recv *recvBuilder) ir.Stmt {
	t.trace.Record(RuleNeighborhoodComm)
	innerSym := t.info.IterOf[il]
	if innerSym == nil {
		t.fail(il.P, "internal: unresolved inner iterator")
		return nil
	}
	if il.Kind == ast.IterInNbrs {
		t.trace.Record(RuleIncomingNbrs)
	}
	rctx := newVctx(il.Iter, innerSym)
	pb := newPayloadBuilder()

	// Register edge variables: declared inside the body, evaluated on
	// the sender while iterating the edge.
	edgeOK := il.Kind == ast.IterOutNbrs
	ast.WalkStmts(il.Body, func(s ast.Stmt) bool {
		d, ok := s.(*ast.VarDecl)
		if !ok {
			return true
		}
		for _, sym := range t.info.DeclOf[d] {
			if sym.Kind == sema.SymEdgeVar {
				if !edgeOK {
					t.fail(d.P, "edge properties are only accessible when pushing along out-edges")
					return false
				}
				if sym.EdgeOf != innerSym {
					t.fail(d.P, "edge variable %q must come from this loop's iterator %q", sym.Name, il.Iter)
					return false
				}
				sctx.edgeVars[sym] = sym.EdgeOf
			}
		}
		return true
	})
	if t.err != nil {
		return nil
	}

	// Allocate the message type up front so handlers can reference it;
	// the schema fields are filled in once the payload is known.
	msgType := len(t.prog.Msgs)
	t.prog.Msgs = append(t.prog.Msgs, machine.MsgSchema{Name: "m_" + stateNameOf(len(t.nodes))})
	recv.msgCount++

	// Split the filter into sender-side and receiver-side conjuncts.
	var edgeConds, guardConds []ast.Expr
	var recvConds []ir.Expr
	for _, c := range conjuncts(il.Filter) {
		s, r := t.scanRefs(c, sctx, innerSym)
		switch {
		case r:
			recvConds = append(recvConds, t.recvExpr(c, sctx, rctx, pb))
		case s && usesEdgeProp(t, c):
			edgeConds = append(edgeConds, c)
		case s:
			if usesEdgeProp(t, c) {
				edgeConds = append(edgeConds, c)
			} else {
				guardConds = append(guardConds, c)
			}
		default:
			// References neither iterator (globals/constants): cheapest
			// on the sender.
			guardConds = append(guardConds, c)
		}
	}

	// Compile the receiver body.
	handlerBody := t.recvStmts(asBlock(il.Body).Stmts, sctx, rctx, pb, recv)
	if t.err != nil {
		return nil
	}
	if len(recvConds) > 0 {
		cond := recvConds[0]
		for _, c := range recvConds[1:] {
			cond = ir.Binary{Op: ast.BinAnd, L: cond, R: c}
		}
		handlerBody = []ir.Stmt{ir.If{Cond: cond, Then: handlerBody}}
	}
	recv.handlers = append(recv.handlers, ir.ForMsgs{MsgType: msgType, Body: handlerBody})
	if len(pb.fields) > pregel.MaxPayloadSlots {
		t.fail(il.P, "this communication needs %d message fields, more than the %d the runtime supports; split the loop or precompute into a property",
			len(pb.fields), pregel.MaxPayloadSlots)
		return nil
	}
	t.prog.Msgs[msgType].Fields = pb.fields

	// Build the sender.
	var sender ir.Stmt
	switch il.Kind {
	case ast.IterOutNbrs:
		var edgeCond ir.Expr
		sctx.inSendPayload = true
		for _, c := range edgeConds {
			cc := t.vertexExpr(c, sctx)
			if edgeCond == nil {
				edgeCond = cc
			} else {
				edgeCond = ir.Binary{Op: ast.BinAnd, L: edgeCond, R: cc}
			}
		}
		sctx.inSendPayload = false
		sender = ir.SendToNbrs{MsgType: msgType, EdgeCond: edgeCond, Payload: pb.exprs}
	case ast.IterInNbrs:
		if len(edgeConds) > 0 {
			t.fail(il.P, "edge properties are not available when pushing along in-edges")
			return nil
		}
		sender = ir.SendToInNbrs{MsgType: msgType, Payload: pb.exprs}
	default:
		t.fail(il.P, "iteration domain %s survived canonicalization", il.Kind)
		return nil
	}
	if len(guardConds) > 0 {
		cond := t.vertexExpr(guardConds[0], sctx)
		for _, c := range guardConds[1:] {
			cond = ir.Binary{Op: ast.BinAnd, L: cond, R: t.vertexExpr(c, sctx)}
		}
		sender = ir.If{Cond: cond, Then: []ir.Stmt{sender}}
	}
	return sender
}

// usesEdgeProp reports whether e reads any edge property.
func usesEdgeProp(t *translator, e ast.Expr) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if pa, ok := x.(*ast.PropAccess); ok {
			if id, ok := pa.Target.(*ast.Ident); ok {
				if sym := t.info.Uses[id]; sym != nil && sym.Kind == sema.SymEdgeVar {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// scanRefs reports whether e references sender-scoped values (the outer
// iterator, sender locals, edge variables) and/or receiver-scoped values
// (the inner iterator).
func (t *translator) scanRefs(e ast.Expr, sctx *vctx, innerSym *sema.Symbol) (usesSender, usesRecv bool) {
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if id, ok := x.(*ast.Ident); ok {
			sym := t.info.Uses[id]
			switch {
			case sym == nil:
			case sym == sctx.iterSym:
				usesSender = true
			case sym == innerSym:
				usesRecv = true
			case hasLocal(sctx, sym):
				usesSender = true
			case sym.Kind == sema.SymEdgeVar:
				usesSender = true
			}
		}
		return true
	})
	return
}

// recvExpr compiles an expression for evaluation on the receiver,
// extracting maximal sender-evaluable subexpressions into the payload.
func (t *translator) recvExpr(e ast.Expr, sctx *vctx, rctx *vctx, pb *payloadBuilder) ir.Expr {
	s, r := t.scanRefs(e, sctx, rctx.iterSym)
	if s && !r {
		kind := ir.KInt
		if tt := t.info.TypeOf(e); tt != nil {
			kind = ir.KindOfType(tt.Kind)
		}
		sctx.inSendPayload = true
		sender := t.vertexExpr(e, sctx)
		sctx.inSendPayload = false
		idx := pb.add(ast.PrintExpr(e), kind, sender)
		return ir.MsgField{Idx: idx, K: kind}
	}
	if !s {
		return t.vertexExpr(e, rctx)
	}
	// Mixed: recurse structurally.
	switch e := e.(type) {
	case *ast.Binary:
		return ir.Binary{Op: e.Op, L: t.recvExpr(e.L, sctx, rctx, pb), R: t.recvExpr(e.R, sctx, rctx, pb)}
	case *ast.Unary:
		return ir.Unary{Op: e.Op, X: t.recvExpr(e.X, sctx, rctx, pb)}
	case *ast.Ternary:
		return ir.Ternary{
			Cond: t.recvExpr(e.Cond, sctx, rctx, pb),
			Then: t.recvExpr(e.Then, sctx, rctx, pb),
			Else: t.recvExpr(e.Else, sctx, rctx, pb),
		}
	default:
		t.fail(e.Pos(), "expression mixes sender and receiver values in an untranslatable way")
		return ir.Const{V: ir.Int(0)}
	}
}

// recvStmts compiles the inner-loop body for execution on the receiver.
func (t *translator) recvStmts(ss []ast.Stmt, sctx *vctx, rctx *vctx, pb *payloadBuilder, recv *recvBuilder) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range ss {
		if t.err != nil {
			return out
		}
		switch s := s.(type) {
		case *ast.Block:
			out = append(out, t.recvStmts(s.Stmts, sctx, rctx, pb, recv)...)
		case *ast.VarDecl:
			// Edge variables were registered during the sender pass.
			for _, sym := range t.info.DeclOf[s] {
				if sym.Kind != sema.SymEdgeVar {
					t.fail(s.P, "local declarations inside neighbor loops are not supported (except Edge)")
				}
			}
		case *ast.Assign:
			out = t.recvAssign(out, s, sctx, rctx, pb, recv)
		case *ast.If:
			cond := t.recvExpr(s.Cond, sctx, rctx, pb)
			thenStmts := t.recvStmts(asBlock(s.Then).Stmts, sctx, rctx, pb, recv)
			var elseStmts []ir.Stmt
			if s.Else != nil {
				elseStmts = t.recvStmts(asBlock(s.Else).Stmts, sctx, rctx, pb, recv)
			}
			out = append(out, ir.If{Cond: cond, Then: thenStmts, Else: elseStmts})
		default:
			t.fail(s.Pos(), "unsupported statement %T inside a neighbor loop", s)
		}
	}
	return out
}

func (t *translator) recvAssign(out []ir.Stmt, a *ast.Assign, sctx *vctx, rctx *vctx, pb *payloadBuilder, recv *recvBuilder) []ir.Stmt {
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		sym := t.info.Uses[lhs]
		if sym != nil && sym.Kind == sema.SymScalar && !sym.InParallel {
			return append(out, t.globalWrite(sym, a.Op, t.recvExpr(a.RHS, sctx, rctx, pb), &recv.foldsB))
		}
		t.fail(a.P, "cannot assign to %q inside a neighbor loop", lhs.Name)
	case *ast.PropAccess:
		tid, ok := lhs.Target.(*ast.Ident)
		if !ok {
			t.fail(a.P, "unsupported property target")
			return out
		}
		tsym := t.info.Uses[tid]
		if tsym != rctx.iterSym {
			t.fail(a.P, "%s: writing %q.%s inside a neighbor loop requires message pulling, which Pregel cannot do", a.P, tid.Name, lhs.Prop)
			return out
		}
		slot, psym := t.propSlotOf(lhs.Prop)
		if psym == nil {
			t.fail(a.P, "unknown property %q", lhs.Prop)
			return out
		}
		return append(out, ir.SetProp{Slot: slot, Name: lhs.Prop, Op: a.Op, RHS: t.recvExpr(a.RHS, sctx, rctx, pb)})
	default:
		t.fail(a.P, "invalid assignment target")
	}
	return out
}
