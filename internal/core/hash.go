package core

import (
	"crypto/sha256"
	"encoding/hex"

	"gmpregel/internal/machine"
)

// ProgramHash returns a stable content hash of a compiled program,
// suitable as a cache key component: two compilations of the same
// source (in the same compiler version, with the same Options) hash
// identically, and distinct programs hash distinctly. The hash covers
// the executable program only — scalars, properties, aggregators,
// message schemas, and the state-machine CFG — via the canonical
// machine.EncodeProgram serialization, which contains no maps or other
// order-unstable constructs. Source comments and formatting do not
// perturb it; any semantic change to the emitted program does.
func ProgramHash(p *machine.Program) (string, error) {
	data, err := machine.EncodeProgram(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "gmp1:" + hex.EncodeToString(sum[:16]), nil
}

// Hash is ProgramHash over the compilation's program.
func (c *Compiled) Hash() (string, error) { return ProgramHash(c.Program) }
