package core

import (
	"strings"
	"testing"

	"gmpregel/internal/algorithms"
)

// TestProgramHashStableAcrossRecompile locks in the cache-key contract:
// compiling the same source twice yields the same hash.
func TestProgramHashStableAcrossRecompile(t *testing.T) {
	for name, src := range algorithms.ByName {
		a, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("%s: compile 1: %v", name, err)
		}
		b, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("%s: compile 2: %v", name, err)
		}
		ha, err := a.Hash()
		if err != nil {
			t.Fatalf("%s: hash 1: %v", name, err)
		}
		hb, err := b.Hash()
		if err != nil {
			t.Fatalf("%s: hash 2: %v", name, err)
		}
		if ha != hb {
			t.Errorf("%s: hash not stable across re-compile: %s vs %s", name, ha, hb)
		}
		if !strings.HasPrefix(ha, "gmp1:") {
			t.Errorf("%s: hash missing version prefix: %s", name, ha)
		}
	}
}

// TestProgramHashDistinctAcrossSources checks distinct programs hash
// distinctly, while formatting-only edits do not perturb the hash.
func TestProgramHashDistinctAcrossSources(t *testing.T) {
	seen := map[string]string{}
	for name, src := range algorithms.ByName {
		c, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		h, err := c.Hash()
		if err != nil {
			t.Fatalf("%s: hash: %v", name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %s and %s: %s", prev, name, h)
		}
		seen[h] = name
	}

	// A comment-only edit keeps the program (and hash) identical.
	base, err := Compile(algorithms.PageRank, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commented, err := Compile("// an extra leading comment\n"+algorithms.PageRank, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := base.Hash()
	hc, _ := commented.Hash()
	if hb != hc {
		t.Errorf("comment-only edit changed the hash: %s vs %s", hb, hc)
	}

	// A semantic edit (different damping constant baked into the source
	// parameter default has no effect, so instead change an operator)
	// must change the hash.
	mut := strings.Replace(algorithms.PageRank, "diff > e", "diff >= e", 1)
	if mut == algorithms.PageRank {
		t.Fatal("mutation did not apply")
	}
	mc, err := Compile(mut, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hm, _ := mc.Hash()
	if hm == hb {
		t.Errorf("semantic edit did not change the hash: %s", hm)
	}
}
