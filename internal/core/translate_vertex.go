package core

import (
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/ir"
	"gmpregel/internal/machine"
)

// vctx is the compilation context of one vertex state.
type vctx struct {
	iter    string
	iterSym *sema.Symbol
	locals  map[*sema.Symbol]int
	kinds   []ir.Kind
	names   []string
	// edgeVars maps Edge variables to the neighbor iterator whose
	// current edge they denote (sender-side only).
	edgeVars map[*sema.Symbol]*sema.Symbol
	// inSendPayload permits EdgePropRef compilation.
	inSendPayload bool
}

func newVctx(iter string, iterSym *sema.Symbol) *vctx {
	return &vctx{
		iter: iter, iterSym: iterSym,
		locals:   map[*sema.Symbol]int{},
		edgeVars: map[*sema.Symbol]*sema.Symbol{},
	}
}

func (v *vctx) addLocal(sym *sema.Symbol) int {
	slot := len(v.kinds)
	v.locals[sym] = slot
	v.kinds = append(v.kinds, ir.KindOfType(sym.Type.Kind))
	v.names = append(v.names, sym.Name)
	return slot
}

// payloadBuilder accumulates the deduplicated message payload of one
// communication (the paper's dataflow analysis: each sender-scoped value
// read on the receiver side becomes one message field).
type payloadBuilder struct {
	keys   map[string]int
	fields []ir.Kind
	exprs  []ir.Expr // sender-compiled payload expressions
}

func newPayloadBuilder() *payloadBuilder {
	return &payloadBuilder{keys: map[string]int{}}
}

func (pb *payloadBuilder) add(key string, kind ir.Kind, sender ir.Expr) int {
	if i, ok := pb.keys[key]; ok {
		return i
	}
	i := len(pb.fields)
	pb.keys[key] = i
	pb.fields = append(pb.fields, kind)
	pb.exprs = append(pb.exprs, sender)
	return i
}

// compileVertexLoop translates one top-level parallel Foreach into a
// send/compute state plus (when it communicates) a receive state.
func (t *translator) compileVertexLoop(f *ast.Foreach) {
	sctx := newVctx(f.Iter, t.info.IterOf[f])
	var bodyA []ir.Stmt
	recv := &recvBuilder{}
	t.vertexStmts(asBlock(f.Body).Stmts, sctx, &bodyA, recv, f)
	if t.err != nil {
		return
	}
	if f.Filter != nil {
		cond := t.vertexExpr(f.Filter, sctx)
		bodyA = []ir.Stmt{ir.If{Cond: cond, Then: bodyA}}
	}

	stateName := stateNameOf(len(t.nodes))
	vsA := &machine.VertexState{
		Name: stateName, Body: bodyA, Next: -1,
		Locals: sctx.kinds, LocalNames: sctx.names,
		ReadScalars: readScalarsOf(bodyA),
	}
	t.emitVertex(vsA)
	if folds := dedupFolds(recv.foldsA); len(folds) > 0 {
		t.emitMaster(folds, machine.Term{Kind: machine.TGoto, Then: -1})
	}
	if len(recv.handlers) > 0 {
		vsB := &machine.VertexState{
			Name: stateName + "_recv", Body: recv.handlers, Next: -1,
			ReadScalars: readScalarsOf(recv.handlers),
		}
		t.emitVertex(vsB)
		if folds := dedupFolds(recv.foldsB); len(folds) > 0 {
			t.emitMaster(folds, machine.Term{Kind: machine.TGoto, Then: -1})
		}
	}
}

func stateNameOf(n int) string { return "state" + itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func readScalarsOf(ss []ir.Stmt) []int {
	seen := map[int]bool{}
	var out []int
	ir.WalkStmtExprs(ss, func(e ir.Expr) {
		if sr, ok := e.(ir.ScalarRef); ok && !seen[sr.Slot] {
			seen[sr.Slot] = true
			out = append(out, sr.Slot)
		}
	})
	return out
}

// recvBuilder accumulates the receive state of one outer loop.
type recvBuilder struct {
	handlers []ir.Stmt
	foldsA   []ir.Stmt // aggregator folds after the send state
	foldsB   []ir.Stmt // aggregator folds after the receive state
	msgCount int
}

func dedupFolds(ss []ir.Stmt) []ir.Stmt {
	seen := map[aggKey]bool{}
	var out []ir.Stmt
	for _, s := range ss {
		f := s.(ir.FoldAgg)
		k := aggKey{scalar: f.Scalar, op: f.Op}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}

// vertexStmts compiles the statements of a vertex-parallel body (the
// sender side), peeling communications off into the receive builder.
func (t *translator) vertexStmts(ss []ast.Stmt, sctx *vctx, out *[]ir.Stmt, recv *recvBuilder, outer *ast.Foreach) {
	for _, s := range ss {
		if t.err != nil {
			return
		}
		switch s := s.(type) {
		case *ast.Block:
			t.vertexStmts(s.Stmts, sctx, out, recv, outer)
		case *ast.VarDecl:
			t.vertexDecl(s, sctx, out)
		case *ast.Assign:
			t.vertexAssign(s, sctx, out, recv)
		case *ast.If:
			var thenStmts, elseStmts []ir.Stmt
			t.vertexStmts(asBlock(s.Then).Stmts, sctx, &thenStmts, recv, outer)
			if s.Else != nil {
				t.vertexStmts(asBlock(s.Else).Stmts, sctx, &elseStmts, recv, outer)
			}
			*out = append(*out, ir.If{Cond: t.vertexExpr(s.Cond, sctx), Then: thenStmts, Else: elseStmts})
		case *ast.Foreach:
			if s.Kind == ast.IterNodes {
				t.fail(s.P, "nested whole-graph loops are not Pregel-canonical")
				return
			}
			sender := t.compileInnerLoop(s, sctx, recv)
			if sender != nil {
				*out = append(*out, sender)
			}
		default:
			t.fail(s.Pos(), "unsupported statement %T in a vertex-parallel loop", s)
		}
	}
	if recv.msgCount > 1 {
		t.trace.Record(RuleMultipleComm)
	}
}

func (t *translator) vertexDecl(d *ast.VarDecl, sctx *vctx, out *[]ir.Stmt) {
	syms := t.info.DeclOf[d]
	for _, sym := range syms {
		switch sym.Kind {
		case sema.SymEdgeVar:
			sctx.edgeVars[sym] = sym.EdgeOf
		case sema.SymScalar:
			slot := sctx.addLocal(sym)
			if d.Init != nil && len(syms) == 1 {
				*out = append(*out, ir.SetLocal{Slot: slot, Name: sym.Name, RHS: t.vertexExpr(d.Init, sctx)})
			}
		default:
			t.fail(d.P, "%s declaration inside a vertex-parallel loop", sym.Kind)
		}
	}
}

// vertexAssign compiles an assignment in sender context: own-property
// writes, local writes, global reductions, and random writes.
func (t *translator) vertexAssign(a *ast.Assign, sctx *vctx, out *[]ir.Stmt, recv *recvBuilder) {
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		sym := t.info.Uses[lhs]
		switch {
		case sym == nil:
			t.fail(a.P, "unresolved %q", lhs.Name)
		case sctx.locals[sym] != 0 || hasLocal(sctx, sym):
			slot := sctx.locals[sym]
			rhs := t.vertexExpr(a.RHS, sctx)
			if a.Op != ast.OpSet {
				rhs = reduceExpr(a.Op, ir.LocalRef{Slot: slot, Name: sym.Name}, rhs)
			}
			*out = append(*out, ir.SetLocal{Slot: slot, Name: sym.Name, RHS: rhs})
		case sym.Kind == sema.SymScalar && !sym.InParallel:
			// Global write → aggregator contribution (§3.1 Global Object).
			*out = append(*out, t.globalWrite(sym, a.Op, t.vertexExpr(a.RHS, sctx), &recv.foldsA))
		default:
			t.fail(a.P, "cannot assign to %q here", lhs.Name)
		}
	case *ast.PropAccess:
		tid, ok := lhs.Target.(*ast.Ident)
		if !ok {
			t.fail(a.P, "unsupported property target")
			return
		}
		tsym := t.info.Uses[tid]
		switch {
		case tsym == sctx.iterSym:
			// Own property.
			slot, psym := t.propSlotOf(lhs.Prop)
			if psym == nil {
				t.fail(a.P, "unknown property %q", lhs.Prop)
				return
			}
			*out = append(*out, ir.SetProp{Slot: slot, Name: lhs.Prop, Op: a.Op, RHS: t.vertexExpr(a.RHS, sctx)})
		case isNodeValued(tsym, sctx):
			// Random write (§3.1): message to an arbitrary vertex.
			t.trace.Record(RuleRandomWrite)
			slot, psym := t.propSlotOf(lhs.Prop)
			if psym == nil {
				t.fail(a.P, "unknown property %q", lhs.Prop)
				return
			}
			kind := t.prog.Props[slot].Kind
			msgType := len(t.prog.Msgs)
			t.prog.Msgs = append(t.prog.Msgs, machine.MsgSchema{
				Name: "w_" + lhs.Prop, Fields: []ir.Kind{kind},
			})
			recv.msgCount++
			payload := t.vertexExpr(a.RHS, sctx)
			*out = append(*out, ir.SendTo{
				Target:  t.vertexExpr(tid, sctx),
				MsgType: msgType,
				Payload: []ir.Expr{payload},
			})
			recv.handlers = append(recv.handlers, ir.ForMsgs{
				MsgType: msgType,
				Body: []ir.Stmt{ir.SetProp{
					Slot: slot, Name: lhs.Prop, Op: a.Op,
					RHS: ir.MsgField{Idx: 0, K: kind},
				}},
			})
		default:
			t.fail(a.P, "random property read/write through %q is not allowed here", tid.Name)
		}
	default:
		t.fail(a.P, "invalid assignment target")
	}
}

func hasLocal(sctx *vctx, sym *sema.Symbol) bool {
	_, ok := sctx.locals[sym]
	return ok
}

// isNodeValued reports whether the symbol holds a node usable as a
// random-write target: a local Node variable or a sequential Node scalar.
func isNodeValued(sym *sema.Symbol, sctx *vctx) bool {
	if sym == nil {
		return false
	}
	return sym.Kind == sema.SymScalar && sym.Type != nil && sym.Type.Kind == ast.TNode
}

// reduceExpr builds the expression form of a reduction for local slots.
func reduceExpr(op ast.AssignOp, old, rhs ir.Expr) ir.Expr {
	switch op {
	case ast.OpAdd:
		return ir.Binary{Op: ast.BinAdd, L: old, R: rhs}
	case ast.OpSub:
		return ir.Binary{Op: ast.BinSub, L: old, R: rhs}
	case ast.OpMul:
		return ir.Binary{Op: ast.BinMul, L: old, R: rhs}
	case ast.OpMin:
		return ir.Ternary{Cond: ir.Binary{Op: ast.BinLt, L: rhs, R: old}, Then: rhs, Else: old}
	case ast.OpMax:
		return ir.Ternary{Cond: ir.Binary{Op: ast.BinGt, L: rhs, R: old}, Then: rhs, Else: old}
	case ast.OpAnd:
		return ir.Binary{Op: ast.BinAnd, L: old, R: rhs}
	case ast.OpOr:
		return ir.Binary{Op: ast.BinOr, L: old, R: rhs}
	}
	return rhs
}

// globalWrite turns a global-scalar write in vertex context into an
// aggregator contribution and records the fold the successor master
// block must run.
func (t *translator) globalWrite(sym *sema.Symbol, op ast.AssignOp, rhs ir.Expr, folds *[]ir.Stmt) ir.Stmt {
	t.trace.Record(RuleGlobalObject)
	slot := t.scalarSlot[sym]
	key := aggKey{scalar: slot, op: op}
	agg, ok := t.aggSlot[key]
	if !ok {
		agg = len(t.prog.Aggs)
		t.aggSlot[key] = agg
		t.prog.Aggs = append(t.prog.Aggs, machine.AggDecl{
			Name: sym.Name + "_" + op.String(), Kind: ir.KindOfType(sym.Type.Kind), Op: op,
		})
	}
	*folds = append(*folds, ir.FoldAgg{
		Scalar: slot, ScalarName: sym.Name,
		Agg: agg, AggName: t.prog.Aggs[agg].Name, Op: op,
	})
	return ir.ContribAgg{Agg: agg, Name: t.prog.Aggs[agg].Name, RHS: rhs}
}

func (t *translator) propSlotOf(name string) (int, *sema.Symbol) {
	// Property names are unique after sema, so at most one entry can
	// match and the result is independent of iteration order.
	for sym, slot := range t.propSlot { //gm:nondeterministic-ok at most one symbol matches a sema-checked property name
		if sym.Name == name {
			return slot, sym
		}
	}
	return 0, nil
}

// vertexExpr compiles an expression in the given vertex context (the
// current vertex is ctx.iter).
func (t *translator) vertexExpr(e ast.Expr, ctx *vctx) ir.Expr {
	switch e := e.(type) {
	case *ast.Ident:
		sym := t.info.Uses[e]
		switch {
		case sym == nil:
			t.fail(e.P, "unresolved identifier %q", e.Name)
		case sym == ctx.iterSym:
			return ir.CurNode{}
		case hasLocal(ctx, sym):
			return ir.LocalRef{Slot: ctx.locals[sym], Name: sym.Name}
		case sym.Kind == sema.SymScalar && !sym.InParallel:
			t.trace.Record(RuleGlobalObject)
			return ir.ScalarRef{Slot: t.scalarSlot[sym], Name: sym.Name}
		default:
			t.fail(e.P, "%q (%s) is not accessible in this vertex context", e.Name, sym.Kind)
		}
		return ir.Const{V: ir.Int(0)}
	case *ast.PropAccess:
		tid, ok := e.Target.(*ast.Ident)
		if !ok {
			t.fail(e.P, "unsupported property target")
			return ir.Const{V: ir.Int(0)}
		}
		tsym := t.info.Uses[tid]
		switch {
		case tsym == ctx.iterSym:
			slot, psym := t.propSlotOf(e.Prop)
			if psym == nil {
				t.fail(e.P, "unknown property %q", e.Prop)
				return ir.Const{V: ir.Int(0)}
			}
			return ir.PropRef{Slot: slot, Name: e.Prop}
		case tsym != nil && tsym.Kind == sema.SymEdgeVar:
			if _, ok := ctx.edgeVars[tsym]; !ok {
				t.fail(e.P, "edge variable %q is not bound in this context", tid.Name)
				return ir.Const{V: ir.Int(0)}
			}
			if !ctx.inSendPayload {
				t.fail(e.P, "edge property %q may only be read while sending along the edge", e.Prop)
				return ir.Const{V: ir.Int(0)}
			}
			t.trace.Record(RuleEdgeProperty)
			slot, psym := t.propSlotOf(e.Prop)
			if psym == nil || !t.prog.Props[slot].IsEdge {
				t.fail(e.P, "unknown edge property %q", e.Prop)
				return ir.Const{V: ir.Int(0)}
			}
			return ir.EdgePropRef{Slot: slot, Name: e.Prop}
		default:
			t.fail(e.P, "reading a property of %q here requires message pulling, which Pregel cannot do", tid.Name)
			return ir.Const{V: ir.Int(0)}
		}
	case *ast.Call:
		return t.callExpr(e, ctx)
	case *ast.Binary:
		return ir.Binary{Op: e.Op, L: t.vertexExpr(e.L, ctx), R: t.vertexExpr(e.R, ctx)}
	case *ast.Unary:
		return ir.Unary{Op: e.Op, X: t.vertexExpr(e.X, ctx)}
	case *ast.Ternary:
		return ir.Ternary{Cond: t.vertexExpr(e.Cond, ctx), Then: t.vertexExpr(e.Then, ctx), Else: t.vertexExpr(e.Else, ctx)}
	default:
		return t.literal(e)
	}
}
