package core

import (
	"fmt"
	"math/rand"

	"gmpregel/internal/gm/ast"
)

// namer generates fresh identifiers that cannot collide with any name
// already present in the procedure.
type namer struct {
	used map[string]bool
	n    int
}

func newNamer(p *ast.Procedure) *namer {
	nm := &namer{used: map[string]bool{}}
	for _, prm := range p.Params {
		nm.used[prm.Name] = true
	}
	collect := func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.VarDecl:
			for _, n := range s.Names {
				nm.used[n] = true
			}
		case *ast.Foreach:
			nm.used[s.Iter] = true
		case *ast.InBFS:
			nm.used[s.Iter] = true
		}
		return true
	}
	ast.WalkStmts(p.Body, collect)
	ast.WalkExprs(p.Body, func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			nm.used[e.Name] = true
		case *ast.Reduce:
			nm.used[e.Iter] = true
		}
		return true
	})
	return nm
}

// fresh returns a new unused identifier with the given prefix.
func (nm *namer) fresh(prefix string) string {
	for {
		name := fmt.Sprintf("%s%d", prefix, nm.n)
		nm.n++
		if !nm.used[name] {
			nm.used[name] = true
			return name
		}
	}
}

// ident builds an identifier expression.
func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }

// intLit builds an integer literal.
func intLit(v int64) *ast.IntLit { return &ast.IntLit{Value: v} }

// prop builds target.prop.
func propOf(target ast.Expr, name string) *ast.PropAccess {
	return &ast.PropAccess{Target: target, Prop: name}
}

// binop builds a binary expression.
func binop(op ast.BinOp, l, r ast.Expr) *ast.Binary {
	return &ast.Binary{Op: op, L: l, R: r}
}

// conj returns a ∧ b, eliding nils.
func conj(a, b ast.Expr) ast.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return binop(ast.BinAnd, a, b)
}

// conjuncts flattens a chain of && into its conjuncts.
func conjuncts(e ast.Expr) []ast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.BinAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []ast.Expr{e}
}

// conjoin rebuilds a conjunction from parts (nil when empty).
func conjoin(parts []ast.Expr) ast.Expr {
	var out ast.Expr
	for _, p := range parts {
		out = conj(out, p)
	}
	return out
}

// replaceIdent substitutes every use of name in e with repl (cloned per
// use), returning the rewritten expression.
func replaceIdent(e ast.Expr, name string, repl ast.Expr) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			return repl.CloneExpr()
		}
		return x
	})
}

// replaceIdentInStmt substitutes name throughout a statement subtree.
func replaceIdentInStmt(s ast.Stmt, name string, repl ast.Expr) {
	ast.RewriteExprs(s, func(x ast.Expr) ast.Expr {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			return repl.CloneExpr()
		}
		return x
	})
}

// blockOf wraps statements in a block.
func blockOf(stmts ...ast.Stmt) *ast.Block { return &ast.Block{Stmts: stmts} }

// asBlock returns s as a block, wrapping if needed.
func asBlock(s ast.Stmt) *ast.Block {
	if b, ok := s.(*ast.Block); ok {
		return b
	}
	return blockOf(s)
}

// typeOfKind builds a scalar type.
func typeOfKind(k ast.TypeKind) *ast.Type { return &ast.Type{Kind: k} }

// nodePropType builds Node_Prop<k>.
func nodePropType(k ast.TypeKind) *ast.Type {
	return &ast.Type{Kind: ast.TNodeProp, Elem: typeOfKind(k)}
}

// newDetRand returns a deterministic RNG for robustness tests.
//
//gm:nondeterministic-ok fixed caller-supplied seed; stream is reproducible by construction
func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
