package core

import (
	"fmt"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
)

// compileError is a compilation failure with a rule-oriented message.
type compileError struct {
	msg string
}

func (e *compileError) Error() string { return e.msg }

func errf(format string, args ...interface{}) error {
	return &compileError{msg: fmt.Sprintf(format, args...)}
}

// normalizer runs the AST→AST lowering passes. Sema is re-run between
// passes so type and symbol information stays fresh.
type normalizer struct {
	proc  *ast.Procedure
	nm    *namer
	trace *Trace
	info  *sema.Info
	err   error
}

func (nz *normalizer) recheck() bool {
	if nz.err != nil {
		return false
	}
	info, err := sema.Check(nz.proc)
	if err != nil {
		nz.err = errf("internal: transformed program fails sema: %v", err)
		return false
	}
	nz.info = info
	return true
}

func (nz *normalizer) fail(format string, args ...interface{}) {
	if nz.err == nil {
		nz.err = errf(format, args...)
	}
}

// ---- Pass: lower bulk property assignments (G.prop = expr) ----

// lowerBulkAssigns rewrites graph-wide property assignments into
// vertex-parallel loops, with the graph identifier acting as the
// implicit iterator in the RHS.
func (nz *normalizer) lowerBulkAssigns() {
	if !nz.recheck() {
		return
	}
	g := nz.info.Graph.Name
	nz.proc.Body = nz.bulkBlock(nz.proc.Body, g)
}

func (nz *normalizer) bulkBlock(b *ast.Block, g string) *ast.Block {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Assign:
			pa, ok := s.LHS.(*ast.PropAccess)
			if ok {
				if id, ok2 := pa.Target.(*ast.Ident); ok2 && id.Name == g {
					out = append(out, nz.lowerOneBulk(s, g))
					continue
				}
			}
			out = append(out, s)
		case *ast.If:
			s.Then = nz.bulkBlock(asBlock(s.Then), g)
			if s.Else != nil {
				s.Else = nz.bulkBlock(asBlock(s.Else), g)
			}
			out = append(out, s)
		case *ast.While:
			s.Body = nz.bulkBlock(asBlock(s.Body), g)
			out = append(out, s)
		case *ast.Block:
			out = append(out, nz.bulkBlock(s, g))
		default:
			out = append(out, s)
		}
	}
	b.Stmts = out
	return b
}

func (nz *normalizer) lowerOneBulk(s *ast.Assign, g string) ast.Stmt {
	iter := nz.nm.fresh("_b")
	pa := s.LHS.(*ast.PropAccess)
	rhs := substGraphIdent(s.RHS, g, iter)
	body := &ast.Assign{
		LHS: propOf(ident(iter), pa.Prop),
		Op:  s.Op,
		RHS: rhs,
		P:   s.P,
	}
	return &ast.Foreach{Iter: iter, Source: g, Kind: ast.IterNodes, Body: blockOf(body), P: s.P}
}

// substGraphIdent replaces uses of the graph identifier with the
// iterator, except when the graph is the target of a graph builtin call
// (G.NumNodes() etc.).
func substGraphIdent(e ast.Expr, g, iter string) ast.Expr {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == g {
			return ident(iter)
		}
		return e
	case *ast.Call:
		// Keep graph-call targets intact.
		if id, ok := e.Target.(*ast.Ident); ok && id.Name == g {
			for i := range e.Args {
				e.Args[i] = substGraphIdent(e.Args[i], g, iter)
			}
			return e
		}
		e.Target = substGraphIdent(e.Target, g, iter)
		for i := range e.Args {
			e.Args[i] = substGraphIdent(e.Args[i], g, iter)
		}
		return e
	case *ast.PropAccess:
		e.Target = substGraphIdent(e.Target, g, iter)
		return e
	case *ast.Binary:
		e.L = substGraphIdent(e.L, g, iter)
		e.R = substGraphIdent(e.R, g, iter)
		return e
	case *ast.Unary:
		e.X = substGraphIdent(e.X, g, iter)
		return e
	case *ast.Ternary:
		e.Cond = substGraphIdent(e.Cond, g, iter)
		e.Then = substGraphIdent(e.Then, g, iter)
		e.Else = substGraphIdent(e.Else, g, iter)
		return e
	case *ast.Reduce:
		if e.Filter != nil {
			e.Filter = substGraphIdent(e.Filter, g, iter)
		}
		if e.Body != nil {
			e.Body = substGraphIdent(e.Body, g, iter)
		}
		return e
	default:
		return e
	}
}

// ---- Pass: lower group reductions in sequential context ----

// lowerSeqReduces extracts Sum/Count/… expressions appearing in
// sequential statements into explicit accumulation loops.
func (nz *normalizer) lowerSeqReduces() {
	if !nz.recheck() {
		return
	}
	nz.proc.Body = nz.seqReduceBlock(nz.proc.Body)
}

func (nz *normalizer) seqReduceBlock(b *ast.Block) *ast.Block {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Assign:
			out = nz.extractSeqReduces(out, s, &s.RHS)
		case *ast.VarDecl:
			if s.Init != nil {
				out = nz.extractSeqReduces(out, s, &s.Init)
			} else {
				out = append(out, s)
			}
		case *ast.Return:
			if s.Value != nil {
				out = nz.extractSeqReduces(out, s, &s.Value)
			} else {
				out = append(out, s)
			}
		case *ast.If:
			if findReduce(s.Cond) != nil {
				// Extract from the condition before the If.
				tmp := &ast.VarDecl{Type: typeOfKind(ast.TBool), Names: []string{nz.nm.fresh("_c")}, Init: s.Cond, P: s.P}
				s.Cond = ident(tmp.Names[0])
				out = nz.extractSeqReduces(out, tmp, &tmp.Init)
			}
			s.Then = nz.seqReduceBlock(asBlock(s.Then))
			if s.Else != nil {
				s.Else = nz.seqReduceBlock(asBlock(s.Else))
			}
			out = append(out, s)
		case *ast.While:
			if findReduce(s.Cond) != nil {
				nz.fail("%s: a group reduction in a While condition is not supported; assign it to a variable inside the loop", s.P)
				return b
			}
			s.Body = nz.seqReduceBlock(asBlock(s.Body))
			out = append(out, s)
		case *ast.Block:
			out = append(out, nz.seqReduceBlock(s))
		default:
			out = append(out, s)
		}
		if nz.err != nil {
			return b
		}
	}
	b.Stmts = out
	return b
}

// extractSeqReduces repeatedly pulls reductions out of *ep, appending
// accumulation loops to out, then appends s itself.
func (nz *normalizer) extractSeqReduces(out []ast.Stmt, s ast.Stmt, ep *ast.Expr) []ast.Stmt {
	for {
		r := findReduce(*ep)
		if r == nil {
			break
		}
		if r.Domain != ast.IterNodes {
			nz.fail("%s: a neighborhood reduction is only allowed inside a vertex-parallel loop", r.P)
			return append(out, s)
		}
		pre, repl := nz.lowerOneReduce(r, r.Source)
		out = append(out, pre...)
		*ep = ast.RewriteExpr(*ep, func(x ast.Expr) ast.Expr {
			if x == ast.Expr(r) {
				return repl
			}
			return x
		})
	}
	return append(out, s)
}

// findReduce returns the first reduction in e (pre-order), or nil.
func findReduce(e ast.Expr) *ast.Reduce {
	var found *ast.Reduce
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if found != nil {
			return false
		}
		if r, ok := x.(*ast.Reduce); ok {
			found = r
			return false
		}
		return true
	})
	return found
}

// lowerOneReduce builds the accumulator declaration(s) plus the
// accumulation Foreach for one reduction, returning the statements and
// the replacement expression. The source may be the graph (sequential
// context) or a node-valued iterator (parallel context).
func (nz *normalizer) lowerOneReduce(r *ast.Reduce, source string) ([]ast.Stmt, ast.Expr) {
	kind := nz.reduceResultKind(r)
	acc := nz.nm.fresh("_r")

	if r.Kind == ast.RAvg {
		sumName := nz.nm.fresh("_s")
		cntName := nz.nm.fresh("_c")
		decls := []ast.Stmt{
			&ast.VarDecl{Type: typeOfKind(ast.TDouble), Names: []string{sumName}, Init: &ast.FloatLit{Value: 0, Text: "0.0"}, P: r.P},
			&ast.VarDecl{Type: typeOfKind(ast.TInt), Names: []string{cntName}, Init: intLit(0), P: r.P},
		}
		body := blockOf(
			&ast.Assign{LHS: ident(sumName), Op: ast.OpAdd, RHS: r.Body.CloneExpr(), P: r.P},
			&ast.Assign{LHS: ident(cntName), Op: ast.OpAdd, RHS: intLit(1), P: r.P},
		)
		loop := &ast.Foreach{Iter: r.Iter, Source: source, Kind: r.Domain, Filter: cloneOrNil(r.Filter), Body: body, P: r.P}
		repl := &ast.Ternary{
			Cond: binop(ast.BinEq, ident(cntName), intLit(0)),
			Then: &ast.FloatLit{Value: 0, Text: "0.0"},
			Else: binop(ast.BinDiv, ident(sumName), binop(ast.BinMul, &ast.FloatLit{Value: 1, Text: "1.0"}, ident(cntName))),
			P:    r.P,
		}
		return append(decls, loop), repl
	}

	var init ast.Expr
	var op ast.AssignOp
	var body ast.Expr
	switch r.Kind {
	case ast.RSum:
		init, op, body = zeroLit(kind), ast.OpAdd, r.Body.CloneExpr()
	case ast.RProduct:
		init, op, body = oneLit(kind), ast.OpMul, r.Body.CloneExpr()
	case ast.RCount:
		init, op, body = intLit(0), ast.OpAdd, intLit(1)
	case ast.RMax:
		init, op, body = &ast.InfLit{Neg: true, P: r.P}, ast.OpMax, r.Body.CloneExpr()
	case ast.RMin:
		init, op, body = &ast.InfLit{P: r.P}, ast.OpMin, r.Body.CloneExpr()
	case ast.RExist:
		init, op, body = &ast.BoolLit{Value: false}, ast.OpOr, &ast.BoolLit{Value: true}
	case ast.RAll:
		init, op = &ast.BoolLit{Value: true}, ast.OpAnd
		if r.Body != nil {
			body = r.Body.CloneExpr()
		} else {
			body = &ast.BoolLit{Value: true}
		}
	default:
		nz.fail("%s: unsupported reduction %s", r.P, r.Kind)
		return nil, intLit(0)
	}
	decl := &ast.VarDecl{Type: typeOfKind(kind), Names: []string{acc}, Init: init, P: r.P}
	loop := &ast.Foreach{
		Iter: r.Iter, Source: source, Kind: r.Domain, Filter: cloneOrNil(r.Filter),
		Body: blockOf(&ast.Assign{LHS: ident(acc), Op: op, RHS: body, P: r.P}),
		P:    r.P,
	}
	return []ast.Stmt{decl, loop}, ident(acc)
}

func (nz *normalizer) reduceResultKind(r *ast.Reduce) ast.TypeKind {
	if t := nz.info.TypeOf(r); t != nil && t.Kind != ast.TInvalid {
		return t.Kind
	}
	return ast.TInt
}

func zeroLit(k ast.TypeKind) ast.Expr {
	if k.IsFloating() {
		return &ast.FloatLit{Value: 0, Text: "0.0"}
	}
	return intLit(0)
}

func oneLit(k ast.TypeKind) ast.Expr {
	if k.IsFloating() {
		return &ast.FloatLit{Value: 1, Text: "1.0"}
	}
	return intLit(1)
}

func cloneOrNil(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	return e.CloneExpr()
}

// ---- Pass: lower group reductions in parallel context ----

// lowerParReduces extracts neighborhood reductions used inside
// vertex-parallel loops into nested accumulation loops. The resulting
// outer-scoped accumulators are later converted by the dissection pass.
func (nz *normalizer) lowerParReduces() {
	if !nz.recheck() {
		return
	}
	ast.WalkStmts(nz.proc.Body, func(s ast.Stmt) bool {
		if nz.err != nil {
			return false
		}
		f, ok := s.(*ast.Foreach)
		if !ok || f.Kind != ast.IterNodes {
			return true
		}
		f.Body = nz.parReduceBlock(asBlock(f.Body), f.Iter)
		return false // handled this parallel subtree
	})
}

func (nz *normalizer) parReduceBlock(b *ast.Block, outerIter string) *ast.Block {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Assign:
			out = nz.extractParReduces(out, s, &s.RHS, outerIter)
		case *ast.VarDecl:
			if s.Init != nil {
				out = nz.extractParReduces(out, s, &s.Init, outerIter)
			} else {
				out = append(out, s)
			}
		case *ast.If:
			if findReduce(s.Cond) != nil {
				tmp := &ast.VarDecl{Type: typeOfKind(ast.TBool), Names: []string{nz.nm.fresh("_c")}, Init: s.Cond, P: s.P}
				s.Cond = ident(tmp.Names[0])
				out = nz.extractParReduces(out, tmp, &tmp.Init, outerIter)
			}
			s.Then = nz.parReduceBlock(asBlock(s.Then), outerIter)
			if s.Else != nil {
				s.Else = nz.parReduceBlock(asBlock(s.Else), outerIter)
			}
			out = append(out, s)
		case *ast.Block:
			out = append(out, nz.parReduceBlock(s, outerIter))
		case *ast.Foreach:
			// Inner neighbor loop: reductions inside it would be triply
			// nested — reject.
			if r := blockHasReduce(s); r != nil {
				nz.fail("%s: reductions nested inside neighbor loops are not supported", r.P)
				return b
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
		if nz.err != nil {
			return b
		}
	}
	b.Stmts = out
	return b
}

func blockHasReduce(s ast.Stmt) *ast.Reduce {
	var found *ast.Reduce
	ast.WalkExprs(s, func(e ast.Expr) bool {
		if r, ok := e.(*ast.Reduce); ok && found == nil {
			found = r
		}
		return found == nil
	})
	return found
}

func (nz *normalizer) extractParReduces(out []ast.Stmt, s ast.Stmt, ep *ast.Expr, outerIter string) []ast.Stmt {
	for {
		r := findReduce(*ep)
		if r == nil {
			break
		}
		if r.Domain == ast.IterNodes {
			nz.fail("%s: a whole-graph reduction inside a vertex-parallel loop is not Pregel-compatible", r.P)
			return append(out, s)
		}
		if r.Source != outerIter {
			nz.fail("%s: neighborhood reduction source %q must be the enclosing loop iterator %q", r.P, r.Source, outerIter)
			return append(out, s)
		}
		pre, repl := nz.lowerOneReduce(r, r.Source)
		out = append(out, pre...)
		*ep = ast.RewriteExpr(*ep, func(x ast.Expr) ast.Expr {
			if x == ast.Expr(r) {
				return repl
			}
			return x
		})
	}
	return append(out, s)
}

// ---- Pass: lower random access in sequential phase (§4.1) ----

// lowerRandomAccess rewrites sequential-phase accesses to a specific
// node's property (s.dist = 0, x = s.dist) into an extra parallel loop
// filtered on identity with the node variable.
func (nz *normalizer) lowerRandomAccess() {
	if !nz.recheck() {
		return
	}
	nz.proc.Body = nz.randomAccessBlock(nz.proc.Body)
}

func (nz *normalizer) randomAccessBlock(b *ast.Block) *ast.Block {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Assign:
			out = nz.lowerRandomAccessAssign(out, s)
		case *ast.VarDecl:
			if s.Init != nil && nz.seqNodePropAccess(s.Init) != nil {
				// T x = s.prop ...  →  T x; Foreach(...) { x = ...; }
				decl := &ast.VarDecl{Type: s.Type, Names: s.Names, P: s.P}
				assign := &ast.Assign{LHS: ident(s.Names[0]), Op: ast.OpSet, RHS: s.Init, P: s.P}
				out = append(out, decl)
				out = nz.lowerRandomAccessAssign(out, assign)
			} else {
				out = append(out, s)
			}
		case *ast.If:
			if pa := nz.seqNodePropAccess(s.Cond); pa != nil {
				nz.fail("%s: random property read in a condition is not supported; assign it to a variable first", pa.P)
				return b
			}
			s.Then = nz.randomAccessBlock(asBlock(s.Then))
			if s.Else != nil {
				s.Else = nz.randomAccessBlock(asBlock(s.Else))
			}
			out = append(out, s)
		case *ast.While:
			if pa := nz.seqNodePropAccess(s.Cond); pa != nil {
				nz.fail("%s: random property read in a condition is not supported; assign it to a variable first", pa.P)
				return b
			}
			s.Body = nz.randomAccessBlock(asBlock(s.Body))
			out = append(out, s)
		case *ast.Block:
			out = append(out, nz.randomAccessBlock(s))
		case *ast.Return:
			if pa := nz.seqNodePropAccess(s.Value); pa != nil {
				nz.fail("%s: random property read in Return is not supported; assign it to a variable first", pa.P)
				return b
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
		if nz.err != nil {
			return b
		}
	}
	b.Stmts = out
	return b
}

// seqNodePropAccess finds a property access through a node-valued
// variable in e (sequential context), or nil.
func (nz *normalizer) seqNodePropAccess(e ast.Expr) *ast.PropAccess {
	if e == nil {
		return nil
	}
	var found *ast.PropAccess
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if found != nil {
			return false
		}
		pa, ok := x.(*ast.PropAccess)
		if !ok {
			return true
		}
		if id, ok := pa.Target.(*ast.Ident); ok {
			if sym := nz.info.Uses[id]; sym != nil && sym.Kind == sema.SymScalar && sym.Type.Kind == ast.TNode {
				found = pa
				return false
			}
		}
		return true
	})
	return found
}

func (nz *normalizer) lowerRandomAccessAssign(out []ast.Stmt, s *ast.Assign) []ast.Stmt {
	lhsPA, lhsIsRandom := s.LHS.(*ast.PropAccess)
	var lhsVar string
	if lhsIsRandom {
		id, ok := lhsPA.Target.(*ast.Ident)
		if !ok {
			nz.fail("%s: unsupported property target", lhsPA.P)
			return out
		}
		sym := nz.info.Uses[id]
		if sym == nil || sym.Kind != sema.SymScalar || sym.Type.Kind != ast.TNode {
			// Bulk assigns were already lowered; anything else here is a
			// stray property write in sequential context.
			nz.fail("%s: property write through %q in sequential context is not supported", lhsPA.P, id.Name)
			return out
		}
		lhsVar = id.Name
	}
	rhsPA := nz.seqNodePropAccess(s.RHS)
	if !lhsIsRandom && rhsPA == nil {
		return append(out, s)
	}
	nz.trace.Record(RuleRandomAccessSeq)
	iter := nz.nm.fresh("_n")
	// Determine the node variable driving the loop filter: the LHS
	// target if writing, otherwise the RHS access target.
	var filterVar string
	if lhsIsRandom {
		filterVar = lhsVar
	} else {
		filterVar = rhsPA.Target.(*ast.Ident).Name
	}
	// Rewrite accesses through filterVar to the iterator.
	newLHS := s.LHS
	if lhsIsRandom {
		newLHS = propOf(ident(iter), lhsPA.Prop)
	}
	newRHS := replaceNodeVarProps(s.RHS, filterVar, iter)
	if pa := nz.seqNodePropAccessAfter(newRHS, filterVar); pa != nil {
		nz.fail("%s: random reads through more than one node variable in a single statement are not supported", pa.P)
		return out
	}
	body := &ast.Assign{LHS: newLHS, Op: s.Op, RHS: newRHS, P: s.P}
	loop := &ast.Foreach{
		Iter: iter, Source: nz.info.Graph.Name, Kind: ast.IterNodes,
		Filter: binop(ast.BinEq, ident(iter), ident(filterVar)),
		Body:   blockOf(body),
		P:      s.P,
	}
	return append(out, loop)
}

// replaceNodeVarProps rewrites v.prop → iter.prop for the given node var.
func replaceNodeVarProps(e ast.Expr, v, iter string) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if pa, ok := x.(*ast.PropAccess); ok {
			if id, ok := pa.Target.(*ast.Ident); ok && id.Name == v {
				return propOf(ident(iter), pa.Prop)
			}
		}
		return x
	})
}

// seqNodePropAccessAfter reports remaining random accesses through a
// variable other than v.
func (nz *normalizer) seqNodePropAccessAfter(e ast.Expr, v string) *ast.PropAccess {
	pa := nz.seqNodePropAccess(e)
	if pa == nil {
		return nil
	}
	if id, ok := pa.Target.(*ast.Ident); ok && id.Name == v {
		return nil
	}
	return pa
}
