// Package core implements the paper's primary contribution: the compiler
// that turns imperative Green-Marl programs into Pregel (GPS) programs.
//
// The pipeline mirrors the paper's Figure 1:
//
//	AST → normalize (bulk assigns, group reductions, random access in
//	sequential phase, BFS lowering) → canonicalize (dissect nested loops,
//	flip edges) → Pregel-canonical check → translate (state machine,
//	global objects, neighborhood/multiple/random-write communication,
//	edge properties, incoming-neighbor prologue, message classes) →
//	optimize (state merging, intra-loop state merging) → machine.Program.
//
// Every rule application is recorded in a Trace, which regenerates the
// paper's Table 3.
package core

import (
	"sort"
	"strings"
)

// Rule identifies one translation/transformation rule of the paper
// (§3.1, §4.1, §4.2, §4.3).
type Rule int

// The paper's rules, in Table 3 order.
const (
	RuleStateMachine Rule = iota
	RuleGlobalObject
	RuleNeighborhoodComm
	RuleMultipleComm
	RuleRandomWrite
	RuleEdgeProperty
	RuleFlipEdges
	RuleDissectLoops
	RuleRandomAccessSeq
	RuleBFSTraversal
	RuleStateMerging
	RuleIntraLoopMerge
	RuleIncomingNbrs
	RuleMessageClassGen

	numRules
)

var ruleNames = [...]string{
	"State Machine Const.",
	"Global Object",
	"Neighborhood Comm.",
	"Multiple Comm.",
	"Random Writing",
	"Edge Property",
	"Flipping Edge",
	"Dissecting Loops",
	"Random Access (Seq.)",
	"BFS Traversal",
	"State Merging",
	"Intra-Loop Merge",
	"Incoming Neighbors",
	"Message Class Gen.",
}

// String returns the paper's name for the rule.
func (r Rule) String() string { return ruleNames[r] }

// Rules lists all rules in Table 3 order.
func Rules() []Rule {
	rs := make([]Rule, numRules)
	for i := range rs {
		rs[i] = Rule(i)
	}
	return rs
}

// Trace records which rules fired during a compilation, with counts.
type Trace struct {
	counts [numRules]int
	notes  []string
}

// Record notes one application of r.
func (t *Trace) Record(r Rule) { t.counts[r]++ }

// RecordN notes n applications of r.
func (t *Trace) RecordN(r Rule, n int) { t.counts[r] += n }

// Note appends a free-form diagnostic line to the trace.
func (t *Trace) Note(format string) { t.notes = append(t.notes, format) }

// Applied reports whether r fired at least once.
func (t *Trace) Applied(r Rule) bool { return t.counts[r] > 0 }

// Count returns how many times r fired.
func (t *Trace) Count(r Rule) int { return t.counts[r] }

// Notes returns the diagnostic notes recorded during compilation.
func (t *Trace) Notes() []string { return t.notes }

// String renders the trace as a checklist.
func (t *Trace) String() string {
	var b strings.Builder
	for _, r := range Rules() {
		mark := " "
		if t.Applied(r) {
			mark = "x"
		}
		b.WriteString("[" + mark + "] " + r.String() + "\n")
	}
	return b.String()
}

// sortedNotes returns notes sorted for deterministic output.
func (t *Trace) sortedNotes() []string {
	out := append([]string(nil), t.notes...)
	sort.Strings(out)
	return out
}
