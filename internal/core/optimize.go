package core

import (
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/ir"
	"gmpregel/internal/machine"
)

// ---- State Merging (§4.2) ----

// mergeStates merges consecutive vertex states when doing so cannot
// change the program's semantics: the first state must not send a
// message type the second receives (BSP delivery needs a superstep
// boundary), the second must not read a scalar written by the master
// code between them, and both must not contribute to the same
// aggregator (which would be folded twice).
func mergeStates(p *machine.Program, trace *Trace) {
	for {
		merged := false
		for i := range p.Nodes {
			if p.Nodes[i].Vertex == nil {
				continue
			}
			if tryMerge(p, i) {
				trace.Record(RuleStateMerging)
				merged = true
				break
			}
		}
		if !merged {
			return
		}
	}
}

func tryMerge(p *machine.Program, aIdx int) bool {
	a := p.Nodes[aIdx].Vertex
	// Walk the master chain from A to the next vertex state.
	written := map[int]bool{}
	cur := a.Next
	for {
		if cur == aIdx {
			return false // self loop
		}
		n := p.Nodes[cur]
		if n.Vertex != nil {
			break
		}
		m := n.Master
		if m.Term.Kind != machine.TGoto {
			return false
		}
		for _, s := range m.Stmts {
			switch s := s.(type) {
			case ir.FoldAgg:
				written[s.Scalar] = true
			case ir.SetScalar:
				written[s.Slot] = true
			default:
				return false // anything else blocks merging
			}
		}
		// Guard against cycles through masters.
		if m.Term.Then == cur {
			return false
		}
		cur = m.Term.Then
	}
	bIdx := cur
	if bIdx == aIdx {
		return false
	}
	b := p.Nodes[bIdx].Vertex

	// The back-to-back states must not communicate with each other.
	if overlap(sendTypes(a.Body), handlerTypes(b.Body)) {
		return false
	}
	// B must not read scalars written by the in-between master code.
	for _, s := range b.ReadScalars {
		if written[s] {
			return false
		}
	}
	// Double-fold guard.
	if overlap(contribAggs(a.Body), contribAggs(b.Body)) {
		return false
	}
	// B must be reachable ONLY via this chain (no other predecessors),
	// otherwise other paths would lose B's computation.
	if countPreds(p, bIdx) != 1 {
		return false
	}
	// Never merge across a loop boundary: absorbing a body state into a
	// pre-loop state would hoist per-iteration work out of the loop.
	for _, L := range p.Loops {
		lo := L.Cond
		if L.BodyStart < lo {
			lo = L.BodyStart
		}
		hi := maxInt(L.BackEdge, L.Cond)
		aIn := aIdx >= lo && aIdx <= hi
		bIn := bIdx >= lo && bIdx <= hi
		if aIn != bIn {
			return false
		}
	}

	// Merge: append B's body (locals re-slotted) into A; replace B with
	// an empty master block.
	off := len(a.Locals)
	a.Body = append(a.Body, ir.RemapLocals(b.Body, off)...)
	a.Locals = append(a.Locals, b.Locals...)
	a.LocalNames = append(a.LocalNames, b.LocalNames...)
	a.ReadScalars = unionInts(a.ReadScalars, b.ReadScalars)
	p.Nodes[bIdx] = machine.CFGNode{Master: &machine.MasterBlock{
		Term: machine.Term{Kind: machine.TGoto, Then: b.Next},
	}}
	return true
}

func overlap(a, b map[int]bool) bool {
	// Pure intersection test: the boolean result is independent of the
	// order keys are visited in, so iteration order cannot escape.
	for k := range a { //gm:nondeterministic-ok order-insensitive membership test; result is a bare bool
		if b[k] {
			return true
		}
	}
	return false
}

func unionInts(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range append(append([]int(nil), a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func sendTypes(ss []ir.Stmt) map[int]bool {
	out := map[int]bool{}
	walkIR(ss, func(s ir.Stmt) {
		switch s := s.(type) {
		case ir.SendToNbrs:
			out[s.MsgType] = true
		case ir.SendTo:
			out[s.MsgType] = true
		case ir.SendToInNbrs:
			out[s.MsgType] = true
		}
	})
	return out
}

func handlerTypes(ss []ir.Stmt) map[int]bool {
	out := map[int]bool{}
	walkIR(ss, func(s ir.Stmt) {
		switch s := s.(type) {
		case ir.ForMsgs:
			out[s.MsgType] = true
		case ir.CollectInNbrs:
			out[s.MsgType] = true
		}
	})
	return out
}

func contribAggs(ss []ir.Stmt) map[int]bool {
	out := map[int]bool{}
	walkIR(ss, func(s ir.Stmt) {
		if c, ok := s.(ir.ContribAgg); ok {
			out[c.Agg] = true
		}
	})
	return out
}

func walkIR(ss []ir.Stmt, f func(ir.Stmt)) {
	for _, s := range ss {
		f(s)
		switch s := s.(type) {
		case ir.ForMsgs:
			walkIR(s.Body, f)
		case ir.If:
			walkIR(s.Then, f)
			walkIR(s.Else, f)
		}
	}
}

// countPreds counts CFG predecessors of node idx.
func countPreds(p *machine.Program, idx int) int {
	n := 0
	for _, c := range p.Nodes {
		if c.Master != nil {
			t := c.Master.Term
			if (t.Kind == machine.TGoto || t.Kind == machine.TCond) && t.Then == idx {
				n++
			}
			if t.Kind == machine.TCond && t.Else == idx {
				n++
			}
		}
		if c.Vertex != nil && c.Vertex.Next == idx {
			n++
		}
	}
	if p.Entry == idx {
		n++
	}
	return n
}

// ---- Intra-Loop State Merging (§4.2) ----

// intraLoopMerge merges the receive state of each loop iteration with
// the send state of the next, halving the supersteps per iteration at
// the cost of one speculative execution of the send state (whose
// dangling messages the framework drops — exactly the paper's Fig. 5
// construction with the _is_first flag).
func intraLoopMerge(p *machine.Program, trace *Trace) {
	for li := range p.Loops {
		if tryIntraLoopMerge(p, p.Loops[li]) {
			trace.Record(RuleIntraLoopMerge)
		}
	}
}

func tryIntraLoopMerge(p *machine.Program, loop machine.LoopInfo) bool {
	lo := loop.Cond
	if loop.BodyStart < lo {
		lo = loop.BodyStart
	}
	hi := maxInt(loop.BackEdge, loop.Cond)

	// Collect loop nodes; reject nested control flow (other TConds).
	var vertexIdxs []int
	for i := lo; i <= hi; i++ {
		n := p.Nodes[i]
		if n.Vertex != nil {
			// Skip vertex states already emptied by state merging —
			// impossible (they became masters) — so every vertex node
			// counts.
			vertexIdxs = append(vertexIdxs, i)
			if n.Vertex.Next < lo || n.Vertex.Next > hi {
				return false
			}
			continue
		}
		if n.Master.Term.Kind == machine.TCond && i != loop.Cond {
			return false // nested branching
		}
	}
	if len(vertexIdxs) != 2 {
		return false
	}
	aIdx, bIdx := vertexIdxs[0], vertexIdxs[1]
	a, b := p.Nodes[aIdx].Vertex, p.Nodes[bIdx].Vertex

	// A must be safe to run one extra (speculative) time.
	safeA := true
	walkIR(a.Body, func(s ir.Stmt) {
		switch s := s.(type) {
		case ir.ForMsgs, ir.CollectInNbrs, ir.ContribAgg:
			safeA = false
		case ir.SetProp:
			if len(s.Name) == 0 || s.Name[0] != '_' {
				safeA = false
			}
		}
	})
	if !safeA {
		return false
	}
	// B must not send (its receive state would be a third vertex state).
	if len(sendTypes(b.Body)) > 0 {
		return false
	}
	// Master nodes strictly between A and B must be empty.
	for i := aIdx + 1; i < bIdx; i++ {
		if m := p.Nodes[i].Master; m == nil || len(m.Stmts) > 0 {
			return false
		}
	}
	// B must not read scalars written by the loop's master code (its
	// execution moves after the tail/head master statements).
	written := map[int]bool{}
	for i := lo; i <= hi; i++ {
		if m := p.Nodes[i].Master; m != nil {
			for _, s := range m.Stmts {
				switch s := s.(type) {
				case ir.SetScalar:
					written[s.Slot] = true
				case ir.FoldAgg:
					written[s.Scalar] = true
				}
			}
		}
	}
	for _, s := range b.ReadScalars {
		if written[s] {
			return false
		}
	}

	// Allocate the _is_first flag.
	flag := len(p.Scalars)
	flagName := "_is_first" + itoa(len(p.Loops))
	p.Scalars = append(p.Scalars, machine.ScalarDecl{Name: flagName, Kind: ir.KBool})
	flagRef := ir.ScalarRef{Slot: flag, Name: flagName}

	// M: guarded B-part, then A-part.
	off := len(a.Locals)
	guarded := ir.If{
		Cond: ir.Unary{Op: ast.UnNot, X: flagRef},
		Then: ir.RemapLocals(b.Body, off),
	}
	a.Body = append([]ir.Stmt{guarded}, a.Body...)
	a.Locals = append(a.Locals, b.Locals...)
	a.LocalNames = append(a.LocalNames, b.LocalNames...)
	a.ReadScalars = unionInts(unionInts(a.ReadScalars, b.ReadScalars), []int{flag})

	// B → empty master jumping to the first-iteration gate.
	gate := len(p.Nodes)
	p.Nodes[bIdx] = machine.CFGNode{Master: &machine.MasterBlock{
		Term: machine.Term{Kind: machine.TGoto, Then: gate},
	}}
	// Gate: if _is_first { _is_first = False; goto M } else continue to
	// the loop tail (folds of B, tail statements, condition).
	bNextOriginal := b.Next
	p.Nodes = append(p.Nodes, machine.CFGNode{Master: &machine.MasterBlock{
		Term: machine.Term{Kind: machine.TCond, Cond: flagRef, Then: gate + 1, Else: bNextOriginal},
	}})
	p.Nodes = append(p.Nodes, machine.CFGNode{Master: &machine.MasterBlock{
		Stmts: []ir.Stmt{ir.SetScalar{Slot: flag, Name: flagName, Op: ast.OpSet, RHS: ir.Const{V: ir.Bool(false)}}},
		Term:  machine.Term{Kind: machine.TGoto, Then: aIdx},
	}})

	// Entry node P: set _is_first before entering the loop; redirect
	// every out-of-loop edge into the loop entry through it.
	entryTarget := loop.Cond
	if loop.DoWhile {
		entryTarget = loop.BodyStart
	}
	pIdx := len(p.Nodes)
	p.Nodes = append(p.Nodes, machine.CFGNode{Master: &machine.MasterBlock{
		Stmts: []ir.Stmt{ir.SetScalar{Slot: flag, Name: flagName, Op: ast.OpSet, RHS: ir.Const{V: ir.Bool(true)}}},
		Term:  machine.Term{Kind: machine.TGoto, Then: entryTarget},
	}})
	for i := range p.Nodes {
		if i >= lo && i <= hi || i == pIdx {
			continue // in-loop edges (the back edge) stay
		}
		if m := p.Nodes[i].Master; m != nil {
			if m.Term.Then == entryTarget && (m.Term.Kind == machine.TGoto || m.Term.Kind == machine.TCond) {
				m.Term.Then = pIdx
			}
			if m.Term.Kind == machine.TCond && m.Term.Else == entryTarget {
				m.Term.Else = pIdx
			}
		}
		if v := p.Nodes[i].Vertex; v != nil && v.Next == entryTarget {
			v.Next = pIdx
		}
	}
	if p.Entry == entryTarget {
		p.Entry = pIdx
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
