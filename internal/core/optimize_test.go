package core

import (
	"math"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
)

// optModes are the three optimization configurations compared by the
// equivalence tests.
var optModes = []struct {
	name string
	opts Options
}{
	{"noopt", Options{DisableStateMerging: true, DisableIntraLoopMerge: true}},
	{"merge", Options{DisableIntraLoopMerge: true}},
	{"full", Options{}},
}

type runResult struct {
	steps    int
	msgs     int64
	netBytes int64
	intProps map[string][]int64
	fltProps map[string][]float64
	ret      float64
	hasRet   bool
}

func runWithOpts(t *testing.T, src string, opts Options, g *graph.Directed, b machine.Bindings) runResult {
	t.Helper()
	c, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := machine.Run(c.Program, g, b, pregel.Config{NumWorkers: 4, Seed: 12345})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := runResult{
		steps:    res.Stats.Supersteps,
		msgs:     res.Stats.MessagesSent,
		netBytes: res.Stats.NetworkBytes,
		intProps: map[string][]int64{},
		fltProps: map[string][]float64{},
		hasRet:   res.HasRet,
	}
	if res.HasRet {
		out.ret = res.Ret.AsFloat()
	}
	for _, p := range c.Program.Props {
		if p.IsEdge || len(p.Name) > 0 && p.Name[0] == '_' {
			continue // compiler temps may legitimately differ
		}
		if vals, err := res.NodePropInt(p.Name); err == nil {
			out.intProps[p.Name] = vals
			continue
		}
		if vals, err := res.NodePropFloat(p.Name); err == nil {
			out.fltProps[p.Name] = vals
		}
	}
	return out
}

// TestOptimizationsPreserveSemantics runs every algorithm under all
// three optimization modes and requires identical observable results,
// identical message traffic, and monotonically non-increasing superstep
// counts (the optimizations only remove barriers).
func TestOptimizationsPreserveSemantics(t *testing.T) {
	type testCase struct {
		algo string
		g    *graph.Directed
		b    machine.Bindings
	}
	mkAge := func(n int) []int64 {
		a := make([]int64, n)
		for v := range a {
			a[v] = int64((v*17 + 3) % 70)
		}
		return a
	}
	mkMember := func(n int) []int64 {
		m := make([]int64, n)
		for v := range m {
			m[v] = int64(v % 3)
		}
		return m
	}
	gTw := gen.TwitterLike(300, 6, 2)
	gWb := gen.WebLike(8, 6, 3)
	lengths := make([]int64, gWb.NumEdges())
	for e := range lengths {
		lengths[e] = int64(1 + e%7)
	}
	gBip := gen.Bipartite(120, 140, 4, 4)
	isBoy := make([]bool, 260)
	for v := 0; v < 120; v++ {
		isBoy[v] = true
	}
	cases := []testCase{
		{"avgteen", gTw, machine.Bindings{Int: map[string]int64{"K": 30}, NodePropInt: map[string][]int64{"age": mkAge(300)}}},
		{"pagerank", gTw, machine.Bindings{Float: map[string]float64{"e": 1e-8, "d": 0.85}, Int: map[string]int64{"max_iter": 12}}},
		{"conductance", gTw, machine.Bindings{Int: map[string]int64{"num": 1}, NodePropInt: map[string][]int64{"member": mkMember(300)}}},
		{"sssp", gWb, machine.Bindings{Node: map[string]graph.NodeID{"root": 0}, EdgePropInt: map[string][]int64{"len": lengths}}},
		{"bipartite", gBip, machine.Bindings{NodePropBool: map[string][]bool{"is_boy": isBoy}}},
		{"bc", gWb, machine.Bindings{Int: map[string]int64{"K": 2}}},
	}
	extra := []testCase{
		{"wcc", gWb, machine.Bindings{}},
		{"hits", gTw, machine.Bindings{Int: map[string]int64{"max_iter": 8}}},
		{"degree_stats", gTw, machine.Bindings{}},
	}
	srcOf := func(name string) string {
		if s, ok := algorithms.ByName[name]; ok {
			return s
		}
		return algorithms.ExtraByName[name]
	}
	for _, tc := range append(cases, extra...) {
		t.Run(tc.algo, func(t *testing.T) {
			var results []runResult
			for _, mode := range optModes {
				results = append(results, runWithOpts(t, srcOf(tc.algo), mode.opts, tc.g, tc.b))
			}
			base := results[0]
			for i, r := range results[1:] {
				mode := optModes[i+1].name
				if r.hasRet != base.hasRet || (base.hasRet && !floatEq(r.ret, base.ret)) {
					t.Errorf("%s: return value %v differs from noopt %v", mode, r.ret, base.ret)
				}
				for name, want := range base.intProps {
					got := r.intProps[name]
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s: %s[%d] = %d, want %d", mode, name, v, got[v], want[v])
						}
					}
				}
				for name, want := range base.fltProps {
					got := r.fltProps[name]
					for v := range want {
						if !floatEq(got[v], want[v]) {
							t.Fatalf("%s: %s[%d] = %v, want %v", mode, name, v, got[v], want[v])
						}
					}
				}
				if mode == "merge" {
					// State merging never changes traffic.
					if r.msgs != base.msgs || r.netBytes != base.netBytes {
						t.Errorf("%s: traffic changed: msgs %d→%d bytes %d→%d",
							mode, base.msgs, r.msgs, base.netBytes, r.netBytes)
					}
				} else if r.msgs < base.msgs {
					// Intra-loop merging adds dangling messages (one
					// speculative send round per merged loop, §4.2); it
					// can only add traffic, never drop any.
					t.Errorf("%s: messages dropped: %d → %d", mode, base.msgs, r.msgs)
				}
				if r.steps > base.steps {
					t.Errorf("%s: supersteps increased: %d → %d", mode, base.steps, r.steps)
				}
			}
			// The optimizations must actually help somewhere: full ≤ merge ≤ noopt,
			// and strictly fewer steps for multi-state programs.
			if results[2].steps > results[1].steps {
				t.Errorf("intra-loop merge increased steps: %d → %d", results[1].steps, results[2].steps)
			}
		})
	}
}

func floatEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

// TestStateMergingReducesSupersteps pins the paper's AvgTeen example:
// the receive state and the following global-sum state merge, so the
// whole program takes 2 supersteps instead of 3.
func TestStateMergingReducesSupersteps(t *testing.T) {
	g := gen.Random(50, 200, 1)
	age := make([]int64, 50)
	for v := range age {
		age[v] = int64(v)
	}
	b := machine.Bindings{Int: map[string]int64{"K": 20}, NodePropInt: map[string][]int64{"age": age}}
	noopt := runWithOpts(t, algorithms.AvgTeen, Options{DisableStateMerging: true, DisableIntraLoopMerge: true}, g, b)
	full := runWithOpts(t, algorithms.AvgTeen, Options{}, g, b)
	// Unoptimized: temp-init loop, teen-send, receive, count-finalize,
	// and the S/C loop — five vertex states.
	if noopt.steps != 5 {
		t.Errorf("unoptimized AvgTeen = %d supersteps, want 5", noopt.steps)
	}
	if full.steps != 2 {
		t.Errorf("optimized AvgTeen = %d supersteps, want 2", full.steps)
	}
}

// TestIntraLoopMergeHalvesIterationCost pins PageRank's loop: two
// supersteps per iteration unmerged, one merged.
func TestIntraLoopMergeHalvesIterationCost(t *testing.T) {
	g := gen.TwitterLike(100, 5, 6)
	b := machine.Bindings{
		Float: map[string]float64{"e": 0, "d": 0.85}, // run all iterations
		Int:   map[string]int64{"max_iter": 10},
	}
	merged := runWithOpts(t, algorithms.PageRank, Options{}, g, b)
	unmerged := runWithOpts(t, algorithms.PageRank, Options{DisableIntraLoopMerge: true}, g, b)
	// Unmerged: init + 2 per iteration; merged: init + (iterations + 1).
	if unmerged.steps != 1+2*10 {
		t.Errorf("unmerged = %d supersteps, want 21", unmerged.steps)
	}
	if merged.steps != 1+10+1 {
		t.Errorf("merged = %d supersteps, want 12", merged.steps)
	}
}
