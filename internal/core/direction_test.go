package core

import (
	"reflect"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
)

// TestCompiledDirectionBitIdentity: the paper's algorithms, compiled
// end-to-end from Green-Marl source, must produce bit-identical
// property columns, return values, and engine statistics whether the
// runtime pushes messages or re-derives them in the reverse-CSR pull
// phase. Ineligible programs (or ineligible states of eligible
// programs) silently stay in push; eligible ones must actually pull at
// least once under DirPull so the equivalence is not vacuous.
func TestCompiledDirectionBitIdentity(t *testing.T) {
	g := gen.TwitterLike(120, 5, 9)
	lengths := make([]int64, g.NumEdges())
	for e := range lengths {
		lengths[e] = int64(1 + e%9)
	}
	ages := make([]int64, g.NumNodes())
	members := make([]int64, g.NumNodes())
	for v := range ages {
		ages[v] = int64(10 + v%50)
		members[v] = int64(v % 2)
	}
	cases := []struct {
		name     string
		src      string
		bind     machine.Bindings
		mustPull bool // DirPull must take the pull path at least once
	}{
		{
			name: "pagerank",
			src:  algorithms.PageRank,
			bind: machine.Bindings{
				Float: map[string]float64{"e": 1e-10, "d": 0.85},
				Int:   map[string]int64{"max_iter": 12},
			},
			mustPull: true,
		},
		{
			name: "sssp",
			src:  algorithms.SSSP,
			bind: machine.Bindings{
				Node:        map[string]graph.NodeID{"root": 1},
				EdgePropInt: map[string][]int64{"len": lengths},
			},
			mustPull: true,
		},
		{
			name: "avgteen",
			src:  algorithms.AvgTeen,
			bind: machine.Bindings{
				Int:         map[string]int64{"K": 25},
				NodePropInt: map[string][]int64{"age": ages},
			},
			mustPull: true,
		},
		{
			name: "conductance",
			src:  algorithms.Conductance,
			bind: machine.Bindings{
				Int:         map[string]int64{"num": 1},
				NodePropInt: map[string][]int64{"member": members},
			},
			// The in_nbr_send state is eligible; whether later states
			// pull is up to the per-state analysis, so only require
			// equivalence here.
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compileOK(t, tc.src, Options{})
			for _, w := range []int{1, 3, 6} {
				base, err := machine.Run(c.Program, g, tc.bind, pregel.Config{NumWorkers: w, Seed: 2})
				if err != nil {
					t.Fatalf("workers=%d push: %v", w, err)
				}
				for _, dir := range []pregel.Direction{pregel.DirPull, pregel.DirAuto} {
					var trace pregel.DirectionTrace
					got, err := machine.Run(c.Program, g, tc.bind, pregel.Config{
						NumWorkers: w, Seed: 2, Direction: dir, DirTrace: &trace,
					})
					if err != nil {
						t.Fatalf("workers=%d %v: %v", w, dir, err)
					}
					if !reflect.DeepEqual(base.Stats, got.Stats) {
						t.Fatalf("workers=%d %v: stats diverge\npush: %+v\n%v:  %+v",
							w, dir, base.Stats, dir, got.Stats)
					}
					if base.HasRet != got.HasRet || base.Ret != got.Ret {
						t.Fatalf("workers=%d %v: return %v, want %v", w, dir, got.Ret, base.Ret)
					}
					for _, p := range c.Program.Props {
						if p.IsEdge {
							continue
						}
						if bi, err := base.NodePropInt(p.Name); err == nil {
							gi, _ := got.NodePropInt(p.Name)
							if !reflect.DeepEqual(bi, gi) {
								t.Fatalf("workers=%d %v: prop %s diverges", w, dir, p.Name)
							}
							continue
						}
						bf, err := base.NodePropFloat(p.Name)
						if err != nil {
							continue
						}
						gf, _ := got.NodePropFloat(p.Name)
						if !reflect.DeepEqual(bf, gf) {
							t.Fatalf("workers=%d %v: prop %s diverges", w, dir, p.Name)
						}
					}
					if dir == pregel.DirPull && tc.mustPull && trace.PullSteps == 0 {
						t.Fatalf("workers=%d: DirPull never pulled (trace %v)", w, trace.Steps)
					}
				}
			}
		})
	}
}
