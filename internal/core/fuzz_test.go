package core

import (
	"strings"
	"testing"

	"gmpregel/internal/algorithms"
)

// FuzzCompile feeds arbitrary text through the full pipeline: it must
// either compile or return an error — never panic, and never emit an
// invalid program. Run with `go test -fuzz FuzzCompile ./internal/core`
// for continuous fuzzing; in normal test runs the seed corpus executes.
func FuzzCompile(f *testing.F) {
	for _, src := range algorithms.ByName {
		f.Add(src)
	}
	for _, src := range algorithms.ExtraByName {
		f.Add(src)
	}
	f.Add("Procedure f(G: Graph) { }")
	f.Add("Procedure f(G: Graph, x: Node_Prop<Int>) { Foreach (n: G.Nodes) { n.x = n.Id(); } }")
	f.Add("not green-marl at all {{{")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return // keep single iterations fast
		}
		c, err := Compile(src, Options{})
		if err != nil {
			if strings.Contains(err.Error(), "internal:") {
				t.Errorf("user input produced an internal error: %v", err)
			}
			return
		}
		if vErr := c.Program.Validate(); vErr != nil {
			t.Errorf("compiled program fails validation: %v", vErr)
		}
	})
}

// TestCompileRobustness is the in-process equivalent of FuzzCompile:
// random mutations of valid programs must never panic the pipeline or
// produce internal errors.
func TestCompileRobustness(t *testing.T) {
	srcs := make([]string, 0, len(algorithms.ByName))
	for _, s := range algorithms.ByName {
		srcs = append(srcs, s)
	}
	alphabet := "ProcedureForeachWhileIfG.Nodes(){}[];:=+-*/%&|!?,<>1234567890abc \n"
	rng := newDetRand(1234)
	for trial := 0; trial < 400; trial++ {
		base := srcs[trial%len(srcs)]
		pos := rng.Intn(len(base))
		mut := base[:pos] + string(alphabet[rng.Intn(len(alphabet))]) + base[pos+1:]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input: %v\n%s", r, mut)
				}
			}()
			c, err := Compile(mut, Options{})
			if err != nil {
				if strings.Contains(err.Error(), "internal:") {
					t.Errorf("internal error on user input: %v", err)
				}
				return
			}
			if vErr := c.Program.Validate(); vErr != nil {
				t.Errorf("invalid program compiled: %v", vErr)
			}
		}()
	}
}
