package core

import (
	"strings"
	"testing"
)

// TestCompileDiagnostics pins the error messages for programs the
// compiler cannot (or refuses to) translate — the boundary of the
// paper's "Pregel-compatible" set (Appendix A).
func TestCompileDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			name: "sequential For loop",
			src: `Procedure f(G: Graph, x: Node_Prop<Int>) {
				For (n: G.Nodes) { n.x = 1; }
			}`,
			wantSub: "not Pregel-compatible",
		},
		{
			name: "reduce in while condition",
			src: `Procedure f(G: Graph, x: Node_Prop<Int>) {
				While (Exist(n: G.Nodes)[n.x > 0]) {
					Foreach (n: G.Nodes) { n.x -= 1; }
				}
			}`,
			wantSub: "While condition",
		},
		{
			name: "pull loop under a condition",
			src: `Procedure f(G: Graph, a: Node_Prop<Int>, c: Node_Prop<Bool>) {
				Foreach (n: G.Nodes) {
					If (n.c) {
						Foreach (t: n.InNbrs) { n.a += t.a; }
					}
				}
			}`,
			wantSub: "cannot be transformed",
		},
		{
			name: "edge property in a pull",
			src: `Procedure f(G: Graph, w: Edge_Prop<Int>, a: Node_Prop<Int>) {
				Foreach (n: G.Nodes) {
					Foreach (t: n.Nbrs) {
						Edge e = t.ToEdge();
						n.a += e.w;
					}
				}
			}`,
			wantSub: "message-pulling",
		},
		{
			name: "nested whole-graph loops",
			src: `Procedure f(G: Graph, x: Node_Prop<Int>) {
				Foreach (n: G.Nodes) {
					Foreach (m: G.Nodes) { m.x += 1; }
				}
			}`,
			wantSub: "",
		},
		{
			name: "random read in vertex context",
			src: `Procedure f(G: Graph, s: Node, x: Node_Prop<Int>) {
				Foreach (n: G.Nodes) {
					n.x = s.x;
				}
			}`,
			wantSub: "message pulling",
		},
		{
			name: "random read in sequential condition",
			src: `Procedure f(G: Graph, s: Node, x: Node_Prop<Int>) {
				If (s.x > 0) {
					Foreach (n: G.Nodes) { n.x = 0; }
				}
			}`,
			wantSub: "assign it to a variable",
		},
		{
			name: "InDegree builtin",
			src: `Procedure f(G: Graph, x: Node_Prop<Int>) {
				Foreach (n: G.Nodes) { n.x = n.InDegree(); }
			}`,
			wantSub: "incoming-neighbor",
		},
		{
			name: "whole-graph reduce in parallel",
			src: `Procedure f(G: Graph, x: Node_Prop<Int>) {
				Foreach (n: G.Nodes) {
					n.x = Count(m: G.Nodes)(m.x > 0);
				}
			}`,
			wantSub: "not Pregel-compatible",
		},
		{
			name: "filter hazard on split",
			src: `Procedure f(G: Graph, a: Node_Prop<Int>, flag: Node_Prop<Bool>) {
				Foreach (n: G.Nodes)(n.flag) {
					n.flag = False;
					Foreach (t: n.InNbrs) { n.a += t.a; }
					n.a = n.a * 2;
				}
			}`,
			wantSub: "loop filter",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{})
			if err == nil {
				t.Fatalf("expected a compile error containing %q", tc.wantSub)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.wantSub)
			}
		})
	}
}

// TestCompileErrorsAreUserFacing ensures diagnostics carry positions.
func TestCompileErrorsAreUserFacing(t *testing.T) {
	_, err := Compile(`Procedure f(G: Graph, a: Node_Prop<Int>, c: Node_Prop<Bool>) {
		Foreach (n: G.Nodes) {
			If (n.c) {
				Foreach (t: n.InNbrs) { n.a += t.a; }
			}
		}
	}`, Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), ":") {
		t.Errorf("diagnostic lacks a position: %q", err)
	}
	if strings.Contains(err.Error(), "internal:") {
		t.Errorf("user program error reported as internal: %q", err)
	}
}

// TestPayloadSlotLimit: communications needing more fields than the
// runtime message layout supports must fail at compile time, not panic
// at run time.
func TestPayloadSlotLimit(t *testing.T) {
	src := `Procedure f(G: Graph, a: Node_Prop<Int>, b: Node_Prop<Int>, c: Node_Prop<Int>,
	                     d: Node_Prop<Int>, e2: Node_Prop<Int>, o: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				t.o += n.a;
				t.o += n.b;
				t.o += n.c;
				t.o += n.d;
				t.o += n.e2;
			}
		}
	}`
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("expected a payload-slot diagnostic")
	}
	if !strings.Contains(err.Error(), "message fields") {
		t.Errorf("error %q should mention message fields", err)
	}
	// Exactly at the limit compiles.
	ok := `Procedure f(G: Graph, a: Node_Prop<Int>, b: Node_Prop<Int>, c: Node_Prop<Int>,
	                     d: Node_Prop<Int>, o: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				t.o += n.a + n.b + n.c + n.d;
			}
		}
	}`
	// The payload analysis ships each distinct variable, so this uses 4.
	if _, err := Compile(ok, Options{}); err != nil {
		t.Fatalf("4-field payload should compile: %v", err)
	}
}
