package core

import (
	"math"
	"math/rand"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/graph"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
	"gmpregel/internal/seq"
)

// Property-based compile-run-vs-oracle tests: random small graphs and
// inputs, the compiled program must always match the sequential oracle.

func randomGraph(rng *rand.Rand) *graph.Directed {
	n := 2 + rng.Intn(40)
	m := rng.Intn(4 * n)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}

func TestQuickAvgTeenMatchesOracle(t *testing.T) {
	c := compileOK(t, algorithms.AvgTeen, Options{})
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		n := g.NumNodes()
		age := make([]int64, n)
		for v := range age {
			age[v] = int64(rng.Intn(80))
		}
		k := int64(rng.Intn(60))
		res, err := machine.Run(c.Program, g, machine.Bindings{
			Int:         map[string]int64{"K": k},
			NodePropInt: map[string][]int64{"age": age},
		}, pregel.Config{NumWorkers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantCnt, wantAvg := seq.AvgTeen(g, age, k)
		gotCnt, _ := res.NodePropInt("teen_cnt")
		for v := range wantCnt {
			if gotCnt[v] != wantCnt[v] {
				t.Fatalf("trial %d: teen_cnt[%d] = %d, want %d", trial, v, gotCnt[v], wantCnt[v])
			}
		}
		if math.Abs(res.Ret.AsFloat()-wantAvg) > 1e-9 {
			t.Fatalf("trial %d: avg = %v, want %v", trial, res.Ret.AsFloat(), wantAvg)
		}
	}
}

func TestQuickSSSPMatchesOracle(t *testing.T) {
	c := compileOK(t, algorithms.SSSP, Options{})
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		lengths := make([]int64, g.NumEdges())
		for e := range lengths {
			lengths[e] = int64(1 + rng.Intn(20))
		}
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		res, err := machine.Run(c.Program, g, machine.Bindings{
			Node:        map[string]graph.NodeID{"root": root},
			EdgePropInt: map[string][]int64{"len": lengths},
		}, pregel.Config{NumWorkers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := seq.SSSP(g, root, lengths)
		got, _ := res.NodePropInt("dist")
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d (root %d): dist[%d] = %d, want %d", trial, root, v, got[v], want[v])
			}
		}
	}
}

func TestQuickWCCMatchesOracle(t *testing.T) {
	c := compileOK(t, algorithms.WCC, Options{})
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		res, err := machine.Run(c.Program, g, machine.Bindings{},
			pregel.Config{NumWorkers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := seq.WCC(g)
		got, _ := res.NodePropInt("comp")
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: comp[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestQuickConductanceMatchesOracle(t *testing.T) {
	c := compileOK(t, algorithms.Conductance, Options{})
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		n := g.NumNodes()
		member := make([]int64, n)
		for v := range member {
			member[v] = int64(rng.Intn(3))
		}
		num := int64(rng.Intn(3))
		res, err := machine.Run(c.Program, g, machine.Bindings{
			Int:         map[string]int64{"num": num},
			NodePropInt: map[string][]int64{"member": member},
		}, pregel.Config{NumWorkers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := seq.Conductance(g, member, num)
		got := res.Ret.AsFloat()
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("trial %d: conductance = %v, want +Inf", trial, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: conductance = %v, want %v", trial, got, want)
		}
	}
}

func TestQuickBipartiteAlwaysValid(t *testing.T) {
	c := compileOK(t, algorithms.Bipartite, Options{})
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 30; trial++ {
		boys := 1 + rng.Intn(20)
		girls := 1 + rng.Intn(20)
		b := graph.NewBuilder(boys + girls)
		for u := 0; u < boys; u++ {
			deg := rng.Intn(4)
			for k := 0; k < deg; k++ {
				b.AddEdge(graph.NodeID(u), graph.NodeID(boys+rng.Intn(girls)))
			}
		}
		g := b.Build()
		isBoy := make([]bool, boys+girls)
		for v := 0; v < boys; v++ {
			isBoy[v] = true
		}
		res, err := machine.Run(c.Program, g, machine.Bindings{
			NodePropBool: map[string][]bool{"is_boy": isBoy},
		}, pregel.Config{NumWorkers: 1 + rng.Intn(4), Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		raw, _ := res.NodePropInt("match")
		match := make([]graph.NodeID, len(raw))
		for v, m := range raw {
			match[v] = graph.NodeID(m)
		}
		if msg := seq.ValidateMatching(g, isBoy, match); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
	}
}

func TestQuickBCMatchesOracle(t *testing.T) {
	c := compileOK(t, algorithms.BC, Options{})
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng)
		seed := int64(trial * 7)
		res, err := machine.Run(c.Program, g, machine.Bindings{Int: map[string]int64{"K": 2}},
			pregel.Config{NumWorkers: 1 + rng.Intn(4), Seed: seed})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Replay the master RNG to learn the chosen sources.
		mr := rand.New(rand.NewSource(seed))
		sources := []graph.NodeID{
			graph.NodeID(mr.Intn(g.NumNodes())),
			graph.NodeID(mr.Intn(g.NumNodes())),
		}
		want := seq.BCApprox(g, sources)
		got, _ := res.NodePropFloat("BC")
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				t.Fatalf("trial %d (sources %v): BC[%d] = %v, want %v", trial, sources, v, got[v], want[v])
			}
		}
	}
}
