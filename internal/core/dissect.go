package core

import (
	"sort"

	"gmpregel/internal/gm/ast"
)

// sortedKeys returns a map's keys in ascending order, for iteration
// whose effects may escape into diagnostics or emitted code.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m { //gm:nondeterministic-ok keys are sorted before any order-sensitive use
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// canonicalize runs the §4.1 transformations that turn non-canonical
// vertex loops into Pregel-canonical form: Dissecting Nested Loops
// (replace outer-scoped scalars with temporary properties, then split
// the outer loop so that each pull-loop stands alone) followed by
// Flipping Edges (turn message pulling into message pushing).
func (nz *normalizer) canonicalize() {
	if !nz.recheck() {
		return
	}
	nz.proc.Body = nz.dissectBlock(nz.proc.Body)
	if nz.err != nil {
		return
	}
	if !nz.recheck() {
		return
	}
	nz.flipAll()
}

// ---- Dissecting Nested Loops ----

func (nz *normalizer) dissectBlock(b *ast.Block) *ast.Block {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Foreach:
			if s.Kind == ast.IterNodes {
				out = append(out, nz.dissectLoop(s)...)
			} else {
				out = append(out, s)
			}
		case *ast.If:
			s.Then = nz.dissectBlock(asBlock(s.Then))
			if s.Else != nil {
				s.Else = nz.dissectBlock(asBlock(s.Else))
			}
			out = append(out, s)
		case *ast.While:
			s.Body = nz.dissectBlock(asBlock(s.Body))
			out = append(out, s)
		case *ast.Block:
			out = append(out, nz.dissectBlock(s))
		default:
			out = append(out, s)
		}
		if nz.err != nil {
			return b
		}
	}
	b.Stmts = out
	return b
}

// innerLoopsOf returns the neighbor loops that are direct children of
// the body (possibly nested under Ifs).
func innerLoopsOf(body *ast.Block) []*ast.Foreach {
	var loops []*ast.Foreach
	var visit func(ss []ast.Stmt)
	visit = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Foreach:
				if s.Kind != ast.IterNodes {
					loops = append(loops, s)
				}
			case *ast.If:
				visit(asBlock(s.Then).Stmts)
				if s.Else != nil {
					visit(asBlock(s.Else).Stmts)
				}
			case *ast.Block:
				visit(s.Stmts)
			}
		}
	}
	visit(body.Stmts)
	return loops
}

// scalarWrittenInInner reports whether the named scalar is assigned
// inside any inner neighbor loop of body.
func scalarWrittenInInner(body *ast.Block, name string) bool {
	for _, il := range innerLoopsOf(body) {
		written := false
		ast.WalkStmts(il.Body, func(s ast.Stmt) bool {
			if a, ok := s.(*ast.Assign); ok {
				if id, ok := a.LHS.(*ast.Ident); ok && id.Name == name {
					written = true
				}
			}
			return !written
		})
		if written {
			return true
		}
	}
	return false
}

// isPullLoop reports whether the inner loop writes a property of the
// outer iterator (message pulling).
func isPullLoop(il *ast.Foreach, outerIter string) bool {
	pull := false
	ast.WalkStmts(il.Body, func(s ast.Stmt) bool {
		if a, ok := s.(*ast.Assign); ok {
			if pa, ok := a.LHS.(*ast.PropAccess); ok {
				if id, ok := pa.Target.(*ast.Ident); ok && id.Name == outerIter {
					pull = true
				}
			}
		}
		return !pull
	})
	return pull
}

// dissectLoop applies the two dissection steps to one outer loop and
// returns its replacement statement sequence (possibly just the loop
// itself).
func (nz *normalizer) dissectLoop(f *ast.Foreach) []ast.Stmt {
	body := asBlock(f.Body)
	f.Body = body
	var hoisted []ast.Stmt

	// Step 1: outer-body scalars written inside inner loops become
	// temporary vertex properties.
	changed := true
	for changed {
		changed = false
		for i, s := range body.Stmts {
			d, ok := s.(*ast.VarDecl)
			if !ok || d.Type.Kind.IsProp() || d.Type.Kind == ast.TEdge {
				continue
			}
			name := d.Names[0]
			if len(d.Names) != 1 || !scalarWrittenInInner(body, name) {
				continue
			}
			tmp := nz.nm.fresh("_t")
			hoisted = append(hoisted, &ast.VarDecl{Type: nodePropType(d.Type.Kind), Names: []string{tmp}, P: d.P})
			// Replace the declaration with an initialization of the
			// temporary property (if it had an initializer).
			if d.Init != nil {
				body.Stmts[i] = &ast.Assign{LHS: propOf(ident(f.Iter), tmp), Op: ast.OpSet, RHS: d.Init, P: d.P}
			} else {
				body.Stmts[i] = &ast.Block{P: d.P} // empty placeholder
			}
			// Rewrite all uses of the scalar to the property.
			for j := range body.Stmts {
				if j == i {
					continue
				}
				replaceIdentInStmt(body.Stmts[j], name, propOf(ident(f.Iter), tmp))
				rewriteAssignTargets(body.Stmts[j], name, f.Iter, tmp)
			}
			nz.trace.Record(RuleDissectLoops)
			changed = true
			break
		}
	}
	body.Stmts = dropEmptyBlocks(body.Stmts)

	// Step 2: split the loop so each pull-loop is the sole statement of
	// its own outer loop.
	var pullSeen bool
	for _, s := range body.Stmts {
		if il, ok := s.(*ast.Foreach); ok && il.Kind != ast.IterNodes && isPullLoop(il, f.Iter) {
			pullSeen = true
		}
	}
	// Pull loops nested under Ifs cannot be dissected.
	for _, il := range innerLoopsOf(body) {
		if isPullLoop(il, f.Iter) {
			direct := false
			for _, s := range body.Stmts {
				if s == ast.Stmt(il) {
					direct = true
				}
			}
			if !direct {
				nz.fail("%s: a message-pulling neighbor loop under a condition cannot be transformed; restructure the program", il.P)
				return []ast.Stmt{f}
			}
		}
	}
	if !pullSeen || len(body.Stmts) == 1 {
		return append(hoisted, f)
	}

	// Safety: splitting re-evaluates the outer filter per segment, so no
	// segment may write a property the filter reads.
	if f.Filter != nil {
		filterProps := propsReadBy(f.Filter)
		for _, s := range body.Stmts {
			// Sorted so the property named in the diagnostic is stable
			// when a statement writes several filter-read properties.
			for _, p := range sortedKeys(propsWrittenBy(s)) {
				if filterProps[p] {
					nz.fail("%s: cannot split loop: its body modifies property %q used by the loop filter", f.P, p)
					return []ast.Stmt{f}
				}
			}
		}
	}

	var segs [][]ast.Stmt
	var cur []ast.Stmt
	flush := func() {
		if len(cur) > 0 {
			segs = append(segs, cur)
			cur = nil
		}
	}
	for _, s := range body.Stmts {
		if il, ok := s.(*ast.Foreach); ok && il.Kind != ast.IterNodes && isPullLoop(il, f.Iter) {
			flush()
			segs = append(segs, []ast.Stmt{s})
			continue
		}
		cur = append(cur, s)
	}
	flush()
	nz.trace.Record(RuleDissectLoops)

	out := hoisted
	for _, seg := range segs {
		out = append(out, &ast.Foreach{
			Iter: f.Iter, Source: f.Source, Kind: f.Kind,
			Filter: cloneOrNil(f.Filter),
			Body:   &ast.Block{Stmts: seg},
			P:      f.P,
		})
	}
	return out
}

// rewriteAssignTargets rewrites `name op= rhs` into `iter.tmp op= rhs`
// (assignment LHS idents are not expressions, so replaceIdentInStmt does
// not reach them... it does, via RewriteExprs on LHS — kept for clarity).
func rewriteAssignTargets(s ast.Stmt, name, iter, tmp string) {
	ast.WalkStmts(s, func(st ast.Stmt) bool {
		if a, ok := st.(*ast.Assign); ok {
			if id, ok := a.LHS.(*ast.Ident); ok && id.Name == name {
				a.LHS = propOf(ident(iter), tmp)
			}
		}
		return true
	})
}

func dropEmptyBlocks(ss []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range ss {
		if b, ok := s.(*ast.Block); ok && len(b.Stmts) == 0 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// propsReadBy returns the property names read in e.
func propsReadBy(e ast.Expr) map[string]bool {
	out := map[string]bool{}
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if pa, ok := x.(*ast.PropAccess); ok {
			out[pa.Prop] = true
		}
		return true
	})
	return out
}

// propsWrittenBy returns the property names written (as assignment
// targets) anywhere in s.
func propsWrittenBy(s ast.Stmt) map[string]bool {
	out := map[string]bool{}
	ast.WalkStmts(s, func(st ast.Stmt) bool {
		if a, ok := st.(*ast.Assign); ok {
			if pa, ok := a.LHS.(*ast.PropAccess); ok {
				out[pa.Prop] = true
			}
		}
		return true
	})
	return out
}

// ---- Flipping Edges ----

// flipAll converts remaining pull-style nested loops (outer loop whose
// sole statement is a message-pulling inner loop) into push style by
// swapping the iterators and flipping the edge direction.
func (nz *normalizer) flipAll() {
	if !nz.recheck() {
		return
	}
	ast.WalkStmts(nz.proc.Body, func(s ast.Stmt) bool {
		if nz.err != nil {
			return false
		}
		f, ok := s.(*ast.Foreach)
		if !ok || f.Kind != ast.IterNodes {
			return true
		}
		nz.maybeFlip(f)
		return false
	})
}

func (nz *normalizer) maybeFlip(f *ast.Foreach) {
	body := asBlock(f.Body)
	if len(body.Stmts) != 1 {
		return
	}
	il, ok := body.Stmts[0].(*ast.Foreach)
	if !ok || il.Kind == ast.IterNodes || !isPullLoop(il, f.Iter) {
		return
	}
	if il.Source != f.Iter {
		nz.fail("%s: inner loop source %q must be the outer iterator %q", il.P, il.Source, f.Iter)
		return
	}
	// Edge variables bound to the inner iterator do not survive a flip.
	edgeUse := false
	ast.WalkStmts(il.Body, func(s ast.Stmt) bool {
		if d, ok := s.(*ast.VarDecl); ok && d.Type.Kind == ast.TEdge {
			edgeUse = true
		}
		return !edgeUse
	})
	if edgeUse {
		nz.fail("%s: edge properties cannot be used in a message-pulling loop", il.P)
		return
	}

	var flipped ast.IterKind
	switch il.Kind {
	case ast.IterInNbrs:
		flipped = ast.IterOutNbrs
	case ast.IterOutNbrs:
		flipped = ast.IterInNbrs
	default:
		nz.fail("%s: cannot flip %s iteration", il.P, il.Kind)
		return
	}

	// Split the inner filter: conjuncts that reference only the inner
	// iterator move to the new outer loop (sender side); the rest join
	// the outer filter on the new inner loop (receiver side).
	var newOuterF, newInnerF []ast.Expr
	for _, c := range conjuncts(il.Filter) {
		usesOuter := ast.UsesIdent(c, f.Iter)
		usesInner := ast.UsesIdent(c, il.Iter)
		if usesInner && !usesOuter {
			newOuterF = append(newOuterF, c)
		} else {
			newInnerF = append(newInnerF, c)
		}
	}
	innerFilter := conj(cloneOrNil(f.Filter), conjoin(newInnerF))

	newInner := &ast.Foreach{
		Iter: f.Iter, Source: il.Iter, Kind: flipped,
		Filter: innerFilter, Body: il.Body, P: il.P,
	}
	f.Iter = il.Iter
	f.Filter = conjoin(newOuterF)
	f.Body = blockOf(newInner)
	nz.trace.Record(RuleFlipEdges)
	if flipped == ast.IterInNbrs {
		nz.trace.Record(RuleIncomingNbrs)
	}
}
