package core

import (
	"math"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
	"gmpregel/internal/seq"
)

// TestWorkerCountInvariance: compiled programs must produce the same
// results regardless of how vertices are partitioned across workers.
// Deterministic-output algorithms must match exactly (floats up to
// summation-order jitter); the randomized ones must stay valid.
func TestWorkerCountInvariance(t *testing.T) {
	workers := []int{1, 2, 5, 8}

	t.Run("sssp", func(t *testing.T) {
		g := gen.WebLike(8, 5, 7)
		lengths := make([]int64, g.NumEdges())
		for e := range lengths {
			lengths[e] = int64(1 + e%9)
		}
		c := compileOK(t, algorithms.SSSP, Options{})
		want := seq.SSSP(g, 1, lengths)
		for _, w := range workers {
			res, err := machine.Run(c.Program, g, machine.Bindings{
				Node:        map[string]graph.NodeID{"root": 1},
				EdgePropInt: map[string][]int64{"len": lengths},
			}, pregel.Config{NumWorkers: w})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := res.NodePropInt("dist")
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("workers=%d: dist[%d] = %d, want %d", w, v, got[v], want[v])
				}
			}
		}
	})

	t.Run("pagerank", func(t *testing.T) {
		g := gen.TwitterLike(150, 5, 3)
		c := compileOK(t, algorithms.PageRank, Options{})
		want := seq.PageRank(g, 1e-10, 0.85, 15)
		for _, w := range workers {
			res, err := machine.Run(c.Program, g, machine.Bindings{
				Float: map[string]float64{"e": 1e-10, "d": 0.85},
				Int:   map[string]int64{"max_iter": 15},
			}, pregel.Config{NumWorkers: w})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := res.NodePropFloat("pg_rank")
			for v := range want {
				// Message arrival order varies with partitioning, so
				// float sums differ by rounding only.
				if math.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("workers=%d: pg_rank[%d] = %v, want %v", w, v, got[v], want[v])
				}
			}
		}
	})

	t.Run("bipartite", func(t *testing.T) {
		const boys, girls = 50, 55
		g := gen.Bipartite(boys, girls, 3, 8)
		isBoy := make([]bool, boys+girls)
		for v := 0; v < boys; v++ {
			isBoy[v] = true
		}
		c := compileOK(t, algorithms.Bipartite, Options{})
		for _, w := range workers {
			res, err := machine.Run(c.Program, g, machine.Bindings{
				NodePropBool: map[string][]bool{"is_boy": isBoy},
			}, pregel.Config{NumWorkers: w})
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := res.NodePropInt("match")
			match := make([]graph.NodeID, len(raw))
			for v, m := range raw {
				match[v] = graph.NodeID(m)
			}
			// Last-writer-wins depends on partitioning, so the matching
			// itself may differ — but it must always be valid & maximal.
			if msg := seq.ValidateMatching(g, isBoy, match); msg != "" {
				t.Fatalf("workers=%d: %s", w, msg)
			}
		}
	})

	t.Run("wcc", func(t *testing.T) {
		g := gen.Random(150, 200, 5)
		c := compileOK(t, algorithms.WCC, Options{})
		want := seq.WCC(g)
		for _, w := range workers {
			res, err := machine.Run(c.Program, g, machine.Bindings{}, pregel.Config{NumWorkers: w})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := res.NodePropInt("comp")
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("workers=%d: comp[%d] = %d, want %d", w, v, got[v], want[v])
				}
			}
		}
	})
}

// TestSeedDeterminism: same seed, same everything.
func TestSeedDeterminism(t *testing.T) {
	g := gen.WebLike(7, 5, 2)
	c := compileOK(t, algorithms.BC, Options{})
	run := func() []float64 {
		res, err := machine.Run(c.Program, g, machine.Bindings{Int: map[string]int64{"K": 3}},
			pregel.Config{NumWorkers: 4, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		bc, _ := res.NodePropFloat("BC")
		out := make([]float64, len(bc))
		copy(out, bc)
		return out
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("BC[%d] differs across identical runs: %v vs %v", v, a[v], b[v])
		}
	}
	// Different seed → different sources → (almost surely) different BC.
	res, err := machine.Run(c.Program, g, machine.Bindings{Int: map[string]int64{"K": 3}},
		pregel.Config{NumWorkers: 4, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := res.NodePropFloat("BC")
	same := true
	for v := range a {
		if a[v] != c2[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked identical BC sources (suspicious)")
	}
}

// TestSSSPOverflowSafety: INF distances must never participate in
// relaxation arithmetic (the updated-filter guards it), so no wraparound
// distances appear even on graphs with unreachable regions.
func TestSSSPOverflowSafety(t *testing.T) {
	b := graph.NewBuilder(10)
	// Reachable chain 0→1→2; unreachable cluster 5..9 heavily connected.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	for v := graph.NodeID(5); v < 9; v++ {
		b.AddEdge(v, v+1)
		b.AddEdge(v+1, v)
	}
	g := b.Build()
	lengths := make([]int64, g.NumEdges())
	for e := range lengths {
		lengths[e] = 1000
	}
	c := compileOK(t, algorithms.SSSP, Options{})
	res, err := machine.Run(c.Program, g, machine.Bindings{
		Node:        map[string]graph.NodeID{"root": 0},
		EdgePropInt: map[string][]int64{"len": lengths},
	}, pregel.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.NodePropInt("dist")
	for v := 5; v < 10; v++ {
		if got[v] != seq.Inf {
			t.Errorf("unreachable dist[%d] = %d, want INF (overflow?)", v, got[v])
		}
	}
	if got[0] != 0 || got[1] != 1000 || got[2] != 2000 {
		t.Errorf("reachable distances wrong: %v", got[:3])
	}
}

// TestDifferentialExecutorsOnAllAlgorithms cross-checks the
// closure-compiled executor against the reference interpreter for every
// bundled algorithm.
func TestDifferentialExecutorsOnAllAlgorithms(t *testing.T) {
	g := gen.TwitterLike(120, 5, 6)
	gB := gen.Bipartite(40, 50, 3, 6)
	gW := gen.WebLike(7, 5, 6)
	lengths := make([]int64, gW.NumEdges())
	for e := range lengths {
		lengths[e] = int64(1 + e%5)
	}
	isBoy := make([]bool, 90)
	for v := 0; v < 40; v++ {
		isBoy[v] = true
	}
	ages := make([]int64, 120)
	member := make([]int64, 120)
	for v := range ages {
		ages[v] = int64(10 + v%50)
		member[v] = int64(v % 2)
	}
	cases := []struct {
		src string
		g   *graph.Directed
		b   machine.Bindings
	}{
		{algorithms.AvgTeen, g, machine.Bindings{Int: map[string]int64{"K": 25}, NodePropInt: map[string][]int64{"age": ages}}},
		{algorithms.PageRank, g, machine.Bindings{Float: map[string]float64{"e": 1e-7, "d": 0.85}, Int: map[string]int64{"max_iter": 8}}},
		{algorithms.Conductance, g, machine.Bindings{Int: map[string]int64{"num": 1}, NodePropInt: map[string][]int64{"member": member}}},
		{algorithms.SSSP, gW, machine.Bindings{Node: map[string]graph.NodeID{"root": 0}, EdgePropInt: map[string][]int64{"len": lengths}}},
		{algorithms.Bipartite, gB, machine.Bindings{NodePropBool: map[string][]bool{"is_boy": isBoy}}},
		{algorithms.BC, gW, machine.Bindings{Int: map[string]int64{"K": 2}}},
		{algorithms.WCC, gW, machine.Bindings{}},
		{algorithms.HITS, g, machine.Bindings{Int: map[string]int64{"max_iter": 6}}},
	}
	for i, tc := range cases {
		c := compileOK(t, tc.src, Options{})
		cfg := pregel.Config{NumWorkers: 4, Seed: 21}
		fast, err := machine.RunWithOptions(c.Program, tc.g, tc.b, cfg, machine.RunOptions{})
		if err != nil {
			t.Fatalf("case %d compiled: %v", i, err)
		}
		slow, err := machine.RunWithOptions(c.Program, tc.g, tc.b, cfg, machine.RunOptions{Interpret: true})
		if err != nil {
			t.Fatalf("case %d interpreted: %v", i, err)
		}
		if fast.Stats.Supersteps != slow.Stats.Supersteps || fast.Stats.MessagesSent != slow.Stats.MessagesSent {
			t.Errorf("case %d (%s): stats diverge", i, c.Program.Name)
		}
		for _, pd := range c.Program.Props {
			if pd.IsEdge {
				continue
			}
			if fv, err := fast.NodePropInt(pd.Name); err == nil {
				sv, _ := slow.NodePropInt(pd.Name)
				for v := range fv {
					if fv[v] != sv[v] {
						t.Fatalf("case %d (%s): %s[%d] = %d vs %d", i, c.Program.Name, pd.Name, v, fv[v], sv[v])
					}
				}
			} else if fv, err := fast.NodePropFloat(pd.Name); err == nil {
				sv, _ := slow.NodePropFloat(pd.Name)
				for v := range fv {
					if fv[v] != sv[v] {
						t.Fatalf("case %d (%s): %s[%d] = %v vs %v", i, c.Program.Name, pd.Name, v, fv[v], sv[v])
					}
				}
			}
		}
	}
}
