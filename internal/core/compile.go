package core

import (
	"gmpregel/internal/gm/analysis"
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/parser"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/machine"
)

// Options controls optional compilation steps.
type Options struct {
	// DisableStateMerging turns off the §4.2 State Merging optimization.
	DisableStateMerging bool
	// DisableIntraLoopMerge turns off the §4.2 Intra-Loop State Merging
	// optimization.
	DisableIntraLoopMerge bool
}

// Compiled is the result of compiling one Green-Marl procedure.
type Compiled struct {
	// Source is the original Green-Marl text.
	Source string
	// Original is the parsed, untransformed procedure.
	Original *ast.Procedure
	// Canonical is the Pregel-canonical form after all §4.1
	// transformations.
	Canonical *ast.Procedure
	// Info is the semantic information of the canonical form.
	Info *sema.Info
	// Program is the executable Pregel program.
	Program *machine.Program
	// Trace records the applied rules (Table 3).
	Trace *Trace
	// Diagnostics are the static-analysis findings for the original
	// (pre-transformation) procedure.
	Diagnostics analysis.List
}

// Compile parses and compiles a single Green-Marl procedure into a
// Pregel program.
func Compile(src string, opts Options) (*Compiled, error) {
	proc, err := parser.ParseProcedure(src)
	if err != nil {
		return nil, err
	}
	c, err := CompileProcedure(proc, opts)
	if err != nil {
		return nil, err
	}
	c.Source = src
	return c, nil
}

// CompileProcedure compiles an already-parsed procedure. The input tree
// is not modified.
func CompileProcedure(proc *ast.Procedure, opts Options) (*Compiled, error) {
	info0, err := sema.Check(proc)
	if err != nil {
		return nil, err
	}
	// The analyses run on the original tree, so diagnostics point at
	// source the user wrote rather than at lowered forms.
	diags := analysis.AnalyzeProcedure(proc, info0)
	original := proc
	work := proc.Clone()
	trace := &Trace{}
	nz := &normalizer{proc: work, nm: newNamer(work), trace: trace}

	// The paper's Fig. 1 pipeline.
	nz.lowerBFS()
	nz.lowerBulkAssigns()
	nz.lowerSeqReduces()
	nz.lowerParReduces()
	nz.lowerRandomAccess()
	nz.canonicalize()
	if nz.err != nil {
		return nil, nz.err
	}
	info, err := sema.Check(work)
	if err != nil {
		return nil, errf("internal: canonical form fails sema: %v", err)
	}

	prog, err := translate(work, info, trace)
	if err != nil {
		return nil, err
	}
	if !opts.DisableStateMerging {
		mergeStates(prog, trace)
	}
	if !opts.DisableIntraLoopMerge {
		intraLoopMerge(prog, trace)
	}
	if err := prog.Validate(); err != nil {
		return nil, errf("internal: optimized program invalid: %v", err)
	}
	errs, warns, infos := diags.Counts()
	prog.Analysis = &machine.AnalysisSummary{
		Errors:      errs,
		Warnings:    warns,
		Infos:       infos,
		Codes:       diags.Codes(),
		WarningFree: errs == 0 && warns == 0,
	}
	return &Compiled{
		Original:    original,
		Canonical:   work,
		Info:        info,
		Program:     prog,
		Trace:       trace,
		Diagnostics: diags,
	}, nil
}

// PrintCanonical renders the Pregel-canonical form of a compiled
// procedure as Green-Marl source.
func PrintCanonical(c *Compiled) string { return ast.Print(c.Canonical) }
