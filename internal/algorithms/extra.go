package algorithms

// Beyond the paper's six programs, these extension algorithms exercise
// the compiler on additional pattern combinations: WCC pushes along both
// edge directions in one loop (multiple communication + incoming
// neighbors), and HITS alternates pull directions (both flip
// orientations) with global normalization each round.

// WCC computes weakly-connected components by min-label propagation
// along both out- and in-edges. comp converges to the smallest vertex ID
// in each component.
const WCC = `// Weakly connected components by min-label propagation.
Procedure wcc(G: Graph, comp: Node_Prop<Int>)
{
    Node_Prop<Int> comp_nxt;
    Foreach (n: G.Nodes) {
        n.comp = n.Id();
        n.comp_nxt = n.Id();
    }
    Bool fin = False;
    While (!fin) {
        Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
                t.comp_nxt min= n.comp;
            }
            Foreach (s: n.InNbrs) {
                s.comp_nxt min= n.comp;
            }
        }
        fin = True;
        Foreach (n: G.Nodes) {
            If (n.comp_nxt < n.comp) {
                n.comp = n.comp_nxt;
                fin &= False;
            }
        }
    }
}
`

// HITS computes hubs-and-authorities scores with L1 normalization each
// round: auth(v) = Σ hub(u) over in-neighbors, hub(v) = Σ auth(w) over
// out-neighbors.
const HITS = `// HITS (hubs and authorities), L1-normalized.
Procedure hits(G: Graph, max_iter: Int, auth: Node_Prop<Double>, hub: Node_Prop<Double>)
{
    G.auth = 1.0;
    G.hub = 1.0;
    Int k = 0;
    While (k < max_iter) {
        Foreach (n: G.Nodes) {
            n.auth = Sum(w: n.InNbrs)(w.hub);
        }
        Double na = 0.0;
        na = Sum(n: G.Nodes)(n.auth);
        If (na > 0.0) {
            Foreach (n: G.Nodes) {
                n.auth = n.auth / na;
            }
        }
        Foreach (n: G.Nodes) {
            n.hub = Sum(w: n.Nbrs)(w.auth);
        }
        Double nh = 0.0;
        nh = Sum(n: G.Nodes)(n.hub);
        If (nh > 0.0) {
            Foreach (n: G.Nodes) {
                n.hub = n.hub / nh;
            }
        }
        k = k + 1;
    }
}
`

// DegreeStats computes each vertex's in-degree into a property and
// returns the maximum — a small program exercising Incoming Neighbors
// with a Max global reduction.
const DegreeStats = `// In-degree per vertex plus the global maximum.
Procedure degree_stats(G: Graph, indeg: Node_Prop<Int>) : Int
{
    Foreach (n: G.Nodes) {
        n.indeg = Count(t: n.InNbrs);
    }
    Int mx = 0;
    mx = Max(n: G.Nodes)(n.indeg);
    Return mx;
}
`

// ExtraByName maps the extension algorithms by short name.
var ExtraByName = map[string]string{
	"wcc":          WCC,
	"hits":         HITS,
	"degree_stats": DegreeStats,
}
