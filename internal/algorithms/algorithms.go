// Package algorithms embeds the Green-Marl sources of the six graph
// algorithms evaluated in the paper (Fig. 2, Fig. 4, and Appendix B):
// Average Teenage Followers, PageRank, Conductance, Single-Source
// Shortest Paths, Random Bipartite Matching, and Approximate Betweenness
// Centrality.
package algorithms

// AvgTeen computes, for every user, the number of teenage followers, and
// returns the average of that count over users older than K (paper
// Fig. 2 / §3.1 running example).
const AvgTeen = `// Average number of teenage followers of users over K years old.
Procedure avg_teen_cnt(G: Graph, age: Node_Prop<Int>, teen_cnt: Node_Prop<Int>, K: Int) : Float
{
    Int S = 0;
    Int C = 0;
    Foreach (n: G.Nodes) {
        n.teen_cnt = Count(t: n.InNbrs)(t.age >= 13 && t.age <= 19);
    }
    Foreach (n: G.Nodes) {
        If (n.age > K) {
            S += n.teen_cnt;
            C += 1;
        }
    }
    Float avg = (C == 0) ? 0.0 : (1.0 * S) / C;
    Return avg;
}
`

// PageRank is the damped power-iteration PageRank of the paper's
// Appendix B, iterating until the L1 delta falls below e or max_iter
// rounds elapse.
const PageRank = `// PageRank (paper Appendix B).
Procedure pagerank(G: Graph, e: Double, d: Double, max_iter: Int, pg_rank: Node_Prop<Double>)
{
    Double diff = 0.0;
    Int cnt = 0;
    Double N = G.NumNodes();
    G.pg_rank = 1.0 / N;
    Do {
        diff = 0.0;
        Foreach (t: G.Nodes) {
            Double val = (1.0 - d) / N + d * Sum(w: t.InNbrs)(w.pg_rank / w.Degree());
            diff += (val > t.pg_rank) ? (val - t.pg_rank) : (t.pg_rank - val);
            t.pg_rank = val;
        }
        cnt = cnt + 1;
    } While (diff > e && cnt < max_iter);
}
`

// Conductance computes the conductance of the member==num node subset
// (paper Appendix B).
const Conductance = `// Conductance of a subset of the graph (paper Appendix B).
Procedure conductance(G: Graph, member: Node_Prop<Int>, num: Int) : Double
{
    Int Din = 0;
    Int Dout = 0;
    Int Cross = 0;
    Din = Sum(u: G.Nodes)[u.member == num](u.Degree());
    Dout = Sum(u: G.Nodes)[u.member != num](u.Degree());
    Cross = Sum(u: G.Nodes)[u.member == num](Count(t: u.Nbrs)(t.member != num));
    Double m = (Din < Dout) ? 1.0 * Din : 1.0 * Dout;
    If (m == 0.0) {
        Return (Cross == 0) ? 0.0 : INF;
    } Else {
        Return Cross / m;
    }
}
`

// SSSP is Bellman-Ford-style single-source shortest paths with
// double-buffered distances (paper Appendix B; also the running example
// of the original Pregel paper).
const SSSP = `// Single-source shortest paths (paper Appendix B).
Procedure sssp(G: Graph, root: Node, len: Edge_Prop<Int>, dist: Node_Prop<Int>)
{
    Node_Prop<Bool> updated;
    Node_Prop<Int> dist_nxt;
    Bool fin = False;

    G.dist = (G == root) ? 0 : INF;
    G.updated = (G == root) ? True : False;
    G.dist_nxt = G.dist;

    While (!fin) {
        fin = True;
        Foreach (n: G.Nodes)[n.updated] {
            Foreach (s: n.Nbrs) {
                Edge e = s.ToEdge();
                s.dist_nxt min= n.dist + e.len;
            }
        }
        Foreach (n: G.Nodes) {
            n.updated = n.dist_nxt < n.dist;
            If (n.updated) {
                n.dist = n.dist_nxt;
            }
            n.dist_nxt = n.dist;
        }
        fin = !Exist(n: G.Nodes)[n.updated];
    }
}
`

// Bipartite is the three-phase handshake random maximal bipartite
// matching of the paper's Appendix B. Only boy→girl edges exist; the
// returned Int is the number of matched pairs.
const Bipartite = `// Random bipartite matching (paper Appendix B).
Procedure bipartite_matching(G: Graph, is_boy: Node_Prop<Bool>, match: Node_Prop<Node>) : Int
{
    Node_Prop<Node> suitor;
    Int count = 0;
    Bool fin = False;
    G.match = NIL;

    While (!fin) {
        G.suitor = NIL;
        // Phase 1: every unmatched boy proposes to his unmatched
        // neighbor girls; one concurrent write per girl wins.
        Foreach (b: G.Nodes)[b.is_boy && b.match == NIL] {
            Foreach (g: b.Nbrs)[g.match == NIL] {
                g.suitor = b;
            }
        }
        fin = !Exist(g: G.Nodes)[!g.is_boy && g.suitor != NIL];
        // Phase 2: each proposed-to girl accepts one suitor by writing
        // her ID back to him; one write per boy wins.
        Foreach (g: G.Nodes)[!g.is_boy && g.suitor != NIL] {
            Node b = g.suitor;
            b.suitor = g;
        }
        // Phase 3: boys finalize and notify the matched girl.
        Foreach (b: G.Nodes)[b.is_boy && b.match == NIL && b.suitor != NIL] {
            Node g = b.suitor;
            b.match = g;
            g.match = b;
            count += 1;
        }
    }
    Return count;
}
`

// BC is Approximate Betweenness Centrality as in the SNAP library and
// the paper's Fig. 4: K rounds of forward-BFS sigma accumulation and
// reverse-BFS delta accumulation from random sources.
const BC = `// Approximate Betweenness Centrality (paper Fig. 4).
Procedure bc_approx(G: Graph, K: Int, BC: Node_Prop<Double>)
{
    Node_Prop<Double> sigma;
    Node_Prop<Double> delta;
    G.BC = 0.0;
    Int k = 0;
    While (k < K) {
        Node s = G.PickRandom();
        G.sigma = 0.0;
        G.delta = 0.0;
        s.sigma = 1.0;
        InBFS (v: G.Nodes From s) {
            v.sigma += Sum(w: v.UpNbrs)(w.sigma);
        }
        InReverse {
            v.delta = Sum(w: v.DownNbrs)((v.sigma / w.sigma) * (1.0 + w.delta));
            v.BC += v.delta;
        }
        k = k + 1;
    }
}
`

// ByName maps algorithm short names to their Green-Marl sources, in the
// paper's presentation order.
var ByName = map[string]string{
	"avgteen":     AvgTeen,
	"pagerank":    PageRank,
	"conductance": Conductance,
	"sssp":        SSSP,
	"bipartite":   Bipartite,
	"bc":          BC,
}

// Names lists the algorithms in the paper's order.
var Names = []string{"avgteen", "pagerank", "conductance", "sssp", "bipartite", "bc"}
