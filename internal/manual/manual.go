// Package manual contains hand-written Pregel implementations of the
// five algorithms the paper codes natively for GPS (its Table 2 right
// column): Average Teenage Followers, PageRank, Conductance, SSSP, and
// Random Bipartite Matching. (Approximate Betweenness Centrality has no
// manual implementation — the paper calls it prohibitively difficult.)
//
// These are the Figure 6 baselines. They are written the way a GPS
// programmer writes them, including the two hand-tunings the paper notes
// the compiler does not apply: execution state keyed off the superstep
// number instead of broadcast global objects, and voteToHalt() in SSSP
// so converged vertices are skipped. Message schemas intentionally match
// the compiler-generated programs so network I/O is comparable
// byte-for-byte.
package manual

import (
	"math"

	"gmpregel/internal/graph"
	"gmpregel/internal/pregel"
)

// AvgTeen is the manual Pregel job for Average Teenage Followers.
// Superstep 0: teenagers message their followees; superstep 1: count
// messages and contribute to the S/C aggregators; superstep 2 (master):
// finalize the average and halt.
type AvgTeen struct {
	K       int64
	Age     []int64
	TeenCnt []int64
	Avg     float64
}

// Schema declares one empty-payload message type and two sum
// aggregators.
func (j *AvgTeen) Schema() pregel.Schema {
	return pregel.Schema{
		MessagePayloadBytes: []int{0},
		Aggregators: []pregel.AggSpec{
			{Name: "S", Kind: pregel.AggKindInt, Op: pregel.AggSum},
			{Name: "C", Kind: pregel.AggKindInt, Op: pregel.AggSum},
		},
	}
}

// MasterCompute finalizes on superstep 2.
func (j *AvgTeen) MasterCompute(mc *pregel.MasterContext) {
	if mc.Superstep() == 2 {
		s := mc.AggInt(0)
		c := mc.AggInt(1)
		if c == 0 {
			j.Avg = 0
		} else {
			j.Avg = float64(s) / float64(c)
		}
		mc.ReturnFloat(j.Avg)
		mc.Halt()
	}
}

// VertexCompute implements the two vertex-parallel phases.
func (j *AvgTeen) VertexCompute(vc *pregel.VertexContext) {
	v := vc.ID()
	switch vc.Superstep() {
	case 0:
		if j.Age[v] >= 13 && j.Age[v] <= 19 {
			vc.SendToAllNbrs(pregel.Msg{})
		}
	case 1:
		j.TeenCnt[v] = int64(len(vc.Messages()))
		if j.Age[v] > j.K {
			vc.AggInt(0, j.TeenCnt[v])
			vc.AggInt(1, 1)
		}
	}
}

// GatherEligible: only superstep 0 pushes messages (teens to their
// followees), with an empty payload derivable from the sender's age.
func (j *AvgTeen) GatherEligible(superstep int) bool { return superstep == 0 }

// Gather re-derives superstep 0's send: an (empty) message exists on
// every out-edge of a teenage sender.
func (j *AvgTeen) Gather(gc *pregel.GatherContext, src graph.NodeID, edge int64) (pregel.Msg, bool) {
	if j.Age[src] >= 13 && j.Age[src] <= 19 {
		return pregel.Msg{}, true
	}
	return pregel.Msg{}, false
}

// PageRank is the manual Pregel job for damped PageRank. Superstep 0
// initializes ranks; every later superstep receives the previous
// round's contributions, computes the new rank and the L1 delta, and
// sends the next round's contributions (the last round's sends dangle
// and are dropped, as in hand-written GPS code).
type PageRank struct {
	Eps     float64
	D       float64
	MaxIter int
	PR      []float64
}

// Schema declares the single 8-byte contribution message and the diff
// aggregator.
func (j *PageRank) Schema() pregel.Schema {
	return pregel.Schema{
		MessagePayloadBytes: []int{8},
		Aggregators: []pregel.AggSpec{
			{Name: "diff", Kind: pregel.AggKindFloat, Op: pregel.AggSum},
		},
	}
}

// MasterCompute checks convergence once the first full iteration has
// been folded.
func (j *PageRank) MasterCompute(mc *pregel.MasterContext) {
	s := mc.Superstep()
	if s < 3 {
		return
	}
	diff := mc.AggFloat(0)
	iters := s - 2
	if !(diff > j.Eps && iters < j.MaxIter) {
		mc.Halt()
	}
}

// VertexCompute implements init / send / receive-compute-send.
func (j *PageRank) VertexCompute(vc *pregel.VertexContext) {
	v := vc.ID()
	n := float64(vc.NumNodes())
	s := vc.Superstep()
	if s == 0 {
		j.PR[v] = 1 / n
		return
	}
	if s >= 2 {
		sum := 0.0
		for _, m := range vc.Messages() {
			sum += m.Float(0)
		}
		val := (1-j.D)/n + j.D*sum
		d := val - j.PR[v]
		if d < 0 {
			d = -d
		}
		vc.AggFloat(0, d)
		j.PR[v] = val
	}
	var m pregel.Msg
	m.SetFloat(0, j.PR[v]/float64(vc.OutDegree()))
	vc.SendToAllNbrs(m)
}

// GatherEligible: superstep 0 only initializes (no sends); every later
// superstep sends PR/outdeg to all out-neighbors, and PR is not
// rewritten after the send, so the payload is derivable from the
// sender's post-compute state.
func (j *PageRank) GatherEligible(superstep int) bool { return superstep >= 1 }

// Gather re-derives the contribution src pushed along one out-edge.
func (j *PageRank) Gather(gc *pregel.GatherContext, src graph.NodeID, edge int64) (pregel.Msg, bool) {
	var m pregel.Msg
	m.SetFloat(0, j.PR[src]/float64(gc.OutDegree(src)))
	return m, true
}

// Conductance is the manual Pregel job for subset conductance. It
// builds incoming-neighbor lists with the standard two-superstep ID
// exchange, then counts boundary-crossing edges by messaging along
// in-edges, exactly as a GPS programmer implements "count my out-edges
// whose head is outside the set".
type Conductance struct {
	Num    int64
	Member []int64
	Result float64

	inNbrs    [][]graph.NodeID
	din, dout int64
}

// Schema declares the 4-byte ID message, the empty crossing message,
// and the three sum aggregators.
func (j *Conductance) Schema() pregel.Schema {
	return pregel.Schema{
		MessagePayloadBytes: []int{4, 0},
		Aggregators: []pregel.AggSpec{
			{Name: "Din", Kind: pregel.AggKindInt, Op: pregel.AggSum},
			{Name: "Dout", Kind: pregel.AggKindInt, Op: pregel.AggSum},
			{Name: "Cross", Kind: pregel.AggKindInt, Op: pregel.AggSum},
		},
	}
}

// MasterCompute allocates shared state on superstep 0 (the master runs
// single-threaded before any vertex) and finalizes the conductance on
// superstep 3.
func (j *Conductance) MasterCompute(mc *pregel.MasterContext) {
	if mc.Superstep() == 0 {
		j.inNbrs = make([][]graph.NodeID, mc.NumNodes())
	}
	if mc.Superstep() == 2 {
		// Aggregators are per-superstep: snapshot the degree sums
		// contributed during superstep 1 before they are replaced.
		j.din = mc.AggInt(0)
		j.dout = mc.AggInt(1)
	}
	if mc.Superstep() == 3 {
		din := j.din
		dout := j.dout
		// Cross was contributed during superstep 2.
		cross := mc.AggInt(2)
		m := din
		if dout < din {
			m = dout
		}
		switch {
		case m == 0 && cross == 0:
			j.Result = 0
		case m == 0:
			j.Result = inf()
		default:
			j.Result = float64(cross) / float64(m)
		}
		mc.ReturnFloat(j.Result)
		mc.Halt()
	}
}

func inf() float64 { return math.Inf(1) }

// VertexCompute implements the three vertex-parallel phases.
func (j *Conductance) VertexCompute(vc *pregel.VertexContext) {
	v := vc.ID()
	switch vc.Superstep() {
	case 0:
		var m pregel.Msg
		m.SetNode(0, v)
		m.Type = 0
		vc.SendToAllNbrs(m)
	case 1:
		for _, m := range vc.Messages() {
			j.inNbrs[v] = append(j.inNbrs[v], m.Node(0))
		}
		deg := int64(vc.OutDegree())
		if j.Member[v] == j.Num {
			vc.AggInt(0, deg)
		} else {
			vc.AggInt(1, deg)
			// Tell in-neighbors that this head vertex is outside the
			// set; inside tails will count these as crossing edges.
			for _, src := range j.inNbrs[v] {
				vc.Send(src, pregel.Msg{Type: 1})
			}
		}
	case 2:
		if j.Member[v] == j.Num {
			vc.AggInt(2, int64(len(vc.Messages())))
		}
	}
}

// GatherEligible: superstep 0's ID broadcast is the only push phase
// whose payload is a pure function of the sender (its own ID);
// superstep 1's crossing notifications go to in-neighbors and are not
// gather-derivable.
func (j *Conductance) GatherEligible(superstep int) bool { return superstep == 0 }

// Gather re-derives the superstep-0 ID exchange.
func (j *Conductance) Gather(gc *pregel.GatherContext, src graph.NodeID, edge int64) (pregel.Msg, bool) {
	var m pregel.Msg
	m.SetNode(0, src)
	m.Type = 0
	return m, true
}

// SSSP is the manual Pregel job for single-source shortest paths — the
// original Pregel paper's running example, with voteToHalt so converged
// vertices are skipped (the hand-tuning the paper says the compiler
// lacks, §5.2).
type SSSP struct {
	Root graph.NodeID
	Len  []int64 // by out-edge index
	Dist []int64
}

// Schema declares the single 8-byte candidate-distance message.
func (j *SSSP) Schema() pregel.Schema {
	return pregel.Schema{MessagePayloadBytes: []int{8}}
}

// MasterCompute is empty: termination is by quiescence (all vertices
// halted, no messages in flight).
func (j *SSSP) MasterCompute(mc *pregel.MasterContext) {}

// VertexCompute initializes at superstep 0 (the root immediately
// relaxes its out-edges, as in the original Pregel paper), then relaxes
// incoming candidates and propagates improvements, voting to halt each
// step.
func (j *SSSP) VertexCompute(vc *pregel.VertexContext) {
	v := vc.ID()
	improved := false
	if vc.Superstep() == 0 {
		if v == j.Root {
			j.Dist[v] = 0
			improved = true
		} else {
			j.Dist[v] = maxInt64
		}
	}
	for _, m := range vc.Messages() {
		if d := m.Int(0); d < j.Dist[v] {
			j.Dist[v] = d
			improved = true
		}
	}
	if improved {
		lo, hi := vc.OutEdgeRange()
		nbrs := vc.OutNbrs()
		for e := lo; e < hi; e++ {
			var m pregel.Msg
			m.SetInt(0, j.Dist[v]+j.Len[e])
			vc.Send(nbrs[e-lo], m)
		}
	}
	vc.VoteToHalt()
}

const maxInt64 = int64(^uint64(0) >> 1)

// Bipartite is the manual Pregel job for random bipartite matching: the
// paper's three-phase handshake (propose / accept / finalize+notify),
// keyed off the superstep number modulo the round length.
type Bipartite struct {
	IsBoy  []bool
	Match  []graph.NodeID
	Count  int64
	suitor []graph.NodeID
	// lastRoundEmpty remembers that the previous accept phase saw no
	// proposals, so the matching is maximal and the job can halt at the
	// next round boundary.
	lastRoundEmpty bool
}

// Message types: 0 propose (boy→girl), 1 accept (girl→boy),
// 2 notify (boy→girl), each carrying the sender ID.
func (j *Bipartite) Schema() pregel.Schema {
	return pregel.Schema{
		MessagePayloadBytes: []int{4, 4, 4},
		Aggregators: []pregel.AggSpec{
			{Name: "progress", Kind: pregel.AggKindBool, Op: pregel.AggOr},
			{Name: "count", Kind: pregel.AggKindInt, Op: pregel.AggSum},
		},
	}
}

// phase maps a superstep to its position in the 4-step round: 0 propose,
// 1 accept, 2 finalize, 3 notify. Superstep 0 is initialization.
func phase(superstep int) int { return (superstep - 1) % 4 }

// MasterCompute allocates shared state, accumulates the matched count,
// and halts at a round boundary once a full round made no proposals.
func (j *Bipartite) MasterCompute(mc *pregel.MasterContext) {
	s := mc.Superstep()
	if s == 0 {
		j.suitor = make([]graph.NodeID, mc.NumNodes())
		return
	}
	switch phase(s) {
	case 2:
		// Aggregator from the accept phase: did any girl see a suitor?
		if !mc.AggBool(0) {
			j.lastRoundEmpty = true
		} else {
			j.lastRoundEmpty = false
		}
	case 3:
		j.Count += mc.AggInt(1)
	case 0:
		if s > 1 && j.lastRoundEmpty {
			mc.ReturnInt(j.Count)
			mc.Halt()
		}
	}
}

// VertexCompute implements init + the four round phases.
func (j *Bipartite) VertexCompute(vc *pregel.VertexContext) {
	v := vc.ID()
	s := vc.Superstep()
	if s == 0 {
		j.Match[v] = graph.NilNode
		return
	}
	switch phase(s) {
	case 0: // propose
		j.suitor[v] = graph.NilNode
		if j.IsBoy[v] && j.Match[v] == graph.NilNode {
			var m pregel.Msg
			m.SetNode(0, v)
			m.Type = 0
			vc.SendToAllNbrs(m)
		}
	case 1: // accept
		for _, m := range vc.Messages() {
			if j.Match[v] == graph.NilNode {
				j.suitor[v] = m.Node(0)
			}
		}
		if !j.IsBoy[v] && j.suitor[v] != graph.NilNode {
			vc.AggBool(0, true)
			var m pregel.Msg
			m.SetNode(0, v)
			m.Type = 1
			vc.Send(j.suitor[v], m)
		}
	case 2: // finalize
		for _, m := range vc.Messages() {
			j.suitor[v] = m.Node(0)
		}
		if j.IsBoy[v] && j.Match[v] == graph.NilNode && j.suitor[v] != graph.NilNode {
			g := j.suitor[v]
			j.Match[v] = g
			var m pregel.Msg
			m.SetNode(0, v)
			m.Type = 2
			vc.Send(g, m)
			vc.AggInt(1, 1)
		}
	case 3: // notify
		for _, m := range vc.Messages() {
			j.Match[v] = m.Node(0)
		}
	}
}
