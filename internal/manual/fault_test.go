package manual

import (
	"reflect"
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/pregel"
)

func modRecovery(st pregel.Stats) pregel.Stats {
	st.Checkpoints, st.CheckpointBytes, st.Recoveries, st.RecoveredSupersteps = 0, 0, 0, 0
	return st
}

// SSSP with unit edge lengths is BFS; a worker crash at a non-checkpoint
// superstep must recover to bit-identical distances and stats.
func TestSSSPFaultRecoveryBitIdentical(t *testing.T) {
	const n = 100
	g := gen.Ring(n)
	lens := make([]int64, g.NumEdges())
	for i := range lens {
		lens[i] = 1
	}
	run := func(cfg pregel.Config) ([]int64, pregel.Stats) {
		j := &SSSP{Root: 0, Len: lens, Dist: make([]int64, n)}
		st, err := pregel.Run(g, j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return j.Dist, st
	}
	base := pregel.Config{NumWorkers: 4, Seed: 11}
	dist, st := run(base)

	faulty := base
	faulty.CheckpointEvery = 4
	faulty.Faults = pregel.FaultPlan{{Superstep: 7, Worker: 1}}
	fDist, fst := run(faulty)

	if !reflect.DeepEqual(dist, fDist) {
		t.Error("BFS distances differ after fault recovery")
	}
	if a, b := modRecovery(st), modRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ:\nfault-free: %+v\nfaulty:     %+v", a, b)
	}
	if fst.Recoveries != 1 || fst.CheckpointBytes == 0 {
		t.Errorf("recovery accounting: %+v", fst)
	}
}

// PageRank crash-and-recover, including a routing-phase crash.
func TestPageRankFaultRecoveryBitIdentical(t *testing.T) {
	const n = 80
	g := gen.TwitterLike(n, 5, 17)
	run := func(cfg pregel.Config) ([]float64, pregel.Stats) {
		j := &PageRank{Eps: 1e-9, D: 0.85, MaxIter: 12, PR: make([]float64, n)}
		st, err := pregel.Run(g, j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return j.PR, st
	}
	base := pregel.Config{NumWorkers: 4, Seed: 9}
	pr, st := run(base)

	for _, fp := range []pregel.FaultPlan{
		{{Superstep: 6, Worker: 2}},
		{{Superstep: 5, Worker: 3, Phase: pregel.FaultRouting}},
	} {
		faulty := base
		faulty.CheckpointEvery = 3
		faulty.Faults = fp
		fPR, fst := run(faulty)
		if !reflect.DeepEqual(pr, fPR) {
			t.Errorf("%v: PageRank vectors differ after recovery", fp)
		}
		if a, b := modRecovery(st), modRecovery(fst); !reflect.DeepEqual(a, b) {
			t.Errorf("%v: stats differ:\n%+v\n%+v", fp, a, b)
		}
		if fst.Recoveries != 1 {
			t.Errorf("%v: Recoveries = %d, want 1", fp, fst.Recoveries)
		}
	}
}

// Bipartite matching exercises the master-side accumulators
// (Count, lastRoundEmpty) and the random-free handshake state across a
// rollback that spans a round boundary.
func TestBipartiteFaultRecoveryBitIdentical(t *testing.T) {
	const boys, girls = 30, 30
	n := boys + girls
	var edges []graph.Edge
	for b := 0; b < boys; b++ {
		for k := 0; k < 3; k++ {
			gIdx := graph.NodeID(boys + (b*7+k*11)%girls)
			edges = append(edges, graph.Edge{Src: graph.NodeID(b), Dst: gIdx})
			edges = append(edges, graph.Edge{Src: gIdx, Dst: graph.NodeID(b)})
		}
	}
	g := graph.FromEdges(n, edges)
	isBoy := make([]bool, n)
	for b := 0; b < boys; b++ {
		isBoy[b] = true
	}
	run := func(cfg pregel.Config) ([]graph.NodeID, int64, pregel.Stats) {
		j := &Bipartite{IsBoy: isBoy, Match: make([]graph.NodeID, n)}
		st, err := pregel.Run(g, j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return j.Match, j.Count, st
	}
	base := pregel.Config{NumWorkers: 3, Seed: 6}
	match, count, st := run(base)

	faulty := base
	faulty.CheckpointEvery = 2
	faulty.Faults = pregel.FaultPlan{{Superstep: 5, Worker: 0}}
	fMatch, fCount, fst := run(faulty)
	if !reflect.DeepEqual(match, fMatch) || count != fCount {
		t.Error("matching differs after recovery")
	}
	if a, b := modRecovery(st), modRecovery(fst); !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ:\n%+v\n%+v", a, b)
	}
}

// Snapshot/Restore of each manual job round-trips its mutable state.
func TestManualSnapshotsRoundTrip(t *testing.T) {
	ct := &Conductance{Num: 1, inNbrs: [][]graph.NodeID{{2, 3}, nil}, din: 4, dout: 5, Result: 0.5}
	snap := ct.SnapshotState()
	ct2 := &Conductance{Num: 1}
	ct2.RestoreState(snap)
	if !reflect.DeepEqual(ct.inNbrs, ct2.inNbrs) || ct2.din != 4 || ct2.dout != 5 || ct2.Result != 0.5 {
		t.Error("Conductance snapshot did not round-trip")
	}

	av := &AvgTeen{TeenCnt: []int64{1, 2, 3}, Avg: 2.5}
	av2 := &AvgTeen{TeenCnt: make([]int64, 3)}
	dst := av2.TeenCnt
	av2.RestoreState(av.SnapshotState())
	if !reflect.DeepEqual(av2.TeenCnt, av.TeenCnt) || av2.Avg != 2.5 {
		t.Error("AvgTeen snapshot did not round-trip")
	}
	// Same-length restores write through the existing slice so callers
	// holding a reference observe the rewind.
	if &dst[0] != &av2.TeenCnt[0] {
		t.Error("restore replaced a same-length output slice")
	}
}
