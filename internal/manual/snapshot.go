package manual

import (
	"bytes"
	"encoding/gob"

	"gmpregel/internal/graph"
)

// The manual jobs implement pregel.Checkpointable so fault-injected runs
// recover exactly like the compiler-generated programs. Snapshots are
// gob-encoded mirror structs covering every field a superstep mutates.
// Restores copy element-wise into the existing output slices (callers
// hold references to them), only replacing a slice when its length
// changed — which for these jobs means a corrupt snapshot, reported by
// panicking (the engine converts the panic into a recovery error).

func gobSnapshot(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic("manual: snapshot encode failed: " + err.Error())
	}
	return buf.Bytes()
}

func gobRestore(b []byte, v any) {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		panic("manual: snapshot decode failed: " + err.Error())
	}
}

func restoreInto[T any](dst *[]T, src []T) {
	if len(*dst) == len(src) {
		copy(*dst, src)
		return
	}
	*dst = src
}

type avgTeenSnap struct {
	TeenCnt []int64
	Avg     float64
}

// SnapshotState captures the per-vertex teen counts and the final average.
func (j *AvgTeen) SnapshotState() []byte {
	return gobSnapshot(avgTeenSnap{j.TeenCnt, j.Avg})
}

// RestoreState rewinds to a prior SnapshotState.
func (j *AvgTeen) RestoreState(b []byte) {
	var s avgTeenSnap
	gobRestore(b, &s)
	restoreInto(&j.TeenCnt, s.TeenCnt)
	j.Avg = s.Avg
}

type pageRankSnap struct {
	PR []float64
}

// SnapshotState captures the rank vector.
func (j *PageRank) SnapshotState() []byte { return gobSnapshot(pageRankSnap{j.PR}) }

// RestoreState rewinds to a prior SnapshotState.
func (j *PageRank) RestoreState(b []byte) {
	var s pageRankSnap
	gobRestore(b, &s)
	restoreInto(&j.PR, s.PR)
}

type conductanceSnap struct {
	InNbrs    [][]graph.NodeID
	Din, Dout int64
	Result    float64
}

// SnapshotState captures the collected in-neighbor lists, the snapshotted
// degree sums, and the result.
func (j *Conductance) SnapshotState() []byte {
	return gobSnapshot(conductanceSnap{j.inNbrs, j.din, j.dout, j.Result})
}

// RestoreState rewinds to a prior SnapshotState.
func (j *Conductance) RestoreState(b []byte) {
	var s conductanceSnap
	gobRestore(b, &s)
	j.inNbrs, j.din, j.dout, j.Result = s.InNbrs, s.Din, s.Dout, s.Result
}

type ssspSnap struct {
	Dist []int64
}

// SnapshotState captures the distance vector.
func (j *SSSP) SnapshotState() []byte { return gobSnapshot(ssspSnap{j.Dist}) }

// RestoreState rewinds to a prior SnapshotState.
func (j *SSSP) RestoreState(b []byte) {
	var s ssspSnap
	gobRestore(b, &s)
	restoreInto(&j.Dist, s.Dist)
}

type bipartiteSnap struct {
	Match          []graph.NodeID
	Suitor         []graph.NodeID
	Count          int64
	LastRoundEmpty bool
}

// SnapshotState captures matches, pending suitors, the matched count, and
// the round-progress flag.
func (j *Bipartite) SnapshotState() []byte {
	return gobSnapshot(bipartiteSnap{j.Match, j.suitor, j.Count, j.lastRoundEmpty})
}

// RestoreState rewinds to a prior SnapshotState.
func (j *Bipartite) RestoreState(b []byte) {
	var s bipartiteSnap
	gobRestore(b, &s)
	restoreInto(&j.Match, s.Match)
	j.suitor, j.Count, j.lastRoundEmpty = s.Suitor, s.Count, s.LastRoundEmpty
}
