package manual

import (
	"encoding/binary"

	"gmpregel/internal/graph"
	"gmpregel/internal/pregel"
)

// BFS is the manual Pregel job for breadth-first level labeling from a
// root — the canonical direction-optimization workload (Beamer et al.):
// its frontier starts as a single vertex, swells to a large fraction of
// the graph within a few supersteps, and collapses again, so a
// per-superstep push/pull choice pays off where fixed-direction
// execution cannot. Every vertex votes to halt every step; frontier
// members are re-woken by messages, exactly like hand-written GPS BFS.
type BFS struct {
	Root graph.NodeID
	// Level[v] is v's BFS depth, -1 while unvisited.
	Level []int64
}

// Schema declares the single empty-payload frontier message.
func (j *BFS) Schema() pregel.Schema {
	return pregel.Schema{MessagePayloadBytes: []int{0}}
}

// MasterCompute is empty: termination is by quiescence.
func (j *BFS) MasterCompute(mc *pregel.MasterContext) {}

// VertexCompute labels newly reached vertices with the superstep number
// and forwards the frontier.
func (j *BFS) VertexCompute(vc *pregel.VertexContext) {
	v := vc.ID()
	s := vc.Superstep()
	if s == 0 {
		if v == j.Root {
			j.Level[v] = 0
			vc.SendToAllNbrs(pregel.Msg{})
		} else {
			j.Level[v] = -1
		}
		vc.VoteToHalt()
		return
	}
	if j.Level[v] < 0 && len(vc.Messages()) > 0 {
		j.Level[v] = int64(s)
		vc.SendToAllNbrs(pregel.Msg{})
	}
	vc.VoteToHalt()
}

// GatherEligible: every superstep's sends are gather-derivable — a
// vertex pushes (an empty message to all out-neighbors) exactly when it
// set its level this superstep, and levels are never rewritten, so
// Level[src] == superstep identifies this step's senders from
// post-compute state alone.
func (j *BFS) GatherEligible(superstep int) bool { return true }

// Gather re-derives the frontier message src pushed along one out-edge.
func (j *BFS) Gather(gc *pregel.GatherContext, src graph.NodeID, edge int64) (pregel.Msg, bool) {
	if j.Level[src] == int64(gc.Superstep()) {
		return pregel.Msg{}, true
	}
	return pregel.Msg{}, false
}

// SnapshotState serializes the level array so crash recovery under
// fault injection restores BFS exactly (Checkpointable).
func (j *BFS) SnapshotState() []byte {
	b := make([]byte, 8*len(j.Level))
	for i, l := range j.Level {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(l))
	}
	return b
}

// RestoreState restores the level array from a snapshot.
func (j *BFS) RestoreState(b []byte) {
	for i := range j.Level {
		j.Level[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}
