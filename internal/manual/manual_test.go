package manual

import (
	"math"
	"testing"

	"gmpregel/internal/graph"
	"gmpregel/internal/graph/gen"
	"gmpregel/internal/pregel"
	"gmpregel/internal/seq"
)

func TestManualAvgTeen(t *testing.T) {
	g := gen.Random(70, 350, 3)
	age := make([]int64, 70)
	for v := range age {
		age[v] = int64((v*11 + 3) % 65)
	}
	j := &AvgTeen{K: 30, Age: age, TeenCnt: make([]int64, 70)}
	st, err := pregel.Run(g, j, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantCnt, wantAvg := seq.AvgTeen(g, age, 30)
	for v := range wantCnt {
		if j.TeenCnt[v] != wantCnt[v] {
			t.Fatalf("teen_cnt[%d] = %d, want %d", v, j.TeenCnt[v], wantCnt[v])
		}
	}
	if math.Abs(j.Avg-wantAvg) > 1e-9 {
		t.Errorf("avg = %v, want %v", j.Avg, wantAvg)
	}
	if st.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", st.Supersteps)
	}
}

func TestManualPageRank(t *testing.T) {
	g := gen.TwitterLike(150, 5, 4)
	j := &PageRank{Eps: 1e-9, D: 0.85, MaxIter: 25, PR: make([]float64, 150)}
	if _, err := pregel.Run(g, j, pregel.Config{NumWorkers: 4}); err != nil {
		t.Fatal(err)
	}
	want := seq.PageRank(g, 1e-9, 0.85, 25)
	for v := range want {
		if math.Abs(j.PR[v]-want[v]) > 1e-9 {
			t.Fatalf("pr[%d] = %v, want %v", v, j.PR[v], want[v])
		}
	}
}

func TestManualConductance(t *testing.T) {
	g := gen.Random(90, 600, 8)
	member := make([]int64, 90)
	for v := range member {
		member[v] = int64(v % 4)
	}
	j := &Conductance{Num: 2, Member: member}
	st, err := pregel.Run(g, j, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Conductance(g, member, 2)
	if math.Abs(j.Result-want) > 1e-12 {
		t.Errorf("conductance = %v, want %v", j.Result, want)
	}
	if st.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3", st.Supersteps)
	}
}

func TestManualConductanceZeroDenominator(t *testing.T) {
	g := gen.Ring(6)
	member := []int64{1, 1, 1, 1, 1, 1} // everything inside: Dout = 0
	j := &Conductance{Num: 1, Member: member}
	if _, err := pregel.Run(g, j, pregel.Config{NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	if j.Result != 0 {
		t.Errorf("no crossing edges: conductance = %v, want 0", j.Result)
	}
	member2 := []int64{1, 0, 0, 0, 0, 0} // inside has degree 1, outside 5
	j2 := &Conductance{Num: 1, Member: member2}
	if _, err := pregel.Run(g, j2, pregel.Config{NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	if want := seq.Conductance(g, member2, 1); j2.Result != want {
		t.Errorf("conductance = %v, want %v", j2.Result, want)
	}
}

func TestManualSSSP(t *testing.T) {
	g := gen.WebLike(8, 6, 2)
	m := g.NumEdges()
	length := make([]int64, m)
	for e := range length {
		length[e] = int64(1 + (e*13)%9)
	}
	j := &SSSP{Root: 0, Len: length, Dist: make([]int64, g.NumNodes())}
	st, err := pregel.Run(g, j, pregel.Config{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.SSSP(g, 0, length)
	for v := range want {
		if j.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, j.Dist[v], want[v])
		}
	}
	// voteToHalt must have skipped converged vertices: total compute
	// calls should be well under supersteps × n.
	if st.VertexCalls >= int64(st.Supersteps)*int64(g.NumNodes()) {
		t.Errorf("voteToHalt seems ineffective: %d calls over %d supersteps × %d nodes",
			st.VertexCalls, st.Supersteps, g.NumNodes())
	}
}

func TestManualBipartite(t *testing.T) {
	const boys, girls = 80, 90
	g := gen.Bipartite(boys, girls, 3, 17)
	isBoy := make([]bool, boys+girls)
	for v := 0; v < boys; v++ {
		isBoy[v] = true
	}
	j := &Bipartite{IsBoy: isBoy, Match: make([]graph.NodeID, boys+girls)}
	st, err := pregel.Run(g, j, pregel.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if msg := seq.ValidateMatching(g, isBoy, j.Match); msg != "" {
		t.Fatalf("invalid matching: %s", msg)
	}
	var pairs int64
	for v := 0; v < boys; v++ {
		if j.Match[v] != graph.NilNode {
			pairs++
		}
	}
	if j.Count != pairs {
		t.Errorf("count = %d, want %d", j.Count, pairs)
	}
	if st.ReturnedInt != pairs {
		t.Errorf("returned %d, want %d", st.ReturnedInt, pairs)
	}
	greedy := seq.GreedyMatching(g, isBoy)
	if pairs*2 < greedy.Count {
		t.Errorf("matching size %d below half of greedy %d", pairs, greedy.Count)
	}
}

func TestManualSSSPUnreachable(t *testing.T) {
	// Two disconnected rings; distances in the second stay at infinity.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	g := b.Build()
	length := make([]int64, g.NumEdges())
	for e := range length {
		length[e] = 1
	}
	j := &SSSP{Root: 0, Len: length, Dist: make([]int64, 6)}
	if _, err := pregel.Run(g, j, pregel.Config{NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	for v := 3; v < 6; v++ {
		if j.Dist[v] != maxInt64 {
			t.Errorf("dist[%d] = %d, want INF", v, j.Dist[v])
		}
	}
}
