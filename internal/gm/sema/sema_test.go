package sema

import (
	"strings"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	p, err := parser.ParseProcedure(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(p)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	in, err := check(t, src)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return in
}

func TestAllPaperAlgorithmsPassSema(t *testing.T) {
	for name, src := range algorithms.ByName {
		t.Run(name, func(t *testing.T) {
			mustCheck(t, src)
		})
	}
}

func TestSymbolsAndTypes(t *testing.T) {
	in := mustCheck(t, `Procedure f(G: Graph, age: Node_Prop<Int>, K: Int) : Float {
		Int S = 0;
		Foreach (n: G.Nodes) {
			If (n.age > K) { S += 1; }
		}
		Return 1.0 * S;
	}`)
	if in.Graph == nil || in.Graph.Name != "G" {
		t.Fatal("graph param not found")
	}
	if len(in.Props) != 1 || in.Props[0].Name != "age" || in.Props[0].ElemKind() != ast.TInt {
		t.Errorf("props = %+v", in.Props)
	}
	// K (param) and S (local) are sequential scalars.
	names := []string{}
	for _, s := range in.Scalars {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "K,S" {
		t.Errorf("scalars = %v", names)
	}
}

func TestIteratorResolution(t *testing.T) {
	in := mustCheck(t, `Procedure f(G: Graph, x: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) { t.x += 1; }
		}
	}`)
	var outer, inner *Symbol
	ast.WalkStmts(in.Proc.Body, func(s ast.Stmt) bool {
		if f, ok := s.(*ast.Foreach); ok {
			if f.Kind == ast.IterNodes {
				outer = in.IterOf[f]
			} else {
				inner = in.IterOf[f]
			}
		}
		return true
	})
	if outer == nil || inner == nil {
		t.Fatal("iterators not recorded")
	}
	if inner.IterSource != outer {
		t.Errorf("inner source = %+v, want outer iterator", inner.IterSource)
	}
}

func TestEdgeVarBinding(t *testing.T) {
	in := mustCheck(t, `Procedure f(G: Graph, len: Edge_Prop<Int>, d: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (s: n.Nbrs) {
				Edge e = s.ToEdge();
				s.d min= e.len;
			}
		}
	}`)
	var edgeSym *Symbol
	for _, syms := range in.DeclOf {
		for _, s := range syms {
			if s.Kind == SymEdgeVar {
				edgeSym = s
			}
		}
	}
	if edgeSym == nil || edgeSym.EdgeOf == nil || edgeSym.EdgeOf.Name != "s" {
		t.Fatalf("edge var binding wrong: %+v", edgeSym)
	}
}

func TestBulkAssignGraphAsNode(t *testing.T) {
	mustCheck(t, `Procedure f(G: Graph, root: Node, dist: Node_Prop<Int>) {
		G.dist = (G == root) ? 0 : INF;
	}`)
}

func TestInfAdoptsContextType(t *testing.T) {
	in := mustCheck(t, `Procedure f(G: Graph, dist: Node_Prop<Int>) {
		G.dist = INF;
		Double x = 0.0;
		x = INF;
	}`)
	kinds := []ast.TypeKind{}
	ast.WalkExprs(in.Proc.Body, func(e ast.Expr) bool {
		if _, ok := e.(*ast.InfLit); ok {
			kinds = append(kinds, in.KindOf(e))
		}
		return true
	})
	if len(kinds) != 2 || kinds[0] != ast.TInt || kinds[1] != ast.TDouble {
		t.Errorf("INF kinds = %v, want [Int Double]", kinds)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no graph", `Procedure f(K: Int) {}`, "no Graph parameter"},
		{"two graphs", `Procedure f(G: Graph, H: Graph) {}`, "multiple Graph"},
		{"undefined", `Procedure f(G: Graph) { x = 1; }`, "undefined"},
		{"shadowing", `Procedure f(G: Graph) { Int x = 0; Foreach (x: G.Nodes) {} }`, "redeclared"},
		{"assign iterator", `Procedure f(G: Graph) { Foreach (n: G.Nodes) { n = n; } }`, "iterator"},
		{"bool arith", `Procedure f(G: Graph) { Int x = True + 1; }`, "numeric"},
		{"bad compare", `Procedure f(G: Graph, s: Node) { Bool b = s < s; }`, "== and !="},
		{"mod float", `Procedure f(G: Graph) { Double d = 1.5 % 2.0; }`, "integer"},
		{"nbr of scalar", `Procedure f(G: Graph) { Int k = 0; Foreach (n: G.Nodes) {} }`, ""},
		{"nbrs of int", `Procedure f(G: Graph, k: Int) { Foreach (t: k.Nbrs) {} }`, "node-valued"},
		{"prop through scalar", `Procedure f(G: Graph, p: Node_Prop<Int>, k: Int) { Int x = k.p; }`, "non-node"},
		{"edge prop via node", `Procedure f(G: Graph, w: Edge_Prop<Int>) { Foreach (n: G.Nodes) { n.w = 1; } }`, "edge property"},
		{"while in parallel", `Procedure f(G: Graph) { Foreach (n: G.Nodes) { While (True) {} } }`, "parallel"},
		{"return in parallel", `Procedure f(G: Graph) : Int { Foreach (n: G.Nodes) { Return 1; } Return 0; }`, "parallel"},
		{"return without type", `Procedure f(G: Graph) { Return 1; }`, "no return type"},
		{"missing return value", `Procedure f(G: Graph) : Int { Return; }`, "missing return value"},
		{"upnbrs outside bfs", `Procedure f(G: Graph) { Foreach (n: G.Nodes) { Foreach (w: n.UpNbrs) {} } }`, "InBFS"},
		{"prop decl in parallel", `Procedure f(G: Graph) { Foreach (n: G.Nodes) { Node_Prop<Int> q; } }`, "sequential scope"},
		{"stray ToEdge", `Procedure f(G: Graph, w: Edge_Prop<Int>) { Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { Int x = t.ToEdge().w; } } }`, "Edge variable"},
		{"unknown method", `Procedure f(G: Graph) { Int x = G.Bogus(); }`, "unknown method"},
		{"ternary mismatch", `Procedure f(G: Graph, s: Node) { Int x = True ? s : 1; }`, "incompatible"},
		{"bad min= on bool", `Procedure f(G: Graph, b: Node_Prop<Bool>) { Foreach (n: G.Nodes) { n.b min= True; } }`, "numeric"},
		{"bad |= on int", `Procedure f(G: Graph) { Int x = 0; x |= 1; }`, "Bool"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.wantSub == "" {
				t.Skip("placeholder")
			}
			_, err := check(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParallelLocalsAreMarked(t *testing.T) {
	in := mustCheck(t, `Procedure f(G: Graph, pr: Node_Prop<Double>) {
		Double d = 0.5;
		Foreach (n: G.Nodes) {
			Double val = n.pr * d;
			n.pr = val;
		}
	}`)
	var seq, par int
	for _, syms := range in.DeclOf {
		for _, s := range syms {
			if s.Kind == SymScalar {
				if s.InParallel {
					par++
				} else {
					seq++
				}
			}
		}
	}
	if seq != 1 || par != 1 {
		t.Errorf("seq=%d par=%d, want 1 and 1", seq, par)
	}
}

func TestReduceTyping(t *testing.T) {
	in := mustCheck(t, `Procedure f(G: Graph, x: Node_Prop<Int>, y: Node_Prop<Double>) : Double {
		Int a = Count(n: G.Nodes)(n.x > 0);
		Bool b = Exist(n: G.Nodes)[n.x == 1];
		Double c = Avg(n: G.Nodes)(n.x);
		Int d = Sum(n: G.Nodes)(n.x);
		Double e = Sum(n: G.Nodes)(n.y);
		Return c + e;
	}`)
	_ = in
}

func TestSemaMoreErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"graph local", `Procedure f(G: Graph) { Graph H; }`, "cannot be declared locally"},
		{"edge param", `Procedure f(G: Graph, e: Edge) {}`, "Edge parameters"},
		{"prop init", `Procedure f(G: Graph) { Node_Prop<Int> p = 3; }`, "bulk assignment"},
		{"edge var seq", `Procedure f(G: Graph) { Edge e; }`, "neighbor iteration"},
		{"bad ToEdge target", `Procedure f(G: Graph, w: Edge_Prop<Int>) {
			Foreach (n: G.Nodes) { Edge e = n.ToEdge(); }
		}`, "neighbor iterator"},
		{"ToEdge of non-iter", `Procedure f(G: Graph, w: Edge_Prop<Int>, s: Node) {
			Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { Edge e = s.ToEdge(); } }
		}`, "neighbor iterator"},
		{"edge var init shape", `Procedure f(G: Graph) {
			Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { Edge e = t; } }
		}`, "ToEdge"},
		{"nbrs of graph", `Procedure f(G: Graph) { Foreach (t: G.Nbrs) {} }`, "node-valued"},
		{"nodes of node", `Procedure f(G: Graph, s: Node) { Foreach (n: s.Nodes) {} }`, "requires the graph"},
		{"inbfs on node", `Procedure f(G: Graph, s: Node) { InBFS (v: s.Nodes From s) {} }`, "graph"},
		{"inbfs in parallel", `Procedure f(G: Graph, s: Node) {
			Foreach (n: G.Nodes) { InBFS (v: G.Nodes From s) {} }
		}`, "sequential"},
		{"upnbrs wrong source", `Procedure f(G: Graph, s: Node, x: Node_Prop<Int>) {
			InBFS (v: G.Nodes From s) {
				Foreach (n: G.Nodes) { Foreach (w: n.UpNbrs) {} }
			}
		}`, ""},
		{"reduce bad source", `Procedure f(G: Graph, k: Int) { Int x = Sum(t: k.Nbrs)(1); }`, "node-valued"},
		{"avg non-numeric", `Procedure f(G: Graph, b: Node_Prop<Bool>) { Double d = Avg(n: G.Nodes)(n.b); }`, "numeric"},
		{"sum non-numeric", `Procedure f(G: Graph, b: Node_Prop<Bool>) { Int d = Sum(n: G.Nodes)(n.b); }`, "numeric"},
		{"all non-bool", `Procedure f(G: Graph, x: Node_Prop<Int>) { Bool b = All(n: G.Nodes)(n.x); }`, "Bool"},
		{"not on int", `Procedure f(G: Graph) { Bool b = !3; }`, "Bool"},
		{"neg on bool", `Procedure f(G: Graph) { Int x = -True; }`, "numeric"},
		{"seq For", `Procedure f(G: Graph) { For (n: G.Nodes) {} }`, "Pregel-compatible"},
		{"Id on graph", `Procedure f(G: Graph) { Int x = G.Id(); }`, "node method"},
		{"degree on graph", `Procedure f(G: Graph) { Int x = G.Degree(); }`, "node method"},
		{"numnodes on node", `Procedure f(G: Graph, s: Node) { Int x = s.NumNodes(); }`, "graph method"},
		{"pickrandom arg", `Procedure f(G: Graph) { Node s = G.PickRandom(1); }`, "no-argument"},
		{"if cond type", `Procedure f(G: Graph) { If (3) {} }`, "must be Bool"},
		{"while cond type", `Procedure f(G: Graph) { While (3) {} }`, "must be Bool"},
		{"filter type", `Procedure f(G: Graph) { Foreach (n: G.Nodes)(5) {} }`, "must be Bool"},
		{"bfs root type", `Procedure f(G: Graph) { InBFS (v: G.Nodes From 3) {} }`, "must be Node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.wantSub == "" {
				t.Skip("documented-only case")
			}
			_, err := check(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestSemaIdBuiltin(t *testing.T) {
	mustCheck(t, `Procedure f(G: Graph, x: Node_Prop<Int>) {
		Foreach (n: G.Nodes) { n.x = n.Id(); }
	}`)
}

// TestMultipleErrorsOneRun checks that Check accumulates every error in
// a single pass instead of stopping at the first one.
func TestMultipleErrorsOneRun(t *testing.T) {
	_, err := check(t, `Procedure f(G: Graph, val: Node_Prop<Int>) {
		Int x = undeclared1;
		y = 3;
		Foreach (n: G.Nodes) {
			n.missing = 2;
		}
	}`)
	if err == nil {
		t.Fatal("expected errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error is %T, want ErrorList", err)
	}
	if len(list) < 3 {
		t.Fatalf("want >=3 errors in one run, got %d: %v", len(list), err)
	}
	for _, sub := range []string{"undeclared1", "undefined: y", "missing"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("combined error %q missing %q", err, sub)
		}
	}
	// Distinct positions: each error points at its own source line.
	lines := map[int]bool{}
	for _, e := range list {
		lines[e.Pos.Line] = true
	}
	if len(lines) < 3 {
		t.Errorf("errors collapse onto %d lines: %v", len(lines), err)
	}
}
