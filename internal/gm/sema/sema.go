// Package sema resolves names and types in a Green-Marl procedure.
//
// It enforces the language subset's static rules: a single Graph
// parameter, no shadowing of visible names, property access only through
// node/edge/graph-valued expressions, neighbor iteration only over
// node-valued sources, ToEdge() only on neighbor iterators, and the type
// rules of arithmetic, comparisons, reductions, and (reduction)
// assignments. The compiler re-runs sema after every source-to-source
// transformation, so Info always describes the current tree.
package sema

import (
	"fmt"
	"strings"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/token"
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymGraph    SymKind = iota // the graph parameter
	SymScalar                  // Int/Long/Float/Double/Bool/Node variable
	SymNodeProp                // Node_Prop<T>
	SymEdgeProp                // Edge_Prop<T>
	SymEdgeVar                 // Edge local bound to a neighbor iterator's edge
	SymNodeIter                // Foreach/InBFS/Reduce iterator
)

var symKindNames = [...]string{"graph", "scalar", "node property", "edge property", "edge variable", "iterator"}

func (k SymKind) String() string { return symKindNames[k] }

// Symbol is a resolved name.
type Symbol struct {
	Name    string
	Kind    SymKind
	Type    *ast.Type // scalar type; full prop type for properties
	IsParam bool

	// Iterator metadata (SymNodeIter).
	IterDomain ast.IterKind
	IterSource *Symbol // graph (IterNodes) or the outer node (neighbor domains)

	// EdgeOf links an Edge variable to the neighbor iterator whose
	// current edge it denotes (SymEdgeVar).
	EdgeOf *Symbol

	// InParallel reports that the symbol was declared inside a
	// vertex-parallel region, making it vertex-local.
	InParallel bool
}

// ElemKind returns the value kind a property symbol stores, or the
// scalar kind for scalars.
func (s *Symbol) ElemKind() ast.TypeKind {
	if s.Type == nil {
		return ast.TInvalid
	}
	if s.Type.Elem != nil {
		return s.Type.Elem.Kind
	}
	return s.Type.Kind
}

// Info is the result of semantic analysis.
type Info struct {
	Proc  *ast.Procedure
	Graph *Symbol

	// Uses maps every identifier use to its symbol.
	Uses map[*ast.Ident]*Symbol
	// Types maps every expression to its type.
	Types map[ast.Expr]*ast.Type
	// IterOf maps loops/reductions/traversals to their iterator symbols.
	IterOf map[ast.Node]*Symbol
	// DeclOf maps declarations to the symbols they introduce.
	DeclOf map[*ast.VarDecl][]*Symbol
	// Props lists all property symbols (params and locals) in
	// declaration order.
	Props []*Symbol
	// Scalars lists all scalar symbols (params and locals declared in
	// sequential context) in declaration order.
	Scalars []*Symbol
	// ReturnType is the procedure's declared return type (nil if none).
	ReturnType *ast.Type
}

// TypeOf returns the resolved type of e (nil if unknown).
func (in *Info) TypeOf(e ast.Expr) *ast.Type { return in.Types[e] }

// KindOf returns the resolved type kind of e.
func (in *Info) KindOf(e ast.Expr) ast.TypeKind {
	if t := in.Types[e]; t != nil {
		return t.Kind
	}
	return ast.TInvalid
}

// SymOf resolves an identifier expression to its symbol (nil if e is not
// a resolved identifier).
func (in *Info) SymOf(e ast.Expr) *Symbol {
	if id, ok := e.(*ast.Ident); ok {
		return in.Uses[id]
	}
	return nil
}

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is every semantic error found in one Check pass, in source
// order. It implements error by joining the messages, one per line, so
// callers that match on substrings keep working while diagnostic-aware
// callers can type-assert and report each error individually.
type ErrorList []*Error

func (l ErrorList) Error() string {
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

type checker struct {
	info *Info
	errs ErrorList

	scopes []map[string]*Symbol
	// parallelDepth > 0 while inside a vertex-parallel construct.
	parallelDepth int
	// bulkGraphAsNode makes the graph identifier act as the implicit
	// node iterator (inside bulk-assignment operands).
	bulkGraphAsNode bool
}

// Check analyzes proc and returns the resolved Info. The checker does
// not stop at the first problem: it keeps going and returns every
// detected error as an ErrorList. On error the returned Info holds
// whatever was resolved before/around the failures (useful for
// diagnostics); it is only guaranteed complete when err is nil.
func Check(proc *ast.Procedure) (*Info, error) {
	c := &checker{info: &Info{
		Proc:   proc,
		Uses:   make(map[*ast.Ident]*Symbol),
		Types:  make(map[ast.Expr]*ast.Type),
		IterOf: make(map[ast.Node]*Symbol),
		DeclOf: make(map[*ast.VarDecl][]*Symbol),
	}}
	c.push()
	c.params(proc)
	c.block(proc.Body)
	c.pop()
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(p token.Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, &Error{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declare(p token.Pos, s *Symbol) *Symbol {
	if prev := c.lookup(s.Name); prev != nil {
		c.errorf(p, "%q redeclared (shadowing is not allowed); previous declaration is a %s", s.Name, prev.Kind)
	}
	c.scopes[len(c.scopes)-1][s.Name] = s
	return s
}

func (c *checker) params(proc *ast.Procedure) {
	for _, prm := range proc.Params {
		switch prm.Type.Kind {
		case ast.TGraph:
			if c.info.Graph != nil {
				c.errorf(prm.P, "multiple Graph parameters; the subset allows exactly one")
				continue
			}
			c.info.Graph = c.declare(prm.P, &Symbol{Name: prm.Name, Kind: SymGraph, Type: prm.Type, IsParam: true})
		case ast.TNodeProp:
			s := c.declare(prm.P, &Symbol{Name: prm.Name, Kind: SymNodeProp, Type: prm.Type, IsParam: true})
			c.info.Props = append(c.info.Props, s)
		case ast.TEdgeProp:
			s := c.declare(prm.P, &Symbol{Name: prm.Name, Kind: SymEdgeProp, Type: prm.Type, IsParam: true})
			c.info.Props = append(c.info.Props, s)
		case ast.TEdge:
			c.errorf(prm.P, "Edge parameters are not supported")
		case ast.TInvalid:
			c.errorf(prm.P, "invalid parameter type")
		default:
			s := c.declare(prm.P, &Symbol{Name: prm.Name, Kind: SymScalar, Type: prm.Type, IsParam: true})
			c.info.Scalars = append(c.info.Scalars, s)
		}
	}
	if c.info.Graph == nil {
		c.errorf(proc.P, "procedure %s has no Graph parameter", proc.Name)
	}
	c.info.ReturnType = proc.Ret
}

func (c *checker) block(b *ast.Block) {
	c.push()
	for _, s := range b.Stmts {
		c.stmt(s)
	}
	c.pop()
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.block(s)
	case *ast.VarDecl:
		c.varDecl(s)
	case *ast.Assign:
		c.assign(s)
	case *ast.If:
		c.wantKind(s.Cond, ast.TBool, "If condition")
		c.stmt(s.Then)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.While:
		if c.parallelDepth > 0 {
			c.errorf(s.P, "While loops are not allowed inside parallel regions")
		}
		c.wantKind(s.Cond, ast.TBool, "While condition")
		c.stmt(s.Body)
	case *ast.Foreach:
		c.foreach(s)
	case *ast.InBFS:
		c.inBFS(s)
	case *ast.Return:
		if c.parallelDepth > 0 {
			c.errorf(s.P, "Return is not allowed inside parallel regions")
		}
		if s.Value != nil {
			t := c.expr(s.Value)
			if c.info.ReturnType == nil {
				c.errorf(s.P, "procedure has no return type but returns a value")
			} else if t != nil && unify(t, c.info.ReturnType) == nil {
				c.errorf(s.P, "cannot return %s as %s", t, c.info.ReturnType)
			}
		} else if c.info.ReturnType != nil {
			c.errorf(s.P, "missing return value of type %s", c.info.ReturnType)
		}
	default:
		c.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

func (c *checker) varDecl(d *ast.VarDecl) {
	t := d.Type
	switch t.Kind {
	case ast.TGraph:
		c.errorf(d.P, "Graph variables cannot be declared locally")
		return
	case ast.TInvalid:
		c.errorf(d.P, "invalid declared type")
		return
	}
	for _, name := range d.Names {
		var sym *Symbol
		switch t.Kind {
		case ast.TNodeProp:
			if c.parallelDepth > 0 {
				c.errorf(d.P, "property %q must be declared in sequential scope", name)
			}
			sym = &Symbol{Name: name, Kind: SymNodeProp, Type: t}
			c.info.Props = append(c.info.Props, sym)
		case ast.TEdgeProp:
			if c.parallelDepth > 0 {
				c.errorf(d.P, "property %q must be declared in sequential scope", name)
			}
			sym = &Symbol{Name: name, Kind: SymEdgeProp, Type: t}
			c.info.Props = append(c.info.Props, sym)
		case ast.TEdge:
			sym = &Symbol{Name: name, Kind: SymEdgeVar, Type: t}
			if c.parallelDepth == 0 {
				c.errorf(d.P, "Edge variable %q is only meaningful inside neighbor iteration", name)
			}
		default:
			sym = &Symbol{Name: name, Kind: SymScalar, Type: t, InParallel: c.parallelDepth > 0}
			if c.parallelDepth == 0 {
				c.info.Scalars = append(c.info.Scalars, sym)
			}
		}
		c.declare(d.P, sym)
		c.info.DeclOf[d] = append(c.info.DeclOf[d], sym)
	}
	if d.Init != nil {
		sym := c.info.DeclOf[d][0]
		if sym.Kind == SymEdgeVar {
			c.bindEdgeVar(d, sym)
			return
		}
		if sym.Kind == SymNodeProp || sym.Kind == SymEdgeProp {
			c.errorf(d.P, "property declarations cannot have initializers; use a bulk assignment")
			return
		}
		it := c.expr(d.Init)
		if it != nil && unify(it, sym.Type) == nil {
			c.errorf(d.P, "cannot initialize %s %q with %s", sym.Type, sym.Name, it)
		}
		c.adoptInf(d.Init, sym.Type)
	}
}

// bindEdgeVar validates `Edge e = t.ToEdge();` and records the binding.
func (c *checker) bindEdgeVar(d *ast.VarDecl, sym *Symbol) {
	call, ok := d.Init.(*ast.Call)
	if !ok || call.Name != "ToEdge" {
		c.errorf(d.P, "Edge variables must be initialized with <nbr-iterator>.ToEdge()")
		return
	}
	id, ok := call.Target.(*ast.Ident)
	if !ok {
		c.errorf(d.P, "ToEdge target must be a neighbor iterator")
		return
	}
	tgt := c.lookup(id.Name)
	if tgt == nil || tgt.Kind != SymNodeIter || tgt.IterDomain == ast.IterNodes {
		c.errorf(d.P, "ToEdge target %q must be a neighbor iterator", id.Name)
		return
	}
	c.info.Uses[id] = tgt
	c.info.Types[call.Target] = tgt.Type
	c.info.Types[d.Init] = &ast.Type{Kind: ast.TEdge}
	sym.EdgeOf = tgt
}

func (c *checker) assign(a *ast.Assign) {
	lt := c.lvalue(a.LHS)
	// In a bulk assignment the graph identifier acts as the implicit
	// node iterator on the RHS: G.prop = (G == root) ? 0 : INF;
	bulk := false
	if pa, ok := a.LHS.(*ast.PropAccess); ok {
		if id, ok2 := pa.Target.(*ast.Ident); ok2 {
			if s := c.info.Uses[id]; s != nil && s.Kind == SymGraph {
				bulk = true
			}
		}
	}
	if bulk {
		c.bulkGraphAsNode = true
	}
	rt := c.expr(a.RHS)
	c.bulkGraphAsNode = false
	if lt == nil || rt == nil {
		return
	}
	switch a.Op {
	case ast.OpSet:
		if unify(lt, rt) == nil {
			c.errorf(a.P, "cannot assign %s to %s", rt, lt)
		}
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpMin, ast.OpMax:
		if !lt.Kind.IsNumeric() || !(rt.Kind.IsNumeric() || rt.Kind == ast.TInvalid) {
			c.errorf(a.P, "operator %s requires numeric operands, got %s %s %s", a.Op, lt, a.Op, rt)
		}
	case ast.OpAnd, ast.OpOr:
		if lt.Kind != ast.TBool || rt.Kind != ast.TBool {
			c.errorf(a.P, "operator %s requires Bool operands, got %s %s %s", a.Op, lt, a.Op, rt)
		}
	}
	c.adoptInf(a.RHS, lt)
}

// lvalue types an assignment target: a scalar identifier or a property
// access whose target is node-, edge-, or graph-valued.
func (c *checker) lvalue(e ast.Expr) *ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		s := c.lookup(e.Name)
		if s == nil {
			c.errorf(e.P, "undefined: %s", e.Name)
			return nil
		}
		c.info.Uses[e] = s
		switch s.Kind {
		case SymScalar:
			c.info.Types[e] = s.Type
			return s.Type
		case SymNodeIter:
			c.errorf(e.P, "cannot assign to iterator %q", e.Name)
		default:
			c.errorf(e.P, "cannot assign to %s %q", s.Kind, e.Name)
		}
		return nil
	case *ast.PropAccess:
		return c.propAccess(e, true)
	}
	c.errorf(e.Pos(), "invalid assignment target")
	return nil
}

func (c *checker) foreach(f *ast.Foreach) {
	src := c.lookup(f.Source)
	if src == nil {
		c.errorf(f.P, "undefined iteration source %q", f.Source)
		return
	}
	if f.Seq {
		c.errorf(f.P, "sequential For iteration is not Pregel-compatible (order-dependent loops cannot be vertex-parallel); use Foreach")
		return
	}
	iter := &Symbol{Name: f.Iter, Kind: SymNodeIter, IterDomain: f.Kind, IterSource: src, Type: &ast.Type{Kind: ast.TNode}}
	switch f.Kind {
	case ast.IterNodes:
		if src.Kind != SymGraph {
			c.errorf(f.P, "Nodes iteration requires the graph, got %s %q", src.Kind, f.Source)
			return
		}
	case ast.IterUpNbrs, ast.IterDownNbrs:
		c.errorf(f.P, "%s iteration is only allowed inside InBFS bodies (as UpNbrs/DownNbrs of the traversal iterator)", f.Kind)
		return
	default:
		if !isNodeValued(src) {
			c.errorf(f.P, "%s iteration requires a node-valued source, got %s %q", f.Kind, src.Kind, f.Source)
			return
		}
	}
	c.info.IterOf[f] = iter
	c.push()
	c.declare(f.P, iter)
	c.parallelDepth++
	if f.Filter != nil {
		c.wantKind(f.Filter, ast.TBool, "Foreach filter")
	}
	c.stmt(f.Body)
	c.parallelDepth--
	c.pop()
}

func (c *checker) inBFS(b *ast.InBFS) {
	if c.parallelDepth > 0 {
		c.errorf(b.P, "InBFS must appear in sequential context")
		return
	}
	src := c.lookup(b.Source)
	if src == nil || src.Kind != SymGraph {
		c.errorf(b.P, "InBFS source must be the graph")
		return
	}
	c.wantKind(b.Root, ast.TNode, "InBFS root")
	iter := &Symbol{Name: b.Iter, Kind: SymNodeIter, IterDomain: ast.IterNodes, IterSource: src, Type: &ast.Type{Kind: ast.TNode}}
	c.info.IterOf[b] = iter
	c.push()
	c.declare(b.P, iter)
	c.parallelDepth++
	if b.Filter != nil {
		c.wantKind(b.Filter, ast.TBool, "InBFS filter")
	}
	c.bfsBody(b.Body, iter)
	if b.ReverseBody != nil {
		c.bfsBody(b.ReverseBody, iter)
	}
	c.parallelDepth--
	c.pop()
}

// bfsBody checks a traversal body, permitting UpNbrs/DownNbrs loops over
// the traversal iterator.
func (c *checker) bfsBody(b *ast.Block, iter *Symbol) {
	c.push()
	for _, s := range b.Stmts {
		c.bfsStmt(s, iter)
	}
	c.pop()
}

func (c *checker) bfsStmt(s ast.Stmt, iter *Symbol) {
	f, ok := s.(*ast.Foreach)
	if ok && (f.Kind == ast.IterUpNbrs || f.Kind == ast.IterDownNbrs) {
		c.bfsNbrLoop(f, iter)
		return
	}
	c.stmt(s)
}

func (c *checker) bfsNbrLoop(f *ast.Foreach, bfsIter *Symbol) {
	src := c.lookup(f.Source)
	if src != bfsIter {
		c.errorf(f.P, "%s must iterate over the traversal iterator %q", f.Kind, bfsIter.Name)
		return
	}
	iter := &Symbol{Name: f.Iter, Kind: SymNodeIter, IterDomain: f.Kind, IterSource: src, Type: &ast.Type{Kind: ast.TNode}}
	c.info.IterOf[f] = iter
	c.push()
	c.declare(f.P, iter)
	c.parallelDepth++
	if f.Filter != nil {
		c.wantKind(f.Filter, ast.TBool, "filter")
	}
	c.stmt(f.Body)
	c.parallelDepth--
	c.pop()
}

func isNodeValued(s *Symbol) bool {
	if s.Kind == SymNodeIter {
		return true
	}
	return s.Kind == SymScalar && s.Type != nil && s.Type.Kind == ast.TNode
}

// wantKind checks e and reports an error unless its kind matches want.
func (c *checker) wantKind(e ast.Expr, want ast.TypeKind, what string) {
	t := c.expr(e)
	if t == nil {
		return
	}
	if t.Kind != want {
		c.errorf(e.Pos(), "%s must be %s, got %s", what, want, t)
	}
}

var (
	tInt    = &ast.Type{Kind: ast.TInt}
	tLong   = &ast.Type{Kind: ast.TLong}
	tFloat  = &ast.Type{Kind: ast.TFloat}
	tDouble = &ast.Type{Kind: ast.TDouble}
	tBool   = &ast.Type{Kind: ast.TBool}
	tNode   = &ast.Type{Kind: ast.TNode}
	tEdge   = &ast.Type{Kind: ast.TEdge}
	// tInfPoly marks an INF literal whose numeric kind is adopted from
	// context (TInvalid is the poly marker).
	tInfPoly = &ast.Type{Kind: ast.TInvalid}
)

// unify returns the combined type of two operands (widest numeric kind),
// or nil if incompatible. The poly-INF marker unifies with any numeric.
func unify(a, b *ast.Type) *ast.Type {
	if a == nil || b == nil {
		return nil
	}
	if a.Kind == ast.TInvalid {
		return b
	}
	if b.Kind == ast.TInvalid {
		return a
	}
	if a.Kind == b.Kind {
		return a
	}
	if a.Kind.IsNumeric() && b.Kind.IsNumeric() {
		return &ast.Type{Kind: widest(a.Kind, b.Kind)}
	}
	return nil
}

func widest(a, b ast.TypeKind) ast.TypeKind {
	rank := func(k ast.TypeKind) int {
		switch k {
		case ast.TInt:
			return 0
		case ast.TLong:
			return 1
		case ast.TFloat:
			return 2
		default:
			return 3
		}
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// adoptInf rewrites the recorded type of INF literals inside e to t's
// kind (they defaulted to the poly marker).
func (c *checker) adoptInf(e ast.Expr, t *ast.Type) {
	if t == nil || !t.Kind.IsNumeric() {
		return
	}
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if _, ok := x.(*ast.InfLit); ok {
			if cur := c.info.Types[x]; cur == nil || cur.Kind == ast.TInvalid {
				c.info.Types[x] = t
			}
		}
		return true
	})
}

func (c *checker) expr(e ast.Expr) *ast.Type {
	t := c.exprInner(e)
	if t != nil {
		c.info.Types[e] = t
	}
	return t
}

func (c *checker) exprInner(e ast.Expr) *ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		s := c.lookup(e.Name)
		if s == nil {
			c.errorf(e.P, "undefined: %s", e.Name)
			return nil
		}
		c.info.Uses[e] = s
		switch s.Kind {
		case SymGraph:
			if c.bulkGraphAsNode {
				return tNode
			}
			return s.Type
		case SymScalar, SymNodeIter, SymEdgeVar:
			return s.Type
		default:
			c.errorf(e.P, "%s %q cannot be used as a value without a target", s.Kind, e.Name)
			return nil
		}
	case *ast.IntLit:
		return tInt
	case *ast.FloatLit:
		return tDouble
	case *ast.BoolLit:
		return tBool
	case *ast.InfLit:
		return tInfPoly
	case *ast.NilLit:
		return tNode
	case *ast.PropAccess:
		return c.propAccess(e, false)
	case *ast.Call:
		return c.call(e)
	case *ast.Binary:
		return c.binary(e)
	case *ast.Unary:
		t := c.expr(e.X)
		if t == nil {
			return nil
		}
		if e.Op == ast.UnNot {
			if t.Kind != ast.TBool {
				c.errorf(e.P, "operator ! requires Bool, got %s", t)
				return nil
			}
			return tBool
		}
		if !t.Kind.IsNumeric() {
			c.errorf(e.P, "operator - requires a numeric operand, got %s", t)
			return nil
		}
		return t
	case *ast.Ternary:
		c.wantKind(e.Cond, ast.TBool, "ternary condition")
		a := c.expr(e.Then)
		b := c.expr(e.Else)
		u := unify(a, b)
		if u == nil {
			c.errorf(e.P, "ternary branches have incompatible types %s and %s", a, b)
			return nil
		}
		c.adoptInf(e.Then, u)
		c.adoptInf(e.Else, u)
		return u
	case *ast.Reduce:
		return c.reduce(e)
	}
	c.errorf(e.Pos(), "unsupported expression %T", e)
	return nil
}

func (c *checker) propAccess(e *ast.PropAccess, isLHS bool) *ast.Type {
	// Resolve the property name in scope.
	prop := c.lookup(e.Prop)
	if prop == nil {
		c.errorf(e.P, "undefined property %q", e.Prop)
		return nil
	}
	if prop.Kind != SymNodeProp && prop.Kind != SymEdgeProp {
		c.errorf(e.P, "%q is a %s, not a property", e.Prop, prop.Kind)
		return nil
	}
	tt := c.expr(e.Target)
	if tt == nil {
		return nil
	}
	switch tt.Kind {
	case ast.TNode:
		if prop.Kind != SymNodeProp {
			c.errorf(e.P, "edge property %q accessed through a node", e.Prop)
			return nil
		}
	case ast.TEdge:
		if prop.Kind != SymEdgeProp {
			c.errorf(e.P, "node property %q accessed through an edge", e.Prop)
			return nil
		}
	case ast.TGraph:
		// Bulk access G.prop: allowed for node properties in both
		// positions, and edge properties only as bulk-init LHS.
		if prop.Kind == SymEdgeProp && !isLHS {
			c.errorf(e.P, "bulk edge property read is not supported")
			return nil
		}
	default:
		c.errorf(e.P, "property access through non-node/edge value of type %s", tt)
		return nil
	}
	return prop.Type.Elem
}

func (c *checker) call(e *ast.Call) *ast.Type {
	// Graph builtin calls keep their graph target even inside bulk
	// assignment RHS (where the bare graph identifier means "each node").
	saved := c.bulkGraphAsNode
	if id, ok := e.Target.(*ast.Ident); ok {
		if sym := c.lookup(id.Name); sym != nil && sym.Kind == SymGraph {
			c.bulkGraphAsNode = false
		}
	}
	tt := c.expr(e.Target)
	c.bulkGraphAsNode = saved
	if tt == nil {
		return nil
	}
	argc := len(e.Args)
	switch e.Name {
	case "NumNodes", "NumEdges":
		if tt.Kind != ast.TGraph || argc != 0 {
			c.errorf(e.P, "%s() is a no-argument graph method", e.Name)
			return nil
		}
		return tInt
	case "PickRandom":
		if tt.Kind != ast.TGraph || argc != 0 {
			c.errorf(e.P, "PickRandom() is a no-argument graph method")
			return nil
		}
		return tNode
	case "Degree", "OutDegree", "NumNbrs":
		if tt.Kind != ast.TNode || argc != 0 {
			c.errorf(e.P, "%s() is a no-argument node method", e.Name)
			return nil
		}
		return tInt
	case "Id":
		if tt.Kind != ast.TNode || argc != 0 {
			c.errorf(e.P, "Id() is a no-argument node method")
			return nil
		}
		return tInt
	case "InDegree":
		if tt.Kind != ast.TNode || argc != 0 {
			c.errorf(e.P, "InDegree() is a no-argument node method")
			return nil
		}
		return tInt
	case "ToEdge":
		// Valid only in an Edge variable initializer, which is checked
		// by bindEdgeVar; reaching here means a stray use.
		c.errorf(e.P, "ToEdge() may only initialize an Edge variable")
		return nil
	}
	c.errorf(e.P, "unknown method %q", e.Name)
	return nil
}

func (c *checker) binary(e *ast.Binary) *ast.Type {
	a := c.expr(e.L)
	b := c.expr(e.R)
	if a == nil || b == nil {
		return nil
	}
	switch {
	case e.Op.IsLogical():
		if a.Kind != ast.TBool || b.Kind != ast.TBool {
			c.errorf(e.P, "operator %s requires Bool operands, got %s and %s", e.Op, a, b)
			return nil
		}
		return tBool
	case e.Op.IsComparison():
		u := unify(a, b)
		if u == nil {
			c.errorf(e.P, "cannot compare %s and %s", a, b)
			return nil
		}
		if u.Kind == ast.TNode && e.Op != ast.BinEq && e.Op != ast.BinNeq {
			c.errorf(e.P, "nodes support only == and !=")
			return nil
		}
		if u.Kind == ast.TBool && e.Op != ast.BinEq && e.Op != ast.BinNeq {
			c.errorf(e.P, "Bool supports only == and !=")
			return nil
		}
		c.adoptInf(e.L, u)
		c.adoptInf(e.R, u)
		return tBool
	case e.Op == ast.BinMod:
		if !a.Kind.IsIntegral() || !b.Kind.IsIntegral() {
			c.errorf(e.P, "operator %% requires integer operands, got %s and %s", a, b)
			return nil
		}
		return unify(a, b)
	default:
		u := unify(a, b)
		if u == nil || !u.Kind.IsNumeric() {
			c.errorf(e.P, "operator %s requires numeric operands, got %s and %s", e.Op, a, b)
			return nil
		}
		if e.Op == ast.BinDiv && u.Kind.IsIntegral() {
			// Integer division stays integral, like the paper's
			// S / (float)C example requires an explicit widening.
			return u
		}
		return u
	}
}

func (c *checker) reduce(e *ast.Reduce) *ast.Type {
	src := c.lookup(e.Source)
	if src == nil {
		c.errorf(e.P, "undefined iteration source %q", e.Source)
		return nil
	}
	switch e.Domain {
	case ast.IterNodes:
		if src.Kind != SymGraph {
			c.errorf(e.P, "Nodes reduction requires the graph")
			return nil
		}
	case ast.IterUpNbrs, ast.IterDownNbrs:
		if src.Kind != SymNodeIter {
			c.errorf(e.P, "%s reduction requires a traversal iterator source", e.Domain)
			return nil
		}
	default:
		if !isNodeValued(src) {
			c.errorf(e.P, "%s reduction requires a node-valued source", e.Domain)
			return nil
		}
	}
	iter := &Symbol{Name: e.Iter, Kind: SymNodeIter, IterDomain: e.Domain, IterSource: src, Type: tNode}
	c.info.IterOf[e] = iter
	c.push()
	c.declare(e.P, iter)
	c.parallelDepth++
	defer func() { c.parallelDepth--; c.pop() }()
	if e.Filter != nil {
		c.wantKind(e.Filter, ast.TBool, "reduction filter")
	}
	switch e.Kind {
	case ast.RCount:
		return tInt
	case ast.RExist:
		return tBool
	case ast.RAll:
		// All keeps its condition as the body: All(n: ...)[f](cond).
		if e.Body != nil {
			c.wantKind(e.Body, ast.TBool, "All condition")
		}
		return tBool
	case ast.RAvg:
		bt := c.expr(e.Body)
		if bt == nil {
			return nil
		}
		if !bt.Kind.IsNumeric() {
			c.errorf(e.P, "Avg body must be numeric, got %s", bt)
			return nil
		}
		return tDouble
	default:
		bt := c.expr(e.Body)
		if bt == nil {
			return nil
		}
		if !bt.Kind.IsNumeric() {
			c.errorf(e.P, "%s body must be numeric, got %s", e.Kind, bt)
			return nil
		}
		return bt
	}
}
