package parser

import (
	"math/rand"
	"strings"
	"testing"

	"gmpregel/internal/algorithms"
)

// TestParserNeverPanics throws garbage at the parser: random byte
// strings, truncations of valid programs, and random token-level
// mutations. Every input must produce a value or an error — never a
// panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", truncate(src, 120), r)
			}
		}()
		_, _ = Parse(src)
	}

	// Random bytes.
	alphabet := []byte("Procedure Foreach While If Else Return G Nodes Nbrs(){}[]<>;:=+-*/%&|!?.,1234567890abc \n\t\"")
	for i := 0; i < 500; i++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		check(string(b))
	}

	// Truncations of every built-in program.
	for _, src := range algorithms.ByName {
		for cut := 0; cut < len(src); cut += 7 {
			check(src[:cut])
		}
	}

	// Random single-character mutations of a valid program.
	base := algorithms.SSSP
	for i := 0; i < 300; i++ {
		pos := rng.Intn(len(base))
		mut := base[:pos] + string(alphabet[rng.Intn(len(alphabet))]) + base[pos+1:]
		check(mut)
	}

	// Deep nesting must not blow the stack unreasonably.
	check("Procedure f(G: Graph) { Int x = " + strings.Repeat("(", 500) + "1" + strings.Repeat(")", 500) + "; }")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// TestSemaNeverPanicsOnParsedGarbage: everything that parses must pass
// through sema without panicking (errors are fine).
func TestParseThenPrintIsStable(t *testing.T) {
	// For every algorithm: parse, print, parse, print — prints converge.
	for name, src := range algorithms.ByName {
		p1, err := ParseProcedure(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = p1
	}
	for name, src := range algorithms.ExtraByName {
		if _, err := ParseProcedure(src); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
