package parser

import (
	"strings"
	"testing"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/gm/ast"
)

func parseOne(t *testing.T, src string) *ast.Procedure {
	t.Helper()
	p, err := ParseProcedure(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseMinimalProcedure(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph) { Int x = 1; }`)
	if p.Name != "f" || len(p.Params) != 1 || p.Ret != nil {
		t.Fatalf("bad procedure: %+v", p)
	}
	if p.Params[0].Type.Kind != ast.TGraph {
		t.Errorf("param type = %v", p.Params[0].Type)
	}
	d, ok := p.Body.Stmts[0].(*ast.VarDecl)
	if !ok || d.Names[0] != "x" || d.Init == nil {
		t.Fatalf("bad decl: %#v", p.Body.Stmts[0])
	}
}

func TestParsePropTypes(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, a: Node_Prop<Int>, b: E_P<Double>(G)) : Double {
		Node_Prop<Bool> flag;
		Return 0.0;
	}`)
	if p.Params[1].Type.Kind != ast.TNodeProp || p.Params[1].Type.Elem.Kind != ast.TInt {
		t.Errorf("a type = %v", p.Params[1].Type)
	}
	if p.Params[2].Type.Kind != ast.TEdgeProp || p.Params[2].Type.Of != "G" {
		t.Errorf("b type = %v", p.Params[2].Type)
	}
	if p.Ret.Kind != ast.TDouble {
		t.Errorf("ret = %v", p.Ret)
	}
}

func TestParseForeachWithFilter(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, age: Node_Prop<Int>) {
		Foreach (n: G.Nodes)[n.age > 10] {
			Foreach (t: n.Nbrs) (t.age < 5) {
				t.age = 0;
			}
		}
	}`)
	fe := p.Body.Stmts[0].(*ast.Foreach)
	if fe.Iter != "n" || fe.Kind != ast.IterNodes || fe.Filter == nil {
		t.Fatalf("outer loop: %+v", fe)
	}
	inner := fe.Body.(*ast.Block).Stmts[0].(*ast.Foreach)
	if inner.Kind != ast.IterOutNbrs || inner.Source != "n" || inner.Filter == nil {
		t.Fatalf("inner loop: %+v", inner)
	}
}

func TestParseIterDomains(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph) {
		Foreach (a: G.Nodes) {
			Foreach (b: a.InNbrs) { Foreach (c: b.OutNbrs) { Foreach (d: c.UpNbrs) { Foreach (e: d.DownNbrs) {} } } }
		}
	}`)
	kinds := []ast.IterKind{}
	ast.WalkStmts(p.Body, func(s ast.Stmt) bool {
		if f, ok := s.(*ast.Foreach); ok {
			kinds = append(kinds, f.Kind)
		}
		return true
	})
	want := []ast.IterKind{ast.IterNodes, ast.IterInNbrs, ast.IterOutNbrs, ast.IterUpNbrs, ast.IterDownNbrs}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestParseReductionAssignments(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, x: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			n.x += 1; n.x -= 2; n.x *= 3; n.x min= 4; n.x max= 5;
		}
		Int c = 0;
		c++;
	}`)
	var ops []ast.AssignOp
	ast.WalkStmts(p.Body, func(s ast.Stmt) bool {
		if a, ok := s.(*ast.Assign); ok {
			ops = append(ops, a.Op)
		}
		return true
	})
	want := []ast.AssignOp{ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpMin, ast.OpMax, ast.OpAdd}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestParseTernaryAndPrecedence(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph) {
		Int x = 1 + 2 * 3 < 7 && 1 != 2 ? 4 - 1 : 0;
	}`)
	d := p.Body.Stmts[0].(*ast.VarDecl)
	tern, ok := d.Init.(*ast.Ternary)
	if !ok {
		t.Fatalf("init is %T, want ternary", d.Init)
	}
	and, ok := tern.Cond.(*ast.Binary)
	if !ok || and.Op != ast.BinAnd {
		t.Fatalf("cond = %s", ast.PrintExpr(tern.Cond))
	}
	lt := and.L.(*ast.Binary)
	if lt.Op != ast.BinLt {
		t.Errorf("lhs of && = %s", ast.PrintExpr(and.L))
	}
	add := lt.L.(*ast.Binary)
	if add.Op != ast.BinAdd {
		t.Errorf("lhs of < = %s", ast.PrintExpr(lt.L))
	}
	if mul := add.R.(*ast.Binary); mul.Op != ast.BinMul {
		t.Errorf("rhs of + = %s", ast.PrintExpr(add.R))
	}
}

func TestParseReduceExpressions(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, m: Node_Prop<Int>) {
		Int a = Sum(u: G.Nodes)[u.m == 1](u.Degree());
		Int b = Count(t: G.Nodes)(t.m != 0);
		Bool c = Exist(n: G.Nodes)[n.m > 2];
	}`)
	sum := p.Body.Stmts[0].(*ast.VarDecl).Init.(*ast.Reduce)
	if sum.Kind != ast.RSum || sum.Filter == nil || sum.Body == nil {
		t.Errorf("sum = %+v", sum)
	}
	cnt := p.Body.Stmts[1].(*ast.VarDecl).Init.(*ast.Reduce)
	if cnt.Kind != ast.RCount || cnt.Filter == nil || cnt.Body != nil {
		t.Errorf("count = %+v", cnt)
	}
	ex := p.Body.Stmts[2].(*ast.VarDecl).Init.(*ast.Reduce)
	if ex.Kind != ast.RExist || ex.Filter == nil {
		t.Errorf("exist = %+v", ex)
	}
}

func TestParseCountCombinesBracketAndParenFilters(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, m: Node_Prop<Int>) {
		Int b = Count(t: G.Nodes)[t.m > 0](t.m < 9);
	}`)
	cnt := p.Body.Stmts[0].(*ast.VarDecl).Init.(*ast.Reduce)
	b, ok := cnt.Filter.(*ast.Binary)
	if !ok || b.Op != ast.BinAnd {
		t.Fatalf("filter = %s", ast.PrintExpr(cnt.Filter))
	}
}

func TestParseInBFS(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, s: Node, sig: Node_Prop<Double>) {
		InBFS (v: G.Nodes From s) {
			v.sig += Sum(w: v.UpNbrs)(w.sig);
		}
		InReverse {
			v.sig = 0.0;
		}
	}`)
	b := p.Body.Stmts[0].(*ast.InBFS)
	if b.Iter != "v" || b.Source != "G" || b.ReverseBody == nil {
		t.Fatalf("inbfs = %+v", b)
	}
}

func TestParseDoWhile(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph) {
		Int i = 0;
		Do { i = i + 1; } While (i < 3);
	}`)
	w := p.Body.Stmts[1].(*ast.While)
	if !w.DoWhile {
		t.Error("DoWhile flag not set")
	}
}

func TestParseCallsAndProps(t *testing.T) {
	p := parseOne(t, `Procedure f(G: Graph, d: Node_Prop<Int>) {
		Node s = G.PickRandom();
		Int n = G.NumNodes();
		Foreach (v: G.Nodes) {
			Int k = v.Degree();
			v.d = k;
		}
	}`)
	call := p.Body.Stmts[0].(*ast.VarDecl).Init.(*ast.Call)
	if call.Name != "PickRandom" {
		t.Errorf("call = %+v", call)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                 // empty
		`Procedure f(G: Graph) { Int }`,    // missing name
		`Procedure f(G: Graph) { x += ; }`, // missing RHS
		`Procedure f(G: Graph) { Foreach (n: G.Bogus) {} }`,  // bad domain
		`Procedure f(G: Graph) { While (x) }`,                // missing body
		`Procedure f(G: Graph) { 1 + 2; }`,                   // expr is not a stmt
		`Procedure f(G: Graph) { Int a, b = 3; }`,            // multi-name init
		`Procedure f(G: Graph) { Sum(u: G.Nodes); }`,         // reduce as stmt
		`Procedure f(G: Graph) { Int x = Sum(u: G.Nodes); }`, // sum without body
		`Procedure f(G: Graph) { If (1 {} }`,                 // broken parens
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("input %q: expected parse error", src)
		}
	}
}

// Round-trip: print(parse(src)) must re-parse to an identical rendering.
func TestRoundTripPaperAlgorithms(t *testing.T) {
	for name, src := range algorithms.ByName {
		t.Run(name, func(t *testing.T) {
			p1, err := ParseProcedure(src)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			out1 := ast.Print(p1)
			p2, err := ParseProcedure(out1)
			if err != nil {
				t.Fatalf("re-parse printed form: %v\n%s", err, out1)
			}
			out2 := ast.Print(p2)
			if out1 != out2 {
				t.Errorf("printer not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	p1 := parseOne(t, algorithms.SSSP)
	p2 := p1.Clone()
	// Mutate the clone; the original rendering must not change.
	before := ast.Print(p1)
	ast.WalkStmts(p2.Body, func(s ast.Stmt) bool {
		if a, ok := s.(*ast.Assign); ok {
			a.Op = ast.OpMax
		}
		return true
	})
	p2.Name = "mutated"
	if got := ast.Print(p1); got != before {
		t.Error("mutating clone changed the original")
	}
	if !strings.Contains(ast.Print(p2), "mutated") {
		t.Error("clone mutation lost")
	}
}

func TestParseMultipleProcedures(t *testing.T) {
	procs, err := Parse(`
		Procedure a(G: Graph) { Int x = 0; }
		Procedure b(G: Graph) { Int y = 1; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || procs[0].Name != "a" || procs[1].Name != "b" {
		t.Errorf("procs = %v", procs)
	}
}
