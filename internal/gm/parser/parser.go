// Package parser builds the Green-Marl AST from source text.
//
// The grammar is the imperative subset of Green-Marl used throughout the
// paper: procedures over a single graph, scalar and property
// declarations, parallel Foreach with optional filters, While/Do-While,
// If/Else, group reductions (Sum, Count, Product, Max, Min, Avg, Exist,
// All), reduction assignments (+=, min=, …), the BFS traversal construct
// InBFS … InReverse, and builtin methods (G.NumNodes, G.PickRandom,
// n.Degree, t.ToEdge, …).
package parser

import (
	"fmt"
	"strconv"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/lexer"
	"gmpregel/internal/gm/token"
)

// Error is a parse error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	lx  *lexer.Lexer
	tok token.Token
}

// ParseProcedure parses a single procedure from src.
func ParseProcedure(src string) (p *ast.Procedure, err error) {
	procs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(procs) != 1 {
		return nil, fmt.Errorf("parser: expected exactly one procedure, found %d", len(procs))
	}
	return procs[0], nil
}

// Parse parses all procedures in src.
func Parse(src string) (procs []*ast.Procedure, err error) {
	ps := &parser{lx: lexer.New(src)}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*Error)
			if !ok {
				panic(r)
			}
			err = pe
		}
	}()
	ps.next()
	for ps.tok.Kind != token.EOF {
		procs = append(procs, ps.procedure())
	}
	if errs := ps.lx.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("parser: no procedure found")
	}
	return procs, nil
}

func (p *parser) errorf(format string, args ...interface{}) {
	panic(&Error{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) next() { p.tok = p.lx.Next() }

func (p *parser) expect(k token.Kind) token.Token {
	if p.tok.Kind != k {
		p.errorf("expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() string { return p.expect(token.IDENT).Lit }

// isTypeStart reports whether k can begin a type.
func isTypeStart(k token.Kind) bool {
	switch k {
	case token.KwGraph, token.KwInt, token.KwLong, token.KwFloat,
		token.KwDouble, token.KwBool, token.KwNode, token.KwEdge,
		token.KwNodeProp, token.KwEdgeProp:
		return true
	}
	return false
}

func (p *parser) parseType() *ast.Type {
	t := &ast.Type{}
	switch p.tok.Kind {
	case token.KwGraph:
		t.Kind = ast.TGraph
	case token.KwInt:
		t.Kind = ast.TInt
	case token.KwLong:
		t.Kind = ast.TLong
	case token.KwFloat:
		t.Kind = ast.TFloat
	case token.KwDouble:
		t.Kind = ast.TDouble
	case token.KwBool:
		t.Kind = ast.TBool
	case token.KwNode:
		t.Kind = ast.TNode
	case token.KwEdge:
		t.Kind = ast.TEdge
	case token.KwNodeProp:
		t.Kind = ast.TNodeProp
	case token.KwEdgeProp:
		t.Kind = ast.TEdgeProp
	default:
		p.errorf("expected a type, found %s", p.tok)
	}
	p.next()
	if t.Kind.IsProp() {
		p.expect(token.LT)
		t.Elem = p.parseType()
		p.expect(token.GT)
		if p.accept(token.LPAREN) {
			t.Of = p.ident()
			p.expect(token.RPAREN)
		} else if p.accept(token.LBRACKET) {
			t.Of = p.ident()
			p.expect(token.RBRACKET)
		}
	}
	// Node(G) / Edge(G) graph binding.
	if (t.Kind == ast.TNode || t.Kind == ast.TEdge) && p.tok.Kind == token.LPAREN {
		// Only a binding if it looks like (Ident) — a lookahead hack is
		// unnecessary because Node/Edge types never take call syntax here.
		p.next()
		t.Of = p.ident()
		p.expect(token.RPAREN)
	}
	return t
}

func (p *parser) procedure() *ast.Procedure {
	pos := p.tok.Pos
	if !p.accept(token.KwLocal) {
		// "Local" prefix is optional.
	}
	p.expect(token.KwProcedure)
	pr := &ast.Procedure{Name: p.ident(), P: pos}
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN {
		prm := &ast.Param{P: p.tok.Pos, Name: p.ident()}
		p.expect(token.COLON)
		prm.Type = p.parseType()
		pr.Params = append(pr.Params, prm)
		// Allow several names sharing a type? Green-Marl separates with
		// commas between full params; also support `a, b: Int`.
		if p.tok.Kind == token.COMMA {
			p.next()
		} else if p.tok.Kind == token.SEMICOLON {
			p.next()
		}
	}
	p.expect(token.RPAREN)
	if p.accept(token.COLON) {
		pr.Ret = p.parseType()
	}
	pr.Body = p.block()
	return pr
}

func (p *parser) block() *ast.Block {
	b := &ast.Block{P: p.tok.Pos}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE {
		if p.tok.Kind == token.EOF {
			p.errorf("unexpected EOF inside block")
		}
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) stmtOrBlock() ast.Stmt {
	if p.tok.Kind == token.LBRACE {
		return p.block()
	}
	return p.stmt()
}

func (p *parser) stmt() ast.Stmt {
	pos := p.tok.Pos
	switch {
	case p.tok.Kind == token.LBRACE:
		return p.block()
	case isTypeStart(p.tok.Kind):
		return p.varDecl()
	case p.tok.Kind == token.KwIf:
		p.next()
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		then := p.stmtOrBlock()
		var els ast.Stmt
		if p.accept(token.KwElse) {
			els = p.stmtOrBlock()
		}
		return &ast.If{Cond: cond, Then: then, Else: els, P: pos}
	case p.tok.Kind == token.KwWhile:
		p.next()
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		body := p.stmtOrBlock()
		return &ast.While{Cond: cond, Body: body, P: pos}
	case p.tok.Kind == token.KwDo:
		p.next()
		body := p.stmtOrBlock()
		p.expect(token.KwWhile)
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.While{Cond: cond, Body: body, DoWhile: true, P: pos}
	case p.tok.Kind == token.KwForeach || p.tok.Kind == token.KwFor:
		seq := p.tok.Kind == token.KwFor
		p.next()
		p.expect(token.LPAREN)
		iter := p.ident()
		p.expect(token.COLON)
		src := p.ident()
		p.expect(token.DOT)
		kind := p.iterKind()
		p.expect(token.RPAREN)
		var filter ast.Expr
		if p.tok.Kind == token.LPAREN {
			p.next()
			filter = p.expr()
			p.expect(token.RPAREN)
		} else if p.tok.Kind == token.LBRACKET {
			p.next()
			filter = p.expr()
			p.expect(token.RBRACKET)
		}
		body := p.stmtOrBlock()
		return &ast.Foreach{Iter: iter, Source: src, Kind: kind, Filter: filter, Body: body, Seq: seq, P: pos}
	case p.tok.Kind == token.KwInBFS:
		return p.inBFS()
	case p.tok.Kind == token.KwReturn:
		p.next()
		r := &ast.Return{P: pos}
		if p.tok.Kind != token.SEMICOLON {
			r.Value = p.expr()
		}
		p.expect(token.SEMICOLON)
		return r
	default:
		return p.assign()
	}
}

func (p *parser) iterKind() ast.IterKind {
	name := p.ident()
	switch name {
	case "Nodes":
		return ast.IterNodes
	case "Nbrs", "OutNbrs":
		return ast.IterOutNbrs
	case "InNbrs":
		return ast.IterInNbrs
	case "UpNbrs":
		return ast.IterUpNbrs
	case "DownNbrs":
		return ast.IterDownNbrs
	}
	p.errorf("unknown iteration domain %q", name)
	return ast.IterNodes
}

func (p *parser) varDecl() ast.Stmt {
	pos := p.tok.Pos
	d := &ast.VarDecl{Type: p.parseType(), P: pos}
	d.Names = append(d.Names, p.ident())
	for p.accept(token.COMMA) {
		d.Names = append(d.Names, p.ident())
	}
	if p.accept(token.ASSIGN) {
		if len(d.Names) != 1 {
			p.errorf("initializer requires a single declared name")
		}
		d.Init = p.expr()
	}
	p.expect(token.SEMICOLON)
	return d
}

func (p *parser) assign() ast.Stmt {
	pos := p.tok.Pos
	lhs := p.postfixExpr()
	switch lhs.(type) {
	case *ast.Ident, *ast.PropAccess:
	default:
		p.errorf("invalid assignment target %s", ast.PrintExpr(lhs))
	}
	if p.tok.Kind == token.PLUSPLUS {
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.Assign{LHS: lhs, Op: ast.OpAdd, RHS: &ast.IntLit{Value: 1, P: pos}, P: pos}
	}
	var op ast.AssignOp
	switch p.tok.Kind {
	case token.ASSIGN:
		op = ast.OpSet
	case token.PLUSEQ:
		op = ast.OpAdd
	case token.MINUSEQ:
		op = ast.OpSub
	case token.STAREQ:
		op = ast.OpMul
	case token.MINEQ:
		op = ast.OpMin
	case token.MAXEQ:
		op = ast.OpMax
	case token.ANDEQ:
		op = ast.OpAnd
	case token.OREQ:
		op = ast.OpOr
	default:
		p.errorf("expected assignment operator, found %s", p.tok)
	}
	p.next()
	rhs := p.expr()
	p.expect(token.SEMICOLON)
	return &ast.Assign{LHS: lhs, Op: op, RHS: rhs, P: pos}
}

func (p *parser) inBFS() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwInBFS)
	p.expect(token.LPAREN)
	iter := p.ident()
	p.expect(token.COLON)
	src := p.ident()
	p.expect(token.DOT)
	if k := p.iterKind(); k != ast.IterNodes {
		p.errorf("InBFS iterates G.Nodes, found %s", k)
	}
	p.expect(token.KwFrom)
	root := p.expr()
	p.expect(token.RPAREN)
	b := &ast.InBFS{Iter: iter, Source: src, Root: root, P: pos}
	if p.tok.Kind == token.LBRACKET {
		p.next()
		b.Filter = p.expr()
		p.expect(token.RBRACKET)
	}
	b.Body = p.block()
	if p.accept(token.KwInReverse) {
		b.ReverseBody = p.block()
	}
	return b
}

// ---- Expressions (precedence climbing) ----

func (p *parser) expr() ast.Expr { return p.ternary() }

func (p *parser) ternary() ast.Expr {
	pos := p.tok.Pos
	cond := p.orExpr()
	if !p.accept(token.QUESTION) {
		return cond
	}
	then := p.ternary()
	p.expect(token.COLON)
	els := p.ternary()
	return &ast.Ternary{Cond: cond, Then: then, Else: els, P: pos}
}

func (p *parser) orExpr() ast.Expr {
	l := p.andExpr()
	for p.tok.Kind == token.OR {
		pos := p.tok.Pos
		p.next()
		l = &ast.Binary{Op: ast.BinOr, L: l, R: p.andExpr(), P: pos}
	}
	return l
}

func (p *parser) andExpr() ast.Expr {
	l := p.cmpExpr()
	for p.tok.Kind == token.AND {
		pos := p.tok.Pos
		p.next()
		l = &ast.Binary{Op: ast.BinAnd, L: l, R: p.cmpExpr(), P: pos}
	}
	return l
}

func (p *parser) cmpExpr() ast.Expr {
	l := p.addExpr()
	for {
		var op ast.BinOp
		switch p.tok.Kind {
		case token.EQ:
			op = ast.BinEq
		case token.NEQ:
			op = ast.BinNeq
		case token.LT:
			op = ast.BinLt
		case token.GT:
			op = ast.BinGt
		case token.LE:
			op = ast.BinLe
		case token.GE:
			op = ast.BinGe
		default:
			return l
		}
		pos := p.tok.Pos
		p.next()
		l = &ast.Binary{Op: op, L: l, R: p.addExpr(), P: pos}
	}
}

func (p *parser) addExpr() ast.Expr {
	l := p.mulExpr()
	for {
		var op ast.BinOp
		switch p.tok.Kind {
		case token.PLUS:
			op = ast.BinAdd
		case token.MINUS:
			op = ast.BinSub
		default:
			return l
		}
		pos := p.tok.Pos
		p.next()
		l = &ast.Binary{Op: op, L: l, R: p.mulExpr(), P: pos}
	}
}

func (p *parser) mulExpr() ast.Expr {
	l := p.unaryExpr()
	for {
		var op ast.BinOp
		switch p.tok.Kind {
		case token.STAR:
			op = ast.BinMul
		case token.SLASH:
			op = ast.BinDiv
		case token.PERCENT:
			op = ast.BinMod
		default:
			return l
		}
		pos := p.tok.Pos
		p.next()
		l = &ast.Binary{Op: op, L: l, R: p.unaryExpr(), P: pos}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.NOT:
		p.next()
		return &ast.Unary{Op: ast.UnNot, X: p.unaryExpr(), P: pos}
	case token.MINUS:
		p.next()
		if p.tok.Kind == token.KwInf {
			p.next()
			return &ast.InfLit{Neg: true, P: pos}
		}
		return &ast.Unary{Op: ast.UnNeg, X: p.unaryExpr(), P: pos}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() ast.Expr {
	e := p.primary()
	for p.tok.Kind == token.DOT {
		p.next()
		name := p.ident()
		pos := p.tok.Pos
		if p.tok.Kind == token.LPAREN {
			p.next()
			c := &ast.Call{Target: e, Name: name, P: pos}
			for p.tok.Kind != token.RPAREN {
				c.Args = append(c.Args, p.expr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			e = c
		} else {
			e = &ast.PropAccess{Target: e, Prop: name, P: pos}
		}
	}
	return e
}

func (p *parser) reduceKindOf(k token.Kind) (ast.ReduceKind, bool) {
	switch k {
	case token.KwSum:
		return ast.RSum, true
	case token.KwProduct:
		return ast.RProduct, true
	case token.KwCount:
		return ast.RCount, true
	case token.KwMax:
		return ast.RMax, true
	case token.KwMin:
		return ast.RMin, true
	case token.KwAvg:
		return ast.RAvg, true
	case token.KwExist:
		return ast.RExist, true
	case token.KwAll:
		return ast.RAll, true
	}
	return 0, false
}

func (p *parser) primary() ast.Expr {
	pos := p.tok.Pos
	if rk, ok := p.reduceKindOf(p.tok.Kind); ok {
		p.next()
		return p.reduceExpr(rk, pos)
	}
	switch p.tok.Kind {
	case token.IDENT:
		name := p.tok.Lit
		p.next()
		return &ast.Ident{Name: name, P: pos}
	case token.INTLIT:
		v, err := strconv.ParseInt(p.tok.Lit, 10, 64)
		if err != nil {
			p.errorf("bad integer literal %q: %v", p.tok.Lit, err)
		}
		p.next()
		return &ast.IntLit{Value: v, P: pos}
	case token.FLOATLIT:
		v, err := strconv.ParseFloat(p.tok.Lit, 64)
		if err != nil {
			p.errorf("bad float literal %q: %v", p.tok.Lit, err)
		}
		text := p.tok.Lit
		p.next()
		return &ast.FloatLit{Value: v, Text: text, P: pos}
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, P: pos}
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, P: pos}
	case token.KwInf:
		p.next()
		return &ast.InfLit{P: pos}
	case token.KwNil:
		p.next()
		return &ast.NilLit{P: pos}
	case token.LPAREN:
		p.next()
		e := p.expr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf("unexpected token %s in expression", p.tok)
	return nil
}

// reduceExpr parses the clause after a reduction keyword:
// (iter: src.Domain) [filter]? (body)?  — for Count/Exist/All a single
// trailing parenthesized expression is the condition.
func (p *parser) reduceExpr(kind ast.ReduceKind, pos token.Pos) ast.Expr {
	p.expect(token.LPAREN)
	iter := p.ident()
	p.expect(token.COLON)
	src := p.ident()
	p.expect(token.DOT)
	domain := p.iterKind()
	p.expect(token.RPAREN)
	r := &ast.Reduce{Kind: kind, Iter: iter, Source: src, Domain: domain, P: pos}
	if p.tok.Kind == token.LBRACKET {
		p.next()
		r.Filter = p.expr()
		p.expect(token.RBRACKET)
	}
	condStyle := kind == ast.RCount || kind == ast.RExist
	if p.tok.Kind == token.LPAREN {
		p.next()
		body := p.expr()
		p.expect(token.RPAREN)
		if condStyle {
			if r.Filter == nil {
				r.Filter = body
			} else {
				r.Filter = &ast.Binary{Op: ast.BinAnd, L: r.Filter, R: body, P: body.Pos()}
			}
		} else {
			r.Body = body
		}
	}
	if !condStyle && r.Body == nil {
		p.errorf("%s reduction requires a (body) expression", kind)
	}
	return r
}
