package analysis

import (
	"strings"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/gm/token"
	"gmpregel/internal/ir"
	"gmpregel/internal/pregel"
)

// Analysis 4: message-payload width estimation. For every neighbor
// communication the translator runs the paper's payload dataflow: each
// maximal sender-evaluable subexpression that the receiver side reads
// becomes one (deduplicated) message field. This file mirrors that
// dataflow at the source level — before lowering — so the estimate can
// be reported next to the construct that causes it, using the same
// ir.Kind wire widths as internal/core/translate_comm.go.

// payloadField is one estimated message field.
type payloadField struct {
	expr ast.Expr
	name string
	kind ir.Kind
}

// siteCtx describes one communication site while its payload is built.
type siteCtx struct {
	// sender evaluates payload expressions; recv consumes them. For a
	// push loop the sender is the outer (region) iterator; for a pull
	// loop or reduction, flipping makes the inner iterator the sender.
	sender, recv *sema.Symbol
	// outerIsSender tells which side region-scoped parallel locals
	// belong to.
	outerIsSender bool

	fields []payloadField
	keys   map[string]bool
}

// payloadOfLoop estimates the message of one inner neighbor Foreach.
func (a *analyzer) payloadOfLoop(f *ast.Foreach, r *regionCtx, pull bool) {
	inner := a.info.IterOf[f]
	sc := &siteCtx{keys: map[string]bool{}}
	if pull {
		sc.sender, sc.recv, sc.outerIsSender = inner, r.iter, false
	} else {
		sc.sender, sc.recv, sc.outerIsSender = r.iter, inner, true
	}
	for _, c := range conjuncts(f.Filter) {
		snd, rcv := a.refSides(c, sc)
		if rcv || !snd {
			// Receiver-involved conjuncts are evaluated after delivery;
			// their sender-side parts must travel in the message.
			// Sender-only (and iterator-free) conjuncts become guards.
			a.payloadFields(c, sc)
		}
	}
	a.payloadStmts(f.Body, sc)
	a.emitPayload(f.P, sc, r)
}

// payloadOfReduce estimates the message of a neighborhood reduction
// (always a pull: the outer vertex accumulates its neighbors' values).
func (a *analyzer) payloadOfReduce(red *ast.Reduce, r *regionCtx) {
	sc := &siteCtx{sender: a.info.IterOf[red], recv: r.iter, outerIsSender: false, keys: map[string]bool{}}
	for _, c := range conjuncts(red.Filter) {
		snd, rcv := a.refSides(c, sc)
		if rcv || !snd {
			a.payloadFields(c, sc)
		}
	}
	if red.Body != nil {
		a.payloadFields(red.Body, sc)
	}
	a.emitPayload(red.P, sc, r)
}

// payloadStmts collects payload fields from the receiver-evaluated
// statements of an inner loop body.
func (a *analyzer) payloadStmts(s ast.Stmt, sc *siteCtx) {
	switch s := s.(type) {
	case *ast.Block:
		for _, c := range s.Stmts {
			a.payloadStmts(c, sc)
		}
	case *ast.If:
		// The translator compiles conditionals on the receiver, so the
		// condition's sender-side parts travel in the message.
		a.payloadFields(s.Cond, sc)
		a.payloadStmts(s.Then, sc)
		if s.Else != nil {
			a.payloadStmts(s.Else, sc)
		}
	case *ast.Assign:
		if a.assignTargetIsRecv(s, sc) {
			a.payloadFields(s.RHS, sc)
		}
	}
}

// assignTargetIsRecv reports whether the assignment lands on the
// receiving side of the communication (a property of the receiver
// iterator, or a scalar owned by the receiver's region side).
func (a *analyzer) assignTargetIsRecv(s *ast.Assign, sc *siteCtx) bool {
	switch lhs := s.LHS.(type) {
	case *ast.PropAccess:
		tsym := a.symOf(lhs.Target)
		if tsym == sc.recv {
			return true
		}
		if isNodeScalar(tsym) {
			// Random write: its own message type, estimated as written.
			return false
		}
		return false
	case *ast.Ident:
		sym := a.info.Uses[lhs]
		if sym == nil || sym.Kind != sema.SymScalar {
			return false
		}
		// Region-scoped and global scalars accumulate on the outer side.
		return !sc.outerIsSender
	}
	return false
}

// payloadFields finds the maximal sender-evaluable subexpressions of a
// receiver-evaluated expression and records each as a field (mirroring
// recvExpr in translate_comm.go).
func (a *analyzer) payloadFields(e ast.Expr, sc *siteCtx) {
	snd, rcv := a.refSides(e, sc)
	if snd && !rcv {
		a.addField(e, sc)
		return
	}
	if !snd {
		return // receiver-evaluable (or constant): nothing to ship
	}
	switch e := e.(type) {
	case *ast.Binary:
		a.payloadFields(e.L, sc)
		a.payloadFields(e.R, sc)
	case *ast.Unary:
		a.payloadFields(e.X, sc)
	case *ast.Ternary:
		a.payloadFields(e.Cond, sc)
		a.payloadFields(e.Then, sc)
		a.payloadFields(e.Else, sc)
	case *ast.Call:
		a.payloadFields(e.Target, sc)
		for _, arg := range e.Args {
			a.payloadFields(arg, sc)
		}
	case *ast.PropAccess:
		a.payloadFields(e.Target, sc)
	}
}

func (a *analyzer) addField(e ast.Expr, sc *siteCtx) {
	key := ast.PrintExpr(e)
	if sc.keys[key] {
		return
	}
	sc.keys[key] = true
	kind := ir.KInt
	if t := a.info.Types[e]; t != nil {
		k := t.Kind
		if t.Elem != nil {
			k = t.Elem.Kind
		}
		kind = ir.KindOfType(k)
	}
	sc.fields = append(sc.fields, payloadField{expr: e, name: key, kind: kind})
}

// refSides reports whether e references sender-side and/or receiver-
// side values. Edge variables ride with the sender (the message travels
// along their edge).
func (a *analyzer) refSides(e ast.Expr, sc *siteCtx) (snd, rcv bool) {
	if e == nil {
		return false, false
	}
	ast.WalkExpr(e, func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		switch sym := a.info.Uses[id]; {
		case sym == nil:
		case sym == sc.sender:
			snd = true
		case sym == sc.recv:
			rcv = true
		case sym.Kind == sema.SymEdgeVar:
			snd = true
		case sym.Kind == sema.SymScalar && sym.InParallel:
			// Region-scoped locals live on the outer side.
			if sc.outerIsSender {
				snd = true
			} else {
				rcv = true
			}
		}
		return true
	})
	return snd, rcv
}

// emitPayload reports the estimate (GM4001), a hazard-forced width
// warning (GM4002), and a slot-budget overflow (GM4003).
func (a *analyzer) emitPayload(pos token.Pos, sc *siteCtx, r *regionCtx) {
	if len(sc.fields) == 0 {
		a.add(CodePayload, SevInfo, pos,
			"neighbor communication sends a bare message (0 payload fields); its arrival alone carries the information")
		return
	}
	var parts []string
	bytes := 0
	for _, f := range sc.fields {
		parts = append(parts, f.name+" ("+f.kind.String()+")")
		bytes += f.kind.WireSize()
	}
	a.add(CodePayload, SevInfo, pos,
		"neighbor communication sends %d message field(s), ~%d payload byte(s): %s",
		len(sc.fields), bytes, strings.Join(parts, ", "))
	if len(sc.fields) > pregel.MaxPayloadSlots {
		a.add(CodePayloadOverflow, SevError, pos,
			"this communication needs %d message fields, but the engine's message class has only %d payload slots; split the loop or precompute a combined value",
			len(sc.fields), pregel.MaxPayloadSlots)
	}
	for _, f := range sc.fields {
		for _, prop := range a.propsReadIn(f.expr) {
			if _, hazard := r.written[prop]; hazard {
				a.addHint(CodeHazardPayload, SevWarning, pos,
					"narrow the message by reading the property outside the region that writes it, or accept the pre-update exchange",
					"message field %q carries property %q, which this region overwrites: the read-after-write hazard forces shipping the pre-update value instead of reading it on the receiver", f.name, prop.Name)
			}
		}
	}
}

// propsReadIn lists the property symbols read anywhere in e.
func (a *analyzer) propsReadIn(e ast.Expr) []*sema.Symbol {
	var out []*sema.Symbol
	seen := map[*sema.Symbol]bool{}
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if pa, ok := x.(*ast.PropAccess); ok {
			if sym := a.propByName[pa.Prop]; sym != nil && !seen[sym] {
				seen[sym] = true
				out = append(out, sym)
			}
		}
		return true
	})
	return out
}

// conjuncts splits a filter into its top-level && operands.
func conjuncts(e ast.Expr) []ast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.BinAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []ast.Expr{e}
}
