package analysis

import (
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
)

// Analysis 3: unused properties and dead writes. A property column costs
// memory on every vertex (and an artifact slot), so a declared-but-
// unused or written-but-never-read property is always worth flagging.
// Reduction assignments (`+=`, `min=`, ...) read the old value, so they
// count as both a read and a write. Output parameters — param properties
// the caller observes after the run — are exempt from the dead-write
// rule.
func (a *analyzer) liveness() {
	read := map[*sema.Symbol]bool{}
	written := map[*sema.Symbol]bool{}

	var scanStmt func(s ast.Stmt)
	scanExpr := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			if pa, ok := x.(*ast.PropAccess); ok {
				if sym := a.propByName[pa.Prop]; sym != nil {
					read[sym] = true
				}
			}
			return true
		})
	}
	scanStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, c := range s.Stmts {
				scanStmt(c)
			}
		case *ast.VarDecl:
			if s.Init != nil {
				scanExpr(s.Init)
			}
		case *ast.Assign:
			if pa, ok := s.LHS.(*ast.PropAccess); ok {
				if sym := a.propByName[pa.Prop]; sym != nil {
					written[sym] = true
					if s.Op.IsReduction() {
						read[sym] = true
					}
				}
				// The LHS target itself (the vertex expression) is read.
				scanExpr(pa.Target)
			}
			scanExpr(s.RHS)
		case *ast.If:
			scanExpr(s.Cond)
			scanStmt(s.Then)
			if s.Else != nil {
				scanStmt(s.Else)
			}
		case *ast.While:
			scanExpr(s.Cond)
			scanStmt(s.Body)
		case *ast.Foreach:
			if s.Filter != nil {
				scanExpr(s.Filter)
			}
			scanStmt(s.Body)
		case *ast.InBFS:
			scanExpr(s.Root)
			if s.Filter != nil {
				scanExpr(s.Filter)
			}
			scanStmt(s.Body)
			if s.ReverseBody != nil {
				scanStmt(s.ReverseBody)
			}
		case *ast.Return:
			if s.Value != nil {
				scanExpr(s.Value)
			}
		}
	}
	scanStmt(a.proc.Body)

	for _, p := range a.info.Props {
		pos := a.declPos[p]
		switch {
		case !read[p] && !written[p]:
			a.addHint(CodeUnusedProp, SevWarning, pos,
				"remove the declaration (every declared property allocates a column on all vertices)",
				"property %q is declared but never used", p.Name)
		case !read[p] && !p.IsParam:
			a.addHint(CodeDeadWrite, SevWarning, pos,
				"remove the property and its writes, or return the value through a parameter property",
				"local property %q is written but never read; the writes are dead", p.Name)
		}
	}
}
