package analysis

import (
	"strings"
	"testing"
)

// has reports whether the list contains a diagnostic with the code.
func has(l List, code string) bool {
	for _, d := range l {
		if d.Code == code {
			return true
		}
	}
	return false
}

func find(l List, code string) *Diagnostic {
	for i := range l {
		if l[i].Code == code {
			return &l[i]
		}
	}
	return nil
}

func TestDiagnoseParseError(t *testing.T) {
	l := Diagnose("Procedure broken(")
	if !has(l, CodeParse) || !l.HasErrors() {
		t.Fatalf("want GM0001, got %v", l)
	}
}

func TestDiagnoseSemaErrorsAccumulate(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph) {
		x = 1;
		y = 2;
		Int z = True + 1;
	}`)
	n := 0
	for _, d := range l {
		if d.Code == CodeSema {
			n++
		}
	}
	if n < 3 {
		t.Fatalf("want >=3 GM1001, got %v", l)
	}
}

func TestWriteConflict(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, v: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) { t.v = 1; }
		}
	}`)
	d := find(l, CodeWriteConflict)
	if d == nil {
		t.Fatalf("want GM2001, got %v", l)
	}
	if d.Severity != SevWarning || d.Hint == "" {
		t.Errorf("GM2001 should be a warning with a hint: %+v", d)
	}
	if d.Pos.Line != 3 {
		t.Errorf("GM2001 at line %d, want 3", d.Pos.Line)
	}

	// Reduction assignments merge deterministically: no conflict.
	l = Diagnose(`Procedure f(G: Graph, v: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) { t.v += 1; }
		}
	}`)
	if has(l, CodeWriteConflict) {
		t.Errorf("reduction write flagged as conflict: %v", l)
	}
}

func TestScalarAnyWinsConflict(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph) {
		Int x = 0;
		Foreach (n: G.Nodes) { x = 1; }
	}`)
	if !has(l, CodeWriteConflict) {
		t.Fatalf("plain scalar write in parallel should warn: %v", l)
	}
}

func TestHazard(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, r: Node_Prop<Double>) {
		Foreach (n: G.Nodes) {
			n.r = Sum(w: n.Nbrs)(w.r);
		}
	}`)
	if !has(l, CodeCrossStepHazard) || !has(l, CodeHazardPayload) {
		t.Fatalf("want GM2002 and GM4002, got %v", l)
	}

	// Reading a different property is no hazard.
	l = Diagnose(`Procedure f(G: Graph, r: Node_Prop<Double>, s: Node_Prop<Double>) {
		Foreach (n: G.Nodes) {
			n.s = Sum(w: n.Nbrs)(w.r);
		}
	}`)
	if has(l, CodeCrossStepHazard) || has(l, CodeHazardPayload) {
		t.Errorf("no-hazard program flagged: %v", l)
	}
}

func TestBFSLevelsExemptFromHazard(t *testing.T) {
	// bc-style: UpNbrs reads are ordered by BFS levels, not racy.
	l := Diagnose(`Procedure f(G: Graph, root: Node, sig: Node_Prop<Double>) {
		G.sig = 0.0;
		InBFS (v: G.Nodes from root) {
			v.sig += Sum(w: v.UpNbrs)(w.sig);
		}
	}`)
	if has(l, CodeCrossStepHazard) {
		t.Errorf("UpNbrs read flagged as hazard: %v", l)
	}
}

func TestLiveness(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, out: Node_Prop<Int>) {
		Node_Prop<Int> unused;
		Node_Prop<Int> scratch;
		Foreach (n: G.Nodes) { n.scratch = 1; n.out = 2; }
	}`)
	if !has(l, CodeUnusedProp) || !has(l, CodeDeadWrite) {
		t.Fatalf("want GM3001 and GM3002, got %v", l)
	}
	// The written-but-never-read parameter `out` is exempt.
	for _, d := range l {
		if d.Code == CodeDeadWrite && strings.Contains(d.Msg, `"out"`) {
			t.Errorf("output parameter flagged as dead write: %v", d)
		}
	}

	l = Diagnose(`Procedure f(G: Graph, out: Node_Prop<Int>) {
		Node_Prop<Int> tmp;
		Foreach (n: G.Nodes) { n.tmp = 1; }
		Foreach (n: G.Nodes) { n.out = n.tmp; }
	}`)
	if has(l, CodeUnusedProp) || has(l, CodeDeadWrite) {
		t.Errorf("live property flagged: %v", l)
	}
}

func TestPayloadEstimate(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, d: Node_Prop<Int>, len: Edge_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				Edge e = t.ToEdge();
				t.d min= n.d + e.len;
			}
		}
	}`)
	d := find(l, CodePayload)
	if d == nil {
		t.Fatalf("want GM4001, got %v", l)
	}
	if !strings.Contains(d.Msg, "1 message field(s)") || !strings.Contains(d.Msg, "~8 payload byte(s)") {
		t.Errorf("payload estimate wrong: %s", d.Msg)
	}

	// Arrival-only communication: bare message.
	l = Diagnose(`Procedure f(G: Graph, c: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) { t.c += 1; }
		}
	}`)
	d = find(l, CodePayload)
	if d == nil || !strings.Contains(d.Msg, "bare message") {
		t.Errorf("constant-contribution message should be bare: %v", l)
	}
}

func TestPayloadOverflow(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, k: Node_Prop<Double>, a: Node_Prop<Double>, b: Node_Prop<Double>, c: Node_Prop<Double>, d2: Node_Prop<Double>, f2: Node_Prop<Double>, s: Node_Prop<Double>) {
		Foreach (n: G.Nodes) {
			n.s = Sum(w: n.Nbrs)(n.k*w.a + n.k*w.b + n.k*w.c + n.k*w.d2 + n.k*w.f2);
		}
	}`)
	d := find(l, CodePayloadOverflow)
	if d == nil || d.Severity != SevError {
		t.Fatalf("5 fields should overflow the slot budget as an error: %v", l)
	}

	// Exactly at the budget: fine.
	l = Diagnose(`Procedure f(G: Graph, k: Node_Prop<Double>, a: Node_Prop<Double>, b: Node_Prop<Double>, c: Node_Prop<Double>, d2: Node_Prop<Double>, s: Node_Prop<Double>) {
		Foreach (n: G.Nodes) {
			n.s = Sum(w: n.Nbrs)(n.k*w.a + n.k*w.b + n.k*w.c + n.k*w.d2);
		}
	}`)
	if has(l, CodePayloadOverflow) {
		t.Errorf("4 fields flagged as overflow: %v", l)
	}
}

func TestCanonicalizability(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, v: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (m: G.Nodes) { m.v += n.v; }
		}
	}`)
	d := find(l, CodeParallelNest)
	if d == nil || d.Severity != SevError {
		t.Fatalf("want GM5006 error, got %v", l)
	}

	l = Diagnose(`Procedure f(G: Graph, v: Node_Prop<Int>) {
		Int i = 0;
		While (i < 3) {
			Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { t.v += 1; } }
			i = i + 1;
		}
	}`)
	if !has(l, CodeLoopDissect) {
		t.Errorf("sequential loop around parallel work should note dissection: %v", l)
	}
}

func TestDeepNesting(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, v: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			Foreach (t: n.Nbrs) {
				Foreach (u: t.Nbrs) { u.v += 1; }
			}
		}
	}`)
	d := find(l, CodeDeepNest)
	if d == nil || d.Severity != SevError {
		t.Fatalf("two nested neighbor loops should be GM5009, got %v", l)
	}
}

func TestDiagnosticsAreSorted(t *testing.T) {
	l := Diagnose(`Procedure f(G: Graph, r: Node_Prop<Double>) {
		Node_Prop<Double> unused;
		Foreach (n: G.Nodes) {
			n.r = Sum(w: n.Nbrs)(w.r);
		}
	}`)
	for i := 1; i < len(l); i++ {
		a, b := l[i-1], l[i]
		if a.Pos.Line > b.Pos.Line || (a.Pos.Line == b.Pos.Line && a.Pos.Col > b.Pos.Col) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

func TestGatherConvertibleNote(t *testing.T) {
	// A PageRank-style in-neighbor reduction: the exchanged value is a
	// pure function of sender state, so the direction optimizer may run
	// the superstep as a pull.
	l := Diagnose(`Procedure f(G: Graph, r: Node_Prop<Double>) {
		Foreach (n: G.Nodes) {
			n.r = Sum(w: n.InNbrs)(w.r / w.Degree());
		}
	}`)
	d := find(l, CodeGatherable)
	if d == nil || d.Severity != SevInfo {
		t.Fatalf("want GM5010 info, got %v", l)
	}

	// A PickRandom payload would resample at gather time: no note.
	l = Diagnose(`Procedure f(G: Graph, p: Node_Prop<Node>, c: Node_Prop<Int>) {
		Foreach (n: G.Nodes) {
			n.c = Count(w: n.InNbrs)(w.p == G.PickRandom());
		}
	}`)
	if has(l, CodeGatherable) {
		t.Fatalf("PickRandom reduction must not be marked gather-convertible: %v", l)
	}
}
