package analysis

import "sort"

// CodeInfo is one entry in the central diagnostic-code registry: the
// stable code, its default severity, and a one-line summary matching
// docs/ANALYSIS.md.
type CodeInfo struct {
	Code     string
	Severity Severity
	Summary  string
}

// CodeTable is the central registry of every stable GMxxxx diagnostic
// code. gmlint's gmdiag analyzer statically enforces that the table,
// the Code* constants above, and docs/ANALYSIS.md agree: every constant
// is registered exactly once and documented, and no diagnostic is built
// from an unregistered string literal. Adding a code means adding the
// constant, a row here, and a docs/ANALYSIS.md entry — gmdiag fails the
// build otherwise.
var CodeTable = []CodeInfo{
	{CodeParse, SevError, "source does not parse"},
	{CodeOther, SevError, "compile failure without a source position"},
	{CodeSema, SevError, "semantic (name/type) error"},
	{CodeWriteConflict, SevWarning, "parallel plain-write conflict (one write wins)"},
	{CodeCrossStepHazard, SevWarning, "cross-superstep read-after-write hazard"},
	{CodeUnusedProp, SevWarning, "property declared but never used"},
	{CodeDeadWrite, SevWarning, "property written but never read"},
	{CodePayload, SevInfo, "message payload estimate for a communication"},
	{CodeHazardPayload, SevWarning, "hazard forces a wider message"},
	{CodePayloadOverflow, SevError, "payload exceeds the engine's slot budget"},
	{CodeLoopDissect, SevInfo, "sequential loop forces dissection / merge barrier"},
	{CodeIncomingComm, SevInfo, "incoming-edge communication (flip / in-nbr prologue)"},
	{CodeRandomWrite, SevInfo, "random write lowers to a directed message"},
	{CodeRandomAccess, SevInfo, "sequential random access lowers to a filtered loop"},
	{CodeBFS, SevInfo, "InBFS lowers to level-synchronous supersteps"},
	{CodeParallelNest, SevInfo, "whole-graph work nested in a parallel region"},
	{CodeCondPull, SevInfo, "message-pulling loop under a condition"},
	{CodeEdgePull, SevInfo, "edge property used in a message-pulling loop"},
	{CodeDeepNest, SevInfo, "neighbor iteration nested deeper than one level"},
	{CodeGatherable, SevInfo, "neighborhood reduction is gather-convertible (direction optimizer may pull)"},
}

// LookupCode returns the registry entry for a code.
func LookupCode(code string) (CodeInfo, bool) {
	for _, ci := range CodeTable {
		if ci.Code == code {
			return ci, true
		}
	}
	return CodeInfo{}, false
}

// RegisteredCodes returns every registered code, sorted.
func RegisteredCodes() []string {
	out := make([]string, len(CodeTable))
	for i, ci := range CodeTable {
		out[i] = ci.Code
	}
	sort.Strings(out)
	return out
}
