package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"gmpregel/internal/gm/token"
)

func TestSeverityNames(t *testing.T) {
	for sev, name := range map[Severity]string{
		SevInfo: "info", SevWarning: "warning", SevError: "error",
	} {
		if sev.String() != name {
			t.Errorf("%d.String() = %q, want %q", sev, sev.String(), name)
		}
		back, err := ParseSeverity(name)
		if err != nil || back != sev {
			t.Errorf("ParseSeverity(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity should reject unknown names")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Code: CodeWriteConflict, Severity: SevWarning,
		Pos: token.Pos{Line: 7, Col: 13}, Msg: "racy write",
	}
	if got := d.String(); got != "7:13: warning GM2001: racy write" {
		t.Errorf("String() = %q", got)
	}
	d.Pos = token.Pos{}
	if got := d.String(); !strings.HasPrefix(got, "-: ") {
		t.Errorf("invalid position should render as -: got %q", got)
	}
}

func TestDiagnosticJSONRoundTrip(t *testing.T) {
	d := Diagnostic{
		Code: CodeCrossStepHazard, Severity: SevWarning,
		Pos: token.Pos{Line: 3, Col: 9}, Msg: "m", Hint: "h",
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip drifted: %+v vs %+v", back, d)
	}
}

func TestListSortCountsAndText(t *testing.T) {
	l := List{
		{Code: CodePayload, Severity: SevInfo, Pos: token.Pos{Line: 9, Col: 1}, Msg: "c"},
		{Code: CodeSema, Severity: SevError, Pos: token.Pos{Line: 2, Col: 5}, Msg: "a"},
		{Code: CodeCrossStepHazard, Severity: SevWarning, Pos: token.Pos{Line: 2, Col: 5}, Msg: "b", Hint: "fix it"},
	}
	l.Sort()
	if l[0].Code != CodeSema || l[1].Code != CodeCrossStepHazard || l[2].Code != CodePayload {
		t.Errorf("sort order wrong: %v", l.Codes())
	}
	e, w, i := l.Counts()
	if e != 1 || w != 1 || i != 1 {
		t.Errorf("Counts() = %d,%d,%d", e, w, i)
	}
	if !l.HasErrors() || !l.HasWarnings() {
		t.Error("HasErrors/HasWarnings should be true")
	}
	text := l.Text()
	if !strings.Contains(text, "hint: fix it") || strings.Count(text, "\n") != 4 {
		t.Errorf("Text() rendering unexpected:\n%s", text)
	}
}

func TestReportEnvelope(t *testing.T) {
	data, err := List(nil).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"diagnostics": []`) {
		t.Errorf("empty list should render diagnostics as [], got %s", data)
	}
	back, err := DecodeJSON(data)
	if err != nil || len(back) != 0 {
		t.Errorf("DecodeJSON(empty) = %v, %v", back, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if !r.WarningFree {
		t.Error("empty report should be warning-free")
	}
}
