// Package analysis runs dataflow analyses over a typed Green-Marl AST
// and reports its findings as Diagnostics with stable codes, severities,
// and source positions.
//
// The analyses mirror the static reasoning the CGO 2014 compiler does
// while mapping Green-Marl onto Pregel:
//
//   - write-write conflicts: plain `=` property writes that several
//     vertices (or several messages) may race on, where only reduction
//     assignments (min=, max=, +=, ...) merge deterministically (GM2001);
//   - cross-superstep read-after-write hazards: neighbor-property reads
//     of a value the same parallel region writes, which BSP semantics
//     resolve to the previous superstep's value via an extra message
//     exchange (GM2002);
//   - unused/dead properties and dead writes (GM3001, GM3002);
//   - message-payload width estimation per communication, using the same
//     maximal-sender-subexpression dataflow as the translator (GM4001,
//     GM4002, GM4003);
//   - Pregel-canonicalizability explanations: which transformation rule
//     a construct triggers or defeats, and where (GM5001..GM5009).
//
// The entry points are Diagnose (source text in, diagnostics out) and
// AnalyzeProcedure (typed AST in, diagnostics out).
package analysis

import (
	"fmt"

	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/parser"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/gm/token"
)

// Diagnose parses, checks, and analyzes a Green-Marl procedure. Parse
// and semantic errors are folded into the diagnostic stream (GM0001,
// GM1001) instead of being returned, so the caller always gets a List.
func Diagnose(src string) List {
	proc, err := parser.ParseProcedure(src)
	if err != nil {
		return FromError(err)
	}
	info, err := sema.Check(proc)
	if err != nil {
		return FromError(err)
	}
	return AnalyzeProcedure(proc, info)
}

// FromError converts a front-end error into diagnostics: parser errors
// become GM0001, each semantic error becomes one GM1001, anything else
// becomes a position-less GM0002.
func FromError(err error) List {
	switch e := err.(type) {
	case *parser.Error:
		return List{{Code: CodeParse, Severity: SevError, Pos: e.Pos, Msg: e.Msg}}
	case sema.ErrorList:
		out := make(List, 0, len(e))
		for _, se := range e {
			out = append(out, Diagnostic{Code: CodeSema, Severity: SevError, Pos: se.Pos, Msg: se.Msg})
		}
		return out
	case *sema.Error:
		return List{{Code: CodeSema, Severity: SevError, Pos: e.Pos, Msg: e.Msg}}
	default:
		return List{{Code: CodeOther, Severity: SevError, Msg: err.Error()}}
	}
}

// AnalyzeProcedure runs all analyses over a sema-checked procedure and
// returns the findings sorted by position. info must come from a
// successful sema.Check of proc.
func AnalyzeProcedure(proc *ast.Procedure, info *sema.Info) List {
	a := &analyzer{
		proc:       proc,
		info:       info,
		propByName: map[string]*sema.Symbol{},
		declPos:    map[*sema.Symbol]token.Pos{},
	}
	for _, p := range info.Props {
		a.propByName[p.Name] = p
	}
	for d, syms := range info.DeclOf {
		for _, s := range syms {
			a.declPos[s] = d.P
		}
	}
	for _, prm := range proc.Params {
		if s := a.propByName[prm.Name]; s != nil && s.IsParam {
			a.declPos[s] = prm.P
		}
	}
	a.liveness()
	a.seqStmt(proc.Body)
	a.diags.Sort()
	return a.diags
}

type analyzer struct {
	proc  *ast.Procedure
	info  *sema.Info
	diags List

	// propByName resolves property names to symbols (the language
	// forbids shadowing, so property names are unique per procedure).
	propByName map[string]*sema.Symbol
	// declPos locates each property symbol's declaration.
	declPos map[*sema.Symbol]token.Pos
}

func (a *analyzer) add(code string, sev Severity, p token.Pos, format string, args ...interface{}) {
	a.diags = append(a.diags, Diagnostic{Code: code, Severity: sev, Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (a *analyzer) addHint(code string, sev Severity, p token.Pos, hint, format string, args ...interface{}) {
	a.diags = append(a.diags, Diagnostic{Code: code, Severity: sev, Pos: p, Msg: fmt.Sprintf(format, args...), Hint: hint})
}

// symOf resolves an identifier expression to its symbol.
func (a *analyzer) symOf(e ast.Expr) *sema.Symbol {
	if id, ok := e.(*ast.Ident); ok {
		return a.info.Uses[id]
	}
	return nil
}

// isNodeScalar reports whether sym is a node-valued variable (a random
// write/read target, as opposed to an iterator).
func isNodeScalar(sym *sema.Symbol) bool {
	return sym != nil && sym.Kind == sema.SymScalar && sym.Type != nil && sym.Type.Kind == ast.TNode
}

// ---- Sequential-context walk ----

// seqStmt visits statements in sequential (master) context, entering a
// parallel region at each vertex loop or BFS traversal.
func (a *analyzer) seqStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, c := range s.Stmts {
			a.seqStmt(c)
		}
	case *ast.VarDecl:
		if s.Init != nil {
			a.seqExpr(s.Init)
		}
	case *ast.Assign:
		a.seqExpr(s.RHS)
		if pa, ok := s.LHS.(*ast.PropAccess); ok {
			a.seqLValue(pa)
		}
	case *ast.Return:
		if s.Value != nil {
			a.seqExpr(s.Value)
		}
	case *ast.If:
		a.seqExpr(s.Cond)
		a.seqStmt(s.Then)
		if s.Else != nil {
			a.seqStmt(s.Else)
		}
	case *ast.While:
		a.seqExpr(s.Cond)
		if containsParallel(s.Body) {
			a.add(CodeLoopDissect, SevInfo, s.P,
				"sequential loop around parallel work: the compiler dissects each iteration into supersteps, and state merging cannot cross the loop boundary")
		}
		a.seqStmt(s.Body)
	case *ast.Foreach:
		// Sema guarantees sequential-context Foreach iterates G.Nodes.
		a.regionForeach(s)
	case *ast.InBFS:
		a.add(CodeBFS, SevInfo, s.P,
			"InBFS lowers to level-synchronous supersteps (BFS Traversal rule)%s",
			map[bool]string{true: "; InReverse adds a backward sweep", false: ""}[s.ReverseBody != nil])
		a.regionBFS(s)
	}
}

// seqLValue flags sequential random writes (`s.prop = ...` through a
// node variable), which the Random Access rule lowers to a filtered
// one-superstep parallel loop.
func (a *analyzer) seqLValue(pa *ast.PropAccess) {
	if isNodeScalar(a.symOf(pa.Target)) {
		a.add(CodeRandomAccess, SevInfo, pa.P,
			"random access to %q through node variable: the Random Access rule lowers this to a filtered vertex-parallel loop (one extra superstep)", pa.Prop)
	}
}

// seqExpr scans a sequential-context expression for random property
// accesses and whole-graph reductions (which are parallel regions of
// their own and may contain neighbor communications).
func (a *analyzer) seqExpr(e ast.Expr) {
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.PropAccess:
			a.seqLValue(x) // same lowering applies to reads
		case *ast.Reduce:
			a.regionReduce(x)
			return false
		}
		return true
	})
}

// regionReduce treats a sequential whole-graph reduction as a parallel
// region (the normalizer lowers it to a vertex loop + aggregator).
func (a *analyzer) regionReduce(red *ast.Reduce) {
	if red.Domain != ast.IterNodes {
		// A neighborhood reduction with no enclosing vertex loop cannot
		// be expressed as vertex-parallel code.
		a.add(CodeParallelNest, SevError, red.P,
			"a neighborhood reduction outside a vertex-parallel loop is not Pregel-compatible")
		return
	}
	r := &regionCtx{iter: a.info.IterOf[red], written: map[*sema.Symbol][]token.Pos{}}
	if red.Filter != nil {
		a.parExpr(red.Filter, r)
	}
	if red.Body != nil {
		a.parExpr(red.Body, r)
	}
}

// containsParallel reports whether s contains a vertex loop, traversal,
// or whole-graph reduction.
func containsParallel(s ast.Stmt) bool {
	found := false
	ast.WalkStmts(s, func(st ast.Stmt) bool {
		switch st.(type) {
		case *ast.Foreach, *ast.InBFS:
			found = true
		}
		return !found
	})
	if !found {
		ast.WalkExprs(s, func(e ast.Expr) bool {
			if _, ok := e.(*ast.Reduce); ok {
				found = true
			}
			return !found
		})
	}
	return found
}
