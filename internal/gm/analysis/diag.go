package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"gmpregel/internal/gm/token"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, from least to most severe.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

var severityNames = [...]string{"info", "warning", "error"}

func (s Severity) String() string {
	if s < SevInfo || s > SevError {
		return "unknown"
	}
	return severityNames[s]
}

// ParseSeverity converts a rendered severity name back to its value.
func ParseSeverity(name string) (Severity, error) {
	for i, n := range severityNames {
		if n == name {
			return Severity(i), nil
		}
	}
	return SevInfo, fmt.Errorf("analysis: unknown severity %q", name)
}

// Stable diagnostic codes. Each code identifies one class of finding and
// never changes meaning (docs/ANALYSIS.md catalogues them).
const (
	CodeParse = "GM0001" // source does not parse
	CodeOther = "GM0002" // compile error without a position
	CodeSema  = "GM1001" // semantic (name/type) error

	CodeWriteConflict   = "GM2001" // parallel plain-write conflict ("one write wins")
	CodeCrossStepHazard = "GM2002" // cross-superstep read-after-write hazard

	CodeUnusedProp = "GM3001" // property declared but never used
	CodeDeadWrite  = "GM3002" // property written but never read

	CodePayload         = "GM4001" // message payload estimate for a communication
	CodeHazardPayload   = "GM4002" // hazard forces a wider message
	CodePayloadOverflow = "GM4003" // payload exceeds the engine's slot budget

	CodeLoopDissect  = "GM5001" // sequential loop forces dissection / merge barrier
	CodeIncomingComm = "GM5002" // incoming-edge communication (flip / in-nbr prologue)
	CodeRandomWrite  = "GM5003" // random write lowers to a directed message
	CodeRandomAccess = "GM5004" // sequential random access lowers to a filtered loop
	CodeBFS          = "GM5005" // InBFS lowers to level-synchronous supersteps
	CodeParallelNest = "GM5006" // whole-graph work nested in a parallel region
	CodeCondPull     = "GM5007" // message-pulling loop under a condition
	CodeEdgePull     = "GM5008" // edge property used in a message-pulling loop
	CodeDeepNest     = "GM5009" // neighbor iteration nested deeper than one level
	CodeGatherable   = "GM5010" // neighborhood reduction is gather-convertible (direction optimizer may pull)
)

// Diagnostic is one analyzer finding: a stable code, a severity, the
// source position it anchors to, a message, and an optional fix hint.
type Diagnostic struct {
	Code     string
	Severity Severity
	Pos      token.Pos
	Msg      string
	Hint     string // optional suggestion for fixing the finding
}

// String renders the diagnostic on one line: "line:col: severity CODE: msg".
func (d Diagnostic) String() string {
	pos := "-"
	if d.Pos.IsValid() {
		pos = d.Pos.String()
	}
	return fmt.Sprintf("%s: %s %s: %s", pos, d.Severity, d.Code, d.Msg)
}

// jsonDiag is the wire form of a Diagnostic; severity renders as its
// name and the position as explicit line/col so the JSON is self-
// describing for external tooling.
type jsonDiag struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonDiag{
		Code: d.Code, Severity: d.Severity.String(),
		Line: d.Pos.Line, Col: d.Pos.Col,
		Message: d.Msg, Hint: d.Hint,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Diagnostic) UnmarshalJSON(data []byte) error {
	var j jsonDiag
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	sev, err := ParseSeverity(j.Severity)
	if err != nil {
		return err
	}
	*d = Diagnostic{
		Code: j.Code, Severity: sev,
		Pos: token.Pos{Line: j.Line, Col: j.Col},
		Msg: j.Message, Hint: j.Hint,
	}
	return nil
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// Sort orders the list by position, then code, then message, so output
// is deterministic regardless of analysis order.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// Counts tallies the list by severity.
func (l List) Counts() (errors, warnings, infos int) {
	for _, d := range l {
		switch d.Severity {
		case SevError:
			errors++
		case SevWarning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any diagnostic is an error.
func (l List) HasErrors() bool {
	e, _, _ := l.Counts()
	return e > 0
}

// HasWarnings reports whether any diagnostic is a warning.
func (l List) HasWarnings() bool {
	_, w, _ := l.Counts()
	return w > 0
}

// Codes returns the distinct diagnostic codes present, sorted.
func (l List) Codes() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range l {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	sort.Strings(out)
	return out
}

// Text renders the list for a terminal: one line per diagnostic plus an
// indented hint line when present.
func (l List) Text() string {
	var b strings.Builder
	for _, d := range l {
		b.WriteString(d.String())
		b.WriteByte('\n')
		if d.Hint != "" {
			b.WriteString("    hint: " + d.Hint + "\n")
		}
	}
	return b.String()
}

// Report is the JSON envelope of a diagnostic run.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
	Infos       int          `json:"infos"`
	WarningFree bool         `json:"warning_free"`
}

// Report wraps the list in its JSON envelope with severity totals.
func (l List) Report() Report {
	e, w, i := l.Counts()
	diags := []Diagnostic(l)
	if diags == nil {
		diags = []Diagnostic{} // render as [] rather than null
	}
	return Report{Diagnostics: diags, Errors: e, Warnings: w, Infos: i, WarningFree: e == 0 && w == 0}
}

// JSON renders the list as an indented JSON report that DecodeJSON (or
// any encoding/json client) can parse back.
func (l List) JSON() ([]byte, error) {
	return json.MarshalIndent(l.Report(), "", "  ")
}

// DecodeJSON parses a report produced by JSON back into a List.
func DecodeJSON(data []byte) (List, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("analysis: decoding report: %w", err)
	}
	return List(r.Diagnostics), nil
}
