package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestCodeTableIsUniqueAndWellFormed(t *testing.T) {
	codeRe := regexp.MustCompile(`^GM[0-9]{4}$`)
	seen := map[string]bool{}
	for _, ci := range CodeTable {
		if !codeRe.MatchString(ci.Code) {
			t.Errorf("malformed code %q", ci.Code)
		}
		if seen[ci.Code] {
			t.Errorf("code %s registered twice", ci.Code)
		}
		seen[ci.Code] = true
		if ci.Summary == "" {
			t.Errorf("code %s has no summary", ci.Code)
		}
	}
}

func TestLookupCode(t *testing.T) {
	ci, ok := LookupCode("GM0001")
	if !ok || ci.Code != "GM0001" {
		t.Fatalf("LookupCode(GM0001) = %+v, %v", ci, ok)
	}
	if _, ok := LookupCode("GM9999"); ok {
		t.Fatal("LookupCode(GM9999) unexpectedly found")
	}
}

func TestRegisteredCodesSorted(t *testing.T) {
	codes := RegisteredCodes()
	if len(codes) != len(CodeTable) {
		t.Fatalf("RegisteredCodes returned %d codes, table has %d", len(codes), len(CodeTable))
	}
	if !sort.StringsAreSorted(codes) {
		t.Fatalf("RegisteredCodes not sorted: %v", codes)
	}
}

// TestCodeTableMatchesDocs checks the registry against docs/ANALYSIS.md
// at runtime — the same invariant gmdiag enforces statically, kept here
// so `go test` alone catches a drift.
func TestCodeTableMatchesDocs(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "docs", "ANALYSIS.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, ci := range CodeTable {
		if !strings.Contains(doc, ci.Code) {
			t.Errorf("code %s is registered but not documented in docs/ANALYSIS.md", ci.Code)
		}
	}
}
