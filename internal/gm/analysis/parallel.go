package analysis

import (
	"gmpregel/internal/gm/ast"
	"gmpregel/internal/gm/sema"
	"gmpregel/internal/gm/token"
)

// regionCtx is the state of one vertex-parallel region (a top-level
// Foreach over G.Nodes, an InBFS body, or a lowered whole-graph
// reduction).
type regionCtx struct {
	// iter is the region's vertex iterator symbol.
	iter *sema.Symbol
	// written maps each property symbol written anywhere in the region
	// to the positions of its writes (for hazard detection).
	written map[*sema.Symbol][]token.Pos
	// bfs marks InBFS regions, whose level-wise ordering changes which
	// hazards are real.
	bfs bool
}

// parState carries per-statement context through a region walk.
type parState struct {
	// inNbrLoop is true inside an inner neighbor loop, where each
	// statement runs once per neighbor (or per received message).
	inNbrLoop bool
	// underCond is true below an If inside the region body; a pulling
	// loop there defeats the Dissecting Loops rule.
	underCond bool
}

// regionForeach analyzes one top-level vertex-parallel loop.
func (a *analyzer) regionForeach(f *ast.Foreach) {
	r := &regionCtx{iter: a.info.IterOf[f], written: map[*sema.Symbol][]token.Pos{}}
	a.collectWrites(f.Body, r)
	if f.Filter != nil {
		a.parExpr(f.Filter, r)
	}
	a.parStmt(f.Body, r, parState{})
}

// regionBFS analyzes the forward and reverse bodies of a traversal.
func (a *analyzer) regionBFS(b *ast.InBFS) {
	a.seqExpr(b.Root)
	iter := a.info.IterOf[b]
	for _, body := range []*ast.Block{b.Body, b.ReverseBody} {
		if body == nil {
			continue
		}
		r := &regionCtx{iter: iter, written: map[*sema.Symbol][]token.Pos{}, bfs: true}
		a.collectWrites(body, r)
		a.parStmt(body, r, parState{})
	}
}

// collectWrites pre-scans a region body for property writes; the result
// feeds the hazard analysis (a neighbor read of any of these properties
// observes the previous superstep's value).
func (a *analyzer) collectWrites(s ast.Stmt, r *regionCtx) {
	ast.WalkStmts(s, func(st ast.Stmt) bool {
		if as, ok := st.(*ast.Assign); ok {
			if pa, ok := as.LHS.(*ast.PropAccess); ok {
				if sym := a.propByName[pa.Prop]; sym != nil {
					r.written[sym] = append(r.written[sym], as.P)
				}
			}
		}
		return true
	})
}

// parStmt visits one statement inside a parallel region.
func (a *analyzer) parStmt(s ast.Stmt, r *regionCtx, st parState) {
	switch s := s.(type) {
	case *ast.Block:
		for _, c := range s.Stmts {
			a.parStmt(c, r, st)
		}
	case *ast.VarDecl:
		if s.Init != nil {
			a.parExpr(s.Init, r)
		}
	case *ast.Assign:
		a.parAssign(s, r, st)
	case *ast.If:
		a.parExpr(s.Cond, r)
		inner := st
		inner.underCond = true
		a.parStmt(s.Then, r, inner)
		if s.Else != nil {
			a.parStmt(s.Else, r, inner)
		}
	case *ast.Foreach:
		a.nbrLoop(s, r, st)
	}
}

// parAssign checks one assignment in parallel context for write-write
// conflicts (analysis 1) and canonicalizability notes, then scans its
// right-hand side for hazards.
func (a *analyzer) parAssign(s *ast.Assign, r *regionCtx, st parState) {
	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		sym := a.info.Uses[lhs]
		// A plain write to a sequential scalar from vertex-parallel code
		// becomes an any-wins aggregator: nondeterministic.
		if sym != nil && sym.Kind == sema.SymScalar && !sym.InParallel && s.Op == ast.OpSet {
			a.addHint(CodeWriteConflict, SevWarning, s.P,
				"use a reduction assignment (+=, min=, max=, &=, |=) to merge parallel writes deterministically",
				"parallel plain write to scalar %q: every vertex writes it and one arbitrary write wins", lhs.Name)
		}
	case *ast.PropAccess:
		a.parPropWrite(s, lhs, r, st)
	}
	a.parExpr(s.RHS, r)
}

// parPropWrite classifies a property write by its target.
func (a *analyzer) parPropWrite(s *ast.Assign, lhs *ast.PropAccess, r *regionCtx, st parState) {
	tsym := a.symOf(lhs.Target)
	if tsym == nil {
		return
	}
	hint := "use a reduction assignment (+=, min=, max=, &=, |=) to merge parallel writes deterministically"
	switch {
	case tsym == r.iter:
		// Writing the current vertex's own property is private — unless
		// it happens once per neighbor/message inside an inner loop,
		// where a plain write keeps an arbitrary message's value.
		if st.inNbrLoop && s.Op == ast.OpSet {
			a.addHint(CodeWriteConflict, SevWarning, s.P, hint,
				"plain write to %s.%s runs once per neighbor; the last message processed wins", lhs.Target.(*ast.Ident).Name, lhs.Prop)
		}
	case tsym.Kind == sema.SymNodeIter:
		// Writing through a neighbor iterator: many vertices may target
		// the same neighbor in the same superstep.
		if s.Op == ast.OpSet {
			a.addHint(CodeWriteConflict, SevWarning, s.P, hint,
				"parallel plain write to neighbor property %s.%s: multiple vertices may write the same target and one write wins", lhs.Target.(*ast.Ident).Name, lhs.Prop)
		}
	case isNodeScalar(tsym):
		// Random write: the Random Writing rule ships it as a message to
		// a runtime-chosen vertex.
		a.add(CodeRandomWrite, SevInfo, s.P,
			"write to %s.%s targets a vertex chosen at runtime; the Random Writing rule delivers it as a directed message", lhs.Target.(*ast.Ident).Name, lhs.Prop)
		if s.Op == ast.OpSet {
			a.addHint(CodeWriteConflict, SevWarning, s.P, hint,
				"parallel plain write to %s.%s: multiple vertices may pick the same target and one write wins", lhs.Target.(*ast.Ident).Name, lhs.Prop)
		}
	}
}

// parExpr scans an expression in parallel context: neighbor-property
// reads feed the hazard analysis and nested reductions become
// communication sites.
func (a *analyzer) parExpr(e ast.Expr, r *regionCtx) {
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.PropAccess:
			a.parPropRead(x, r)
		case *ast.Reduce:
			a.reduceSite(x, r)
			return false
		}
		return true
	})
}

// parPropRead flags cross-superstep read-after-write hazards (analysis
// 2): reading a neighbor's property that this region also writes means
// the value observed is the previous superstep's — the translator must
// ship the stale value in an extra message exchange. Reads through
// UpNbrs/DownNbrs iterators are exempt: BFS levels order them.
func (a *analyzer) parPropRead(pa *ast.PropAccess, r *regionCtx) {
	tsym := a.symOf(pa.Target)
	if tsym == nil || tsym.Kind != sema.SymNodeIter {
		return
	}
	if tsym.IterDomain != ast.IterOutNbrs && tsym.IterDomain != ast.IterInNbrs {
		return
	}
	prop := a.propByName[pa.Prop]
	if prop == nil {
		return
	}
	if wpos, ok := r.written[prop]; ok {
		a.addHint(CodeCrossStepHazard, SevWarning, pa.P,
			"if the previous-superstep value is intended (as in PageRank), this is correct but costs a full exchange of the old values",
			"read of neighbor property %s.%s while this parallel region writes %q (at %s): BSP semantics deliver the previous superstep's value via an extra message exchange",
			pa.Target.(*ast.Ident).Name, pa.Prop, pa.Prop, wpos[0])
	}
}

// reduceSite analyzes a reduction inside a parallel region. Whole-graph
// reductions there are not canonicalizable; neighborhood reductions are
// communication sites; UpNbrs/DownNbrs reductions ride on BFS levels.
func (a *analyzer) reduceSite(red *ast.Reduce, r *regionCtx) {
	switch red.Domain {
	case ast.IterNodes:
		a.add(CodeParallelNest, SevError, red.P,
			"a whole-graph reduction inside a vertex-parallel loop is not Pregel-compatible (no rule covers doubly-parallel iteration)")
	case ast.IterUpNbrs, ast.IterDownNbrs:
		// Levelwise BFS communication: values from the previous level
		// are final, so no hazard/payload site is recorded; still scan
		// the subtree for conflicts and nested constructs.
	case ast.IterOutNbrs, ast.IterInNbrs:
		if red.Domain == ast.IterInNbrs {
			a.add(CodeIncomingComm, SevInfo, red.P,
				"communication along incoming edges: the compiler flips the edge direction or builds incoming-neighbor lists (Flipping Edges / Incoming Neighbors rules)")
		}
		if !usesPickRandom(red.Body) && !usesPickRandom(red.Filter) {
			a.add(CodeGatherable, SevInfo, red.P,
				"the message this reduction exchanges is a pure function of sender state; the runtime's direction optimizer may execute the superstep as a reverse-CSR pull (final per-state eligibility is decided by the backend)")
		}
		a.payloadOfReduce(red, r)
	}
	if red.Filter != nil {
		a.parExpr(red.Filter, r)
	}
	if red.Body != nil {
		a.parExpr(red.Body, r)
	}
}

// nbrLoop analyzes an inner Foreach inside a parallel region: a
// communication site (push or pull), plus the canonicalizability rules
// that constrain where pulls may appear.
func (a *analyzer) nbrLoop(f *ast.Foreach, r *regionCtx, st parState) {
	switch f.Kind {
	case ast.IterNodes:
		a.add(CodeParallelNest, SevError, f.P,
			"a whole-graph loop nested inside a vertex-parallel loop is not Pregel-compatible")
		return
	case ast.IterUpNbrs, ast.IterDownNbrs:
		// BFS-level loops communicate along finished levels; walk the
		// body for conflicts only.
		inner := st
		inner.inNbrLoop = true
		if f.Filter != nil {
			a.parExpr(f.Filter, r)
		}
		a.parStmt(f.Body, r, inner)
		return
	}
	if st.inNbrLoop {
		a.add(CodeDeepNest, SevError, f.P,
			"neighbor iteration nested deeper than one level cannot be expressed as vertex-centric message passing")
		return
	}

	pull := a.isPull(f, r)
	if pull {
		if st.underCond {
			a.add(CodeCondPull, SevError, f.P,
				"a message-pulling neighbor loop under a condition cannot be transformed (Dissecting Loops requires pulls to stand alone); restructure the program")
		}
		if edgeDeclIn(f.Body) {
			a.add(CodeEdgePull, SevError, f.P,
				"edge properties cannot be used in a message-pulling loop: the edge is not available on the sending side after Flipping Edges")
		}
	}
	if f.Kind == ast.IterInNbrs {
		a.add(CodeIncomingComm, SevInfo, f.P,
			"communication along incoming edges: the compiler flips the edge direction or builds incoming-neighbor lists (Flipping Edges / Incoming Neighbors rules)")
	}
	a.payloadOfLoop(f, r, pull)

	inner := st
	inner.inNbrLoop = true
	if f.Filter != nil {
		a.parExpr(f.Filter, r)
	}
	a.parStmt(f.Body, r, inner)
}

// isPull reports whether the inner loop pulls values toward the outer
// vertex: it writes a property of the region iterator or an outer-scope
// scalar (which loop dissection turns into a property of the iterator).
func (a *analyzer) isPull(f *ast.Foreach, r *regionCtx) bool {
	pull := false
	declared := map[*sema.Symbol]bool{}
	ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.VarDecl:
			for _, sym := range a.info.DeclOf[s] {
				declared[sym] = true
			}
		case *ast.Assign:
			switch lhs := s.LHS.(type) {
			case *ast.PropAccess:
				if a.symOf(lhs.Target) == r.iter {
					pull = true
				}
			case *ast.Ident:
				if sym := a.info.Uses[lhs]; sym != nil && sym.Kind == sema.SymScalar && !declared[sym] {
					pull = true
				}
			}
		}
		return !pull
	})
	return pull
}

// usesPickRandom reports whether the expression draws a random node —
// a gather re-evaluation would draw a fresh sample, so such payloads
// are never direction-convertible.
func usesPickRandom(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if c, ok := x.(*ast.Call); ok && c.Name == "PickRandom" {
			found = true
		}
		return !found
	})
	return found
}

// edgeDeclIn reports whether the loop body binds an Edge variable.
func edgeDeclIn(s ast.Stmt) bool {
	found := false
	ast.WalkStmts(s, func(st ast.Stmt) bool {
		if d, ok := st.(*ast.VarDecl); ok && d.Type.Kind == ast.TEdge {
			found = true
		}
		return !found
	})
	return found
}
