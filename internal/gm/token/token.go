// Package token defines the lexical tokens of the Green-Marl subset
// implemented by this compiler, plus source positions shared by the
// lexer, parser, and diagnostics.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT    // pagerank
	INTLIT   // 42
	FLOATLIT // 0.85
	STRINGLIT

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	LT        // <
	GT        // >
	LE        // <=
	GE        // >=
	EQ        // ==
	NEQ       // !=
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	NOT       // !
	AND       // &&
	OR        // ||
	QUESTION  // ?
	COLON     // :
	SEMICOLON // ;
	COMMA     // ,
	DOT       // .
	AT        // @
	PLUSEQ    // +=
	MINUSEQ   // -=
	STAREQ    // *=
	ANDEQ     // &=  (boolean and-reduce)
	OREQ      // |=  (boolean or-reduce)
	MINEQ     // min=
	MAXEQ     // max=
	PLUSPLUS  // ++

	// Keywords.
	KwProcedure
	KwLocal
	KwGraph
	KwNode
	KwEdge
	KwNodeProp
	KwEdgeProp
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwBool
	KwForeach
	KwFor
	KwIf
	KwElse
	KwWhile
	KwDo
	KwReturn
	KwInBFS
	KwInReverse
	KwFrom
	KwSum
	KwProduct
	KwCount
	KwMax
	KwMin
	KwAvg
	KwExist
	KwAll
	KwTrue
	KwFalse
	KwInf
	KwNil
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INTLIT: "INT",
	FLOATLIT: "FLOAT", STRINGLIT: "STRING",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]",
	LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==", NEQ: "!=",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", NOT: "!", AND: "&&", OR: "||", QUESTION: "?",
	COLON: ":", SEMICOLON: ";", COMMA: ",", DOT: ".", AT: "@",
	PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", ANDEQ: "&=", OREQ: "|=",
	MINEQ: "min=", MAXEQ: "max=", PLUSPLUS: "++",
	KwProcedure: "Procedure", KwLocal: "Local", KwGraph: "Graph",
	KwNode: "Node", KwEdge: "Edge",
	KwNodeProp: "Node_Prop", KwEdgeProp: "Edge_Prop",
	KwInt: "Int", KwLong: "Long", KwFloat: "Float", KwDouble: "Double",
	KwBool: "Bool", KwForeach: "Foreach", KwFor: "For", KwIf: "If",
	KwElse: "Else", KwWhile: "While", KwDo: "Do", KwReturn: "Return",
	KwInBFS: "InBFS", KwInReverse: "InReverse", KwFrom: "From",
	KwSum: "Sum", KwProduct: "Product", KwCount: "Count", KwMax: "Max",
	KwMin: "Min", KwAvg: "Avg", KwExist: "Exist", KwAll: "All",
	KwTrue: "True", KwFalse: "False", KwInf: "INF", KwNil: "NIL",
}

// String returns the canonical spelling (or name) of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to kinds. Green-Marl keywords are
// case-sensitive with a capitalized style; common alternate spellings
// used in the paper's listings (N_P, E_P, ForEach) are accepted.
var Keywords = map[string]Kind{
	"Procedure": KwProcedure, "Proc": KwProcedure, "Local": KwLocal,
	"Graph": KwGraph, "Node": KwNode, "Edge": KwEdge,
	"Node_Prop": KwNodeProp, "N_P": KwNodeProp,
	"Edge_Prop": KwEdgeProp, "E_P": KwEdgeProp,
	"Int": KwInt, "Long": KwLong, "Float": KwFloat, "Double": KwDouble,
	"Bool":    KwBool,
	"Foreach": KwForeach, "ForEach": KwForeach, "For": KwFor,
	"If": KwIf, "Else": KwElse, "While": KwWhile, "Do": KwDo,
	"Return": KwReturn,
	"InBFS":  KwInBFS, "InReverse": KwInReverse, "From": KwFrom,
	"Sum": KwSum, "Product": KwProduct, "Count": KwCount,
	"Max": KwMax, "Min": KwMin, "Avg": KwAvg,
	"Exist": KwExist, "All": KwAll,
	"True": KwTrue, "False": KwFalse,
	"INF": KwInf, "+INF": KwInf, "NIL": KwNil,
}

// Pos is a line/column source position (both 1-based).
type Pos struct {
	Line, Col int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, STRINGLIT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsReduceAssign reports whether the kind is a reduction assignment
// operator (+=, -=, *=, &=, |=, min=, max=).
func (k Kind) IsReduceAssign() bool {
	switch k {
	case PLUSEQ, MINUSEQ, STAREQ, ANDEQ, OREQ, MINEQ, MAXEQ:
		return true
	}
	return false
}
