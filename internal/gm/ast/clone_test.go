package ast

import (
	"testing"
)

// allNodeStmts builds one instance of every statement kind containing
// one instance of every expression kind, for exhaustive clone/print
// checks.
func allNodeStmts() []Stmt {
	everyExpr := &Ternary{
		Cond: &Binary{Op: BinAnd,
			L: &Binary{Op: BinEq, L: &Ident{Name: "a"}, R: &NilLit{}},
			R: &Unary{Op: UnNot, X: &BoolLit{Value: true}},
		},
		Then: &Binary{Op: BinAdd,
			L: &Call{Target: &Ident{Name: "n"}, Name: "Degree"},
			R: &PropAccess{Target: &Ident{Name: "n"}, Prop: "x"},
		},
		Else: &Reduce{Kind: RSum, Iter: "w", Source: "n", Domain: IterOutNbrs,
			Filter: &Binary{Op: BinLt, L: &IntLit{Value: 1}, R: &FloatLit{Value: 2.5, Text: "2.5"}},
			Body:   &InfLit{Neg: true},
		},
	}
	return []Stmt{
		&VarDecl{Type: &Type{Kind: TNodeProp, Elem: &Type{Kind: TDouble}, Of: "G"}, Names: []string{"p", "q"}},
		&VarDecl{Type: &Type{Kind: TInt}, Names: []string{"k"}, Init: everyExpr.CloneExpr()},
		&Assign{LHS: &Ident{Name: "k"}, Op: OpMax, RHS: everyExpr.CloneExpr()},
		&If{Cond: &BoolLit{Value: true}, Then: &Block{}, Else: &Block{}},
		&If{Cond: &BoolLit{Value: false}, Then: &Block{}},
		&While{Cond: &BoolLit{}, Body: &Block{}},
		&While{Cond: &BoolLit{}, Body: &Block{}, DoWhile: true},
		&Foreach{Iter: "n", Source: "G", Kind: IterNodes, Filter: &BoolLit{Value: true}, Body: &Block{}},
		&Foreach{Iter: "t", Source: "n", Kind: IterInNbrs, Body: &Block{}, Seq: true},
		&InBFS{Iter: "v", Source: "G", Root: &Ident{Name: "s"}, Filter: &BoolLit{Value: true},
			Body: &Block{}, ReverseBody: &Block{}},
		&Return{},
		&Return{Value: everyExpr.CloneExpr()},
		&Block{Stmts: []Stmt{&Return{}}},
	}
}

// TestCloneEveryNodeKind clones every statement/expression kind and
// verifies the copies are deep (no aliasing of mutable children).
func TestCloneEveryNodeKind(t *testing.T) {
	for i, s := range allNodeStmts() {
		orig := PrintStmt(s)
		c := s.CloneStmt()
		if PrintStmt(c) != orig {
			t.Errorf("stmt %d: clone prints differently:\n%s\nvs\n%s", i, orig, PrintStmt(c))
		}
		// Mutate every literal in the clone; the original must not move.
		RewriteExprs(c, func(e Expr) Expr {
			switch e.(type) {
			case *IntLit:
				return &IntLit{Value: 111111}
			case *FloatLit:
				return &FloatLit{Value: 9.75, Text: "9.75"}
			case *BoolLit:
				return &BoolLit{Value: false}
			case *Ident:
				return &Ident{Name: "ZZZ"}
			}
			return e
		})
		if got := PrintStmt(s); got != orig {
			t.Errorf("stmt %d: mutating clone changed original:\n%s\nvs\n%s", i, orig, got)
		}
	}
}

// TestPrintEveryNodeKind smoke-prints every node kind, covering printer
// branches not reachable from the paper programs.
func TestPrintEveryNodeKind(t *testing.T) {
	for i, s := range allNodeStmts() {
		if out := PrintStmt(s); out == "" {
			t.Errorf("stmt %d printed empty", i)
		}
	}
	p := &Procedure{
		Name:   "everything",
		Params: []*Param{{Name: "G", Type: &Type{Kind: TGraph}}},
		Ret:    &Type{Kind: TDouble},
		Body:   &Block{Stmts: allNodeStmts()},
	}
	out := Print(p)
	for _, want := range []string{
		"Procedure everything(G: Graph) : Double",
		"Node_Prop<Double>(G) p, q;",
		"Do {", "While (False)", "InBFS", "InReverse",
		"For (t: n.InNbrs)", "Sum(w: n.Nbrs)", "-INF", "NIL",
		"max=",
	} {
		if !containsStr(out, want) {
			t.Errorf("printed procedure missing %q:\n%s", want, out)
		}
	}
	c := p.Clone()
	if Print(c) != out {
		t.Error("procedure clone prints differently")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestWalkExprSinglePruning covers the expression-level walker's prune
// behavior for every composite kind.
func TestWalkExprSinglePruning(t *testing.T) {
	e := &Binary{Op: BinAdd,
		L: &Ternary{Cond: &BoolLit{}, Then: &IntLit{Value: 1}, Else: &IntLit{Value: 2}},
		R: &Call{Target: &Ident{Name: "G"}, Name: "NumNodes", Args: []Expr{&IntLit{Value: 3}}},
	}
	total := 0
	WalkExpr(e, func(Expr) bool { total++; return true })
	if total != 8 {
		t.Errorf("full walk visited %d, want 8", total)
	}
	pruned := 0
	WalkExpr(e, func(x Expr) bool {
		pruned++
		_, isTern := x.(*Ternary)
		return !isTern
	})
	if pruned != 5 { // binary, ternary (pruned), call, ident, intlit-arg
		t.Errorf("pruned walk visited %d, want 5", pruned)
	}
}
