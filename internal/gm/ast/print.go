package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the procedure back to Green-Marl source. The output
// re-parses to a structurally identical tree (modulo positions), which
// the parser tests rely on.
func Print(p *Procedure) string {
	var b strings.Builder
	pr := printer{w: &b}
	pr.procedure(p)
	return b.String()
}

// PrintStmt renders one statement (used in diagnostics and debug dumps).
func PrintStmt(s Stmt) string {
	var b strings.Builder
	pr := printer{w: &b}
	pr.stmt(s)
	return b.String()
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	var b strings.Builder
	pr := printer{w: &b}
	pr.expr(e)
	return b.String()
}

type printer struct {
	w      *strings.Builder
	indent int
}

func (p *printer) nl() {
	p.w.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.w.WriteString("    ")
	}
}

func (p *printer) printf(format string, args ...interface{}) {
	fmt.Fprintf(p.w, format, args...)
}

func (p *printer) procedure(pr *Procedure) {
	p.printf("Procedure %s(", pr.Name)
	for i, prm := range pr.Params {
		if i > 0 {
			p.printf(", ")
		}
		p.printf("%s: %s", prm.Name, prm.Type)
	}
	p.printf(")")
	if pr.Ret != nil {
		p.printf(" : %s", pr.Ret)
	}
	p.printf(" ")
	p.block(pr.Body)
	p.w.WriteByte('\n')
}

func (p *printer) block(b *Block) {
	p.printf("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.printf("}")
}

func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.block(&Block{Stmts: []Stmt{s}})
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.block(s)
	case *VarDecl:
		p.printf("%s %s", s.Type, strings.Join(s.Names, ", "))
		if s.Init != nil {
			p.printf(" = ")
			p.expr(s.Init)
		}
		p.printf(";")
	case *Assign:
		p.expr(s.LHS)
		p.printf(" %s ", s.Op)
		p.expr(s.RHS)
		p.printf(";")
	case *If:
		p.printf("If (")
		p.expr(s.Cond)
		p.printf(") ")
		p.stmtAsBlock(s.Then)
		if s.Else != nil {
			p.printf(" Else ")
			p.stmtAsBlock(s.Else)
		}
	case *While:
		if s.DoWhile {
			p.printf("Do ")
			p.stmtAsBlock(s.Body)
			p.printf(" While (")
			p.expr(s.Cond)
			p.printf(");")
		} else {
			p.printf("While (")
			p.expr(s.Cond)
			p.printf(") ")
			p.stmtAsBlock(s.Body)
		}
	case *Foreach:
		kw := "Foreach"
		if s.Seq {
			kw = "For"
		}
		p.printf("%s (%s: %s.%s)", kw, s.Iter, s.Source, s.Kind)
		if s.Filter != nil {
			p.printf(" (")
			p.expr(s.Filter)
			p.printf(")")
		}
		p.printf(" ")
		p.stmtAsBlock(s.Body)
	case *InBFS:
		p.printf("InBFS (%s: %s.Nodes From ", s.Iter, s.Source)
		p.expr(s.Root)
		p.printf(")")
		if s.Filter != nil {
			p.printf(" (")
			p.expr(s.Filter)
			p.printf(")")
		}
		p.printf(" ")
		p.block(s.Body)
		if s.ReverseBody != nil {
			p.printf(" InReverse ")
			p.block(s.ReverseBody)
		}
	case *Return:
		p.printf("Return")
		if s.Value != nil {
			p.printf(" ")
			p.expr(s.Value)
		}
		p.printf(";")
	default:
		p.printf("/* unknown stmt %T */", s)
	}
}

// prec returns the precedence class of e for parenthesization.
func prec(e Expr) int {
	switch e := e.(type) {
	case *Ternary:
		return 0
	case *Binary:
		switch e.Op {
		case BinOr:
			return 1
		case BinAnd:
			return 2
		case BinEq, BinNeq, BinLt, BinGt, BinLe, BinGe:
			return 3
		case BinAdd, BinSub:
			return 4
		default:
			return 5
		}
	case *Unary:
		return 6
	default:
		return 7
	}
}

func (p *printer) exprPrec(e Expr, min int) {
	if prec(e) < min {
		p.printf("(")
		p.expr(e)
		p.printf(")")
		return
	}
	p.expr(e)
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *Ident:
		p.printf("%s", e.Name)
	case *IntLit:
		p.printf("%d", e.Value)
	case *FloatLit:
		if e.Text != "" {
			p.printf("%s", e.Text)
		} else {
			p.printf("%s", strconv.FormatFloat(e.Value, 'g', -1, 64))
		}
	case *BoolLit:
		if e.Value {
			p.printf("True")
		} else {
			p.printf("False")
		}
	case *InfLit:
		if e.Neg {
			p.printf("-INF")
		} else {
			p.printf("INF")
		}
	case *NilLit:
		p.printf("NIL")
	case *PropAccess:
		p.exprPrec(e.Target, 7)
		p.printf(".%s", e.Prop)
	case *Call:
		p.exprPrec(e.Target, 7)
		p.printf(".%s(", e.Name)
		for i, a := range e.Args {
			if i > 0 {
				p.printf(", ")
			}
			p.expr(a)
		}
		p.printf(")")
	case *Binary:
		pc := prec(e)
		p.exprPrec(e.L, pc)
		p.printf(" %s ", e.Op)
		p.exprPrec(e.R, pc+1)
	case *Unary:
		if e.Op == UnNot {
			p.printf("!")
		} else {
			p.printf("-")
		}
		p.exprPrec(e.X, 6)
	case *Ternary:
		p.exprPrec(e.Cond, 1)
		p.printf(" ? ")
		p.exprPrec(e.Then, 1)
		p.printf(" : ")
		p.exprPrec(e.Else, 0)
	case *Reduce:
		p.printf("%s(%s: %s.%s)", e.Kind, e.Iter, e.Source, e.Domain)
		if e.Filter != nil {
			p.printf("[")
			p.expr(e.Filter)
			p.printf("]")
		}
		if e.Body != nil {
			p.printf("(")
			p.expr(e.Body)
			p.printf(")")
		}
	default:
		p.printf("/* unknown expr %T */", e)
	}
}
