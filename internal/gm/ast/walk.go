package ast

// WalkExprs calls f on every expression in the subtree rooted at s
// (pre-order). Returning false from f stops descent into that
// expression's children (but not siblings).
func WalkExprs(s Stmt, f func(Expr) bool) {
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			WalkExprs(st, f)
		}
	case *VarDecl:
		if s.Init != nil {
			walkExpr(s.Init, f)
		}
	case *Assign:
		walkExpr(s.LHS, f)
		walkExpr(s.RHS, f)
	case *If:
		walkExpr(s.Cond, f)
		WalkExprs(s.Then, f)
		if s.Else != nil {
			WalkExprs(s.Else, f)
		}
	case *While:
		walkExpr(s.Cond, f)
		WalkExprs(s.Body, f)
	case *Foreach:
		if s.Filter != nil {
			walkExpr(s.Filter, f)
		}
		WalkExprs(s.Body, f)
	case *InBFS:
		walkExpr(s.Root, f)
		if s.Filter != nil {
			walkExpr(s.Filter, f)
		}
		WalkExprs(s.Body, f)
		if s.ReverseBody != nil {
			WalkExprs(s.ReverseBody, f)
		}
	case *Return:
		if s.Value != nil {
			walkExpr(s.Value, f)
		}
	}
}

func walkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *PropAccess:
		walkExpr(e.Target, f)
	case *Call:
		walkExpr(e.Target, f)
		for _, a := range e.Args {
			walkExpr(a, f)
		}
	case *Binary:
		walkExpr(e.L, f)
		walkExpr(e.R, f)
	case *Unary:
		walkExpr(e.X, f)
	case *Ternary:
		walkExpr(e.Cond, f)
		walkExpr(e.Then, f)
		walkExpr(e.Else, f)
	case *Reduce:
		if e.Filter != nil {
			walkExpr(e.Filter, f)
		}
		if e.Body != nil {
			walkExpr(e.Body, f)
		}
	}
}

// WalkExpr calls f on e and every sub-expression (pre-order). Returning
// false stops descent into that expression's children.
func WalkExpr(e Expr, f func(Expr) bool) { walkExpr(e, f) }

// WalkStmts calls f on every statement in the subtree rooted at s
// (pre-order, including s itself). Returning false from f stops descent
// into that statement's children.
func WalkStmts(s Stmt, f func(Stmt) bool) {
	if s == nil || !f(s) {
		return
	}
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			WalkStmts(st, f)
		}
	case *If:
		WalkStmts(s.Then, f)
		if s.Else != nil {
			WalkStmts(s.Else, f)
		}
	case *While:
		WalkStmts(s.Body, f)
	case *Foreach:
		WalkStmts(s.Body, f)
	case *InBFS:
		WalkStmts(s.Body, f)
		if s.ReverseBody != nil {
			WalkStmts(s.ReverseBody, f)
		}
	}
}

// RewriteExprs replaces every expression in the statement subtree via f,
// applied bottom-up (children first, then the enclosing expression).
func RewriteExprs(s Stmt, f func(Expr) Expr) {
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			RewriteExprs(st, f)
		}
	case *VarDecl:
		if s.Init != nil {
			s.Init = rewriteExpr(s.Init, f)
		}
	case *Assign:
		s.LHS = rewriteExpr(s.LHS, f)
		s.RHS = rewriteExpr(s.RHS, f)
	case *If:
		s.Cond = rewriteExpr(s.Cond, f)
		RewriteExprs(s.Then, f)
		if s.Else != nil {
			RewriteExprs(s.Else, f)
		}
	case *While:
		s.Cond = rewriteExpr(s.Cond, f)
		RewriteExprs(s.Body, f)
	case *Foreach:
		if s.Filter != nil {
			s.Filter = rewriteExpr(s.Filter, f)
		}
		RewriteExprs(s.Body, f)
	case *InBFS:
		s.Root = rewriteExpr(s.Root, f)
		if s.Filter != nil {
			s.Filter = rewriteExpr(s.Filter, f)
		}
		RewriteExprs(s.Body, f)
		if s.ReverseBody != nil {
			RewriteExprs(s.ReverseBody, f)
		}
	case *Return:
		if s.Value != nil {
			s.Value = rewriteExpr(s.Value, f)
		}
	}
}

// RewriteExpr rewrites e bottom-up via f and returns the replacement.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr { return rewriteExpr(e, f) }

func rewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *PropAccess:
		x.Target = rewriteExpr(x.Target, f)
	case *Call:
		x.Target = rewriteExpr(x.Target, f)
		for i := range x.Args {
			x.Args[i] = rewriteExpr(x.Args[i], f)
		}
	case *Binary:
		x.L = rewriteExpr(x.L, f)
		x.R = rewriteExpr(x.R, f)
	case *Unary:
		x.X = rewriteExpr(x.X, f)
	case *Ternary:
		x.Cond = rewriteExpr(x.Cond, f)
		x.Then = rewriteExpr(x.Then, f)
		x.Else = rewriteExpr(x.Else, f)
	case *Reduce:
		if x.Filter != nil {
			x.Filter = rewriteExpr(x.Filter, f)
		}
		if x.Body != nil {
			x.Body = rewriteExpr(x.Body, f)
		}
	}
	return f(e)
}

// UsesIdent reports whether name is referenced anywhere in e.
func UsesIdent(e Expr, name string) bool {
	found := false
	walkExpr(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
