// Package ast defines the abstract syntax tree of the Green-Marl subset,
// along with cloning and visiting helpers used by the compiler's
// source-to-source transformation passes.
package ast

import "gmpregel/internal/gm/token"

// TypeKind enumerates Green-Marl types.
type TypeKind int

// Type kinds.
const (
	TInvalid TypeKind = iota
	TGraph
	TInt
	TLong
	TFloat
	TDouble
	TBool
	TNode
	TEdge
	TNodeProp
	TEdgeProp
)

var typeNames = [...]string{
	TInvalid: "<invalid>", TGraph: "Graph", TInt: "Int", TLong: "Long",
	TFloat: "Float", TDouble: "Double", TBool: "Bool", TNode: "Node",
	TEdge: "Edge", TNodeProp: "Node_Prop", TEdgeProp: "Edge_Prop",
}

func (k TypeKind) String() string { return typeNames[k] }

// IsNumeric reports whether the kind is numeric.
func (k TypeKind) IsNumeric() bool {
	switch k {
	case TInt, TLong, TFloat, TDouble:
		return true
	}
	return false
}

// IsIntegral reports whether the kind is an integer kind.
func (k TypeKind) IsIntegral() bool { return k == TInt || k == TLong }

// IsFloating reports whether the kind is a floating kind.
func (k TypeKind) IsFloating() bool { return k == TFloat || k == TDouble }

// IsProp reports whether the kind is a property kind.
func (k TypeKind) IsProp() bool { return k == TNodeProp || k == TEdgeProp }

// Type is a (possibly parameterized) Green-Marl type.
type Type struct {
	Kind TypeKind
	Elem *Type  // element type for Node_Prop / Edge_Prop
	Of   string // optional bound graph name: Node_Prop<Int>(G)
}

// Clone deep-copies the type.
func (t *Type) Clone() *Type {
	if t == nil {
		return nil
	}
	c := *t
	c.Elem = t.Elem.Clone()
	return &c
}

// String renders the type in source syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	s := t.Kind.String()
	if t.Elem != nil {
		s += "<" + t.Elem.String() + ">"
	}
	if t.Of != "" {
		s += "(" + t.Of + ")"
	}
	return s
}

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Stmt is implemented by statements.
type Stmt interface {
	Node
	stmt()
	CloneStmt() Stmt
}

// Expr is implemented by expressions.
type Expr interface {
	Node
	expr()
	CloneExpr() Expr
}

// Procedure is a top-level Green-Marl procedure.
type Procedure struct {
	Name   string
	Params []*Param
	Ret    *Type // nil if none
	Body   *Block
	P      token.Pos
}

// Pos returns the declaration position.
func (p *Procedure) Pos() token.Pos { return p.P }

// Clone deep-copies the procedure.
func (p *Procedure) Clone() *Procedure {
	c := &Procedure{Name: p.Name, Ret: p.Ret.Clone(), P: p.P}
	for _, prm := range p.Params {
		c.Params = append(c.Params, &Param{Name: prm.Name, Type: prm.Type.Clone(), P: prm.P})
	}
	c.Body = p.Body.CloneStmt().(*Block)
	return c
}

// Param is a procedure parameter.
type Param struct {
	Name string
	Type *Type
	P    token.Pos
}

// ---- Statements ----

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
	P     token.Pos
}

func (b *Block) Pos() token.Pos { return b.P }
func (*Block) stmt()            {}

// CloneStmt deep-copies the block.
func (b *Block) CloneStmt() Stmt {
	c := &Block{P: b.P}
	for _, s := range b.Stmts {
		c.Stmts = append(c.Stmts, s.CloneStmt())
	}
	return c
}

// VarDecl declares one or more variables of a type, with an optional
// initializer for single-name declarations.
type VarDecl struct {
	Type  *Type
	Names []string
	Init  Expr // nil if none; only when len(Names)==1
	P     token.Pos
}

func (d *VarDecl) Pos() token.Pos { return d.P }
func (*VarDecl) stmt()            {}

// CloneStmt deep-copies the declaration.
func (d *VarDecl) CloneStmt() Stmt {
	c := &VarDecl{Type: d.Type.Clone(), Names: append([]string(nil), d.Names...), P: d.P}
	if d.Init != nil {
		c.Init = d.Init.CloneExpr()
	}
	return c
}

// AssignOp is an assignment operator, possibly a reduction.
type AssignOp int

// Assignment operators.
const (
	OpSet AssignOp = iota // =
	OpAdd                 // +=
	OpSub                 // -=
	OpMul                 // *=
	OpMin                 // min=
	OpMax                 // max=
	OpAnd                 // &=
	OpOr                  // |=
)

var assignOpNames = [...]string{"=", "+=", "-=", "*=", "min=", "max=", "&=", "|="}

func (o AssignOp) String() string { return assignOpNames[o] }

// IsReduction reports whether the operator is a reduction (not plain =).
func (o AssignOp) IsReduction() bool { return o != OpSet }

// Assign is `lhs op rhs;`. LHS is an Ident (scalar) or PropAccess
// (vertex/edge property, including bulk `G.prop`).
type Assign struct {
	LHS Expr
	Op  AssignOp
	RHS Expr
	P   token.Pos
}

func (a *Assign) Pos() token.Pos { return a.P }
func (*Assign) stmt()            {}

// CloneStmt deep-copies the assignment.
func (a *Assign) CloneStmt() Stmt {
	return &Assign{LHS: a.LHS.CloneExpr(), Op: a.Op, RHS: a.RHS.CloneExpr(), P: a.P}
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	P    token.Pos
}

func (i *If) Pos() token.Pos { return i.P }
func (*If) stmt()            {}

// CloneStmt deep-copies the conditional.
func (i *If) CloneStmt() Stmt {
	c := &If{Cond: i.Cond.CloneExpr(), Then: i.Then.CloneStmt(), P: i.P}
	if i.Else != nil {
		c.Else = i.Else.CloneStmt()
	}
	return c
}

// While is a `While (cond) body` or `Do body While (cond);` loop.
type While struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
	P       token.Pos
}

func (w *While) Pos() token.Pos { return w.P }
func (*While) stmt()            {}

// CloneStmt deep-copies the loop.
func (w *While) CloneStmt() Stmt {
	return &While{Cond: w.Cond.CloneExpr(), Body: w.Body.CloneStmt(), DoWhile: w.DoWhile, P: w.P}
}

// IterKind enumerates iteration domains.
type IterKind int

// Iteration domains. UpNbrs/DownNbrs are only meaningful inside
// InBFS/InReverse bodies (BFS parents and children).
const (
	IterNodes IterKind = iota
	IterOutNbrs
	IterInNbrs
	IterUpNbrs
	IterDownNbrs
)

var iterNames = [...]string{"Nodes", "Nbrs", "InNbrs", "UpNbrs", "DownNbrs"}

func (k IterKind) String() string { return iterNames[k] }

// Foreach is a parallel iteration. Source names the graph (for
// IterNodes) or a node-valued variable (for neighbor domains).
type Foreach struct {
	Iter   string
	Source string
	Kind   IterKind
	Filter Expr // nil if absent
	Body   Stmt
	Seq    bool // declared with For instead of Foreach
	P      token.Pos
}

func (f *Foreach) Pos() token.Pos { return f.P }
func (*Foreach) stmt()            {}

// CloneStmt deep-copies the loop.
func (f *Foreach) CloneStmt() Stmt {
	c := &Foreach{Iter: f.Iter, Source: f.Source, Kind: f.Kind, Body: f.Body.CloneStmt(), Seq: f.Seq, P: f.P}
	if f.Filter != nil {
		c.Filter = f.Filter.CloneExpr()
	}
	return c
}

// InBFS is a BFS-order traversal with an optional reverse-order sweep.
type InBFS struct {
	Iter        string
	Source      string // graph name
	Root        Expr
	Filter      Expr // nil if absent
	Body        *Block
	ReverseBody *Block // nil if absent
	P           token.Pos
}

func (b *InBFS) Pos() token.Pos { return b.P }
func (*InBFS) stmt()            {}

// CloneStmt deep-copies the traversal.
func (b *InBFS) CloneStmt() Stmt {
	c := &InBFS{Iter: b.Iter, Source: b.Source, Root: b.Root.CloneExpr(), P: b.P}
	if b.Filter != nil {
		c.Filter = b.Filter.CloneExpr()
	}
	c.Body = b.Body.CloneStmt().(*Block)
	if b.ReverseBody != nil {
		c.ReverseBody = b.ReverseBody.CloneStmt().(*Block)
	}
	return c
}

// Return is `Return expr;`.
type Return struct {
	Value Expr // nil for bare return
	P     token.Pos
}

func (r *Return) Pos() token.Pos { return r.P }
func (*Return) stmt()            {}

// CloneStmt deep-copies the return.
func (r *Return) CloneStmt() Stmt {
	c := &Return{P: r.P}
	if r.Value != nil {
		c.Value = r.Value.CloneExpr()
	}
	return c
}

// ---- Expressions ----

// Ident references a variable, parameter, or iterator by name.
type Ident struct {
	Name string
	P    token.Pos
}

func (i *Ident) Pos() token.Pos { return i.P }
func (*Ident) expr()            {}

// CloneExpr copies the identifier.
func (i *Ident) CloneExpr() Expr { cp := *i; return &cp }

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	P     token.Pos
}

func (l *IntLit) Pos() token.Pos { return l.P }
func (*IntLit) expr()            {}

// CloneExpr copies the literal.
func (l *IntLit) CloneExpr() Expr { cp := *l; return &cp }

// FloatLit is a floating literal.
type FloatLit struct {
	Value float64
	Text  string // original spelling, for faithful printing
	P     token.Pos
}

func (l *FloatLit) Pos() token.Pos { return l.P }
func (*FloatLit) expr()            {}

// CloneExpr copies the literal.
func (l *FloatLit) CloneExpr() Expr { cp := *l; return &cp }

// BoolLit is True or False.
type BoolLit struct {
	Value bool
	P     token.Pos
}

func (l *BoolLit) Pos() token.Pos { return l.P }
func (*BoolLit) expr()            {}

// CloneExpr copies the literal.
func (l *BoolLit) CloneExpr() Expr { cp := *l; return &cp }

// InfLit is the INF constant (positive unless Neg).
type InfLit struct {
	Neg bool
	P   token.Pos
}

func (l *InfLit) Pos() token.Pos { return l.P }
func (*InfLit) expr()            {}

// CloneExpr copies the literal.
func (l *InfLit) CloneExpr() Expr { cp := *l; return &cp }

// NilLit is the NIL node constant.
type NilLit struct {
	P token.Pos
}

func (l *NilLit) Pos() token.Pos { return l.P }
func (*NilLit) expr()            {}

// CloneExpr copies the literal.
func (l *NilLit) CloneExpr() Expr { cp := *l; return &cp }

// PropAccess is `target.prop` where target is node-, edge-, or
// graph-valued (graph-valued targets are bulk accesses, lowered early).
type PropAccess struct {
	Target Expr
	Prop   string
	P      token.Pos
}

func (a *PropAccess) Pos() token.Pos { return a.P }
func (*PropAccess) expr()            {}

// CloneExpr deep-copies the access.
func (a *PropAccess) CloneExpr() Expr {
	return &PropAccess{Target: a.Target.CloneExpr(), Prop: a.Prop, P: a.P}
}

// Call is a builtin method call `target.Name(args)`, e.g. G.NumNodes(),
// n.Degree(), G.PickRandom(), t.ToEdge().
type Call struct {
	Target Expr
	Name   string
	Args   []Expr
	P      token.Pos
}

func (c *Call) Pos() token.Pos { return c.P }
func (*Call) expr()            {}

// CloneExpr deep-copies the call.
func (c *Call) CloneExpr() Expr {
	cp := &Call{Target: c.Target.CloneExpr(), Name: c.Name, P: c.P}
	for _, a := range c.Args {
		cp.Args = append(cp.Args, a.CloneExpr())
	}
	return cp
}

// BinOp is a binary operator.
type BinOp int

// Binary operators in increasing precedence groups.
const (
	BinOr BinOp = iota // ||
	BinAnd
	BinEq
	BinNeq
	BinLt
	BinGt
	BinLe
	BinGe
	BinAdd
	BinSub
	BinMul
	BinDiv
	BinMod
)

var binNames = [...]string{"||", "&&", "==", "!=", "<", ">", "<=", ">=", "+", "-", "*", "/", "%"}

func (o BinOp) String() string { return binNames[o] }

// IsComparison reports whether the operator yields Bool from operands.
func (o BinOp) IsComparison() bool { return o >= BinEq && o <= BinGe }

// IsLogical reports whether the operator is && or ||.
func (o BinOp) IsLogical() bool { return o == BinOr || o == BinAnd }

// Binary is `l op r`.
type Binary struct {
	Op   BinOp
	L, R Expr
	P    token.Pos
}

func (b *Binary) Pos() token.Pos { return b.P }
func (*Binary) expr()            {}

// CloneExpr deep-copies the expression.
func (b *Binary) CloneExpr() Expr {
	return &Binary{Op: b.Op, L: b.L.CloneExpr(), R: b.R.CloneExpr(), P: b.P}
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	UnNot UnOp = iota // !
	UnNeg             // -
)

// Unary is `op x`.
type Unary struct {
	Op UnOp
	X  Expr
	P  token.Pos
}

func (u *Unary) Pos() token.Pos { return u.P }
func (*Unary) expr()            {}

// CloneExpr deep-copies the expression.
func (u *Unary) CloneExpr() Expr { return &Unary{Op: u.Op, X: u.X.CloneExpr(), P: u.P} }

// Ternary is `cond ? a : b`.
type Ternary struct {
	Cond, Then, Else Expr
	P                token.Pos
}

func (t *Ternary) Pos() token.Pos { return t.P }
func (*Ternary) expr()            {}

// CloneExpr deep-copies the expression.
func (t *Ternary) CloneExpr() Expr {
	return &Ternary{Cond: t.Cond.CloneExpr(), Then: t.Then.CloneExpr(), Else: t.Else.CloneExpr(), P: t.P}
}

// ReduceKind enumerates group reduction expressions.
type ReduceKind int

// Group reductions.
const (
	RSum ReduceKind = iota
	RProduct
	RCount
	RMax
	RMin
	RAvg
	RExist
	RAll
)

var reduceNames = [...]string{"Sum", "Product", "Count", "Max", "Min", "Avg", "Exist", "All"}

func (k ReduceKind) String() string { return reduceNames[k] }

// Reduce is a group reduction expression such as
// `Sum(t: G.Nodes)[filter](body)`. Count has no body.
type Reduce struct {
	Kind   ReduceKind
	Iter   string
	Source string
	Domain IterKind
	Filter Expr // nil if absent
	Body   Expr // nil for Count
	P      token.Pos
}

func (r *Reduce) Pos() token.Pos { return r.P }
func (*Reduce) expr()            {}

// CloneExpr deep-copies the reduction.
func (r *Reduce) CloneExpr() Expr {
	c := &Reduce{Kind: r.Kind, Iter: r.Iter, Source: r.Source, Domain: r.Domain, P: r.P}
	if r.Filter != nil {
		c.Filter = r.Filter.CloneExpr()
	}
	if r.Body != nil {
		c.Body = r.Body.CloneExpr()
	}
	return c
}
