package ast

import (
	"strings"
	"testing"
)

func sampleProc() *Procedure {
	// Procedure p(G: Graph, x: Node_Prop<Int>) {
	//     Int s = 0;
	//     Foreach (n: G.Nodes)(n.x > 1) {
	//         Foreach (t: n.Nbrs) { t.x += n.x; }
	//     }
	//     If (s == 0) { Return; } Else { s = s - 1; }
	//     While (s > 0) { s -= 1; }
	// }
	inner := &Foreach{
		Iter: "t", Source: "n", Kind: IterOutNbrs,
		Body: &Block{Stmts: []Stmt{
			&Assign{LHS: &PropAccess{Target: &Ident{Name: "t"}, Prop: "x"}, Op: OpAdd,
				RHS: &PropAccess{Target: &Ident{Name: "n"}, Prop: "x"}},
		}},
	}
	return &Procedure{
		Name: "p",
		Params: []*Param{
			{Name: "G", Type: &Type{Kind: TGraph}},
			{Name: "x", Type: &Type{Kind: TNodeProp, Elem: &Type{Kind: TInt}}},
		},
		Body: &Block{Stmts: []Stmt{
			&VarDecl{Type: &Type{Kind: TInt}, Names: []string{"s"}, Init: &IntLit{Value: 0}},
			&Foreach{Iter: "n", Source: "G", Kind: IterNodes,
				Filter: &Binary{Op: BinGt, L: &PropAccess{Target: &Ident{Name: "n"}, Prop: "x"}, R: &IntLit{Value: 1}},
				Body:   &Block{Stmts: []Stmt{inner}},
			},
			&If{Cond: &Binary{Op: BinEq, L: &Ident{Name: "s"}, R: &IntLit{Value: 0}},
				Then: &Block{Stmts: []Stmt{&Return{}}},
				Else: &Block{Stmts: []Stmt{&Assign{LHS: &Ident{Name: "s"}, Op: OpSet,
					RHS: &Binary{Op: BinSub, L: &Ident{Name: "s"}, R: &IntLit{Value: 1}}}}},
			},
			&While{Cond: &Binary{Op: BinGt, L: &Ident{Name: "s"}, R: &IntLit{Value: 0}},
				Body: &Block{Stmts: []Stmt{&Assign{LHS: &Ident{Name: "s"}, Op: OpSub, RHS: &IntLit{Value: 1}}}},
			},
		}},
	}
}

func TestWalkStmtsVisitsEverything(t *testing.T) {
	var kinds []string
	WalkStmts(sampleProc().Body, func(s Stmt) bool {
		switch s.(type) {
		case *Block:
			kinds = append(kinds, "block")
		case *VarDecl:
			kinds = append(kinds, "decl")
		case *Foreach:
			kinds = append(kinds, "foreach")
		case *Assign:
			kinds = append(kinds, "assign")
		case *If:
			kinds = append(kinds, "if")
		case *While:
			kinds = append(kinds, "while")
		case *Return:
			kinds = append(kinds, "return")
		}
		return true
	})
	counts := map[string]int{}
	for _, k := range kinds {
		counts[k]++
	}
	if counts["foreach"] != 2 || counts["assign"] != 3 || counts["if"] != 1 ||
		counts["while"] != 1 || counts["return"] != 1 || counts["decl"] != 1 {
		t.Errorf("visit counts wrong: %v", counts)
	}
}

func TestWalkStmtsPruning(t *testing.T) {
	seen := 0
	WalkStmts(sampleProc().Body, func(s Stmt) bool {
		seen++
		// Do not descend into loops.
		_, isLoop := s.(*Foreach)
		return !isLoop
	})
	// Outer block + decl + outer foreach + if + its 2 blocks + return +
	// assign + while + its block + assign = 11.
	if seen != 11 {
		t.Errorf("pruned walk visited %d statements, want 11", seen)
	}
}

func TestWalkExprsAndUsesIdent(t *testing.T) {
	p := sampleProc()
	idents := map[string]int{}
	WalkExprs(p.Body, func(e Expr) bool {
		if id, ok := e.(*Ident); ok {
			idents[id.Name]++
		}
		return true
	})
	if idents["s"] != 5 || idents["n"] != 2 || idents["t"] != 1 {
		t.Errorf("ident uses = %v", idents)
	}
	cond := &Binary{Op: BinAnd, L: &Ident{Name: "a"}, R: &Unary{Op: UnNot, X: &Ident{Name: "b"}}}
	if !UsesIdent(cond, "a") || !UsesIdent(cond, "b") || UsesIdent(cond, "c") {
		t.Error("UsesIdent wrong")
	}
}

func TestRewriteExprsReplacesBottomUp(t *testing.T) {
	p := sampleProc()
	// Replace every IntLit 1 with 42.
	RewriteExprs(p.Body, func(e Expr) Expr {
		if l, ok := e.(*IntLit); ok && l.Value == 1 {
			return &IntLit{Value: 42}
		}
		return e
	})
	found := 0
	WalkExprs(p.Body, func(e Expr) bool {
		if l, ok := e.(*IntLit); ok {
			if l.Value == 1 {
				t.Error("an IntLit 1 survived rewriting")
			}
			if l.Value == 42 {
				found++
			}
		}
		return true
	})
	// The tree has three IntLit-1 nodes: the filter, the Else branch,
	// and the While body.
	if found != 3 {
		t.Errorf("found %d rewritten literals, want 3", found)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := sampleProc()
	c := p.Clone()
	before := Print(p)
	RewriteExprs(c.Body, func(e Expr) Expr {
		if _, ok := e.(*IntLit); ok {
			return &IntLit{Value: 999}
		}
		return e
	})
	c.Params[0].Name = "H"
	if Print(p) != before {
		t.Error("clone mutation affected original")
	}
	if !strings.Contains(Print(c), "999") {
		t.Error("clone mutation lost")
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	// (a + b) * c requires parens; a + b * c does not.
	e1 := &Binary{Op: BinMul,
		L: &Binary{Op: BinAdd, L: &Ident{Name: "a"}, R: &Ident{Name: "b"}},
		R: &Ident{Name: "c"}}
	if got := PrintExpr(e1); got != "(a + b) * c" {
		t.Errorf("got %q", got)
	}
	e2 := &Binary{Op: BinAdd,
		L: &Ident{Name: "a"},
		R: &Binary{Op: BinMul, L: &Ident{Name: "b"}, R: &Ident{Name: "c"}}}
	if got := PrintExpr(e2); got != "a + b * c" {
		t.Errorf("got %q", got)
	}
	// Nested ternary in a condition position gets parenthesized.
	e3 := &Binary{Op: BinAnd,
		L: &Ternary{Cond: &Ident{Name: "a"}, Then: &Ident{Name: "b"}, Else: &Ident{Name: "c"}},
		R: &Ident{Name: "d"}}
	if got := PrintExpr(e3); !strings.Contains(got, "(") {
		t.Errorf("ternary under && needs parens: %q", got)
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{&Type{Kind: TInt}, "Int"},
		{&Type{Kind: TNodeProp, Elem: &Type{Kind: TDouble}}, "Node_Prop<Double>"},
		{&Type{Kind: TEdgeProp, Elem: &Type{Kind: TInt}, Of: "G"}, "Edge_Prop<Int>(G)"},
	}
	for _, tc := range cases {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestOpAndKindStrings(t *testing.T) {
	if OpMin.String() != "min=" || OpSet.String() != "=" {
		t.Error("assign op strings")
	}
	if BinLe.String() != "<=" || BinMod.String() != "%" {
		t.Error("binary op strings")
	}
	if IterInNbrs.String() != "InNbrs" || IterNodes.String() != "Nodes" {
		t.Error("iter kind strings")
	}
	if RExist.String() != "Exist" {
		t.Error("reduce kind strings")
	}
	if !OpAdd.IsReduction() || OpSet.IsReduction() {
		t.Error("IsReduction")
	}
	if !BinEq.IsComparison() || BinAdd.IsComparison() {
		t.Error("IsComparison")
	}
	if !BinAnd.IsLogical() || BinEq.IsLogical() {
		t.Error("IsLogical")
	}
}

func TestPrintStmtForms(t *testing.T) {
	doWhile := &While{DoWhile: true,
		Cond: &BoolLit{Value: true},
		Body: &Block{Stmts: []Stmt{&Return{Value: &IntLit{Value: 1}}}},
	}
	out := PrintStmt(doWhile)
	if !strings.HasPrefix(out, "Do ") || !strings.Contains(out, "While (True);") {
		t.Errorf("do-while rendering: %q", out)
	}
	bfs := &InBFS{Iter: "v", Source: "G", Root: &Ident{Name: "s"},
		Body:        &Block{},
		ReverseBody: &Block{},
	}
	out = PrintStmt(bfs)
	if !strings.Contains(out, "InBFS (v: G.Nodes From s)") || !strings.Contains(out, "InReverse") {
		t.Errorf("InBFS rendering: %q", out)
	}
}
