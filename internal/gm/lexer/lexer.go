// Package lexer tokenizes Green-Marl source text.
//
// The lexer is a straightforward hand-written scanner: it understands //
// line comments and /* */ block comments, integer and floating literals,
// identifiers/keywords (including the min= and max= reduction operators,
// which lex as single tokens when an identifier `min`/`max` is
// immediately followed by '='), and the punctuation of the subset grammar.
package lexer

import (
	"fmt"
	"unicode"

	"gmpregel/internal/gm/token"
)

// Lexer scans one source text.
type Lexer struct {
	src    []rune
	pos    int
	line   int
	col    int
	errs   []error
	peeked *token.Token
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...interface{}) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) cur() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) at(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() {
	if l.pos < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		c := l.cur()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.at(1) == '/':
			for l.cur() != 0 && l.cur() != '\n' {
				l.advance()
			}
		case c == '/' && l.at(1) == '*':
			start := token.Pos{Line: l.line, Col: l.col}
			l.advance()
			l.advance()
			closed := false
			for l.cur() != 0 {
				if l.cur() == '*' && l.at(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c)
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() token.Token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

// Next consumes and returns the next token.
func (l *Lexer) Next() token.Token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func (l *Lexer) scan() token.Token {
	l.skipSpaceAndComments()
	p := token.Pos{Line: l.line, Col: l.col}
	c := l.cur()
	if c == 0 {
		return token.Token{Kind: token.EOF, Pos: p}
	}

	if isIdentStart(c) {
		start := l.pos
		for isIdentPart(l.cur()) {
			l.advance()
		}
		lit := string(l.src[start:l.pos])
		// min= / max= reduction operators.
		if l.cur() == '=' && l.at(1) != '=' {
			if lit == "min" {
				l.advance()
				return token.Token{Kind: token.MINEQ, Lit: "min=", Pos: p}
			}
			if lit == "max" {
				l.advance()
				return token.Token{Kind: token.MAXEQ, Lit: "max=", Pos: p}
			}
		}
		if k, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: k, Lit: lit, Pos: p}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: p}
	}

	if unicode.IsDigit(c) {
		start := l.pos
		for unicode.IsDigit(l.cur()) {
			l.advance()
		}
		isFloat := false
		if l.cur() == '.' && unicode.IsDigit(l.at(1)) {
			isFloat = true
			l.advance()
			for unicode.IsDigit(l.cur()) {
				l.advance()
			}
		}
		if l.cur() == 'e' || l.cur() == 'E' {
			save := l.pos
			l.advance()
			if l.cur() == '+' || l.cur() == '-' {
				l.advance()
			}
			if unicode.IsDigit(l.cur()) {
				isFloat = true
				for unicode.IsDigit(l.cur()) {
					l.advance()
				}
			} else {
				l.pos = save
			}
		}
		lit := string(l.src[start:l.pos])
		if isFloat {
			return token.Token{Kind: token.FLOATLIT, Lit: lit, Pos: p}
		}
		return token.Token{Kind: token.INTLIT, Lit: lit, Pos: p}
	}

	if c == '"' {
		l.advance()
		start := l.pos
		for l.cur() != 0 && l.cur() != '"' && l.cur() != '\n' {
			l.advance()
		}
		if l.cur() != '"' {
			l.errorf(p, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: string(l.src[start:l.pos]), Pos: p}
		}
		lit := string(l.src[start:l.pos])
		l.advance()
		return token.Token{Kind: token.STRINGLIT, Lit: lit, Pos: p}
	}

	two := func(k token.Kind, lit string) token.Token {
		l.advance()
		l.advance()
		return token.Token{Kind: k, Lit: lit, Pos: p}
	}
	one := func(k token.Kind) token.Token {
		lit := string(c)
		l.advance()
		return token.Token{Kind: k, Lit: lit, Pos: p}
	}

	switch c {
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '{':
		return one(token.LBRACE)
	case '}':
		return one(token.RBRACE)
	case '[':
		return one(token.LBRACKET)
	case ']':
		return one(token.RBRACKET)
	case ';':
		return one(token.SEMICOLON)
	case ',':
		return one(token.COMMA)
	case '.':
		return one(token.DOT)
	case '?':
		return one(token.QUESTION)
	case ':':
		return one(token.COLON)
	case '@':
		return one(token.AT)
	case '+':
		if l.at(1) == '=' {
			return two(token.PLUSEQ, "+=")
		}
		if l.at(1) == '+' {
			return two(token.PLUSPLUS, "++")
		}
		// "+INF" literal.
		if l.at(1) == 'I' && l.at(2) == 'N' && l.at(3) == 'F' && !isIdentPart(l.at(4)) {
			l.advance()
			l.advance()
			l.advance()
			l.advance()
			return token.Token{Kind: token.KwInf, Lit: "+INF", Pos: p}
		}
		return one(token.PLUS)
	case '-':
		if l.at(1) == '=' {
			return two(token.MINUSEQ, "-=")
		}
		return one(token.MINUS)
	case '*':
		if l.at(1) == '=' {
			return two(token.STAREQ, "*=")
		}
		return one(token.STAR)
	case '/':
		return one(token.SLASH)
	case '%':
		return one(token.PERCENT)
	case '!':
		if l.at(1) == '=' {
			return two(token.NEQ, "!=")
		}
		return one(token.NOT)
	case '=':
		if l.at(1) == '=' {
			return two(token.EQ, "==")
		}
		return one(token.ASSIGN)
	case '<':
		if l.at(1) == '=' {
			return two(token.LE, "<=")
		}
		return one(token.LT)
	case '>':
		if l.at(1) == '=' {
			return two(token.GE, ">=")
		}
		return one(token.GT)
	case '&':
		if l.at(1) == '&' {
			return two(token.AND, "&&")
		}
		if l.at(1) == '=' {
			return two(token.ANDEQ, "&=")
		}
		l.errorf(p, "unexpected '&' (use '&&' or '&=')")
		return one(token.ILLEGAL)
	case '|':
		if l.at(1) == '|' {
			return two(token.OR, "||")
		}
		if l.at(1) == '=' {
			return two(token.OREQ, "|=")
		}
		l.errorf(p, "unexpected '|' (use '||' or '|=')")
		return one(token.ILLEGAL)
	}
	l.errorf(p, "unexpected character %q", string(c))
	return one(token.ILLEGAL)
}

// All scans the entire input and returns every token up to and including
// EOF. Useful for tests and tooling.
func All(src string) []token.Token {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
