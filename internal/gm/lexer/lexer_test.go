package lexer

import (
	"testing"

	"gmpregel/internal/gm/token"
)

func kinds(src string) []token.Kind {
	var out []token.Kind
	for _, t := range All(src) {
		out = append(out, t.Kind)
	}
	return out
}

func TestPunctuationAndOperators(t *testing.T) {
	got := kinds("( ) { } [ ] ; , . ? : + - * / % ! = == != < > <= >= && || += -= *= &= |= ++")
	want := []token.Kind{
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.SEMICOLON, token.COMMA,
		token.DOT, token.QUESTION, token.COLON, token.PLUS, token.MINUS,
		token.STAR, token.SLASH, token.PERCENT, token.NOT, token.ASSIGN,
		token.EQ, token.NEQ, token.LT, token.GT, token.LE, token.GE,
		token.AND, token.OR, token.PLUSEQ, token.MINUSEQ, token.STAREQ,
		token.ANDEQ, token.OREQ, token.PLUSPLUS, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestMinMaxReduceOperators(t *testing.T) {
	toks := All("x.dist min= 3; y max= z; min == 2; Min(")
	want := []token.Kind{
		token.IDENT, token.DOT, token.IDENT, token.MINEQ, token.INTLIT, token.SEMICOLON,
		token.IDENT, token.MAXEQ, token.IDENT, token.SEMICOLON,
		token.IDENT, token.EQ, token.INTLIT, token.SEMICOLON,
		token.KwMin, token.LPAREN, token.EOF,
	}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Fatalf("token %d = %s, want %s (all: %v)", i, toks[i], w, toks)
		}
	}
}

func TestKeywordsAndAliases(t *testing.T) {
	cases := map[string]token.Kind{
		"Procedure": token.KwProcedure, "Proc": token.KwProcedure,
		"Foreach": token.KwForeach, "ForEach": token.KwForeach,
		"Node_Prop": token.KwNodeProp, "N_P": token.KwNodeProp,
		"Edge_Prop": token.KwEdgeProp, "E_P": token.KwEdgeProp,
		"InBFS": token.KwInBFS, "InReverse": token.KwInReverse,
		"True": token.KwTrue, "False": token.KwFalse,
		"INF": token.KwInf, "NIL": token.KwNil,
		"While": token.KwWhile, "Do": token.KwDo, "Return": token.KwReturn,
		"Exist": token.KwExist, "Sum": token.KwSum, "Avg": token.KwAvg,
	}
	for lit, want := range cases {
		toks := All(lit)
		if toks[0].Kind != want {
			t.Errorf("%q lexed as %s, want %s", lit, toks[0].Kind, want)
		}
	}
	// Lowercase identifiers are not keywords.
	if toks := All("procedure foreach while"); toks[0].Kind != token.IDENT || toks[1].Kind != token.IDENT || toks[2].Kind != token.IDENT {
		t.Error("lowercase words must lex as identifiers")
	}
}

func TestNumbers(t *testing.T) {
	toks := All("42 0 3.14 1e5 2.5e-3 7e 12.")
	want := []struct {
		k   token.Kind
		lit string
	}{
		{token.INTLIT, "42"}, {token.INTLIT, "0"},
		{token.FLOATLIT, "3.14"}, {token.FLOATLIT, "1e5"},
		{token.FLOATLIT, "2.5e-3"},
		{token.INTLIT, "7"}, {token.IDENT, "e"},
		{token.INTLIT, "12"}, {token.DOT, "."},
	}
	for i, w := range want {
		if toks[i].Kind != w.k || toks[i].Lit != w.lit {
			t.Errorf("token %d = %v, want %s(%s)", i, toks[i], w.k, w.lit)
		}
	}
}

func TestComments(t *testing.T) {
	toks := All("a // comment to end\nb /* block\nspanning */ c")
	if len(toks) != 4 || toks[0].Lit != "a" || toks[1].Lit != "b" || toks[2].Lit != "c" {
		t.Errorf("comments not skipped: %v", toks)
	}
	l := New("/* unterminated")
	l.Next()
	if len(l.Errors()) == 0 {
		t.Error("unterminated block comment should error")
	}
}

func TestPositions(t *testing.T) {
	toks := All("a\n  bb\n")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
}

func TestPlusInf(t *testing.T) {
	toks := All("x = +INF; y = a + INF;")
	if toks[2].Kind != token.KwInf {
		t.Errorf("+INF lexed as %v", toks[2])
	}
	// "a + INF" is PLUS then INF.
	if toks[7].Kind != token.PLUS || toks[8].Kind != token.KwInf {
		t.Errorf("a + INF lexed as %v %v", toks[7], toks[8])
	}
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"#", "$", "&x", "|x", "\"unterminated"} {
		l := New(src)
		for tok := l.Next(); tok.Kind != token.EOF; tok = l.Next() {
		}
		if len(l.Errors()) == 0 {
			t.Errorf("input %q: expected a lexical error", src)
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	l := New("a b")
	if l.Peek().Lit != "a" || l.Peek().Lit != "a" {
		t.Error("Peek consumed input")
	}
	if l.Next().Lit != "a" || l.Next().Lit != "b" {
		t.Error("Next after Peek out of order")
	}
}
