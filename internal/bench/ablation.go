package bench

import (
	"fmt"
	"io"
	"time"

	"gmpregel/internal/algorithms"
	"gmpregel/internal/core"
	"gmpregel/internal/machine"
	"gmpregel/internal/pregel"
)

// AblationRow is one (algorithm, configuration) measurement.
type AblationRow struct {
	Algorithm  string
	Config     string
	Elapsed    time.Duration
	Supersteps int
	Messages   int64
	NetBytes   int64
}

// Ablation measures the design choices DESIGN.md calls out, per
// algorithm on the twitter-like graph:
//
//   - the two §4.2 compiler optimizations (none / state merging / both);
//   - the engine's optional message combiners on top of full
//     optimization.
//
// It returns the rows and writes a table.
func Ablation(w io.Writer, scale, workers, trials int, seed int64) ([]AblationRow, error) {
	spec, err := GraphByName("twitter")
	if err != nil {
		return nil, err
	}
	g := spec.Build(scale)
	in := MakeInputs(g, g.NumNodes()/2, seed+7)
	p := DefaultParams()
	cfg := engineConfig(workers, seed)

	modes := []struct {
		name     string
		opts     core.Options
		combiner bool
	}{
		{"no-opt", core.Options{DisableStateMerging: true, DisableIntraLoopMerge: true}, false},
		{"state-merge", core.Options{DisableIntraLoopMerge: true}, false},
		{"full", core.Options{}, false},
		{"full+combiners", core.Options{}, true},
	}
	algos := []string{"avgteen", "pagerank", "conductance", "sssp"}

	fmt.Fprintf(w, "Ablation: compiler optimizations and engine combiners (graph: twitter scale %d, %d nodes / %d edges)\n",
		scale, g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "%-12s %-15s %12s %8s %12s %14s\n", "algorithm", "config", "time", "steps", "messages", "net bytes")
	var rows []AblationRow
	for _, algo := range algos {
		for _, mode := range modes {
			c, err := core.Compile(algorithms.ByName[algo], mode.opts)
			if err != nil {
				return nil, err
			}
			b := bindingsFor(algo, in, p)
			var stats pregel.Stats
			d, err := timeRun(trials, func() error {
				res, err := machine.RunWithOptions(c.Program, g, b, cfg, machine.RunOptions{UseCombiners: mode.combiner})
				if err != nil {
					return err
				}
				stats = res.Stats
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %v", algo, mode.name, err)
			}
			row := AblationRow{
				Algorithm: algo, Config: mode.name, Elapsed: d,
				Supersteps: stats.Supersteps, Messages: stats.MessagesSent, NetBytes: stats.NetworkBytes,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-12s %-15s %12s %8d %12d %14d\n",
				algo, mode.name, d.Round(time.Microsecond), row.Supersteps, row.Messages, row.NetBytes)
		}
	}
	return rows, nil
}
