package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"gmpregel/internal/obs"
)

// The acceptance-criteria scenario: a multi-worker SSSP run with the
// full observer stack attached — ring (skew report), JSONL stream, and
// metrics registry — produces a skew report covering every worker, a
// parseable trace, and valid Prometheus exposition.
func TestHarnessObservabilitySSSP(t *testing.T) {
	const workers = 4
	ring := obs.NewRing(1 << 16)
	var traceBuf bytes.Buffer
	jsonl := obs.NewJSONL(&traceBuf)
	reg := obs.NewRegistry()
	SetObserver(obs.Multi(ring, jsonl, obs.NewMetricsObserver(reg)))
	defer SetObserver(nil)

	spec, err := GraphByName("twitter")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(smallScale)
	in := MakeInputs(g, 0, 8)
	out, err := RunGenerated("sssp", g, in, DefaultParams(), engineConfig(workers, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Supersteps == 0 {
		t.Fatal("sssp did not run")
	}
	spans := ring.Spans()
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d spans", ring.Dropped())
	}

	// Skew report: the vertex-compute row sees all four workers, and
	// max >= median by construction.
	rep := obs.Skew(spans)
	row, ok := rep.Row("vertex-compute")
	if !ok {
		t.Fatal("skew report has no vertex-compute row")
	}
	if row.Workers != workers {
		t.Errorf("skew row covers %d workers, want %d", row.Workers, workers)
	}
	if row.MaxNS < row.MedianNS || row.Skew < 1 {
		t.Errorf("skew row inconsistent: %+v", row)
	}
	if row.MaxWorker < 0 || row.MaxWorker >= workers {
		t.Errorf("straggler index %d out of range", row.MaxWorker)
	}
	if !strings.Contains(rep.String(), "vertex-compute") {
		t.Error("rendered skew report missing vertex-compute row")
	}

	// The machine executor labels spans with state-machine state names.
	labeled := 0
	for _, s := range spans {
		if s.Phase == obs.PhaseVertexCompute && s.State != "" {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("no vertex-compute span carries a state-machine label")
	}

	// The JSONL stream parses back to exactly the ring's spans.
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.ReadJSONL(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatalf("trace stream does not parse: %v", err)
	}
	if len(decoded) != len(spans) {
		t.Errorf("JSONL has %d spans, ring has %d", len(decoded), len(spans))
	}

	// Metrics: valid Prometheus exposition with the engine families, and
	// the superstep counter agrees with the run's stats.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	exp := prom.String()
	for _, want := range []string{
		"# TYPE pregel_phase_seconds histogram",
		"# TYPE pregel_supersteps_total counter",
		fmt.Sprintf("pregel_supersteps_total %d", out.Stats.Supersteps),
		fmt.Sprintf("pregel_messages_total %d", out.Stats.MessagesSent),
		`pregel_phase_seconds_bucket{le="+Inf",phase="vertex-compute"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
}

// SetObserver(nil) detaches cleanly: the next run carries no observer.
func TestSetObserverNilDetaches(t *testing.T) {
	ring := obs.NewRing(16)
	SetObserver(ring)
	SetObserver(nil)
	spec, err := GraphByName("twitter")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(smallScale)
	in := MakeInputs(g, 0, 8)
	if _, err := RunGenerated("sssp", g, in, DefaultParams(), engineConfig(2, 1), 1); err != nil {
		t.Fatal(err)
	}
	if len(ring.Spans()) != 0 {
		t.Errorf("detached observer still received %d spans", len(ring.Spans()))
	}
}

// The JSON report marshals every section it holds.
func TestReportJSON(t *testing.T) {
	t1, err := Table1(io.Discard, smallScale)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := Table3(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := NewTable3Summary(traces)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Meta: Meta{Scale: smallScale, Workers: 2, Trials: 1, Seed: 1}, Table1: t1, Table3: t3}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"table1"`, `"table3"`, `"twitter"`, `"warning_free"`, `"scale"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON report missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"figure6"`) {
		t.Error("empty sections should be omitted")
	}
}
