package bench

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"gmpregel/internal/graph"
	"gmpregel/internal/machine"
	"gmpregel/internal/manual"
	"gmpregel/internal/pregel"
)

// RecoveryRow is one line of the fault-tolerance evaluation: for an
// algorithm and checkpoint interval, the checkpointing overhead on a
// fault-free run and the recovery cost of a deterministic mid-run worker
// crash.
type RecoveryRow struct {
	Algorithm string
	Interval  int // CheckpointEvery

	Base            time.Duration // fault-free, checkpointing off
	Ckpt            time.Duration // fault-free, checkpointing on
	OverheadPct     float64       // (Ckpt-Base)/Base * 100
	CheckpointBytes int64

	CrashStep       int
	Faulty          time.Duration // checkpointing on, one injected crash
	RecoveryLatency time.Duration // Faulty - Ckpt
	Recoveries      int
	RecoveredSteps  int

	// Identical reports that the faulty run produced bit-identical vertex
	// outputs and return values to the fault-free run.
	Identical bool
}

// recoveryRun is one algorithm execution: it returns the vertex outputs
// (for bit-identity comparison) and the run's stats.
type recoveryRun func(cfg pregel.Config) (any, pregel.Stats, error)

// recoveryAlgorithms builds the Algorithm → runner table: the two manual
// baselines the paper treats as hand-tuned references (PageRank, SSSP —
// the latter with unit-capable lengths is BFS-like relaxation) and the
// compiler-generated PageRank, so the recovery path is exercised through
// the full Green-Marl → machine pipeline.
func recoveryAlgorithms(g *graph.Directed, in *Inputs, p Params) ([]string, map[string]recoveryRun, error) {
	n := g.NumNodes()
	runs := map[string]recoveryRun{
		"pagerank(man)": func(cfg pregel.Config) (any, pregel.Stats, error) {
			j := &manual.PageRank{Eps: p.PRBeps, D: p.PRDamping, MaxIter: p.PRMaxIter, PR: make([]float64, n)}
			st, err := pregel.Run(g, j, cfg)
			return j.PR, st, err
		},
		"sssp(man)": func(cfg pregel.Config) (any, pregel.Stats, error) {
			j := &manual.SSSP{Root: in.Root, Len: in.EdgeLen, Dist: make([]int64, n)}
			st, err := pregel.Run(g, j, cfg)
			return j.Dist, st, err
		},
	}
	c, err := CompiledProgram("pagerank")
	if err != nil {
		return nil, nil, err
	}
	runs["pagerank(gen)"] = func(cfg pregel.Config) (any, pregel.Stats, error) {
		res, err := machine.Run(c.Program, g, bindingsFor("pagerank", in, p), cfg)
		if err != nil {
			return nil, pregel.Stats{}, err
		}
		pr, perr := res.NodePropFloat("pg_rank")
		if perr != nil {
			return nil, res.Stats, perr
		}
		return append([]float64{retAsFloat(res)}, pr...), res.Stats, nil
	}
	return []string{"pagerank(man)", "sssp(man)", "pagerank(gen)"}, runs, nil
}

func retAsFloat(res *machine.Result) float64 {
	if !res.HasRet {
		return 0
	}
	return res.Ret.AsFloat()
}

// pickCrashStep chooses a deterministic mid-run superstep that does not
// sit on a checkpoint barrier, so recovery always replays work.
func pickCrashStep(supersteps, interval int) int {
	s := supersteps / 2
	if s < 1 {
		s = 1
	}
	if interval > 0 && s%interval == 0 {
		s++
	}
	if s >= supersteps {
		s = supersteps - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// RecoveryIntervals is the checkpoint-interval sweep used when none is
// pinned on the command line.
func RecoveryIntervals() []int { return []int{1, 2, 4, 8} }

// RecoveryTable measures checkpoint overhead and recovery latency for
// each algorithm × interval and writes the table. crashStep 0 picks a
// mid-run superstep automatically; ckptEvery 0 sweeps RecoveryIntervals.
func RecoveryTable(w io.Writer, scale, workers, trials int, seed int64, ckptEvery, crashStep, crashWorker int) ([]RecoveryRow, error) {
	spec, err := GraphByName("twitter")
	if err != nil {
		return nil, err
	}
	g := spec.Build(scale)
	in := MakeInputs(g, 0, seed+7)
	p := DefaultParams()
	base := engineConfig(workers, seed)

	intervals := RecoveryIntervals()
	if ckptEvery > 0 {
		intervals = []int{ckptEvery}
	}
	names, runs, err := recoveryAlgorithms(g, in, p)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Recovery table: checkpoint overhead and crash-recovery cost (graph=twitter scale=%d workers=%d)\n", scale, workers)
	fmt.Fprintf(w, "%-14s %5s %12s %12s %9s %10s | %6s %12s %12s %5s %6s %6s\n",
		"algorithm", "ckpt", "base", "ckpt-run", "overhead", "ckpt-bytes",
		"crash", "faulty", "rec-latency", "recov", "resteps", "ident")

	var rows []RecoveryRow
	for _, name := range names {
		run := runs[name]
		refOut, refStats, err := run(base)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %v", name, err)
		}
		baseD, err := timeRun(trials, func() error { _, _, err := run(base); return err })
		if err != nil {
			return nil, err
		}
		for _, iv := range intervals {
			ckCfg := base
			ckCfg.CheckpointEvery = iv
			ckOut, ckStats, err := run(ckCfg)
			if err != nil {
				return nil, fmt.Errorf("%s ckpt=%d: %v", name, iv, err)
			}
			ckD, err := timeRun(trials, func() error { _, _, err := run(ckCfg); return err })
			if err != nil {
				return nil, err
			}

			crash := crashStep
			if crash <= 0 {
				crash = pickCrashStep(refStats.Supersteps, iv)
			}
			fCfg := ckCfg
			fCfg.Faults = pregel.FaultPlan{{Superstep: crash, Worker: crashWorker}}
			fOut, fStats, err := run(fCfg)
			if err != nil {
				return nil, fmt.Errorf("%s ckpt=%d crash=%d: %v", name, iv, crash, err)
			}
			fD, err := timeRun(trials, func() error { _, _, err := run(fCfg); return err })
			if err != nil {
				return nil, err
			}

			row := RecoveryRow{
				Algorithm:       name,
				Interval:        iv,
				Base:            baseD,
				Ckpt:            ckD,
				OverheadPct:     100 * float64(ckD-baseD) / float64(baseD),
				CheckpointBytes: ckStats.CheckpointBytes,
				CrashStep:       crash,
				Faulty:          fD,
				RecoveryLatency: fD - ckD,
				Recoveries:      fStats.Recoveries,
				RecoveredSteps:  fStats.RecoveredSupersteps,
				Identical: reflect.DeepEqual(refOut, ckOut) && reflect.DeepEqual(refOut, fOut) &&
					refStats.ReturnedInt == fStats.ReturnedInt && refStats.ReturnedFloat == fStats.ReturnedFloat,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-14s %5d %12s %12s %8.1f%% %10d | %6d %12s %12s %5d %6d %6v\n",
				row.Algorithm, row.Interval,
				row.Base.Round(time.Microsecond), row.Ckpt.Round(time.Microsecond),
				row.OverheadPct, row.CheckpointBytes,
				row.CrashStep, row.Faulty.Round(time.Microsecond), row.RecoveryLatency.Round(time.Microsecond),
				row.Recoveries, row.RecoveredSteps, row.Identical)
		}
	}
	return rows, nil
}
